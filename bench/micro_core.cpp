// M1: microbenchmarks (google-benchmark) for the core data structures:
// haft build/strip/merge throughput, Forgiving Graph operation latency, and
// the BFS used by the metrics pipeline.
#include <benchmark/benchmark.h>

#include <sstream>

#include "fg/dist/dist_forgiving_graph.h"
#include "fg/forgiving_graph.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "haft/haft.h"
#include "util/rng.h"

namespace fg {
namespace {

void BM_HaftBuild(benchmark::State& state) {
  const auto l = static_cast<int64_t>(state.range(0));
  for (auto _ : state) {
    haft::HaftForest f;
    benchmark::DoNotOptimize(f.build(l));
  }
  state.SetItemsProcessed(state.iterations() * l);
}
BENCHMARK(BM_HaftBuild)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HaftStripMerge(benchmark::State& state) {
  const auto l = static_cast<int64_t>(state.range(0));
  for (auto _ : state) {
    haft::HaftForest f;
    int a = f.build(l, 0);
    int b = f.build(l + 1, static_cast<uint64_t>(l));
    benchmark::DoNotOptimize(f.merge({a, b}));
  }
}
BENCHMARK(BM_HaftStripMerge)->Arg(63)->Arg(1023)->Arg(8191);

void BM_MergePlan(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  std::vector<haft::PieceInfo> pieces;
  for (int i = 0; i < k; ++i)
    pieces.push_back({int64_t{1} << (i % 8), static_cast<uint64_t>(i)});
  for (auto _ : state) benchmark::DoNotOptimize(haft::merge_plan(pieces));
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_MergePlan)->Arg(16)->Arg(256)->Arg(4096);

void BM_ForgivingGraphDeletion(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(7);
    Graph g0 = make_erdos_renyi(n, 8.0 / n, rng);
    ForgivingGraph fg(g0);
    auto order = g0.alive_nodes();
    rng.shuffle(order);
    order.resize(static_cast<size_t>(n / 2));
    state.ResumeTiming();
    for (NodeId v : order) fg.remove(v);
    benchmark::DoNotOptimize(fg.healed().edge_count());
  }
  state.SetItemsProcessed(state.iterations() * (n / 2));
}
BENCHMARK(BM_ForgivingGraphDeletion)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_ForgivingGraphStarHub(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ForgivingGraph fg(make_star(n));
    state.ResumeTiming();
    fg.remove(0);
    benchmark::DoNotOptimize(fg.last_repair().helpers_created);
  }
}
BENCHMARK(BM_ForgivingGraphStarHub)->Arg(256)->Arg(4096)->Unit(benchmark::kMicrosecond);

void BM_BreakPhase(benchmark::State& state) {
  // The break phase alone: build a star, heal the hub (one big RT over n-1
  // pieces), plan a spoke wave, then time commit_break only — the phase PR 8
  // made region-parallel and moved onto flat slot tables. Setup and the
  // plan are untimed (PauseTiming); the engine is rebuilt per iteration
  // because a break consumes its plan.
  const int n = static_cast<int>(state.range(0));
  constexpr int kWave = 16;
  for (auto _ : state) {
    state.PauseTiming();
    ForgivingGraph fg(make_star(n));
    fg.remove(0);
    std::stringstream ss;
    fg.save(ss);
    core::StructuralCore core = core::StructuralCore::load(ss);
    std::vector<NodeId> wave;
    for (NodeId v = 1; v <= kWave; ++v) wave.push_back(v);
    core::RepairPlan plan =
        core.plan_deletion(wave, core::RegionSplit::kPerRegion);
    state.ResumeTiming();
    benchmark::DoNotOptimize(core.commit_break(plan));
  }
  state.SetItemsProcessed(state.iterations() * kWave);
}
BENCHMARK(BM_BreakPhase)->Arg(1024)->Arg(4096)->Unit(benchmark::kMicrosecond);

void BM_DistributedRepair(benchmark::State& state) {
  // Full message-passing repair of a star hub; compare with
  // BM_ForgivingGraphStarHub for the simulator's costing overhead.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    dist::DistForgivingGraph net(make_star(n));
    state.ResumeTiming();
    net.remove(0);
    benchmark::DoNotOptimize(net.last_repair_cost().messages);
  }
}
BENCHMARK(BM_DistributedRepair)->Arg(256)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_RtBreakup(benchmark::State& state) {
  // The repair hot path under sustained attack: delete the star hub (one big
  // merge building an RT with n-1 leaves), then time deletions of spoke
  // owners, each of which breaks the big RT into pieces and re-merges them.
  // Dominated by piece collection over the large RT.
  const int n = static_cast<int>(state.range(0));
  constexpr int kBreakups = 16;
  for (auto _ : state) {
    state.PauseTiming();
    ForgivingGraph fg(make_star(n));
    fg.remove(0);
    state.ResumeTiming();
    for (NodeId v = 1; v <= kBreakups; ++v) fg.remove(v);
    benchmark::DoNotOptimize(fg.healed().edge_count());
  }
  state.SetItemsProcessed(state.iterations() * kBreakups);
}
BENCHMARK(BM_RtBreakup)->Arg(1024)->Arg(4096)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

void BM_WaveSequential(benchmark::State& state) {
  // A wave of k adversarial deletions healed one repair round at a time
  // (compare with BM_WaveBatched: same victims, one merged repair).
  const int n = static_cast<int>(state.range(0));
  constexpr int kWave = 64;
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(11);
    Graph g0 = make_erdos_renyi(n, 8.0 / n, rng);
    ForgivingGraph fg(g0);
    auto order = g0.alive_nodes();
    rng.shuffle(order);
    order.resize(kWave);
    state.ResumeTiming();
    for (NodeId v : order) fg.remove(v);
    benchmark::DoNotOptimize(fg.healed().edge_count());
  }
  state.SetItemsProcessed(state.iterations() * kWave);
}
BENCHMARK(BM_WaveSequential)->Arg(1024)->Arg(4096)->Unit(benchmark::kMicrosecond);

void BM_WaveBatched(benchmark::State& state) {
  // The same wave of victims as BM_WaveSequential, healed by one
  // delete_batch call: one piece collection, one merged plan, one RT.
  const int n = static_cast<int>(state.range(0));
  constexpr int kWave = 64;
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(11);
    Graph g0 = make_erdos_renyi(n, 8.0 / n, rng);
    ForgivingGraph fg(g0);
    auto order = g0.alive_nodes();
    rng.shuffle(order);
    order.resize(kWave);
    state.ResumeTiming();
    fg.delete_batch(order);
    benchmark::DoNotOptimize(fg.healed().edge_count());
  }
  state.SetItemsProcessed(state.iterations() * kWave);
}
BENCHMARK(BM_WaveBatched)->Arg(1024)->Arg(4096)->Unit(benchmark::kMicrosecond);

void BM_DistWaveBatched(benchmark::State& state) {
  // Batched wave through the full message-passing protocol: one detection
  // round and one DAG for all victims (compare against kWave sequential
  // repairs through BM_DistributedRepair-style runs).
  const int n = static_cast<int>(state.range(0));
  constexpr int kWave = 32;
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(13);
    Graph g0 = make_erdos_renyi(n, 8.0 / n, rng);
    dist::DistForgivingGraph net(g0);
    auto order = g0.alive_nodes();
    rng.shuffle(order);
    order.resize(kWave);
    state.ResumeTiming();
    net.delete_batch(order);
    benchmark::DoNotOptimize(net.last_repair_cost().messages);
  }
  state.SetItemsProcessed(state.iterations() * kWave);
}
BENCHMARK(BM_DistWaveBatched)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_Insertion(benchmark::State& state) {
  Rng rng(3);
  Graph g0 = make_erdos_renyi(1024, 8.0 / 1024, rng);
  ForgivingGraph fg(g0);
  std::vector<NodeId> nbrs{1, 2, 3};
  for (auto _ : state) benchmark::DoNotOptimize(fg.insert(nbrs));
}
BENCHMARK(BM_Insertion);

void BM_EdgeFlip(benchmark::State& state) {
  // The adjacency hot loop of a commit: remove + re-add existing edges.
  // Tracks the flat sorted-adjacency claim that an edge flip is a binary
  // search plus a short memmove, with no allocator traffic once the spill
  // pool is warm (bench/repair_path.cpp emits the tracked JSON row).
  const int n = static_cast<int>(state.range(0));
  Rng rng(9);
  Graph g = make_erdos_renyi(n, 8.0 / n, rng);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < g.node_capacity(); ++v)
    for (NodeId w : g.neighbors(v))
      if (v < w) edges.push_back({v, w});
  size_t i = 0;
  for (auto _ : state) {
    auto [u, v] = edges[i];
    i = (i + 1) % edges.size();
    g.remove_edge(u, v);
    g.add_edge(u, v);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_EdgeFlip)->Arg(1024)->Arg(16384);

void BM_AdjacencyScan(benchmark::State& state) {
  // Full neighbor sweep — the read side every BFS / metrics / planner pass
  // does. Views are contiguous and sorted, so this should run at memory
  // bandwidth (items processed = directed edge visits).
  const int n = static_cast<int>(state.range(0));
  Rng rng(9);
  Graph g = make_erdos_renyi(n, 8.0 / n, rng);
  for (auto _ : state) {
    int64_t sum = 0;
    for (NodeId v = 0; v < g.node_capacity(); ++v)
      for (NodeId w : g.neighbors(v)) sum += w;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.edge_count());
}
BENCHMARK(BM_AdjacencyScan)->Arg(1024)->Arg(16384);

void BM_BfsMetrics(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  Graph g = make_erdos_renyi(n, 8.0 / n, rng);
  for (auto _ : state) benchmark::DoNotOptimize(bfs_distances(g, 0));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BfsMetrics)->Arg(1024)->Arg(8192);

}  // namespace
}  // namespace fg

BENCHMARK_MAIN();
