// Extension E1: locality of the healing edges (the paper's open problem).
//
// Section 6 asks: "what if the only edges we can add are those that span a
// small distance in the original network?" (sensor networks). This bench
// measures how far the Forgiving Graph's added edges actually reach: for
// every edge of G that is not in G', the G'-distance between its endpoints.
//
// Observation to look for: RT edges connect ex-neighbors of merged deleted
// regions, so the span is bounded by (distance through the dead region) and
// grows only when large connected blobs of the network die — on random
// deletion the overwhelming majority of added edges span <= 4.
#include <iostream>

#include "adversary/adversary.h"
#include "bench_common.h"
#include "harness/metrics.h"
#include "heal/baselines.h"
#include "util/table.h"

namespace fg {
namespace {

void run() {
  std::cout << "=== E1 (open problem, Section 6): span of healing edges in G' ===\n\n";
  Table t{"graph", "adversary", "n", "deleted", "added edges", "avg span", "max span",
          "% span<=2"};
  for (const char* gname : {"er", "ba", "grid", "star", "cycle"}) {
    for (const char* aname : {"random-delete", "maxdeg-delete"}) {
      for (int n : {256, 1024}) {
        Rng rng(0xE1ul * static_cast<uint64_t>(n) + gname[0] + aname[0]);
        Graph g0 = bench::make_named_graph(gname, n, rng);
        ForgivingGraphHealer healer(g0);
        auto adv = make_adversary(aname);
        int budget = static_cast<int>(0.5 * g0.alive_count());
        int deleted = 0;
        while (deleted < budget) {
          auto a = adv->next(healer, rng);
          if (!a) break;
          healer.remove(a->target);
          ++deleted;
        }
        auto s = edge_span_stats(healer.healed(), healer.gprime());
        t.add(gname, aname, n, deleted, std::to_string(s.added_edges), fmt(s.avg_span),
              s.max_span,
              s.added_edges ? fmt(100.0 * s.span_le_2 / s.added_edges, 1) : "-");
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nA locality-restricted variant (only short-span edges allowed) would\n"
               "keep most of the healing power on these workloads: the bulk of RT\n"
               "edges already span a handful of hops in G'.\n";
}

}  // namespace
}  // namespace fg

int main() {
  fg::run();
  return 0;
}
