// Extension E3: structural telemetry of the virtual forest over a long
// churn run — how many RTs exist, how big the largest gets, and how evenly
// the representative mechanism spreads helper duty (the operational content
// of Lemma 3).
#include <iostream>

#include "adversary/adversary.h"
#include "bench_common.h"
#include "harness/structure_stats.h"
#include "haft/haft.h"
#include "heal/healer.h"
#include "util/table.h"

namespace fg {
namespace {

void run() {
  std::cout << "=== E3: virtual-forest telemetry under churn (ER(1024), p_del=0.6) ===\n\n";
  Rng rng(31337);
  Graph g0 = bench::make_named_graph("er", 1024, rng);
  ForgivingGraphHealer healer(g0);
  ChurnAdversary adv(0.6, 3);

  Table t{"step", "alive", "RTs", "largest RT", "max RT depth", "depth bound",
          "helpers total", "max helpers/proc", "avg helpers/proc"};
  for (int step = 1; step <= 2000; ++step) {
    auto a = adv.next(healer, rng);
    if (!a) break;
    if (a->kind == Action::Kind::kDelete)
      healer.remove(a->target);
    else if (a->kind == Action::Kind::kBatchDelete)
      healer.remove_batch(a->targets);
    else
      healer.insert(a->neighbors);
    if (step % 250 == 0) {
      auto s = structure_stats(healer.engine());
      t.add(step, healer.healed().alive_count(), s.rt_count,
            std::to_string(s.largest_rt_leaves), s.max_rt_depth,
            haft::ceil_log2(std::max<int64_t>(2, s.largest_rt_leaves)),
            std::to_string(s.total_helpers), s.max_helpers_per_processor,
            fmt(s.avg_helpers_per_processor));
    }
  }
  t.print(std::cout);

  auto s = structure_stats(healer.engine());
  std::cout << "\nfinal helpers-per-processor histogram (bucket = #helpers):\n";
  Table h{"helpers", "processors"};
  for (size_t i = 0; i < s.helper_histogram.size(); ++i)
    h.add(i + 1 == s.helper_histogram.size() ? std::to_string(i) + "+" : std::to_string(i),
          std::to_string(s.helper_histogram[i]));
  h.print(std::cout);
  std::cout << "\nEvery RT stays at haft depth (<= ceil(log2 leaves)), and no processor\n"
               "simulates more helpers than its dead edge slots (Lemma 3).\n";
}

}  // namespace
}  // namespace fg

int main() {
  fg::run();
  return 0;
}
