// Shared sustained-churn driver for the healer service: one op-stream
// generator + service loop used by bench/churn_service.cpp (the standalone
// flag-driven driver) and bench/repair_path.cpp (the tracked R6 rows in
// BENCH_repair_path.json), so the tracked numbers and the exploratory runs
// can never drift apart.
//
// The generator maintains its own alive-id pool mirroring the stream's
// effects: a victim leaves the pool the moment its delete op is generated
// (so no later op can reference it) and every insert's future id is
// appended (ids are assigned sequentially by the engine), which keeps every
// generated op valid at apply time even though the service defers buffered
// ops while a plan is in flight.
#pragma once

#include <chrono>
#include <cstdint>
#include <numeric>
#include <ostream>
#include <vector>

#include "fg/healer_service.h"
#include "graph/generators.h"
#include "util/check.h"
#include "util/rng.h"

namespace fg {

struct ChurnDriverConfig {
  int nodes = 1 << 20;          ///< Substrate size (>= 10^6 at the default).
  int64_t ops = 2'000'000;      ///< Stream length (inserts + deletes).
  double delete_ratio = 0.5;    ///< P(delete); 0.5 keeps the alive count stable.
  double avg_degree = 8.0;      ///< Mean degree of the seed graph.
  uint64_t seed = 42;
  HealerConfig service;         ///< Wave size, guardrail sampling, overlap.
};

struct ChurnDriverResult {
  double build_ms = 0.0;        ///< Seed graph + engine construction.
  double elapsed_ms = 0.0;      ///< The op loop, push to flush.
  double ops_per_sec = 0.0;
  double p50_ms = 0.0;          ///< Per-wave repair latency percentiles.
  double p99_ms = 0.0;
  HealerStats stats;            ///< Final service counters (copied).
};

inline ChurnDriverResult run_churn_driver(const ChurnDriverConfig& cfg,
                                          std::ostream* cert_stream = nullptr,
                                          HealerService::AlertFn alert = nullptr) {
  using Clock = std::chrono::steady_clock;
  auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  };

  Rng rng(cfg.seed);
  ChurnDriverResult result;

  Clock::time_point t_build = Clock::now();
  Graph g0 = make_sparse_random(cfg.nodes, cfg.avg_degree, rng);
  HealerService service(g0, cfg.service);
  if (cert_stream != nullptr) service.set_certificate_stream(cert_stream);
  if (alert) service.set_alert(std::move(alert));
  result.build_ms = ms_since(t_build);

  std::vector<NodeId> pool(static_cast<size_t>(cfg.nodes));
  std::iota(pool.begin(), pool.end(), NodeId{0});
  NodeId next_id = static_cast<NodeId>(cfg.nodes);

  Clock::time_point t0 = Clock::now();
  for (int64_t i = 0; i < cfg.ops; ++i) {
    // Never churn the substrate below a floor: the guarantees are about a
    // large network under churn, not about grinding it to dust.
    if (pool.size() > 64 && rng.next_bool(cfg.delete_ratio)) {
      size_t j = static_cast<size_t>(rng.next_below(pool.size()));
      NodeId victim = pool[j];
      pool[j] = pool.back();
      pool.pop_back();
      service.push(ChurnOp::Delete(victim));
    } else {
      NodeId a = rng.pick(pool);
      NodeId b = a;
      while (b == a) b = rng.pick(pool);
      service.push(ChurnOp::Insert({a, b}));
      pool.push_back(next_id++);
    }
  }
  service.flush();
  result.elapsed_ms = ms_since(t0);

  result.stats = service.stats();
  FG_CHECK(result.stats.dropped_deletes == 0);  // the pool mirror is exact
  result.ops_per_sec =
      result.elapsed_ms > 0.0 ? 1000.0 * static_cast<double>(cfg.ops) / result.elapsed_ms : 0.0;
  result.p50_ms = result.stats.latency_percentile(50.0);
  result.p99_ms = result.stats.latency_percentile(99.0);
  return result;
}

}  // namespace fg
