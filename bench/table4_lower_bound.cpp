// Experiment T4 (Theorem 2): the degree/stretch tradeoff lower bound.
//
// Paper claim: any self-healer with degree factor alpha >= 3 has stretch
// beta >= 1/2 * log_{alpha-1}(n-1) on the star. We delete the hub of
// star(n) under every healer and report the measured (alpha, beta) pair
// against the bound curve; the KAry(k) sweep traces the tradeoff — larger
// degree budgets buy smaller stretch, exactly along the predicted shape.
// The Forgiving Graph sits near the bound (its tradeoff is asymptotically
// optimal, Section 1).
#include <cmath>
#include <iostream>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "harness/metrics.h"
#include "heal/baselines.h"
#include "util/table.h"

namespace fg {
namespace {

double theorem2_bound(double alpha, int n) {
  if (alpha <= 2.0) return std::numeric_limits<double>::infinity();
  return 0.5 * std::log(n - 1) / std::log(alpha - 1.0);
}

void alpha_beta_for(const std::string& hname, int n, Table& t) {
  Graph g0 = make_star(n);
  auto healer = make_healer(hname, g0);
  healer->remove(0);
  const Graph& g = healer->healed();

  auto d = degree_stats(g, healer->gprime());
  // After deleting the star's hub every surviving pair is at G'-distance 2,
  // so beta = (max pairwise distance in G) / 2. All heal structures here are
  // trees, cycles, or stars, where the two-sweep diameter is exact.
  double beta = connected_components(g) > 1 ? std::numeric_limits<double>::infinity()
                                            : diameter_lower_bound(g) / 2.0;
  double bound = theorem2_bound(d.max_ratio, n);
  std::string verdict;
  if (std::isinf(beta))
    verdict = "disconnected";
  else if (d.max_ratio < 3.0)
    verdict = "n/a (alpha<3)";  // Theorem 2 only constrains alpha >= 3
  else
    verdict = beta >= bound - 1e-9 ? "respected" : "VIOLATED?";
  t.add(healer->name(), n, fmt(d.max_ratio), fmt(beta),
        std::isinf(bound) ? "inf" : fmt(bound), verdict);
}

void run() {
  std::cout << "=== T4 (Theorem 2): alpha (degree factor) vs beta (stretch) on star(n) ===\n"
            << "Bound: beta >= 0.5 * log_{alpha-1}(n-1) for alpha >= 3.\n\n";

  Table t{"healer", "n", "alpha", "beta", "bound on beta", "verdict"};
  for (int n : {128, 512, 2048, 8192}) {
    for (const char* h : {"forgiving", "kary:2", "kary:3", "kary:4", "kary:8", "kary:16",
                          "line", "star"})
      alpha_beta_for(h, n, t);
  }
  t.print(std::cout);

  std::cout << "\n--- F3: tradeoff curve at n = 4096 (KAry sweep) ---\n";
  Table curve{"k", "alpha", "beta", "bound on beta", "beta/bound"};
  for (int k : {2, 3, 4, 6, 8, 12, 16, 24, 32}) {
    Graph g0 = make_star(4096);
    KAryHealer healer(g0, k);
    healer.remove(0);
    auto d = degree_stats(healer.healed(), healer.gprime());
    double beta = diameter_lower_bound(healer.healed()) / 2.0;
    double bound = theorem2_bound(d.max_ratio, 4096);
    curve.add(k, fmt(d.max_ratio), fmt(beta), fmt(bound), fmt(beta / bound));
  }
  curve.print(std::cout);
}

}  // namespace
}  // namespace fg

int main() {
  fg::run();
  return 0;
}
