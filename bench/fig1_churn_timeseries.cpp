// Experiment F1: stretch and degree trajectories under sustained churn.
//
// A 1024-node ER network endures 2000 mixed steps (60% deletions, 40%
// insertions of degree-3 nodes). The Forgiving Graph's metrics stay pinned
// under the Theorem-1 bounds for the whole run while the baselines drift
// (Line: stretch grows; Star: degree blows up; NoHealing: the network
// shatters). One series block per healer — plot step vs the columns.
#include <iostream>

#include "adversary/adversary.h"
#include "bench_common.h"
#include "harness/experiment.h"
#include "haft/haft.h"
#include "heal/baselines.h"
#include "util/table.h"

namespace fg {
namespace {

void run() {
  std::cout << "=== F1: churn time series, ER(1024, 8/n), 2000 steps, p_delete=0.6 ===\n\n";
  for (const char* hname : {"forgiving", "line", "star", "binary-tree", "none"}) {
    Rng rng(2024);
    Graph g0 = bench::make_named_graph("er", 1024, rng);
    auto healer = make_healer(hname, g0);
    ChurnAdversary adv(0.6, 3);
    RunConfig cfg;
    cfg.max_steps = 2000;
    cfg.sample_every = 250;
    cfg.stretch_sources = 24;
    auto res = run_experiment(*healer, adv, cfg, rng);

    std::cout << "--- healer: " << healer->name() << " ---\n";
    Table t{"step", "alive", "n seen", "max deg ratio", "max stretch", "avg stretch",
            "stretch bound", "components"};
    auto row = [&](const Sample& s) {
      t.add(s.step, s.alive, s.total_inserted, fmt(s.degree.max_ratio),
            fmt(s.stretch.max_stretch), fmt(s.stretch.avg_stretch),
            std::max(1, haft::ceil_log2(s.total_inserted)), s.components);
    };
    for (const auto& s : res.timeline) row(s);
    row(res.final);
    t.print(std::cout);
    std::cout << '\n';
  }
}

}  // namespace
}  // namespace fg

int main() {
  fg::run();
  return 0;
}
