// Experiment F2: repair-cost scaling curves of the distributed protocol.
//
// Series 1 — messages vs deleted degree d (star hubs, d = 2^k): the curve
// should track d * log2(n) with a flat constant (Lemma 4).
// Series 2 — rounds vs d: our plan-broadcast variant runs in
// O(log d + log n) rounds, under the paper's O(log d log n) budget.
// Series 3 — cost of merging many pre-existing RTs: nodes adjacent to many
// previously-deleted hubs, the case that exercises BottomupRTMerge.
#include <cmath>
#include <iostream>

#include "fg/dist/dist_forgiving_graph.h"
#include "graph/generators.h"
#include "haft/haft.h"
#include "util/rng.h"
#include "util/table.h"

namespace fg {
namespace {

void hub_series() {
  std::cout << "--- F2a: messages & rounds vs d (star hub deletion) ---\n";
  Table t{"d", "messages", "d*log2(n)", "ratio", "rounds", "log2(d)", "words/message"};
  for (int k = 3; k <= 11; ++k) {
    int d = 1 << k;
    dist::DistForgivingGraph net(make_star(d + 1));
    net.remove(0);
    const auto& c = net.last_repair_cost();
    double dlogn = static_cast<double>(d) * haft::ceil_log2(d + 1);
    t.add(d, std::to_string(c.messages), fmt(dlogn), fmt(c.messages / dlogn), c.rounds, k,
          fmt(static_cast<double>(c.words) / static_cast<double>(c.messages)));
  }
  t.print(std::cout);
}

void merge_series() {
  std::cout << "\n--- F2b: deleting a node that merges m pre-existing RTs ---\n";
  // Build m stars of degree 8 whose hubs all share one common neighbor z,
  // delete the hubs (creating m RTs with z's leaves inside), then delete z:
  // the repair must merge fragments of all m RTs.
  Table t{"m RTs merged", "anchors", "pieces", "messages", "rounds", "max msg words"};
  for (int m : {2, 4, 8, 16, 32}) {
    int per_star = 8;
    Graph g0(1 + m * (1 + per_star));  // z, then m hubs with 8 leaves each
    NodeId z = 0;
    std::vector<NodeId> hubs;
    NodeId next = 1;
    for (int i = 0; i < m; ++i) {
      NodeId hub = next++;
      hubs.push_back(hub);
      g0.add_edge(hub, z);
      for (int j = 0; j < per_star; ++j) g0.add_edge(hub, next++);
    }
    dist::DistForgivingGraph net(g0);
    for (NodeId hub : hubs) net.remove(hub);
    net.remove(z);
    const auto& c = net.last_repair_cost();
    t.add(m, c.anchors, c.pieces, std::to_string(c.messages), c.rounds, c.max_message_words);
  }
  t.print(std::cout);
}

}  // namespace
}  // namespace fg

int main() {
  std::cout << "=== F2: distributed repair cost scaling ===\n\n";
  fg::hub_series();
  fg::merge_series();
  return 0;
}
