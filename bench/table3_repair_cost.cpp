// Experiment T3 (Theorem 1.3 / Lemma 4): repair cost of the distributed
// protocol, measured on the message-passing simulator.
//
// Paper claims per deletion (d = degree of the deleted node, n = nodes seen):
//   messages  O(d log n),
//   time      O(log d log n) rounds,
//   msg size  O(log n) bits.
// The first table deletes the hub of star(n) (worst case d = n-1); the
// second averages random deletions on ER graphs. "msgs/(d log n)" exposes
// the hidden constant; it should stay flat as n grows.
#include <cmath>
#include <iostream>

#include <algorithm>

#include "fg/dist/dist_forgiving_graph.h"
#include "graph/generators.h"
#include "haft/haft.h"
#include "util/rng.h"
#include "util/table.h"

namespace fg {
namespace {

double dlogn(int d, int n) {
  return static_cast<double>(d) * std::max(1, haft::ceil_log2(n));
}

void star_table() {
  std::cout << "--- T3a: hub deletion on star(n) (d = n-1), both merge modes ---\n"
            << "global-plan: bit-identical to the centralized engine; stage-wise:\n"
            << "the paper's BottomupRTMerge, keeping every message at O(log n) words.\n\n";
  Table t{"n", "d", "mode", "messages", "msgs/(d log n)", "rounds", "log d * log n",
          "max msg words", "max node msgs", "node-round words"};
  for (int n : {64, 128, 256, 512, 1024, 2048}) {
    for (auto mode : {dist::MergeMode::kGlobalPlan, dist::MergeMode::kStageWise}) {
      dist::DistForgivingGraph net(make_star(n), mode);
      net.remove(0);
      const auto& c = net.last_repair_cost();
      int d = n - 1;
      t.add(n, d, mode == dist::MergeMode::kGlobalPlan ? "global" : "stage-wise",
            std::to_string(c.messages), fmt(c.messages / dlogn(d, n)), c.rounds,
            haft::ceil_log2(d) * haft::ceil_log2(n), c.max_message_words,
            std::to_string(c.max_node_messages), std::to_string(c.max_node_round_words));
    }
  }
  t.print(std::cout);
}

void er_table() {
  std::cout << "\n--- T3b: random deletions on ER(n, 8/n), mean over 50 deletions ---\n";
  Table t{"n", "mean d", "mean msgs", "msgs/(d log n)", "mean rounds", "max msg words"};
  for (int n : {128, 256, 512, 1024, 2048}) {
    Rng rng(1000 + static_cast<uint64_t>(n));
    Graph g0 = make_erdos_renyi(n, 8.0 / n, rng);
    dist::DistForgivingGraph net(g0);
    double sum_msgs = 0, sum_rounds = 0, sum_d = 0, sum_norm = 0;
    int max_words = 0;
    int deletions = std::min(50, n / 3);
    for (int i = 0; i < deletions; ++i) {
      // Random alive node.
      Graph img = net.image();
      auto alive = img.alive_nodes();
      NodeId v = rng.pick(alive);
      net.remove(v);
      const auto& c = net.last_repair_cost();
      sum_msgs += static_cast<double>(c.messages);
      sum_rounds += c.rounds;
      sum_d += c.deleted_degree;
      sum_norm += c.deleted_degree > 0
                      ? static_cast<double>(c.messages) / dlogn(c.deleted_degree, n)
                      : 0.0;
      max_words = std::max(max_words, c.max_message_words);
    }
    t.add(n, fmt(sum_d / deletions), fmt(sum_msgs / deletions), fmt(sum_norm / deletions),
          fmt(sum_rounds / deletions), max_words);
  }
  t.print(std::cout);
}

void churn_table() {
  std::cout << "\n--- T3d: repair cost under mixed churn (ER(512), stage-wise mode) ---\n";
  // Long-lived network: inserts keep arriving while deletions hit nodes
  // whose RTs have merged many times; cost per deletion must stay within
  // the Lemma-4 envelope for the *current* n, not degrade with history.
  Table t{"deletions so far", "mean d", "mean msgs", "msgs/(d log n)", "mean rounds",
          "max node-round words"};
  Rng rng(4242);
  Graph g0 = make_erdos_renyi(512, 8.0 / 512, rng);
  dist::DistForgivingGraph net(g0, dist::MergeMode::kStageWise);
  int deletions = 0;
  double sum_msgs = 0, sum_rounds = 0, sum_d = 0;
  int64_t max_nrw = 0;
  int bucket = 0;
  for (int step = 0; step < 900; ++step) {
    Graph img = net.image();
    auto alive = img.alive_nodes();
    if (alive.size() > 64 && rng.next_bool(0.6)) {
      net.remove(rng.pick(alive));
      const auto& c = net.last_repair_cost();
      ++deletions;
      sum_msgs += static_cast<double>(c.messages);
      sum_rounds += c.rounds;
      sum_d += std::max(1, c.deleted_degree);
      max_nrw = std::max(max_nrw, c.max_node_round_words);
      if (deletions % 100 == 0) {
        int n = net.gprime().node_capacity();
        double mean_d = sum_d / 100.0;
        t.add(deletions, fmt(mean_d), fmt(sum_msgs / 100.0),
              fmt(sum_msgs / 100.0 / dlogn(static_cast<int>(mean_d), n)),
              fmt(sum_rounds / 100.0), std::to_string(max_nrw));
        sum_msgs = sum_rounds = sum_d = 0;
        max_nrw = 0;
        ++bucket;
      }
    } else {
      rng.shuffle(alive);
      alive.resize(std::min<size_t>(3, alive.size()));
      net.insert(alive);
    }
  }
  (void)bucket;
  t.print(std::cout);
}

void insertion_table() {
  std::cout << "\n--- T3c: insertion cost (one message per new edge) ---\n";
  Table t{"neighbors", "messages", "rounds"};
  Graph g0 = make_cycle(64);
  dist::DistForgivingGraph net(g0);
  Rng rng(7);
  for (int k : {1, 2, 4, 8, 16}) {
    Graph img = net.image();
    auto alive = img.alive_nodes();
    rng.shuffle(alive);
    alive.resize(static_cast<size_t>(k));
    auto before = net.lifetime_stats().messages;
    (void)before;
    net.network().stats().reset();
    net.insert(alive);
    t.add(k, std::to_string(net.network().stats().messages), net.network().stats().rounds);
  }
  t.print(std::cout);
}

}  // namespace
}  // namespace fg

int main() {
  std::cout << "=== T3 (Lemma 4): distributed repair cost ===\n\n";
  fg::star_table();
  fg::er_table();
  fg::churn_table();
  fg::insertion_table();
  return 0;
}
