// Experiment T1 (Theorem 1.1): degree increase under adversarial deletion.
//
// Paper claim: for every node v, deg(v, G) <= 3 * deg(v, G') at all times.
// We sweep seed graphs x adversaries x sizes, deleting 60% of the network
// one node at a time, and track the worst degree ratio ever observed — for
// the Forgiving Graph and for the baselines the paper contrasts against.
#include <iostream>

#include "adversary/adversary.h"
#include "bench_common.h"
#include "harness/metrics.h"
#include "heal/baselines.h"
#include "util/table.h"

namespace fg {
namespace {

void run() {
  std::cout << "=== T1 (Theorem 1.1): max degree ratio deg(v,G)/deg(v,G') ===\n"
            << "Bound claimed by the paper: 3.00 (see docs/EXPERIMENTS.md note on the\n"
            << "pre-collapse accounting bound of 4.00).\n\n";

  Table t{"graph", "adversary", "n", "healer", "max ratio", "avg ratio", "bound ok"};
  const char* graphs[] = {"star", "er", "ba", "grid", "path"};
  const char* advs[] = {"random-delete", "maxdeg-delete", "helper-load"};
  const int sizes[] = {256, 1024, 4096};
  const char* healers[] = {"forgiving", "line", "star", "binary-tree"};

  double fg_global_worst = 1.0;
  for (const char* gname : graphs) {
    for (const char* aname : advs) {
      for (int n : sizes) {
        if (n > 1024 && std::string(gname) != "er" && std::string(gname) != "star") continue;
        for (const char* hname : healers) {
          // Baselines only need one adversary row to stay readable.
          if (std::string(hname) != "forgiving" &&
              (std::string(aname) != "maxdeg-delete" || n != 1024))
            continue;
          Rng rng(0x51ul * static_cast<uint64_t>(n) + gname[0] * 131 + aname[0]);
          Graph g0 = bench::make_named_graph(gname, n, rng);
          auto healer = make_healer(hname, g0);
          auto adv = make_adversary(aname);
          double worst = 1.0, avg_last = 1.0;
          int deletions = 0;
          int budget = static_cast<int>(0.6 * g0.alive_count());
          while (deletions < budget) {
            auto action = adv->next(*healer, rng);
            if (!action || action->kind != Action::Kind::kDelete) break;
            healer->remove(action->target);
            ++deletions;
            auto d = degree_stats(healer->healed(), healer->gprime());
            worst = std::max(worst, d.max_ratio);
            avg_last = d.avg_ratio;
          }
          if (std::string(hname) == "forgiving") fg_global_worst = std::max(fg_global_worst, worst);
          t.add(gname, aname, n, healer->name(), fmt(worst), fmt(avg_last),
                std::string(hname) == "forgiving" ? (worst <= 3.0 + 1e-9 ? "<=3" : ">3!")
                                                  : "-");
        }
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nForgivingGraph worst ratio across the whole sweep: " << fmt(fg_global_worst)
            << " (paper bound 3.00)\n";
}

}  // namespace
}  // namespace fg

int main() {
  fg::run();
  return 0;
}
