// Ablation A1: why RT *merging* matters.
//
// BinaryTreeHealer rebuilds a fresh balanced tree over the deleted node's
// *current* neighbors (the Forgiving Tree's per-deletion structure, no
// merging, no virtual nodes). Under cascade deletion — deleting nodes that
// are themselves part of earlier healing structures — every repair hands
// the survivors new real edges that never go away, so the degree ratio
// compounds. The Forgiving Graph instead merges the affected RTs, discards
// the stale helpers (strip marks them red), and rebuilds one haft, keeping
// every processor at <= 1 leaf + 1 helper per dead edge slot.
//
// Workload: star(n) — every survivor has G'-degree 1, so max ratio == max
// degree — delete the hub, then keep deleting random survivors down to a
// small core. Second series: ER cascade for a non-degenerate G'.
#include <iostream>

#include "graph/generators.h"
#include "harness/metrics.h"
#include "heal/baselines.h"
#include "util/rng.h"
#include "util/table.h"

namespace fg {
namespace {

void cascade(const char* gname, Graph (*make)(int), int n, Table& t) {
  for (const char* hname : {"forgiving", "binary-tree", "line", "star"}) {
    Rng rng(1337);
    auto healer = make_healer(hname, make(n));
    double worst = 1.0;
    int deletions = 0;
    while (healer->healed().alive_count() > 24) {
      auto alive = healer->healed().alive_nodes();
      // Hub first, then random survivors (cascading into heal structures).
      NodeId v = deletions == 0 ? alive.front() : rng.pick(alive);
      healer->remove(v);
      ++deletions;
      worst = std::max(worst, degree_stats(healer->healed(), healer->gprime()).max_ratio);
    }
    auto d = degree_stats(healer->healed(), healer->gprime());
    t.add(gname, n, healer->name(), deletions, fmt(worst), fmt(d.max_ratio),
          d.max_degree_g);
  }
}

void run() {
  std::cout << "=== A1: RT merging ablation — cascade deletion into heal structures ===\n\n";
  Table t{"graph", "n", "healer", "deletions", "worst ratio seen", "final ratio",
          "final max degree"};
  cascade("star", make_star, 257, t);
  cascade("star", make_star, 1025, t);
  auto make_er = +[](int n) {
    Rng rng(5);
    return make_erdos_renyi(n, 8.0 / n, rng);
  };
  cascade("er", make_er, 512, t);
  t.print(std::cout);
  std::cout << "\nForgivingGraph stays within its per-slot bound no matter how deep the\n"
               "cascade goes; fresh-tree healing (BinaryTree ~ Forgiving Tree without\n"
               "merging) and surrogate healing (Star) compound, because edges added by\n"
               "earlier repairs are never reclaimed when their structure is re-broken.\n";
}

}  // namespace
}  // namespace fg

int main() {
  fg::run();
  return 0;
}
