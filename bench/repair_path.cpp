// Experiment R1: the repair hot path, timed. Two claims to pin down:
//
//   1. Piece collection walks the *dirty region* of a broken RT with an
//      explicit iterative worklist, so breaking a giant RT costs
//      O(d log^2 n), not O(RT size) — deleting leaves of a 2^16-leaf hub RT
//      must not get slower as the RT grows.
//   2. delete_batch heals a wave of k victims with one piece collection and
//      one merged plan, beating k sequential repair rounds on wall clock
//      (centralized) and on messages/rounds (distributed protocol).
//
// Prints the measured table and writes the same rows as a
// BENCH_repair_path.json artifact (cwd) for docs/EXPERIMENTS.md.
// Wall-clock numbers vary by machine; ratios are the reproducible part.
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fg/dist/dist_forgiving_graph.h"
#include "fg/forgiving_graph.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/table.h"

namespace fg {
namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

struct JsonRow {
  std::string scenario;
  int n = 0;
  int work = 0;
  double ms = 0.0;
  double per_op_us = 0.0;
};

std::vector<JsonRow> g_rows;

void record(Table& t, const std::string& scenario, int n, int work, double ms) {
  double per_op_us = work > 0 ? 1000.0 * ms / work : 0.0;
  char msbuf[32], opbuf[32];
  std::snprintf(msbuf, sizeof msbuf, "%.2f", ms);
  std::snprintf(opbuf, sizeof opbuf, "%.1f", per_op_us);
  t.add(scenario, n, work, msbuf, opbuf);
  g_rows.push_back({scenario, n, work, ms, per_op_us});
}

// Scenario A: break up a giant hub RT, one spoke deletion at a time. The
// per-deletion cost must stay flat in n (dirty-region collection), where a
// full-RT sweep would grow linearly.
void rt_breakup(Table& t) {
  for (int n : {1 << 12, 1 << 14, 1 << 16}) {
    ForgivingGraph fg(make_star(n + 1));
    fg.remove(0);
    constexpr int kDeletions = 64;
    for (NodeId v = 1; v <= 8; ++v) fg.remove(v);  // untimed warm-up
    auto t0 = std::chrono::steady_clock::now();
    for (NodeId v = 9; v <= 8 + kDeletions; ++v) fg.remove(v);
    record(t, "rt_breakup", n, kDeletions, ms_since(t0));
  }
}

// Scenario B: a wave of 64 random deletions on ER(n), sequential repairs vs
// one batched repair round over the identical victim set.
void wave(Table& t) {
  constexpr int kWave = 64;
  for (int n : {1024, 4096}) {
    for (bool batched : {false, true}) {
      Rng rng(11);
      Graph g0 = make_erdos_renyi(n, 8.0 / n, rng);
      ForgivingGraph fg(g0);
      auto order = g0.alive_nodes();
      rng.shuffle(order);
      order.resize(kWave);
      auto t0 = std::chrono::steady_clock::now();
      if (batched) {
        fg.delete_batch(order);
      } else {
        for (NodeId v : order) fg.remove(v);
      }
      record(t, batched ? "wave_batched" : "wave_sequential", n, kWave, ms_since(t0));
    }
  }
}

// Scenario C: the same wave through the distributed protocol — the saving
// is messages and rounds, the quantities Lemma 4 is about.
void dist_wave(Table& t, Table& cost) {
  constexpr int kWave = 32;
  for (int n : {1024}) {
    for (bool batched : {false, true}) {
      Rng rng(13);
      Graph g0 = make_erdos_renyi(n, 8.0 / n, rng);
      dist::DistForgivingGraph net(g0);
      auto order = g0.alive_nodes();
      rng.shuffle(order);
      order.resize(kWave);
      int64_t messages = 0;
      int64_t rounds = 0;
      auto t0 = std::chrono::steady_clock::now();
      if (batched) {
        net.delete_batch(order);
        messages = net.last_repair_cost().messages;
        rounds = net.last_repair_cost().rounds;
      } else {
        for (NodeId v : order) {
          net.remove(v);
          messages += net.last_repair_cost().messages;
          rounds += net.last_repair_cost().rounds;
        }
      }
      const char* name = batched ? "dist_wave_batched" : "dist_wave_sequential";
      record(t, name, n, kWave, ms_since(t0));
      cost.add(name, n, kWave, std::to_string(messages), std::to_string(rounds));
      g_rows.push_back({std::string(name) + "_messages", n, kWave,
                        static_cast<double>(messages), 0.0});
      g_rows.push_back({std::string(name) + "_rounds", n, kWave,
                        static_cast<double>(rounds), 0.0});
    }
  }
}

void write_json(const std::string& path) {
  std::ofstream os(path);
  os << "{\n  \"bench\": \"repair_path\",\n  \"rows\": [\n";
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const JsonRow& r = g_rows[i];
    os << "    {\"scenario\": \"" << r.scenario << "\", \"n\": " << r.n
       << ", \"work\": " << r.work << ", \"value\": " << r.ms
       << ", \"per_op_us\": " << r.per_op_us << "}"
       << (i + 1 < g_rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace
}  // namespace fg

int main() {
  using namespace fg;
  std::cout << "--- R1: repair-path hot loop (iterative dirty-region collection"
               " + batched deletions) ---\n\n";
  Table t{"scenario", "n", "ops", "total ms", "us/op"};
  Table cost{"scenario", "n", "victims", "messages", "rounds"};
  rt_breakup(t);
  wave(t);
  dist_wave(t, cost);
  t.print(std::cout);
  std::cout << "\nprotocol cost (one DAG for the whole wave vs one per victim):\n";
  cost.print(std::cout);
  write_json("BENCH_repair_path.json");
  std::cout << "\nwrote BENCH_repair_path.json\n";
  return 0;
}
