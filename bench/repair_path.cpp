// Experiment R1: the repair hot path, timed. Three claims to pin down:
//
//   1. Piece collection walks the *dirty region* of a broken RT with an
//      explicit iterative worklist, so breaking a giant RT costs
//      O(d log^2 n), not O(RT size) — deleting leaves of a 2^16-leaf hub RT
//      must not get slower as the RT grows.
//   2. delete_batch heals a wave of k victims with one piece collection and
//      one merged plan per dirty region, beating k sequential repair rounds
//      on wall clock (centralized) and on messages/rounds (distributed
//      protocol).
//   3. Sharding (R2): a disjoint 32-victim wave on ER(1024) splits into 32
//      regions that plan concurrently and repair in parallel protocol
//      rounds; the sharded engine's topology is bit-identical to the
//      single-threaded engine's (contract C4, FG_CHECKed here), and the
//      per-phase split (partition / collect / merge-plan / commit) is
//      recorded so regressions bisect to a phase.
//
// Prints the measured tables and writes the same rows as a
// BENCH_repair_path.json artifact (cwd) for docs/EXPERIMENTS.md.
// Wall-clock numbers vary by machine; ratios are the reproducible part.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "adversary/adversary.h"
#include "bench_common.h"
#include "cert/certificate.h"
#include "churn_common.h"
#include "fg/core/slot_table.h"
#include "fg/dist/dist_forgiving_graph.h"
#include "fg/forgiving_graph.h"
#include "fg/snapshot_writer.h"
#include "snap/snapshot.h"
#include "graph/generators.h"
#include "harness/certificate.h"
#include "heal/healer.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/table.h"

namespace fg {
namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

struct JsonRow {
  std::string scenario;
  int n = 0;
  int work = 0;
  double ms = 0.0;
  double per_op_us = 0.0;
  /// Worker-count-dependent rows (the w1/w2/w4 arms and their speedup
  /// ratios) carry an explicit "single_core" field in the JSON: on a box
  /// with one hardware thread the engine never fans out (the CommitPool
  /// gate), so a speedup of ~1.0 there is the gate working, not a
  /// regression — consumers must not compare such rows against multi-core
  /// baselines.
  bool worker_dependent = false;
};

std::vector<JsonRow> g_rows;

bool single_core() {
  static const bool one = std::thread::hardware_concurrency() == 1;
  return one;
}

/// Mark the most recent row as worker-count-dependent.
void mark_worker_dependent() { g_rows.back().worker_dependent = true; }

void record(Table& t, const std::string& scenario, int n, int work, double ms) {
  double per_op_us = work > 0 ? 1000.0 * ms / work : 0.0;
  char msbuf[32], opbuf[32];
  std::snprintf(msbuf, sizeof msbuf, "%.2f", ms);
  std::snprintf(opbuf, sizeof opbuf, "%.1f", per_op_us);
  t.add(scenario, n, work, msbuf, opbuf);
  g_rows.push_back({scenario, n, work, ms, per_op_us});
}

// Scenario A: break up a giant hub RT, one spoke deletion at a time. The
// per-deletion cost must stay flat in n (dirty-region collection), where a
// full-RT sweep would grow linearly.
void rt_breakup(Table& t) {
  for (int n : {1 << 12, 1 << 14, 1 << 16}) {
    ForgivingGraph fg(make_star(n + 1));
    fg.remove(0);
    constexpr int kDeletions = 64;
    for (NodeId v = 1; v <= 8; ++v) fg.remove(v);  // untimed warm-up
    auto t0 = std::chrono::steady_clock::now();
    for (NodeId v = 9; v <= 8 + kDeletions; ++v) fg.remove(v);
    record(t, "rt_breakup", n, kDeletions, ms_since(t0));
  }
}

// Scenario B: a wave of 64 random deletions on ER(n), sequential repairs vs
// one batched repair round over the identical victim set.
void wave(Table& t) {
  constexpr int kWave = 64;
  for (int n : {1024, 4096}) {
    for (bool batched : {false, true}) {
      Rng rng(11);
      Graph g0 = make_erdos_renyi(n, 8.0 / n, rng);
      ForgivingGraph fg(g0);
      auto order = g0.alive_nodes();
      rng.shuffle(order);
      order.resize(kWave);
      {
        // Untimed warm-up on a throwaway engine: absorbs the one-time
        // allocator cost of the giant RTs rt_breakup just freed, which
        // otherwise lands entirely on whichever arm runs first.
        ForgivingGraph warm(g0);
        warm.delete_batch(order);
      }
      auto t0 = std::chrono::steady_clock::now();
      if (batched) {
        fg.delete_batch(order);
      } else {
        for (NodeId v : order) fg.remove(v);
      }
      record(t, batched ? "wave_batched" : "wave_sequential", n, kWave, ms_since(t0));
    }
  }
}

// Scenario C: the same wave through the distributed protocol — the saving
// is messages and rounds, the quantities Lemma 4 is about.
void dist_wave(Table& t, Table& cost) {
  constexpr int kWave = 32;
  for (int n : {1024}) {
    for (bool batched : {false, true}) {
      Rng rng(13);
      Graph g0 = make_erdos_renyi(n, 8.0 / n, rng);
      dist::DistForgivingGraph net(g0);
      auto order = g0.alive_nodes();
      rng.shuffle(order);
      order.resize(kWave);
      int64_t messages = 0;
      int64_t rounds = 0;
      auto t0 = std::chrono::steady_clock::now();
      if (batched) {
        net.delete_batch(order);
        messages = net.last_repair_cost().messages;
        rounds = net.last_repair_cost().rounds;
      } else {
        for (NodeId v : order) {
          net.remove(v);
          messages += net.last_repair_cost().messages;
          rounds += net.last_repair_cost().rounds;
        }
      }
      const char* name = batched ? "dist_wave_batched" : "dist_wave_sequential";
      record(t, name, n, kWave, ms_since(t0));
      cost.add(name, n, kWave, std::to_string(messages), std::to_string(rounds));
      g_rows.push_back({std::string(name) + "_messages", n, kWave,
                        static_cast<double>(messages), 0.0});
      g_rows.push_back({std::string(name) + "_rounds", n, kWave,
                        static_cast<double>(rounds), 0.0});
    }
  }
}

// Scenario F (R4): the adjacency substrate itself, isolated from repair
// logic. edge_flip is the commit's hot loop (remove + re-add existing
// edges, one at a time); edge_flip_batched drives the same flips through
// apply_edge_deltas (the merge stitch's entry point — one grouped sweep
// per touched node); adjacency_scan is the read side (full neighbor sweep
// over sorted flat views). Tracked across PRs so adjacency regressions
// bisect here instead of into the repair scenarios.
void adjacency_micro(Table& t) {
  constexpr int kN = 4096;
  Rng rng(9);
  Graph g = make_erdos_renyi(kN, 8.0 / kN, rng);
  std::vector<EdgeDelta> edges;
  for (NodeId v = 0; v < g.node_capacity(); ++v)
    for (NodeId w : g.neighbors(v))
      if (v < w) edges.push_back({v, w, EdgeDelta::Op::kRemove});
  const int kFlips = static_cast<int>(edges.size());

  for (const EdgeDelta& e : edges) {  // untimed warm-up (pool + page touch)
    g.remove_edge(e.u, e.v);
    g.add_edge(e.u, e.v);
  }
  auto t0 = std::chrono::steady_clock::now();
  for (const EdgeDelta& e : edges) {
    g.remove_edge(e.u, e.v);
    g.add_edge(e.u, e.v);
  }
  record(t, "edge_flip", kN, 2 * kFlips, ms_since(t0));

  std::vector<EdgeDelta> re_add = edges;
  for (EdgeDelta& e : re_add) e.op = EdgeDelta::Op::kAdd;
  t0 = std::chrono::steady_clock::now();
  FG_CHECK(g.apply_edge_deltas(edges) == kFlips);
  FG_CHECK(g.apply_edge_deltas(re_add) == kFlips);
  record(t, "edge_flip_batched", kN, 2 * kFlips, ms_since(t0));

  int64_t sum = 0;
  t0 = std::chrono::steady_clock::now();
  constexpr int kSweeps = 32;
  for (int s = 0; s < kSweeps; ++s)
    for (NodeId v = 0; v < g.node_capacity(); ++v)
      for (NodeId w : g.neighbors(v)) sum += w;
  double scan_ms = ms_since(t0);
  FG_CHECK(sum != 0);
  record(t, "adjacency_scan", kN, static_cast<int>(kSweeps * 2 * g.edge_count()),
         scan_ms);

  // The asymmetric case batching exists for: k flips against ONE sorted
  // list (a hub teardown) cost O(degree * k) element moves per-edge but
  // O(degree + k log k) through the grouped sweep — the same shape the
  // commit's per-region image-edge drop hits when a high-degree processor
  // dies.
  constexpr int kHub = 16384;
  std::vector<EdgeDelta> spokes;
  for (NodeId v = 1; v <= kHub; ++v) spokes.push_back({0, v, EdgeDelta::Op::kRemove});
  {
    Graph star = make_star(kHub + 1);
    t0 = std::chrono::steady_clock::now();
    for (const EdgeDelta& e : spokes) star.remove_edge(e.u, e.v);
    record(t, "hub_teardown", kHub, kHub, ms_since(t0));
  }
  {
    Graph star = make_star(kHub + 1);
    t0 = std::chrono::steady_clock::now();
    FG_CHECK(star.apply_edge_deltas(spokes) == kHub);
    record(t, "hub_teardown_batched", kHub, kHub, ms_since(t0));
  }
}

// Scenario F2 (R7): the slot-table substrate isolated from repair logic —
// sorted flat small-vector lookups (core::SlotTable, the PR that shed the
// per-processor hash maps). Tracked so slot-table regressions bisect here
// instead of into the wave scenarios.
void slot_lookup(Table& t) {
  constexpr int kProcs = 4096;
  constexpr int kSlotsPer = 8;
  constexpr int kSweeps = 64;
  Rng rng(33);
  core::SlotTable slots;
  slots.resize(kProcs);
  std::vector<std::pair<NodeId, NodeId>> keys;
  for (NodeId v = 0; v < kProcs; ++v)
    for (int i = 0; i < kSlotsPer; ++i) {
      NodeId other = static_cast<NodeId>(rng.next_below(kProcs));
      slots.ensure(v, other).leaf = VNodeId{1};
      keys.push_back({v, other});
    }
  int64_t hits = 0;
  for (const auto& [v, o] : keys) hits += slots.find(v, o) != nullptr;  // warm
  auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < kSweeps; ++s)
    for (const auto& [v, o] : keys) hits += slots.find(v, o) != nullptr;
  double ms = ms_since(t0);
  FG_CHECK(hits == static_cast<int64_t>((kSweeps + 1) * keys.size()));
  record(t, "slot_lookup", kProcs, kSweeps * static_cast<int>(keys.size()), ms);
}

// Scenario E: the star-hub merge — one deletion creating an RT over n-1
// equal-sized pieces, the workload where the k-way bottom-up planner
// replaces the O(k^2) sorted-list erase/insert churn (the BM_ForgivingGraph-
// StarHub hotspot; bench/micro_core.cpp has the google-benchmark twin).
void star_hub_merge(Table& t) {
  for (int n : {4096, 16384}) {
    ForgivingGraph warm(make_star(n + 1));
    warm.remove(0);
    ForgivingGraph fg(make_star(n + 1));
    auto t0 = std::chrono::steady_clock::now();
    fg.remove(0);
    record(t, "star_hub_merge", n, n, ms_since(t0));
  }
}

// Scenario D (R2 + R3): the sharded plan/commit pipeline on the acceptance
// workload — a 32-victim disjoint-region wave against a churned ER(1024).
// Reports sequential vs sharded planning wall-clock, the per-phase split,
// the reserved commit at 1/2/4 commit workers (R3: the arena-id
// reservation makes the merge schedule-independent, so worker counts are
// an A/B on wall clock only), the region-vs-global commit, and the dist
// protocol's parallel rounds; FG_CHECKs that every variant lands on the
// bit-identical checkpoint.
void sharded_wave(Table& t, Table& cost) {
  constexpr int kN = 1024;
  constexpr int kChurn = 96;
  constexpr int kWave = 32;

  Rng rng(1024);
  Graph g0 = make_erdos_renyi(kN, 8.0 / kN, rng);

  // Churn to grow RTs, then pick the disjoint wave the adversary would.
  ForgivingGraphHealer probe(g0);
  std::vector<NodeId> churned;
  for (int i = 0; i < kChurn; ++i) {
    auto alive = probe.healed().alive_nodes();
    NodeId v = rng.pick(alive);
    probe.engine().remove(v);
    churned.push_back(v);
  }
  DisjointRegionsAdversary adversary(kWave);
  auto action = adversary.next(probe, rng);
  FG_CHECK(action.has_value() && action->targets.size() == kWave);
  const std::vector<NodeId>& wave = action->targets;

  // Snapshot the pre-wave state once; every variant replays from it.
  std::stringstream snapshot;
  probe.engine().save(snapshot);
  auto fresh_engine = [&]() {
    std::stringstream ss(snapshot.str());
    return ForgivingGraph::load(ss);
  };

  std::string reference;  // checkpoint after the wave, workers=1
  double plan_w1_ms = 0.0;
  for (int workers : {1, 4}) {
    ForgivingGraph fg = fresh_engine();
    fg.set_shard_workers(workers);
    auto t0 = std::chrono::steady_clock::now();
    core::RepairPlan plan = fg.plan_delete_batch(wave);
    double plan_ms = ms_since(t0);
    auto t1 = std::chrono::steady_clock::now();
    fg.commit_delete_batch(plan);
    double commit_ms = ms_since(t1);

    FG_CHECK(plan.regions.size() == kWave);  // the wave really is disjoint
    std::stringstream after;
    fg.save(after);
    if (workers == 1)
      reference = after.str();
    else
      FG_CHECK_MSG(after.str() == reference,
                   "sharded repair diverged from sequential (C4)");

    std::string name = workers == 1 ? "sharded_wave_plan_w1" : "sharded_wave_plan_w4";
    record(t, name, kN, kWave, plan_ms);
    mark_worker_dependent();
    if (workers == 1) plan_w1_ms = plan_ms;
    if (workers == 4 && plan_ms > 0.0) {
      // > 1 when the worker fan-out wins (multi-core); < 1 where thread
      // spawn dominates (single-core boxes). Recorded either way.
      g_rows.push_back({"sharded_plan_speedup_w4", kN, kWave, plan_w1_ms / plan_ms, 0.0});
      mark_worker_dependent();
    }
    if (workers == 1) {
      // The per-phase split of the wave (partition/collect/merge from the
      // planner's own profile; commit measured here).
      record(t, "sharded_phase_partition", kN, kWave, plan.profile.partition_ms);
      record(t, "sharded_phase_collect", kN, kWave, plan.profile.collect_ms);
      record(t, "sharded_phase_merge_plan", kN, kWave, plan.profile.merge_ms);
      record(t, "sharded_phase_commit", kN, kWave, commit_ms);
    }
  }

  // R3: the reserved commit per commit-worker count, isolated from the
  // plan-side fan-out (shard workers stay 1, the plan is untimed). Byte-
  // identical structure at every count — the arena-id reservation fixes
  // every handle at plan time — so worker counts are an A/B on wall clock
  // only (FG_CHECKed against the reference above). On a box with a single
  // hardware thread the engine never fans out (see ShardedForest::commit),
  // so w > 1 measures the gate, not a pool; docs/REPRODUCING.md has the
  // caveat.
  double commit_w1_ms = 0.0;
  for (int workers : {1, 2, 4}) {
    ForgivingGraph fg = fresh_engine();
    fg.set_commit_workers(workers);  // persistent pool: spawned here, untimed
    core::RepairPlan plan = fg.plan_delete_batch(wave);
    auto t0 = std::chrono::steady_clock::now();
    fg.commit_delete_batch(plan);
    double commit_ms = ms_since(t0);

    std::stringstream after;
    fg.save(after);
    FG_CHECK_MSG(after.str() == reference,
                 "parallel commit diverged from sequential (C4)");

    record(t, "sharded_commit_w" + std::to_string(workers), kN, kWave, commit_ms);
    mark_worker_dependent();
    if (workers == 1) commit_w1_ms = commit_ms;
    if (workers == 4 && commit_ms > 0.0) {
      g_rows.push_back(
          {"sharded_commit_speedup_w4", kN, kWave, commit_w1_ms / commit_ms, 0.0});
      mark_worker_dependent();
    }
  }
  // R7: the break phase alone per break-worker count, driven through the
  // core's public phase API (begin_break / break_region / apply_break_effects
  // / finish_break) with a CommitPool fan-out — the same pipeline
  // ShardedForest::execute runs, timed around the break only. The merge then
  // completes untimed and the checkpoint is FG_CHECKed against the w=1
  // reference (C4 covers the break fan-out too).
  double break_w1_ms = 0.0;
  for (int workers : {1, 2, 4}) {
    std::stringstream ss(snapshot.str());
    core::StructuralCore core = core::StructuralCore::load(ss);
    ShardedForest shards;
    core::RepairPlan plan = shards.plan(core, wave);
    const int regions = static_cast<int>(plan.regions.size());
    // Persistent-pool discipline: spawn before the timer, like the engine.
    std::unique_ptr<CommitPool> pool =
        workers > 1 ? std::make_unique<CommitPool>(workers - 1) : nullptr;
    std::vector<core::StructuralCore::BreakEffects> effects(
        static_cast<size_t>(regions));
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::vector<VNodeId>> pieces;
    if (workers == 1) {
      pieces = core.commit_break(plan);
    } else {
      core.begin_break(plan);
      pieces.resize(static_cast<size_t>(regions));
      struct Ctx {
        std::atomic<int> next{0};
        std::atomic<int> broken{0};
      };
      auto ctx = std::make_shared<Ctx>();
      auto work = [&core, &plan, &pieces, &effects, ctx, regions] {
        for (;;) {
          int r = ctx->next.fetch_add(1, std::memory_order_relaxed);
          if (r >= regions) return;
          pieces[static_cast<size_t>(r)] = core.break_region(
              plan.regions[static_cast<size_t>(r)],
              &effects[static_cast<size_t>(r)]);
          ctx->broken.fetch_add(1, std::memory_order_release);
        }
      };
      pool->dispatch(work);
      work();
      while (ctx->broken.load(std::memory_order_acquire) < regions)
        std::this_thread::yield();
      for (int r = 0; r < regions; ++r)
        core.apply_break_effects(plan.regions[static_cast<size_t>(r)],
                                 effects[static_cast<size_t>(r)]);
      core.finish_break(plan);
    }
    double break_ms = ms_since(t0);

    shards.commit(core, plan, std::move(pieces));  // untimed merge
    std::stringstream after;
    core.save(after);
    FG_CHECK_MSG(after.str() == reference,
                 "parallel break diverged from sequential (C4)");

    record(t, "break_w" + std::to_string(workers), kN, kWave, break_ms);
    mark_worker_dependent();
    if (workers == 1) break_w1_ms = break_ms;
    if (workers == 4 && break_ms > 0.0) {
      g_rows.push_back(
          {"break_speedup_w4", kN, kWave, break_w1_ms / break_ms, 0.0});
      mark_worker_dependent();
    }
  }

  if (single_core()) {
    std::cout << "note: hardware_concurrency() == 1 — the engine never fans "
                 "out here (the CommitPool gate), so the w4 speedup rows "
                 "measure the gate, not parallelism. They are marked "
                 "\"single_core\": true in BENCH_repair_path.json; do not "
                 "compare them against multi-core baselines.\n\n";
  }

  // Region split vs the pre-sharding single wave-wide RT, wall clock.
  {
    ForgivingGraph fg = fresh_engine();
    fg.set_region_split(core::RegionSplit::kGlobal);
    auto t0 = std::chrono::steady_clock::now();
    fg.delete_batch(wave);
    record(t, "sharded_wave_global_rt", kN, kWave, ms_since(t0));
  }

  // The dist protocol: independent DAG branches per region repair in
  // max-over-regions rounds; the global split pays the sum of one big merge.
  for (bool global : {false, true}) {
    dist::DistForgivingGraph net(g0);
    if (global) net.set_region_split(core::RegionSplit::kGlobal);
    for (NodeId v : churned) net.remove(v);
    net.delete_batch(wave);
    const auto& c = net.last_repair_cost();
    const char* name = global ? "dist_sharded_wave_global" : "dist_sharded_wave_regions";
    cost.add(name, kN, kWave, std::to_string(c.messages), std::to_string(c.rounds));
    g_rows.push_back({std::string(name) + "_rounds", kN, kWave,
                      static_cast<double>(c.rounds), 0.0});
    g_rows.push_back({std::string(name) + "_messages", kN, kWave,
                      static_cast<double>(c.messages), 0.0});
  }
}

// Scenario G (R5): certificate emission overhead. The same 64-deletion
// schedule on ER(1024) with and without a CertificateWriter attached —
// emission re-derives each wave's image edges and runs the stretch-witness
// BFS passes, so the ratio row is what docs/CERTIFICATES.md quotes as the
// price of --certify (with no sink attached the engines skip all of it).
void certify_overhead(Table& t) {
  constexpr int kN = 1024;
  constexpr int kWave = 64;
  Rng rng(21);
  Graph g0 = make_erdos_renyi(kN, 8.0 / kN, rng);
  auto order = g0.alive_nodes();
  rng.shuffle(order);
  order.resize(kWave);

  auto run = [&](bool certify) {
    ForgivingGraph fg(g0);
    std::ostringstream certs;
    harness::CertificateWriter writer(certs);
    if (certify) fg.set_certificate_sink(&writer);
    auto t0 = std::chrono::steady_clock::now();
    for (NodeId v : order) fg.remove(v);
    double ms = ms_since(t0);
    if (certify) {  // untimed: the stream must actually validate
      std::istringstream is(certs.str());
      cert::StreamResult res = cert::check_stream(is);
      FG_CHECK_MSG(res.ok, res.diagnostic.c_str());
      FG_CHECK(res.waves_checked == kWave);
    }
    return ms;
  };

  run(false);  // untimed warm-up
  double off_ms = run(false);
  double on_ms = run(true);
  record(t, "certify_off_1024", kN, kWave, off_ms);
  record(t, "certify_on_1024", kN, kWave, on_ms);
  if (off_ms > 0.0)
    g_rows.push_back({"certify_overhead_1024", kN, kWave, on_ms / off_ms, 0.0});
}

// Scenario H (R6): the sustained-churn healer service — the bench driver of
// bench/churn_common.h (shared with the standalone bench/churn_service.cpp)
// run at a tracked scale: steady-state throughput of the pipelined service
// loop with the sampled certificate guardrail on. FG_CHURN_FULL=1 switches
// to the full acceptance scale (n = 2^20 >= 10^6 nodes, 2M ops — minutes of
// wall clock; what docs/EXPERIMENTS.md § R6 quotes); the default keeps the
// tracked row reproducible in seconds.
void churn_service(Table& t) {
  ChurnDriverConfig cfg;
  const bool full = std::getenv("FG_CHURN_FULL") != nullptr;
  if (!full) {
    cfg.nodes = 1 << 16;
    cfg.ops = 200'000;
  }
  cfg.service.certify_every = 256;
  ChurnDriverResult r = run_churn_driver(cfg);
  FG_CHECK_MSG(r.stats.cert_rejections == 0,
               "the sampled certificate guardrail rejected a wave");
  FG_CHECK(r.stats.stale_replans == 0);  // nothing mutates behind the service

  const int ops = static_cast<int>(cfg.ops);
  record(t, "churn_service_build", cfg.nodes, cfg.nodes, r.build_ms);
  record(t, "churn_service_stream", cfg.nodes, ops, r.elapsed_ms);
  g_rows.push_back({"churn_ops_per_sec", cfg.nodes, ops, r.ops_per_sec, 0.0});
  g_rows.push_back({"churn_repair_p50_ms", cfg.nodes, ops, r.p50_ms, 0.0});
  g_rows.push_back({"churn_repair_p99_ms", cfg.nodes, ops, r.p99_ms, 0.0});
  g_rows.push_back({"churn_waves", cfg.nodes, ops,
                    static_cast<double>(r.stats.waves), 0.0});
  g_rows.push_back({"churn_certified_waves", cfg.nodes, ops,
                    static_cast<double>(r.stats.certified_waves), 0.0});
}

// Scenario I (R8): the durable-snapshot subsystem (src/snap) at the
// acceptance scale, n = 2^20. Four costs and one size:
//
//   snapshot_base   — to_base_image + encode_base of the full engine
//   snapshot_delta  — framing one 64-victim wave delta (the steady-state
//                     per-wave cost the healer service pays)
//   restore_full    — the pre-snapshot path: parse a text checkpoint
//   restore_delta   — the snapshot path: decode base + replay ONE delta
//   bytes_per_node  — base-image size over n
//
// The point of the subsystem is the restore_full / restore_delta ratio:
// recovery cost proportional to the delta tail, not to n-scale text
// parsing. Both restores are FG_CHECKed to land on the identical
// checkpoint before the ratio is recorded.
void snapshot_cost(Table& t) {
  constexpr int kN = 1 << 20;
  constexpr int kWave = 64;
  Rng rng(55);
  Graph g0 = make_sparse_random(kN, 4.0, rng);
  ForgivingGraph fg(g0);

  // Base image of the pre-wave state: this is what a rotation writes.
  auto t0 = std::chrono::steady_clock::now();
  snap::BaseImage base;
  fg.core().to_base_image(&base);
  std::vector<uint8_t> base_bytes = snap::encode_base(base);
  record(t, "snapshot_base", kN, kN, ms_since(t0));
  g_rows.push_back({"bytes_per_node", kN, kN,
                    static_cast<double>(base_bytes.size()) / kN, 0.0});

  // One wave of deletions with the recorder attached — the delta is the
  // whole durable cost of that wave.
  SnapshotRecorder rec;
  rec.begin(fg.core(), 0, 0);
  snap::WaveDelta delta;
  rec.set_sink([&delta](const snap::WaveDelta& d) { delta = d; });
  fg.core().set_delta_recorder(&rec);
  auto wave = g0.alive_nodes();
  rng.shuffle(wave);
  wave.resize(kWave);
  fg.delete_batch(wave);
  fg.core().set_delta_recorder(nullptr);
  FG_CHECK(delta.wave == 1 && !rec.needs_rebase());

  t0 = std::chrono::steady_clock::now();
  std::vector<uint8_t> log_bytes;
  snap::append_delta(&log_bytes, delta);
  record(t, "snapshot_delta", kN, kWave, ms_since(t0));

  std::stringstream text;
  fg.core().save(text);

  t0 = std::chrono::steady_clock::now();
  core::StructuralCore from_text = core::StructuralCore::load(text);
  double full_ms = ms_since(t0);
  record(t, "restore_full", kN, kN, full_ms);

  t0 = std::chrono::steady_clock::now();
  snap::BaseImage decoded;
  std::string err;
  FG_CHECK(snap::decode_base(base_bytes, &decoded, &err));
  core::StructuralCore from_snap;
  FG_CHECK(core::StructuralCore::from_base_image(decoded, &from_snap, &err));
  FG_CHECK(from_snap.apply_wave_delta(delta, &err));
  double delta_ms = ms_since(t0);
  record(t, "restore_delta", kN, kWave, delta_ms);

  std::stringstream a, b;
  from_text.save(a);
  from_snap.save(b);
  FG_CHECK_MSG(a.str() == b.str(), "snapshot restore diverged from text load");
  if (delta_ms > 0.0)
    g_rows.push_back({"restore_speedup", kN, kN, full_ms / delta_ms, 0.0});
}

void write_json(const std::string& path) {
  std::ofstream os(path);
  os << "{\n  \"bench\": \"repair_path\",\n  \"hw_threads\": "
     << std::thread::hardware_concurrency() << ",\n  \"rows\": [\n";
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const JsonRow& r = g_rows[i];
    os << "    {\"scenario\": \"" << r.scenario << "\", \"n\": " << r.n
       << ", \"work\": " << r.work << ", \"value\": " << r.ms
       << ", \"per_op_us\": " << r.per_op_us;
    if (r.worker_dependent)
      os << ", \"single_core\": " << (single_core() ? "true" : "false");
    os << "}" << (i + 1 < g_rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace
}  // namespace fg

int main() {
  using namespace fg;
  std::cout << "--- R1/R2: repair-path hot loop (dirty-region collection,"
               " batched deletions, sharded plan/commit) ---\n\n";
  Table t{"scenario", "n", "ops", "total ms", "us/op"};
  Table cost{"scenario", "n", "victims", "messages", "rounds"};
  rt_breakup(t);
  wave(t);
  dist_wave(t, cost);
  adjacency_micro(t);
  slot_lookup(t);
  star_hub_merge(t);
  sharded_wave(t, cost);
  certify_overhead(t);
  churn_service(t);
  snapshot_cost(t);
  t.print(std::cout);
  std::cout << "\nprotocol cost (wave DAGs; regions repair in parallel rounds):\n";
  cost.print(std::cout);
  write_json("BENCH_repair_path.json");
  std::cout << "\nwrote BENCH_repair_path.json\n";
  return 0;
}
