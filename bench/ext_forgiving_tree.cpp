// Extension E2: Forgiving Graph vs Forgiving Tree (PODC 2008).
//
// The paper's introduction claims three improvements over its predecessor:
//  1. *stretch* (pairwise distances vs G') instead of only *diameter*;
//  2. adversarial insertions handled;
//  3. no O(n log n)-message initialization phase.
// This bench quantifies improvement 1: both structures heal the same
// deletion schedules; we report stretch against the full G'. The Forgiving
// Tree only maintains a spanning tree, so every non-tree shortcut of the
// original network is lost and its stretch grows with graph density, while
// the Forgiving Graph tracks G' within ceil(log2 n).
#include <iostream>

#include "adversary/adversary.h"
#include "bench_common.h"
#include "harness/metrics.h"
#include "haft/haft.h"
#include "heal/forgiving_tree.h"
#include "util/table.h"

namespace fg {
namespace {

void run() {
  std::cout << "=== E2: ForgivingGraph vs ForgivingTree (predecessor) ===\n\n";
  Table t{"graph", "n", "healer", "max stretch", "avg stretch", "bound", "max deg ratio"};
  for (const char* gname : {"er", "ba", "grid", "cycle"}) {
    for (int n : {256, 1024}) {
      // One recorded schedule drives both structures.
      Rng rng(0xE2ul + static_cast<uint64_t>(n) + gname[0]);
      Graph g0 = bench::make_named_graph(gname, n, rng);
      ForgivingGraphHealer fgh(g0);
      RandomDeleteAdversary adv(std::max(8, n / 3));
      Rng runner = rng.split();
      std::vector<NodeId> schedule;
      while (auto a = adv.next(fgh, runner)) {
        schedule.push_back(a->target);
        fgh.remove(a->target);
      }
      ForgivingTreeHealer fth(g0);
      for (NodeId v : schedule) fth.remove(v);

      double bound = std::max(1, haft::ceil_log2(n));
      for (Healer* h : {static_cast<Healer*>(&fgh), static_cast<Healer*>(&fth)}) {
        Rng srng(17);
        auto s = sample_stretch(h->healed(), h->gprime(), 24, srng);
        auto d = degree_stats(h->healed(), h->gprime());
        t.add(gname, n, h->name(), fmt(s.max_stretch), fmt(s.avg_stretch), fmt(bound),
              fmt(d.max_ratio));
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nThe Forgiving Tree respects its own guarantee (tree diameter), but\n"
               "measured against the full G' its stretch exceeds the log2(n) bound on\n"
               "dense graphs — the gap the 2009 paper closes.\n";
}

}  // namespace
}  // namespace fg

int main() {
  fg::run();
  return 0;
}
