// Experiment T2 (Theorem 1.2): network stretch under adversarial deletion.
//
// Paper claim: dist(x,y,G) <= ceil(log2 n) * dist(x,y,G') for every alive
// pair, where n counts all nodes ever seen. We sweep seed graphs x
// adversaries x sizes, delete 60% of the network, and sample the stretch
// from 32 BFS sources at four checkpoints; baselines show where the bound
// fails without the Forgiving Graph's RT machinery.
#include <iostream>

#include "adversary/adversary.h"
#include "bench_common.h"
#include "harness/experiment.h"
#include "haft/haft.h"
#include "heal/baselines.h"
#include "util/table.h"

namespace fg {
namespace {

void run() {
  std::cout << "=== T2 (Theorem 1.2): stretch dist(x,y,G)/dist(x,y,G') ===\n"
            << "Bound: ceil(log2 n). 'broken' counts sampled pairs connected in G'\n"
            << "but disconnected in G (only baselines break connectivity).\n\n";

  Table t{"graph", "adversary", "n", "healer", "max stretch", "avg stretch",
          "bound", "ok", "broken"};
  const char* graphs[] = {"er", "ba", "star"};
  const char* advs[] = {"random-delete", "maxdeg-delete"};
  const int sizes[] = {256, 1024, 2048};
  const char* healers[] = {"forgiving", "line", "star", "binary-tree", "none"};

  for (const char* gname : graphs) {
    for (const char* aname : advs) {
      for (int n : sizes) {
        for (const char* hname : healers) {
          bool is_fg = std::string(hname) == "forgiving";
          if (!is_fg && n != 1024) continue;  // baselines: one size suffices
          Rng rng(0x52ul * static_cast<uint64_t>(n) + gname[0] * 131 + aname[0]);
          Graph g0 = bench::make_named_graph(gname, n, rng);
          auto healer = make_healer(hname, g0);
          auto adv = make_adversary(aname);
          RunConfig cfg;
          cfg.max_steps = static_cast<int>(0.6 * g0.alive_count());
          cfg.sample_every = std::max(1, cfg.max_steps / 4);
          cfg.stretch_sources = 32;
          auto res = run_experiment(*healer, *adv, cfg, rng);
          double bound = std::max(1, haft::ceil_log2(healer->gprime().node_capacity()));
          t.add(gname, aname, n, healer->name(), fmt(res.worst_stretch),
                fmt(res.final.stretch.avg_stretch), fmt(bound),
                is_fg ? (res.worst_stretch <= bound + 1e-9 ? "yes" : "NO!")
                      : (res.worst_stretch <= bound + 1e-9 ? "(yes)" : "no"),
                std::to_string(res.broken_pairs_total));
        }
      }
    }
  }
  t.print(std::cout);
}

}  // namespace
}  // namespace fg

int main() {
  fg::run();
  return 0;
}
