// Experiment T5 (Lemma 1 and Section 4.1): half-full tree properties.
//
//  1. haft(l) depth equals ceil(log2 l)  (Lemma 1.3) — verified for every
//     l in [1, 4096].
//  2. Strip decomposes haft(l) into popcount(l) complete trees whose sizes
//     are the one-bits of l (Lemma 1.2), removing exactly popcount(l)-1
//     nodes.
//  3. Merge is binary addition: merging haft(a) and haft(b) yields
//     haft(a+b) (Figure 5).
#include <bit>
#include <iostream>

#include "haft/haft.h"
#include "util/rng.h"
#include "util/table.h"

namespace fg::haft {
namespace {

void depth_table() {
  std::cout << "--- T5a: depth of haft(l) vs ceil(log2 l), l in [1, 4096] ---\n";
  int checked = 0, correct = 0;
  for (int64_t l = 1; l <= 4096; ++l) {
    HaftForest f;
    int root = f.build(l);
    ++checked;
    if (f.depth(root) == ceil_log2(l) && f.is_haft(root)) ++correct;
  }
  Table t{"l range", "checked", "depth == ceil(log2 l) && valid haft"};
  t.add("1..4096", checked, correct);
  t.print(std::cout);

  Table sample{"l", "depth", "ceil(log2 l)", "strip pieces", "popcount(l)"};
  for (int64_t l : {1, 2, 3, 7, 8, 21, 100, 255, 256, 1000, 4096}) {
    HaftForest f;
    int root = f.build(l);
    int depth = f.depth(root);
    auto pieces = f.strip(root);
    sample.add(std::to_string(l), depth, ceil_log2(l), static_cast<int>(pieces.size()),
               std::popcount(static_cast<uint64_t>(l)));
  }
  std::cout << '\n';
  sample.print(std::cout);
}

void merge_is_addition() {
  std::cout << "\n--- T5b: Merge(haft(a), haft(b)) == haft(a+b) (binary addition) ---\n";
  Rng rng(42);
  int trials = 0, ok = 0;
  for (int i = 0; i < 500; ++i) {
    int64_t a = rng.next_int(1, 2000);
    int64_t b = rng.next_int(1, 2000);
    HaftForest f;
    int ra = f.build(a, 0);
    int rb = f.build(b, static_cast<uint64_t>(a));
    int m = f.merge({ra, rb});
    ++trials;
    if (f.is_haft(m) && f.node(m).leaf_count == a + b && f.depth(m) == ceil_log2(a + b)) ++ok;
  }
  Table t{"random (a,b) trials", "merge == haft(a+b)"};
  t.add(trials, ok);
  t.print(std::cout);
}

void strip_node_removal() {
  std::cout << "\n--- T5c: Strip removes exactly popcount(l)-1 nodes ---\n";
  int trials = 0, ok = 0;
  for (int64_t l = 1; l <= 2048; ++l) {
    HaftForest f;
    int root = f.build(l);
    int before = f.live_node_count();
    auto pieces = f.strip(root);
    ++trials;
    if (before - f.live_node_count() ==
        std::popcount(static_cast<uint64_t>(l)) - 1 &&
        static_cast<int>(pieces.size()) == std::popcount(static_cast<uint64_t>(l)))
      ++ok;
  }
  Table t{"l range", "trials", "exact removals"};
  t.add("1..2048", trials, ok);
  t.print(std::cout);
}

}  // namespace
}  // namespace fg::haft

int main() {
  std::cout << "=== T5 (Lemma 1): half-full tree properties ===\n\n";
  fg::haft::depth_table();
  fg::haft::merge_is_addition();
  fg::haft::strip_node_removal();
  return 0;
}
