// Sustained-churn driver for the healer service (ROADMAP: "Sustained-churn
// healer service"; docs/EXPERIMENTS.md § R6): a long-lived fg::HealerService
// ingesting a continuous seeded insert/delete stream against a large sparse
// substrate (n >= 10^6 at the defaults), with pipelined wave planning and
// the sampled certificate guardrail on. Reports steady-state throughput and
// per-wave repair latency percentiles; the tracked rows land in
// BENCH_repair_path.json via bench/repair_path.cpp, which runs the same
// driver (bench/churn_common.h).
//
// Flags (all optional):
//   --nodes N          substrate size              (default 1048576)
//   --ops N            stream length               (default 2000000)
//   --wave N           deletions per repair wave   (default 64)
//   --certify-every K  guardrail sampling period   (default 256; 0 = off)
//   --serial           disable pipelined planning  (A/B reference)
//   --plan-workers N / --commit-workers N / --break-workers N
//   --seed S
//   --cert-stream P    tee sampled certificates to file P (fgcheck input —
//                      the CI service-loop audit re-validates it)
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "churn_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace fg;

  ChurnDriverConfig cfg;
  cfg.service.certify_every = 256;
  std::string cert_path;
  for (int i = 1; i < argc; ++i) {
    auto next_int = [&](const char* flag) -> int64_t {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return std::atoll(argv[++i]);
    };
    if (!std::strcmp(argv[i], "--nodes")) {
      cfg.nodes = static_cast<int>(next_int("--nodes"));
    } else if (!std::strcmp(argv[i], "--ops")) {
      cfg.ops = next_int("--ops");
    } else if (!std::strcmp(argv[i], "--wave")) {
      cfg.service.wave_size = static_cast<int>(next_int("--wave"));
    } else if (!std::strcmp(argv[i], "--certify-every")) {
      cfg.service.certify_every = static_cast<int>(next_int("--certify-every"));
    } else if (!std::strcmp(argv[i], "--serial")) {
      cfg.service.overlap = false;
    } else if (!std::strcmp(argv[i], "--plan-workers")) {
      cfg.service.plan_workers = static_cast<int>(next_int("--plan-workers"));
    } else if (!std::strcmp(argv[i], "--commit-workers")) {
      cfg.service.commit_workers = static_cast<int>(next_int("--commit-workers"));
    } else if (!std::strcmp(argv[i], "--break-workers")) {
      cfg.service.break_workers = static_cast<int>(next_int("--break-workers"));
    } else if (!std::strcmp(argv[i], "--seed")) {
      cfg.seed = static_cast<uint64_t>(next_int("--seed"));
    } else if (!std::strcmp(argv[i], "--cert-stream")) {
      if (i + 1 >= argc) {
        std::cerr << "--cert-stream needs a path\n";
        std::exit(2);
      }
      cert_path = argv[++i];
    } else {
      std::cerr << "unknown flag: " << argv[i] << "\n";
      std::exit(2);
    }
  }

  std::ofstream cert_file;
  if (!cert_path.empty()) {
    cert_file.open(cert_path);
    if (!cert_file) {
      std::cerr << "cannot open " << cert_path << "\n";
      std::exit(2);
    }
  }

  std::cout << "--- R6: sustained-churn healer service (n=" << cfg.nodes
            << ", ops=" << cfg.ops << ", wave=" << cfg.service.wave_size
            << ", certify_every=" << cfg.service.certify_every
            << ", overlap=" << (cfg.service.overlap ? "on" : "off") << ") ---\n\n";

  int64_t alerts = 0;
  ChurnDriverResult r = run_churn_driver(
      cfg, cert_file.is_open() ? &cert_file : nullptr,
      [&alerts](int64_t wave, const std::string& diagnostic) {
        ++alerts;
        std::cerr << "ALERT: wave " << wave << ": certificate rejected: "
                  << diagnostic << "\n";
      });

  char buf[64];
  Table t{"metric", "value"};
  auto row = [&](const char* name, double v, const char* fmt = "%.2f") {
    std::snprintf(buf, sizeof buf, fmt, v);
    t.add(name, buf);
  };
  row("build_ms", r.build_ms);
  row("elapsed_ms", r.elapsed_ms);
  row("ops_per_sec", r.ops_per_sec, "%.0f");
  row("repair_p50_ms", r.p50_ms, "%.3f");
  row("repair_p99_ms", r.p99_ms, "%.3f");
  row("waves", static_cast<double>(r.stats.waves), "%.0f");
  row("inserts", static_cast<double>(r.stats.inserts), "%.0f");
  row("deletes", static_cast<double>(r.stats.deletes), "%.0f");
  row("stale_replans", static_cast<double>(r.stats.stale_replans), "%.0f");
  row("certified_waves", static_cast<double>(r.stats.certified_waves), "%.0f");
  row("cert_rejections", static_cast<double>(r.stats.cert_rejections), "%.0f");
  t.print(std::cout);

  if (!cert_path.empty())
    std::cout << "\nwrote " << r.stats.certified_waves
              << " sampled certificates to " << cert_path
              << " (validate: fgcheck " << cert_path << ")\n";
  return alerts == 0 && r.stats.cert_rejections == 0 ? 0 : 1;
}
