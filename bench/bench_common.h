// Shared helpers for the experiment binaries: named graph construction and
// formatting. Every binary prints a self-contained, seeded, reproducible
// table to stdout (see docs/EXPERIMENTS.md for the paper-vs-measured record).
#pragma once

#include <string>

#include "graph/generators.h"
#include "util/check.h"
#include "util/rng.h"

namespace fg::bench {

/// Build a named seed graph over ~n nodes: "star", "path", "cycle", "grid",
/// "er" (ER with mean degree 8), "ba" (Barabasi-Albert m=2), "tree".
inline Graph make_named_graph(const std::string& kind, int n, Rng& rng) {
  if (kind == "star") return make_star(n);
  if (kind == "path") return make_path(n);
  if (kind == "cycle") return make_cycle(n);
  if (kind == "grid") {
    int side = 1;
    while (side * side < n) ++side;
    return make_grid(side, side);
  }
  if (kind == "er") return make_erdos_renyi(n, 8.0 / n, rng);
  if (kind == "ba") return make_barabasi_albert(n, 2, rng);
  if (kind == "tree") return make_random_tree(n, rng);
  FG_CHECK_MSG(false, "unknown graph kind");
  return Graph(1);
}

}  // namespace fg::bench
