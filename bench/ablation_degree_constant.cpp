// Ablation A2: how tight is the degree constant of Theorem 1.1?
//
// The paper claims deg(v,G) <= 3 deg(v,G'). Counting edges per slot gives
// leaf->parent (1) + helper's parent/children (3) = 4 before the
// homomorphism collapses virtual edges between nodes of the same processor.
// This bench probes the constant two ways:
//   A2a — a hand-built construction that maximizes a single slot's edges:
//         two degree-2^k hubs sharing a neighbor, deleted in sequence so
//         their RTs merge and the shared node's helper gains a parent.
//   A2b — randomized search: thousands of small adversarial schedules,
//         tracking the worst ratio ever seen anywhere.
#include <algorithm>
#include <iostream>

#include "fg/forgiving_graph.h"
#include "graph/generators.h"
#include "harness/metrics.h"
#include "util/rng.h"
#include "util/table.h"

namespace fg {
namespace {

void construction() {
  std::cout << "--- A2a: adversarial construction (two 2^k-hubs + shared neighbor) ---\n";
  Table t{"k", "max ratio after hub1", "after hub2", "after shared", "worst node G'-deg"};
  for (int k : {2, 3, 4, 5, 6}) {
    int leaves = 1 << k;
    // z is adjacent to both hubs; each hub also has 2^k private leaves.
    Graph g0(3 + 2 * leaves);
    NodeId z = 0, h1 = 1, h2 = 2;
    g0.add_edge(h1, z);
    g0.add_edge(h2, z);
    NodeId next = 3;
    for (int i = 0; i < leaves; ++i) g0.add_edge(h1, next++);
    for (int i = 0; i < leaves; ++i) g0.add_edge(h2, next++);
    ForgivingGraph fg(g0);
    fg.remove(h1);
    double r1 = fg.max_degree_ratio();
    fg.remove(h2);
    double r2 = fg.max_degree_ratio();
    fg.remove(z);  // merges RT(h1) and RT(h2)
    double r3 = fg.max_degree_ratio();
    fg.validate();
    // G'-degree of the worst node.
    int worst_deg = 0;
    double worst = 0;
    for (NodeId v : fg.healed().alive_nodes()) {
      if (fg.gprime().degree(v) == 0) continue;
      double r = fg.degree_ratio(v);
      if (r > worst) {
        worst = r;
        worst_deg = fg.gprime().degree(v);
      }
    }
    t.add(k, fmt(r1), fmt(r2), fmt(r3), worst_deg);
  }
  t.print(std::cout);
}

void random_search() {
  std::cout << "\n--- A2b: randomized worst-case search (2000 schedules, n<=24) ---\n";
  double global_worst = 1.0;
  uint64_t worst_seed = 0;
  for (uint64_t seed = 0; seed < 2000; ++seed) {
    Rng rng(seed);
    int n = static_cast<int>(rng.next_int(6, 24));
    Graph g0 = make_erdos_renyi(n, rng.next_double() * 0.4 + 0.1, rng);
    ForgivingGraph fg(g0);
    int steps = static_cast<int>(rng.next_int(3, n - 2));
    for (int i = 0; i < steps; ++i) {
      auto alive = fg.healed().alive_nodes();
      if (alive.size() <= 2) break;
      fg.remove(rng.pick(alive));
      double r = fg.max_degree_ratio();
      if (r > global_worst) {
        global_worst = r;
        worst_seed = seed;
      }
    }
  }
  Table t{"schedules", "worst ratio found", "seed", "paper bound", "per-slot bound"};
  t.add(2000, fmt(global_worst), std::to_string(worst_seed), "3.00", "4.00");
  t.print(std::cout);
  std::cout << "\nConclusion (recorded in docs/EXPERIMENTS.md): the worst observed ratio is "
            << fmt(global_worst)
            << ".\nThe construction guarantees deg(v,G) <= deg(v,G') + 3*helpers(v) <= "
               "4*deg(v,G');\nthe paper's multiplicative constant 3 is attained only when "
               "the haft is a\nperfect tree (no chain helpers) or when homomorphic "
               "collapsing removes the\nextra edge. Theorem 1.1's claim holds in the "
               "additive per-slot sense (+3).\n";
}

}  // namespace
}  // namespace fg

int main() {
  std::cout << "=== A2: degree-constant tightness ===\n\n";
  fg::construction();
  fg::random_search();
  return 0;
}
