// Asynchrony robustness: the paper's model only promises reliable eventual
// delivery ("Nodes of Ht may communicate (asynchronously, in parallel)").
// Under randomized delivery order and per-message delays the repair
// protocol must produce the same structures — in global-plan mode even the
// exact same topology as the synchronous run and the centralized engine,
// because claimant races only move *who issues* a plan step, never the plan.
#include <gtest/gtest.h>

#include "fg/dist/dist_forgiving_graph.h"
#include "fg/forgiving_graph.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "haft/haft.h"
#include "harness/metrics.h"
#include "util/rng.h"

namespace fg::dist {
namespace {

class AsyncSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AsyncSeeds, GlobalModeMatchesCentralizedUnderAsynchrony) {
  Rng rng(17);
  Graph g0 = make_erdos_renyi(36, 0.16, rng);
  ForgivingGraph central(g0);
  DistForgivingGraph net(g0);
  net.set_delivery_policy({GetParam(), /*max_extra_delay=*/3, /*shuffle=*/true});

  for (int i = 0; i < 20; ++i) {
    auto alive = central.healed().alive_nodes();
    NodeId v = rng.pick(alive);
    central.remove(v);
    net.remove(v);
    ASSERT_TRUE(central.healed().same_topology(net.image()))
        << "diverged at step " << i << " seed " << GetParam();
  }
  net.validate();
}

TEST_P(AsyncSeeds, StageWiseBoundsHoldUnderAsynchrony) {
  Rng rng(23);
  Graph g0 = make_barabasi_albert(30, 2, rng);
  DistForgivingGraph net(g0, MergeMode::kStageWise);
  net.set_delivery_policy({GetParam() ^ 0xdead, 4, true});

  for (int i = 0; i < 18; ++i) {
    Graph img = net.image();
    auto alive = img.alive_nodes();
    if (alive.size() <= 2) break;
    net.remove(rng.pick(alive));
    net.validate();
    ASSERT_TRUE(is_connected(net.image()));
  }
  auto d = degree_stats(net.image(), net.gprime());
  EXPECT_LE(d.max_ratio, 4.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncSeeds, ::testing::Range(uint64_t{1}, uint64_t{9}));

TEST(AsyncDelivery, DelaysOnlyStretchRounds) {
  DistForgivingGraph sync_net(make_star(65));
  DistForgivingGraph slow_net(make_star(65));
  slow_net.set_delivery_policy({5, 4, false});
  sync_net.remove(0);
  slow_net.remove(0);
  EXPECT_EQ(sync_net.last_repair_cost().messages, slow_net.last_repair_cost().messages);
  EXPECT_GT(slow_net.last_repair_cost().rounds, sync_net.last_repair_cost().rounds);
  EXPECT_TRUE(sync_net.image().same_topology(slow_net.image()));
}

TEST(AsyncDelivery, ShuffleAloneKeepsTopology) {
  DistForgivingGraph a(make_star(33));
  DistForgivingGraph b(make_star(33));
  b.set_delivery_policy({99, 0, true});
  for (NodeId v : {0, 5, 9}) {
    a.remove(v);
    b.remove(v);
  }
  EXPECT_TRUE(a.image().same_topology(b.image()));
}

}  // namespace
}  // namespace fg::dist
