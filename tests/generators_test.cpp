#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"

namespace fg {
namespace {

TEST(Generators, Star) {
  Graph g = make_star(6);
  EXPECT_EQ(g.degree(0), 5);
  for (NodeId v = 1; v < 6; ++v) EXPECT_EQ(g.degree(v), 1);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, PathAndCycle) {
  Graph p = make_path(5);
  EXPECT_EQ(p.edge_count(), 4);
  EXPECT_EQ(exact_diameter(p), 4);
  Graph c = make_cycle(6);
  EXPECT_EQ(c.edge_count(), 6);
  EXPECT_EQ(exact_diameter(c), 3);
}

TEST(Generators, Grid) {
  Graph g = make_grid(3, 4);
  EXPECT_EQ(g.alive_count(), 12);
  EXPECT_EQ(g.edge_count(), 3 * 3 + 2 * 4);  // horizontal + vertical
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(exact_diameter(g), 2 + 3);
}

TEST(Generators, Complete) {
  Graph g = make_complete(5);
  EXPECT_EQ(g.edge_count(), 10);
  EXPECT_EQ(exact_diameter(g), 1);
}

TEST(Generators, BinaryTree) {
  Graph g = make_binary_tree(7);
  EXPECT_EQ(g.edge_count(), 6);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(1), 3);
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(1);
  for (int n : {1, 2, 10, 100}) {
    Graph g = make_random_tree(n, rng);
    EXPECT_EQ(g.edge_count(), n - 1);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, ErdosRenyiConnectedAndSized) {
  Rng rng(2);
  Graph g = make_erdos_renyi(200, 4.0 / 200, rng);
  EXPECT_EQ(g.alive_count(), 200);
  EXPECT_TRUE(is_connected(g));
  // Expected ~ n*p*(n-1)/2 = 398 edges plus connectivity patches.
  EXPECT_GT(g.edge_count(), 200);
  EXPECT_LT(g.edge_count(), 800);
}

TEST(Generators, ErdosRenyiZeroProbabilityStillConnected) {
  Rng rng(3);
  Graph g = make_erdos_renyi(50, 0.0, rng);
  EXPECT_TRUE(is_connected(g));  // patched into one component
  EXPECT_EQ(g.edge_count(), 49);
}

TEST(Generators, BarabasiAlbert) {
  Rng rng(4);
  Graph g = make_barabasi_albert(300, 3, rng);
  EXPECT_EQ(g.alive_count(), 300);
  EXPECT_TRUE(is_connected(g));
  // Seed clique 6 edges + 296 * 3.
  EXPECT_EQ(g.edge_count(), 6 + 296 * 3);
  // Preferential attachment should produce at least one big hub.
  int maxdeg = 0;
  for (NodeId v : g.alive_nodes()) maxdeg = std::max(maxdeg, g.degree(v));
  EXPECT_GT(maxdeg, 15);
}

TEST(Generators, DeterministicForSeed) {
  Rng r1(9), r2(9);
  Graph a = make_erdos_renyi(80, 0.05, r1);
  Graph b = make_erdos_renyi(80, 0.05, r2);
  EXPECT_TRUE(a.same_topology(b));
}

}  // namespace
}  // namespace fg
