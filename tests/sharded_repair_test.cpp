// Tests of the sharded plan/commit pipeline: region partitioning (the DSU
// over victims, shared RTs, and victim-victim G' edges), per-region
// healing semantics, plan purity under concurrent planning, the disjoint-
// regions adversary, and the dist engine's per-region DAG branches.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "adversary/adversary.h"
#include "fg/dist/dist_forgiving_graph.h"
#include "fg/forgiving_graph.h"
#include "fg/sharded_forest.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "harness/trace.h"
#include "heal/healer.h"
#include "util/rng.h"

namespace fg {
namespace {

/// Random single deletions to grow some RTs before the wave under test.
/// Returns the victims so the identical churn can replay on twin engines.
std::vector<NodeId> churn(ForgivingGraph& fg, Rng& rng, int deletions) {
  std::vector<NodeId> victims;
  for (int i = 0; i < deletions; ++i) {
    auto alive = fg.healed().alive_nodes();
    if (static_cast<int>(alive.size()) <= 4) break;
    NodeId v = rng.pick(alive);
    fg.remove(v);
    victims.push_back(v);
  }
  return victims;
}

std::string checkpoint(const ForgivingGraph& fg) {
  std::stringstream ss;
  fg.save(ss);
  return ss.str();
}

bool same_plans(const core::RepairPlan& a, const core::RepairPlan& b) {
  if (a.victims != b.victims || a.victim_region != b.victim_region ||
      a.regions.size() != b.regions.size())
    return false;
  for (size_t i = 0; i < a.regions.size(); ++i) {
    const core::RegionPlan& x = a.regions[i];
    const core::RegionPlan& y = b.regions[i];
    if (x.id != y.id || x.victims != y.victims || x.roots != y.roots ||
        x.events.size() != y.events.size() || x.fresh.size() != y.fresh.size() ||
        x.pieces.size() != y.pieces.size() || x.steps.size() != y.steps.size())
      return false;
    for (size_t j = 0; j < x.events.size(); ++j)
      if (x.events[j].is_piece != y.events[j].is_piece || x.events[j].h != y.events[j].h)
        return false;
    for (size_t j = 0; j < x.fresh.size(); ++j)
      if (x.fresh[j].owner != y.fresh[j].owner || x.fresh[j].dead != y.fresh[j].dead)
        return false;
    for (size_t j = 0; j < x.pieces.size(); ++j)
      if (x.pieces[j].leaf_count != y.pieces[j].leaf_count || x.pieces[j].key != y.pieces[j].key)
        return false;
    for (size_t j = 0; j < x.steps.size(); ++j)
      if (x.steps[j].left != y.steps[j].left || x.steps[j].right != y.steps[j].right ||
          x.steps[j].result != y.steps[j].result)
        return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Region partitioning.

TEST(RegionPartition, SingleVictimIsOneRegion) {
  ForgivingGraph fg(make_cycle(12));
  auto plan = fg.plan_delete_batch(std::vector<NodeId>{3});
  EXPECT_EQ(plan.regions.size(), 1u);
  EXPECT_EQ(plan.victim_region, std::vector<int>{0});
}

TEST(RegionPartition, AdjacentVictimsShareARegion) {
  // A G' edge between two victims must be healed by one structure spanning
  // both neighborhoods — splitting them could disconnect the network.
  ForgivingGraph fg(make_path(8));  // 0-1-...-7
  std::vector<NodeId> wave{3, 4};
  auto plan = fg.plan_delete_batch(wave);
  ASSERT_EQ(plan.regions.size(), 1u);
  fg.delete_batch(wave);
  fg.validate();
  EXPECT_TRUE(is_connected(fg.healed()));
}

TEST(RegionPartition, SharedRtVictimsShareARegion) {
  // Both victims own leaves of the hub's RT, so their debris merges.
  ForgivingGraph fg(make_star(16));
  fg.remove(0);
  std::vector<NodeId> wave{3, 9};
  EXPECT_NE(fg.affected_roots(3), std::vector<VNodeId>{});
  EXPECT_EQ(fg.affected_roots(3), fg.affected_roots(9));
  auto plan = fg.plan_delete_batch(wave);
  EXPECT_EQ(plan.regions.size(), 1u);
}

TEST(RegionPartition, DisjointVictimsSplitIntoRegions) {
  // Far-apart victims on a long path: no shared edges, no shared RTs.
  ForgivingGraph fg(make_path(30));
  std::vector<NodeId> wave{5, 15, 25};
  auto plan = fg.plan_delete_batch(wave);
  ASSERT_EQ(plan.regions.size(), 3u);
  // Deterministic commit order: regions sorted by smallest victim id.
  EXPECT_EQ(plan.regions[0].victims, std::vector<NodeId>{5});
  EXPECT_EQ(plan.regions[1].victims, std::vector<NodeId>{15});
  EXPECT_EQ(plan.regions[2].victims, std::vector<NodeId>{25});
  EXPECT_EQ(plan.victim_region, (std::vector<int>{0, 1, 2}));

  fg.delete_batch(wave);
  fg.validate();
  EXPECT_TRUE(is_connected(fg.healed()));
  EXPECT_EQ(fg.last_repair().regions, 3);
  EXPECT_EQ(fg.last_region_assignment(), (std::vector<int>{0, 1, 2}));
  // Each region healed into its own 2-leaf RT (the victim's two anchors).
  EXPECT_EQ(fg.last_repair().final_rt_leaves, 6);
}

TEST(RegionPartition, TransitiveChainingThroughSharedRt) {
  // 1 shares a G' edge with 2; 2 shares RT_3 with 4; 1 and 4 are unrelated
  // — still one region, by transitivity of the conflict relation.
  ForgivingGraph fg(make_path(10));
  fg.remove(3);  // RT_3 with leaves owned by 2 and 4
  std::vector<NodeId> wave{1, 2, 4};
  auto plan = fg.plan_delete_batch(wave);
  EXPECT_EQ(plan.regions.size(), 1u);
  // Dropping the middle victim decouples them: {1} vs {4} are disjoint.
  std::vector<NodeId> sparse{1, 4};
  EXPECT_EQ(fg.plan_delete_batch(sparse).regions.size(), 2u);
}

TEST(RegionPartition, GlobalSplitForcesOneRegion) {
  ForgivingGraph fg(make_path(30));
  fg.set_region_split(core::RegionSplit::kGlobal);
  std::vector<NodeId> wave{5, 15, 25};
  auto plan = fg.plan_delete_batch(wave);
  ASSERT_EQ(plan.regions.size(), 1u);
  fg.delete_batch(wave);
  fg.validate();
  EXPECT_TRUE(is_connected(fg.healed()));
  // One wave-wide RT over all six anchors.
  EXPECT_EQ(fg.last_repair().regions, 1);
  EXPECT_EQ(fg.last_repair().final_rt_leaves, 6);
}

TEST(RegionPartition, PerRegionAndGlobalBothSatisfyInvariants) {
  Rng rng(71);
  Graph g0 = make_erdos_renyi(80, 6.0 / 80, rng);
  ForgivingGraph split(g0);
  ForgivingGraph global(g0);
  global.set_region_split(core::RegionSplit::kGlobal);
  for (int wave = 0; wave < 5; ++wave) {
    auto alive = split.healed().alive_nodes();
    if (alive.size() <= 10) break;
    rng.shuffle(alive);
    alive.resize(6);
    split.delete_batch(alive);
    global.delete_batch(alive);
    ASSERT_NO_FATAL_FAILURE(split.validate());
    ASSERT_NO_FATAL_FAILURE(global.validate());
    ASSERT_TRUE(is_connected(split.healed()));
    ASSERT_TRUE(is_connected(global.healed()));
    ASSERT_EQ(split.healed().alive_count(), global.healed().alive_count());
  }
}

// ---------------------------------------------------------------------------
// Concurrent planning purity (contract C4, plan side).

TEST(ShardedPlanning, WorkerCountNeverChangesThePlan) {
  Rng rng(101);
  Graph g0 = make_erdos_renyi(200, 8.0 / 200, rng);
  ForgivingGraph fg(g0);
  churn(fg, rng, 40);

  auto alive = fg.healed().alive_nodes();
  rng.shuffle(alive);
  alive.resize(16);

  core::RepairPlan sequential = fg.plan_delete_batch(alive);
  for (int workers : {2, 4, 8}) {
    fg.set_shard_workers(workers);
    core::RepairPlan concurrent = fg.plan_delete_batch(alive);
    EXPECT_TRUE(same_plans(sequential, concurrent)) << "workers=" << workers;
  }
}

TEST(ShardedRepair, WorkersProduceBitIdenticalEngines) {
  // The headline C4 property at engine level: a sharded-concurrent engine
  // replays a schedule bit-identically to a single-threaded one (identical
  // checkpoints, not merely identical topologies).
  Rng rng(103);
  Graph g0 = make_erdos_renyi(150, 7.0 / 150, rng);
  ForgivingGraph single(g0);
  ForgivingGraph sharded(g0);
  sharded.set_shard_workers(4);

  for (int wave = 0; wave < 6; ++wave) {
    auto alive = single.healed().alive_nodes();
    if (alive.size() <= 12) break;
    rng.shuffle(alive);
    alive.resize(8);
    single.delete_batch(alive);
    sharded.delete_batch(alive);
    ASSERT_EQ(checkpoint(single), checkpoint(sharded)) << "diverged at wave " << wave;
    ASSERT_EQ(single.last_region_assignment(), sharded.last_region_assignment());
  }
  single.validate();
  sharded.validate();
}

TEST(ShardedRepair, ShardBookkeepingTracksFinalRts) {
  ForgivingGraph fg(make_path(30));
  std::vector<NodeId> wave{5, 15, 25};
  auto plan = fg.plan_delete_batch(wave);
  fg.commit_delete_batch(plan);
  int found = 0;
  for (VNodeId h = 0; h < fg.forest().arena_size(); ++h) {
    if (!fg.forest().exists(h) || !fg.forest().is_root(h)) continue;
    int region = fg.shards().region_of_root(h);
    if (region >= 0) {
      ++found;
      EXPECT_GE(region, 0);
      EXPECT_LT(region, 3);
    }
  }
  EXPECT_EQ(found, 3);  // one tracked RT per region
}

// ---------------------------------------------------------------------------
// The acceptance scenario: a 32-victim disjoint-region wave on ER(1024).

TEST(ShardedRepair, Er1024DisjointWave32BitIdentical) {
  Rng rng(1024);
  Graph g0 = make_erdos_renyi(1024, 8.0 / 1024, rng);
  ForgivingGraph single(g0);
  ForgivingGraph sharded(g0);
  ForgivingGraphHealer probe(g0);
  sharded.set_shard_workers(4);
  sharded.set_commit_workers(4);
  std::vector<NodeId> churned = churn(single, rng, 96);
  for (NodeId v : churned) {  // identical churn on the twins
    sharded.remove(v);
    probe.engine().remove(v);
  }
  ASSERT_EQ(checkpoint(single), checkpoint(sharded));

  // A disjoint wave of 32 victims, found the way the adversary finds them.
  DisjointRegionsAdversary adversary(32);
  Rng wave_rng(7);
  auto action = adversary.next(probe, wave_rng);
  ASSERT_TRUE(action.has_value());
  ASSERT_EQ(action->kind, Action::Kind::kBatchDelete);
  ASSERT_EQ(action->targets.size(), 32u);

  auto plan = single.plan_delete_batch(action->targets);
  EXPECT_EQ(plan.regions.size(), 32u) << "adversarial wave was not disjoint";

  single.delete_batch(action->targets);
  sharded.delete_batch(action->targets);
  EXPECT_EQ(checkpoint(single), checkpoint(sharded));
  EXPECT_EQ(single.last_repair().regions, 32);
  EXPECT_TRUE(is_connected(single.healed()));
  single.validate();
}

// ---------------------------------------------------------------------------
// The disjoint-regions adversary (factory + the disjointness property).

TEST(DisjointRegionsAdversary, WavesAreReallyDisjoint) {
  Rng rng(31);
  Graph g0 = make_erdos_renyi(300, 8.0 / 300, rng);
  ForgivingGraphHealer healer(g0);
  churn(healer.engine(), rng, 60);

  auto adversary = make_adversary("regions:4");
  for (int step = 0; step < 8; ++step) {
    auto action = adversary->next(healer, rng);
    ASSERT_TRUE(action.has_value());
    ASSERT_EQ(action->kind, Action::Kind::kBatchDelete);
    const auto& wave = action->targets;
    ASSERT_GE(wave.size(), 1u);

    // Property 1: pairwise disjoint — no G' edge, no shared affected RT.
    for (size_t i = 0; i < wave.size(); ++i) {
      for (size_t j = i + 1; j < wave.size(); ++j) {
        EXPECT_FALSE(healer.gprime().has_edge(wave[i], wave[j]));
        auto ri = healer.engine().affected_roots(wave[i]);
        auto rj = healer.engine().affected_roots(wave[j]);
        std::vector<VNodeId> shared;
        std::set_intersection(ri.begin(), ri.end(), rj.begin(), rj.end(),
                              std::back_inserter(shared));
        EXPECT_TRUE(shared.empty());
      }
    }
    // Property 2: the planner agrees — one region per victim.
    auto plan = healer.engine().plan_delete_batch(wave);
    EXPECT_EQ(plan.regions.size(), wave.size());

    healer.remove_batch(wave);
    ASSERT_NO_FATAL_FAILURE(healer.engine().validate());
    ASSERT_TRUE(is_connected(healer.healed()));
  }
}

TEST(DisjointRegionsAdversary, BaselineFallbackUsesHealedDistance) {
  Rng rng(37);
  Graph g0 = make_erdos_renyi(200, 6.0 / 200, rng);
  auto healer = make_healer("binary-tree", g0);
  auto adversary = make_adversary("regions:3");
  auto action = adversary->next(*healer, rng);
  ASSERT_TRUE(action.has_value());
  const auto& wave = action->targets;
  for (size_t i = 0; i < wave.size(); ++i)
    for (size_t j = i + 1; j < wave.size(); ++j) {
      EXPECT_FALSE(healer->healed().has_edge(wave[i], wave[j]));
      for (NodeId y : healer->healed().neighbors(wave[i]))
        EXPECT_FALSE(healer->healed().has_edge(y, wave[j]));
    }
}

TEST(DisjointRegionsAdversary, TraceRecordsRegionLines) {
  Rng rng(41);
  Graph g0 = make_erdos_renyi(120, 7.0 / 120, rng);
  ForgivingGraphHealer recorded(g0);
  auto adversary = make_adversary("regions:3");
  Trace t = record_run(recorded, *adversary, 5, rng);
  ASSERT_GE(t.size(), 1u);
  for (const Action& a : t.actions()) {
    ASSERT_EQ(a.kind, Action::Kind::kBatchDelete);
    ASSERT_EQ(a.regions.size(), a.targets.size());
    // Disjoint wave: every victim its own region — the assignment is a
    // permutation of 0..k-1 (region ids follow ascending victim id, the
    // wave follows the adversary's shuffle).
    std::vector<int> sorted = a.regions;
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < sorted.size(); ++i)
      EXPECT_EQ(sorted[i], static_cast<int>(i));
  }

  // Round-trips through the text format, and replays with verification.
  std::stringstream ss;
  t.save(ss);
  EXPECT_NE(ss.str().find("\nr "), std::string::npos);
  Trace loaded = Trace::load(ss);
  ASSERT_EQ(loaded.size(), t.size());
  ForgivingGraphHealer replayed(g0);
  loaded.replay(replayed);
  EXPECT_TRUE(recorded.healed().same_topology(replayed.healed()));
}

// ---------------------------------------------------------------------------
// Dist engine: independent DAG branches per region.

TEST(ShardedRepair, DistPerRegionBitIdenticalToCentral) {
  Rng rng(53);
  Graph g0 = make_erdos_renyi(150, 7.0 / 150, rng);
  ForgivingGraph central(g0);
  dist::DistForgivingGraph distributed(g0);
  for (int wave = 0; wave < 6; ++wave) {
    auto alive = central.healed().alive_nodes();
    if (alive.size() <= 12) break;
    rng.shuffle(alive);
    alive.resize(6);
    central.delete_batch(alive);
    distributed.delete_batch(alive);
    ASSERT_TRUE(central.healed().same_topology(distributed.image()))
        << "diverged at wave " << wave;
    ASSERT_EQ(distributed.last_repair_cost().regions, central.last_repair().regions);
  }
  central.validate();
  distributed.validate();
}

TEST(ShardedRepair, DisjointWaveRepairsInParallelRounds) {
  // The Lemma-4 payoff: disjoint regions repair through independent DAG
  // branches, so the wave's rounds are the max over regions — strictly
  // below the single wave-wide merge the kGlobal split runs.
  std::vector<NodeId> wave;
  for (NodeId v = 10; v < 200; v += 24) wave.push_back(v);

  dist::DistForgivingGraph split(make_path(200));
  dist::DistForgivingGraph global(make_path(200));
  global.set_region_split(core::RegionSplit::kGlobal);
  split.delete_batch(wave);
  global.delete_batch(wave);

  EXPECT_EQ(split.last_repair_cost().regions, static_cast<int>(wave.size()));
  EXPECT_EQ(global.last_repair_cost().regions, 1);
  EXPECT_LT(split.last_repair_cost().rounds, global.last_repair_cost().rounds);
  EXPECT_LT(split.last_repair_cost().words, global.last_repair_cost().words);
  split.validate();
  global.validate();
  EXPECT_TRUE(is_connected(split.image()));
  EXPECT_TRUE(is_connected(global.image()));
}

TEST(ShardedRepair, StageWisePerRegionKeepsInvariants) {
  Rng rng(59);
  Graph g0 = make_erdos_renyi(100, 7.0 / 100, rng);
  dist::DistForgivingGraph staged(g0, dist::MergeMode::kStageWise);
  for (int wave = 0; wave < 5; ++wave) {
    auto alive = staged.image().alive_nodes();
    if (alive.size() <= 10) break;
    rng.shuffle(alive);
    alive.resize(5);
    staged.delete_batch(alive);
    ASSERT_NO_FATAL_FAILURE(staged.validate());
    ASSERT_TRUE(is_connected(staged.image()));
  }
}

}  // namespace
}  // namespace fg
