#include "heal/baselines.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"

namespace fg {
namespace {

TEST(NoHealer, DisconnectsOnCutVertex) {
  NoHealer h(make_star(5));
  h.remove(0);
  EXPECT_EQ(connected_components(h.healed()), 4);
}

TEST(LineHealer, ConnectsNeighborsInCycle) {
  LineHealer h(make_star(6));
  h.remove(0);
  EXPECT_TRUE(is_connected(h.healed()));
  for (NodeId v = 1; v <= 5; ++v) EXPECT_EQ(h.healed().degree(v), 2);
}

TEST(LineHealer, TwoNeighborsSingleEdge) {
  LineHealer h(make_path(3));
  h.remove(1);
  EXPECT_TRUE(h.healed().has_edge(0, 2));
  EXPECT_EQ(h.healed().edge_count(), 1);
}

TEST(StarHealer, SurrogateTakesAllEdges) {
  StarHealer h(make_star(8));
  h.remove(0);
  EXPECT_TRUE(is_connected(h.healed()));
  EXPECT_EQ(h.healed().degree(1), 6);  // smallest-id neighbor becomes hub
  EXPECT_EQ(exact_diameter(h.healed()), 2);
}

TEST(BinaryTreeHealer, BalancedTreeShape) {
  BinaryTreeHealer h(make_star(8));
  h.remove(0);
  EXPECT_TRUE(is_connected(h.healed()));
  // 7 neighbors in a heap-shaped tree: root degree 2, max degree 3.
  int maxdeg = 0;
  for (NodeId v : h.healed().alive_nodes()) maxdeg = std::max(maxdeg, h.healed().degree(v));
  EXPECT_EQ(maxdeg, 3);
  EXPECT_EQ(h.healed().edge_count(), 6);
}

TEST(KAryHealer, DegreeBoundedByKPlusOne) {
  KAryHealer h(make_star(20), 4);
  h.remove(0);
  EXPECT_TRUE(is_connected(h.healed()));
  int maxdeg = 0;
  for (NodeId v : h.healed().alive_nodes()) maxdeg = std::max(maxdeg, h.healed().degree(v));
  EXPECT_LE(maxdeg, 5);
  EXPECT_GE(maxdeg, 4);
}

TEST(BaselineHealer, InsertUpdatesBothGraphs) {
  LineHealer h(make_path(3));
  std::vector<NodeId> nbrs{0, 2};
  NodeId id = h.insert(nbrs);
  EXPECT_EQ(id, 3);
  EXPECT_TRUE(h.healed().has_edge(3, 0));
  EXPECT_TRUE(h.gprime().has_edge(3, 2));
}

TEST(BaselineHealer, GPrimeKeepsDeletedNodes) {
  LineHealer h(make_path(4));
  h.remove(1);
  EXPECT_EQ(h.gprime().alive_count(), 4);
  EXPECT_TRUE(h.gprime().has_edge(0, 1));
}

TEST(MakeHealer, FactoryNames) {
  Graph g0 = make_cycle(4);
  EXPECT_EQ(make_healer("forgiving", g0)->name(), "ForgivingGraph");
  EXPECT_EQ(make_healer("none", g0)->name(), "NoHealing");
  EXPECT_EQ(make_healer("line", g0)->name(), "Line");
  EXPECT_EQ(make_healer("star", g0)->name(), "Star");
  EXPECT_EQ(make_healer("binary-tree", g0)->name(), "BinaryTree");
  EXPECT_EQ(make_healer("kary:3", g0)->name(), "KAry(3)");
  EXPECT_NE(make_healer("forgiving", g0)->forgiving(), nullptr);
  EXPECT_EQ(make_healer("line", g0)->forgiving(), nullptr);
}

TEST(BinaryTreeHealer, RepeatedDeletionsAccumulateDegree) {
  // The ablation motivation: without RT merging, repeated deletions around
  // the same survivor accumulate unbounded degree relative to G'.
  Graph g0 = make_star(10);
  BinaryTreeHealer bt(g0);
  ForgivingGraphHealer fgh(g0);
  for (NodeId v = 0; v < 6; ++v) {
    bt.remove(v);
    fgh.remove(v);
  }
  int bt_max = 0, fg_max = 0;
  for (NodeId v : bt.healed().alive_nodes()) bt_max = std::max(bt_max, bt.healed().degree(v));
  for (NodeId v : fgh.healed().alive_nodes())
    fg_max = std::max(fg_max, fgh.healed().degree(v));
  EXPECT_LE(fg_max, 3);  // FG: degree <= 3 * G'-degree (= 1 for star leaves)
}

}  // namespace
}  // namespace fg
