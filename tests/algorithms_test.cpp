#include "graph/algorithms.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace fg {
namespace {

TEST(Algorithms, BfsDistancesOnPath) {
  Graph g = make_path(5);
  auto d = bfs_distances(g, 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(d[i], i);
}

TEST(Algorithms, BfsUnreachableIsMinusOne) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], -1);
  EXPECT_EQ(d[3], -1);
}

TEST(Algorithms, BfsIgnoresDeadNodes) {
  Graph g = make_path(5);
  g.remove_node(2);
  auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], -1);
  EXPECT_EQ(d[3], -1);  // cut by the dead node
}

TEST(Algorithms, ComponentsAndConnectivity) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_EQ(connected_components(g), 4);  // {0,1},{2,3},{4},{5}
  EXPECT_FALSE(is_connected(g));
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  EXPECT_TRUE(is_connected(g));
}

TEST(Algorithms, EmptyGraphConnected) {
  Graph g;
  EXPECT_EQ(connected_components(g), 0);
  EXPECT_TRUE(is_connected(g));
}

TEST(Algorithms, Eccentricity) {
  Graph g = make_path(7);
  EXPECT_EQ(eccentricity(g, 0), 6);
  EXPECT_EQ(eccentricity(g, 3), 3);
}

TEST(Algorithms, DiameterBoundsAgreeOnTrees) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = make_random_tree(60, rng);
    EXPECT_EQ(diameter_lower_bound(g), exact_diameter(g));
  }
}

TEST(Algorithms, DiameterLowerBoundNeverExceedsExact) {
  Rng rng(6);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = make_erdos_renyi(60, 0.08, rng);
    EXPECT_LE(diameter_lower_bound(g), exact_diameter(g));
  }
}

TEST(Algorithms, ExactDiameterKnownGraphs) {
  EXPECT_EQ(exact_diameter(make_star(10)), 2);
  EXPECT_EQ(exact_diameter(make_complete(4)), 1);
  EXPECT_EQ(exact_diameter(make_cycle(8)), 4);
}

}  // namespace
}  // namespace fg
