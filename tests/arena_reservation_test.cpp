// The arena-id reservation behind the schedule-independent commit
// (contract C4, docs/CONCURRENCY.md):
//
//   * Property: every committed wave's final forest has the identical
//     arena_size() and the identical checkpoint (dump) bytes across commit
//     worker counts {1, 2, 4} and both RegionSplit modes — the handle of
//     every vnode a commit allocates is fixed at plan time by region order
//     alone, so the schedule cannot leak into the structure. Runs under
//     the TSan preset with commit workers > 1 (the concurrency gate).
//   * Plan shape: the reservation is contiguous, disjoint, and exactly
//     sized (fresh + steps per region, prefix-summed in region id order).
//   * Guards: an exhausted or misaligned reservation fails loudly
//     (FG_CHECK) instead of silently growing or overwriting the arena.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fg/forgiving_graph.h"
#include "fg/sharded_forest.h"
#include "fg/virtual_forest.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace fg {
namespace {

std::string checkpoint(const ForgivingGraph& fg) {
  std::stringstream ss;
  fg.save(ss);
  return ss.str();
}

// ---------------------------------------------------------------------------
// Property: checkpoints are a pure function of the schedule, not the
// commit worker count.

class ArenaReservation : public ::testing::TestWithParam<core::RegionSplit> {};

TEST_P(ArenaReservation, CommitWorkerCountNeverChangesTheForest) {
  const core::RegionSplit split = GetParam();
  Rng rng(271);
  Graph g0 = make_erdos_renyi(160, 7.0 / 160, rng);

  // One engine per worker count — driving plan, break, AND merge fan-outs
  // at that count — through the identical schedule of deletion waves;
  // workers = 1 is the reference.
  const std::vector<int> worker_counts{1, 2, 4};
  std::vector<ForgivingGraph> engines;
  engines.reserve(worker_counts.size());
  for (int workers : worker_counts) {
    engines.emplace_back(g0);
    engines.back().set_region_split(split);
    engines.back().set_shard_workers(workers);
    engines.back().set_commit_workers(workers);
    engines.back().set_break_workers(workers);
  }

  for (int wave = 0; wave < 8; ++wave) {
    auto alive = engines.front().healed().alive_nodes();
    if (alive.size() <= 16) break;
    rng.shuffle(alive);
    alive.resize(6);
    for (ForgivingGraph& fg : engines) fg.delete_batch(alive);

    const std::string reference = checkpoint(engines.front());
    for (size_t i = 1; i < engines.size(); ++i) {
      ASSERT_EQ(engines[i].forest().arena_size(),
                engines.front().forest().arena_size())
          << "arena diverged at wave " << wave
          << " with commit workers=" << worker_counts[i];
      ASSERT_EQ(checkpoint(engines[i]), reference)
          << "checkpoint diverged at wave " << wave
          << " with commit workers=" << worker_counts[i];
    }
  }
  for (ForgivingGraph& fg : engines) {
    fg.validate();
    EXPECT_TRUE(is_connected(fg.healed()));
  }
}

INSTANTIATE_TEST_SUITE_P(Splits, ArenaReservation,
                         ::testing::Values(core::RegionSplit::kPerRegion,
                                           core::RegionSplit::kGlobal),
                         [](const ::testing::TestParamInfo<core::RegionSplit>& info) {
                           return info.param == core::RegionSplit::kPerRegion
                                      ? "PerRegion"
                                      : "Global";
                         });

TEST(ArenaReservation, PlanRangesAreContiguousDisjointAndExact) {
  Rng rng(277);
  Graph g0 = make_erdos_renyi(120, 7.0 / 120, rng);
  ForgivingGraph fg(g0);
  for (int i = 0; i < 30; ++i) {
    auto alive = fg.healed().alive_nodes();
    fg.remove(rng.pick(alive));
  }

  auto alive = fg.healed().alive_nodes();
  rng.shuffle(alive);
  alive.resize(10);
  core::RepairPlan plan = fg.plan_delete_batch(alive);

  // The reservation starts exactly at the planning-time arena size and the
  // regions tile it in id order: base_r = start + sum of earlier regions'
  // (fresh + steps) counts.
  ASSERT_EQ(plan.arena_start, fg.forest().arena_size());
  int next = plan.arena_start;
  for (const core::RegionPlan& region : plan.regions) {
    EXPECT_EQ(region.arena_base, next);
    next += static_cast<int>(region.fresh.size() + region.steps.size());
  }
  EXPECT_EQ(plan.arena_total, next - plan.arena_start);

  // Committing consumes the reservation exactly: the arena grows by
  // arena_total, with no hole left behind.
  fg.commit_delete_batch(plan);
  EXPECT_EQ(fg.forest().arena_size(), plan.arena_start + plan.arena_total);
  EXPECT_EQ(fg.forest().unconstructed_in(plan.arena_start,
                                         plan.arena_start + plan.arena_total),
            0);
  fg.validate();
}

TEST(ArenaReservation, ConcurrentMergeRegionsMatchSequential) {
  // The concurrent path itself, machine-independently: the engine-level
  // fan-out gate may keep commits inline on boxes with no spare hardware
  // threads, so this test drives CommitPool + merge_region directly — the
  // exact shape ShardedForest::commit dispatches — and is what keeps the
  // parallel merge TSan-covered everywhere. Two identical cores, one wave:
  // sequential merges vs pool merges must land on identical checkpoints.
  Rng rng(293);
  Graph g0 = make_erdos_renyi(150, 7.0 / 150, rng);
  core::StructuralCore sequential(g0);
  core::StructuralCore concurrent(g0);

  auto alive = sequential.image().alive_nodes();
  rng.shuffle(alive);
  alive.resize(8);

  auto run = [&](core::StructuralCore& core, bool pooled) {
    core::RepairPlan plan = core.plan_deletion(alive);
    auto pieces = core.commit_break(plan);
    const int regions = static_cast<int>(plan.regions.size());
    std::vector<core::StructuralCore::MergeEffects> effects(
        static_cast<size_t>(regions));
    if (!pooled) {
      for (int r = 0; r < regions; ++r)
        core.merge_region(plan.regions[static_cast<size_t>(r)],
                          std::move(pieces[static_cast<size_t>(r)]),
                          &effects[static_cast<size_t>(r)]);
    } else {
      struct Ctx {
        std::atomic<int> next{0};
        std::atomic<int> merged{0};
      };
      auto ctx = std::make_shared<Ctx>();
      auto work = [ctx, &core, &plan, &pieces, &effects, regions] {
        for (int r = ctx->next.fetch_add(1); r < regions;
             r = ctx->next.fetch_add(1)) {
          core.merge_region(plan.regions[static_cast<size_t>(r)],
                            std::move(pieces[static_cast<size_t>(r)]),
                            &effects[static_cast<size_t>(r)]);
          ctx->merged.fetch_add(1, std::memory_order_release);
        }
      };
      CommitPool pool(3);
      pool.dispatch(work);
      work();
      while (ctx->merged.load(std::memory_order_acquire) < regions)
        std::this_thread::yield();
    }
    for (int r = 0; r < regions; ++r)
      core.apply_merge_effects(effects[static_cast<size_t>(r)]);
    core.check_reservation_settled(plan);
  };

  run(sequential, /*pooled=*/false);
  run(concurrent, /*pooled=*/true);

  std::stringstream a, b;
  sequential.save(a);
  concurrent.save(b);
  EXPECT_EQ(a.str(), b.str());
  sequential.validate();
  concurrent.validate();
}

TEST(ArenaReservation, CommitPoolPersistsAcrossWaves) {
  // The pool is built once per set_commit_workers, then reused: several
  // waves through the same engine must all land on the single-threaded
  // engine's checkpoints.
  Rng rng(283);
  Graph g0 = make_erdos_renyi(140, 7.0 / 140, rng);
  ForgivingGraph single(g0);
  ForgivingGraph pooled(g0);
  pooled.set_commit_workers(4);
  pooled.set_break_workers(4);
  for (int wave = 0; wave < 6; ++wave) {
    auto alive = single.healed().alive_nodes();
    if (alive.size() <= 12) break;
    rng.shuffle(alive);
    alive.resize(5);
    single.delete_batch(alive);
    pooled.delete_batch(alive);
    ASSERT_EQ(checkpoint(single), checkpoint(pooled)) << "wave " << wave;
  }
  // Shrinking the pool back to inline keeps working (and stays identical).
  pooled.set_commit_workers(1);
  pooled.set_break_workers(1);
  auto alive = single.healed().alive_nodes();
  std::vector<NodeId> wave{alive[0], alive[alive.size() / 2]};
  single.delete_batch(wave);
  pooled.delete_batch(wave);
  EXPECT_EQ(checkpoint(single), checkpoint(pooled));
}

// ---------------------------------------------------------------------------
// Guards: reservation misuse dies loudly instead of corrupting the arena.

using ReservationGuardsDeathTest = ::testing::Test;

TEST(ReservationGuardsDeathTest, ConstructingPastTheReservationDies) {
  VirtualForest forest;
  VNodeId base = forest.reserve_range(1);
  // One handle reserved; the second construction runs off the end of the
  // arena — the "exhausted reservation" case (an undersized plan).
  forest.make_leaf_in(base, 0, 1);
  EXPECT_DEATH(forest.make_leaf_in(base + 1, 0, 2), "reservation exhausted");
}

TEST(ReservationGuardsDeathTest, ConstructingTwiceIntoOneHandleDies) {
  VirtualForest forest;
  VNodeId base = forest.reserve_range(2);
  forest.make_leaf_in(base, 0, 1);
  // Misaligned draw: a second region colliding with an already-constructed
  // handle must not silently overwrite it.
  EXPECT_DEATH(forest.make_leaf_in(base, 5, 6), "not an unconstructed reservation");
}

TEST(ReservationGuardsDeathTest, ConstructingIntoALiveHandleDies) {
  VirtualForest forest;
  VNodeId leaf = forest.make_leaf(0, 1);
  EXPECT_DEATH(forest.make_helper_in(leaf, 0, 2, forest.make_leaf(2, 0),
                                     forest.make_leaf(3, 0)),
               "not an unconstructed reservation");
}

TEST(ReservationGuardsDeathTest, CommittingAStalePlanDies) {
  // Any repair between plan and commit bumps the mutation epoch (and here
  // also moves the arena); the commit re-checks and refuses.
  ForgivingGraph fg(make_path(20));
  std::vector<NodeId> wave{5};
  core::RepairPlan plan = fg.plan_delete_batch(wave);
  fg.remove(15);
  EXPECT_DEATH(fg.commit_delete_batch(plan), "stale plan");
}

TEST(ReservationGuardsDeathTest, CommittingAfterAnInsertionDies) {
  // An insertion leaves the arena completely untouched — only the
  // mutation-epoch stamp catches this staleness.
  ForgivingGraph fg(make_path(20));
  std::vector<NodeId> wave{5};
  core::RepairPlan plan = fg.plan_delete_batch(wave);
  std::vector<NodeId> neighbors{0, 10};
  fg.insert(neighbors);
  EXPECT_DEATH(fg.commit_delete_batch(plan), "stale plan");
}

}  // namespace
}  // namespace fg
