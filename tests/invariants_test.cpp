// Sharp structural invariants of the Forgiving Graph construction that the
// theorems rest on, asserted exactly (not just within the theorem bounds):
//
//  * per-slot accounting: deg(v, G) <= deg(v, G') + 3 * helpers(v)
//    (the additive form of Theorem 1.1 that the construction actually
//    guarantees — docs/EXPERIMENTS.md T1/A2 discuss the multiplicative constant);
//  * an RT over L leaves has exactly L-1 helpers;
//  * RT diameter: distance between two ex-neighbors through their RT is at
//    most 2*ceil(log2 L);
//  * DOT export is well-formed and covers the whole RT.
#include <gtest/gtest.h>

#include "fg/forgiving_graph.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "haft/haft.h"
#include "util/rng.h"

namespace fg {
namespace {

void assert_per_slot_accounting(const ForgivingGraph& fg) {
  for (NodeId v : fg.healed().alive_nodes()) {
    int bound = fg.gprime().degree(v) + 3 * fg.helper_count(v);
    ASSERT_LE(fg.healed().degree(v), bound) << "node " << v;
  }
}

TEST(Invariants, PerSlotDegreeAccountingRandomChurn) {
  Rng rng(31);
  Graph g0 = make_erdos_renyi(50, 0.12, rng);
  ForgivingGraph fg(g0);
  for (int i = 0; i < 35; ++i) {
    auto alive = fg.healed().alive_nodes();
    if (alive.size() <= 2) break;
    fg.remove(rng.pick(alive));
    assert_per_slot_accounting(fg);
  }
}

TEST(Invariants, PerSlotDegreeAccountingStarCascade) {
  ForgivingGraph fg(make_star(65));
  fg.remove(0);
  assert_per_slot_accounting(fg);
  for (NodeId v = 1; v <= 40; ++v) {
    fg.remove(v);
    assert_per_slot_accounting(fg);
  }
}

TEST(Invariants, RTHasLeavesMinusOneHelpers) {
  for (int d : {2, 3, 7, 16, 33}) {
    ForgivingGraph fg(make_star(d + 1));
    fg.remove(0);
    EXPECT_EQ(fg.last_repair().helpers_created, d - 1) << "d=" << d;
    EXPECT_EQ(fg.forest().live_count(), 2 * d - 1) << "d=" << d;  // leaves + helpers
  }
}

TEST(Invariants, RTDiameterWithinTwiceDepth) {
  for (int d : {4, 9, 17, 40, 100}) {
    ForgivingGraph fg(make_star(d + 1));
    fg.remove(0);
    EXPECT_LE(exact_diameter(fg.healed()), 2 * haft::ceil_log2(d)) << "d=" << d;
  }
}

TEST(Invariants, HelperCountMatchesDeadSlotStructure) {
  // After merging RTs, total helpers across all processors must equal
  // total leaves - number of RTs.
  Rng rng(77);
  Graph g0 = make_erdos_renyi(40, 0.15, rng);
  ForgivingGraph fg(g0);
  for (int i = 0; i < 20; ++i) {
    auto alive = fg.healed().alive_nodes();
    fg.remove(rng.pick(alive));
  }
  fg.validate();
  int64_t helpers = 0;
  int64_t leaves = 0;
  for (NodeId v : fg.healed().alive_nodes()) {
    helpers += fg.helper_count(v);
    for (NodeId w : fg.gprime().neighbors(v))
      if (!fg.healed().is_alive(w)) ++leaves;
  }
  EXPECT_EQ(fg.forest().live_count(), helpers + leaves);
  EXPECT_LE(helpers, leaves);  // L-1 helpers per RT over L leaves
}

TEST(Invariants, DotExportCoversRT) {
  ForgivingGraph fg(make_star(9));
  fg.remove(0);
  // Find an RT root via any leaf slot.
  const VirtualForest& f = fg.forest();
  VNodeId any = kNoVNode;
  for (VNodeId h = 0; h < 64; ++h)
    if (f.exists(h)) {
      any = h;
      break;
    }
  ASSERT_NE(any, kNoVNode);
  VNodeId root = f.root_of(any);
  std::string dot = f.to_dot(root);
  EXPECT_NE(dot.find("digraph RT"), std::string::npos);
  // 8 leaves + 7 helpers = 15 node declarations, 14 edges.
  size_t node_decls = 0, edges = 0;
  for (size_t pos = 0; (pos = dot.find("shape=", pos)) != std::string::npos; ++pos)
    ++node_decls;
  for (size_t pos = 0; (pos = dot.find(" -> ", pos)) != std::string::npos; ++pos) ++edges;
  EXPECT_EQ(node_decls, 15u);
  EXPECT_EQ(edges, 14u);
}

TEST(Invariants, ForestEmptiesWhenEveryoneDies) {
  // Deleting the whole network must free every virtual node: the last
  // deletions remove leaves whose other endpoints are already dead, and the
  // RTs evaporate with them.
  ForgivingGraph fg(make_cycle(8));
  for (NodeId v = 0; v < 8; ++v) fg.remove(v);
  EXPECT_EQ(fg.forest().live_count(), 0);
  EXPECT_EQ(fg.healed().alive_count(), 0);
}

TEST(Invariants, DeadLeafSingletonRTRemoval) {
  // Path 0-1: deleting 0 leaves a one-leaf RT at 1; deleting 1 removes a
  // dead singleton leaf with no anchors — the empty-repair path.
  ForgivingGraph fg(make_path(2));
  fg.remove(0);
  EXPECT_EQ(fg.forest().live_count(), 1);
  fg.remove(1);
  EXPECT_EQ(fg.forest().live_count(), 0);
  EXPECT_EQ(fg.last_repair().pieces, 0);
}

TEST(Invariants, GPrimeDistancesNeverIncrease) {
  // G' is insertion-monotone: adding nodes can only add paths.
  Rng rng(5);
  Graph g0 = make_cycle(12);
  ForgivingGraph fg(g0);
  auto before = bfs_distances(fg.gprime(), 0);
  std::vector<NodeId> nbrs{3, 9};
  fg.insert(nbrs);
  auto after = bfs_distances(fg.gprime(), 0);
  for (NodeId v = 0; v < 12; ++v) EXPECT_LE(after[v], before[v]);
}

}  // namespace
}  // namespace fg
