#include "harness/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"
#include "heal/baselines.h"

namespace fg {
namespace {

TEST(Trace, RecordAndReplayReproducesTopology) {
  Rng rng(5);
  Graph g0 = make_erdos_renyi(30, 0.15, rng);
  ForgivingGraphHealer original(g0);
  ChurnAdversary adv(0.6, 2);
  Trace trace = record_run(original, adv, 40, rng);
  EXPECT_EQ(trace.size(), 40u);

  ForgivingGraphHealer replayed(g0);
  trace.replay(replayed);
  EXPECT_TRUE(original.healed().same_topology(replayed.healed()));
  EXPECT_TRUE(original.gprime().same_topology(replayed.gprime()));
}

TEST(Trace, SaveLoadRoundTrip) {
  Trace t;
  t.record(Action{Action::Kind::kDelete, 7, {}, {}, {}});
  t.record(Action{Action::Kind::kInsert, kInvalidNode, {1, 2, 3}, {}, {}});
  t.record(Action{Action::Kind::kDelete, 2, {}, {}, {}});

  std::stringstream ss;
  t.save(ss);
  Trace loaded = Trace::load(ss);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.actions()[0].kind, Action::Kind::kDelete);
  EXPECT_EQ(loaded.actions()[0].target, 7);
  EXPECT_EQ(loaded.actions()[1].kind, Action::Kind::kInsert);
  EXPECT_EQ(loaded.actions()[1].neighbors, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(loaded.actions()[2].target, 2);
}

TEST(Trace, LoadIgnoresCommentsAndBlankLines) {
  std::stringstream ss("# header\n\nd 3\n# mid\ni 0 1\n");
  Trace t = Trace::load(ss);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.actions()[0].target, 3);
}

TEST(Trace, PrefixForBisection) {
  Trace t;
  for (NodeId v = 0; v < 10; ++v) t.record(Action{Action::Kind::kDelete, v, {}, {}, {}});
  EXPECT_EQ(t.prefix(4).size(), 4u);
  EXPECT_EQ(t.prefix(99).size(), 10u);
  EXPECT_EQ(t.prefix(0).size(), 0u);
}

TEST(Trace, ReplayAcrossDifferentHealers) {
  // A single recorded schedule drives every strategy — the comparison mode
  // the benches rely on.
  Graph g0 = make_star(12);
  ForgivingGraphHealer rec(g0);
  RandomDeleteAdversary adv(4);
  Rng rng(9);
  Trace trace = record_run(rec, adv, 8, rng);

  LineHealer line(g0);
  trace.replay(line);
  EXPECT_EQ(line.healed().alive_count(), rec.healed().alive_count());
  EXPECT_TRUE(line.gprime().same_topology(rec.gprime()));
}

TEST(TraceDeathTest, ReplayOnWrongGraphAborts) {
  Trace t;
  t.record(Action{Action::Kind::kDelete, 5, {}, {}, {}});
  ForgivingGraphHealer h(make_path(3));  // node 5 does not exist
  EXPECT_DEATH(t.replay(h), "dead");
}

TEST(TraceDeathTest, MalformedLineAborts) {
  std::stringstream ss("x 1 2\n");
  EXPECT_DEATH(Trace::load(ss), "malformed");
}

}  // namespace
}  // namespace fg
