// Unit tests of the centralized Forgiving Graph engine: single deletions,
// RT shapes, the worked examples of Figures 2 and 8, insertions, and the
// theorem bounds on small graphs where they can be checked exactly.
#include "fg/forgiving_graph.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "haft/haft.h"

namespace fg {
namespace {

TEST(ForgivingGraph, InitMirrorsG0) {
  Graph g0 = make_cycle(5);
  ForgivingGraph fg(g0);
  EXPECT_TRUE(fg.healed().same_topology(g0));
  EXPECT_TRUE(fg.gprime().same_topology(g0));
  fg.validate();
}

TEST(ForgivingGraph, DeleteLeafNodeNoHelpers) {
  // Deleting a degree-1 node leaves a trivial one-node RT and no new edges.
  Graph g0 = make_path(3);  // 0-1-2
  ForgivingGraph fg(g0);
  fg.remove(0);
  fg.validate();
  EXPECT_EQ(fg.healed().alive_count(), 2);
  EXPECT_TRUE(fg.healed().has_edge(1, 2));
  EXPECT_EQ(fg.healed().degree(1), 1);
  EXPECT_EQ(fg.last_repair().pieces, 1);
  EXPECT_EQ(fg.last_repair().helpers_created, 0);
  EXPECT_EQ(fg.last_repair().new_leaves, 1);
}

TEST(ForgivingGraph, DeleteMiddleOfPathBridges) {
  Graph g0 = make_path(3);
  ForgivingGraph fg(g0);
  fg.remove(1);
  fg.validate();
  // RT over leaves {(0,1),(2,1)}: one helper, image edge 0-2.
  EXPECT_TRUE(fg.healed().has_edge(0, 2));
  EXPECT_EQ(fg.last_repair().pieces, 2);
  EXPECT_EQ(fg.last_repair().helpers_created, 1);
  EXPECT_TRUE(is_connected(fg.healed()));
}

TEST(ForgivingGraph, Figure2StarOfEight) {
  // Figure 2: deleting the center of a degree-8 star yields an RT whose
  // image keeps the 8 neighbors connected with max degree 3 and diameter
  // 2*log2(8) hops at most.
  Graph g0 = make_star(9);  // hub 0, leaves 1..8
  ForgivingGraph fg(g0);
  fg.remove(0);
  fg.validate();
  const Graph& g = fg.healed();
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(fg.last_repair().pieces, 8);
  EXPECT_EQ(fg.last_repair().helpers_created, 7);
  EXPECT_EQ(fg.last_repair().final_rt_leaves, 8);
  for (NodeId v = 1; v <= 8; ++v) {
    EXPECT_LE(g.degree(v), 3) << "node " << v;
    EXPECT_GE(g.degree(v), 1);
  }
  EXPECT_LE(exact_diameter(g), 2 * 3);
  // Degree bound of Theorem 1.1: every leaf had G'-degree 1.
  EXPECT_LE(fg.max_degree_ratio(), 3.0);
}

TEST(ForgivingGraph, StarRTDepthBound) {
  // RT is a haft: distance between ex-neighbors <= 2*ceil(log2 d).
  for (int d : {2, 3, 5, 8, 13, 21, 32}) {
    Graph g0 = make_star(d + 1);
    ForgivingGraph fg(g0);
    fg.remove(0);
    fg.validate();
    EXPECT_LE(exact_diameter(fg.healed()), 2 * haft::ceil_log2(d)) << "d=" << d;
  }
}

TEST(ForgivingGraph, InsertThenDelete) {
  Graph g0 = make_path(4);
  ForgivingGraph fg(g0);
  std::vector<NodeId> nbrs{0, 3};
  NodeId v = fg.insert(nbrs);
  EXPECT_EQ(v, 4);
  EXPECT_TRUE(fg.healed().has_edge(4, 0));
  EXPECT_TRUE(fg.gprime().has_edge(4, 3));
  fg.validate();
  fg.remove(v);
  fg.validate();
  EXPECT_TRUE(fg.healed().has_edge(0, 3));  // RT bridges the two ex-neighbors
}

TEST(ForgivingGraph, GPrimeUnaffectedByDeletions) {
  Graph g0 = make_cycle(6);
  ForgivingGraph fg(g0);
  fg.remove(2);
  fg.remove(4);
  // G' still has all 6 nodes and all cycle edges.
  EXPECT_EQ(fg.gprime().alive_count(), 6);
  EXPECT_EQ(fg.gprime().edge_count(), 6);
  EXPECT_TRUE(fg.gprime().has_edge(1, 2));
}

TEST(ForgivingGraph, SequentialDeletionsMergeRTs) {
  // Deleting two adjacent nodes must merge their RTs into one (Figure 8).
  Graph g0 = make_path(5);  // 0-1-2-3-4
  ForgivingGraph fg(g0);
  fg.remove(1);
  fg.validate();
  fg.remove(2);  // node 2's real node was a leaf of RT(1)
  fg.validate();
  EXPECT_EQ(fg.last_repair().affected_rts, 1);
  EXPECT_TRUE(is_connected(fg.healed()));
  // Path 0..4 in G' has distance 4 between 0 and 4; stretch <= log2(5).
  auto d = bfs_distances(fg.healed(), 0);
  EXPECT_GT(d[4], 0);
  EXPECT_LE(d[4], 4 * haft::ceil_log2(5));
}

TEST(ForgivingGraph, DeleteEntireStarSequentially) {
  Graph g0 = make_star(17);
  ForgivingGraph fg(g0);
  fg.remove(0);
  for (NodeId v = 1; v <= 13; ++v) {
    fg.remove(v);
    fg.validate();
    EXPECT_TRUE(is_connected(fg.healed())) << "after deleting " << v;
  }
  EXPECT_EQ(fg.healed().alive_count(), 3);
}

TEST(ForgivingGraph, IsolatedNodeDeletion) {
  Graph g0(1);
  ForgivingGraph fg(g0);
  fg.remove(0);
  EXPECT_EQ(fg.healed().alive_count(), 0);
  EXPECT_EQ(fg.last_repair().pieces, 0);
}

TEST(ForgivingGraph, TwoNodeGraphDeletion) {
  Graph g0(2);
  g0.add_edge(0, 1);
  ForgivingGraph fg(g0);
  fg.remove(0);
  fg.validate();
  EXPECT_EQ(fg.healed().alive_count(), 1);
  EXPECT_EQ(fg.healed().degree(1), 0);
}

TEST(ForgivingGraph, HelperCountBoundedByGPrimeDegree) {
  Rng rng(17);
  Graph g0 = make_erdos_renyi(40, 0.15, rng);
  ForgivingGraph fg(g0);
  for (NodeId v = 0; v < 20; ++v) fg.remove(v);
  fg.validate();
  for (NodeId v = 20; v < 40; ++v)
    EXPECT_LE(fg.helper_count(v), fg.gprime().degree(v));  // Lemma 3.1
}

TEST(ForgivingGraph, DegreeBoundOnRandomGraph) {
  Rng rng(23);
  Graph g0 = make_erdos_renyi(60, 0.1, rng);
  ForgivingGraph fg(g0);
  for (NodeId v = 0; v < 40; ++v) {
    fg.remove(v);
    // Theorem 1.1 as stated claims factor 3; our construction-accurate
    // accounting gives leaf edge + helper edges <= 4 per slot before
    // homomorphic collapsing. Assert the provable 4 and track the observed
    // value (experiments show it stays <= 3 in practice).
    EXPECT_LE(fg.max_degree_ratio(), 4.0) << "after deleting " << v;
  }
  fg.validate();
}

TEST(ForgivingGraph, StretchBoundOnRandomGraph) {
  Rng rng(29);
  Graph g0 = make_erdos_renyi(50, 0.12, rng);
  ForgivingGraph fg(g0);
  for (NodeId v = 0; v < 30; ++v) fg.remove(v);
  fg.validate();
  int n = fg.gprime().node_capacity();
  double bound = std::max(1, haft::ceil_log2(n));
  for (NodeId s : fg.healed().alive_nodes()) {
    auto dg = bfs_distances(fg.healed(), s);
    auto dp = bfs_distances(fg.gprime(), s);
    for (NodeId t : fg.healed().alive_nodes()) {
      if (t == s || dp[t] <= 0) continue;
      ASSERT_GT(dg[t], 0);
      EXPECT_LE(dg[t], bound * dp[t]) << s << "->" << t;
    }
  }
}

TEST(ForgivingGraph, RepairStatsDegreeOfDeleted) {
  Graph g0 = make_star(7);
  ForgivingGraph fg(g0);
  fg.remove(0);
  EXPECT_EQ(fg.last_repair().deleted_degree_gprime, 6);
}

TEST(ForgivingGraphDeathTest, DoubleDeleteRejected) {
  Graph g0 = make_path(3);
  ForgivingGraph fg(g0);
  fg.remove(0);
  EXPECT_DEATH(fg.remove(0), "dead");
}

TEST(ForgivingGraphDeathTest, InsertNeighborMustBeAlive) {
  Graph g0 = make_path(3);
  ForgivingGraph fg(g0);
  fg.remove(0);
  std::vector<NodeId> nbrs{0};
  EXPECT_DEATH(fg.insert(nbrs), "alive");
}

}  // namespace
}  // namespace fg
