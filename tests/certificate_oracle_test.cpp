// Certificates as a property-test oracle: every adversary factory profile,
// on randomized schedules, against both engines — each committed wave's
// certificate must pass the independent checker (src/cert), with the
// serialized bytes surviving a parse round-trip, and the centralized
// engine's certificate bytes must be identical at every shard/commit worker
// count (contract C4 extended from checkpoints to certificates,
// docs/CERTIFICATES.md).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "cert/certificate.h"
#include "fg/dist/dist_forgiving_graph.h"
#include "fg/forgiving_graph.h"
#include "graph/generators.h"
#include "harness/certificate.h"
#include "harness/trace.h"
#include "heal/healer.h"
#include "util/rng.h"

namespace fg {
namespace {

Graph build_graph(const std::string& kind, int n, Rng& rng) {
  if (kind == "star") return make_star(n);
  if (kind == "path") return make_path(n);
  if (kind == "er") return make_erdos_renyi(n, 7.0 / n, rng);
  if (kind == "ba") return make_barabasi_albert(n, 2, rng);
  ADD_FAILURE() << "unknown graph kind " << kind;
  return Graph(1);
}

/// Sink that runs the checker on every certificate as it is emitted and
/// keeps the structural bytes for cross-run comparison.
class CheckingSink final : public harness::CertificateSink {
 public:
  explicit CheckingSink(std::string label) : label_(std::move(label)) {}

  void on_certificate(const cert::WaveCertificate& c) override {
    cert::CheckResult direct = cert::check(c);
    EXPECT_TRUE(direct.ok) << label_ << ": " << direct.diagnostic;

    // The serialized bytes must parse back and still check: the text format
    // loses nothing the checker needs.
    std::stringstream ss;
    c.save(ss);
    cert::StreamResult round = cert::check_stream(ss);
    EXPECT_TRUE(round.ok) << label_ << " (round-trip): " << round.diagnostic;
    EXPECT_EQ(round.waves_checked, 1) << label_;

    structural += c.structural_text();
    ++waves;
  }

  std::string structural;
  int waves = 0;

 private:
  std::string label_;
};

void replay_on_dist(const Trace& t, dist::DistForgivingGraph* net) {
  for (const Action& a : t.actions()) {
    switch (a.kind) {
      case Action::Kind::kInsert:
        net->insert(a.neighbors);
        break;
      case Action::Kind::kDelete:
        net->remove(a.target);
        break;
      case Action::Kind::kBatchDelete:
        net->delete_batch(a.targets);
        break;
    }
  }
}

struct OracleCase {
  const char* graph;
  int n;
  const char* adversary;  ///< A make_adversary factory profile.
  int steps;
  uint64_t seed;
};

class CertificateOracle : public ::testing::TestWithParam<OracleCase> {};

TEST_P(CertificateOracle, EveryWaveCertifiesOnBothEngines) {
  const OracleCase& c = GetParam();
  Rng rng(c.seed);
  Graph g0 = build_graph(c.graph, c.n, rng);

  // Record the schedule on the centralized engine with emission live.
  ForgivingGraphHealer recorded(g0);
  CheckingSink recorded_sink("centralized w=1");
  recorded.engine().set_certificate_sink(&recorded_sink);
  auto adversary = make_adversary(c.adversary);
  Trace t = record_run(recorded, *adversary, c.steps, rng);
  ASSERT_GE(t.size(), 1u);
  ASSERT_GE(recorded_sink.waves, 1) << "schedule deleted nothing";

  // Sharded replays: certificates byte-identical at every worker count.
  for (int workers : {2, 4}) {
    ForgivingGraphHealer replayed(g0);
    CheckingSink sink("centralized w=" + std::to_string(workers));
    replayed.engine().set_certificate_sink(&sink);
    replayed.engine().set_shard_workers(workers);
    replayed.engine().set_commit_workers(workers);
    t.replay(replayed);
    EXPECT_EQ(sink.waves, recorded_sink.waves);
    EXPECT_EQ(sink.structural, recorded_sink.structural)
        << c.graph << "/" << c.adversary
        << " certificate bytes diverged with workers=" << workers;
  }

  // Distributed engine, both merge modes. kGlobalPlan additionally matches
  // the centralized structural bytes (same topology by construction);
  // kStageWise may associate differently but must still certify.
  {
    dist::DistForgivingGraph net(g0, dist::MergeMode::kGlobalPlan);
    CheckingSink sink("dist kGlobalPlan");
    net.set_certificate_sink(&sink);
    replay_on_dist(t, &net);
    EXPECT_EQ(sink.waves, recorded_sink.waves);
    EXPECT_EQ(sink.structural, recorded_sink.structural)
        << c.graph << "/" << c.adversary << " dist certificates diverged";
  }
  {
    dist::DistForgivingGraph net(g0, dist::MergeMode::kStageWise);
    CheckingSink sink("dist kStageWise");
    net.set_certificate_sink(&sink);
    replay_on_dist(t, &net);
    EXPECT_EQ(sink.waves, recorded_sink.waves);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, CertificateOracle,
    ::testing::Values(OracleCase{"er", 60, "random-delete", 25, 11},
                      OracleCase{"er", 60, "cut-vertex", 20, 12},
                      OracleCase{"ba", 60, "maxdeg-delete", 22, 13},
                      OracleCase{"ba", 50, "helper-load", 20, 14},
                      OracleCase{"er", 60, "churn:0.6", 30, 15},
                      OracleCase{"star", 40, "star-attack", 3, 16},
                      OracleCase{"er", 50, "build-and-burn:4", 16, 17},
                      OracleCase{"er", 80, "batch:4", 10, 18},
                      OracleCase{"path", 90, "regions:4", 8, 19}),
    [](const ::testing::TestParamInfo<OracleCase>& info) {
      const auto& c = info.param;
      std::string adv(c.adversary);
      for (char& ch : adv)
        if (ch == ':' || ch == '-' || ch == '.') ch = '_';
      return std::string(c.graph) + "_" + adv + "_s" + std::to_string(c.seed);
    });

TEST(CertificateOracle, SinkCanBeDetached) {
  // nullptr disables emission again; waves committed while detached are
  // simply not certified (wave indices keep counting committed waves).
  ForgivingGraph network(make_star(9));
  harness::CertificateCollector collector;
  network.set_certificate_sink(&collector);
  network.remove(0);
  ASSERT_EQ(collector.certs.size(), 1u);
  EXPECT_EQ(collector.certs[0].wave, 0);
  network.set_certificate_sink(nullptr);
  network.remove(1);
  EXPECT_EQ(collector.certs.size(), 1u);
}

TEST(CertificateOracle, CostClaimPresentOnlyOnDistCertificates) {
  Graph g0 = make_star(17);
  ForgivingGraph central(g0);
  harness::CertificateCollector cc;
  central.set_certificate_sink(&cc);
  central.remove(0);
  ASSERT_EQ(cc.certs.size(), 1u);
  EXPECT_FALSE(cc.certs[0].cost.present);

  dist::DistForgivingGraph net(g0);
  harness::CertificateCollector dc;
  net.set_certificate_sink(&dc);
  net.remove(0);
  ASSERT_EQ(dc.certs.size(), 1u);
  ASSERT_TRUE(dc.certs[0].cost.present);
  EXPECT_EQ(dc.certs[0].cost.deleted_degree, 16);
  EXPECT_GT(dc.certs[0].cost.messages, 0);
  // The cost line is the only engine-specific part of the bytes.
  EXPECT_EQ(cc.certs[0].structural_text(), dc.certs[0].structural_text());
}

}  // namespace
}  // namespace fg
