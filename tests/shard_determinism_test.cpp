// Contract C4 for the sharded pipeline: healers are deterministic given the
// schedule, and the shard workers must not be able to break that. A trace
// recorded against a single-threaded engine must replay *bit-identically* —
// identical checkpoints, which pin the virtual-forest arena node for node,
// not merely the same topology — on a sharded-concurrent engine, across a
// corpus of adversaries and graph families, and under every worker count.
// Runs in Release and Debug through the regular CI matrix, and under
// ThreadSanitizer through the tsan preset (the concurrency satellite gate).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "fg/forgiving_graph.h"
#include "graph/generators.h"
#include "harness/certificate.h"
#include "harness/trace.h"
#include "heal/healer.h"
#include "util/rng.h"

namespace fg {
namespace {

Graph build_graph(const std::string& kind, int n, Rng& rng) {
  if (kind == "star") return make_star(n);
  if (kind == "path") return make_path(n);
  if (kind == "grid") return make_grid(n / 6, 6);
  if (kind == "er") return make_erdos_renyi(n, 7.0 / n, rng);
  if (kind == "ba") return make_barabasi_albert(n, 2, rng);
  ADD_FAILURE() << "unknown graph kind";
  return Graph(1);
}

std::string checkpoint(const ForgivingGraph& fg) {
  std::stringstream ss;
  fg.save(ss);
  return ss.str();
}

struct CorpusCase {
  const char* graph;
  int n;
  const char* adversary;
  int steps;
  uint64_t seed;
};

class ShardDeterminism : public ::testing::TestWithParam<CorpusCase> {};

TEST_P(ShardDeterminism, ConcurrentReplayIsBitIdentical) {
  const CorpusCase& c = GetParam();
  Rng rng(c.seed);
  Graph g0 = build_graph(c.graph, c.n, rng);

  // Record the schedule on a single-threaded engine.
  ForgivingGraphHealer recorded(g0);
  auto adversary = make_adversary(c.adversary);
  Trace t = record_run(recorded, *adversary, c.steps, rng);
  ASSERT_GE(t.size(), 1u);
  std::string reference = checkpoint(recorded.engine());

  // The trace round-trips through the text format (r lines included).
  std::stringstream ss;
  t.save(ss);
  Trace loaded = Trace::load(ss);
  ASSERT_EQ(loaded.size(), t.size());

  // Replay on sharded-concurrent engines: every worker count must land on
  // the byte-identical checkpoint — on the plan side (set_shard_workers),
  // on the break side (set_break_workers, whose BreakEffects stitch
  // serializes every shared-state write in region id order), and on the
  // commit side (set_commit_workers), whose arena-id reservation is what
  // makes concurrent region merges schedule-independent (contract C4,
  // docs/CONCURRENCY.md). The replay also re-checks every wave's recorded
  // region assignment (trace `r` lines).
  for (int workers : {1, 2, 4, 8}) {
    ForgivingGraphHealer replayed(g0);
    replayed.engine().set_shard_workers(workers);
    replayed.engine().set_commit_workers(workers);
    replayed.engine().set_break_workers(workers);
    loaded.replay(replayed);
    ASSERT_EQ(reference, checkpoint(replayed.engine()))
        << c.graph << "/" << c.adversary << " diverged with workers=" << workers;
    replayed.engine().validate();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ShardDeterminism,
    ::testing::Values(CorpusCase{"er", 120, "batch:6", 8, 1},
                      CorpusCase{"er", 150, "regions:4", 8, 2},
                      CorpusCase{"ba", 120, "batch:5", 8, 3},
                      CorpusCase{"ba", 100, "regions:3", 10, 4},
                      CorpusCase{"grid", 96, "batch:4", 8, 5},
                      CorpusCase{"grid", 120, "regions:5", 6, 6},
                      CorpusCase{"path", 140, "regions:6", 6, 7},
                      CorpusCase{"star", 100, "batch:4", 8, 8},
                      CorpusCase{"er", 100, "churn:0.7", 30, 9},
                      CorpusCase{"er", 90, "random-delete", 30, 10}),
    [](const ::testing::TestParamInfo<CorpusCase>& info) {
      const auto& c = info.param;
      std::string adv(c.adversary);
      for (char& ch : adv)
        if (ch == ':' || ch == '-' || ch == '.') ch = '_';
      return std::string(c.graph) + "_" + adv + "_s" + std::to_string(c.seed);
    });

TEST(ShardDeterminism, BreakWorkersBitIdenticalAcrossSplits) {
  // The acceptance matrix of the parallel break: break workers {1,2,4} ×
  // commit workers {1,2,4} × both RegionSplit modes must land on the
  // byte-identical checkpoint AND emit byte-identical certificates (C4
  // extended to the break fan-out). Each split mode heals a different
  // structure, so each compares against its own w=1/w=1 reference.
  Rng rng(55);
  Graph g0 = make_erdos_renyi(140, 7.0 / 140, rng);
  const std::vector<std::vector<NodeId>> waves = {
      {4, 41, 77, 110}, {9, 52, 96}, {15, 16, 60, 121, 133}};

  for (core::RegionSplit split :
       {core::RegionSplit::kPerRegion, core::RegionSplit::kGlobal}) {
    std::string ref_checkpoint;
    std::string ref_certs;
    for (int bw : {1, 2, 4}) {
      for (int cw : {1, 2, 4}) {
        ForgivingGraph fg(g0);
        fg.set_region_split(split);
        fg.set_break_workers(bw);
        fg.set_commit_workers(cw);
        std::ostringstream certs;
        harness::CertificateWriter writer(certs);
        fg.set_certificate_sink(&writer);
        for (const auto& wave : waves) fg.delete_batch(wave);
        fg.validate();
        if (bw == 1 && cw == 1) {
          ref_checkpoint = checkpoint(fg);
          ref_certs = certs.str();
          ASSERT_FALSE(ref_certs.empty());
        } else {
          EXPECT_EQ(ref_checkpoint, checkpoint(fg))
              << "checkpoint diverged at break=" << bw << " commit=" << cw;
          EXPECT_EQ(ref_certs, certs.str())
              << "certificate bytes diverged at break=" << bw << " commit=" << cw;
        }
      }
    }
  }
}

TEST(ShardDeterminism, MixedScheduleWithInsertions) {
  // Hand-built schedule interleaving insertions, single deletions, and
  // batch waves — the action mix record_run can produce from any source.
  Rng rng(77);
  Graph g0 = make_erdos_renyi(80, 7.0 / 80, rng);
  ForgivingGraph single(g0);
  ForgivingGraph sharded(g0);
  sharded.set_shard_workers(4);
  sharded.set_commit_workers(4);
  sharded.set_break_workers(4);

  auto both_insert = [&](std::vector<NodeId> nbrs) {
    NodeId a = single.insert(nbrs);
    NodeId b = sharded.insert(nbrs);
    ASSERT_EQ(a, b);
  };
  auto both_batch = [&](std::vector<NodeId> wave) {
    single.delete_batch(wave);
    sharded.delete_batch(wave);
  };

  both_batch({3, 40, 71});
  both_insert({0, 17});
  single.remove(17);
  sharded.remove(17);
  both_batch({5, 6, 50});
  both_insert({2, 30, 60});
  both_batch({22, 23});
  EXPECT_EQ(checkpoint(single), checkpoint(sharded));
  single.validate();
  sharded.validate();
}

}  // namespace
}  // namespace fg
