#include "fuzz/corruptor.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "fg/core/structural_core.h"
#include "graph/generators.h"
#include "util/check.h"
#include "util/rng.h"

namespace fg::fuzz {
namespace {

/// Candidate targets snapshotted from the engine. Re-collected before every
/// mutation: earlier mutations change what is live and what is registered.
struct Targets {
  std::vector<VNodeId> live_rows;
  std::vector<VNodeId> live_leaves;
  std::vector<std::pair<NodeId, NodeId>> slot_keys;  ///< (owner, other).
  std::vector<NodeId> alive;
};

Targets collect(const core::StructuralCore& core) {
  Targets t;
  const std::vector<VirtualForest::VNode>& rows = core.forest().dump();
  for (VNodeId h = 0; h < static_cast<VNodeId>(rows.size()); ++h) {
    if (!rows[static_cast<size_t>(h)].alive) continue;
    t.live_rows.push_back(h);
    if (rows[static_cast<size_t>(h)].is_leaf) t.live_leaves.push_back(h);
  }
  const NodeId cap = core.gprime().node_capacity();
  for (NodeId u = 0; u < cap; ++u) {
    if (core.is_alive(u)) t.alive.push_back(u);
    for (const core::SlotTable::Entry& e : core.slot_table().entries(u))
      t.slot_keys.push_back({u, e.other});
  }
  return t;
}

/// A handle different from `avoid`, drawn from the live rows or kNoVNode.
VNodeId other_handle(Rng& rng, const Targets& t, VNodeId avoid) {
  for (int tries = 0; tries < 64; ++tries) {
    VNodeId h = rng.next_bool(0.2) ? kNoVNode : t.live_rows[static_cast<size_t>(
                    rng.next_below(t.live_rows.size()))];
    if (h != avoid) return h;
  }
  return avoid == kNoVNode ? t.live_rows.front() : kNoVNode;
}

bool apply_mutation(ForgivingGraph& fg, Rng& rng, MutationKind kind,
                    std::ostringstream& log) {
  core::StructuralCore& core = fg.core();
  const Targets t = collect(core);
  const std::vector<VirtualForest::VNode>& rows = core.forest().dump();

  switch (kind) {
    case MutationKind::kSlotFieldFlip: {
      if (t.slot_keys.empty() || t.live_rows.empty()) return false;
      auto [u, w] = t.slot_keys[static_cast<size_t>(
          rng.next_below(t.slot_keys.size()))];
      const core::SlotTable::Entry* e = core.slot_table().find(u, w);
      FG_CHECK(e != nullptr);
      VNodeId leaf = e->leaf;
      VNodeId helper = e->helper;
      if (rng.next_bool(0.5))
        leaf = other_handle(rng, t, leaf);
      else
        helper = other_handle(rng, t, helper);
      if (leaf == e->leaf && helper == e->helper) return false;
      core.inject_slot(u, w, leaf, helper);
      log << "slot-field-flip(" << u << "," << w << ")";
      return true;
    }
    case MutationKind::kSlotErase: {
      if (t.slot_keys.empty()) return false;
      auto [u, w] = t.slot_keys[static_cast<size_t>(
          rng.next_below(t.slot_keys.size()))];
      core.inject_erase_slot(u, w);
      log << "slot-erase(" << u << "," << w << ")";
      return true;
    }
    case MutationKind::kSlotForge: {
      // A slot keyed by a live G' edge — never legal under I1.
      for (int tries = 0; tries < 64; ++tries) {
        NodeId u = t.alive[static_cast<size_t>(rng.next_below(t.alive.size()))];
        std::vector<NodeId> live_nbrs;
        for (NodeId w : core.gprime().neighbors(u))
          if (core.is_alive(w)) live_nbrs.push_back(w);
        if (live_nbrs.empty()) continue;
        NodeId w = live_nbrs[static_cast<size_t>(rng.next_below(live_nbrs.size()))];
        if (core.slot_table().find(u, w) != nullptr) continue;
        VNodeId leaf = t.live_rows.empty()
                           ? kNoVNode
                           : t.live_rows[static_cast<size_t>(
                                 rng.next_below(t.live_rows.size()))];
        core.inject_slot(u, w, leaf, kNoVNode);
        log << "slot-forge(" << u << "," << w << ")";
        return true;
      }
      return false;
    }
    case MutationKind::kRowLinkScramble: {
      if (t.live_rows.empty()) return false;
      VNodeId h = t.live_rows[static_cast<size_t>(
          rng.next_below(t.live_rows.size()))];
      VirtualForest::VNode row = rows[static_cast<size_t>(h)];
      VNodeId* fields[] = {&row.parent, &row.left, &row.right};
      VNodeId* f = fields[rng.next_below(3)];
      VNodeId now = other_handle(rng, t, *f);
      if (now == *f) return false;
      *f = now;
      core.inject_vnode_row(h, row);
      log << "row-link-scramble(" << h << ")";
      return true;
    }
    case MutationKind::kRowAggregateScramble: {
      if (t.live_rows.empty()) return false;
      VNodeId h = t.live_rows[static_cast<size_t>(
          rng.next_below(t.live_rows.size()))];
      VirtualForest::VNode row = rows[static_cast<size_t>(h)];
      switch (rng.next_below(3)) {
        case 0: row.leaf_count += 1 + static_cast<int64_t>(rng.next_below(4)); break;
        case 1: row.height += 1 + static_cast<int>(rng.next_below(4)); break;
        default: {
          VNodeId r = other_handle(rng, t, row.rep);
          if (r == row.rep) return false;
          row.rep = r;
          break;
        }
      }
      core.inject_vnode_row(h, row);
      log << "row-aggregate-scramble(" << h << ")";
      return true;
    }
    case MutationKind::kRowOwnerSwap: {
      if (t.live_rows.empty() || t.alive.size() < 2) return false;
      VNodeId h = t.live_rows[static_cast<size_t>(
          rng.next_below(t.live_rows.size()))];
      VirtualForest::VNode row = rows[static_cast<size_t>(h)];
      for (int tries = 0; tries < 64; ++tries) {
        NodeId u = t.alive[static_cast<size_t>(rng.next_below(t.alive.size()))];
        if (u == row.owner) continue;
        row.owner = u;
        core.inject_vnode_row(h, row);
        log << "row-owner-swap(" << h << "->" << u << ")";
        return true;
      }
      return false;
    }
    case MutationKind::kRowTombstone: {
      if (t.live_rows.empty()) return false;
      VNodeId h = t.live_rows[static_cast<size_t>(
          rng.next_below(t.live_rows.size()))];
      VirtualForest::VNode row = rows[static_cast<size_t>(h)];
      row.alive = false;
      core.inject_vnode_row(h, row);
      log << "row-tombstone(" << h << ")";
      return true;
    }
    case MutationKind::kImageEdgeFlip: {
      if (t.alive.size() < 2) return false;
      NodeId u = t.alive[static_cast<size_t>(rng.next_below(t.alive.size()))];
      NodeId v = t.alive[static_cast<size_t>(rng.next_below(t.alive.size()))];
      if (u == v) v = t.alive[u == t.alive.front() ? t.alive.size() - 1 : 0];
      if (u == v) return false;
      core.inject_image_edge_flip(u, v);
      log << "image-edge-flip(" << u << "," << v << ")";
      return true;
    }
    case MutationKind::kMultiplicityBump: {
      if (t.alive.size() < 2) return false;
      NodeId u = t.alive[static_cast<size_t>(rng.next_below(t.alive.size()))];
      NodeId v = t.alive[static_cast<size_t>(rng.next_below(t.alive.size()))];
      if (u == v) v = t.alive[u == t.alive.front() ? t.alive.size() - 1 : 0];
      if (u == v) return false;
      core.inject_multiplicity_bump(std::min(u, v), std::max(u, v));
      log << "multiplicity-bump(" << u << "," << v << ")";
      return true;
    }
  }
  return false;
}

}  // namespace

const char* mutation_kind_name(MutationKind k) {
  switch (k) {
    case MutationKind::kSlotFieldFlip: return "slot-field-flip";
    case MutationKind::kSlotErase: return "slot-erase";
    case MutationKind::kSlotForge: return "slot-forge";
    case MutationKind::kRowLinkScramble: return "row-link-scramble";
    case MutationKind::kRowAggregateScramble: return "row-aggregate-scramble";
    case MutationKind::kRowOwnerSwap: return "row-owner-swap";
    case MutationKind::kRowTombstone: return "row-tombstone";
    case MutationKind::kImageEdgeFlip: return "image-edge-flip";
    case MutationKind::kMultiplicityBump: return "multiplicity-bump";
  }
  return "unknown";
}

ForgivingGraph make_substrate(uint64_t seed) {
  Rng rng(seed ^ 0xf06d5a1d5a1dULL);
  const int n = 48 + static_cast<int>(rng.next_below(112));
  Graph g0;
  switch (rng.next_below(3)) {
    case 0: g0 = make_star(n); break;
    case 1: g0 = make_sparse_random(n, 3.0, rng); break;
    default: g0 = make_binary_tree(n); break;
  }
  ForgivingGraph fg(g0);

  // Churn until RTs with helpers exist: a few deletion waves with some
  // inserts in between. All seeded; no structural randomness beyond rng.
  const int waves = 2 + static_cast<int>(rng.next_below(3));
  for (int w = 0; w < waves; ++w) {
    std::vector<NodeId> alive;
    for (NodeId v = 0; v < fg.gprime().node_capacity(); ++v)
      if (fg.is_alive(v)) alive.push_back(v);
    // Keep at least two processors alive so the substrate stays a graph
    // worth healing.
    const int max_kill = static_cast<int>(alive.size()) - 2;
    if (max_kill <= 0) break;
    const int kill = 1 + static_cast<int>(rng.next_below(
                             static_cast<uint64_t>(std::min(8, max_kill))));
    rng.shuffle(alive);
    std::vector<NodeId> victims(alive.begin(), alive.begin() + kill);
    fg.delete_batch(victims);

    if (rng.next_bool(0.7)) {
      std::vector<NodeId> survivors(alive.begin() + kill, alive.end());
      const int nbrs = 1 + static_cast<int>(rng.next_below(
                               std::min<uint64_t>(3, survivors.size())));
      rng.shuffle(survivors);
      fg.insert(std::span<const NodeId>(survivors.data(),
                                        static_cast<size_t>(nbrs)));
    }
  }
  fg.validate();
  return fg;
}

CorruptionLog corrupt(ForgivingGraph& fg, uint64_t seed, int mutations) {
  Rng rng(seed ^ 0xc0ffee0ddba11ULL);
  CorruptionLog out;
  std::ostringstream log;
  int stuck = 0;
  while (out.applied < mutations && stuck < 128) {
    MutationKind kind =
        static_cast<MutationKind>(rng.next_below(kMutationKinds));
    if (apply_mutation(fg, rng, kind, log)) {
      ++out.applied;
      log << "; ";
      stuck = 0;
    } else {
      ++stuck;
    }
  }
  out.description = log.str();
  return out;
}

CorruptionLog corrupt_one(ForgivingGraph& fg, uint64_t seed, MutationKind kind) {
  Rng rng(seed ^ 0xc0ffee0ddba11ULL);
  CorruptionLog out;
  std::ostringstream log;
  for (int tries = 0; tries < 64 && out.applied == 0; ++tries)
    if (apply_mutation(fg, rng, kind, log)) out.applied = 1;
  out.description = log.str();
  return out;
}

}  // namespace fg::fuzz
