// Deterministic state-corruption fuzzer for the self-stabilization oracle
// (docs/SELF_STABILIZATION.md, "The corruption fuzzer").
//
// Test-only machinery (linked via fg_testsupport, never into fg_core): given
// a seed, build a churned engine substrate, then drive the structural
// core's fault-injection seams with seeded mutations — flipped or erased
// slot entries, forged slots on live edges, scrambled RT rows (links,
// aggregates, ownership, tombstones), desynced image edges and
// multiplicities. Everything is a pure function of the seed, so a failing
// seed replays exactly (the committed corpus under tests/data/corruption/).
//
// The oracle loop the suites drive on top:
//   corrupt -> audit (dirty) -> stabilize -> audit (clean, fixed point)
//   -> validate() -> certificate ACCEPTed by cert::check and tools/fgcheck.
#pragma once

#include <cstdint>
#include <string>

#include "fg/forgiving_graph.h"

namespace fg::fuzz {

/// The injectable mutation families (one fault-injection seam each; see
/// corruptor.cpp for the exact state change per kind).
enum class MutationKind {
  kSlotFieldFlip = 0,      ///< Repoint a slot's leaf/helper field.
  kSlotErase,              ///< Remove an anchor slot outright.
  kSlotForge,              ///< Forge a slot keyed by a live G' edge.
  kRowLinkScramble,        ///< Rewire a row's parent/left/right.
  kRowAggregateScramble,   ///< Desync height/leaf_count/rep.
  kRowOwnerSwap,           ///< Reassign a row to another alive processor.
  kRowTombstone,           ///< Kill a live row, stranding its links.
  kImageEdgeFlip,          ///< Toggle a healed-image edge behind the map's back.
  kMultiplicityBump,       ///< Bump an edge multiplicity behind G's back.
};
inline constexpr int kMutationKinds = 9;

const char* mutation_kind_name(MutationKind k);

/// What one corrupt() call did, for failure messages and corpus notes.
struct CorruptionLog {
  int applied = 0;          ///< Mutations that actually changed state.
  std::string description;  ///< "kind(args); kind(args); ...".
};

/// Deterministic churned substrate for `seed`: a generator topology
/// (star / sparse-random / binary tree, sized by the seed), a few
/// insert/delete waves so RTs with helpers exist, validated before return.
ForgivingGraph make_substrate(uint64_t seed);

/// Apply `mutations` seeded state corruptions to fg.core(). Every mutation
/// targets live, observable state and is guaranteed to differ from the
/// value it overwrites — a single mutation on a legal engine always leaves
/// an auditable violation. Distinct mutations may in principle cancel;
/// the oracle cross-checks that case with validate().
CorruptionLog corrupt(ForgivingGraph& fg, uint64_t seed, int mutations);

/// corrupt() restricted to one mutation of one specific kind (kind-coverage
/// tests). Returns applied == 0 iff the kind has no target in this engine
/// (e.g. no helper rows yet).
CorruptionLog corrupt_one(ForgivingGraph& fg, uint64_t seed, MutationKind kind);

}  // namespace fg::fuzz
