// The healer-service battery: contract C4 extended to the serving loop.
//
// The pipelined service (overlap on, any worker count) must be an exact
// refinement of the serial wave-at-a-time reference: the same seeded churn
// stream produces byte-identical engine checkpoints AND byte-identical
// sampled-certificate streams, because overlap and worker counts are pure
// scheduling choices — the op stream alone decides what commits
// (src/fg/healer_service.h, the quiescence rule). On top of that, the
// epoch-gated admission path is driven through its test seam: a mutation
// landing between snapshot and commit must be detected and re-planned,
// never committed — the core's FG_CHECK death is the wall the gate keeps
// the service from hitting.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "cert/certificate.h"
#include "fg/healer_service.h"
#include "fg/stabilizer.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace fg {
namespace {

std::string checkpoint(const ForgivingGraph& fg) {
  std::stringstream ss;
  fg.save(ss);
  return ss.str();
}

/// Seeded mixed churn stream over a pool mirror (the bench driver's scheme
/// in miniature): every delete victim leaves the pool when generated and
/// every insert's future id joins it, so the stream is valid by
/// construction and fully determined by (n, ops, seed).
std::vector<ChurnOp> make_stream(int n, int ops, uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> pool(static_cast<size_t>(n));
  std::iota(pool.begin(), pool.end(), NodeId{0});
  NodeId next_id = static_cast<NodeId>(n);

  std::vector<ChurnOp> stream;
  stream.reserve(static_cast<size_t>(ops));
  for (int i = 0; i < ops; ++i) {
    if (pool.size() > 16 && rng.next_bool(0.5)) {
      size_t j = static_cast<size_t>(rng.next_below(pool.size()));
      NodeId victim = pool[j];
      pool[j] = pool.back();
      pool.pop_back();
      stream.push_back(ChurnOp::Delete(victim));
    } else {
      NodeId a = rng.pick(pool);
      NodeId b = a;
      while (b == a) b = rng.pick(pool);
      stream.push_back(ChurnOp::Insert({a, b}));
      pool.push_back(next_id++);
    }
  }
  return stream;
}

struct ServiceRun {
  std::string checkpoint;
  std::string cert_bytes;
  HealerStats stats;
};

ServiceRun run_service(const Graph& g0, const std::vector<ChurnOp>& ops,
                       HealerConfig config,
                       core::RegionSplit split = core::RegionSplit::kPerRegion) {
  HealerService service(g0, config);
  service.engine().set_region_split(split);
  std::ostringstream certs;
  service.set_certificate_stream(&certs);
  int64_t alerts = 0;
  service.set_alert([&alerts](int64_t, const std::string&) { ++alerts; });
  VectorChurnStream stream(ops);
  service.run(stream);
  EXPECT_EQ(alerts, 0);
  EXPECT_EQ(service.stats().cert_rejections, 0);
  return ServiceRun{checkpoint(service.engine()), certs.str(), service.stats()};
}

// ---------------------------------------------------------------------------
// Pipelined-vs-serial equivalence.

class HealerServiceEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(HealerServiceEquivalence, PipelinedMatchesSerialByteIdentically) {
  const int workers = GetParam();
  Rng rng(9001);
  Graph g0 = make_sparse_random(400, 5.0, rng);
  std::vector<ChurnOp> ops = make_stream(400, 3000, 0xFEED);

  HealerConfig serial;
  serial.wave_size = 16;
  serial.certify_every = 8;
  serial.overlap = false;
  ServiceRun reference = run_service(g0, ops, serial);
  ASSERT_GT(reference.stats.waves, 10);
  ASSERT_GT(reference.stats.certified_waves, 2);
  ASSERT_FALSE(reference.cert_bytes.empty());

  HealerConfig pipelined = serial;
  pipelined.overlap = true;
  pipelined.plan_workers = workers;
  pipelined.commit_workers = workers;
  pipelined.break_workers = workers;
  ServiceRun overlapped = run_service(g0, ops, pipelined);

  // Byte-identical engine state AND certificate stream: the serving loop's
  // schedule (overlap, worker counts) is invisible in everything it emits.
  EXPECT_EQ(reference.checkpoint, overlapped.checkpoint)
      << "checkpoint diverged at " << workers << " workers";
  EXPECT_EQ(reference.cert_bytes, overlapped.cert_bytes)
      << "certificate stream diverged at " << workers << " workers";
  EXPECT_EQ(reference.stats.waves, overlapped.stats.waves);
  EXPECT_EQ(reference.stats.deletes, overlapped.stats.deletes);
  EXPECT_EQ(reference.stats.inserts, overlapped.stats.inserts);
  EXPECT_EQ(reference.stats.dropped_deletes, overlapped.stats.dropped_deletes);
  EXPECT_EQ(reference.stats.certified_waves, overlapped.stats.certified_waves);
  EXPECT_EQ(overlapped.stats.stale_replans, 0);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, HealerServiceEquivalence,
                         ::testing::Values(1, 2, 4));

TEST(HealerService, BreakWorkersBitIdenticalAcrossSplits) {
  // The break fan-out through the full serving loop: break workers {1,2,4}
  // × both RegionSplit modes must produce byte-identical checkpoints AND
  // byte-identical sampled-certificate streams (C4 extended to the break
  // phase). Each split heals a different structure, so each compares
  // against its own break_workers=1 serial reference.
  Rng rng(9002);
  Graph g0 = make_sparse_random(300, 5.0, rng);
  std::vector<ChurnOp> ops = make_stream(300, 1500, 0xBEEF);

  for (core::RegionSplit split :
       {core::RegionSplit::kPerRegion, core::RegionSplit::kGlobal}) {
    HealerConfig serial;
    serial.wave_size = 16;
    serial.certify_every = 8;
    serial.overlap = false;
    ServiceRun reference = run_service(g0, ops, serial, split);
    ASSERT_GT(reference.stats.certified_waves, 1);

    for (int workers : {2, 4}) {
      HealerConfig pipelined = serial;
      pipelined.overlap = true;
      pipelined.break_workers = workers;
      pipelined.commit_workers = workers;
      ServiceRun overlapped = run_service(g0, ops, pipelined, split);
      EXPECT_EQ(reference.checkpoint, overlapped.checkpoint)
          << "checkpoint diverged at break workers=" << workers;
      EXPECT_EQ(reference.cert_bytes, overlapped.cert_bytes)
          << "certificate stream diverged at break workers=" << workers;
      EXPECT_EQ(overlapped.stats.stale_replans, 0);
    }
  }
}

// Fixed small substrate for the hand-written streams below.
Graph make_test_substrate() {
  Rng rng(5);
  return make_sparse_random(64, 4.0, rng);
}

TEST(HealerService, DuplicateAndDeadDeletesDropConsistently) {
  // Duplicates inside one forming wave and deletes of long-dead victims
  // must be dropped by the same rule in both modes — drops are decided at
  // ingest time, when every earlier wave has already committed.
  Graph g0 = make_test_substrate();
  std::vector<ChurnOp> ops;
  for (NodeId v : {NodeId{3}, NodeId{3}, NodeId{7}, NodeId{9}, NodeId{11}})
    ops.push_back(ChurnOp::Delete(v));  // 3 repeats inside the window
  for (NodeId v : {NodeId{3}, NodeId{7}})
    ops.push_back(ChurnOp::Delete(v));  // long dead by now
  ops.push_back(ChurnOp::Insert({NodeId{20}, NodeId{21}}));

  HealerConfig serial;
  serial.wave_size = 4;
  serial.overlap = false;
  ServiceRun reference = run_service(g0, ops, serial);

  HealerConfig pipelined = serial;
  pipelined.overlap = true;
  ServiceRun overlapped = run_service(g0, ops, pipelined);

  EXPECT_EQ(reference.stats.dropped_deletes, 3);
  EXPECT_EQ(overlapped.stats.dropped_deletes, 3);
  EXPECT_EQ(reference.stats.deletes, 4);
  EXPECT_EQ(reference.checkpoint, overlapped.checkpoint);
}

TEST(HealerService, FlushHealsThePartialTrailingWave) {
  Rng rng(6);
  Graph g0 = make_sparse_random(64, 4.0, rng);
  HealerConfig config;
  config.wave_size = 4;
  HealerService service(g0, config);
  for (NodeId v = 0; v < 5; ++v) service.push(ChurnOp::Delete(v));
  service.flush();
  EXPECT_EQ(service.stats().waves, 2);  // one full wave + the trailing 1
  EXPECT_EQ(service.stats().deletes, 5);
  service.engine().validate();
}

// ---------------------------------------------------------------------------
// Epoch-gated admission.

TEST(HealerService, StaleAdmissionReplansInsteadOfCommitting) {
  Rng rng(7);
  Graph g0 = make_sparse_random(128, 4.0, rng);
  HealerConfig config;
  config.wave_size = 4;
  HealerService service(g0, config);

  // The seam fires between snapshot and commit; an insert through engine()
  // bumps the mutation epoch without touching any planned victim.
  int64_t hooked_wave = -1;
  service.set_admission_hook([&](int64_t wave) {
    if (wave != 0 || hooked_wave != -1) return;
    hooked_wave = wave;
    std::vector<NodeId> neighbors{NodeId{60}, NodeId{61}};
    service.engine().insert(neighbors);
  });

  for (NodeId v = 0; v < 8; ++v) service.push(ChurnOp::Delete(v));
  service.flush();

  EXPECT_EQ(hooked_wave, 0);
  EXPECT_EQ(service.stats().stale_replans, 1);
  EXPECT_EQ(service.stats().waves, 2);
  EXPECT_EQ(service.stats().deletes, 8);  // the re-planned wave committed whole
  EXPECT_EQ(service.stats().dropped_deletes, 0);
  for (NodeId v = 0; v < 8; ++v) EXPECT_FALSE(service.engine().is_alive(v));
  service.engine().validate();
}

TEST(HealerService, StaleAdmissionRevalidatesKilledVictims) {
  Rng rng(8);
  Graph g0 = make_sparse_random(128, 4.0, rng);
  HealerConfig config;
  config.wave_size = 4;
  HealerService service(g0, config);

  // The intervening mutation is itself a deletion of one of the wave's own
  // victims: the gate must drop the now-dead victim and re-plan the rest.
  bool fired = false;
  service.set_admission_hook([&](int64_t wave) {
    if (wave != 0 || fired) return;
    fired = true;
    service.engine().remove(NodeId{2});
  });

  for (NodeId v = 0; v < 4; ++v) service.push(ChurnOp::Delete(v));
  service.flush();

  EXPECT_TRUE(fired);
  EXPECT_EQ(service.stats().stale_replans, 1);
  EXPECT_EQ(service.stats().dropped_deletes, 1);  // victim 2 died externally
  EXPECT_EQ(service.stats().deletes, 3);
  for (NodeId v = 0; v < 4; ++v) EXPECT_FALSE(service.engine().is_alive(v));
  service.engine().validate();
}

TEST(HealerServiceDeathTest, ForcedStaleCommitDiesWithoutTheGate) {
  // What the admission gate protects against: bypass the service and drive
  // the engine's plan/commit split directly — a mutation between the two
  // hits the core's FG_CHECK wall. The service turns this death into the
  // re-plan counted by the tests above.
  Rng rng(9);
  Graph g0 = make_sparse_random(64, 4.0, rng);
  HealerConfig config;
  config.overlap = false;  // no planner thread in the parent of the death fork
  HealerService service(g0, config);
  std::vector<NodeId> wave{NodeId{1}, NodeId{2}};
  core::RepairPlan plan = service.engine().plan_delete_batch(wave);
  service.push(ChurnOp::Insert({NodeId{10}, NodeId{11}}));  // epoch bump
  EXPECT_DEATH(service.engine().commit_delete_batch(plan), "stale plan");
}

// ---------------------------------------------------------------------------
// Sampled certificate guardrail.

TEST(HealerService, GuardrailSamplesEveryKthWaveAndTeesValidCertificates) {
  Rng rng(10);
  Graph g0 = make_sparse_random(256, 4.0, rng);
  std::vector<ChurnOp> ops = make_stream(256, 800, 0xCAFE);

  HealerConfig config;
  config.wave_size = 8;
  config.certify_every = 3;
  HealerService service(g0, config);
  std::ostringstream certs;
  service.set_certificate_stream(&certs);
  VectorChurnStream stream(ops);
  service.run(stream);

  const HealerStats& stats = service.stats();
  ASSERT_GT(stats.waves, 6);
  // Waves 0, 3, 6, ... are sampled.
  EXPECT_EQ(stats.certified_waves, (stats.waves + 2) / 3);
  EXPECT_EQ(stats.cert_rejections, 0);

  // The teed stream is a valid fgcheck input: every certificate parses,
  // passes the first-principles checker, and carries the engine's
  // sequential certified-wave ordinal (the k-th sampled wave is stamped k,
  // whatever service wave it sampled).
  std::istringstream in(certs.str());
  int64_t parsed = 0;
  for (;;) {
    cert::WaveCertificate c;
    bool eof = false;
    cert::CheckResult pr = cert::parse(in, &c, &eof);
    if (eof) break;
    ASSERT_TRUE(pr.ok) << pr.diagnostic;
    EXPECT_EQ(c.wave, parsed);
    cert::CheckResult cr = cert::check(c);
    EXPECT_TRUE(cr.ok) << cr.diagnostic;
    ++parsed;
  }
  EXPECT_EQ(parsed, stats.certified_waves);
}

TEST(HealerService, GuardrailOffEmitsNothing) {
  Rng rng(11);
  Graph g0 = make_sparse_random(64, 4.0, rng);
  HealerConfig config;
  config.wave_size = 4;
  config.certify_every = 0;
  HealerService service(g0, config);
  std::ostringstream certs;
  service.set_certificate_stream(&certs);
  for (NodeId v = 0; v < 12; ++v) service.push(ChurnOp::Delete(v));
  service.flush();
  EXPECT_EQ(service.stats().certified_waves, 0);
  EXPECT_TRUE(certs.str().empty());
}

// ---------------------------------------------------------------------------
// Sampled audit guardrail (self-stabilizing recovery in the serving loop).

TEST(HealerService, AuditGuardrailDetectsAlertsAndRecovers) {
  Rng rng(13);
  Graph g0 = make_sparse_random(64, 4.0, rng);
  HealerConfig config;
  config.wave_size = 4;
  config.audit_every = 1;
  HealerService service(g0, config);

  std::vector<std::string> alerts;
  service.set_alert([&alerts](int64_t, const std::string& what) {
    alerts.push_back(what);
  });

  // Corrupt derived state (an image multiplicity, away from the wave's
  // victims) between snapshot and commit. The injection bumps the mutation
  // epoch, so the admission gate re-plans; the post-commit audit then finds
  // the drift and the stabilizer repairs it in-loop.
  bool fired = false;
  service.set_admission_hook([&](int64_t wave) {
    if (wave != 0 || fired) return;
    fired = true;
    service.engine().core().inject_multiplicity_bump(NodeId{50}, NodeId{51});
  });

  for (NodeId v = 0; v < 8; ++v) service.push(ChurnOp::Delete(v));
  service.flush();

  EXPECT_TRUE(fired);
  const HealerStats& stats = service.stats();
  EXPECT_EQ(stats.waves, 2);
  EXPECT_EQ(stats.audits, 2);  // audit_every=1 samples every wave
  EXPECT_GT(stats.audit_violations, 0);
  EXPECT_EQ(stats.recoveries, 1);
  EXPECT_EQ(stats.cert_rejections, 0);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts.front().rfind("audit: ", 0), 0u) << alerts.front();

  // The loop left a clean engine behind: audit and validate both agree.
  Stabilizer stabilizer(service.engine());
  EXPECT_TRUE(stabilizer.audit().clean());
  service.engine().validate();
}

TEST(HealerService, AuditGuardrailQuietOnCleanChurn) {
  Rng rng(14);
  Graph g0 = make_sparse_random(128, 4.0, rng);
  std::vector<ChurnOp> ops = make_stream(128, 400, 0xD00D);
  HealerConfig config;
  config.wave_size = 8;
  config.audit_every = 4;
  ServiceRun run = run_service(g0, ops, config);  // asserts zero alerts
  ASSERT_GT(run.stats.waves, 8);
  EXPECT_EQ(run.stats.audits, (run.stats.waves + 3) / 4);
  EXPECT_EQ(run.stats.audit_violations, 0);
  EXPECT_EQ(run.stats.recoveries, 0);
}

TEST(HealerService, RunReportsIngestedOpCount) {
  Rng rng(12);
  Graph g0 = make_sparse_random(64, 4.0, rng);
  HealerService service(g0);
  std::vector<ChurnOp> ops = make_stream(64, 100, 13);
  VectorChurnStream stream(ops);
  EXPECT_EQ(service.run(stream), 100);
  EXPECT_EQ(service.stats().ops, 100);
}

}  // namespace
}  // namespace fg
