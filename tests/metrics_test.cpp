#include "harness/metrics.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace fg {
namespace {

TEST(StretchStats, IdentityGraphsHaveStretchOne) {
  Graph g = make_cycle(10);
  Rng rng(1);
  auto s = sample_stretch(g, g, 10, rng);
  EXPECT_DOUBLE_EQ(s.max_stretch, 1.0);
  EXPECT_DOUBLE_EQ(s.avg_stretch, 1.0);
  EXPECT_EQ(s.pairs, 10 * 9);
  EXPECT_EQ(s.broken_pairs, 0);
}

TEST(StretchStats, DetoursAreMeasured) {
  // G' is a cycle of 6; G is the same cycle minus one edge (a path):
  // antipodal pairs stretch from 1 to 5.
  Graph gp = make_cycle(6);
  Graph g = make_cycle(6);
  g.remove_edge(0, 5);
  Rng rng(2);
  auto s = sample_stretch(g, gp, 6, rng);
  EXPECT_DOUBLE_EQ(s.max_stretch, 5.0);
  EXPECT_GT(s.avg_stretch, 1.0);
}

TEST(StretchStats, BrokenPairsCounted) {
  Graph gp = make_path(4);
  Graph g = make_path(4);
  g.remove_edge(1, 2);
  Rng rng(3);
  auto s = sample_stretch(g, gp, 4, rng);
  // 2 nodes on each side: 2*2*2 ordered broken pairs.
  EXPECT_EQ(s.broken_pairs, 8);
}

TEST(StretchStats, DeadIntermediariesCountForGPrimeOnly) {
  // G' has a dead node 1 bridging 0-2 (dist 2); G must route around.
  Graph gp = make_path(3);
  Graph g = make_path(3);
  g.remove_node(1);
  g.add_edge(0, 2);
  Rng rng(4);
  auto s = sample_stretch(g, gp, 3, rng);
  // dist_G(0,2)=1, dist_G'(0,2)=2: ratio 0.5 (healing can even shorten).
  EXPECT_DOUBLE_EQ(s.max_stretch, 1.0);
  EXPECT_LT(s.avg_stretch, 1.0);
}

TEST(StretchStats, TinyGraphs) {
  Graph g(1);
  Rng rng(5);
  auto s = sample_stretch(g, g, 4, rng);
  EXPECT_EQ(s.pairs, 0);
  EXPECT_DOUBLE_EQ(s.max_stretch, 1.0);
}

TEST(DegreeStats, RatiosComputed) {
  Graph gp = make_star(5);   // hub degree 4, leaves 1
  Graph g = make_star(5);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  auto d = degree_stats(g, gp);
  EXPECT_DOUBLE_EQ(d.max_ratio, 3.0);  // node 1: degree 3 vs 1
  EXPECT_EQ(d.max_degree_g, 4);
  EXPECT_GT(d.avg_ratio, 1.0);
}

TEST(DegreeStats, SkipsZeroGPrimeDegree) {
  Graph gp(3);
  Graph g(3);
  g.add_edge(0, 1);
  gp.add_edge(0, 1);
  auto d = degree_stats(g, gp);  // node 2 has G'-degree 0: skipped
  EXPECT_DOUBLE_EQ(d.max_ratio, 1.0);
}

}  // namespace
}  // namespace fg
