// Property suite for the self-stabilization audit (fg::Stabilizer).
//
// Three contracts:
//   1. Soundness — on every legally-reached state (fresh generators and
//      post-churn engines, up to 2^16 processors), the audit reports zero
//      violations and stabilize() declines to touch the engine.
//   2. Fixed point — after a recovery, a second audit is clean and a second
//      stabilize() is a no-op (also exercised per-seed by the fuzz oracle;
//      pinned here on a named case).
//   3. Contract C4 extended to recovery — the same corrupted checkpoint
//      stabilized at worker counts {1, 2, 4} replays byte-identical
//      checkpoints and certificate bytes (the recovery wave commits through
//      the ordinary schedule-independent pipeline, so worker counts must
//      not be observable).
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fg/forgiving_graph.h"
#include "fg/stabilizer.h"
#include "fuzz/corruptor.h"
#include "graph/generators.h"
#include "harness/certificate.h"
#include "util/rng.h"

namespace fg {
namespace {

std::string checkpoint(const ForgivingGraph& g) {
  std::ostringstream os;
  g.save(os);
  return os.str();
}

void expect_clean(ForgivingGraph& fg, const std::string& what) {
  SCOPED_TRACE(what);
  Stabilizer stabilizer(fg);
  AuditReport report = stabilizer.audit();
  EXPECT_TRUE(report.clean()) << report.summary();
  const std::string before = checkpoint(fg);
  const uint64_t epoch = fg.mutation_epoch();
  RecoveryStats recovery = stabilizer.stabilize();
  EXPECT_FALSE(recovery.recovered);
  EXPECT_EQ(fg.mutation_epoch(), epoch);
  EXPECT_EQ(checkpoint(fg), before);
}

/// Seeded churn: a few deletion waves with occasional inserts, so the
/// audited state carries real RTs, helpers, and representatives.
void churn(ForgivingGraph& fg, Rng& rng, int waves, int wave_size) {
  for (int w = 0; w < waves; ++w) {
    std::vector<NodeId> alive;
    for (NodeId v = 0; v < fg.gprime().node_capacity(); ++v)
      if (fg.is_alive(v)) alive.push_back(v);
    const int max_kill = static_cast<int>(alive.size()) - 2;
    if (max_kill <= 0) return;
    const int kill = std::min(wave_size, max_kill);
    rng.shuffle(alive);
    fg.delete_batch(std::span<const NodeId>(alive.data(),
                                            static_cast<size_t>(kill)));
    if (rng.next_bool(0.5)) {
      std::vector<NodeId> nbrs(alive.begin() + kill,
                               alive.begin() + kill +
                                   std::min<size_t>(3, alive.size() - kill));
      fg.insert(nbrs);
    }
  }
}

TEST(StabilizerProperty, CleanAuditAcrossGeneratorMatrix) {
  Rng rng(7);
  for (int n : {16, 256, 4096, 1 << 16}) {
    {
      ForgivingGraph fg(make_star(n));
      expect_clean(fg, "star fresh n=" + std::to_string(n));
      churn(fg, rng, 3, n >= 4096 ? 64 : 4);
      expect_clean(fg, "star churned n=" + std::to_string(n));
    }
    {
      Rng gen(static_cast<uint64_t>(n) * 31 + 1);
      ForgivingGraph fg(make_sparse_random(n, 3.0, gen));
      expect_clean(fg, "sparse fresh n=" + std::to_string(n));
      churn(fg, rng, 3, n >= 4096 ? 64 : 4);
      expect_clean(fg, "sparse churned n=" + std::to_string(n));
    }
    {
      ForgivingGraph fg(make_binary_tree(n));
      expect_clean(fg, "btree fresh n=" + std::to_string(n));
      churn(fg, rng, 3, n >= 4096 ? 64 : 4);
      expect_clean(fg, "btree churned n=" + std::to_string(n));
    }
  }
}

// The star hub deletion is the paper's worst case (Theorem 2): one RT over
// every leaf. The audit must walk that RT — reps, helpers, haft shape —
// and come back clean.
TEST(StabilizerProperty, CleanAuditAfterStarHubDeletion) {
  ForgivingGraph fg(make_star(1 << 12));
  fg.remove(0);
  expect_clean(fg, "star minus hub");
}

TEST(StabilizerProperty, StabilizeIsAFixedPoint) {
  ForgivingGraph fg = fuzz::make_substrate(17);
  fuzz::CorruptionLog log = fuzz::corrupt(fg, 17, 5);
  ASSERT_GT(log.applied, 0);
  Stabilizer stabilizer(fg);
  RecoveryStats first = stabilizer.stabilize();
  ASSERT_TRUE(first.recovered);
  // Second pass: clean audit, no recovery, engine untouched.
  expect_clean(fg, "post-recovery engine");
}

// Contract C4, extended to recovery: stabilizing the identical corrupted
// state must be byte-identical — checkpoints AND certificate bytes — at
// every worker count. The recovery plan's regions and arena reservation
// are a pure function of the audited state, never of scheduling.
TEST(StabilizerProperty, RecoveryIsScheduleIndependent) {
  std::string ref_ckpt;
  std::string ref_cert;
  for (int workers : {1, 2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ForgivingGraph fg = fuzz::make_substrate(99);
    fuzz::CorruptionLog log = fuzz::corrupt(fg, 99, 6);
    ASSERT_GT(log.applied, 0);
    fg.set_shard_workers(workers);
    fg.set_commit_workers(workers);
    fg.set_break_workers(workers);
    harness::CertificateCollector sink;
    fg.set_certificate_sink(&sink);
    Stabilizer stabilizer(fg);
    RecoveryStats recovery = stabilizer.stabilize();
    fg.set_certificate_sink(nullptr);
    ASSERT_TRUE(recovery.recovered);
    ASSERT_EQ(sink.certs.size(), 1u);
    std::ostringstream cert_os;
    sink.certs.front().save(cert_os);
    const std::string ckpt = checkpoint(fg);
    if (workers == 1) {
      ref_ckpt = ckpt;
      ref_cert = cert_os.str();
      EXPECT_FALSE(ref_cert.empty());
    } else {
      EXPECT_EQ(ckpt, ref_ckpt);
      EXPECT_EQ(cert_os.str(), ref_cert);
    }
  }
}

}  // namespace
}  // namespace fg
