// Property test for the pooled flat-adjacency Graph: random interleaved
// add_edge / remove_edge / batched-delta / add_node / remove_node
// (tombstone) sequences are checked against a naive set-of-pairs model
// after every step. The pinned properties are exactly what the sorted
// NeighborView API promises:
//   * every view is sorted ascending, duplicate-free, and alive-only;
//   * view contents, degree, has_edge, edge_count and alive_count match
//     the model;
//   * apply_edge_deltas is equivalent to the per-edge calls it batches;
//   * spill blocks recycle through the pool (a long churn run must not
//     corrupt earlier lists).
#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "util/rng.h"

namespace fg {
namespace {

struct Model {
  std::set<std::pair<NodeId, NodeId>> edges;  // normalized u < v
  std::vector<char> alive;

  static std::pair<NodeId, NodeId> norm(NodeId u, NodeId v) {
    return {std::min(u, v), std::max(u, v)};
  }
  NodeId add_node() {
    alive.push_back(1);
    return static_cast<NodeId>(alive.size() - 1);
  }
  void remove_node(NodeId v) {
    alive[static_cast<size_t>(v)] = 0;
    for (auto it = edges.begin(); it != edges.end();)
      it = (it->first == v || it->second == v) ? edges.erase(it) : std::next(it);
  }
  bool add_edge(NodeId u, NodeId v) { return edges.insert(norm(u, v)).second; }
  bool remove_edge(NodeId u, NodeId v) { return edges.erase(norm(u, v)) > 0; }
  std::vector<NodeId> neighbors(NodeId v) const {
    std::vector<NodeId> out;
    for (const auto& [a, b] : edges) {
      if (a == v) out.push_back(b);
      if (b == v) out.push_back(a);
    }
    std::sort(out.begin(), out.end());
    return out;
  }
};

void check_equivalent(const Graph& g, const Model& m) {
  ASSERT_EQ(g.node_capacity(), static_cast<int>(m.alive.size()));
  ASSERT_EQ(g.edge_count(), static_cast<int64_t>(m.edges.size()));
  int alive = 0;
  for (NodeId v = 0; v < g.node_capacity(); ++v) {
    ASSERT_EQ(g.is_alive(v), m.alive[static_cast<size_t>(v)] != 0);
    alive += g.is_alive(v);
    NeighborView view = g.neighbors(v);
    // Sorted strictly ascending => duplicate-free.
    ASSERT_TRUE(std::is_sorted(view.begin(), view.end()));
    for (size_t i = 1; i < view.size(); ++i) ASSERT_LT(view[i - 1], view[i]);
    // Alive-only: a tombstoned node keeps no edges and appears in none.
    for (NodeId w : view) ASSERT_TRUE(g.is_alive(w));
    if (!g.is_alive(v)) {
      ASSERT_TRUE(view.empty());
    }
    ASSERT_EQ(static_cast<int>(view.size()), g.degree(v));
    std::vector<NodeId> expect = m.neighbors(v);
    ASSERT_EQ(std::vector<NodeId>(view.begin(), view.end()), expect);
    for (NodeId w : expect) {
      ASSERT_TRUE(g.has_edge(v, w));
      ASSERT_TRUE(view.contains(w));
    }
    if (!expect.empty()) {
      ASSERT_EQ(view.front(), expect.front());
      ASSERT_EQ(view.back(), expect.back());
    }
    // Spot-check absent neighbors on both lookup paths.
    for (NodeId w = 0; w < g.node_capacity(); w += 7)
      if (w != v && !std::binary_search(expect.begin(), expect.end(), w)) {
        ASSERT_FALSE(g.has_edge(v, w));
        ASSERT_FALSE(view.contains(w));
      }
  }
  ASSERT_EQ(g.alive_count(), alive);
}

TEST(GraphViewProperty, RandomChurnMatchesSetOfPairsModel) {
  Rng rng(20260730);
  for (int trial = 0; trial < 8; ++trial) {
    const int n0 = 3 + static_cast<int>(rng.next_below(12));
    Graph g(n0);
    Model m;
    m.alive.assign(static_cast<size_t>(n0), 1);

    for (int step = 0; step < 300; ++step) {
      std::vector<NodeId> alive;
      for (NodeId v = 0; v < g.node_capacity(); ++v)
        if (g.is_alive(v)) alive.push_back(v);
      const uint64_t roll = rng.next_below(100);
      if (roll < 8) {
        ASSERT_EQ(g.add_node(), m.add_node());
      } else if (roll < 14 && alive.size() > 2) {
        NodeId v = rng.pick(alive);
        g.remove_node(v);
        m.remove_node(v);
      } else if (roll < 60 && alive.size() >= 2) {
        NodeId u = rng.pick(alive);
        NodeId v = rng.pick(alive);
        if (u != v) {
          ASSERT_EQ(g.add_edge(u, v), m.add_edge(u, v));
        }
      } else if (alive.size() >= 2) {
        NodeId u = rng.pick(alive);
        NodeId v = rng.pick(alive);
        if (u != v) {
          ASSERT_EQ(g.remove_edge(u, v), m.remove_edge(u, v));
        }
      }
      if (step % 23 == 0) check_equivalent(g, m);
    }
    check_equivalent(g, m);
  }
}

TEST(GraphViewProperty, BatchedDeltasMatchPerEdgeCalls) {
  Rng rng(77);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 20;
    Graph batched(n);
    Graph sequential(n);
    Model m;
    m.alive.assign(n, 1);

    for (int round = 0; round < 20; ++round) {
      // A batch of distinct edges: a mix of adds (some already present)
      // and removes (some absent).
      std::vector<EdgeDelta> deltas;
      std::set<std::pair<NodeId, NodeId>> used;
      const int k = 1 + static_cast<int>(rng.next_below(10));
      for (int i = 0; i < k; ++i) {
        NodeId u = static_cast<NodeId>(rng.next_below(n));
        NodeId v = static_cast<NodeId>(rng.next_below(n));
        if (u == v || !used.insert(Model::norm(u, v)).second) continue;
        auto op = rng.next_bool(0.6) ? EdgeDelta::Op::kAdd : EdgeDelta::Op::kRemove;
        deltas.push_back({u, v, op});
      }
      int expect_applied = 0;
      for (const EdgeDelta& d : deltas) {
        bool changed = d.op == EdgeDelta::Op::kAdd ? sequential.add_edge(d.u, d.v)
                                                   : sequential.remove_edge(d.u, d.v);
        ASSERT_EQ(changed, d.op == EdgeDelta::Op::kAdd ? m.add_edge(d.u, d.v)
                                                       : m.remove_edge(d.u, d.v));
        expect_applied += changed;
      }
      ASSERT_EQ(batched.apply_edge_deltas(deltas), expect_applied);
      ASSERT_TRUE(batched.same_topology(sequential));
      check_equivalent(batched, m);
    }
  }
}

TEST(GraphViewProperty, HubChurnRecyclesSpillBlocks) {
  // Grow a hub past every size class, tombstone it, regrow a second hub:
  // the second hub's list must reuse pooled blocks without disturbing the
  // spokes' (inline) lists.
  const int n = 600;
  Graph g(n);
  Model m;
  m.alive.assign(n, 1);
  for (NodeId v = 2; v < n; ++v) {
    ASSERT_TRUE(g.add_edge(0, v));
    m.add_edge(0, v);
  }
  check_equivalent(g, m);
  g.remove_node(0);
  m.remove_node(0);
  for (NodeId v = 2; v < n; ++v) {
    ASSERT_TRUE(g.add_edge(1, v));
    m.add_edge(1, v);
  }
  check_equivalent(g, m);
}

TEST(GraphViewProperty, ViewsAreSortedAfterUnsortedInsertionOrder) {
  // Insert neighbors in descending and shuffled order; the view must come
  // back ascending regardless.
  Rng rng(5);
  Graph g(64);
  std::vector<NodeId> order;
  for (NodeId v = 1; v < 64; ++v) order.push_back(v);
  rng.shuffle(order);
  for (NodeId v : order) g.add_edge(0, v);
  NeighborView view = g.neighbors(0);
  ASSERT_EQ(view.size(), 63u);
  ASSERT_TRUE(std::is_sorted(view.begin(), view.end()));
  ASSERT_EQ(view.front(), 1);
  ASSERT_EQ(view.back(), 63);
}

}  // namespace
}  // namespace fg
