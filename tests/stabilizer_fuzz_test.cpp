// The corruption-fuzzer oracle (docs/SELF_STABILIZATION.md).
//
// Every case is one loop of the self-stabilization contract on a seeded,
// fully deterministic substrate:
//
//   corrupt -> audit (must see the fault) -> stabilize -> audit (clean,
//   fixed point) -> validate() -> recovery certificate ACCEPTed by
//   cert::check, cert::check_stream, and the standalone fgcheck binary ->
//   healed-image connectivity restored.
//
// The audit is also cross-checked in the other direction: whenever it
// reports clean, the core's FG_CHECK-fatal validate() must agree — a
// false-clean audit dies here instead of slipping through.
//
// CorpusReplay pins the committed seed corpus (tests/data/corruption/):
// any seed that ever fails gets minimized and committed there, so the
// regression replays in every lane, sanitizers included.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cert/certificate.h"
#include "fg/forgiving_graph.h"
#include "fg/stabilizer.h"
#include "fuzz/corruptor.h"
#include "graph/algorithms.h"
#include "harness/certificate.h"

namespace fg {
namespace {

std::string checkpoint(const ForgivingGraph& g) {
  std::ostringstream os;
  g.save(os);
  return os.str();
}

std::string cert_bytes(const cert::WaveCertificate& c) {
  std::ostringstream os;
  c.save(os);
  return os.str();
}

/// One oracle loop. Appends the recovery certificate's canonical bytes to
/// `cert_stream` (when recovery ran) so callers can batch-audit with the
/// fgcheck binary.
void run_oracle(uint64_t seed, int mutations, std::string* cert_stream = nullptr) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " mutations=" + std::to_string(mutations));
  ForgivingGraph fg = fuzz::make_substrate(seed);
  const bool was_connected = is_connected(fg.healed());

  fuzz::CorruptionLog log = fuzz::corrupt(fg, seed, mutations);
  ASSERT_GT(log.applied, 0) << "corruptor found no target";
  SCOPED_TRACE("corruption: " + log.description);

  Stabilizer stabilizer(fg);
  AuditReport before = stabilizer.audit();
  // A single mutation of a legal engine always leaves a detectable
  // violation; independent mutations can in principle cancel back to a
  // legal state, which validate() cross-checks below.
  if (log.applied == 1) {
    EXPECT_FALSE(before.clean());
  }
  if (before.clean()) {
    fg.validate();
    return;
  }

  harness::CertificateCollector sink;
  fg.set_certificate_sink(&sink);
  RecoveryStats recovery = stabilizer.stabilize();
  fg.set_certificate_sink(nullptr);
  EXPECT_TRUE(recovery.recovered);
  ASSERT_EQ(sink.certs.size(), 1u);

  AuditReport after = stabilizer.audit();
  EXPECT_TRUE(after.clean()) << "not a fixed point: " << after.summary();
  fg.validate();
  EXPECT_EQ(is_connected(fg.healed()), was_connected);

  cert::CheckResult checked = cert::check(sink.certs.front());
  EXPECT_TRUE(checked.ok) << checked.diagnostic;
  const std::string bytes = cert_bytes(sink.certs.front());
  std::istringstream is(bytes);
  cert::StreamResult stream = cert::check_stream(is);
  EXPECT_TRUE(stream.ok) << stream.diagnostic;
  EXPECT_FALSE(stream.malformed);
  EXPECT_EQ(stream.waves_checked, 1);
  if (cert_stream != nullptr) cert_stream->append(bytes);
}

// The CI fuzz-smoke gate: 500 seeded cases across every substrate family
// and 1..4 simultaneous faults, zero oracle failures. Deterministic, so a
// failure here is a replayable seed to minimize into the corpus.
TEST(StabilizerFuzz, SmokeSeedRange) {
  for (uint64_t seed = 0; seed < 500; ++seed)
    run_oracle(seed, 1 + static_cast<int>(seed % 4));
}

// Every mutation family, applied alone, must be visible to the audit and
// recoverable — no fault kind relies on co-occurring damage to be found.
TEST(StabilizerFuzz, EveryMutationKindDetectedAndRecovered) {
  for (int k = 0; k < fuzz::kMutationKinds; ++k) {
    const auto kind = static_cast<fuzz::MutationKind>(k);
    SCOPED_TRACE(fuzz::mutation_kind_name(kind));
    int exercised = 0;
    for (uint64_t seed = 0; seed < 8; ++seed) {
      ForgivingGraph fg = fuzz::make_substrate(seed);
      fuzz::CorruptionLog log = fuzz::corrupt_one(fg, seed, kind);
      if (log.applied == 0) continue;  // no target in this substrate
      ++exercised;
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " corruption: " + log.description);
      Stabilizer stabilizer(fg);
      EXPECT_FALSE(stabilizer.audit().clean());
      RecoveryStats recovery = stabilizer.stabilize();
      EXPECT_TRUE(recovery.recovered);
      EXPECT_TRUE(stabilizer.audit().clean());
      fg.validate();
    }
    EXPECT_GT(exercised, 0) << "kind never applicable across the seed range";
  }
}

// Same seed, same everything: substrate checkpoint, corruption log,
// post-recovery checkpoint, certificate bytes.
TEST(StabilizerFuzz, SameSeedReplaysByteIdentically) {
  auto run = [](uint64_t seed, std::string* ckpt, std::string* cert,
                std::string* log_out) {
    ForgivingGraph fg = fuzz::make_substrate(seed);
    fuzz::CorruptionLog log = fuzz::corrupt(fg, seed, 3);
    harness::CertificateCollector sink;
    fg.set_certificate_sink(&sink);
    Stabilizer stabilizer(fg);
    RecoveryStats recovery = stabilizer.stabilize();
    fg.set_certificate_sink(nullptr);
    ASSERT_TRUE(recovery.recovered);
    ASSERT_EQ(sink.certs.size(), 1u);
    *ckpt = checkpoint(fg);
    *cert = cert_bytes(sink.certs.front());
    *log_out = log.description;
  };
  std::string ckpt_a, cert_a, log_a, ckpt_b, cert_b, log_b;
  run(42, &ckpt_a, &cert_a, &log_a);
  run(42, &ckpt_b, &cert_b, &log_b);
  EXPECT_EQ(log_a, log_b);
  EXPECT_EQ(ckpt_a, ckpt_b);
  EXPECT_EQ(cert_a, cert_b);
}

// Replay the committed corpus: every minimized regression seed, plus the
// deep multi-fault pile-ups the smoke range doesn't reach.
TEST(StabilizerFuzz, CorpusReplay) {
  const std::filesystem::path dir =
      std::filesystem::path(FG_REPO_DIR) / "tests" / "data" / "corruption";
  ASSERT_TRUE(std::filesystem::is_directory(dir));
  int cases = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".txt") continue;
    SCOPED_TRACE(entry.path().filename().string());
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.is_open());
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream fields(line);
      uint64_t seed = 0;
      int mutations = 0;
      ASSERT_TRUE(static_cast<bool>(fields >> seed >> mutations))
          << "bad corpus line: " << line;
      run_oracle(seed, mutations);
      ++cases;
    }
  }
  EXPECT_GE(cases, 20);
}

// The standalone verifier must accept recovery certificates at the process
// level (exit 0) — the same independence argument as for deletion waves.
TEST(StabilizerFuzz, FgcheckBinaryAcceptsRecoveryCertificates) {
  std::string stream;
  for (uint64_t seed = 0; seed < 24; ++seed) run_oracle(seed, 2, &stream);
  ASSERT_FALSE(stream.empty());
  const std::string path = testing::TempDir() + "/recovery_certs.txt";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.is_open());
    out << stream;
  }
  const std::string cmd =
      std::string(FG_FGCHECK_BIN) + " " + path + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  ASSERT_NE(status, -1);
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace fg
