// Tests of the stage-wise (paper-faithful BottomupRTMerge) merge mode:
// structural validity of the healed topology, the Theorem-1 bounds, and the
// O(log n) piece-list message size it restores.
#include <gtest/gtest.h>

#include <cmath>

#include "fg/dist/dist_forgiving_graph.h"
#include "fg/forgiving_graph.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "haft/haft.h"
#include "harness/metrics.h"
#include "util/rng.h"

namespace fg::dist {
namespace {

TEST(StageWise, StarHubDeletionHealsConnected) {
  DistForgivingGraph net(make_star(65), MergeMode::kStageWise);
  net.remove(0);
  net.validate();
  Graph g = net.image();
  EXPECT_TRUE(is_connected(g));
  for (NodeId v = 1; v <= 64; ++v) EXPECT_LE(g.degree(v), 4);
  // RT over 64 leaves: diameter through the haft <= 2*log2(64).
  EXPECT_LE(exact_diameter(g), 12);
}

TEST(StageWise, MessageSizeStaysLogarithmic) {
  // The point of stage-wise merging: list messages never exceed O(log n)
  // pieces. A piece is 8 words; allow the +1 header and slack for the
  // carries of three combined lists.
  for (int n : {64, 256, 1024, 4096}) {
    DistForgivingGraph net(make_star(n), MergeMode::kStageWise);
    net.remove(0);
    int limit = 8 * (3 * haft::ceil_log2(n) + 4) + 1;
    EXPECT_LE(net.last_repair_cost().max_message_words, limit) << "n=" << n;
  }
}

TEST(StageWise, GlobalModeMessagesGrowLinearlyStageWiseDoNot) {
  DistForgivingGraph global(make_star(2049), MergeMode::kGlobalPlan);
  DistForgivingGraph staged(make_star(2049), MergeMode::kStageWise);
  global.remove(0);
  staged.remove(0);
  EXPECT_GT(global.last_repair_cost().max_message_words, 8000);
  EXPECT_LT(staged.last_repair_cost().max_message_words, 400);
}

TEST(StageWise, SameLeafSetAsCentralizedDifferentAssociationAllowed) {
  // Stage-wise topology may differ from the reference engine, but it must
  // heal the same node set with the same connectivity and bounds.
  Rng rng(17);
  Graph g0 = make_erdos_renyi(40, 0.15, rng);
  DistForgivingGraph staged(g0, MergeMode::kStageWise);
  fg::ForgivingGraph central(g0);
  for (int i = 0; i < 25; ++i) {
    auto alive = central.healed().alive_nodes();
    NodeId v = rng.pick(alive);
    staged.remove(v);
    central.remove(v);
    Graph gs = staged.image();
    ASSERT_EQ(gs.alive_count(), central.healed().alive_count());
    ASSERT_TRUE(is_connected(gs));
    staged.validate();
  }
}

TEST(StageWise, TheoremBoundsUnderChurn) {
  Rng rng(29);
  Graph g0 = make_erdos_renyi(50, 0.12, rng);
  DistForgivingGraph net(g0, MergeMode::kStageWise);
  for (int step = 0; step < 45; ++step) {
    Graph img = net.image();
    bool del = img.alive_count() > 2 && rng.next_bool(0.7);
    if (del) {
      auto alive = img.alive_nodes();
      net.remove(rng.pick(alive));
    } else {
      auto alive = img.alive_nodes();
      rng.shuffle(alive);
      alive.resize(std::min<size_t>(2, alive.size()));
      net.insert(alive);
    }
    if (step % 9 == 0) net.validate();
  }
  net.validate();
  Graph img = net.image();
  auto d = degree_stats(img, net.gprime());
  EXPECT_LE(d.max_ratio, 4.0);
  Rng srng(1);
  auto s = sample_stretch(img, net.gprime(), 16, srng);
  EXPECT_EQ(s.broken_pairs, 0);
  EXPECT_LE(s.max_stretch, std::max(1, haft::ceil_log2(net.gprime().node_capacity())));
}

TEST(StageWise, SequentialAdjacentDeletions) {
  DistForgivingGraph net(make_path(8), MergeMode::kStageWise);
  for (NodeId v = 1; v <= 5; ++v) {
    net.remove(v);
    net.validate();
    ASSERT_TRUE(is_connected(net.image()));
  }
}

TEST(CarryPlan, LeavesDistinctSizes) {
  std::vector<haft::PieceInfo> pieces;
  for (int i = 0; i < 11; ++i) pieces.push_back({1, static_cast<uint64_t>(i)});
  auto plan = haft::carry_plan(pieces);
  // 11 = 1011b: carries reduce 11 singletons to 3 trees (8+2+1) in 8 joins.
  EXPECT_EQ(plan.size(), 8u);
}

TEST(CarryPlan, NoOpOnDistinctSizes) {
  EXPECT_TRUE(haft::carry_plan({{1, 0}, {2, 1}, {8, 2}}).empty());
}

}  // namespace
}  // namespace fg::dist
