// Message-level fault injection for the distributed engine
// (net::DeliveryPolicy drop/dup knobs) and the checkpoint seam into the
// self-stabilizer.
//
// The paper's model promises reliable eventual delivery; these tests push
// past it. The repair commits its structure through the shared
// core::StructuralCore at DAG-construction time, so losing or duplicating
// protocol messages must never lose structure: under any mix of drops,
// duplicates, delays, and reordering, the healed image stays bit-identical
// to the centralized engine (kGlobalPlan) and every emitted wave
// certificate still ACCEPTs. A dropped message only leaves its DAG
// dependents undispatched; a duplicate only re-delivers into an
// already-satisfied dependency count.
//
// The last tests cover the recovery seams around the network: a corrupted
// replica restored from a distributed checkpoint (core().save()) is healed
// by fg::Stabilizer, and a stale plan — the one fault the pipeline must
// refuse rather than absorb — dies on the core's admission check.
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "cert/certificate.h"
#include "fg/dist/dist_forgiving_graph.h"
#include "fg/forgiving_graph.h"
#include "fg/stabilizer.h"
#include "fuzz/corruptor.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "harness/certificate.h"
#include "util/rng.h"

namespace fg {
namespace {

class FaultSeeds : public ::testing::TestWithParam<uint64_t> {};

// Drops + duplicates + delays + reordering, all at once: topology tracks
// the centralized engine step for step, and the dist engine's certificates
// (structure and Lemma-4 cost claim) keep ACCEPTing.
TEST_P(FaultSeeds, DropAndDupKeepTopologyAndCertificates) {
  Rng rng(31);
  Graph g0 = make_erdos_renyi(40, 0.15, rng);
  ForgivingGraph central(g0);
  dist::DistForgivingGraph net(g0);
  net::DeliveryPolicy policy;
  policy.seed = GetParam();
  policy.max_extra_delay = 1;
  policy.shuffle = true;
  policy.drop_one_in = 6;
  policy.dup_one_in = 4;
  net.set_delivery_policy(policy);
  harness::CertificateCollector sink;
  net.set_certificate_sink(&sink);

  for (int i = 0; i < 16; ++i) {
    auto alive = central.healed().alive_nodes();
    NodeId v = rng.pick(alive);
    central.remove(v);
    net.remove(v);
    ASSERT_TRUE(central.healed().same_topology(net.image()))
        << "diverged at step " << i << " under seed " << GetParam();
  }
  net.validate();
  ASSERT_EQ(sink.certs.size(), 16u);
  for (size_t w = 0; w < sink.certs.size(); ++w) {
    cert::CheckResult res = cert::check(sink.certs[w]);
    EXPECT_TRUE(res.ok) << "wave " << w << ": " << res.diagnostic;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSeeds,
                         ::testing::Range(uint64_t{1}, uint64_t{7}));

// Drop every 2nd / duplicate every 2nd message — far beyond any plausible
// fault rate — and batched multi-victim waves still converge connected.
TEST(NetworkFault, ExtremeFaultRatesStillConverge) {
  Rng rng(47);
  dist::DistForgivingGraph net(make_barabasi_albert(36, 2, rng));
  net::DeliveryPolicy policy;
  policy.seed = 7;
  policy.max_extra_delay = 2;
  policy.shuffle = true;
  policy.drop_one_in = 2;
  policy.dup_one_in = 2;
  net.set_delivery_policy(policy);

  for (int wave = 0; wave < 6; ++wave) {
    auto alive = net.image().alive_nodes();
    if (alive.size() <= 4) break;
    rng.shuffle(alive);
    std::vector<NodeId> victims(alive.begin(), alive.begin() + 2);
    net.delete_batch(victims);
    net.validate();
    ASSERT_TRUE(is_connected(net.image())) << "wave " << wave;
  }
}

// Traffic accounting is send-side (Lemma 4 counts what processors emit):
// a drop suppresses its DAG dependents, so it can only remove sends; a
// duplicate is delivery-side noise an already-satisfied dependency absorbs,
// so it changes nothing the stats can see. Neither touches the topology.
TEST(NetworkFault, DropRemovesTrafficDupIsInvisible) {
  auto run = [](int drop, int dup) {
    dist::DistForgivingGraph net(make_star(49));
    net::DeliveryPolicy policy;
    policy.seed = 11;
    policy.drop_one_in = drop;
    policy.dup_one_in = dup;
    net.set_delivery_policy(policy);
    net.remove(0);
    return net;
  };
  dist::DistForgivingGraph clean = run(0, 0);
  dist::DistForgivingGraph dropped = run(5, 0);
  dist::DistForgivingGraph duped = run(0, 5);
  EXPECT_LT(dropped.last_repair_cost().messages,
            clean.last_repair_cost().messages);
  EXPECT_EQ(duped.last_repair_cost().messages,
            clean.last_repair_cost().messages);
  EXPECT_TRUE(clean.image().same_topology(dropped.image()));
  EXPECT_TRUE(clean.image().same_topology(duped.image()));
}

// The recovery seam across engines: checkpoint a churned distributed
// replica (core().save()), restore it into the centralized engine, corrupt
// the restored copy, and let the stabilizer bring it back — clean audit,
// valid invariants, certificate ACCEPTed.
TEST(NetworkFault, CorruptedReplicaCheckpointStabilizes) {
  Rng rng(53);
  dist::DistForgivingGraph net(make_erdos_renyi(44, 0.14, rng));
  net::DeliveryPolicy policy;
  policy.seed = 3;
  policy.shuffle = true;
  policy.drop_one_in = 8;
  policy.dup_one_in = 8;
  net.set_delivery_policy(policy);
  for (int i = 0; i < 8; ++i) {
    auto alive = net.image().alive_nodes();
    net.remove(rng.pick(alive));
  }

  std::ostringstream checkpoint;
  net.core().save(checkpoint);
  std::istringstream restore(checkpoint.str());
  ForgivingGraph replica = ForgivingGraph::load(restore);
  replica.validate();
  ASSERT_TRUE(replica.healed().same_topology(net.image()));

  fuzz::CorruptionLog log = fuzz::corrupt(replica, 53, 4);
  ASSERT_GT(log.applied, 0);
  Stabilizer stabilizer(replica);
  if (stabilizer.audit().clean()) {
    replica.validate();  // cancelling mutations: cross-check, nothing to heal
    return;
  }
  harness::CertificateCollector sink;
  replica.set_certificate_sink(&sink);
  RecoveryStats recovery = stabilizer.stabilize();
  replica.set_certificate_sink(nullptr);
  EXPECT_TRUE(recovery.recovered);
  ASSERT_EQ(sink.certs.size(), 1u);
  EXPECT_TRUE(stabilizer.audit().clean());
  replica.validate();
  cert::CheckResult res = cert::check(sink.certs.front());
  EXPECT_TRUE(res.ok) << res.diagnostic;
}

// The one fault the pipeline refuses instead of absorbing: a plan whose
// core mutated since planning. The admission check must die loudly, not
// commit garbage.
TEST(NetworkFaultDeathTest, CommittingAStalePlanDies) {
  ForgivingGraph fg(make_star(16));
  NodeId first = 3;
  core::RepairPlan plan = fg.plan_delete_batch({&first, 1});
  fg.remove(5);  // any mutation stales the outstanding plan
  EXPECT_DEATH(fg.commit_delete_batch(plan), "committing a stale plan");
}

}  // namespace
}  // namespace fg
