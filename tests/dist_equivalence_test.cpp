// Equivalence of the two engines: for any adversarial schedule, the
// distributed protocol must produce exactly the topology of the centralized
// reference implementation (both execute the same deterministic ComputeHaft
// plan over the same piece set — docs/DESIGN.md invariant 6). This is the
// strongest correctness evidence for the message-passing implementation.
#include <gtest/gtest.h>

#include "fg/dist/dist_forgiving_graph.h"
#include "fg/forgiving_graph.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace fg {
namespace {

struct EquivCase {
  const char* graph;
  int n;
  double p_delete;
  int steps;
  uint64_t seed;
};

Graph build_graph(const std::string& kind, int n, Rng& rng) {
  if (kind == "star") return make_star(n);
  if (kind == "path") return make_path(n);
  if (kind == "cycle") return make_cycle(n);
  if (kind == "grid") return make_grid(n / 6, 6);
  if (kind == "er") return make_erdos_renyi(n, 5.0 / n, rng);
  if (kind == "ba") return make_barabasi_albert(n, 2, rng);
  if (kind == "complete") return make_complete(n);
  ADD_FAILURE() << "unknown graph kind";
  return Graph(1);
}

class EngineEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(EngineEquivalence, IdenticalTopologyOnRandomSchedule) {
  const EquivCase& c = GetParam();
  Rng rng(c.seed);
  Graph g0 = build_graph(c.graph, c.n, rng);
  ForgivingGraph central(g0);
  dist::DistForgivingGraph distributed(g0);

  for (int step = 0; step < c.steps; ++step) {
    bool del = central.healed().alive_count() > 2 && rng.next_bool(c.p_delete);
    if (del) {
      auto alive = central.healed().alive_nodes();
      NodeId v = rng.pick(alive);
      central.remove(v);
      distributed.remove(v);
    } else {
      auto alive = central.healed().alive_nodes();
      rng.shuffle(alive);
      int want = static_cast<int>(rng.next_int(1, 3));
      alive.resize(static_cast<size_t>(std::min<int>(want, static_cast<int>(alive.size()))));
      NodeId a = central.insert(alive);
      NodeId b = distributed.insert(alive);
      ASSERT_EQ(a, b);
    }
    ASSERT_TRUE(central.healed().same_topology(distributed.image()))
        << "diverged at step " << step << " (" << (del ? "delete" : "insert") << ")";
  }
  central.validate();
  distributed.validate();
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, EngineEquivalence,
    ::testing::Values(EquivCase{"star", 17, 1.0, 14, 1}, EquivCase{"star", 33, 0.7, 30, 2},
                      EquivCase{"path", 30, 0.8, 25, 3}, EquivCase{"cycle", 24, 0.9, 20, 4},
                      EquivCase{"er", 40, 0.6, 45, 5}, EquivCase{"er", 60, 0.75, 60, 6},
                      EquivCase{"ba", 50, 0.65, 55, 7}, EquivCase{"grid", 36, 0.8, 30, 8},
                      EquivCase{"complete", 12, 0.9, 9, 9}, EquivCase{"er", 30, 0.4, 70, 10},
                      EquivCase{"ba", 35, 1.0, 32, 11}, EquivCase{"path", 50, 0.5, 70, 12}),
    [](const ::testing::TestParamInfo<EquivCase>& info) {
      const auto& c = info.param;
      return std::string(c.graph) + "_n" + std::to_string(c.n) + "_s" +
             std::to_string(c.seed);
    });

TEST(EngineEquivalence, HubChainCollapse) {
  // Deleting a chain of hubs whose RTs repeatedly merge: the hardest case
  // for plan/representative agreement between the engines.
  Graph g0 = make_star(20);
  for (NodeId v = 1; v < 20; v += 3) g0.add_edge(v, (v % 19) + 1 == v ? v - 1 : (v % 19) + 1);
  ForgivingGraph central(g0);
  dist::DistForgivingGraph distributed(g0);
  for (NodeId v = 0; v < 15; ++v) {
    central.remove(v);
    distributed.remove(v);
    ASSERT_TRUE(central.healed().same_topology(distributed.image())) << "at " << v;
  }
  central.validate();
  distributed.validate();
}

}  // namespace
}  // namespace fg
