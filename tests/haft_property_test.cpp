// Property-style sweeps over haft invariants (Lemma 1 and the Strip/Merge
// operations of Section 4.1), parameterized over leaf counts and random
// merge schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <numeric>

#include "haft/haft.h"
#include "util/rng.h"

namespace fg::haft {
namespace {

class HaftLeafCount : public ::testing::TestWithParam<int64_t> {};

TEST_P(HaftLeafCount, DepthIsCeilLog2) {
  HaftForest f;
  int root = f.build(GetParam());
  EXPECT_EQ(f.depth(root), ceil_log2(GetParam()));
}

TEST_P(HaftLeafCount, IsValidHaft) {
  HaftForest f;
  int root = f.build(GetParam());
  EXPECT_TRUE(f.is_haft(root));
}

TEST_P(HaftLeafCount, InternalNodeCountIsLeavesMinusOne) {
  // A haft over l leaves has exactly l-1 internal nodes: this is what lets
  // the representative mechanism find a distinct simulator for every helper.
  HaftForest f;
  int64_t l = GetParam();
  int root = f.build(l);
  int64_t internal = 0;
  std::vector<int> stack{root};
  while (!stack.empty()) {
    int h = stack.back();
    stack.pop_back();
    const auto& n = f.node(h);
    if (!n.is_leaf) {
      ++internal;
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  EXPECT_EQ(internal, l - 1);
}

TEST_P(HaftLeafCount, StripPieceSizesAreBinaryDigits) {
  HaftForest f;
  int64_t l = GetParam();
  int root = f.build(l);
  auto pieces = f.strip(root);
  uint64_t reassembled = 0;
  for (int p : pieces) reassembled |= static_cast<uint64_t>(f.node(p).leaf_count);
  EXPECT_EQ(reassembled, static_cast<uint64_t>(l));
}

TEST_P(HaftLeafCount, UniquenessViaLeafOrderInvariance) {
  // Lemma 1.1: haft(l) is unique. Building by singleton merge and building
  // by a two-part split merge must give structurally equal trees.
  int64_t l = GetParam();
  if (l < 2) return;
  HaftForest f1, f2;
  int r1 = f1.build(l);
  int a = f2.build(l / 2, 0);
  int b = f2.build(l - l / 2, static_cast<uint64_t>(l / 2));
  int r2 = f2.merge({a, b});

  // Structural equality via parallel preorder traversal of shapes.
  std::vector<std::pair<int, int>> stack{{r1, r2}};
  while (!stack.empty()) {
    auto [x, y] = stack.back();
    stack.pop_back();
    ASSERT_EQ(f1.node(x).is_leaf, f2.node(y).is_leaf);
    ASSERT_EQ(f1.node(x).leaf_count, f2.node(y).leaf_count);
    ASSERT_EQ(f1.node(x).height, f2.node(y).height);
    if (!f1.node(x).is_leaf) {
      stack.push_back({f1.node(x).left, f2.node(y).left});
      stack.push_back({f1.node(x).right, f2.node(y).right});
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSmallSizes, HaftLeafCount,
                         ::testing::Range(int64_t{1}, int64_t{130}));
INSTANTIATE_TEST_SUITE_P(PowersAndNeighbors, HaftLeafCount,
                         ::testing::Values(255, 256, 257, 511, 512, 513, 1023, 1024,
                                           1025, 4095, 4096, 4097));

class RandomMergeSchedule : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomMergeSchedule, RepeatedRandomMergesPreserveHaftness) {
  Rng rng(GetParam());
  HaftForest f;
  std::vector<int> roots;
  uint64_t next_label = 0;
  // Start with random singleton hafts and hafts of random size.
  for (int i = 0; i < 20; ++i) {
    int64_t l = rng.next_int(1, 40);
    roots.push_back(f.build(l, next_label));
    next_label += static_cast<uint64_t>(l);
  }
  // Randomly merge groups until one haft remains.
  while (roots.size() > 1) {
    size_t take = static_cast<size_t>(rng.next_int(2, 4));
    take = std::min(take, roots.size());
    rng.shuffle(roots);
    std::vector<int> group(roots.end() - static_cast<long>(take), roots.end());
    roots.resize(roots.size() - take);
    int merged = f.merge(group);
    ASSERT_TRUE(f.is_haft(merged));
    roots.push_back(merged);
  }
  // All leaves survive every merge.
  auto labels = f.leaf_labels(roots[0]);
  std::sort(labels.begin(), labels.end());
  std::vector<uint64_t> want(labels.size());
  std::iota(want.begin(), want.end(), 0u);
  EXPECT_EQ(labels, want);
}

TEST_P(RandomMergeSchedule, StripThenMergeIsIdempotentOnLeafSet) {
  Rng rng(GetParam() ^ 0xabcdef);
  HaftForest f;
  int64_t l = rng.next_int(2, 200);
  int root = f.build(l);
  auto pieces = f.strip(root);
  int merged = f.merge(pieces);
  EXPECT_TRUE(f.is_haft(merged));
  EXPECT_EQ(f.node(merged).leaf_count, l);
  EXPECT_EQ(f.depth(merged), ceil_log2(l));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMergeSchedule, ::testing::Range(uint64_t{0}, uint64_t{12}));

}  // namespace
}  // namespace fg::haft
