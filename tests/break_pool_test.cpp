// The parallel break fan-out (contract C4 extended to the break phase,
// docs/CONCURRENCY.md):
//
//   * Concurrent break_region calls over a CommitPool — the exact shape
//     ShardedForest::execute dispatches — must land on the byte-identical
//     checkpoint the core's sequential commit_break produces. The engine-
//     level fan-out gate may keep breaks inline on boxes with no spare
//     hardware threads, so this suite drives the pool directly; it is what
//     keeps the parallel break TSan-covered everywhere (the tsan/asan
//     preset filters include BreakPool).
//   * The BreakEffects stitch is deterministic: region-local buffers
//     applied in region id order replay the serial break's shared-state
//     writes exactly — image-edge drops, slot ops, counters, live count.
//   * The engine-level knob (set_break_workers) composes with the merge
//     fan-out across waves and worker-count changes.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fg/forgiving_graph.h"
#include "fg/sharded_forest.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace fg {
namespace {

std::string checkpoint(const ForgivingGraph& fg) {
  std::stringstream ss;
  fg.save(ss);
  return ss.str();
}

// Break every region of one wave concurrently on a CommitPool, recording
// each region's side effects, then stitch in region id order — the pipeline
// ShardedForest::execute runs when break workers > 1.
std::vector<std::vector<VNodeId>> pooled_break(core::StructuralCore& core,
                                               const core::RepairPlan& plan,
                                               int background) {
  const int regions = static_cast<int>(plan.regions.size());
  std::vector<std::vector<VNodeId>> pieces(static_cast<size_t>(regions));
  std::vector<core::StructuralCore::BreakEffects> effects(
      static_cast<size_t>(regions));
  core.begin_break(plan);
  struct Ctx {
    std::atomic<int> next{0};
    std::atomic<int> broken{0};
  };
  auto ctx = std::make_shared<Ctx>();
  auto work = [ctx, &core, &plan, &pieces, &effects, regions] {
    for (int r = ctx->next.fetch_add(1); r < regions;
         r = ctx->next.fetch_add(1)) {
      pieces[static_cast<size_t>(r)] = core.break_region(
          plan.regions[static_cast<size_t>(r)], &effects[static_cast<size_t>(r)]);
      ctx->broken.fetch_add(1, std::memory_order_release);
    }
  };
  CommitPool pool(background);
  pool.dispatch(work);
  work();
  while (ctx->broken.load(std::memory_order_acquire) < regions)
    std::this_thread::yield();
  for (int r = 0; r < regions; ++r)
    core.apply_break_effects(plan.regions[static_cast<size_t>(r)],
                             effects[static_cast<size_t>(r)]);
  core.finish_break(plan);
  return pieces;
}

// Finish the wave (sequential merges) so the cores are comparable as full
// checkpoints, not just mid-repair state.
void finish_merge(core::StructuralCore& core, const core::RepairPlan& plan,
                  std::vector<std::vector<VNodeId>> pieces) {
  const int regions = static_cast<int>(plan.regions.size());
  std::vector<core::StructuralCore::MergeEffects> effects(
      static_cast<size_t>(regions));
  for (int r = 0; r < regions; ++r)
    core.merge_region(plan.regions[static_cast<size_t>(r)],
                      std::move(pieces[static_cast<size_t>(r)]),
                      &effects[static_cast<size_t>(r)]);
  for (int r = 0; r < regions; ++r)
    core.apply_merge_effects(effects[static_cast<size_t>(r)]);
  core.check_reservation_settled(plan);
}

TEST(BreakPool, ConcurrentBreakRegionsMatchSequential) {
  Rng rng(311);
  Graph g0 = make_erdos_renyi(150, 7.0 / 150, rng);
  core::StructuralCore sequential(g0);
  core::StructuralCore concurrent(g0);

  auto alive = sequential.image().alive_nodes();
  rng.shuffle(alive);
  alive.resize(8);

  {
    core::RepairPlan plan = sequential.plan_deletion(alive);
    finish_merge(sequential, plan, sequential.commit_break(plan));
  }
  {
    core::RepairPlan plan = concurrent.plan_deletion(alive);
    finish_merge(concurrent, plan, pooled_break(concurrent, plan, 3));
  }

  std::stringstream a, b;
  sequential.save(a);
  concurrent.save(b);
  EXPECT_EQ(a.str(), b.str());
  sequential.validate();
  concurrent.validate();
}

TEST(BreakPool, RepeatedWavesThroughTheSamePoolStayIdentical) {
  // Several waves, the concurrent core breaking each on a fresh drain-style
  // dispatch — the stitch must keep derived state (slot tables, healed
  // image, live count) in lockstep so later waves plan identically.
  Rng rng(313);
  Graph g0 = make_erdos_renyi(140, 7.0 / 140, rng);
  core::StructuralCore sequential(g0);
  core::StructuralCore concurrent(g0);

  for (int wave = 0; wave < 5; ++wave) {
    auto alive = sequential.image().alive_nodes();
    if (alive.size() <= 16) break;
    rng.shuffle(alive);
    alive.resize(6);
    {
      core::RepairPlan plan = sequential.plan_deletion(alive);
      finish_merge(sequential, plan, sequential.commit_break(plan));
    }
    {
      core::RepairPlan plan = concurrent.plan_deletion(alive);
      finish_merge(concurrent, plan, pooled_break(concurrent, plan, 2));
    }
    std::stringstream a, b;
    sequential.save(a);
    concurrent.save(b);
    ASSERT_EQ(a.str(), b.str()) << "wave " << wave;
  }
  sequential.validate();
  concurrent.validate();
}

TEST(BreakPool, EngineKnobComposesWithMergeWorkersAcrossWaves) {
  // The engine-level path: set_break_workers with and without commit
  // workers, reconfigured mid-run — every combination must track the
  // single-threaded engine's checkpoints wave for wave.
  Rng rng(317);
  Graph g0 = make_erdos_renyi(130, 7.0 / 130, rng);
  ForgivingGraph single(g0);
  ForgivingGraph pooled(g0);
  pooled.set_break_workers(4);

  for (int wave = 0; wave < 6; ++wave) {
    if (wave == 2) pooled.set_commit_workers(2);   // both fan-outs, one pool
    if (wave == 4) pooled.set_break_workers(2);    // resize the shared pool
    auto alive = single.healed().alive_nodes();
    if (alive.size() <= 12) break;
    rng.shuffle(alive);
    alive.resize(5);
    single.delete_batch(alive);
    pooled.delete_batch(alive);
    ASSERT_EQ(checkpoint(single), checkpoint(pooled)) << "wave " << wave;
  }
  single.validate();
  pooled.validate();
  EXPECT_TRUE(is_connected(pooled.healed()));
}

TEST(BreakPool, GlobalSplitSingleRegionBreaksInline) {
  // A kGlobal wave has one region; the fan-out degenerates to the serial
  // path (regions <= 1 gate) and must still be byte-identical.
  Rng rng(331);
  Graph g0 = make_erdos_renyi(100, 7.0 / 100, rng);
  ForgivingGraph single(g0);
  ForgivingGraph pooled(g0);
  single.set_region_split(core::RegionSplit::kGlobal);
  pooled.set_region_split(core::RegionSplit::kGlobal);
  pooled.set_break_workers(4);

  auto alive = single.healed().alive_nodes();
  rng.shuffle(alive);
  alive.resize(6);
  single.delete_batch(alive);
  pooled.delete_batch(alive);
  EXPECT_EQ(checkpoint(single), checkpoint(pooled));
  pooled.validate();
}

}  // namespace
}  // namespace fg
