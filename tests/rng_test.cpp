#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace fg {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(10), 10u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng r(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng r(11);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = r.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_seen |= v == -3;
    hi_seen |= v == 3;
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoolProbabilityRoughlyRespected) {
  Rng r(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.next_bool(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(123);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (c1.next_u64() == c2.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng r(77);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng r(78);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto orig = v;
  r.shuffle(v);
  EXPECT_NE(v, orig);
}

}  // namespace
}  // namespace fg
