// Golden-output determinism for the user-facing emitters.
//
// examples/simulate and examples/visualize_rt print live data-structure
// state. Before the sorted-NeighborView redesign this output was
// stdlib-dependent: repair plans consumed `unordered_set` iteration order,
// so vnode arena handles — and every DOT label and metric row derived from
// them — could differ between standard libraries. Views are now sorted by
// construction, so the exact bytes are part of the contract; this test
// replays both examples' output pipelines and pins them. If a deliberate
// algorithm change shifts these goldens, regenerate them and say so in the
// commit — an *unexplained* diff here is a determinism regression.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "adversary/adversary.h"
#include "fg/forgiving_graph.h"
#include "graph/generators.h"
#include "harness/experiment.h"
#include "haft/haft.h"
#include "heal/healer.h"
#include "util/table.h"

namespace fg {
namespace {

// The examples/visualize_rt pipeline: DOT for every RT root of the forest.
std::string dump_rts(const ForgivingGraph& network) {
  std::string out;
  const VirtualForest& f = network.forest();
  for (VNodeId h = 0; h < f.arena_size(); ++h)
    if (f.exists(h) && f.node(h).parent == kNoVNode) out += f.to_dot(h);
  return out;
}

TEST(GoldenOutput, VisualizeRtPathMergeIsPinned) {
  // examples/visualize_rt stage 1-2: path 0-1-2-3-4-5, delete 2 then 3.
  ForgivingGraph network(make_path(6));
  network.remove(2);
  EXPECT_EQ(dump_rts(network),
            "digraph RT {\n"
            "  rankdir=TB;\n"
            "  n2 [label=\"(1,2)\", shape=ellipse];\n"
            "  n2 -> n0;\n"
            "  n2 -> n1;\n"
            "  n0 [label=\"(1,2)\", shape=box];\n"
            "  n1 [label=\"(3,2)\", shape=box];\n"
            "}\n");
  network.remove(3);
  EXPECT_EQ(dump_rts(network),
            "digraph RT {\n"
            "  rankdir=TB;\n"
            "  n4 [label=\"(1,2)\", shape=ellipse];\n"
            "  n4 -> n0;\n"
            "  n4 -> n3;\n"
            "  n0 [label=\"(1,2)\", shape=box];\n"
            "  n3 [label=\"(4,3)\", shape=box];\n"
            "}\n");
}

TEST(GoldenOutput, VisualizeRtStarHubHaftIsPinned) {
  // examples/visualize_rt stage 3: the Figure-2 haft over 8 leaves. The
  // anchor-leaf order (and so every arena handle) comes from the sorted
  // G' neighbor view of the dead hub — canonical on every stdlib.
  ForgivingGraph star(make_star(9));
  star.remove(0);
  EXPECT_EQ(dump_rts(star),
            "digraph RT {\n"
            "  rankdir=TB;\n"
            "  n14 [label=\"(4,0)\", shape=ellipse];\n"
            "  n14 -> n12;\n"
            "  n14 -> n13;\n"
            "  n12 [label=\"(2,0)\", shape=ellipse];\n"
            "  n12 -> n8;\n"
            "  n12 -> n9;\n"
            "  n8 [label=\"(1,0)\", shape=ellipse];\n"
            "  n8 -> n0;\n"
            "  n8 -> n1;\n"
            "  n0 [label=\"(1,0)\", shape=box];\n"
            "  n1 [label=\"(2,0)\", shape=box];\n"
            "  n9 [label=\"(3,0)\", shape=ellipse];\n"
            "  n9 -> n2;\n"
            "  n9 -> n3;\n"
            "  n2 [label=\"(3,0)\", shape=box];\n"
            "  n3 [label=\"(4,0)\", shape=box];\n"
            "  n13 [label=\"(6,0)\", shape=ellipse];\n"
            "  n13 -> n10;\n"
            "  n13 -> n11;\n"
            "  n10 [label=\"(5,0)\", shape=ellipse];\n"
            "  n10 -> n4;\n"
            "  n10 -> n5;\n"
            "  n4 [label=\"(5,0)\", shape=box];\n"
            "  n5 [label=\"(6,0)\", shape=box];\n"
            "  n11 [label=\"(7,0)\", shape=ellipse];\n"
            "  n11 -> n6;\n"
            "  n11 -> n7;\n"
            "  n6 [label=\"(7,0)\", shape=box];\n"
            "  n7 [label=\"(8,0)\", shape=box];\n"
            "}\n");
}

TEST(GoldenOutput, SimulateMetricsTableIsPinned) {
  // The examples/simulate pipeline on a small fixed run: build, heal under
  // an adversary, render the sampled metric table. Every cell is pinned —
  // the healed topology (components, degrees, stretch) must replay
  // byte-identically for a fixed seed on any platform.
  Rng rng(1);
  Graph g0 = make_erdos_renyi(48, 8.0 / 48, rng);
  auto healer = make_healer("forgiving", g0);
  auto adversary = make_adversary("random-delete");
  RunConfig cfg;
  cfg.max_steps = 30;
  cfg.sample_every = 10;
  cfg.stretch_sources = 8;
  RunResult res = run_experiment(*healer, *adversary, cfg, rng);

  Table t{"step", "alive", "n seen", "max deg ratio", "max stretch", "avg stretch",
          "bound", "components"};
  auto row = [&](const Sample& s) {
    t.add(s.step, s.alive, s.total_inserted, fmt(s.degree.max_ratio),
          fmt(s.stretch.max_stretch), fmt(s.stretch.avg_stretch),
          std::max(1, haft::ceil_log2(std::max(2, s.total_inserted))), s.components);
  };
  for (const Sample& s : res.timeline) row(s);
  row(res.final);
  std::ostringstream out;
  t.print(out);

  EXPECT_EQ(
      out.str(),
      "step  alive  n seen  max deg ratio  max stretch  avg stretch  bound  components\n"
      "-------------------------------------------------------------------------------\n"
      "10    38     48      1.60           1.50         0.92         6      1\n"
      "20    28     48      1.83           1.50         0.88         6      1\n"
      "30    18     48      2.00           1.50         0.77         6      1\n"
      "30    18     48      2.00           1.50         0.78         6      1\n");
  EXPECT_EQ(fmt(res.worst_degree_ratio), "2.00");
  EXPECT_EQ(fmt(res.worst_stretch), "1.50");
  EXPECT_EQ(res.broken_pairs_total, 0);
  EXPECT_EQ(res.deletions, 30);
  EXPECT_EQ(res.insertions, 0);
}

}  // namespace
}  // namespace fg
