// Parameterized sweep over the KAry healer family — the knob that traces
// the Theorem-2 degree/stretch tradeoff curve. For every arity the healed
// star must be connected, with max degree k+1 (internal tree node: parent +
// k children) and diameter ~2*log_k(d).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "harness/metrics.h"
#include "heal/baselines.h"
#include "util/rng.h"

namespace fg {
namespace {

class KArySweep : public ::testing::TestWithParam<int> {};

TEST_P(KArySweep, StarHubDeletionShape) {
  const int k = GetParam();
  const int d = 200;
  KAryHealer h(make_star(d + 1), k);
  h.remove(0);
  const Graph& g = h.healed();
  EXPECT_TRUE(is_connected(g));
  int maxdeg = 0;
  for (NodeId v : g.alive_nodes()) maxdeg = std::max(maxdeg, g.degree(v));
  EXPECT_LE(maxdeg, k + 1);
  // Complete k-ary tree over d nodes: depth <= ceil(log_k(d)) + 1.
  int depth_bound = static_cast<int>(std::ceil(std::log(d) / std::log(k))) + 1;
  EXPECT_LE(exact_diameter(g), 2 * depth_bound);
}

TEST_P(KArySweep, SurvivesCascade) {
  const int k = GetParam();
  Rng rng(static_cast<uint64_t>(k) * 31);
  KAryHealer h(make_star(100), k);
  for (int i = 0; i < 80; ++i) {
    auto alive = h.healed().alive_nodes();
    h.remove(rng.pick(alive));
    ASSERT_TRUE(is_connected(h.healed()));
  }
}

TEST_P(KArySweep, LargerAritySmallerDiameter) {
  const int k = GetParam();
  if (k >= 32) return;  // compare k against 2k
  KAryHealer small_k(make_star(513), k);
  KAryHealer big_k(make_star(513), 2 * k);
  small_k.remove(0);
  big_k.remove(0);
  EXPECT_GE(exact_diameter(small_k.healed()), exact_diameter(big_k.healed()));
}

INSTANTIATE_TEST_SUITE_P(Arities, KArySweep, ::testing::Values(2, 3, 4, 5, 8, 16, 32));

}  // namespace
}  // namespace fg
