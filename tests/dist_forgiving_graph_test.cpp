// Unit tests of the distributed Forgiving Graph protocol: topology results,
// Table-1 state consistency, and the message/round cost bounds of Lemma 4.
#include "fg/dist/dist_forgiving_graph.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "haft/haft.h"

namespace fg::dist {
namespace {

TEST(DistForgivingGraph, InitImageMatchesG0) {
  Graph g0 = make_cycle(6);
  DistForgivingGraph d(g0);
  EXPECT_TRUE(d.image().same_topology(g0));
  d.validate();
}

TEST(DistForgivingGraph, DeleteMiddleOfPath) {
  DistForgivingGraph d(make_path(3));
  d.remove(1);
  d.validate();
  Graph g = d.image();
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_EQ(g.alive_count(), 2);
  const RepairCost& c = d.last_repair_cost();
  EXPECT_EQ(c.anchors, 2);
  EXPECT_EQ(c.pieces, 2);
  EXPECT_GT(c.messages, 0);
}

TEST(DistForgivingGraph, DeleteStarHub) {
  DistForgivingGraph d(make_star(9));
  d.remove(0);
  d.validate();
  Graph g = d.image();
  EXPECT_TRUE(is_connected(g));
  for (NodeId v = 1; v <= 8; ++v) EXPECT_LE(g.degree(v), 3);
  EXPECT_EQ(d.last_repair_cost().anchors, 8);
  EXPECT_EQ(d.last_repair_cost().pieces, 8);
}

TEST(DistForgivingGraph, DeleteLeafIsCheap) {
  DistForgivingGraph d(make_star(9));
  d.remove(5);  // degree-1 node: single anchor, no BT, no joins
  d.validate();
  const RepairCost& c = d.last_repair_cost();
  EXPECT_EQ(c.anchors, 1);
  EXPECT_EQ(c.bt_edges, 0);
  EXPECT_EQ(c.messages, 0);  // everything local to the single anchor
  EXPECT_TRUE(is_connected(d.image()));
}

TEST(DistForgivingGraph, InsertCostsOneMessagePerNeighbor) {
  DistForgivingGraph d(make_path(4));
  std::vector<NodeId> nbrs{0, 2, 3};
  NodeId id = d.insert(nbrs);
  EXPECT_EQ(id, 4);
  d.validate();
  EXPECT_TRUE(d.image().has_edge(4, 0));
  EXPECT_TRUE(d.gprime().has_edge(4, 3));
}

TEST(DistForgivingGraph, SequentialAdjacentDeletions) {
  DistForgivingGraph d(make_path(6));
  d.remove(2);
  d.validate();
  d.remove(3);
  d.validate();
  Graph g = d.image();
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.alive_count(), 4);
}

TEST(DistForgivingGraph, IsolatedNodeDeletionIsFree) {
  Graph g0(3);
  g0.add_edge(0, 1);
  DistForgivingGraph d(g0);
  d.remove(2);
  EXPECT_EQ(d.last_repair_cost().messages, 0);
  EXPECT_EQ(d.last_repair_cost().anchors, 0);
}

TEST(DistForgivingGraph, RepairCostScalesWithDLogN) {
  // Lemma 4: messages O(d log n) — check the measured constant is small.
  for (int d_deg : {8, 32, 128}) {
    DistForgivingGraph d(make_star(d_deg + 1));
    d.remove(0);
    const RepairCost& c = d.last_repair_cost();
    double n = d_deg + 1;
    double bound = 40.0 * d_deg * std::max(1, haft::ceil_log2(static_cast<int64_t>(n)));
    EXPECT_LT(static_cast<double>(c.messages), bound) << "d=" << d_deg;
    EXPECT_GT(c.messages, d_deg);  // at least the piece reports move
  }
}

TEST(DistForgivingGraph, RoundsScaleWithLogs) {
  // Our plan-broadcast variant achieves O(log d + log n) rounds, within the
  // paper's O(log d log n) budget.
  for (int d_deg : {8, 64, 256}) {
    DistForgivingGraph d(make_star(d_deg + 1));
    d.remove(0);
    int rounds = d.last_repair_cost().rounds;
    int logd = std::max(1, haft::ceil_log2(d_deg));
    EXPECT_LE(rounds, 8 * logd) << "d=" << d_deg;
  }
}

TEST(DistForgivingGraph, LifetimeStatsAccumulate) {
  DistForgivingGraph d(make_star(9));
  d.remove(0);
  int64_t after_first = d.lifetime_stats().messages;
  EXPECT_GT(after_first, 0);
  d.remove(1);
  EXPECT_GT(d.lifetime_stats().messages, after_first);
}

TEST(DistForgivingGraphDeathTest, DoubleDeleteRejected) {
  DistForgivingGraph d(make_path(3));
  d.remove(0);
  EXPECT_DEATH(d.remove(0), "dead");
}

}  // namespace
}  // namespace fg::dist
