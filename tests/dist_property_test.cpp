// Property tests of the distributed engine under randomized churn: the
// Theorem-1 bounds measured on the image topology, protocol-state
// consistency after every repair, and the Lemma-4 cost envelope.
#include <gtest/gtest.h>

#include <cmath>

#include "fg/dist/dist_forgiving_graph.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "haft/haft.h"
#include "harness/metrics.h"
#include "util/rng.h"

namespace fg::dist {
namespace {

struct DistCase {
  const char* graph;
  int n;
  double p_delete;
  int steps;
  uint64_t seed;
};

Graph build_graph(const std::string& kind, int n, Rng& rng) {
  if (kind == "star") return make_star(n);
  if (kind == "cycle") return make_cycle(n);
  if (kind == "er") return make_erdos_renyi(n, 6.0 / n, rng);
  if (kind == "ba") return make_barabasi_albert(n, 2, rng);
  ADD_FAILURE() << "unknown kind";
  return Graph(1);
}

class DistChurnProperty : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistChurnProperty, BoundsAndConsistencyUnderChurn) {
  const DistCase& c = GetParam();
  Rng rng(c.seed);
  Graph g0 = build_graph(c.graph, c.n, rng);
  DistForgivingGraph net(g0);

  for (int step = 0; step < c.steps; ++step) {
    Graph img = net.image();
    bool del = img.alive_count() > 2 && rng.next_bool(c.p_delete);
    if (del) {
      auto alive = img.alive_nodes();
      NodeId v = rng.pick(alive);
      net.remove(v);
      // Lemma 4 envelope on every single repair.
      const RepairCost& cost = net.last_repair_cost();
      int n_seen = net.gprime().node_capacity();
      int d = std::max(1, cost.deleted_degree);
      double bound = 60.0 * d * std::max(1, haft::ceil_log2(n_seen));
      ASSERT_LE(static_cast<double>(cost.messages), bound) << "step " << step;
      ASSERT_LE(cost.rounds, 10 * std::max(1, haft::ceil_log2(std::max(2, d))) +
                                 haft::ceil_log2(n_seen))
          << "step " << step;
    } else {
      auto alive = img.alive_nodes();
      rng.shuffle(alive);
      int want = static_cast<int>(rng.next_int(1, 3));
      alive.resize(static_cast<size_t>(std::min<int>(want, static_cast<int>(alive.size()))));
      net.insert(alive);
    }
    if (step % 5 == 0) net.validate();
  }
  net.validate();

  // Theorem 1 on the final image.
  Graph img = net.image();
  ASSERT_TRUE(is_connected(img));
  auto d = degree_stats(img, net.gprime());
  EXPECT_LE(d.max_ratio, 4.0);
  Rng srng(1);
  auto s = sample_stretch(img, net.gprime(), 16, srng);
  EXPECT_EQ(s.broken_pairs, 0);
  EXPECT_LE(s.max_stretch, std::max(1, haft::ceil_log2(net.gprime().node_capacity())));
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, DistChurnProperty,
    ::testing::Values(DistCase{"er", 40, 0.7, 45, 21}, DistCase{"er", 60, 0.55, 60, 22},
                      DistCase{"star", 33, 0.8, 28, 23}, DistCase{"cycle", 30, 0.75, 30, 24},
                      DistCase{"ba", 45, 0.65, 50, 25}, DistCase{"er", 25, 1.0, 22, 26}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      const auto& c = info.param;
      return std::string(c.graph) + "_n" + std::to_string(c.n) + "_s" +
             std::to_string(c.seed);
    });

TEST(DistProperty, PerNodeTrafficStaysBounded) {
  // The distributed plan execution spreads MakeHelper issuance across the
  // claiming anchors: no single processor should send more than a small
  // multiple of (its own pieces + log n) messages.
  DistForgivingGraph net(make_star(257));
  net.remove(0);
  EXPECT_LE(net.last_repair_cost().max_node_messages, 32);
}

TEST(DistProperty, RepeatedHubDeletionsStayCheap) {
  // Deleting nodes inside an already-merged RT must not cost more than the
  // Lemma-4 envelope even though the RT spans the whole network.
  DistForgivingGraph net(make_star(129));
  net.remove(0);
  for (NodeId v = 1; v <= 100; ++v) {
    net.remove(v);
    const auto& c = net.last_repair_cost();
    EXPECT_LE(static_cast<double>(c.messages),
              60.0 * std::max(1, c.deleted_degree) * haft::ceil_log2(129))
        << "victim " << v;
  }
  EXPECT_TRUE(is_connected(net.image()));
}

}  // namespace
}  // namespace fg::dist
