// Property suite for batched deletions (delete_batch): a batch of k
// simultaneous victims healed in one repair round — one merged plan and
// one new RT per connected dirty region — must be *semantically*
// equivalent to k sequential deletions. The structures need not be
// identical (the batch's RT partition follows its regions), but both must
// satisfy invariants I1-I5, the same Theorem 1 degree/stretch bounds, and
// preserve connectivity. In kGlobalPlan mode the distributed engine must
// stay bit-identical to the centralized engine on batched schedules too,
// since both run the shared core::StructuralCore. (The region machinery
// itself is pinned by tests/sharded_repair_test.cpp.)
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "adversary/adversary.h"
#include "fg/dist/dist_forgiving_graph.h"
#include "fg/forgiving_graph.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "haft/haft.h"
#include "harness/experiment.h"
#include "harness/metrics.h"
#include "harness/trace.h"
#include "heal/healer.h"
#include "util/rng.h"

namespace fg {
namespace {

Graph build_graph(const std::string& kind, int n, Rng& rng) {
  if (kind == "star") return make_star(n);
  if (kind == "path") return make_path(n);
  if (kind == "cycle") return make_cycle(n);
  if (kind == "grid") return make_grid(n / 6, 6);
  if (kind == "er") return make_erdos_renyi(n, 6.0 / n, rng);
  if (kind == "ba") return make_barabasi_albert(n, 2, rng);
  if (kind == "complete") return make_complete(n);
  ADD_FAILURE() << "unknown graph kind";
  return Graph(1);
}

/// Both bounds of Theorem 1, asserted on an engine's current state.
void assert_bounds(const ForgivingGraph& fg, Rng& rng) {
  DegreeStats ds = degree_stats(fg.healed(), fg.gprime());
  EXPECT_LE(ds.max_ratio, 4.0);
  StretchStats ss = sample_stretch(fg.healed(), fg.gprime(), 16, rng);
  double bound = std::max(1, haft::ceil_log2(fg.gprime().node_capacity()));
  EXPECT_LE(ss.max_stretch, bound);
  EXPECT_EQ(ss.broken_pairs, 0);
}

struct BatchCase {
  const char* graph;
  int n;
  int batch;
  int waves;
  uint64_t seed;
};

class BatchVsSequential : public ::testing::TestWithParam<BatchCase> {};

// The headline property: drive identical victim waves through a batched
// engine and a sequential engine. After every wave both must validate,
// agree on the alive set, stay connected, and satisfy the same bounds.
TEST_P(BatchVsSequential, SameInvariantsAndBounds) {
  const BatchCase& c = GetParam();
  Rng rng(c.seed);
  Graph g0 = build_graph(c.graph, c.n, rng);
  ForgivingGraph batched(g0);
  ForgivingGraph sequential(g0);

  for (int wave = 0; wave < c.waves; ++wave) {
    auto alive = batched.healed().alive_nodes();
    if (static_cast<int>(alive.size()) <= c.batch + 2) break;
    rng.shuffle(alive);
    alive.resize(static_cast<size_t>(c.batch));

    batched.delete_batch(alive);
    for (NodeId v : alive) sequential.remove(v);

    ASSERT_NO_FATAL_FAILURE(batched.validate());
    ASSERT_NO_FATAL_FAILURE(sequential.validate());
    ASSERT_EQ(batched.healed().alive_count(), sequential.healed().alive_count());
    for (NodeId v : alive) {
      ASSERT_FALSE(batched.is_alive(v));
      ASSERT_FALSE(sequential.is_alive(v));
    }
    ASSERT_TRUE(is_connected(batched.healed()));
    ASSERT_TRUE(is_connected(sequential.healed()));
  }
  assert_bounds(batched, rng);
  assert_bounds(sequential, rng);
}

INSTANTIATE_TEST_SUITE_P(
    Waves, BatchVsSequential,
    ::testing::Values(BatchCase{"star", 40, 3, 8, 1}, BatchCase{"er", 60, 4, 8, 2},
                      BatchCase{"ba", 50, 5, 6, 3}, BatchCase{"cycle", 36, 3, 7, 4},
                      BatchCase{"grid", 36, 4, 5, 5}, BatchCase{"path", 40, 2, 10, 6},
                      BatchCase{"complete", 16, 4, 3, 7}, BatchCase{"er", 80, 8, 6, 8}),
    [](const ::testing::TestParamInfo<BatchCase>& info) {
      const auto& c = info.param;
      return std::string(c.graph) + "_n" + std::to_string(c.n) + "_k" +
             std::to_string(c.batch) + "_s" + std::to_string(c.seed);
    });

TEST(BatchDelete, SingletonBatchIsExactlyRemove) {
  // delete_batch({v}) and remove(v) must be the *same* code path: identical
  // topology, identical repair stats.
  Rng rng(17);
  Graph g0 = make_erdos_renyi(40, 6.0 / 40, rng);
  ForgivingGraph a(g0);
  ForgivingGraph b(g0);
  auto order = g0.alive_nodes();
  rng.shuffle(order);
  order.resize(20);
  for (NodeId v : order) {
    a.remove(v);
    b.delete_batch({&v, 1});
    ASSERT_TRUE(a.healed().same_topology(b.healed()));
    ASSERT_EQ(a.last_repair().pieces, b.last_repair().pieces);
    ASSERT_EQ(a.last_repair().helpers_created, b.last_repair().helpers_created);
  }
  a.validate();
  b.validate();
}

TEST(BatchDelete, AdjacentVictimsSpawnNoLeaves) {
  // An edge between two victims must not leave a slot behind: both
  // endpoints die, so nobody survives to simulate its real node. This is
  // the state sequential deletions converge to.
  Graph g0 = make_path(6);  // 0-1-2-3-4-5
  ForgivingGraph fg(g0);
  std::vector<NodeId> victims{2, 3};
  fg.delete_batch(victims);
  fg.validate();
  EXPECT_FALSE(fg.is_alive(2));
  EXPECT_FALSE(fg.is_alive(3));
  EXPECT_TRUE(is_connected(fg.healed()));
  // Exactly two fresh real nodes: (1,2) and (4,3).
  EXPECT_EQ(fg.last_repair().new_leaves, 2);
  EXPECT_EQ(fg.last_repair().pieces, 2);
}

TEST(BatchDelete, WholeNeighborhoodBatch) {
  // Delete a hub together with half its spokes in one round.
  ForgivingGraph fg(make_star(24));
  std::vector<NodeId> victims{0};
  for (NodeId v = 1; v <= 11; ++v) victims.push_back(v);
  fg.delete_batch(victims);
  fg.validate();
  EXPECT_TRUE(is_connected(fg.healed()));
  EXPECT_EQ(fg.healed().alive_count(), 12);
}

TEST(BatchDelete, MassExtinctionToTwoSurvivors) {
  Rng rng(23);
  Graph g0 = make_erdos_renyi(30, 8.0 / 30, rng);
  ForgivingGraph fg(g0);
  auto alive = g0.alive_nodes();
  rng.shuffle(alive);
  alive.resize(28);
  fg.delete_batch(alive);
  fg.validate();
  EXPECT_EQ(fg.healed().alive_count(), 2);
  EXPECT_TRUE(is_connected(fg.healed()));
}

TEST(BatchDelete, DistGlobalPlanBitIdentical) {
  // Invariant 6 extends to batches: both engines run the shared structural
  // core, so batched repairs are bit-identical in kGlobalPlan mode.
  Rng rng(31);
  Graph g0 = make_erdos_renyi(50, 6.0 / 50, rng);
  ForgivingGraph central(g0);
  dist::DistForgivingGraph distributed(g0);
  for (int wave = 0; wave < 6; ++wave) {
    auto alive = central.healed().alive_nodes();
    if (alive.size() <= 8) break;
    rng.shuffle(alive);
    alive.resize(4);
    central.delete_batch(alive);
    distributed.delete_batch(alive);
    ASSERT_TRUE(central.healed().same_topology(distributed.image()))
        << "diverged at wave " << wave;
    ASSERT_GT(distributed.last_repair_cost().messages, 0);
  }
  central.validate();
  distributed.validate();
}

TEST(BatchDelete, DistStageWiseKeepsInvariants) {
  Rng rng(37);
  Graph g0 = make_barabasi_albert(40, 2, rng);
  dist::DistForgivingGraph distributed(g0, dist::MergeMode::kStageWise);
  for (int wave = 0; wave < 5; ++wave) {
    auto alive = distributed.image().alive_nodes();
    if (alive.size() <= 8) break;
    rng.shuffle(alive);
    alive.resize(4);
    distributed.delete_batch(alive);
    ASSERT_NO_FATAL_FAILURE(distributed.validate());
    ASSERT_TRUE(is_connected(distributed.image()));
  }
}

TEST(BatchDelete, BatchRepairCostBeatsSequential) {
  // The point of batching: one detection round, one report/broadcast wave,
  // one merged plan. Total protocol traffic for a wave must come in below
  // the same victims healed one repair at a time.
  Rng rng(41);
  Graph g0 = make_erdos_renyi(60, 8.0 / 60, rng);
  dist::DistForgivingGraph batched(g0);
  dist::DistForgivingGraph sequential(g0);
  auto victims = g0.alive_nodes();
  rng.shuffle(victims);
  victims.resize(12);

  batched.delete_batch(victims);
  int64_t batched_msgs = batched.last_repair_cost().messages;
  int batched_rounds = batched.last_repair_cost().rounds;

  int64_t seq_msgs = 0;
  int seq_rounds = 0;
  for (NodeId v : victims) {
    sequential.remove(v);
    seq_msgs += sequential.last_repair_cost().messages;
    seq_rounds += sequential.last_repair_cost().rounds;
  }
  EXPECT_LT(batched_msgs, seq_msgs);
  EXPECT_LT(batched_rounds, seq_rounds);
  batched.validate();
  sequential.validate();
}

TEST(BatchDelete, HealerInterfaceAndAdversary) {
  // remove_batch flows through the Healer interface; baselines fall back to
  // sequential removals, the Forgiving Graph takes its native batch path.
  Rng rng(43);
  Graph g0 = make_erdos_renyi(80, 6.0 / 80, rng);
  auto healer = make_healer("forgiving", g0);
  auto adversary = make_adversary("batch:5");
  RunConfig cfg;
  cfg.max_steps = 10;
  cfg.sample_every = 5;
  RunResult r = run_experiment(*healer, *adversary, cfg, rng);
  EXPECT_EQ(r.deletions % 5, 0);
  EXPECT_GE(r.deletions, 25);
  EXPECT_LE(r.worst_degree_ratio, 4.0);
  EXPECT_EQ(r.broken_pairs_total, 0);
  EXPECT_EQ(r.final.components, 1);

  auto baseline = make_healer("binary-tree", g0);
  Rng rng2(43);
  auto adversary2 = make_adversary("batch:5");
  RunResult rb = run_experiment(*baseline, *adversary2, cfg, rng2);
  EXPECT_GE(rb.deletions, 25);
}

TEST(BatchDelete, TraceRoundTripWithBatches) {
  Rng rng(47);
  Graph g0 = make_erdos_renyi(50, 6.0 / 50, rng);
  ForgivingGraphHealer recorded(g0);
  BatchDeleteAdversary adversary(3);
  Trace t = record_run(recorded, adversary, 6, rng);
  ASSERT_GE(t.size(), 1u);

  std::stringstream ss;
  t.save(ss);
  Trace loaded = Trace::load(ss);
  ASSERT_EQ(loaded.size(), t.size());

  ForgivingGraphHealer replayed(g0);
  loaded.replay(replayed);
  EXPECT_TRUE(recorded.healed().same_topology(replayed.healed()));
  replayed.engine().validate();
}

TEST(BatchDelete, RejectsDuplicateVictims) {
  ForgivingGraph fg(make_cycle(8));
  std::vector<NodeId> victims{3, 3};
  EXPECT_DEATH(fg.delete_batch(victims), "duplicate victim");
}

TEST(BatchDelete, RejectsDeadVictims) {
  ForgivingGraph fg(make_cycle(8));
  fg.remove(3);
  std::vector<NodeId> victims{2, 3};
  EXPECT_DEATH(fg.delete_batch(victims), "dead or unknown");
}

}  // namespace
}  // namespace fg
