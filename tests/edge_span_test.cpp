#include <gtest/gtest.h>

#include "graph/generators.h"
#include "harness/metrics.h"
#include "heal/baselines.h"

namespace fg {
namespace {

TEST(EdgeSpan, NoAddedEdgesMeansEmptyStats) {
  Graph g = make_cycle(6);
  auto s = edge_span_stats(g, g);
  EXPECT_EQ(s.added_edges, 0);
  EXPECT_EQ(s.max_span, 0);
  EXPECT_DOUBLE_EQ(s.avg_span, 0.0);
}

TEST(EdgeSpan, SingleDeletionSpansTwo) {
  // Healing the middle of a path adds one edge between nodes at G'-distance
  // 2 (through the dead node).
  ForgivingGraphHealer h(make_path(3));
  h.remove(1);
  auto s = edge_span_stats(h.healed(), h.gprime());
  EXPECT_EQ(s.added_edges, 1);
  EXPECT_EQ(s.max_span, 2);
  EXPECT_EQ(s.span_le_2, 1);
}

TEST(EdgeSpan, StarHubDeletionAllSpanTwo) {
  // Every RT edge connects two ex-leaves of the hub: G'-distance exactly 2.
  ForgivingGraphHealer h(make_star(17));
  h.remove(0);
  auto s = edge_span_stats(h.healed(), h.gprime());
  EXPECT_GT(s.added_edges, 0);
  EXPECT_EQ(s.max_span, 2);
  EXPECT_EQ(s.span_le_2, s.added_edges);
  EXPECT_DOUBLE_EQ(s.avg_span, 2.0);
}

TEST(EdgeSpan, GrowsWhenDeadRegionsGrow) {
  // Deleting a path segment forces edges spanning the whole dead region.
  ForgivingGraphHealer h(make_path(10));
  for (NodeId v = 3; v <= 6; ++v) h.remove(v);
  auto s = edge_span_stats(h.healed(), h.gprime());
  EXPECT_GE(s.max_span, 5);  // 2..7 are bridged through 4 dead nodes
}

TEST(EdgeSpan, CountsEachUndirectedEdgeOnce) {
  ForgivingGraphHealer h(make_star(9));
  h.remove(0);
  auto s = edge_span_stats(h.healed(), h.gprime());
  // Star(8 leaves) RT image: a perfect haft collapses to <= 2L-2 distinct
  // processor edges; all are added edges, each counted once.
  EXPECT_EQ(s.added_edges, h.healed().edge_count());
}

}  // namespace
}  // namespace fg
