// Property tests of the ComputeHaft merge plan (Algorithm A.9) — the piece
// of logic both engines share, whose determinism is what makes the
// distributed protocol reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <map>
#include <numeric>

#include "haft/haft.h"
#include "util/rng.h"

namespace fg::haft {
namespace {

// Replay a plan and return, for each created node, (leaf_count, height).
struct Replay {
  std::vector<int64_t> leaves;
  std::vector<int> heights;
};

Replay replay(const std::vector<PieceInfo>& pieces, const std::vector<MergeStep>& plan) {
  Replay r;
  for (const auto& p : pieces) {
    r.leaves.push_back(p.leaf_count);
    r.heights.push_back(ceil_log2(p.leaf_count));
  }
  for (const auto& s : plan) {
    r.leaves.push_back(r.leaves[static_cast<size_t>(s.left)] +
                       r.leaves[static_cast<size_t>(s.right)]);
    r.heights.push_back(1 + std::max(r.heights[static_cast<size_t>(s.left)],
                                     r.heights[static_cast<size_t>(s.right)]));
  }
  return r;
}

class MergePlanSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergePlanSeeds, ResultIsHaftShapedAndComplete) {
  Rng rng(GetParam());
  int k = static_cast<int>(rng.next_int(2, 60));
  std::vector<PieceInfo> pieces;
  int64_t total = 0;
  for (int i = 0; i < k; ++i) {
    int64_t size = int64_t{1} << rng.next_int(0, 6);
    pieces.push_back({size, rng.next_u64()});
    total += size;
  }
  auto plan = merge_plan(pieces);
  ASSERT_EQ(plan.size(), static_cast<size_t>(k - 1));

  // Every step result index is sequential; every node used at most once as
  // a child; the final tree holds all leaves at Lemma-1 depth.
  std::vector<int> used(pieces.size() + plan.size(), 0);
  int next = k;
  for (const auto& s : plan) {
    EXPECT_EQ(s.result, next++);
    EXPECT_LT(s.left, s.result);
    EXPECT_LT(s.right, s.result);
    EXPECT_EQ(used[static_cast<size_t>(s.left)]++, 0);
    EXPECT_EQ(used[static_cast<size_t>(s.right)]++, 0);
  }
  auto r = replay(pieces, plan);
  EXPECT_EQ(r.leaves.back(), total);
  EXPECT_EQ(r.heights.back(), ceil_log2(total));
}

TEST_P(MergePlanSeeds, InputOrderIrrelevant) {
  // The plan is canonical: permuting the input pieces yields the same
  // multiset of (left_leaves, right_leaves) joins and the same final shape.
  Rng rng(GetParam() ^ 0x5eedf00d);
  int k = static_cast<int>(rng.next_int(2, 30));
  std::vector<PieceInfo> pieces;
  for (int i = 0; i < k; ++i)
    pieces.push_back({int64_t{1} << rng.next_int(0, 5), rng.next_u64()});

  auto canonical_joins = [&](const std::vector<PieceInfo>& ps) {
    auto plan = merge_plan(ps);
    auto r = replay(ps, plan);
    std::multiset<std::pair<int64_t, int64_t>> joins;
    for (const auto& s : plan)
      joins.insert({r.leaves[static_cast<size_t>(s.left)],
                    r.leaves[static_cast<size_t>(s.right)]});
    return joins;
  };

  auto base = canonical_joins(pieces);
  for (int trial = 0; trial < 4; ++trial) {
    auto shuffled = pieces;
    rng.shuffle(shuffled);
    EXPECT_EQ(canonical_joins(shuffled), base);
  }
}

TEST_P(MergePlanSeeds, Phase2ChainsBiggerOnLeft) {
  // In every join, the left subtree is at least as big as the right —
  // that is the haft property at the new root, and also what routes the
  // helper to the left representative.
  Rng rng(GetParam() ^ 0xabc);
  int k = static_cast<int>(rng.next_int(2, 40));
  std::vector<PieceInfo> pieces;
  for (int i = 0; i < k; ++i)
    pieces.push_back({int64_t{1} << rng.next_int(0, 7), rng.next_u64()});
  auto plan = merge_plan(pieces);
  auto r = replay(pieces, plan);
  for (const auto& s : plan)
    EXPECT_GE(r.leaves[static_cast<size_t>(s.left)],
              r.leaves[static_cast<size_t>(s.right)]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergePlanSeeds, ::testing::Range(uint64_t{0}, uint64_t{20}));

// The textbook formulation of Algorithm A.9: one sorted list, pair the two
// smallest equal-sized trees, erase them, re-insert the carry, repeat. The
// shipped planner is a bucketed k-way rewrite of this exact recurrence (the
// sorted-list version is O(k^2) when all pieces have equal size — the star
// hub); this reference keeps them pinned step-for-step.
std::vector<MergeStep> reference_plan(std::vector<PieceInfo> pieces, bool chain) {
  struct Item {
    int64_t size;
    uint64_t key;
    int idx;
  };
  auto less = [](const Item& a, const Item& b) {
    if (a.size != b.size) return a.size < b.size;
    if (a.key != b.key) return a.key < b.key;
    return a.idx < b.idx;
  };
  const int k = static_cast<int>(pieces.size());
  std::vector<MergeStep> plan;
  if (k <= 1) return plan;
  std::vector<Item> items;
  for (int i = 0; i < k; ++i) items.push_back({pieces[i].leaf_count, pieces[i].key, i});
  std::sort(items.begin(), items.end(), less);
  int next_idx = k;
  size_t i = 0;
  while (i + 1 < items.size()) {
    if (items[i].size != items[i + 1].size) {
      ++i;
      continue;
    }
    MergeStep step{items[i].idx, items[i + 1].idx, next_idx++};
    plan.push_back(step);
    Item merged{items[i].size * 2, std::min(items[i].key, items[i + 1].key), step.result};
    items.erase(items.begin() + static_cast<long>(i), items.begin() + static_cast<long>(i) + 2);
    items.insert(std::lower_bound(items.begin(), items.end(), merged, less), merged);
  }
  if (chain) {
    for (size_t j = 0; j + 1 < items.size(); ++j) {
      MergeStep step{items[j + 1].idx, items[j].idx, next_idx++};
      plan.push_back(step);
      items[j + 1] = {items[j + 1].size + items[j].size,
                      std::min(items[j].key, items[j + 1].key), step.result};
    }
  }
  return plan;
}

bool same_steps(const std::vector<MergeStep>& a, const std::vector<MergeStep>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i)
    if (a[i].left != b[i].left || a[i].right != b[i].right || a[i].result != b[i].result)
      return false;
  return true;
}

TEST(MergePlan, MatchesReferenceImplementation) {
  // Not just the same shape — the same steps in the same order, because the
  // step order is what fixes helper/representative assignment in both
  // engines (and therefore the healed topology).
  Rng rng(0xfeedface);
  for (int trial = 0; trial < 400; ++trial) {
    int k = static_cast<int>(rng.next_int(0, 40));
    std::vector<PieceInfo> pieces;
    for (int i = 0; i < k; ++i)
      pieces.push_back({int64_t{1} << rng.next_int(0, 6), rng.next_u64() % 64});
    EXPECT_TRUE(same_steps(merge_plan(pieces), reference_plan(pieces, true)))
        << "merge_plan diverged from reference at trial " << trial;
    EXPECT_TRUE(same_steps(carry_plan(pieces), reference_plan(pieces, false)))
        << "carry_plan diverged from reference at trial " << trial;
  }
  // The adversarial case for the bucketing: thousands of equal-size pieces
  // (every carry cascades through every class).
  std::vector<PieceInfo> star;
  for (int i = 0; i < 3000; ++i) star.push_back({1, static_cast<uint64_t>(i * 7 % 997)});
  EXPECT_TRUE(same_steps(merge_plan(star), reference_plan(star, true)));
}

TEST(MergePlan, AllSingletonsGiveLeftCompleteJoinSizes) {
  // 2^k singletons: the plan is a perfect elimination tournament.
  std::vector<PieceInfo> pieces;
  for (int i = 0; i < 16; ++i) pieces.push_back({1, static_cast<uint64_t>(i)});
  auto plan = merge_plan(pieces);
  auto r = replay(pieces, plan);
  std::map<int64_t, int> size_counts;
  for (const auto& s : plan) size_counts[r.leaves[static_cast<size_t>(s.result)]]++;
  EXPECT_EQ(size_counts[2], 8);
  EXPECT_EQ(size_counts[4], 4);
  EXPECT_EQ(size_counts[8], 2);
  EXPECT_EQ(size_counts[16], 1);
}

}  // namespace
}  // namespace fg::haft
