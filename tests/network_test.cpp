#include "net/network.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fg::net {
namespace {

TEST(Network, DeliversMessage) {
  Network net;
  std::vector<std::pair<NodeId, std::string>> got;
  net.set_handler([&](NodeId to, NodeId from, const std::any& p) {
    (void)from;
    got.push_back({to, std::any_cast<std::string>(p)});
  });
  net.send(1, 2, std::string("hi"), 1);
  int rounds = net.run_to_quiescence();
  EXPECT_EQ(rounds, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 2);
  EXPECT_EQ(got[0].second, "hi");
}

TEST(Network, UnitLatencyRounds) {
  // A chain of k forwards takes k rounds.
  Network net;
  net.set_handler([&](NodeId to, NodeId, const std::any& p) {
    int hops = std::any_cast<int>(p);
    if (hops > 0) net.send(to, to + 1, hops - 1, 1);
  });
  net.send(0, 1, 4, 1);
  EXPECT_EQ(net.run_to_quiescence(), 5);
  EXPECT_EQ(net.stats().messages, 5);
}

TEST(Network, ParallelMessagesShareARound) {
  Network net;
  int delivered = 0;
  net.set_handler([&](NodeId, NodeId, const std::any&) { ++delivered; });
  for (int i = 0; i < 10; ++i) net.send(0, i, i, 2);
  EXPECT_EQ(net.run_to_quiescence(), 1);
  EXPECT_EQ(delivered, 10);
  EXPECT_EQ(net.stats().messages, 10);
  EXPECT_EQ(net.stats().words, 20);
}

TEST(Network, StatsTrackMaxMessageAndPerNode) {
  Network net;
  net.set_handler([](NodeId, NodeId, const std::any&) {});
  net.send(7, 1, 0, 3);
  net.send(7, 2, 0, 11);
  net.send(8, 3, 0, 2);
  net.run_to_quiescence();
  EXPECT_EQ(net.stats().max_message_words, 11);
  EXPECT_EQ(net.stats().max_node_sent(), 2);  // node 7 sent twice
  EXPECT_EQ(net.stats().sent_by.at(8), 1);
}

TEST(Network, PerNodeRoundWordsTracked) {
  // Node 0 sends 3+4 words in the setup round, then node 1 sends 10 in the
  // next; metric = max over (node, round).
  Network net;
  net.set_handler([&](NodeId to, NodeId, const std::any&) {
    if (to == 1) net.send(1, 2, 0, 10);
  });
  net.send(0, 1, 0, 3);
  net.send(0, 3, 0, 4);  // setup "round": node 0 sent 7 words total
  net.run_to_quiescence();
  EXPECT_EQ(net.stats().max_node_round_words, 10);

  net.stats().reset();
  net.send(0, 2, 0, 6);
  net.send(0, 2, 0, 7);
  net.run_to_quiescence();
  EXPECT_EQ(net.stats().max_node_round_words, 13);
}

TEST(Network, ResetClearsCounters) {
  Network net;
  net.set_handler([](NodeId, NodeId, const std::any&) {});
  net.send(0, 1, 0, 5);
  net.run_to_quiescence();
  net.stats().reset();
  EXPECT_EQ(net.stats().messages, 0);
  EXPECT_EQ(net.stats().words, 0);
  EXPECT_EQ(net.stats().rounds, 0);
  EXPECT_EQ(net.stats().max_node_sent(), 0);
}

TEST(Network, IdleWhenEmpty) {
  Network net;
  net.set_handler([](NodeId, NodeId, const std::any&) {});
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.run_to_quiescence(), 0);
}

TEST(NetworkDeathTest, RunawayProtocolAborts) {
  Network net;
  net.set_handler([&](NodeId to, NodeId, const std::any&) { net.send(to, to, 0, 1); });
  net.send(0, 0, 0, 1);
  EXPECT_DEATH(net.run_to_quiescence(100), "quiesce");
}

}  // namespace
}  // namespace fg::net
