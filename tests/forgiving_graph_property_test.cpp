// Property tests of the Forgiving Graph invariants under randomized
// adversarial schedules (Theorem 1 plus the internal invariants of Lemma 3),
// parameterized over seed graphs and churn mixes.
#include <gtest/gtest.h>

#include <cmath>

#include "fg/forgiving_graph.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "haft/haft.h"
#include "util/rng.h"

namespace fg {
namespace {

struct ChurnCase {
  const char* graph;
  int n;
  double p_delete;
  int steps;
  uint64_t seed;
};

Graph build_graph(const std::string& kind, int n, Rng& rng) {
  if (kind == "star") return make_star(n);
  if (kind == "path") return make_path(n);
  if (kind == "cycle") return make_cycle(n);
  if (kind == "er") return make_erdos_renyi(n, 6.0 / n, rng);
  if (kind == "ba") return make_barabasi_albert(n, 2, rng);
  if (kind == "tree") return make_random_tree(n, rng);
  ADD_FAILURE() << "unknown graph kind " << kind;
  return Graph(1);
}

class ChurnProperty : public ::testing::TestWithParam<ChurnCase> {};

TEST_P(ChurnProperty, InvariantsHoldThroughout) {
  const ChurnCase& c = GetParam();
  Rng rng(c.seed);
  Graph g0 = build_graph(c.graph, c.n, rng);
  ForgivingGraph fg(g0);

  for (int step = 0; step < c.steps; ++step) {
    bool del = fg.healed().alive_count() > 2 && rng.next_bool(c.p_delete);
    if (del) {
      auto alive = fg.healed().alive_nodes();
      fg.remove(rng.pick(alive));
    } else {
      auto alive = fg.healed().alive_nodes();
      rng.shuffle(alive);
      int want = static_cast<int>(rng.next_int(1, 3));
      alive.resize(static_cast<size_t>(std::min<int>(want, static_cast<int>(alive.size()))));
      fg.insert(alive);
    }

    // Full structural validation every few steps (it is expensive).
    if (step % 7 == 0) fg.validate();

    // Theorem 1.1 (see docs/EXPERIMENTS.md on the constant): per-slot accounting
    // bound of 4, observed bound of 3 tracked by the benches.
    ASSERT_LE(fg.max_degree_ratio(), 4.0) << "step " << step;

    // Connectivity: alive nodes connected in G' stay connected in G.
    ASSERT_TRUE(is_connected(fg.healed())) << "step " << step;
  }
  fg.validate();

  // Theorem 1.2 at the end of the run, exhaustively.
  int n_total = fg.gprime().node_capacity();
  double bound = std::max(1, haft::ceil_log2(n_total));
  auto alive = fg.healed().alive_nodes();
  for (size_t i = 0; i < alive.size(); i += 3) {  // sample sources
    auto dg = bfs_distances(fg.healed(), alive[i]);
    auto dp = bfs_distances(fg.gprime(), alive[i]);
    for (NodeId t : alive) {
      if (t == alive[i] || dp[t] <= 0) continue;
      ASSERT_GT(dg[t], 0) << "healed graph disconnected pair";
      ASSERT_LE(dg[t], bound * dp[t])
          << alive[i] << "->" << t << " dist " << dg[t] << " vs " << dp[t];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, ChurnProperty,
    ::testing::Values(ChurnCase{"er", 40, 1.0, 30, 1}, ChurnCase{"er", 40, 0.7, 60, 2},
                      ChurnCase{"er", 60, 0.5, 80, 3}, ChurnCase{"star", 33, 0.8, 25, 4},
                      ChurnCase{"path", 40, 0.6, 50, 5}, ChurnCase{"cycle", 36, 0.9, 30, 6},
                      ChurnCase{"ba", 50, 0.6, 60, 7}, ChurnCase{"tree", 45, 0.75, 45, 8},
                      ChurnCase{"er", 30, 0.3, 90, 9}, ChurnCase{"tree", 25, 1.0, 22, 10}),
    [](const ::testing::TestParamInfo<ChurnCase>& info) {
      const auto& c = info.param;
      return std::string(c.graph) + "_n" + std::to_string(c.n) + "_s" +
             std::to_string(c.seed);
    });

TEST(ForgivingGraphProperty, TotalHelpersNeverExceedDeadEdgeSlots) {
  // Lemma 3.1: at most one helper per (alive endpoint, dead endpoint) edge.
  Rng rng(99);
  Graph g0 = make_erdos_renyi(50, 0.1, rng);
  ForgivingGraph fg(g0);
  for (int i = 0; i < 35; ++i) {
    auto alive = fg.healed().alive_nodes();
    if (alive.size() <= 2) break;
    fg.remove(rng.pick(alive));
    int64_t dead_slots = 0;
    for (NodeId u : fg.healed().alive_nodes())
      for (NodeId w : fg.gprime().neighbors(u))
        if (!fg.healed().is_alive(w)) ++dead_slots;
    int64_t helpers = 0;
    for (NodeId u : fg.healed().alive_nodes()) helpers += fg.helper_count(u);
    EXPECT_LE(helpers, dead_slots);
  }
}

TEST(ForgivingGraphProperty, DeterministicAcrossRuns) {
  for (int trial = 0; trial < 2; ++trial) {
    static Graph snapshot;
    Rng rng(1234);
    Graph g0 = make_erdos_renyi(40, 0.12, rng);
    ForgivingGraph fg(g0);
    for (int i = 0; i < 25; ++i) {
      auto alive = fg.healed().alive_nodes();
      fg.remove(rng.pick(alive));
    }
    if (trial == 0)
      snapshot = fg.healed();
    else
      EXPECT_TRUE(snapshot.same_topology(fg.healed()));
  }
}

TEST(ForgivingGraphProperty, ConnectivityUnderTotalChurnOfOriginalNodes) {
  // Delete every original node; the inserted nodes must remain connected.
  Rng rng(55);
  Graph g0 = make_cycle(20);
  ForgivingGraph fg(g0);
  // Insert 20 new nodes, each wired to 2 random alive nodes.
  for (int i = 0; i < 20; ++i) {
    auto alive = fg.healed().alive_nodes();
    rng.shuffle(alive);
    alive.resize(2);
    fg.insert(alive);
  }
  for (NodeId v = 0; v < 20; ++v) {
    fg.remove(v);
    ASSERT_TRUE(is_connected(fg.healed()));
  }
  fg.validate();
  EXPECT_EQ(fg.healed().alive_count(), 20);
}

}  // namespace
}  // namespace fg
