// The durable-snapshot battery (src/snap + fg::SnapshotWriter +
// core::StructuralCore binary restore; docs/SNAPSHOTS.md).
//
// Four contracts are pinned here:
//   1. Round-trip: a base image plus the per-wave delta tail restores a core
//      whose text checkpoint is byte-identical to the live engine's — after
//      EVERY wave, not just the last (the O(changes) replay path is exact).
//   2. C4 extended to snapshot bytes: base bytes and every delta frame are
//      a pure function of the op stream — identical at any break x commit
//      worker count and either RegionSplit mode.
//   3. Crash consistency: any truncation or byte flip in the delta tail is
//      detected (CRC framing), restore recovers to the last consistent
//      wave, and the restored core passes the full I1-I5 audit; a resumed
//      service replaying the op stream from the restore cursor lands on the
//      uninterrupted run's checkpoint byte for byte.
//   4. Typed loader errors: try_load / from_base_image / apply_wave_delta
//      reject malformed input with an error message, never an abort — only
//      the trusted-path load() wrapper keeps the FG_CHECK death.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <vector>

#include "fg/forgiving_graph.h"
#include "fg/healer_service.h"
#include "fg/snapshot_writer.h"
#include "fg/stabilizer.h"
#include "graph/generators.h"
#include "snap/snapshot.h"
#include "util/rng.h"

namespace fg {
namespace {

std::string checkpoint(const core::StructuralCore& core) {
  std::stringstream ss;
  core.save(ss);
  return ss.str();
}

std::string checkpoint(const ForgivingGraph& fg) { return checkpoint(fg.core()); }

/// Seeded mixed churn stream over a pool mirror (the healer-service test's
/// scheme): valid by construction, fully determined by (n, ops, seed).
std::vector<ChurnOp> make_stream(int n, int ops, uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> pool(static_cast<size_t>(n));
  std::iota(pool.begin(), pool.end(), NodeId{0});
  NodeId next_id = static_cast<NodeId>(n);

  std::vector<ChurnOp> stream;
  stream.reserve(static_cast<size_t>(ops));
  for (int i = 0; i < ops; ++i) {
    if (pool.size() > 16 && rng.next_bool(0.5)) {
      size_t j = static_cast<size_t>(rng.next_below(pool.size()));
      NodeId victim = pool[j];
      pool[j] = pool.back();
      pool.pop_back();
      stream.push_back(ChurnOp::Delete(victim));
    } else {
      NodeId a = rng.pick(pool);
      NodeId b = a;
      while (b == a) b = rng.pick(pool);
      stream.push_back(ChurnOp::Insert({a, b}));
      pool.push_back(next_id++);
    }
  }
  return stream;
}

/// One engine-level capture: drive a ForgivingGraph through the op stream
/// in serial-service fashion (inserts in order, deletes batched into waves
/// of `wave_size`) with a SnapshotRecorder attached, keeping the initial
/// base image, every delta (record + encoded frame), and the live text
/// checkpoint at each wave commit.
struct Capture {
  snap::BaseImage base;                       // state before any op
  std::vector<uint8_t> base_bytes;
  std::vector<snap::WaveDelta> deltas;
  std::vector<uint8_t> frame_bytes;           // concatenated delta frames
  std::vector<std::string> wave_checkpoints;  // live state at each commit
  std::string final_checkpoint;
  uint64_t final_epoch = 0;
};

Capture run_engine(const Graph& g0, const std::vector<ChurnOp>& ops,
                   int wave_size, int workers, core::RegionSplit split) {
  ForgivingGraph fg(g0);
  fg.set_shard_workers(workers);
  fg.set_commit_workers(workers);
  fg.set_break_workers(workers);
  fg.set_region_split(split);

  Capture cap;
  fg.core().to_base_image(&cap.base);
  cap.base.wave = 0;
  cap.base.cursor = 0;
  cap.base_bytes = snap::encode_base(cap.base);

  SnapshotRecorder rec;
  rec.begin(fg.core(), 0, 0);
  rec.set_sink([&](const snap::WaveDelta& d) {
    cap.deltas.push_back(d);
    snap::append_delta(&cap.frame_bytes, d);
  });
  fg.core().set_delta_recorder(&rec);

  std::vector<NodeId> forming;
  uint64_t cursor = 0;
  for (const ChurnOp& op : ops) {
    ++cursor;
    if (op.kind == ChurnOp::Kind::kInsert) {
      fg.insert(op.neighbors);
      continue;
    }
    if (!fg.is_alive(op.victim) ||
        std::find(forming.begin(), forming.end(), op.victim) != forming.end())
      continue;
    forming.push_back(op.victim);
    if (static_cast<int>(forming.size()) >= wave_size) {
      rec.set_cursor(cursor);
      fg.delete_batch(forming);
      forming.clear();
      cap.wave_checkpoints.push_back(checkpoint(fg));
    }
  }
  EXPECT_FALSE(rec.needs_rebase());
  fg.core().set_delta_recorder(nullptr);
  cap.final_checkpoint = checkpoint(fg);
  cap.final_epoch = fg.mutation_epoch();
  return cap;
}

// ---------------------------------------------------------------------------
// Format + file helpers.

TEST(SnapshotFormat, FileHelpersRoundTrip) {
  const std::string path = testing::TempDir() + "/snap_file_helpers.bin";
  std::vector<uint8_t> bytes = {1, 2, 3, 250};
  std::string error;
  ASSERT_TRUE(snap::write_file_atomic(path, bytes, &error)) << error;

  std::vector<uint8_t> back;
  ASSERT_TRUE(snap::read_file(path, &back, &error)) << error;
  EXPECT_EQ(back, bytes);

  std::vector<uint8_t> tail = {9, 8};
  ASSERT_TRUE(snap::append_file(path, tail, &error)) << error;
  ASSERT_TRUE(snap::read_file(path, &back, &error)) << error;
  EXPECT_EQ(back.size(), 6u);
  EXPECT_EQ(back[4], 9);

  // Atomic replace: the old content is gone wholesale, never blended.
  ASSERT_TRUE(snap::write_file_atomic(path, tail, &error)) << error;
  ASSERT_TRUE(snap::read_file(path, &back, &error)) << error;
  EXPECT_EQ(back, tail);

  EXPECT_FALSE(snap::read_file(path + ".does-not-exist", &back, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(SnapshotFormat, BaseImageRoundTripsThroughBytes) {
  Rng rng(11);
  Graph g0 = make_sparse_random(300, 4.0, rng);
  Capture cap =
      run_engine(g0, make_stream(300, 800, 0xABC), 8, 1, core::RegionSplit::kPerRegion);

  // Re-capture the final state as a base image and push it through bytes.
  std::istringstream is(cap.final_checkpoint);
  core::StructuralCore live = core::StructuralCore::load(is);
  snap::BaseImage image;
  live.to_base_image(&image);
  image.wave = 7;
  image.cursor = 800;

  snap::BaseImage back;
  std::string error;
  ASSERT_TRUE(snap::decode_base(snap::encode_base(image), &back, &error)) << error;
  EXPECT_EQ(back.rows, image.rows);
  EXPECT_EQ(back.slots, image.slots);
  EXPECT_EQ(back.mult, image.mult);

  core::StructuralCore restored;
  ASSERT_TRUE(core::StructuralCore::from_base_image(back, &restored, &error)) << error;
  EXPECT_EQ(checkpoint(restored), cap.final_checkpoint);
  EXPECT_EQ(restored.mutation_epoch(), live.mutation_epoch());
  restored.validate();
}

TEST(SnapshotFormat, FromBaseImageRejectsTamperedDerivedState) {
  Rng rng(12);
  Graph g0 = make_sparse_random(120, 4.0, rng);
  ForgivingGraph fg(g0);
  std::vector<ChurnOp> ops = make_stream(120, 300, 0xD1CE);
  std::vector<NodeId> wave;
  for (const ChurnOp& op : ops) {
    if (op.kind == ChurnOp::Kind::kInsert) {
      fg.insert(op.neighbors);
    } else if (fg.is_alive(op.victim) &&
               std::find(wave.begin(), wave.end(), op.victim) == wave.end()) {
      wave.push_back(op.victim);
      if (wave.size() == 8) {
        fg.delete_batch(wave);
        wave.clear();
      }
    }
  }
  snap::BaseImage good;
  fg.core().to_base_image(&good);
  ASSERT_FALSE(good.mult.empty());
  ASSERT_FALSE(good.slots.empty());

  core::StructuralCore out;
  std::string error;

  snap::BaseImage bad = good;
  bad.mult[0].count += 1;  // multiplicity desynced from the forest
  EXPECT_FALSE(core::StructuralCore::from_base_image(bad, &out, &error));
  EXPECT_NE(error.find("MULT"), std::string::npos) << error;

  bad = good;
  bad.slots.pop_back();  // slot table no longer matches the rows
  EXPECT_FALSE(core::StructuralCore::from_base_image(bad, &out, &error));
  EXPECT_NE(error.find("SLOT"), std::string::npos) << error;

  bad = good;
  size_t alive_row = 0;
  while (alive_row < bad.rows.size() && !bad.rows[alive_row].alive) ++alive_row;
  ASSERT_LT(alive_row, bad.rows.size());
  bad.rows[alive_row].leaf_count = -3;  // structural pre-validation
  EXPECT_FALSE(core::StructuralCore::from_base_image(bad, &out, &error));

  bad = good;
  bad.gprime_edges.push_back(bad.gprime_edges.back());  // duplicate G' edge
  EXPECT_FALSE(core::StructuralCore::from_base_image(bad, &out, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// try_load: typed errors instead of the historical abort.

constexpr const char* kGoodCheckpoint =
    "FGv1\n"
    "capacity 3\n"
    "dead\n"
    "edges 2\n"
    "0 1\n"
    "1 2\n"
    "vnodes 0\n"
    "end\n";

std::string replace_once(const std::string& text, const std::string& from,
                         const std::string& to) {
  size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << "fixture lacks: " << from;
  return text.substr(0, pos) + to + text.substr(pos + from.size());
}

TEST(SnapshotTryLoad, AcceptsTheFixtureAndRealCheckpoints) {
  {
    std::istringstream is(kGoodCheckpoint);
    core::StructuralCore out;
    std::string error;
    ASSERT_TRUE(core::StructuralCore::try_load(is, &out, &error)) << error;
    EXPECT_EQ(checkpoint(out), kGoodCheckpoint);
  }
  Rng rng(21);
  Graph g0 = make_sparse_random(200, 4.0, rng);
  Capture cap =
      run_engine(g0, make_stream(200, 600, 0xF00), 8, 1, core::RegionSplit::kPerRegion);
  std::istringstream is(cap.final_checkpoint);
  core::StructuralCore out;
  std::string error;
  ASSERT_TRUE(core::StructuralCore::try_load(is, &out, &error)) << error;
  EXPECT_EQ(checkpoint(out), cap.final_checkpoint);
  out.validate();
}

TEST(SnapshotTryLoad, RejectsMalformedCheckpointsWithTypedErrors) {
  struct Case {
    const char* label;
    const char* from;
    const char* to;
    const char* diag;  ///< Substring the error must contain.
  };
  const Case cases[] = {
      {"wrong header", "FGv1\n", "FGv2\n", "FGv1"},
      {"negative capacity", "capacity 3\n", "capacity -3\n", "bad capacity"},
      {"dead id out of range", "dead\n", "dead 7\n", "dead id out of range"},
      {"duplicate dead id", "dead\n", "dead 2 2\n", "duplicate dead id"},
      {"garbage in dead line", "dead\n", "dead 2 x\n", "garbage in dead section"},
      {"negative edge count", "edges 2\n", "edges -1\n", "bad edge count"},
      {"overlong edge count", "edges 2\n", "edges 5\n", "truncated edge list"},
      {"edge endpoint out of range", "0 1\n", "0 9\n", "edge endpoint"},
      {"self-loop edge", "0 1\n", "1 1\n", "edge endpoint"},
      {"duplicate edge", "0 1\n1 2\n", "0 1\n0 1\n", "duplicate G' edge"},
      {"negative vnode count", "vnodes 0\n", "vnodes -2\n", "bad vnode count"},
      {"truncated vnode rows", "vnodes 0\n", "vnodes 2\n", "truncated vnode row"},
      {"missing end marker", "end\n", "fin\n", "missing end marker"},
      {"vnode endpoint out of range", "vnodes 0\nend\n",
       "vnodes 1\n1 1 0 9 -1 -1 -1 0 1 0\nend\n", "far endpoint out of range"},
      {"vnode owner dead", "dead\nedges 2\n0 1\n1 2\nvnodes 0\nend\n",
       "dead 2\nedges 2\n0 1\n1 2\nvnodes 1\n1 1 2 0 -1 -1 -1 0 1 0\nend\n",
       "owner is not an alive processor"},
      {"vnode link out of arena", "vnodes 0\nend\n",
       "vnodes 1\n1 1 0 1 5 -1 -1 0 1 0\nend\n", "link outside the live arena"},
      {"slot leaf double-booked", "vnodes 0\nend\n",
       "vnodes 2\n1 1 0 1 -1 -1 -1 0 1 0\n1 1 0 1 -1 -1 -1 0 1 1\nend\n",
       "slot leaf double-booked"},
      {"truncated stream", "edges 2\n0 1\n1 2\nvnodes 0\nend\n", "edges 2\n0 1\n",
       "truncated edge list"},
      {"empty stream", kGoodCheckpoint, "", "missing FGv1 header"},
  };
  for (const Case& c : cases) {
    std::istringstream is(replace_once(kGoodCheckpoint, c.from, c.to));
    core::StructuralCore out;
    std::string error;
    EXPECT_FALSE(core::StructuralCore::try_load(is, &out, &error)) << c.label;
    EXPECT_NE(error.find(c.diag), std::string::npos)
        << c.label << " misdiagnosed as: " << error;
  }
}

TEST(SnapshotTryLoadDeathTest, TrustedLoadStillDiesLoudly) {
  std::istringstream is("FGv1\ncapacity nope\n");
  EXPECT_DEATH(core::StructuralCore::load(is), "malformed checkpoint");
}

// ---------------------------------------------------------------------------
// Round-trip: base + delta replay is exact after every wave.

class SnapshotRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotRoundTrip, DeltaReplayMatchesLiveEngineAtEveryWave) {
  const int generator = GetParam();
  Rng rng(100 + static_cast<uint64_t>(generator));
  Graph g0 = generator == 0   ? make_sparse_random(250, 4.0, rng)
             : generator == 1 ? make_barabasi_albert(250, 3, rng)
                              : make_grid(16, 16);
  const int n = g0.node_capacity();
  Capture cap =
      run_engine(g0, make_stream(n, 900, 0xBEEF), 8, 2, core::RegionSplit::kPerRegion);
  ASSERT_GE(cap.deltas.size(), 5u);
  ASSERT_EQ(cap.deltas.size(), cap.wave_checkpoints.size());

  snap::BaseImage base;
  std::string error;
  ASSERT_TRUE(snap::decode_base(cap.base_bytes, &base, &error)) << error;
  core::StructuralCore shadow;
  ASSERT_TRUE(core::StructuralCore::from_base_image(base, &shadow, &error)) << error;

  for (size_t w = 0; w < cap.deltas.size(); ++w) {
    ASSERT_TRUE(shadow.apply_wave_delta(cap.deltas[w], &error))
        << "wave " << w + 1 << ": " << error;
    ASSERT_EQ(checkpoint(shadow), cap.wave_checkpoints[w])
        << "replay diverged at wave " << w + 1;
  }
  // The live engine keeps mutating past the last wave commit (trailing
  // inserts); the shadow is exact through that commit.
  EXPECT_EQ(shadow.mutation_epoch(), cap.deltas.back().epoch_after);
  shadow.validate();
  EXPECT_TRUE(audit(shadow).clean());
}

INSTANTIATE_TEST_SUITE_P(Generators, SnapshotRoundTrip, ::testing::Values(0, 1, 2));

TEST(SnapshotRoundTrip, ApplyWaveDeltaRejectsCorruptRecords) {
  Rng rng(31);
  Graph g0 = make_sparse_random(200, 4.0, rng);
  Capture cap =
      run_engine(g0, make_stream(200, 600, 0xACE), 8, 1, core::RegionSplit::kPerRegion);
  ASSERT_GE(cap.deltas.size(), 2u);

  auto fresh_shadow = [&] {
    snap::BaseImage base;
    std::string error;
    EXPECT_TRUE(snap::decode_base(cap.base_bytes, &base, &error)) << error;
    core::StructuralCore shadow;
    EXPECT_TRUE(core::StructuralCore::from_base_image(base, &shadow, &error)) << error;
    return shadow;
  };

  std::string error;
  {
    core::StructuralCore shadow = fresh_shadow();
    snap::WaveDelta bad = cap.deltas[0];
    ASSERT_FALSE(bad.victims.empty());
    bad.victims[0] = 1u << 20;  // victim out of range
    EXPECT_FALSE(shadow.apply_wave_delta(bad, &error));
  }
  {
    core::StructuralCore shadow = fresh_shadow();
    snap::WaveDelta bad = cap.deltas[0];
    ASSERT_FALSE(bad.rows.empty());
    bad.rows[0].row.left = 1 << 20;  // link outside the arena
    EXPECT_FALSE(shadow.apply_wave_delta(bad, &error));
  }
  {
    // A delta applied against the wrong state (skipped predecessor) must
    // fail loudly, not corrupt silently: wave 2's victims were alive only
    // after wave 1's state settled — or its handles don't even exist yet.
    core::StructuralCore shadow = fresh_shadow();
    EXPECT_FALSE(shadow.apply_wave_delta(cap.deltas[1], &error));
  }
}

// ---------------------------------------------------------------------------
// C4 extended to snapshot bytes.

class SnapshotC4 : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotC4, BytesAreScheduleIndependent) {
  const core::RegionSplit split =
      GetParam() == 0 ? core::RegionSplit::kPerRegion : core::RegionSplit::kGlobal;
  Rng rng(42);
  Graph g0 = make_sparse_random(300, 5.0, rng);
  std::vector<ChurnOp> ops = make_stream(300, 1200, 0xC4C4);

  Capture reference = run_engine(g0, ops, 12, 1, split);
  ASSERT_GE(reference.deltas.size(), 5u);
  for (int workers : {2, 4}) {
    Capture other = run_engine(g0, ops, 12, workers, split);
    EXPECT_EQ(reference.base_bytes, other.base_bytes);
    EXPECT_EQ(reference.frame_bytes, other.frame_bytes)
        << "delta bytes diverged at " << workers << " workers";
    EXPECT_EQ(reference.final_checkpoint, other.final_checkpoint);
  }
}

INSTANTIATE_TEST_SUITE_P(Splits, SnapshotC4, ::testing::Values(0, 1));

// ---------------------------------------------------------------------------
// Service integration: durable files, restore, resume.

struct ServiceFiles {
  std::string base;
  std::string log;
};

ServiceFiles service_paths(const std::string& tag) {
  const std::string prefix = testing::TempDir() + "/snapshot_" + tag;
  return {prefix + ".base", prefix + ".log"};
}

HealerConfig snapshot_config(const std::string& tag, int snapshot_every) {
  HealerConfig config;
  config.wave_size = 8;
  config.certify_every = 4;
  config.overlap = true;
  config.plan_workers = 2;
  config.commit_workers = 2;
  config.break_workers = 2;
  config.audit_every = 8;
  config.snapshot_every = snapshot_every;
  config.snapshot_path = testing::TempDir() + "/snapshot_" + tag;
  return config;
}

TEST(SnapshotService, ResumeMatchesUninterruptedByteForByte) {
  Rng rng(77);
  Graph g0 = make_sparse_random(300, 4.0, rng);
  std::vector<ChurnOp> ops = make_stream(300, 2000, 0x5EED);

  // The uninterrupted reference never snapshots: recording must be a pure
  // observer, invisible in everything the service does.
  HealerConfig plain = snapshot_config("unused", 0);
  plain.snapshot_path.clear();
  std::string reference;
  int64_t reference_waves = 0;
  {
    HealerService service(g0, plain);
    VectorChurnStream stream(ops);
    service.run(stream);
    reference = checkpoint(service.engine());
    reference_waves = service.stats().waves;
  }

  for (size_t cut : {ops.size() / 3, (2 * ops.size()) / 3, ops.size()}) {
    const std::string tag = "resume_" + std::to_string(cut);
    HealerConfig config = snapshot_config(tag, 4);
    ServiceFiles files = service_paths(tag);
    {
      HealerService service(g0, config);
      int64_t alerts = 0;
      service.set_alert([&alerts](int64_t, const std::string&) { ++alerts; });
      for (size_t i = 0; i < cut; ++i) service.push(ops[i]);
      if (cut == ops.size()) service.flush();
      EXPECT_EQ(alerts, 0);
      // Destroyed mid-pipeline: whatever the files hold now is the crash
      // image the restore path must stand on.
    }
    core::StructuralCore restored;
    SnapshotRestore res = restore_snapshot(files.base, files.log, &restored);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_FALSE(res.truncated);
    ASSERT_LE(res.cursor, cut);
    restored.validate();
    EXPECT_TRUE(audit(restored).clean());

    HealerService resumed(std::move(restored), res.waves, res.cursor, config);
    for (size_t i = res.cursor; i < ops.size(); ++i) resumed.push(ops[i]);
    resumed.flush();
    EXPECT_EQ(checkpoint(resumed.engine()), reference)
        << "resume from op " << res.cursor << " (cut " << cut << ") diverged";
    EXPECT_EQ(resumed.stats().waves, reference_waves);
  }
}

TEST(SnapshotService, DeltaLogShrinksRestoreCost) {
  // The point of the subsystem: between base rotations, restore replays
  // only the delta tail. With rotation every 64 waves and churn past one
  // rotation, the log holds strictly fewer waves than the run committed.
  Rng rng(78);
  Graph g0 = make_sparse_random(300, 4.0, rng);
  std::vector<ChurnOp> ops = make_stream(300, 1500, 0x1066);
  const std::string tag = "rotate";
  HealerConfig config = snapshot_config(tag, 64);
  ServiceFiles files = service_paths(tag);
  int64_t waves = 0;
  std::string final_checkpoint;
  {
    HealerService service(g0, config);
    VectorChurnStream stream(ops);
    service.run(stream);
    waves = service.stats().waves;
    final_checkpoint = checkpoint(service.engine());
  }
  ASSERT_GT(waves, 64);

  std::vector<uint8_t> log_bytes;
  std::string error;
  ASSERT_TRUE(snap::read_file(files.log, &log_bytes, &error)) << error;
  snap::LogScan scan;
  ASSERT_TRUE(snap::scan_log(log_bytes, &scan, &error)) << error;
  EXPECT_LT(static_cast<int64_t>(scan.deltas.size()), waves);

  core::StructuralCore restored;
  SnapshotRestore res = restore_snapshot(files.base, files.log, &restored);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.waves, static_cast<uint64_t>(waves));
  EXPECT_EQ(checkpoint(restored), final_checkpoint);
}

// ---------------------------------------------------------------------------
// Torn-write fuzz: every tail corruption recovers to a consistent wave.

TEST(SnapshotTornWrite, TruncationsAndFlipsRecoverToAuditCleanState) {
  Rng rng(79);
  Graph g0 = make_sparse_random(250, 4.0, rng);
  std::vector<ChurnOp> ops = make_stream(250, 1200, 0x70A0);
  const std::string tag = "torn";
  // A rotation interval the run can't reach: the whole history stays in
  // the delta log, giving the fuzz the longest possible tail to damage.
  HealerConfig config = snapshot_config(tag, 1 << 20);
  config.audit_every = 0;
  ServiceFiles files = service_paths(tag);
  {
    HealerService service(g0, config);
    VectorChurnStream stream(ops);
    service.run(stream);
  }
  std::vector<uint8_t> base_bytes, log_bytes;
  std::string error;
  ASSERT_TRUE(snap::read_file(files.base, &base_bytes, &error)) << error;
  ASSERT_TRUE(snap::read_file(files.log, &log_bytes, &error)) << error;
  ASSERT_GT(log_bytes.size(), snap::kMagicLen + 64);

  core::StructuralCore full;
  SnapshotRestore full_res = restore_snapshot(files.base, files.log, &full);
  ASSERT_TRUE(full_res.ok) << full_res.error;
  const uint64_t full_waves = full_res.waves;
  ASSERT_GT(full_waves, 10u);

  Rng fuzz(0xF0A7);
  int recovered_short = 0;
  for (int trial = 0; trial < 24; ++trial) {
    std::vector<uint8_t> bad = log_bytes;
    if (trial % 2 == 0) {
      // Torn append: cut anywhere after the header.
      size_t cut = snap::kMagicLen +
                   fuzz.next_below(log_bytes.size() - snap::kMagicLen);
      bad.resize(cut);
    } else {
      // Bit flip anywhere after the header.
      size_t at = snap::kMagicLen +
                  fuzz.next_below(log_bytes.size() - snap::kMagicLen);
      bad[at] ^= static_cast<uint8_t>(1u << fuzz.next_below(8));
    }
    const std::string bad_log = files.log + ".fuzz";
    ASSERT_TRUE(snap::write_file_atomic(bad_log, bad, &error)) << error;

    core::StructuralCore restored;
    SnapshotRestore res = restore_snapshot(files.base, bad_log, &restored);
    ASSERT_TRUE(res.ok) << "trial " << trial << ": " << res.error;
    ASSERT_LE(res.waves, full_waves);
    if (res.waves < full_waves) ++recovered_short;
    restored.validate();
    EXPECT_TRUE(audit(restored).clean()) << "trial " << trial;
    // And the recovered core keeps healing: one more wave commits clean.
    ForgivingGraph fg(std::move(restored));
    std::vector<NodeId> wave;
    for (NodeId v = 0; static_cast<int>(wave.size()) < 2; ++v)
      if (fg.is_alive(v)) wave.push_back(v);
    fg.delete_batch(wave);
    fg.validate();
  }
  // The fuzz must actually have damaged committed records, not only the
  // final frame's slack.
  EXPECT_GT(recovered_short, 12);

  // The base file is guarded by per-section CRCs: damage there is a hard
  // restore failure, never a silent half-restore.
  std::vector<uint8_t> bad_base = base_bytes;
  bad_base[bad_base.size() / 2] ^= 0x10;
  const std::string bad_base_path = files.base + ".fuzz";
  ASSERT_TRUE(snap::write_file_atomic(bad_base_path, bad_base, &error)) << error;
  core::StructuralCore restored;
  SnapshotRestore res = restore_snapshot(bad_base_path, files.log, &restored);
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.error.empty());
}

// ---------------------------------------------------------------------------
// The standalone verifier's process-level exit contract.

TEST(SnapshotTool, FgsnapExitCodesPinned) {
  Rng rng(80);
  Graph g0 = make_sparse_random(200, 4.0, rng);
  std::vector<ChurnOp> ops = make_stream(200, 800, 0xF65A);
  const std::string tag = "tool";
  HealerConfig config = snapshot_config(tag, 1 << 20);
  ServiceFiles files = service_paths(tag);
  {
    HealerService service(g0, config);
    VectorChurnStream stream(ops);
    service.run(stream);
  }

  auto fgsnap = [](const std::string& args) {
    const std::string cmd =
        std::string(FG_FGSNAP_BIN) + " " + args + " > /dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    EXPECT_NE(status, -1);
    return WEXITSTATUS(status);
  };

  EXPECT_EQ(fgsnap("--selftest"), 0);
  EXPECT_EQ(fgsnap("verify " + files.base), 0);
  EXPECT_EQ(fgsnap("verify " + files.base + " " + files.log), 0);
  EXPECT_EQ(fgsnap("info " + files.base + " " + files.log), 0);

  // Torn tail: detected, exit 1.
  std::vector<uint8_t> log_bytes;
  std::string error;
  ASSERT_TRUE(snap::read_file(files.log, &log_bytes, &error)) << error;
  std::vector<uint8_t> torn = log_bytes;
  torn.resize(torn.size() - 3);
  const std::string torn_log = files.log + ".torn";
  ASSERT_TRUE(snap::write_file_atomic(torn_log, torn, &error)) << error;
  EXPECT_EQ(fgsnap("verify " + files.base + " " + torn_log), 1);

  // Corrupt base: exit 1. Unreadable file: exit 2. Usage: exit 2.
  std::vector<uint8_t> base_bytes;
  ASSERT_TRUE(snap::read_file(files.base, &base_bytes, &error)) << error;
  base_bytes[base_bytes.size() / 3] ^= 0x20;
  const std::string bad_base = files.base + ".bad";
  ASSERT_TRUE(snap::write_file_atomic(bad_base, base_bytes, &error)) << error;
  EXPECT_EQ(fgsnap("verify " + bad_base), 1);
  EXPECT_EQ(fgsnap("verify " + files.base + ".does-not-exist"), 2);
  EXPECT_EQ(fgsnap("frobnicate " + files.base), 2);
}

}  // namespace
}  // namespace fg
