// Checkpoint/restore of the Forgiving Graph engine: a loaded instance must
// be observationally identical to the original — same topology, same G',
// same invariants, and (the strong part) the same behaviour under every
// future operation.
#include <gtest/gtest.h>

#include <sstream>

#include "fg/forgiving_graph.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace fg {
namespace {

ForgivingGraph roundtrip(const ForgivingGraph& fg) {
  std::stringstream ss;
  fg.save(ss);
  return ForgivingGraph::load(ss);
}

TEST(Serialization, FreshEngineRoundTrips) {
  ForgivingGraph fg(make_cycle(8));
  ForgivingGraph copy = roundtrip(fg);
  copy.validate();
  EXPECT_TRUE(copy.healed().same_topology(fg.healed()));
  EXPECT_TRUE(copy.gprime().same_topology(fg.gprime()));
}

TEST(Serialization, AfterDeletionsRoundTrips) {
  ForgivingGraph fg(make_star(17));
  fg.remove(0);
  fg.remove(3);
  ForgivingGraph copy = roundtrip(fg);
  copy.validate();
  EXPECT_TRUE(copy.healed().same_topology(fg.healed()));
  EXPECT_TRUE(copy.gprime().same_topology(fg.gprime()));
  for (NodeId v = 1; v <= 16; ++v) {
    if (v != 3) {
      EXPECT_EQ(copy.helper_count(v), fg.helper_count(v));
    }
  }
}

TEST(Serialization, FutureOperationsIdentical) {
  // The decisive test: after restore, the same operation sequence must give
  // bit-identical topologies (the restored forest drives the same merges).
  Rng rng(41);
  Graph g0 = make_erdos_renyi(40, 0.15, rng);
  ForgivingGraph fg(g0);
  for (int i = 0; i < 15; ++i) {
    auto alive = fg.healed().alive_nodes();
    fg.remove(rng.pick(alive));
  }
  ForgivingGraph copy = roundtrip(fg);
  copy.validate();

  Rng future(99);
  for (int i = 0; i < 12; ++i) {
    auto alive = fg.healed().alive_nodes();
    if (alive.size() <= 2) break;
    if (future.next_bool(0.3)) {
      auto nbrs = alive;
      future.shuffle(nbrs);
      nbrs.resize(2);
      NodeId a = fg.insert(nbrs);
      NodeId b = copy.insert(nbrs);
      ASSERT_EQ(a, b);
    } else {
      NodeId v = future.pick(alive);
      fg.remove(v);
      copy.remove(v);
    }
    ASSERT_TRUE(fg.healed().same_topology(copy.healed())) << "diverged at step " << i;
  }
  fg.validate();
  copy.validate();
}

TEST(Serialization, ChurnedEngineRoundTrips) {
  Rng rng(7);
  Graph g0 = make_barabasi_albert(30, 2, rng);
  ForgivingGraph fg(g0);
  for (int i = 0; i < 25; ++i) {
    auto alive = fg.healed().alive_nodes();
    if (rng.next_bool(0.6) && alive.size() > 2) {
      fg.remove(rng.pick(alive));
    } else {
      rng.shuffle(alive);
      alive.resize(std::min<size_t>(3, alive.size()));
      fg.insert(alive);
    }
  }
  ForgivingGraph copy = roundtrip(fg);
  copy.validate();
  EXPECT_TRUE(copy.healed().same_topology(fg.healed()));
}

TEST(Serialization, SaveIsDeterministic) {
  ForgivingGraph fg(make_star(9));
  fg.remove(0);
  std::stringstream a, b;
  fg.save(a);
  fg.save(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(SerializationDeathTest, MalformedHeaderAborts) {
  std::stringstream ss("NOTFG 1 2 3");
  EXPECT_DEATH(ForgivingGraph::load(ss), "malformed");
}

}  // namespace
}  // namespace fg
