#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace fg {
namespace {

TEST(Table, AlignedOutputContainsCells) {
  Table t{"name", "value"};
  t.add("alpha", 3.14159);
  t.add("b", 42);
  std::ostringstream os;
  t.print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t{"a", "b"};
  t.add(1, 2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowAccess) {
  Table t{"x"};
  t.add("v1");
  t.add("v2");
  ASSERT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.row(1)[0], "v2");
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.23456, 4), "1.2346");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(TableDeathTest, RowArityMismatchAborts) {
  Table t{"a", "b"};
  EXPECT_DEATH(t.add_row({"only-one"}), "arity");
}

}  // namespace
}  // namespace fg
