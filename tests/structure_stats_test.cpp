#include "harness/structure_stats.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "haft/haft.h"
#include "util/rng.h"

namespace fg {
namespace {

TEST(StructureStats, EmptyForestBeforeDeletions) {
  ForgivingGraph fg(make_cycle(6));
  auto s = structure_stats(fg);
  EXPECT_EQ(s.rt_count, 0);
  EXPECT_EQ(s.total_leaves, 0);
  EXPECT_EQ(s.total_helpers, 0);
  EXPECT_EQ(s.max_helpers_per_processor, 0);
}

TEST(StructureStats, SingleStarDeletion) {
  ForgivingGraph fg(make_star(9));
  fg.remove(0);
  auto s = structure_stats(fg);
  EXPECT_EQ(s.rt_count, 1);
  EXPECT_EQ(s.total_leaves, 8);
  EXPECT_EQ(s.total_helpers, 7);
  EXPECT_EQ(s.largest_rt_leaves, 8);
  EXPECT_EQ(s.max_rt_depth, 3);  // perfect haft over 8 leaves
  EXPECT_EQ(s.max_helpers_per_processor, 1);  // one slot per leaf processor
}

TEST(StructureStats, HistogramSumsToAliveProcessors) {
  Rng rng(3);
  Graph g0 = make_erdos_renyi(40, 0.15, rng);
  ForgivingGraph fg(g0);
  for (int i = 0; i < 20; ++i) {
    auto alive = fg.healed().alive_nodes();
    fg.remove(rng.pick(alive));
  }
  auto s = structure_stats(fg);
  int64_t sum = 0;
  for (int64_t c : s.helper_histogram) sum += c;
  EXPECT_EQ(sum, fg.healed().alive_count());
  EXPECT_EQ(s.total_leaves - s.rt_count, s.total_helpers);  // L-1 helpers per RT
  EXPECT_LE(s.max_rt_depth, haft::ceil_log2(std::max<int64_t>(2, s.largest_rt_leaves)));
}

TEST(StructureStats, HelperLoadBalancedOnStarCascade) {
  // Lemma 3: no processor ever simulates more helpers than its dead edge
  // slots; on a star every leaf has one slot, so the load is perfectly flat.
  ForgivingGraph fg(make_star(65));
  fg.remove(0);
  for (NodeId v = 1; v <= 30; ++v) fg.remove(v);
  auto s = structure_stats(fg);
  EXPECT_EQ(s.max_helpers_per_processor, 1);
  EXPECT_EQ(s.rt_count, 1);
}

TEST(StructureStats, RTCountTracksIndependentDeletions) {
  // Deleting nodes in separate regions of a path creates separate RTs.
  ForgivingGraph fg(make_path(12));
  fg.remove(2);
  fg.remove(8);
  auto s = structure_stats(fg);
  EXPECT_EQ(s.rt_count, 2);
  fg.remove(5);  // between them, but not adjacent: third RT
  s = structure_stats(fg);
  EXPECT_EQ(s.rt_count, 3);
  fg.remove(3);  // adjacent to RT(2) and ... merges RT(2) with RT(5)'s side?
  s = structure_stats(fg);
  EXPECT_LE(s.rt_count, 3);
}

}  // namespace
}  // namespace fg
