// Scale regressions for the repair hot path. Piece collection runs an
// explicit iterative worklist over the dirty region of a broken RT — no
// call stack depth, and no full-RT sweep — so repairs must survive (and
// stay fast on) structures far beyond what the property suites build:
// a 10^5-node path under a long deletion schedule, and Reconstruction
// Trees with tens of thousands of leaves.
#include <gtest/gtest.h>

#include <vector>

#include "fg/forgiving_graph.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "haft/haft.h"
#include "harness/structure_stats.h"

namespace fg {
namespace {

TEST(RepairScale, HundredThousandNodePath) {
  // A 100001-node path; delete every interior odd node (50000 repairs),
  // then a batch wave over surviving even nodes. The schedule exercises
  // the iterative collector on every repair without ever overflowing any
  // stack, and the healed network must stay one component throughout.
  constexpr int kN = 100001;
  ForgivingGraph fg(make_path(kN));
  for (NodeId v = 1; v < kN - 1; v += 2) fg.remove(v);
  EXPECT_EQ(fg.healed().alive_count(), kN - (kN - 1) / 2);

  // A batched wave of every fourth survivor: ~12.5k pairwise-disjoint
  // victims, each bridging its two 2-leaf RTs — the region partitioner and
  // planner at full width (one region and one new RT per victim) in a
  // single repair round.
  std::vector<NodeId> wave;
  for (NodeId v = 2; v < kN - 2; v += 8) wave.push_back(v);
  fg.delete_batch(wave);
  EXPECT_TRUE(is_connected(fg.healed()));
  EXPECT_EQ(fg.last_repair().regions, static_cast<int>(wave.size()));
  EXPECT_GE(fg.last_repair().final_rt_leaves, static_cast<int64_t>(wave.size()));

  // Spot-check the degree bound on the survivors (full validate() is
  // quadratic-ish at this scale; the bound is the paper's guarantee).
  EXPECT_LE(fg.max_degree_ratio(), 4.0);
}

TEST(RepairScale, BigRtBreakup) {
  // Star with 2^16 spokes: deleting the hub builds one RT with 65535
  // leaves; deleting spoke owners afterwards breaks that giant RT. With the
  // dirty-region worklist each breakup touches O(d log^2 n) nodes, not the
  // whole 130k-node RT.
  constexpr int kN = (1 << 16) + 1;
  ForgivingGraph fg(make_star(kN));
  fg.remove(0);
  EXPECT_EQ(fg.last_repair().final_rt_leaves, kN - 1);
  int depth_bound = haft::ceil_log2(kN - 1);
  for (NodeId v = 1; v <= 24; ++v) {
    fg.remove(v);
    ASSERT_TRUE(fg.is_alive(kN - 1));
    // Every repair re-merges into a haft, so the RT leaf count only shrinks
    // by the dead leaf while depth stays within the Lemma 1 bound.
    EXPECT_EQ(fg.last_repair().final_rt_leaves, kN - 1 - v);
    EXPECT_LE(fg.last_repair().affected_rts, 1);
    EXPECT_LE(structure_stats(fg).max_rt_depth, depth_bound);
  }
  EXPECT_TRUE(is_connected(fg.healed()));
  EXPECT_LE(fg.max_degree_ratio(), 4.0);
}

TEST(RepairScale, BigBatchOnBigStar) {
  // One batched wave of 512 spokes against the 2^14-leaf hub RT: a single
  // merged plan heals all of them in one repair round.
  constexpr int kN = (1 << 14) + 1;
  ForgivingGraph fg(make_star(kN));
  fg.remove(0);
  std::vector<NodeId> wave;
  for (NodeId v = 1; v <= 512; ++v) wave.push_back(v);
  fg.delete_batch(wave);
  EXPECT_TRUE(is_connected(fg.healed()));
  EXPECT_EQ(fg.last_repair().final_rt_leaves, kN - 1 - 512);
  EXPECT_LE(fg.max_degree_ratio(), 4.0);
  fg.validate();  // full I1-I5 at 16k leaves is still affordable
}

}  // namespace
}  // namespace fg
