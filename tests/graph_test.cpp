#include "graph/graph.h"

#include <gtest/gtest.h>

namespace fg {
namespace {

TEST(Graph, EmptyConstruction) {
  Graph g;
  EXPECT_EQ(g.node_capacity(), 0);
  EXPECT_EQ(g.alive_count(), 0);
  EXPECT_EQ(g.edge_count(), 0);
}

TEST(Graph, InitialNodes) {
  Graph g(5);
  EXPECT_EQ(g.node_capacity(), 5);
  EXPECT_EQ(g.alive_count(), 5);
  for (NodeId v = 0; v < 5; ++v) EXPECT_TRUE(g.is_alive(v));
}

TEST(Graph, AddNodeAssignsConsecutiveIds) {
  Graph g(2);
  EXPECT_EQ(g.add_node(), 2);
  EXPECT_EQ(g.add_node(), 3);
  EXPECT_EQ(g.alive_count(), 4);
}

TEST(Graph, AddEdgeBasics) {
  Graph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));  // duplicate
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.edge_count(), 1);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 0);
}

TEST(Graph, RemoveEdge) {
  Graph g(2);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, RemoveNodeClearsIncidence) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.remove_node(0);
  EXPECT_FALSE(g.is_alive(0));
  EXPECT_EQ(g.alive_count(), 3);
  EXPECT_EQ(g.edge_count(), 1);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(Graph, IdsNeverReused) {
  Graph g(2);
  g.remove_node(1);
  EXPECT_EQ(g.add_node(), 2);
  EXPECT_FALSE(g.is_alive(1));
}

TEST(Graph, AliveNodesSorted) {
  Graph g(5);
  g.remove_node(2);
  auto alive = g.alive_nodes();
  EXPECT_EQ(alive, (std::vector<NodeId>{0, 1, 3, 4}));
}

TEST(Graph, EnsureNode) {
  Graph g;
  g.ensure_node(3);
  EXPECT_EQ(g.node_capacity(), 4);
  EXPECT_TRUE(g.is_alive(3));
}

TEST(Graph, SameTopology) {
  Graph a(3), b(3);
  a.add_edge(0, 1);
  b.add_edge(0, 1);
  EXPECT_TRUE(a.same_topology(b));
  b.add_edge(1, 2);
  EXPECT_FALSE(a.same_topology(b));
  a.add_edge(1, 2);
  EXPECT_TRUE(a.same_topology(b));
  a.remove_node(2);
  b.remove_node(2);
  EXPECT_TRUE(a.same_topology(b));
}

TEST(Graph, SameTopologyDifferentCapacitySameAlive) {
  Graph a(3);
  Graph b(4);
  b.remove_node(3);
  EXPECT_TRUE(a.same_topology(b));
}

TEST(GraphDeathTest, SelfLoopRejected) {
  Graph g(2);
  EXPECT_DEATH(g.add_edge(1, 1), "self loop");
}

TEST(GraphDeathTest, EdgeToDeadNodeRejected) {
  Graph g(3);
  g.remove_node(1);
  EXPECT_DEATH(g.add_edge(0, 1), "dead");
}

TEST(GraphDeathTest, DoubleRemoveNodeRejected) {
  Graph g(2);
  g.remove_node(1);
  EXPECT_DEATH(g.remove_node(1), "dead");
}

}  // namespace
}  // namespace fg
