#include "harness/experiment.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "haft/haft.h"
#include "heal/baselines.h"

namespace fg {
namespace {

TEST(Experiment, RandomDeleteRunOnForgivingGraph) {
  Rng rng(11);
  Graph g0 = make_erdos_renyi(60, 0.1, rng);
  ForgivingGraphHealer h(g0);
  RandomDeleteAdversary adv(10);
  RunConfig cfg;
  cfg.max_steps = 40;
  cfg.sample_every = 10;
  auto res = run_experiment(h, adv, cfg, rng);

  EXPECT_EQ(res.deletions, 40);
  EXPECT_EQ(res.insertions, 0);
  EXPECT_EQ(res.timeline.size(), 4u);
  EXPECT_EQ(res.final.alive, 20);
  EXPECT_EQ(res.broken_pairs_total, 0);  // FG never disconnects
  // Theorem bounds on the sampled metrics.
  EXPECT_LE(res.worst_degree_ratio, 4.0);
  EXPECT_LE(res.worst_stretch, std::max(1, haft::ceil_log2(60)));
}

TEST(Experiment, StopsWhenAdversaryStops) {
  ForgivingGraphHealer h(make_star(8));
  StarAttackAdversary adv;
  RunConfig cfg;
  cfg.max_steps = 100;
  Rng rng(1);
  auto res = run_experiment(h, adv, cfg, rng);
  EXPECT_EQ(res.deletions, 1);
  EXPECT_EQ(res.final.alive, 7);
}

TEST(Experiment, OnStepHookObservesActions) {
  ForgivingGraphHealer h(make_cycle(10));
  ChurnAdversary adv(0.5, 2);
  RunConfig cfg;
  cfg.max_steps = 20;
  cfg.sample_every = 0;  // no intermediate samples
  int hook_calls = 0;
  cfg.on_step = [&](int, const Action&, Healer&) { ++hook_calls; };
  Rng rng(5);
  auto res = run_experiment(h, adv, cfg, rng);
  EXPECT_EQ(hook_calls, 20);
  EXPECT_TRUE(res.timeline.empty());
  EXPECT_EQ(res.deletions + res.insertions, 20);
}

TEST(Experiment, NoHealerAccumulatesBrokenPairs) {
  ForgivingGraphHealer unused(make_star(3));
  (void)unused;
  NoHealer h(make_star(30));
  RunConfig cfg;
  cfg.max_steps = 1;
  Rng rng(2);
  MaxDegreeDeleteAdversary adv;
  auto res = run_experiment(h, adv, cfg, rng);
  EXPECT_GT(res.broken_pairs_total, 0);
  EXPECT_GT(res.final.components, 1);
}

TEST(Experiment, DeterministicForSeed) {
  for (int round = 0; round < 2; ++round) {
    static double first_stretch = -1;
    Rng rng(77);
    Graph g0 = make_erdos_renyi(50, 0.1, rng);
    ForgivingGraphHealer h(g0);
    ChurnAdversary adv(0.6, 3);
    RunConfig cfg;
    cfg.max_steps = 30;
    auto res = run_experiment(h, adv, cfg, rng);
    if (round == 0)
      first_stretch = res.final.stretch.avg_stretch;
    else
      EXPECT_DOUBLE_EQ(first_stretch, res.final.stretch.avg_stretch);
  }
}

}  // namespace
}  // namespace fg
