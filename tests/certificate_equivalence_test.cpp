// Cross-engine certificate equivalence: over a shard_determinism-style
// trace corpus, the centralized engine, the sharded-concurrent engine, and
// the distributed engine under MergeMode::kGlobalPlan must emit the *same
// certificates* — byte-identical structural text, wave by wave. The
// certificate layer normalizes every engine-private detail away (arena
// handles become preorder-local indices, the dist cost line is excluded by
// structural_text()), so any divergence here is a real topology
// difference between engines, localized to the first differing wave.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "cert/certificate.h"
#include "fg/dist/dist_forgiving_graph.h"
#include "fg/forgiving_graph.h"
#include "graph/generators.h"
#include "harness/certificate.h"
#include "harness/trace.h"
#include "heal/healer.h"
#include "util/rng.h"

namespace fg {
namespace {

Graph build_graph(const std::string& kind, int n, Rng& rng) {
  if (kind == "star") return make_star(n);
  if (kind == "path") return make_path(n);
  if (kind == "grid") return make_grid(n / 6, 6);
  if (kind == "er") return make_erdos_renyi(n, 7.0 / n, rng);
  if (kind == "ba") return make_barabasi_albert(n, 2, rng);
  ADD_FAILURE() << "unknown graph kind";
  return Graph(1);
}

/// Per-wave structural bytes of every certificate an engine emitted.
std::vector<std::string> waves_of(const harness::CertificateCollector& c) {
  std::vector<std::string> out;
  out.reserve(c.certs.size());
  for (const cert::WaveCertificate& w : c.certs) out.push_back(w.structural_text());
  return out;
}

/// Compare two engines' certificate streams wave by wave, naming the first
/// wave that differs (a whole-stream EXPECT_EQ would drown the diff).
void expect_same_waves(const std::vector<std::string>& ref,
                       const std::vector<std::string>& got,
                       const std::string& label) {
  ASSERT_EQ(ref.size(), got.size()) << label << ": wave count differs";
  for (size_t w = 0; w < ref.size(); ++w) {
    ASSERT_EQ(ref[w], got[w]) << label << ": first divergence at wave " << w;
  }
}

struct CorpusCase {
  const char* graph;
  int n;
  const char* adversary;
  int steps;
  uint64_t seed;
};

class CertificateEquivalence : public ::testing::TestWithParam<CorpusCase> {};

TEST_P(CertificateEquivalence, ThreeEnginesEmitIdenticalCertificates) {
  const CorpusCase& c = GetParam();
  Rng rng(c.seed);
  Graph g0 = build_graph(c.graph, c.n, rng);

  // Reference: centralized single-threaded engine, schedule recorded.
  ForgivingGraphHealer recorded(g0);
  harness::CertificateCollector reference;
  recorded.engine().set_certificate_sink(&reference);
  auto adversary = make_adversary(c.adversary);
  Trace t = record_run(recorded, *adversary, c.steps, rng);
  ASSERT_GE(t.size(), 1u);
  ASSERT_GE(reference.certs.size(), 1u) << "schedule committed no waves";
  const std::vector<std::string> ref_waves = waves_of(reference);

  // Every certificate the reference emitted passes the independent checker
  // (belt and suspenders on top of certificate_oracle_test).
  for (size_t w = 0; w < reference.certs.size(); ++w) {
    cert::CheckResult res = cert::check(reference.certs[w]);
    ASSERT_TRUE(res.ok) << res.diagnostic;
  }

  // Sharded-concurrent engine, both pipeline sides fanned out.
  {
    ForgivingGraphHealer sharded(g0);
    harness::CertificateCollector got;
    sharded.engine().set_certificate_sink(&got);
    sharded.engine().set_shard_workers(4);
    sharded.engine().set_commit_workers(4);
    t.replay(sharded);
    expect_same_waves(ref_waves, waves_of(got),
                      std::string(c.graph) + "/" + c.adversary + " sharded w=4");
  }

  // Distributed engine under the merge mode that pins the centralized
  // topology (docs/CONCURRENCY.md): same waves, same bytes.
  {
    dist::DistForgivingGraph net(g0, dist::MergeMode::kGlobalPlan);
    harness::CertificateCollector got;
    net.set_certificate_sink(&got);
    for (const Action& a : t.actions()) {
      switch (a.kind) {
        case Action::Kind::kInsert:
          net.insert(a.neighbors);
          break;
        case Action::Kind::kDelete:
          net.remove(a.target);
          break;
        case Action::Kind::kBatchDelete:
          net.delete_batch(a.targets);
          break;
      }
    }
    expect_same_waves(ref_waves, waves_of(got),
                      std::string(c.graph) + "/" + c.adversary + " dist kGlobalPlan");
    // The dist stream carries cost claims the others cannot know; that is
    // the ONLY difference — full save() bytes differ, structural do not.
    for (const cert::WaveCertificate& w : got.certs) EXPECT_TRUE(w.cost.present);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CertificateEquivalence,
    ::testing::Values(CorpusCase{"er", 120, "batch:6", 8, 1},
                      CorpusCase{"ba", 100, "regions:3", 10, 4},
                      CorpusCase{"grid", 96, "batch:4", 8, 5},
                      CorpusCase{"path", 140, "regions:6", 6, 7},
                      CorpusCase{"star", 100, "batch:4", 8, 8},
                      CorpusCase{"er", 100, "churn:0.7", 30, 9}),
    [](const ::testing::TestParamInfo<CorpusCase>& info) {
      const auto& c = info.param;
      std::string adv(c.adversary);
      for (char& ch : adv)
        if (ch == ':' || ch == '-' || ch == '.') ch = '_';
      return std::string(c.graph) + "_" + adv + "_s" + std::to_string(c.seed);
    });

}  // namespace
}  // namespace fg
