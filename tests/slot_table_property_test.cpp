// Property test for the pooled flat slot tables (fg/core/slot_table.h):
// random interleaved attach (ensure) / field-install / detach (erase) /
// teardown (clear) sequences are checked against a naive map-of-pairs model
// after every step — the same harness shape as graph_view_property_test.cpp
// for the adjacency substrate. The pinned properties are what the commit
// path relies on:
//   * entries(v) is sorted ascending by `other` and duplicate-free, so
//     every slot walk (helper counts, root scans, checkpoint rebuild) is
//     canonical by construction;
//   * find/ensure/erase/count/clear match the model exactly, across spill
//     growth and pooled-block recycling;
//   * the deterministic merge tie-break is preserved: ordering per-
//     processor slots by `other` is exactly ordering them by
//     slot_key(owner, other) — the key piece_info derives from a piece's
//     representative (rep.owner, rep.other), the paper's "NodeID" order.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "fg/core/slot_table.h"
#include "fg/virtual_forest.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace fg::core {
namespace {

/// Naive model: (owner, other) -> (leaf, helper).
using Model = std::map<std::pair<NodeId, NodeId>, std::pair<VNodeId, VNodeId>>;

void check_equivalent(const SlotTable& slots, const Model& m, int procs) {
  // Per-processor expected slots, sorted by `other` (std::map iterates keys
  // in ascending (owner, other) order already).
  std::vector<std::vector<std::pair<NodeId, std::pair<VNodeId, VNodeId>>>>
      expect(static_cast<size_t>(procs));
  for (const auto& [key, val] : m)
    expect[static_cast<size_t>(key.first)].push_back({key.second, val});

  for (NodeId v = 0; v < procs; ++v) {
    const auto& want = expect[static_cast<size_t>(v)];
    ASSERT_EQ(slots.count(v), static_cast<int>(want.size())) << "proc " << v;
    auto view = slots.entries(v);
    ASSERT_EQ(view.size(), want.size());
    for (size_t i = 0; i < view.size(); ++i) {
      ASSERT_EQ(view[i].other, want[i].first) << "proc " << v << " slot " << i;
      ASSERT_EQ(view[i].leaf, want[i].second.first);
      ASSERT_EQ(view[i].helper, want[i].second.second);
      if (i > 0) {
        ASSERT_LT(view[i - 1].other, view[i].other);  // sorted, unique
        // The merge tie-break: per-processor slot order by `other` IS the
        // slot_key order piece_info ranks representatives by.
        ASSERT_LT(slot_key(v, view[i - 1].other), slot_key(v, view[i].other));
      }
    }
    // Both lookup paths agree, present and absent.
    for (const auto& [other, val] : want) {
      const SlotTable::Entry* e = slots.find(v, other);
      ASSERT_NE(e, nullptr);
      ASSERT_EQ(e->leaf, val.first);
      ASSERT_EQ(e->helper, val.second);
    }
    for (NodeId w = 0; w < procs; w += 3) {
      bool present = m.contains({v, w});
      ASSERT_EQ(slots.find(v, w) != nullptr, present);
    }
  }
}

TEST(SlotTableProperty, RandomChurnMatchesMapOfPairsModel) {
  Rng rng(20260808);
  for (int trial = 0; trial < 8; ++trial) {
    const int procs = 4 + static_cast<int>(rng.next_below(12));
    SlotTable slots;
    slots.resize(static_cast<size_t>(procs));
    Model m;
    VNodeId next_vnode = 1;

    for (int step = 0; step < 400; ++step) {
      NodeId v = static_cast<NodeId>(rng.next_below(procs));
      NodeId w = static_cast<NodeId>(rng.next_below(procs));
      const uint64_t roll = rng.next_below(100);
      if (roll < 45) {
        // Attach: ensure a slot and install its leaf (idempotent on the
        // key; an existing slot keeps its fields — exactly what the break
        // stitch relies on when it FG_CHECKs the slot was empty).
        SlotTable::Entry& e = slots.ensure(v, w);
        auto [it, inserted] = m.try_emplace({v, w}, std::pair{kNoVNode, kNoVNode});
        ASSERT_EQ(e.leaf, it->second.first);
        ASSERT_EQ(e.helper, it->second.second);
        if (inserted) {
          e.leaf = next_vnode;
          it->second.first = next_vnode++;
        }
      } else if (roll < 65) {
        // Install/steal a field in place: the merge fan-out's only slot
        // write (merge_region installing a helper), and the teardown
        // stitch's field clear.
        if (const SlotTable::Entry* found = slots.find(v, w)) {
          SlotTable::Entry* e = slots.find(v, w);
          ASSERT_EQ(e, found);
          auto& mv = m.at({v, w});
          if (rng.next_bool(0.5)) {
            e->helper = next_vnode;
            mv.second = next_vnode++;
          } else {
            e->helper = kNoVNode;
            mv.second = kNoVNode;
          }
        } else {
          ASSERT_FALSE(m.contains({v, w}));
        }
      } else if (roll < 85) {
        // Detach: erase the slot if present (remove_vnode's path once both
        // fields empty).
        if (slots.find(v, w) != nullptr) {
          slots.erase(v, w);
          ASSERT_EQ(m.erase({v, w}), 1u);
        } else {
          ASSERT_FALSE(m.contains({v, w}));
        }
      } else {
        // Teardown: drop all of v's slots (finish_break on a victim),
        // returning its spill block to the pool for later reuse.
        slots.clear(v);
        for (auto it = m.begin(); it != m.end();)
          it = (it->first.first == v) ? m.erase(it) : std::next(it);
      }
      if (step % 19 == 0) check_equivalent(slots, m, procs);
    }
    check_equivalent(slots, m, procs);
  }
}

TEST(SlotTableProperty, HubChurnRecyclesSpillBlocks) {
  // Grow one processor's table past every size class, clear it, regrow a
  // second: the second table must reuse pooled blocks without disturbing
  // the small (inline) tables around it.
  const int procs = 300;
  SlotTable slots;
  slots.resize(procs);
  Model m;
  for (NodeId w = 1; w < procs; ++w) {
    slots.ensure(0, w).leaf = w;
    m[{0, w}] = {w, kNoVNode};
    slots.ensure(w, 0).leaf = w + 1000;  // every spoke keeps an inline slot back
    m[{w, 0}] = {w + 1000, kNoVNode};
  }
  check_equivalent(slots, m, procs);
  slots.clear(0);
  for (auto it = m.begin(); it != m.end();)
    it = (it->first.first == 0) ? m.erase(it) : std::next(it);
  for (NodeId w = 2; w < procs; ++w) {
    slots.ensure(1, w).leaf = w;
    auto [it, inserted] = m.try_emplace({1, w}, std::pair{kNoVNode, kNoVNode});
    if (inserted) it->second.first = w;
  }
  check_equivalent(slots, m, procs);
}

TEST(SlotTableProperty, GrowOnlyResizePreservesTables) {
  SlotTable slots;
  slots.resize(2);
  slots.ensure(0, 9).leaf = 7;
  slots.ensure(1, 3).helper = 8;
  slots.resize(6);  // insert_node path: later processors start empty
  ASSERT_EQ(slots.procs(), 6u);
  ASSERT_EQ(slots.find(0, 9)->leaf, 7);
  ASSERT_EQ(slots.find(1, 3)->helper, 8);
  for (NodeId v = 2; v < 6; ++v) ASSERT_EQ(slots.count(v), 0);
}

TEST(SlotTableProperty, SlotKeyOrdersLexicographically) {
  // The representative tie-break rule: slot_key(owner, other) compares
  // exactly like the pair (owner, other) for the non-negative ids the
  // engine uses — so the haft merge plan's key order is the paper's NodeID
  // order, independent of container iteration order.
  const std::vector<std::pair<NodeId, NodeId>> keys = {
      {0, 0}, {0, 1}, {0, 1000000}, {1, 0}, {1, 1}, {7, 3}, {7, 4}, {8, 0}};
  for (size_t i = 0; i < keys.size(); ++i)
    for (size_t j = 0; j < keys.size(); ++j)
      ASSERT_EQ(slot_key(keys[i].first, keys[i].second) <
                    slot_key(keys[j].first, keys[j].second),
                keys[i] < keys[j])
          << "(" << keys[i].first << "," << keys[i].second << ") vs ("
          << keys[j].first << "," << keys[j].second << ")";
}

}  // namespace
}  // namespace fg::core
