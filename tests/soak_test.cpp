// Soak tests: longer adversarial schedules than the unit suites, exercising
// deep RT merge chains, large churn, and the interplay of all modules. Kept
// within a few seconds total; the benches cover the large scales.
#include <gtest/gtest.h>

#include "fg/dist/dist_forgiving_graph.h"
#include "fg/forgiving_graph.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "haft/haft.h"
#include "harness/metrics.h"
#include "util/rng.h"

namespace fg {
namespace {

TEST(Soak, CentralizedLongChurn) {
  Rng rng(0xC0FFEE);
  Graph g0 = make_erdos_renyi(300, 8.0 / 300, rng);
  ForgivingGraph fg(g0);
  for (int step = 0; step < 1200; ++step) {
    auto alive = fg.healed().alive_nodes();
    if (alive.size() > 30 && rng.next_bool(0.62)) {
      fg.remove(rng.pick(alive));
    } else {
      rng.shuffle(alive);
      alive.resize(std::min<size_t>(static_cast<size_t>(rng.next_int(1, 4)), alive.size()));
      fg.insert(alive);
    }
    if (step % 200 == 199) {
      ASSERT_TRUE(is_connected(fg.healed())) << "step " << step;
      ASSERT_LE(fg.max_degree_ratio(), 4.0) << "step " << step;
    }
  }
  fg.validate();
  Rng srng(1);
  auto s = sample_stretch(fg.healed(), fg.gprime(), 24, srng);
  EXPECT_EQ(s.broken_pairs, 0);
  EXPECT_LE(s.max_stretch, std::max(1, haft::ceil_log2(fg.gprime().node_capacity())));
}

TEST(Soak, GrindAStarToDust) {
  // Delete every node of a big star one by one; the RT must absorb every
  // deletion while staying a haft of logarithmic depth.
  ForgivingGraph fg(make_star(513));
  Rng rng(77);
  while (fg.healed().alive_count() > 2) {
    auto alive = fg.healed().alive_nodes();
    fg.remove(rng.pick(alive));
    ASSERT_TRUE(is_connected(fg.healed()));
    ASSERT_LE(fg.max_degree_ratio(), 4.0);
  }
  fg.validate();
}

TEST(Soak, DistributedEquivalenceLongRun) {
  Rng rng(0xBEEF);
  Graph g0 = make_barabasi_albert(120, 2, rng);
  ForgivingGraph central(g0);
  dist::DistForgivingGraph distributed(g0);
  for (int step = 0; step < 220; ++step) {
    auto alive = central.healed().alive_nodes();
    if (alive.size() > 10 && rng.next_bool(0.7)) {
      NodeId v = rng.pick(alive);
      central.remove(v);
      distributed.remove(v);
    } else {
      rng.shuffle(alive);
      alive.resize(std::min<size_t>(2, alive.size()));
      central.insert(alive);
      distributed.insert(alive);
    }
    if (step % 40 == 39) {
      ASSERT_TRUE(central.healed().same_topology(distributed.image())) << "step " << step;
    }
  }
  EXPECT_TRUE(central.healed().same_topology(distributed.image()));
  central.validate();
  distributed.validate();
}

TEST(Soak, StageWiseGrind) {
  Rng rng(0xABBA);
  dist::DistForgivingGraph net(make_erdos_renyi(150, 8.0 / 150, rng),
                               dist::MergeMode::kStageWise);
  for (int step = 0; step < 120; ++step) {
    Graph img = net.image();
    auto alive = img.alive_nodes();
    if (alive.size() <= 12) break;
    net.remove(rng.pick(alive));
  }
  net.validate();
  ASSERT_TRUE(is_connected(net.image()));
  auto d = degree_stats(net.image(), net.gprime());
  EXPECT_LE(d.max_ratio, 4.0);
}

}  // namespace
}  // namespace fg
