// Soak tests: longer adversarial schedules than the unit suites, exercising
// deep RT merge chains, large churn, and the interplay of all modules. Kept
// within a few seconds total; the benches cover the large scales.
#include <gtest/gtest.h>

#include <numeric>

#include "fg/dist/dist_forgiving_graph.h"
#include "fg/forgiving_graph.h"
#include "fg/healer_service.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "haft/haft.h"
#include "harness/metrics.h"
#include "util/rng.h"

namespace fg {
namespace {

TEST(Soak, CentralizedLongChurn) {
  Rng rng(0xC0FFEE);
  Graph g0 = make_erdos_renyi(300, 8.0 / 300, rng);
  ForgivingGraph fg(g0);
  for (int step = 0; step < 1200; ++step) {
    auto alive = fg.healed().alive_nodes();
    if (alive.size() > 30 && rng.next_bool(0.62)) {
      fg.remove(rng.pick(alive));
    } else {
      rng.shuffle(alive);
      alive.resize(std::min<size_t>(static_cast<size_t>(rng.next_int(1, 4)), alive.size()));
      fg.insert(alive);
    }
    if (step % 200 == 199) {
      ASSERT_TRUE(is_connected(fg.healed())) << "step " << step;
      ASSERT_LE(fg.max_degree_ratio(), 4.0) << "step " << step;
    }
  }
  fg.validate();
  Rng srng(1);
  auto s = sample_stretch(fg.healed(), fg.gprime(), 24, srng);
  EXPECT_EQ(s.broken_pairs, 0);
  EXPECT_LE(s.max_stretch, std::max(1, haft::ceil_log2(fg.gprime().node_capacity())));
}

TEST(Soak, GrindAStarToDust) {
  // Delete every node of a big star one by one; the RT must absorb every
  // deletion while staying a haft of logarithmic depth.
  ForgivingGraph fg(make_star(513));
  Rng rng(77);
  while (fg.healed().alive_count() > 2) {
    auto alive = fg.healed().alive_nodes();
    fg.remove(rng.pick(alive));
    ASSERT_TRUE(is_connected(fg.healed()));
    ASSERT_LE(fg.max_degree_ratio(), 4.0);
  }
  fg.validate();
}

TEST(Soak, DistributedEquivalenceLongRun) {
  Rng rng(0xBEEF);
  Graph g0 = make_barabasi_albert(120, 2, rng);
  ForgivingGraph central(g0);
  dist::DistForgivingGraph distributed(g0);
  for (int step = 0; step < 220; ++step) {
    auto alive = central.healed().alive_nodes();
    if (alive.size() > 10 && rng.next_bool(0.7)) {
      NodeId v = rng.pick(alive);
      central.remove(v);
      distributed.remove(v);
    } else {
      rng.shuffle(alive);
      alive.resize(std::min<size_t>(2, alive.size()));
      central.insert(alive);
      distributed.insert(alive);
    }
    if (step % 40 == 39) {
      ASSERT_TRUE(central.healed().same_topology(distributed.image())) << "step " << step;
    }
  }
  EXPECT_TRUE(central.healed().same_topology(distributed.image()));
  central.validate();
  distributed.validate();
}

TEST(Soak, ChurnStreamThroughHealerService) {
  // The serving loop under a longer pipelined churn stream, with the
  // sampled guardrail as the oracle: every k-th wave's certificate is
  // re-derived and checked from first principles by src/cert (which never
  // links the engine), and the structural invariants are re-validated at
  // the end. The generator mirrors the alive pool the way the bench driver
  // does, so no delete is ever dropped.
  Rng rng(0x50AC);
  const int n = 300;
  Graph g0 = make_sparse_random(n, 5.0, rng);
  HealerConfig config;
  config.wave_size = 16;
  config.certify_every = 5;
  HealerService service(g0, config);
  int64_t alerts = 0;
  service.set_alert([&alerts](int64_t, const std::string&) { ++alerts; });

  std::vector<NodeId> pool(static_cast<size_t>(n));
  std::iota(pool.begin(), pool.end(), NodeId{0});
  NodeId next_id = static_cast<NodeId>(n);
  for (int step = 0; step < 4000; ++step) {
    if (pool.size() > 32 && rng.next_bool(0.55)) {
      size_t j = static_cast<size_t>(rng.next_below(pool.size()));
      NodeId victim = pool[j];
      pool[j] = pool.back();
      pool.pop_back();
      service.push(ChurnOp::Delete(victim));
    } else {
      NodeId a = rng.pick(pool);
      NodeId b = a;
      while (b == a) b = rng.pick(pool);
      service.push(ChurnOp::Insert({a, b}));
      pool.push_back(next_id++);
    }
  }
  service.flush();

  const HealerStats& stats = service.stats();
  EXPECT_EQ(stats.ops, 4000);
  EXPECT_EQ(stats.dropped_deletes, 0);
  EXPECT_GT(stats.waves, 100);
  EXPECT_EQ(stats.certified_waves, (stats.waves + 4) / 5);
  EXPECT_EQ(stats.cert_rejections, 0);
  EXPECT_EQ(alerts, 0);
  EXPECT_EQ(stats.stale_replans, 0);

  service.engine().validate();
  ASSERT_TRUE(is_connected(service.engine().healed()));
  EXPECT_LE(service.engine().max_degree_ratio(), 4.0);
}

TEST(Soak, StageWiseGrind) {
  Rng rng(0xABBA);
  dist::DistForgivingGraph net(make_erdos_renyi(150, 8.0 / 150, rng),
                               dist::MergeMode::kStageWise);
  for (int step = 0; step < 120; ++step) {
    Graph img = net.image();
    auto alive = img.alive_nodes();
    if (alive.size() <= 12) break;
    net.remove(rng.pick(alive));
  }
  net.validate();
  ASSERT_TRUE(is_connected(net.image()));
  auto d = degree_stats(net.image(), net.gprime());
  EXPECT_LE(d.max_ratio, 4.0);
}

}  // namespace
}  // namespace fg
