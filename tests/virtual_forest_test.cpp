#include "fg/virtual_forest.h"

#include <gtest/gtest.h>

namespace fg {
namespace {

TEST(SlotKey, OrderingAndUniqueness) {
  EXPECT_LT(slot_key(0, 1), slot_key(0, 2));
  EXPECT_LT(slot_key(0, 99), slot_key(1, 0));
  EXPECT_NE(slot_key(1, 2), slot_key(2, 1));
}

TEST(VirtualForest, LeafBasics) {
  VirtualForest f;
  VNodeId leaf = f.make_leaf(3, 7);
  const auto& n = f.node(leaf);
  EXPECT_TRUE(n.is_leaf);
  EXPECT_EQ(n.owner, 3);
  EXPECT_EQ(n.other, 7);
  EXPECT_EQ(n.rep, leaf);  // a real node is its own representative
  EXPECT_EQ(n.leaf_count, 1);
  EXPECT_TRUE(f.is_perfect(leaf));
  EXPECT_TRUE(f.valid_haft(leaf));
}

TEST(VirtualForest, HelperJoinSetsFields) {
  VirtualForest f;
  VNodeId a = f.make_leaf(0, 9);
  VNodeId b = f.make_leaf(1, 9);
  VNodeId h = f.make_helper(0, 9, a, b);
  const auto& n = f.node(h);
  EXPECT_FALSE(n.is_leaf);
  EXPECT_EQ(n.left, a);
  EXPECT_EQ(n.right, b);
  EXPECT_EQ(n.height, 1);
  EXPECT_EQ(n.leaf_count, 2);
  EXPECT_EQ(n.rep, b);  // inherits the right child's representative
  EXPECT_EQ(f.node(a).parent, h);
  EXPECT_EQ(f.node(b).parent, h);
  EXPECT_TRUE(f.valid_haft(h));
  EXPECT_EQ(f.root_of(a), h);
}

TEST(VirtualForest, UnlinkAndRemove) {
  VirtualForest f;
  VNodeId a = f.make_leaf(0, 9);
  VNodeId b = f.make_leaf(1, 9);
  VNodeId h = f.make_helper(0, 9, a, b);
  f.unlink_from_parent(a);
  f.unlink_from_parent(b);
  EXPECT_EQ(f.node(a).parent, kNoVNode);
  EXPECT_EQ(f.node(h).left, kNoVNode);
  f.remove(h);
  EXPECT_FALSE(f.exists(h));
  EXPECT_TRUE(f.exists(a));
  EXPECT_EQ(f.live_count(), 2);
}

TEST(VirtualForest, IsAncestor) {
  VirtualForest f;
  VNodeId a = f.make_leaf(0, 9);
  VNodeId b = f.make_leaf(1, 9);
  VNodeId c = f.make_leaf(2, 9);
  VNodeId h1 = f.make_helper(0, 9, a, b);
  VNodeId h2 = f.make_helper(1, 9, h1, c);
  EXPECT_TRUE(f.is_ancestor(h2, a));
  EXPECT_TRUE(f.is_ancestor(h1, a));
  EXPECT_TRUE(f.is_ancestor(a, a));
  EXPECT_FALSE(f.is_ancestor(h1, c));
  EXPECT_FALSE(f.is_ancestor(a, h1));
}

TEST(VirtualForest, LeavesAndSubtreeEnumeration) {
  VirtualForest f;
  VNodeId a = f.make_leaf(0, 9);
  VNodeId b = f.make_leaf(1, 9);
  VNodeId c = f.make_leaf(2, 9);
  VNodeId h1 = f.make_helper(0, 9, a, b);
  VNodeId h2 = f.make_helper(1, 9, h1, c);
  auto leaves = f.leaves_of(h2);
  EXPECT_EQ(leaves, (std::vector<VNodeId>{a, b, c}));  // left-to-right
  EXPECT_EQ(f.subtree_of(h2).size(), 5u);
  EXPECT_EQ(f.subtree_of(h1).size(), 3u);
}

TEST(VirtualForest, ValidHaftRejectsLeftImbalance) {
  VirtualForest f;
  VNodeId a = f.make_leaf(0, 9);
  VNodeId b = f.make_leaf(1, 9);
  VNodeId c = f.make_leaf(2, 9);
  VNodeId h1 = f.make_helper(0, 9, a, b);
  // Left child must be the bigger/perfect side; (c, h1) violates it.
  VNodeId bad = f.make_helper(1, 9, c, h1);
  EXPECT_FALSE(f.valid_haft(bad));
}

TEST(VirtualForestDeathTest, HelperOverNonRootsRejected) {
  VirtualForest f;
  VNodeId a = f.make_leaf(0, 9);
  VNodeId b = f.make_leaf(1, 9);
  VNodeId h = f.make_helper(0, 9, a, b);
  VNodeId c = f.make_leaf(2, 9);
  (void)h;
  EXPECT_DEATH(f.make_helper(2, 9, a, c), "roots");
}

TEST(VirtualForestDeathTest, RemoveWithChildrenRejected) {
  VirtualForest f;
  VNodeId a = f.make_leaf(0, 9);
  VNodeId b = f.make_leaf(1, 9);
  VNodeId h = f.make_helper(0, 9, a, b);
  EXPECT_DEATH(f.remove(h), "detached");
}

}  // namespace
}  // namespace fg
