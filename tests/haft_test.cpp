#include "haft/haft.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace fg::haft {
namespace {

TEST(CeilLog2, KnownValues) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(8), 3);
  EXPECT_EQ(ceil_log2(9), 4);
  EXPECT_EQ(ceil_log2(1 << 20), 20);
  EXPECT_EQ(ceil_log2((1 << 20) + 1), 21);
}

TEST(IsPow2, Basics) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(-4));
}

TEST(MergePlan, EmptyAndSingleton) {
  EXPECT_TRUE(merge_plan({}).empty());
  EXPECT_TRUE(merge_plan({{4, 0}}).empty());
}

TEST(MergePlan, TwoEqualPieces) {
  auto plan = merge_plan({{1, 10}, {1, 5}});
  ASSERT_EQ(plan.size(), 1u);
  // Sorted by key: piece 1 (key 5) first, so it is the left child.
  EXPECT_EQ(plan[0].left, 1);
  EXPECT_EQ(plan[0].right, 0);
  EXPECT_EQ(plan[0].result, 2);
}

TEST(MergePlan, BinaryAdditionCarries) {
  // 1+1+1+1 = 100 in binary: three joins, sizes 1+1->2, 1+1->2, 2+2->4.
  auto plan = merge_plan({{1, 0}, {1, 1}, {1, 2}, {1, 3}});
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[2].result, 6);
}

TEST(MergePlan, DistinctSizesChainAscending) {
  // Sizes 1, 2, 4: chain phase only. First join: bigger (2) is left.
  auto plan = merge_plan({{4, 0}, {1, 1}, {2, 2}});
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].left, 2);   // size-2 piece
  EXPECT_EQ(plan[0].right, 1);  // size-1 piece
  EXPECT_EQ(plan[1].left, 0);   // size-4 piece becomes left child of root
  EXPECT_EQ(plan[1].right, 3);  // accumulated 3-leaf haft
}

TEST(MergePlan, JoinCountIsPiecesMinusOne) {
  for (int k = 1; k <= 40; ++k) {
    std::vector<PieceInfo> pieces;
    for (int i = 0; i < k; ++i)
      pieces.push_back({int64_t{1} << (i % 5), static_cast<uint64_t>(i)});
    EXPECT_EQ(merge_plan(pieces).size(), static_cast<size_t>(k - 1));
  }
}

TEST(MergePlanDeathTest, NonPowerOfTwoRejected) {
  EXPECT_DEATH(merge_plan({{3, 0}}), "perfect");
}

TEST(HaftForest, SingleLeafIsHaft) {
  HaftForest f;
  int leaf = f.make_leaf(7);
  EXPECT_TRUE(f.is_haft(leaf));
  EXPECT_TRUE(f.is_perfect(leaf));
  EXPECT_TRUE(f.is_primary_root(leaf));
  EXPECT_EQ(f.depth(leaf), 0);
  EXPECT_EQ(f.leaf_labels(leaf), std::vector<uint64_t>{7});
}

TEST(HaftForest, BuildProducesHaftWithLemma1Depth) {
  for (int64_t l = 1; l <= 64; ++l) {
    HaftForest f;
    int root = f.build(l);
    EXPECT_TRUE(f.is_haft(root)) << "l=" << l;
    EXPECT_EQ(f.node(root).leaf_count, l);
    EXPECT_EQ(f.depth(root), ceil_log2(l)) << "l=" << l;
  }
}

TEST(HaftForest, BuildKeepsAllLeaves) {
  HaftForest f;
  int root = f.build(13, 100);
  auto labels = f.leaf_labels(root);
  std::sort(labels.begin(), labels.end());
  std::vector<uint64_t> want(13);
  std::iota(want.begin(), want.end(), 100u);
  EXPECT_EQ(labels, want);
}

TEST(HaftForest, StripMatchesBinaryRepresentation) {
  // Lemma 1.2: haft(l) decomposes into one complete tree per one-bit of l.
  for (int64_t l = 1; l <= 64; ++l) {
    HaftForest f;
    int root = f.build(l);
    auto pieces = f.strip(root);
    EXPECT_EQ(pieces.size(), static_cast<size_t>(std::popcount(static_cast<uint64_t>(l))))
        << "l=" << l;
    int64_t total = 0;
    int64_t prev = int64_t{1} << 62;
    for (int p : pieces) {
      EXPECT_TRUE(f.is_perfect(p));
      EXPECT_EQ(f.node(p).parent, -1);
      EXPECT_LT(f.node(p).leaf_count, prev);  // descending distinct sizes
      prev = f.node(p).leaf_count;
      total += f.node(p).leaf_count;
    }
    EXPECT_EQ(total, l);
  }
}

TEST(HaftForest, StripRemovesExactlyHMinusOneNodes) {
  for (int64_t l : {3, 5, 6, 7, 11, 21, 63}) {
    HaftForest f;
    int root = f.build(l);
    int before = f.live_node_count();
    auto pieces = f.strip(root);
    int h = static_cast<int>(pieces.size());
    EXPECT_EQ(f.live_node_count(), before - (h - 1)) << "l=" << l;
  }
}

TEST(HaftForest, StripOnCompleteTreeIsIdentity) {
  HaftForest f;
  int root = f.build(8);
  int before = f.live_node_count();
  auto pieces = f.strip(root);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], root);
  EXPECT_EQ(f.live_node_count(), before);
}

TEST(HaftForest, MergeTwoHafts) {
  HaftForest f;
  int a = f.build(5, 0);
  int b = f.build(3, 100);
  int m = f.merge({a, b});
  EXPECT_TRUE(f.is_haft(m));
  EXPECT_EQ(f.node(m).leaf_count, 8);
  EXPECT_EQ(f.depth(m), 3);
}

TEST(HaftForest, MergeManyMatchesFigure5) {
  // Figure 5: 0101 + 0010 + 0001 = 1000 (5 + 2 + 1 = 8 leaves).
  HaftForest f;
  int a = f.build(5, 0);
  int b = f.build(2, 10);
  int c = f.build(1, 20);
  int m = f.merge({a, b, c});
  EXPECT_TRUE(f.is_haft(m));
  EXPECT_EQ(f.node(m).leaf_count, 8);
  EXPECT_TRUE(f.is_perfect(m));
}

TEST(HaftForest, JoinRejectsNonRoots) {
  HaftForest f;
  int root = f.build(4);
  int child = f.node(root).left;
  int lone = f.make_leaf(99);
  EXPECT_DEATH(f.join(child, lone), "roots");
}

TEST(HaftForest, PrimaryRootsIdentifiedByStoredFields) {
  HaftForest f;
  int root = f.build(6);  // 110: primary roots of sizes 4 and 2
  int primaries = 0;
  // Walk the whole subtree, counting primary roots.
  std::vector<int> stack{root};
  while (!stack.empty()) {
    int h = stack.back();
    stack.pop_back();
    if (f.is_primary_root(h)) ++primaries;
    const auto& n = f.node(h);
    if (n.left != -1) stack.push_back(n.left);
    if (n.right != -1) stack.push_back(n.right);
  }
  EXPECT_EQ(primaries, 2);
}

TEST(HaftForest, RootOf) {
  HaftForest f;
  int root = f.build(9);
  for (int h = 0; h < 9; ++h) {
    if (f.exists(h) && f.node(h).is_leaf) {
      EXPECT_EQ(f.root_of(h), root);
    }
  }
}

}  // namespace
}  // namespace fg::haft
