#include "heal/forgiving_tree.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "harness/metrics.h"
#include "util/rng.h"

namespace fg {
namespace {

TEST(BfsSpanningTree, PathIsItsOwnTree) {
  Graph p = make_path(6);
  Graph t = bfs_spanning_tree(p);
  EXPECT_TRUE(t.same_topology(p));
}

TEST(BfsSpanningTree, CoversAllNodesWithNMinusOneEdges) {
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = make_erdos_renyi(60, 0.1, rng);
    Graph t = bfs_spanning_tree(g);
    EXPECT_EQ(t.edge_count(), 59);
    EXPECT_TRUE(is_connected(t));
    // Every tree edge is a graph edge.
    for (NodeId v : t.alive_nodes())
      for (NodeId w : t.neighbors(v)) EXPECT_TRUE(g.has_edge(v, w));
  }
}

TEST(ForgivingTree, HealsTreeDeletions) {
  ForgivingTreeHealer ft(make_star(9));
  ft.remove(0);
  EXPECT_TRUE(is_connected(ft.healed()));
  EXPECT_EQ(ft.healed().alive_count(), 8);
  for (NodeId v = 1; v <= 8; ++v) EXPECT_LE(ft.healed().degree(v), 3);
}

TEST(ForgivingTree, SurvivesCascade) {
  Rng rng(11);
  Graph g0 = make_erdos_renyi(50, 0.12, rng);
  ForgivingTreeHealer ft(g0);
  for (int i = 0; i < 30; ++i) {
    auto alive = ft.healed().alive_nodes();
    ft.remove(rng.pick(alive));
    ASSERT_TRUE(is_connected(ft.healed()));
  }
}

TEST(ForgivingTree, InsertGraftsOntoFirstNeighbor) {
  ForgivingTreeHealer ft(make_path(4));
  std::vector<NodeId> nbrs{2, 0};
  NodeId id = ft.insert(nbrs);
  EXPECT_TRUE(ft.healed().has_edge(id, 2));   // tree edge
  EXPECT_FALSE(ft.healed().has_edge(id, 0));  // non-tree edge: not healed...
  EXPECT_TRUE(ft.gprime().has_edge(id, 0));   // ...but recorded in G'
}

TEST(ForgivingTree, StretchWorseThanForgivingGraphOnNonTreeGraphs) {
  // The 2009 paper's first improvement: FT bounds only the *diameter* of
  // the tree; measured against the full G', its stretch loses to FG.
  Rng rng(21);
  Graph g0 = make_erdos_renyi(60, 0.15, rng);
  ForgivingTreeHealer ft(g0);
  ForgivingGraphHealer fgh(g0);
  for (int i = 0; i < 30; ++i) {
    auto alive = fgh.healed().alive_nodes();
    NodeId v = rng.pick(alive);
    ft.remove(v);
    fgh.remove(v);
  }
  Rng srng(1);
  auto s_ft = sample_stretch(ft.healed(), ft.gprime(), 16, srng);
  Rng srng2(1);
  auto s_fg = sample_stretch(fgh.healed(), fgh.gprime(), 16, srng2);
  EXPECT_GT(s_ft.max_stretch, s_fg.max_stretch);
}

TEST(ForgivingTree, FactoryName) {
  Graph g0 = make_cycle(4);
  EXPECT_EQ(make_healer("forgiving-tree", g0)->name(), "ForgivingTree");
}

TEST(ForgivingTreeDeathTest, InsertWithoutNeighborsRejected) {
  ForgivingTreeHealer ft(make_path(3));
  std::vector<NodeId> none;
  EXPECT_DEATH(ft.insert(none), "graft");
}

}  // namespace
}  // namespace fg
