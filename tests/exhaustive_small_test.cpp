// Exhaustive verification on small instances: every connected labelled
// graph on 4 and 5 vertices, under every deletion order, must satisfy the
// full invariant set (haft structure, representative mechanism, image
// consistency, connectivity, Theorem-1 bounds). Small cases are where
// subtle merge/representative bugs live; this sweep leaves no stone
// unturned (~50k schedules).
#include <gtest/gtest.h>

#include <numeric>

#include "fg/dist/dist_forgiving_graph.h"
#include "fg/forgiving_graph.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "haft/haft.h"

namespace fg {
namespace {

std::vector<std::pair<NodeId, NodeId>> all_pairs(int n) {
  std::vector<std::pair<NodeId, NodeId>> out;
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) out.push_back({u, v});
  return out;
}

Graph graph_from_mask(int n, uint32_t mask, const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  Graph g(n);
  for (size_t i = 0; i < pairs.size(); ++i)
    if (mask & (uint32_t{1} << i)) g.add_edge(pairs[i].first, pairs[i].second);
  return g;
}

void check_schedule(const Graph& g0, const std::vector<NodeId>& order, bool with_dist) {
  ForgivingGraph fg(g0);
  std::unique_ptr<dist::DistForgivingGraph> net;
  if (with_dist) net = std::make_unique<dist::DistForgivingGraph>(g0);
  int n_total = g0.node_capacity();
  double bound = std::max(1, haft::ceil_log2(n_total));
  for (NodeId v : order) {
    fg.remove(v);
    fg.validate();
    ASSERT_TRUE(is_connected(fg.healed()));
    ASSERT_LE(fg.max_degree_ratio(), 4.0);
    if (net) {
      net->remove(v);
      ASSERT_TRUE(fg.healed().same_topology(net->image()));
    }
    // Exact stretch check (tiny graphs: all pairs).
    for (NodeId s : fg.healed().alive_nodes()) {
      auto dg = bfs_distances(fg.healed(), s);
      auto dp = bfs_distances(fg.gprime(), s);
      for (NodeId t : fg.healed().alive_nodes()) {
        if (t == s || dp[t] <= 0) continue;
        ASSERT_LE(dg[t], bound * dp[t]);
      }
    }
  }
}

class ExhaustiveN : public ::testing::TestWithParam<int> {};

TEST_P(ExhaustiveN, AllConnectedGraphsAllDeletionOrders) {
  const int n = GetParam();
  auto pairs = all_pairs(n);
  const uint32_t masks = uint32_t{1} << pairs.size();

  // Deletion orders: all permutations of deleting n-2 of the n nodes.
  std::vector<NodeId> ids(static_cast<size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  std::vector<std::vector<NodeId>> orders;
  std::vector<NodeId> perm = ids;
  do {
    orders.emplace_back(perm.begin(), perm.end() - 2);
  } while (std::next_permutation(perm.begin(), perm.end()));
  // Distinct prefixes only.
  std::sort(orders.begin(), orders.end());
  orders.erase(std::unique(orders.begin(), orders.end()), orders.end());

  int graphs_checked = 0;
  for (uint32_t mask = 0; mask < masks; ++mask) {
    Graph g0 = graph_from_mask(n, mask, pairs);
    if (!is_connected(g0)) continue;
    ++graphs_checked;
    // Full sweep for the centralized engine; distributed equivalence on a
    // deterministic 1-in-8 subsample of graphs to bound runtime.
    bool with_dist = (graphs_checked % 8) == 0;
    for (size_t oi = 0; oi < orders.size(); ++oi) {
      // Subsample orders for n=5 (120 -> every 4th) to keep the suite fast.
      if (n >= 5 && oi % 4 != 0) continue;
      check_schedule(g0, orders[oi], with_dist && oi % 12 == 0);
    }
  }
  EXPECT_GT(graphs_checked, n == 4 ? 30 : 700);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExhaustiveN, ::testing::Values(4, 5));

}  // namespace
}  // namespace fg
