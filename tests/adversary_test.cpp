#include "adversary/adversary.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "heal/baselines.h"

namespace fg {
namespace {

TEST(RandomDeleteAdversary, StopsAtFloor) {
  ForgivingGraphHealer h(make_cycle(5));
  RandomDeleteAdversary adv(3);
  Rng rng(1);
  int deletions = 0;
  while (auto a = adv.next(h, rng)) {
    EXPECT_EQ(a->kind, Action::Kind::kDelete);
    h.remove(a->target);
    ++deletions;
  }
  EXPECT_EQ(deletions, 2);
  EXPECT_EQ(h.healed().alive_count(), 3);
}

TEST(MaxDegreeDeleteAdversary, TargetsHub) {
  ForgivingGraphHealer h(make_star(8));
  MaxDegreeDeleteAdversary adv;
  Rng rng(1);
  auto a = adv.next(h, rng);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->target, 0);
}

TEST(HelperLoadAdversary, PrefersHelperBurdenedProcessors) {
  ForgivingGraphHealer h(make_star(9));
  Rng rng(1);
  h.remove(0);  // creates helpers among the leaves
  HelperLoadAdversary adv;
  auto a = adv.next(h, rng);
  ASSERT_TRUE(a.has_value());
  EXPECT_GT(h.engine().helper_count(a->target), 0);
}

TEST(HelperLoadAdversary, FallsBackToDegreeForBaselines) {
  StarHealer h(make_star(8));
  HelperLoadAdversary adv;
  Rng rng(1);
  auto a = adv.next(h, rng);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->target, 0);
}

TEST(ChurnAdversary, MixesInsertsAndDeletes) {
  ForgivingGraphHealer h(make_cycle(10));
  ChurnAdversary adv(0.5, 3);
  Rng rng(7);
  int inserts = 0, deletes = 0;
  for (int i = 0; i < 60; ++i) {
    auto a = adv.next(h, rng);
    ASSERT_TRUE(a.has_value());
    if (a->kind == Action::Kind::kInsert) {
      ++inserts;
      h.insert(a->neighbors);
    } else {
      ++deletes;
      h.remove(a->target);
    }
  }
  EXPECT_GT(inserts, 10);
  EXPECT_GT(deletes, 10);
}

TEST(StarAttackAdversary, DeletesHubOnceThenStops) {
  ForgivingGraphHealer h(make_star(6));
  StarAttackAdversary adv;
  Rng rng(1);
  auto a = adv.next(h, rng);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->target, 0);
  h.remove(0);
  EXPECT_FALSE(adv.next(h, rng).has_value());
}

TEST(BuildAndBurnAdversary, AlternatesInsertDelete) {
  ForgivingGraphHealer h(make_cycle(8));
  BuildAndBurnAdversary adv(4);
  Rng rng(3);
  for (int round = 0; round < 5; ++round) {
    auto a1 = adv.next(h, rng);
    ASSERT_TRUE(a1 && a1->kind == Action::Kind::kInsert);
    NodeId id = h.insert(a1->neighbors);
    auto a2 = adv.next(h, rng);
    ASSERT_TRUE(a2 && a2->kind == Action::Kind::kDelete);
    EXPECT_EQ(a2->target, id);
    h.remove(a2->target);
  }
  EXPECT_EQ(h.healed().alive_count(), 8);
}

TEST(CutVertexAdversary, FindsArticulationPoint) {
  // A dumbbell: two triangles joined through node 2 — the unique cut vertex.
  Graph g(7);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 2);
  ForgivingGraphHealer h(g);
  CutVertexAdversary adv;
  Rng rng(1);
  auto a = adv.next(h, rng);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->target, 2);
}

TEST(CutVertexAdversary, FallsBackOnBiconnectedGraphs) {
  ForgivingGraphHealer h(make_complete(5));
  CutVertexAdversary adv;
  Rng rng(1);
  auto a = adv.next(h, rng);
  ASSERT_TRUE(a.has_value());  // no cut vertex: max-degree fallback
}

TEST(CutVertexAdversary, ForgivingGraphSurvivesRepeatedCutAttacks) {
  Rng rng(5);
  Graph g0 = make_random_tree(40, rng);  // trees: every internal node is a cut
  ForgivingGraphHealer h(g0);
  CutVertexAdversary adv(6);
  int deletions = 0;
  while (auto a = adv.next(h, rng)) {
    h.remove(a->target);
    ++deletions;
    ASSERT_TRUE(is_connected(h.healed()));
  }
  EXPECT_EQ(deletions, 34);
}

TEST(MakeAdversary, FactoryNames) {
  EXPECT_EQ(make_adversary("random-delete")->name(), "random-delete");
  EXPECT_EQ(make_adversary("cut-vertex")->name(), "cut-vertex");
  EXPECT_EQ(make_adversary("maxdeg-delete")->name(), "maxdeg-delete");
  EXPECT_EQ(make_adversary("helper-load")->name(), "helper-load");
  EXPECT_EQ(make_adversary("star-attack")->name(), "star-attack");
  EXPECT_EQ(make_adversary("churn:0.5")->name(), "churn");
  EXPECT_EQ(make_adversary("build-and-burn:8")->name(), "build-and-burn");
}

}  // namespace
}  // namespace fg
