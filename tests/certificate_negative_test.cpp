// Negative paths of the certificate checker, plus the pinned golden corpus.
//
// The corpus under tests/data/certs/ is committed byte-for-byte (like
// golden_output_test.cpp): the engines must regenerate it exactly for a
// fixed deterministic schedule, and the checker must accept it. Each
// corruption case then forges one section of a valid certificate and
// asserts the checker rejects it with the expected rule in a localized
// diagnostic — the guarantees tools/fgcheck gives about engine output mean
// nothing unless every forgery is actually caught.
//
// Regenerate the fixtures after a deliberate repair-algorithm change with
// FG_UPDATE_GOLDENS=1 (and say so in the commit); an unexplained diff here
// is a determinism regression.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cert/certificate.h"
#include "fg/dist/dist_forgiving_graph.h"
#include "fg/forgiving_graph.h"
#include "graph/generators.h"
#include "harness/certificate.h"

namespace fg {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(FG_REPO_DIR) + "/tests/data/certs/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.is_open()) << "missing fixture " << path;
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// The fixed schedule both golden streams are recorded from: star hub
// deletion, a batch wave, an insertion, one more deletion. Deterministic —
// no RNG anywhere.
template <class Engine>
void run_golden_schedule(Engine* e) {
  e->remove(0);
  e->delete_batch(std::vector<NodeId>{1, 2});
  e->insert(std::vector<NodeId>{3, 4});
  e->remove(5);
}

std::string generate_stream(bool dist_engine) {
  std::ostringstream os;
  harness::CertificateWriter writer(os);
  Graph g0 = make_star(9);
  if (dist_engine) {
    dist::DistForgivingGraph net(g0);
    net.set_certificate_sink(&writer);
    run_golden_schedule(&net);
  } else {
    ForgivingGraph network(g0);
    network.set_certificate_sink(&writer);
    run_golden_schedule(&network);
  }
  return os.str();
}

void expect_pinned(const std::string& name, const std::string& generated) {
  const std::string path = fixture_path(name);
  if (std::getenv("FG_UPDATE_GOLDENS") != nullptr) {
    std::ofstream f(path);
    f << generated;
    GTEST_SKIP() << "updated " << path;
  }
  EXPECT_EQ(read_file(path), generated) << name << " drifted";
}

TEST(CertificateGolden, CentralizedStreamIsPinned) {
  expect_pinned("golden_central.cert", generate_stream(/*dist_engine=*/false));
}

TEST(CertificateGolden, DistStreamIsPinned) {
  expect_pinned("golden_dist.cert", generate_stream(/*dist_engine=*/true));
}

TEST(CertificateGolden, CorpusValidates) {
  for (const char* name : {"golden_central.cert", "golden_dist.cert"}) {
    std::istringstream is(read_file(fixture_path(name)));
    cert::StreamResult res = cert::check_stream(is);
    EXPECT_TRUE(res.ok) << name << ": " << res.diagnostic;
    EXPECT_EQ(res.waves_checked, 3) << name;
  }
}

// ---------------------------------------------------------------------------
// Programmatic corruption of each certificate section. The base certificate
// is the dist fixture's first wave (it has regions, anchors, degrees,
// stretch witnesses, AND a cost claim — every section represented).

cert::WaveCertificate parse_first_golden_wave() {
  std::istringstream is(read_file(fixture_path("golden_dist.cert")));
  cert::WaveCertificate c;
  bool eof = false;
  cert::CheckResult res = cert::parse(is, &c, &eof);
  EXPECT_TRUE(res.ok) << res.diagnostic;
  EXPECT_FALSE(eof);
  EXPECT_TRUE(cert::check(c).ok);
  // Every section the corruptions below target must be populated.
  EXPECT_FALSE(c.regions.empty());
  EXPECT_FALSE(c.regions[0].nodes.empty());
  EXPECT_FALSE(c.regions[0].image_edges.empty());
  EXPECT_FALSE(c.regions[0].anchors.empty());
  EXPECT_FALSE(c.degrees.empty());
  EXPECT_FALSE(c.stretch.empty());
  EXPECT_TRUE(c.cost.present);
  return c;
}

void expect_rejected(const cert::WaveCertificate& c, const std::string& rule,
                     const std::string& label) {
  cert::CheckResult res = cert::check(c);
  ASSERT_FALSE(res.ok) << label << ": forgery not detected";
  EXPECT_NE(res.diagnostic.find(rule), std::string::npos)
      << label << " misdiagnosed as: " << res.diagnostic;
  // Localization: every diagnostic names the wave it rejects.
  EXPECT_NE(res.diagnostic.find("wave "), std::string::npos) << res.diagnostic;

  // The text path agrees with the in-memory path: serialize and re-check.
  std::stringstream ss;
  c.save(ss);
  cert::StreamResult stream = cert::check_stream(ss);
  ASSERT_FALSE(stream.ok) << label << ": forgery survived serialization";
  EXPECT_EQ(stream.diagnostic, res.diagnostic) << label;
  // A forgery is a checker-rule rejection, not a parse failure: fgcheck
  // must exit 1 for it, never 2.
  EXPECT_FALSE(stream.malformed) << label;
}

TEST(CertificateNegative, DegreeClaimOffByOne) {
  cert::WaveCertificate c = parse_first_golden_wave();
  // Push one surviving node one past the Theorem-1.1 accounting bound.
  cert::DegreeClaim& d = c.degrees.front();
  ASSERT_GT(d.gprime, 0);
  d.g_after = c.degree_constant * d.gprime + 1;
  expect_rejected(c, "degree", "degree off-by-one");
}

TEST(CertificateNegative, DegreeDeltaExceedsWaveEdges) {
  cert::WaveCertificate c = parse_first_golden_wave();
  // Within the constant, but claiming more growth than the wave's new
  // incident image edges can explain.
  cert::DegreeClaim& d = c.degrees.front();
  d.gprime = 1000;  // defuse the 4x rule; the delta rule must still fire
  d.g_after = d.g_before + static_cast<int>(c.facts.size()) +
              static_cast<int>(c.regions[0].image_edges.size()) + 10;
  expect_rejected(c, "degree", "unexplained degree growth");
}

TEST(CertificateNegative, DroppedRtEdge) {
  cert::WaveCertificate c = parse_first_golden_wave();
  c.regions[0].image_edges.pop_back();
  expect_rejected(c, "image-edges", "dropped RT edge");
}

TEST(CertificateNegative, ForgedRtLink) {
  cert::WaveCertificate c = parse_first_golden_wave();
  // Point a non-root node's parent at itself: link symmetry breaks.
  for (cert::RtNode& n : c.regions[0].nodes) {
    if (n.parent < 0) continue;
    n.parent = (n.parent + 1) % static_cast<int>(c.regions[0].nodes.size());
    break;
  }
  expect_rejected(c, "rt-structure", "forged RT link");
}

TEST(CertificateNegative, AnchorWithoutLeaf) {
  cert::WaveCertificate c = parse_first_golden_wave();
  c.regions[0].anchors.front().first += 1000;
  expect_rejected(c, "anchors", "anchor without a leaf");
}

TEST(CertificateNegative, TruncatedWitnessPath) {
  cert::WaveCertificate c = parse_first_golden_wave();
  ASSERT_GE(c.stretch.front().path.size(), 2u);
  c.stretch.front().path.pop_back();
  expect_rejected(c, "stretch", "truncated witness path");
}

TEST(CertificateNegative, InflatedRoundBudget) {
  cert::WaveCertificate c = parse_first_golden_wave();
  c.cost.rounds = 1 << 20;
  expect_rejected(c, "cost", "inflated round budget");
}

TEST(CertificateNegative, VictimAssignedToUnknownRegion) {
  cert::WaveCertificate c = parse_first_golden_wave();
  ASSERT_FALSE(c.assign.empty());
  c.assign[0] = static_cast<int>(c.regions.size());
  expect_rejected(c, "partition", "bad region assignment");
}

TEST(CertificateNegative, VictimListedAsSurvivor) {
  cert::WaveCertificate c = parse_first_golden_wave();
  ASSERT_FALSE(c.victims.empty());
  c.degrees.push_back(cert::DegreeClaim{c.victims[0], 1, 1, 1});
  expect_rejected(c, "degree", "victim listed as survivor");
}

// ---------------------------------------------------------------------------
// Text-level corruption: things a struct mutation cannot express.

TEST(CertificateNegative, BadVersionLine) {
  std::string text = read_file(fixture_path("golden_central.cert"));
  ASSERT_EQ(text.rfind("fgcert 1\n", 0), 0u);
  text.replace(0, 8, "fgcert 2");
  std::istringstream is(text);
  cert::StreamResult res = cert::check_stream(is);
  ASSERT_FALSE(res.ok);
  EXPECT_TRUE(res.malformed);
  EXPECT_NE(res.diagnostic.find("version"), std::string::npos) << res.diagnostic;
}

TEST(CertificateNegative, TruncatedStream) {
  std::string text = read_file(fixture_path("golden_central.cert"));
  // Cut the stream mid-certificate: drop everything from the last "end".
  size_t cut = text.rfind("end\n");
  ASSERT_NE(cut, std::string::npos);
  std::istringstream is(text.substr(0, cut));
  cert::StreamResult res = cert::check_stream(is);
  ASSERT_FALSE(res.ok);
  EXPECT_TRUE(res.malformed);
  EXPECT_NE(res.diagnostic.find("format"), std::string::npos) << res.diagnostic;
  // The two intact leading certificates still counted.
  EXPECT_EQ(res.waves_checked, 2);
}

TEST(CertificateNegative, GarbageLine) {
  std::string text = read_file(fixture_path("golden_central.cert"));
  size_t pos = text.find("degrees ");
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos, "garbage here\n");
  std::istringstream is(text);
  cert::StreamResult res = cert::check_stream(is);
  ASSERT_FALSE(res.ok);
  EXPECT_TRUE(res.malformed);
}

// ---------------------------------------------------------------------------
// The fgcheck contract (tools/fgcheck.cpp): exit 0 = every stream ACCEPTed,
// exit 1 = a checker rule rejected a well-formed stream, exit 2 = a stream
// that would not even parse. StreamResult.malformed carries the 1-vs-2
// distinction out of cert::check_stream; over several inputs fgcheck
// reports the most severe outcome.

/// A stream that parses cleanly but fails a checker rule (inflated cost).
std::string rejected_stream_text() {
  cert::WaveCertificate c = parse_first_golden_wave();
  c.cost.rounds = 1 << 20;
  std::ostringstream os;
  c.save(os);
  return os.str();
}

/// A stream that fails to parse (unsupported version line).
std::string malformed_stream_text() {
  std::string text = read_file(fixture_path("golden_central.cert"));
  EXPECT_EQ(text.rfind("fgcert 1\n", 0), 0u);
  text.replace(0, 8, "fgcert 2");
  return text;
}

TEST(CertificateNegative, MalformedFlagSeparatesParseFromRuleFailures) {
  {
    std::istringstream is(read_file(fixture_path("golden_central.cert")));
    cert::StreamResult res = cert::check_stream(is);
    ASSERT_TRUE(res.ok) << res.diagnostic;
    EXPECT_FALSE(res.malformed);
  }
  {
    std::istringstream is(rejected_stream_text());
    cert::StreamResult res = cert::check_stream(is);
    ASSERT_FALSE(res.ok);
    EXPECT_FALSE(res.malformed) << "rule rejection misreported as parse "
                                   "failure: " << res.diagnostic;
  }
  {
    std::istringstream is(malformed_stream_text());
    cert::StreamResult res = cert::check_stream(is);
    ASSERT_FALSE(res.ok);
    EXPECT_TRUE(res.malformed) << "parse failure misreported as rule "
                                  "rejection: " << res.diagnostic;
  }
}

TEST(CertificateNegative, FgcheckExitCodesPinned) {
  auto write_stream = [](const std::string& name, const std::string& content) {
    const std::string path = testing::TempDir() + "/" + name;
    std::ofstream out(path);
    EXPECT_TRUE(out.is_open());
    out << content;
    return path;
  };
  const std::string good =
      write_stream("fgcheck_good.cert", read_file(fixture_path("golden_central.cert")));
  const std::string rejected =
      write_stream("fgcheck_rejected.cert", rejected_stream_text());
  const std::string malformed =
      write_stream("fgcheck_malformed.cert", malformed_stream_text());

  auto fgcheck = [](const std::vector<std::string>& paths) {
    std::string cmd(FG_FGCHECK_BIN);
    for (const std::string& p : paths) cmd += " " + p;
    cmd += " > /dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    EXPECT_NE(status, -1);
    return WEXITSTATUS(status);
  };
  EXPECT_EQ(fgcheck({good}), 0);
  EXPECT_EQ(fgcheck({rejected}), 1);
  EXPECT_EQ(fgcheck({malformed}), 2);
  // Several inputs: the most severe outcome wins, independent of order.
  EXPECT_EQ(fgcheck({good, rejected}), 1);
  EXPECT_EQ(fgcheck({rejected, good}), 1);
  EXPECT_EQ(fgcheck({good, rejected, malformed}), 2);
  EXPECT_EQ(fgcheck({malformed, rejected, good}), 2);
}

}  // namespace
}  // namespace fg
