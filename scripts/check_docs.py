#!/usr/bin/env python3
"""Docs consistency gate (run by the CI docs job and locally).

1. Every intra-repo markdown link in README.md, ROADMAP.md, CHANGES.md and
   docs/*.md must resolve to an existing file (anchors are stripped;
   external http(s)/mailto links are ignored).
2. Every snippet embedded in docs/*.md between `<!-- BEGIN <file> -->` /
   `<!-- END <file> -->` markers must be byte-identical to examples/<file>
   (quickstart.cpp, sharded_quickstart.cpp, ...).
3. docs/CONCURRENCY.md stays in sync with the code it documents: every
   API name its "## API surface" section attributes to a header must
   literally appear in that header, and the canonical contract-C4 wording
   ("schedule-independent commit") must appear both in the doc and in the
   headers that claim it.
4. The Graph access API stays in sync: the sorted-view surface
   (NeighborView, EdgeDelta, apply_edge_deltas, ...) must appear both in
   docs/API.md and as code tokens in src/graph/graph.h, FlatCountMap must
   exist and be named by docs/DESIGN.md, and unordered_set must never
   reappear in the Graph header.
4b. The repair path stays hash-free: no unordered_map/unordered_set code
   token in the structural core, the sharded forest, or the dist engine
   (the PR-8 flat-container acceptance criterion — SlotTable, sorted-flat
   analysis sets, and binary-searched DAG knowledge replaced them all).
5. The healer-service surface stays in sync: the serving-loop names
   (HealerService, ChurnOp, certify_every, ...) must appear both in
   docs/API.md and as code tokens in src/fg/healer_service.h, and
   docs/DESIGN.md must keep its "Healer service" section.
5b. The self-stabilization surface stays in sync: the audit/recovery
   names (Stabilizer, AuditReport, ViolationKind, ...) must appear both
   in docs/API.md and as code tokens in src/fg/stabilizer.h,
   docs/SELF_STABILIZATION.md must exist and name every violation-kind
   string the auditor can report, and docs/DESIGN.md must keep its
   "Self-stabilizing recovery" section.
6. The certificate subsystem keeps its independence guarantee
   (docs/CERTIFICATES.md): src/cert sources never include engine headers
   (fg/, harness/, heal/, net/, adversary/), the fgcheck link line in
   CMakeLists.txt names fg_cert only (never fg_core), the cert API names
   documented in docs/CERTIFICATES.md exist as code tokens in their
   headers, and the "fgcert 1" format version string matches between the
   doc and src/cert/certificate.h.

Exits non-zero with a per-problem report on any violation.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files():
    for name in ("README.md", "ROADMAP.md", "CHANGES.md"):
        p = REPO / name
        if p.exists():
            yield p
    yield from sorted((REPO / "docs").glob("*.md"))


def check_links():
    problems = []
    for md in markdown_files():
        in_fence = False
        for lineno, line in enumerate(md.read_text().splitlines(), 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:  # code, not markdown: [&](NodeId x) is not a link
                continue
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                path = target.split("#", 1)[0]
                if not path:  # pure in-page anchor
                    continue
                resolved = (md.parent / path).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{md.relative_to(REPO)}:{lineno}: broken link -> {target}")
    return problems


# Snippets that must exist somewhere in docs/ (a deleted marker pair would
# otherwise silently drop the check).
REQUIRED_SNIPPETS = (
    "quickstart.cpp",
    "sharded_quickstart.cpp",
    "healer_service_quickstart.cpp",
)

SNIPPET_RE = re.compile(
    r"<!-- BEGIN (?P<name>[\w.\-]+) -->\n```cpp\n(?P<body>.*?)```\n<!-- END (?P=name) -->",
    re.S,
)


def check_snippet_sync():
    problems = []
    seen = set()
    for md in markdown_files():
        for m in SNIPPET_RE.finditer(md.read_text()):
            name = m.group("name")
            seen.add(name)
            example = REPO / "examples" / name
            if not example.exists():
                problems.append(
                    f"{md.relative_to(REPO)}: snippet marker {name} has no examples/{name}")
                continue
            if m.group("body") != example.read_text():
                problems.append(
                    f"{md.relative_to(REPO)}: embedded {name} snippet differs from "
                    f"examples/{name} — copy the file verbatim between the markers")
    for name in REQUIRED_SNIPPETS:
        if name not in seen:
            problems.append(f"docs: required snippet markers for {name} missing")
    return problems


# The canonical C4 phrase: the concurrency doc pins it, and the headers
# that promise it must keep using the same words (a silent rewording in
# either place is drift).
C4_PHRASE = "schedule-independent commit"
C4_FILES = (
    "docs/CONCURRENCY.md",
    "src/fg/sharded_forest.h",
    "src/fg/core/structural_core.h",
)

# "- `src/...h` — `name`, `name`, ..." bullets of the API surface section.
API_ENTRY_RE = re.compile(r"- `(?P<header>src/[^`]+)` — (?P<names>.*?)(?=\n- |\n\n|\Z)", re.S)
API_NAME_RE = re.compile(r"`([^`]+)`")

COMMENT_RE = re.compile(r"//[^\n]*|/\*.*?\*/", re.S)


def header_code(path):
    """Header text with comments stripped: an API name must survive as a
    code token, not merely appear in prose (otherwise short names like
    `commit` could never fail the check)."""
    return COMMENT_RE.sub("", path.read_text())


def check_concurrency_sync():
    doc = REPO / "docs" / "CONCURRENCY.md"
    if not doc.exists():
        return ["docs/CONCURRENCY.md: missing (the concurrency model doc is required)"]
    problems = []
    text = doc.read_text()

    for rel in C4_FILES:
        path = REPO / rel
        if not path.exists():
            problems.append(f"{rel}: missing, but docs/CONCURRENCY.md documents it")
        elif C4_PHRASE not in path.read_text():
            problems.append(
                f"{rel}: C4 wording drifted — must contain the canonical phrase "
                f"\"{C4_PHRASE}\" (docs/CONCURRENCY.md pins it)")

    marker = "## API surface"
    if marker not in text:
        return problems + [
            "docs/CONCURRENCY.md: missing the '## API surface' section the sync check reads"]
    section = text.split(marker, 1)[1]
    entries = API_ENTRY_RE.findall(section)
    if not entries:
        problems.append("docs/CONCURRENCY.md: API surface section lists no headers")
    for header, names in entries:
        path = REPO / header
        if not path.exists():
            problems.append(f"docs/CONCURRENCY.md: API surface names missing header {header}")
            continue
        code = header_code(path)
        for name in API_NAME_RE.findall(names):
            if not re.search(r"\b" + re.escape(name) + r"\b", code):
                problems.append(
                    f"docs/CONCURRENCY.md: `{name}` is attributed to {header} "
                    "but does not appear in its code — update the doc or the header")
    return problems


# The Graph access API gate: the sorted-view surface documented in
# docs/API.md and docs/DESIGN.md must exist as code tokens in its header,
# and the redesign's acceptance criterion — no unordered_set anywhere in
# the Graph public API — is pinned here so it cannot silently regress.
GRAPH_API_NAMES = (
    "NeighborView",
    "EdgeDelta",
    "apply_edge_deltas",
    "for_each_neighbor",
    "neighbors",
)
GRAPH_HEADER = "src/graph/graph.h"
FLAT_MAP_HEADER = "src/util/flat_count_map.h"

# The hash-free repair path (PR 8): these files must never regrow an
# unordered container — the hot paths run on SlotTable, sorted-flat
# victim/dirty sets, and binary-searched DAG knowledge instead.
FLAT_ONLY_FILES = (
    "src/fg/core/structural_core.h",
    "src/fg/core/structural_core.cpp",
    "src/fg/core/slot_table.h",
    "src/fg/sharded_forest.h",
    "src/fg/sharded_forest.cpp",
    "src/fg/dist/dist_forgiving_graph.h",
    "src/fg/dist/dist_forgiving_graph.cpp",
)


def check_graph_api_sync():
    problems = []
    header = REPO / GRAPH_HEADER
    api_md = (REPO / "docs" / "API.md").read_text()
    design_md = (REPO / "docs" / "DESIGN.md").read_text()
    if not header.exists():
        return [f"{GRAPH_HEADER}: missing, but the docs document its API"]
    code = header_code(header)
    for name in GRAPH_API_NAMES:
        if not re.search(r"\b" + re.escape(name) + r"\b", code):
            problems.append(
                f"{GRAPH_HEADER}: documented Graph API name `{name}` does not "
                "appear in its code — update docs/API.md or the header")
        if name not in api_md:
            problems.append(
                f"docs/API.md: Graph API name `{name}` is undocumented — the "
                "Graph section must cover the full access surface")
    if re.search(r"\bunordered_set\b", code):
        problems.append(
            f"{GRAPH_HEADER}: unordered_set crept back into the Graph API — "
            "neighbors() must stay a sorted flat view (docs/DESIGN.md, "
            "'Graph substrate')")
    for rel in FLAT_ONLY_FILES:
        path = REPO / rel
        if not path.exists():
            problems.append(f"{rel}: missing, but the flat-container ban covers it")
            continue
        if re.search(r"\bunordered_(?:map|set)\b", header_code(path)):
            problems.append(
                f"{rel}: unordered_map/unordered_set crept back into the "
                "repair path — the core, the sharded forest, and the dist "
                "engine are sorted-flat only (SlotTable, binary-searched "
                "analysis sets; docs/DESIGN.md, docs/CONCURRENCY.md)")
    flat_map = REPO / FLAT_MAP_HEADER
    if not flat_map.exists():
        problems.append(
            f"{FLAT_MAP_HEADER}: missing, but docs/DESIGN.md documents the "
            "flat multiplicity map")
    elif not re.search(r"\bFlatCountMap\b", header_code(flat_map)):
        problems.append(f"{FLAT_MAP_HEADER}: FlatCountMap not found in its code")
    if "FlatCountMap" not in design_md:
        problems.append(
            "docs/DESIGN.md: the substrate section must name FlatCountMap "
            "(the image-multiplicity representation)")
    return problems


# The healer-service gate: the serving-loop surface documented in
# docs/API.md and docs/DESIGN.md must exist as code tokens in its header,
# and both docs must actually carry their sections (a deleted heading
# would silently orphan the quickstart and the API table).
HEALER_HEADER = "src/fg/healer_service.h"
HEALER_API_NAMES = (
    "HealerService",
    "HealerConfig",
    "HealerStats",
    "ChurnOp",
    "ChurnStream",
    "VectorChurnStream",
    "wave_size",
    "certify_every",
    "push",
    "flush",
    "run",
    "set_alert",
    "set_certificate_stream",
    "set_admission_hook",
    "break_workers",
    "stale_replans",
    "cert_rejections",
    "latency_percentile",
    "audit_every",
    "audits",
    "audit_violations",
    "recoveries",
)


def check_healer_service_sync():
    problems = []
    header = REPO / HEALER_HEADER
    api_md = (REPO / "docs" / "API.md").read_text()
    design_md = (REPO / "docs" / "DESIGN.md").read_text()
    if not header.exists():
        return [f"{HEALER_HEADER}: missing, but the docs document its API"]
    code = header_code(header)
    for name in HEALER_API_NAMES:
        if not re.search(r"\b" + re.escape(name) + r"\b", code):
            problems.append(
                f"{HEALER_HEADER}: documented healer-service API name `{name}` "
                "does not appear in its code — update docs/API.md or the header")
        if name not in api_md:
            problems.append(
                f"docs/API.md: healer-service API name `{name}` is "
                "undocumented — the HealerService section must cover the "
                "full serving-loop surface")
    if "## Healer service" not in design_md:
        problems.append(
            "docs/DESIGN.md: missing the 'Healer service' section "
            "(snapshot-based planning, epoch-gated admission, sampled "
            "certificate guardrail)")
    if "fg/healer_service.h" not in api_md:
        problems.append(
            "docs/API.md: the HealerService section must name its header "
            "(fg/healer_service.h)")
    return problems


# The self-stabilization gate: the audit/recovery surface documented in
# docs/API.md must exist as code tokens in src/fg/stabilizer.h, the
# dedicated doc must exist and cover every violation-kind string the
# auditor can report (its rules table mirrors the ViolationKind enum),
# and docs/DESIGN.md must keep its recovery section.
STABILIZER_HEADER = "src/fg/stabilizer.h"
STABILIZER_API_NAMES = (
    "Stabilizer",
    "AuditReport",
    "AuditViolation",
    "ViolationKind",
    "RecoveryStats",
    "violation_kind_name",
    "audit",
    "stabilize",
    "clean",
    "summary",
)
VIOLATION_KIND_NAMES = (
    "row-link", "row-aggregate", "row-ownership", "row-slot-backing",
    "rep-invariant", "helper-ancestry", "slot-ghost", "slot-edge",
    "missing-anchor", "split-dead-cluster", "image-drift",
    "multiplicity-drift",
)


def check_stabilizer_sync():
    problems = []
    header = REPO / STABILIZER_HEADER
    doc = REPO / "docs" / "SELF_STABILIZATION.md"
    api_md = (REPO / "docs" / "API.md").read_text()
    design_md = (REPO / "docs" / "DESIGN.md").read_text()
    if not header.exists():
        return [f"{STABILIZER_HEADER}: missing, but the docs document its API"]
    if not doc.exists():
        return ["docs/SELF_STABILIZATION.md: missing (the recovery-mode doc "
                "is required)"]
    code = header_code(header)
    for name in STABILIZER_API_NAMES:
        if not re.search(r"\b" + re.escape(name) + r"\b", code):
            problems.append(
                f"{STABILIZER_HEADER}: documented stabilizer API name "
                f"`{name}` does not appear in its code — update docs/API.md "
                "or the header")
        if name not in api_md:
            problems.append(
                f"docs/API.md: stabilizer API name `{name}` is undocumented "
                "— the Stabilizer section must cover the audit/recovery "
                "surface")
    doc_text = doc.read_text()
    stabilizer_cpp = (REPO / "src" / "fg" / "stabilizer.cpp").read_text()
    for kind in VIOLATION_KIND_NAMES:
        if f'"{kind}"' not in stabilizer_cpp:
            problems.append(
                f"src/fg/stabilizer.cpp: violation kind string \"{kind}\" "
                "not found — the doc's rules table and the enum drifted")
        if f"`{kind}`" not in doc_text:
            problems.append(
                f"docs/SELF_STABILIZATION.md: violation kind `{kind}` is "
                "undocumented — the auditor rules table must mirror "
                "ViolationKind")
    if "## Self-stabilizing recovery" not in design_md:
        problems.append(
            "docs/DESIGN.md: missing the 'Self-stabilizing recovery' section "
            "(audit rules, quarantine closure, pipeline-reusing recovery)")
    if "audit_every" not in doc_text:
        problems.append(
            "docs/SELF_STABILIZATION.md: must describe the serving-loop "
            "wiring (HealerConfig::audit_every)")
    return problems


# The snapshot-subsystem gate (docs/SNAPSHOTS.md): the doc must exist, its
# "## API surface" names must be code tokens in the headers they are
# attributed to, the key producer/consumer names must be documented in
# docs/API.md, the "fgsnap 1" format version string must match between the
# doc and src/snap/snapshot.h, the fgsnap link line must name fg_snap and
# never an engine library (the independence argument, mirroring fgcheck),
# and docs/DESIGN.md must keep its "Durable snapshots" section.
SNAP_VERSION = "fgsnap 1"
SNAP_API_MD_NAMES = (
    "SnapshotWriter",
    "SnapshotRecorder",
    "restore_snapshot",
    "SnapshotRestore",
    "snapshot_every",
    "snapshot_path",
    "to_base_image",
    "from_base_image",
    "apply_wave_delta",
    "try_load",
)


def check_snapshot_sync():
    doc = REPO / "docs" / "SNAPSHOTS.md"
    if not doc.exists():
        return ["docs/SNAPSHOTS.md: missing (the snapshot-format doc is required)"]
    problems = []
    doc_text = doc.read_text()
    api_md = (REPO / "docs" / "API.md").read_text()
    design_md = (REPO / "docs" / "DESIGN.md").read_text()

    marker = "## API surface"
    if marker not in doc_text:
        problems.append(
            "docs/SNAPSHOTS.md: missing the '## API surface' section the sync "
            "check reads")
    else:
        section = doc_text.split(marker, 1)[1]
        entries = API_ENTRY_RE.findall(section)
        if not entries:
            problems.append("docs/SNAPSHOTS.md: API surface section lists no headers")
        for header, names in entries:
            path = REPO / header
            if not path.exists():
                problems.append(
                    f"docs/SNAPSHOTS.md: API surface names missing header {header}")
                continue
            code = header_code(path)
            for name in API_NAME_RE.findall(names):
                if not re.search(r"\b" + re.escape(name) + r"\b", code):
                    problems.append(
                        f"docs/SNAPSHOTS.md: `{name}` is attributed to {header} "
                        "but does not appear in its code — update the doc or "
                        "the header")

    for name in SNAP_API_MD_NAMES:
        if name not in api_md:
            problems.append(
                f"docs/API.md: snapshot API name `{name}` is undocumented — "
                "the durable-snapshot section must cover the producer and "
                "restore surface")

    snap_header = (REPO / "src" / "snap" / "snapshot.h").read_text()
    if f'"{SNAP_VERSION}' not in snap_header:
        problems.append(
            f"src/snap/snapshot.h: format magic \"{SNAP_VERSION}\" not found "
            "— bumping the version means updating this gate and "
            "docs/SNAPSHOTS.md together")
    if f"`{SNAP_VERSION}`" not in doc_text:
        problems.append(
            f"docs/SNAPSHOTS.md: must name the current format version "
            f"(`{SNAP_VERSION}`) — the grammar section is versioned")

    cmake = (REPO / "CMakeLists.txt").read_text()
    link = re.search(r"target_link_libraries\(fgsnap\b([^)]*)\)", cmake)
    if link is None:
        problems.append("CMakeLists.txt: no fgsnap link line found")
    elif (re.search(r"\bfg_core\b", link.group(1)) or
          re.search(r"\bfg_graph\b", link.group(1)) or
          "fg_snap" not in link.group(1)):
        problems.append(
            "CMakeLists.txt: fgsnap must link fg_snap and never an engine "
            "library — a verifier with engine code linked in defeats the "
            "audit (docs/SNAPSHOTS.md)")

    if "## Durable snapshots" not in design_md:
        problems.append(
            "docs/DESIGN.md: missing the 'Durable snapshots' section (base "
            "images, delta log, crash-consistency rules, restore-audit flow)")
    return problems


# The certificate independence gate. The whole value of tools/fgcheck is
# that it cannot share a defect with the engines it audits; that property
# lives in two places the compiler does not enforce: the src/cert include
# list and the fgcheck link line. Both are pinned here, along with the
# doc/code sync for the cert API surface and the format version string.
CERT_VERSION = "fgcert 1"
CERT_FORBIDDEN_INCLUDE_RE = re.compile(
    r'#include\s+"(?:fg|harness|heal|net|adversary)/')
CERT_API_NAMES = {
    "src/cert/certificate.h": (
        "WaveCertificate", "RegionCert", "RtNode", "DegreeClaim",
        "StretchWitness", "EdgeFact", "CostClaim", "CheckResult",
        "StreamResult", "malformed", "check_stream", "structural_text",
        "kDegreeConstant",
    ),
    "src/harness/certificate.h": (
        "CertificateSink", "CertificateWriter", "CertificateCollector",
    ),
}


def check_certificate_independence():
    doc = REPO / "docs" / "CERTIFICATES.md"
    if not doc.exists():
        return ["docs/CERTIFICATES.md: missing (the certificate doc is required)"]
    problems = []
    doc_text = doc.read_text()

    for src in sorted((REPO / "src" / "cert").glob("*.*")):
        for lineno, line in enumerate(src.read_text().splitlines(), 1):
            if CERT_FORBIDDEN_INCLUDE_RE.search(line):
                problems.append(
                    f"{src.relative_to(REPO)}:{lineno}: engine include in the "
                    "certificate checker — src/cert must stay independent of "
                    "the code it audits (docs/CERTIFICATES.md)")

    cmake = (REPO / "CMakeLists.txt").read_text()
    link = re.search(r"target_link_libraries\(fgcheck\b([^)]*)\)", cmake)
    if link is None:
        problems.append("CMakeLists.txt: no fgcheck link line found")
    elif re.search(r"\bfg_core\b", link.group(1)) or "fg_cert" not in link.group(1):
        problems.append(
            "CMakeLists.txt: fgcheck must link fg_cert and never fg_core — "
            "an fgcheck with engine code linked in defeats the audit "
            "(docs/CERTIFICATES.md)")

    for rel, names in CERT_API_NAMES.items():
        path = REPO / rel
        if not path.exists():
            problems.append(f"{rel}: missing, but docs/CERTIFICATES.md documents it")
            continue
        code = header_code(path)
        for name in names:
            if not re.search(r"\b" + re.escape(name) + r"\b", code):
                problems.append(
                    f"{rel}: documented certificate API name `{name}` does "
                    "not appear in its code — update docs/CERTIFICATES.md or "
                    "the header")
            if name not in doc_text:
                problems.append(
                    f"docs/CERTIFICATES.md: certificate API name `{name}` is "
                    "undocumented — the doc must cover the full surface")

    cert_header = (REPO / "src" / "cert" / "certificate.h").read_text()
    if f'"{CERT_VERSION}"' not in cert_header:
        problems.append(
            f"src/cert/certificate.h: format version string \"{CERT_VERSION}\" "
            "not found — bumping the version means updating this gate and "
            "docs/CERTIFICATES.md together")
    if f"`{CERT_VERSION}`" not in doc_text:
        problems.append(
            f"docs/CERTIFICATES.md: must name the current format version "
            f"(`{CERT_VERSION}`) — the grammar section is versioned")
    return problems


def main():
    problems = (check_links() + check_snippet_sync() + check_concurrency_sync() +
                check_graph_api_sync() + check_healer_service_sync() +
                check_stabilizer_sync() + check_snapshot_sync() +
                check_certificate_independence())
    for p in problems:
        print(p, file=sys.stderr)
    if problems:
        sys.exit(1)
    print(f"docs OK: {sum(1 for _ in markdown_files())} markdown files, "
          "links resolve, example snippets in sync, CONCURRENCY.md API names "
          "and C4 wording match the headers, Graph view API in sync (no "
          "unordered_set in the surface), healer-service API in sync, "
          "stabilizer API and violation kinds in sync, snapshot format/API "
          "in sync (fgsnap link line engine-free), certificate checker "
          "independent (includes + fgcheck link line) and its API/version "
          "in sync")


if __name__ == "__main__":
    main()
