#!/usr/bin/env python3
"""Docs consistency gate (run by the CI docs job and locally).

1. Every intra-repo markdown link in README.md, ROADMAP.md, CHANGES.md and
   docs/*.md must resolve to an existing file (anchors are stripped;
   external http(s)/mailto links are ignored).
2. The quickstart snippet embedded in docs/API.md between the
   `<!-- BEGIN quickstart.cpp -->` / `<!-- END quickstart.cpp -->` markers
   must be byte-identical to examples/quickstart.cpp.

Exits non-zero with a per-problem report on any violation.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files():
    for name in ("README.md", "ROADMAP.md", "CHANGES.md"):
        p = REPO / name
        if p.exists():
            yield p
    yield from sorted((REPO / "docs").glob("*.md"))


def check_links():
    problems = []
    for md in markdown_files():
        in_fence = False
        for lineno, line in enumerate(md.read_text().splitlines(), 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:  # code, not markdown: [&](NodeId x) is not a link
                continue
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                path = target.split("#", 1)[0]
                if not path:  # pure in-page anchor
                    continue
                resolved = (md.parent / path).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{md.relative_to(REPO)}:{lineno}: broken link -> {target}")
    return problems


def check_quickstart_sync():
    api = REPO / "docs" / "API.md"
    example = REPO / "examples" / "quickstart.cpp"
    text = api.read_text()
    m = re.search(
        r"<!-- BEGIN quickstart\.cpp -->\n```cpp\n(.*?)```\n<!-- END quickstart\.cpp -->",
        text,
        re.S,
    )
    if not m:
        return [f"{api.relative_to(REPO)}: quickstart markers missing"]
    if m.group(1) != example.read_text():
        return [
            f"{api.relative_to(REPO)}: embedded quickstart snippet differs from "
            f"{example.relative_to(REPO)} — copy the file verbatim between the markers"
        ]
    return []


def main():
    problems = check_links() + check_quickstart_sync()
    for p in problems:
        print(p, file=sys.stderr)
    if problems:
        sys.exit(1)
    print(f"docs OK: {sum(1 for _ in markdown_files())} markdown files, "
          "links resolve, quickstart snippet in sync")


if __name__ == "__main__":
    main()
