#!/usr/bin/env python3
"""Docs consistency gate (run by the CI docs job and locally).

1. Every intra-repo markdown link in README.md, ROADMAP.md, CHANGES.md and
   docs/*.md must resolve to an existing file (anchors are stripped;
   external http(s)/mailto links are ignored).
2. Every snippet embedded in docs/*.md between `<!-- BEGIN <file> -->` /
   `<!-- END <file> -->` markers must be byte-identical to examples/<file>
   (quickstart.cpp, sharded_quickstart.cpp, ...).

Exits non-zero with a per-problem report on any violation.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files():
    for name in ("README.md", "ROADMAP.md", "CHANGES.md"):
        p = REPO / name
        if p.exists():
            yield p
    yield from sorted((REPO / "docs").glob("*.md"))


def check_links():
    problems = []
    for md in markdown_files():
        in_fence = False
        for lineno, line in enumerate(md.read_text().splitlines(), 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:  # code, not markdown: [&](NodeId x) is not a link
                continue
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                path = target.split("#", 1)[0]
                if not path:  # pure in-page anchor
                    continue
                resolved = (md.parent / path).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{md.relative_to(REPO)}:{lineno}: broken link -> {target}")
    return problems


# Snippets that must exist somewhere in docs/ (a deleted marker pair would
# otherwise silently drop the check).
REQUIRED_SNIPPETS = ("quickstart.cpp", "sharded_quickstart.cpp")

SNIPPET_RE = re.compile(
    r"<!-- BEGIN (?P<name>[\w.\-]+) -->\n```cpp\n(?P<body>.*?)```\n<!-- END (?P=name) -->",
    re.S,
)


def check_snippet_sync():
    problems = []
    seen = set()
    for md in markdown_files():
        for m in SNIPPET_RE.finditer(md.read_text()):
            name = m.group("name")
            seen.add(name)
            example = REPO / "examples" / name
            if not example.exists():
                problems.append(
                    f"{md.relative_to(REPO)}: snippet marker {name} has no examples/{name}")
                continue
            if m.group("body") != example.read_text():
                problems.append(
                    f"{md.relative_to(REPO)}: embedded {name} snippet differs from "
                    f"examples/{name} — copy the file verbatim between the markers")
    for name in REQUIRED_SNIPPETS:
        if name not in seen:
            problems.append(f"docs: required snippet markers for {name} missing")
    return problems


def main():
    problems = check_links() + check_snippet_sync()
    for p in problems:
        print(p, file=sys.stderr)
    if problems:
        sys.exit(1)
    print(f"docs OK: {sum(1 for _ in markdown_files())} markdown files, "
          "links resolve, example snippets in sync")


if __name__ == "__main__":
    main()
