// Sharded quickstart: the plan/commit pipeline in forty lines.
//
// A deletion wave splits into connected dirty regions; disjoint regions are
// planned concurrently on a worker pool and committed in deterministic
// region order, so the healed topology is bit-identical at any worker
// count (Healer contract C4).
//
//   $ ./examples/sharded_quickstart
#include <iostream>

#include "fg/forgiving_graph.h"
#include "graph/algorithms.h"
#include "graph/generators.h"

int main() {
  using namespace fg;

  // A ring of 64 processors; plan phases fan out over 4 workers.
  ForgivingGraph network(make_cycle(64));
  network.set_shard_workers(4);

  // Three victims far apart on the ring: three disjoint dirty regions.
  std::vector<NodeId> wave{8, 24, 40};

  // Plan (read-only, concurrent) — inspect it before committing.
  core::RepairPlan plan = network.plan_delete_batch(wave);
  std::cout << "wave of " << wave.size() << " victims -> " << plan.regions.size()
            << " disjoint regions\n";
  for (const core::RegionPlan& region : plan.regions)
    std::cout << "  region " << region.id << ": " << region.victims.size()
              << " victim(s), " << region.pieces.size() << " pieces, "
              << region.steps.size() << " joins\n";

  // Commit (single-threaded, deterministic region order). delete_batch is
  // exactly plan_delete_batch + commit_delete_batch.
  network.commit_delete_batch(plan);

  std::cout << "healed: connected = " << std::boolalpha
            << is_connected(network.healed()) << ", regions healed = "
            << network.last_repair().regions << ", region of each victim:";
  for (int r : network.last_region_assignment()) std::cout << ' ' << r;
  std::cout << '\n';
  return 0;
}
