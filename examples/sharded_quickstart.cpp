// Sharded quickstart: the plan/commit pipeline in forty lines.
//
// A deletion wave splits into connected dirty regions; disjoint regions
// are planned concurrently on a worker pool, and their merges may commit
// concurrently too — the plan's arena-id reservation fixes every
// virtual-node handle at plan time, so the healed structure is
// byte-identical at any worker count on either side (Healer contract C4,
// docs/CONCURRENCY.md).
//
//   $ ./examples/sharded_quickstart
#include <iostream>

#include "fg/forgiving_graph.h"
#include "graph/algorithms.h"
#include "graph/generators.h"

int main() {
  using namespace fg;

  // A ring of 64 processors; plans fan out over 4 workers, and the
  // commit's region merges draw from a 4-worker pool as well.
  ForgivingGraph network(make_cycle(64));
  network.set_shard_workers(4);
  network.set_commit_workers(4);

  // Three victims far apart on the ring: three disjoint dirty regions.
  std::vector<NodeId> wave{8, 24, 40};

  // Plan (read-only, concurrent) — inspect it before committing.
  core::RepairPlan plan = network.plan_delete_batch(wave);
  std::cout << "wave of " << wave.size() << " victims -> " << plan.regions.size()
            << " disjoint regions\n";
  for (const core::RegionPlan& region : plan.regions)
    std::cout << "  region " << region.id << ": " << region.victims.size()
              << " victim(s), " << region.pieces.size() << " pieces, "
              << region.steps.size() << " joins\n";

  // Commit (deterministic: break in region order, merges on the commit
  // pool, reserved arena handles). delete_batch is exactly
  // plan_delete_batch + commit_delete_batch.
  network.commit_delete_batch(plan);

  std::cout << "healed: connected = " << std::boolalpha
            << is_connected(network.healed()) << ", regions healed = "
            << network.last_repair().regions << ", region of each victim:";
  for (int r : network.last_region_assignment()) std::cout << ' ' << r;
  std::cout << '\n';
  return 0;
}
