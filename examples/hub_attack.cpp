// Hub attack — the lower-bound scenario of Theorem 2.
//
// The adversary deletes the center of a 2048-leaf star, the single worst
// deletion a network can suffer: every pair of survivors was at distance 2
// through the hub. Any healer must now trade degree increase (alpha)
// against stretch (beta >= 0.5 * log_{alpha-1}(n-1)). The Forgiving Graph
// replaces the hub with a haft and lands on the optimal curve.
//
//   $ ./examples/hub_attack
#include <cmath>
#include <iostream>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "harness/metrics.h"
#include "heal/baselines.h"
#include "util/table.h"

int main() {
  using namespace fg;
  const int n = 2049;  // hub + 2048 leaves
  std::cout << "Deleting the hub of a " << (n - 1) << "-leaf star.\n"
            << "Theorem 2: beta >= 0.5*log_{alpha-1}(n-1) for any self-healer.\n\n";

  Table t{"strategy", "alpha (deg ratio)", "beta (stretch)", "Thm-2 bound", "edges added"};
  for (const char* strategy : {"forgiving", "kary:4", "kary:16", "line", "star"}) {
    Graph star = make_star(n);
    auto healer = make_healer(strategy, star);
    int64_t edges_before = healer->healed().edge_count();
    healer->remove(0);
    int64_t edges_after = healer->healed().edge_count();

    auto d = degree_stats(healer->healed(), healer->gprime());
    double beta = diameter_lower_bound(healer->healed()) / 2.0;
    double bound = d.max_ratio > 2.0
                       ? 0.5 * std::log(n - 2) / std::log(d.max_ratio - 1.0)
                       : std::numeric_limits<double>::infinity();
    t.add(healer->name(), fmt(d.max_ratio), fmt(beta),
          std::isinf(bound) ? "inf" : fmt(bound),
          std::to_string(edges_after - (edges_before - (n - 1))));
  }
  t.print(std::cout);

  std::cout << "\nReading the table: Line keeps degree tiny but stretches the ring to\n"
               "~n/4; Star keeps distances at 1 hop but one survivor inherits every\n"
               "edge; the Forgiving Graph pays factor <=3 degree for log2(n) stretch —\n"
               "the asymptotically optimal point on the Theorem-2 curve.\n";
  return 0;
}
