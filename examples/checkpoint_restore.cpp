// Operational runbook demo: checkpoint a live Forgiving Graph, keep
// attacking the original, then restore the checkpoint and replay the same
// attack trace — the restored network heals into exactly the same topology.
//
//   $ ./examples/checkpoint_restore
#include <iostream>
#include <sstream>

#include "fg/forgiving_graph.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "harness/trace.h"
#include "heal/healer.h"
#include "util/rng.h"

int main() {
  using namespace fg;
  Rng rng(2026);
  Graph g0 = make_barabasi_albert(64, 2, rng);
  ForgivingGraph network(g0);

  // Phase 1: absorb some damage.
  for (int i = 0; i < 20; ++i) {
    auto alive = network.healed().alive_nodes();
    network.remove(rng.pick(alive));
  }
  std::cout << "after 20 deletions: " << network.healed().alive_count()
            << " alive, connected = " << std::boolalpha
            << is_connected(network.healed()) << "\n";

  // Phase 2: checkpoint to a stream (a file in a real deployment).
  std::stringstream checkpoint;
  network.save(checkpoint);
  std::cout << "checkpoint size: " << checkpoint.str().size() << " bytes\n";

  // Phase 3: the attack continues; record it as a trace.
  Trace assault;
  for (int i = 0; i < 15; ++i) {
    auto alive = network.healed().alive_nodes();
    Action a{Action::Kind::kDelete, rng.pick(alive), {}, {}, {}};
    assault.record(a);
    network.remove(a.target);
  }

  // Phase 4: restore the checkpoint elsewhere and replay the same assault.
  ForgivingGraph restored = ForgivingGraph::load(checkpoint);
  restored.validate();
  for (const Action& a : assault.actions()) restored.remove(a.target);

  bool identical = network.healed().same_topology(restored.healed());
  std::cout << "restored replica after replaying the 15-deletion trace: topology "
            << (identical ? "IDENTICAL" : "DIVERGED") << "\n";
  std::cout << "degree ratio " << network.max_degree_ratio() << " (bound 3), connected = "
            << is_connected(restored.healed()) << "\n";
  return identical ? 0 : 1;
}
