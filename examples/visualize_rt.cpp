// Visualize Reconstruction Trees: emits Graphviz DOT for the virtual forest
// as deletions merge RTs — the pictures of Figures 2, 7 and 8, generated
// from live data structures.
//
//   $ ./examples/visualize_rt > rts.dot && dot -Tpng rts.dot -o rts.png
//
// (Each stage is printed as a separate digraph; split the file or pipe the
// stage you want into dot.)
#include <iostream>

#include "fg/forgiving_graph.h"
#include "graph/generators.h"

int main() {
  using namespace fg;
  // A path 0-1-2-3-4-5; deleting 2 then 3 merges their RTs (Figure 8).
  ForgivingGraph network(make_path(6));

  auto dump_rts = [&](const char* label) {
    std::cout << "// --- " << label << " ---\n";
    const VirtualForest& f = network.forest();
    for (VNodeId h = 0; h < f.arena_size(); ++h)
      if (f.exists(h) && f.node(h).parent == kNoVNode)
        std::cout << f.to_dot(h);
  };

  network.remove(2);
  dump_rts("after deleting 2: RT over the real nodes (1,2) and (3,2)");
  network.remove(3);
  dump_rts("after deleting 3: merged RT — leaf (3,2) died, RTs re-merged");

  // A star hub deletion for the Figure-2 picture.
  ForgivingGraph star(make_star(9));
  star.remove(0);
  std::cout << "// --- star(8 leaves) hub deletion: the haft of Figure 2 ---\n";
  const VirtualForest& f = star.forest();
  for (VNodeId h = 0; h < f.arena_size(); ++h)
    if (f.exists(h) && f.node(h).parent == kNoVNode) std::cout << f.to_dot(h);
  return 0;
}
