// Distributed protocol demo: watch the repair messages fly.
//
// Runs the full message-passing protocol (Algorithms A.1-A.9 over the
// round-synchronous simulator) on a small network and prints, per deletion,
// the protocol's cost sheet: anchors, pieces, messages, words, rounds —
// the quantities Lemma 4 bounds by O(d log n) messages and O(log d log n)
// rounds. Also cross-checks the distributed topology against the
// centralized reference engine at every step.
//
//   $ ./examples/distributed_demo
#include <iostream>

#include "fg/dist/dist_forgiving_graph.h"
#include "fg/forgiving_graph.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace fg;
  Rng rng(7);
  Graph g0 = make_erdos_renyi(64, 10.0 / 64, rng);
  std::cout << "64-node ER overlay; deleting 24 random nodes through the\n"
               "distributed protocol (message-passing simulator).\n\n";

  dist::DistForgivingGraph distributed(g0);
  ForgivingGraph reference(g0);

  Table t{"deleted", "G'-deg", "anchors", "pieces", "messages", "words", "rounds",
          "max msg", "topology == reference"};
  for (int i = 0; i < 24; ++i) {
    auto alive = reference.healed().alive_nodes();
    NodeId v = rng.pick(alive);
    distributed.remove(v);
    reference.remove(v);
    const auto& c = distributed.last_repair_cost();
    bool same = reference.healed().same_topology(distributed.image());
    t.add(v, c.deleted_degree, c.anchors, c.pieces, std::to_string(c.messages),
          std::to_string(c.words), c.rounds, c.max_message_words, same ? "yes" : "NO");
  }
  t.print(std::cout);

  Graph healed = distributed.image();
  std::cout << "\nAfter 24 deletions: " << healed.alive_count() << " alive, connected = "
            << std::boolalpha << is_connected(healed) << "\n";
  std::cout << "Lifetime traffic: " << distributed.lifetime_stats().messages
            << " messages, " << distributed.lifetime_stats().words << " words.\n";
  return 0;
}
