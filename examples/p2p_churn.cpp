// Peer-to-peer churn scenario — the paper's motivating workload.
//
// A 500-peer overlay suffers continuous churn: peers join (wired to three
// random existing peers) and crash, 1500 events at 55% departures. We
// compare the Forgiving Graph against doing nothing and against naive
// rewiring, reporting the paper's success metrics along the way.
//
//   $ ./examples/p2p_churn
#include <iostream>

#include "adversary/adversary.h"
#include "graph/generators.h"
#include "harness/experiment.h"
#include "haft/haft.h"
#include "heal/baselines.h"
#include "util/table.h"

int main() {
  using namespace fg;
  std::cout << "P2P overlay under churn: 500 peers, 1500 join/crash events\n\n";

  Table summary{"strategy", "alive at end", "max stretch seen", "degree blowup",
                "disconnected pairs", "verdict"};

  for (const char* strategy : {"forgiving", "line", "none"}) {
    Rng rng(4242);
    Graph overlay = make_erdos_renyi(500, 8.0 / 500, rng);
    auto healer = make_healer(strategy, overlay);
    ChurnAdversary churn(0.55, 3);
    RunConfig cfg;
    cfg.max_steps = 1500;
    cfg.sample_every = 300;
    cfg.stretch_sources = 24;
    auto res = run_experiment(*healer, churn, cfg, rng);

    std::string verdict;
    if (res.broken_pairs_total > 0)
      verdict = "network shattered";
    else if (res.worst_degree_ratio > 3.0 + 1e-9)
      verdict = "degree blowup";
    else
      verdict = "healthy";
    summary.add(healer->name(), res.final.alive, fmt(res.worst_stretch),
                fmt(res.worst_degree_ratio), std::to_string(res.broken_pairs_total),
                verdict);

    if (std::string(strategy) == "forgiving") {
      std::cout << "ForgivingGraph trajectory (bound: stretch <= ceil(log2 n)):\n";
      Table t{"event", "alive peers", "max stretch", "bound", "max deg ratio"};
      for (const auto& s : res.timeline)
        t.add(s.step, s.alive, fmt(s.stretch.max_stretch),
              std::max(1, haft::ceil_log2(s.total_inserted)), fmt(s.degree.max_ratio));
      t.print(std::cout);
      std::cout << '\n';
    }
  }

  std::cout << "Summary after 1500 churn events:\n";
  summary.print(std::cout);
  return 0;
}
