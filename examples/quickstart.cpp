// Quickstart: the Forgiving Graph public API in sixty lines.
//
// Build a small network, let an adversary delete nodes, and watch the data
// structure heal: connectivity is preserved, node degrees stay within 3x of
// their insertion-time degree, and distances stretch by at most log2(n).
//
//   $ ./examples/quickstart
#include <iostream>

#include "fg/forgiving_graph.h"
#include "graph/algorithms.h"
#include "graph/generators.h"

int main() {
  using namespace fg;

  // 1. Start from any connected network; here, a ring of 8 processors.
  Graph g0 = make_cycle(8);
  ForgivingGraph network(g0);

  // 2. Insertions connect a new processor to any alive subset.
  std::vector<NodeId> neighbors{0, 4};
  NodeId hub = network.insert(neighbors);
  std::cout << "inserted processor " << hub << " with edges to 0 and 4\n";

  // 3. An adversary deletes nodes; each deletion triggers a local repair
  //    that replaces the victim with a Reconstruction Tree of its
  //    neighbors, simulated by surviving processors.
  network.remove(0);
  network.remove(4);
  std::cout << "deleted processors 0 and 4\n";

  // 3b. Correlated failures can be healed in one repair round: a batch of
  //     victims dies simultaneously and one merged plan per connected dirty
  //     region rebuilds a Reconstruction Tree over that region's debris
  //     (see examples/sharded_quickstart.cpp for the plan/commit pipeline).
  std::vector<NodeId> wave{1, 5};
  network.delete_batch(wave);
  std::cout << "batch-deleted processors 1 and 5 in one repair round\n\n";

  // 4. The healed network G is still connected...
  const Graph& g = network.healed();
  std::cout << "healed network: " << g.alive_count() << " alive nodes, "
            << g.edge_count() << " edges, connected = " << std::boolalpha
            << is_connected(g) << "\n";

  // ...degrees stayed within the Theorem 1.1 bound...
  std::cout << "max degree ratio deg(v,G)/deg(v,G'): " << network.max_degree_ratio()
            << " (bound: 3)\n";

  // ...and distances are within log2(n) of the no-deletions graph G'.
  auto dg = bfs_distances(g, hub);
  auto dp = bfs_distances(network.gprime(), hub);
  std::cout << "sample distances from processor " << hub << " (healed vs G'):\n";
  for (NodeId v : g.alive_nodes())
    if (v != hub)
      std::cout << "  to " << v << ": " << dg[v] << " vs " << dp[v] << "\n";

  // 5. Repair telemetry for the last deletion.
  const RepairStats& r = network.last_repair();
  std::cout << "\nlast repair: " << r.pieces << " pieces merged, "
            << r.helpers_created << " helpers created, final RT over "
            << r.final_rt_leaves << " leaves\n";
  return 0;
}
