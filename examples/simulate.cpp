// Parameterizable simulation driver — run any (graph x adversary x healer)
// combination from the command line and get the paper's success metrics.
//
//   $ ./examples/simulate [graph] [n] [healer] [adversary] [steps] [seed]
//
// Defaults: er 512 forgiving random-delete 300 1.
// Graphs:     star path cycle grid er ba tree
// Healers:    forgiving forgiving-tree none line star binary-tree kary:<k>
// Adversaries: random-delete maxdeg-delete helper-load star-attack
//              churn:<p_delete> build-and-burn:<fanout>
//
// Set FG_CSV=1 to get CSV alongside the table.
#include <cstdlib>
#include <iostream>
#include <string>

#include "adversary/adversary.h"
#include "graph/generators.h"
#include "harness/experiment.h"
#include "haft/haft.h"
#include "heal/forgiving_tree.h"
#include "heal/healer.h"
#include "util/table.h"

namespace {

fg::Graph build(const std::string& kind, int n, fg::Rng& rng) {
  using namespace fg;
  if (kind == "star") return make_star(n);
  if (kind == "path") return make_path(n);
  if (kind == "cycle") return make_cycle(n);
  if (kind == "grid") {
    int side = 1;
    while (side * side < n) ++side;
    return make_grid(side, side);
  }
  if (kind == "er") return make_erdos_renyi(n, 8.0 / n, rng);
  if (kind == "ba") return make_barabasi_albert(n, 2, rng);
  if (kind == "tree") return make_random_tree(n, rng);
  std::cerr << "unknown graph kind: " << kind << "\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fg;
  std::string graph = argc > 1 ? argv[1] : "er";
  int n = argc > 2 ? std::atoi(argv[2]) : 512;
  std::string healer_name = argc > 3 ? argv[3] : "forgiving";
  std::string adversary_name = argc > 4 ? argv[4] : "random-delete";
  int steps = argc > 5 ? std::atoi(argv[5]) : 300;
  uint64_t seed = argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 1;

  Rng rng(seed);
  Graph g0 = build(graph, n, rng);
  auto healer = make_healer(healer_name, g0);
  auto adversary = make_adversary(adversary_name);

  std::cout << "simulate: graph=" << graph << " n=" << n << " healer=" << healer->name()
            << " adversary=" << adversary->name() << " steps=" << steps
            << " seed=" << seed << "\n\n";

  RunConfig cfg;
  cfg.max_steps = steps;
  cfg.sample_every = std::max(1, steps / 8);
  cfg.stretch_sources = 24;
  auto res = run_experiment(*healer, *adversary, cfg, rng);

  Table t{"step", "alive", "n seen", "max deg ratio", "max stretch", "avg stretch",
          "bound", "components"};
  auto row = [&](const Sample& s) {
    t.add(s.step, s.alive, s.total_inserted, fmt(s.degree.max_ratio),
          fmt(s.stretch.max_stretch), fmt(s.stretch.avg_stretch),
          std::max(1, haft::ceil_log2(std::max(2, s.total_inserted))), s.components);
  };
  for (const auto& s : res.timeline) row(s);
  row(res.final);
  t.print(std::cout);

  std::cout << "\nworst over run: degree ratio " << fmt(res.worst_degree_ratio)
            << ", stretch " << fmt(res.worst_stretch) << ", broken pairs "
            << res.broken_pairs_total << " (" << res.deletions << " deletions, "
            << res.insertions << " insertions)\n";
  return 0;
}
