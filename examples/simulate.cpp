// Parameterizable simulation driver — run any (graph x adversary x healer)
// combination from the command line and get the paper's success metrics.
//
//   $ ./examples/simulate [--certify[=FILE]] [--snapshot=PATH] [graph] [n] [healer] [adversary] [steps] [seed]
//
// Defaults: er 512 forgiving random-delete 300 1.
// Graphs:     star path cycle grid er ba tree
// Healers:    forgiving forgiving-tree none line star binary-tree kary:<k>
// Adversaries: random-delete maxdeg-delete helper-load star-attack
//              churn:<p_delete> build-and-burn:<fanout>
//
// --certify emits one repair certificate per committed deletion wave
// (docs/CERTIFICATES.md) — to FILE if given, else to stdout after the run —
// ready to pipe through the standalone verifier: ./fgcheck FILE. Only the
// forgiving healer has waves to certify.
//
// --snapshot=PATH keeps a durable snapshot of the run (docs/SNAPSHOTS.md):
// PATH.base gets the initial base image, PATH.log one CRC-framed delta
// record per committed repair wave. Inspect or verify the pair with the
// standalone tool: ./fgsnap verify PATH.base PATH.log. Forgiving healer
// only (the baselines have no structural core to snapshot).
//
// Set FG_CSV=1 to get CSV alongside the table.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "fg/snapshot_writer.h"

#include "adversary/adversary.h"
#include "graph/generators.h"
#include "harness/certificate.h"
#include "harness/experiment.h"
#include "haft/haft.h"
#include "heal/forgiving_tree.h"
#include "heal/healer.h"
#include "util/table.h"

namespace {

fg::Graph build(const std::string& kind, int n, fg::Rng& rng) {
  using namespace fg;
  if (kind == "star") return make_star(n);
  if (kind == "path") return make_path(n);
  if (kind == "cycle") return make_cycle(n);
  if (kind == "grid") {
    int side = 1;
    while (side * side < n) ++side;
    return make_grid(side, side);
  }
  if (kind == "er") return make_erdos_renyi(n, 8.0 / n, rng);
  if (kind == "ba") return make_barabasi_albert(n, 2, rng);
  if (kind == "tree") return make_random_tree(n, rng);
  std::cerr << "unknown graph kind: " << kind << "\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fg;
  bool certify = false;
  std::string certify_file;
  std::string snapshot_path;
  int arg0 = 1;
  while (argc > arg0 && std::string(argv[arg0]).rfind("--", 0) == 0) {
    std::string flag = argv[arg0];
    if (flag.rfind("--certify", 0) == 0) {
      certify = true;
      if (flag.size() > 10 && flag[9] == '=') certify_file = flag.substr(10);
    } else if (flag.rfind("--snapshot=", 0) == 0 && flag.size() > 11) {
      snapshot_path = flag.substr(11);
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return 2;
    }
    ++arg0;
  }
  auto arg = [&](int i, const char* dflt) {
    return argc > arg0 + i ? std::string(argv[arg0 + i]) : std::string(dflt);
  };
  std::string graph = arg(0, "er");
  int n = std::atoi(arg(1, "512").c_str());
  std::string healer_name = arg(2, "forgiving");
  std::string adversary_name = arg(3, "random-delete");
  int steps = std::atoi(arg(4, "300").c_str());
  uint64_t seed = std::strtoull(arg(5, "1").c_str(), nullptr, 10);

  Rng rng(seed);
  Graph g0 = build(graph, n, rng);
  auto healer = make_healer(healer_name, g0);
  auto adversary = make_adversary(adversary_name);

  std::ostringstream cert_buf;
  harness::CertificateWriter cert_writer(cert_buf);
  if (certify) {
    auto* fgh = dynamic_cast<ForgivingGraphHealer*>(healer.get());
    if (fgh == nullptr) {
      std::cerr << "--certify requires the forgiving healer\n";
      return 2;
    }
    fgh->engine().set_certificate_sink(&cert_writer);
  }

  std::unique_ptr<SnapshotWriter> snapshot;
  ForgivingGraphHealer* snap_healer = nullptr;
  if (!snapshot_path.empty()) {
    snap_healer = dynamic_cast<ForgivingGraphHealer*>(healer.get());
    if (snap_healer == nullptr) {
      std::cerr << "--snapshot requires the forgiving healer\n";
      return 2;
    }
    snapshot = std::make_unique<SnapshotWriter>(snapshot_path + ".base",
                                                snapshot_path + ".log", 0);
    std::string err;
    if (!snapshot->begin(snap_healer->engine().core(), 0, 0, &err)) {
      std::cerr << "--snapshot: " << err << "\n";
      return 2;
    }
    snap_healer->engine().core().set_delta_recorder(snapshot.get());
  }

  std::cout << "simulate: graph=" << graph << " n=" << n << " healer=" << healer->name()
            << " adversary=" << adversary->name() << " steps=" << steps
            << " seed=" << seed << "\n\n";

  RunConfig cfg;
  cfg.max_steps = steps;
  cfg.sample_every = std::max(1, steps / 8);
  cfg.stretch_sources = 24;
  auto res = run_experiment(*healer, *adversary, cfg, rng);

  Table t{"step", "alive", "n seen", "max deg ratio", "max stretch", "avg stretch",
          "bound", "components"};
  auto row = [&](const Sample& s) {
    t.add(s.step, s.alive, s.total_inserted, fmt(s.degree.max_ratio),
          fmt(s.stretch.max_stretch), fmt(s.stretch.avg_stretch),
          std::max(1, haft::ceil_log2(std::max(2, s.total_inserted))), s.components);
  };
  for (const auto& s : res.timeline) row(s);
  row(res.final);
  t.print(std::cout);

  std::cout << "\nworst over run: degree ratio " << fmt(res.worst_degree_ratio)
            << ", stretch " << fmt(res.worst_stretch) << ", broken pairs "
            << res.broken_pairs_total << " (" << res.deletions << " deletions, "
            << res.insertions << " insertions)\n";

  if (snapshot != nullptr) {
    snap_healer->engine().core().set_delta_recorder(nullptr);
    if (!snapshot->maintain(snap_healer->engine().core())) {
      std::cerr << "--snapshot: " << snapshot->take_error() << "\n";
      return 2;
    }
    std::cout << "\nsnapshot: " << snapshot_path << ".base + " << snapshot_path
              << ".log (" << snapshot->waves()
              << " wave deltas; verify with: fgsnap verify " << snapshot_path
              << ".base " << snapshot_path << ".log)\n";
  }

  if (certify) {
    const std::string certs = cert_buf.str();
    if (certify_file.empty()) {
      std::cout << "\n" << certs;
    } else {
      std::ofstream out(certify_file);
      if (!out) {
        std::cerr << "--certify: cannot write " << certify_file << "\n";
        return 2;
      }
      out << certs;
      std::cout << "\ncertificates: " << certify_file
                << " (verify with: fgcheck " << certify_file << ")\n";
    }
  }
  return 0;
}
