// Healer-service quickstart: sustained churn through the serving loop,
// then a crash-and-resume through the durable snapshot subsystem.
//
// The HealerService wraps the plan/commit pipeline in a long-running loop:
// deletions chop into repair waves, wave N+1's plan overlaps wave N's
// retirement on a planner thread, a stale plan (any mutation between
// snapshot and commit) is caught by the epoch gate and re-planned, and
// every k-th wave emits a certificate that the first-principles checker
// re-validates in-process (docs/DESIGN.md, "Healer service").
//
// Part two replays the same op stream against a service that keeps durable
// snapshots (docs/SNAPSHOTS.md), "kills" it two thirds of the way through
// by destroying it mid-stream, restores a fresh service from the on-disk
// base + delta log, audits the restored core (fg::Stabilizer), re-pushes
// the stream from the restore cursor — and shows the resumed checkpoint
// byte-identical to the uninterrupted run's.
//
//   $ ./examples/healer_service_quickstart
#include <filesystem>
#include <iostream>
#include <numeric>
#include <sstream>
#include <vector>

#include "fg/healer_service.h"
#include "fg/snapshot_writer.h"
#include "fg/stabilizer.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace {

std::string checkpoint(const fg::HealerService& service) {
  std::ostringstream os;
  service.engine().core().save(os);
  return os.str();
}

}  // namespace

int main() {
  using namespace fg;

  // A 256-node random substrate, waves of 8 deletions, every 4th wave
  // certified and checked by the sampled guardrail. Both commit fan-outs
  // (break scripts and region merges) run on 2 pool workers — any worker
  // count heals the identical structure (contract C4), so the knobs are
  // pure wall-clock tuning.
  Rng rng(7);
  HealerConfig config;
  config.wave_size = 8;
  config.certify_every = 4;
  config.commit_workers = 2;
  config.break_workers = 2;
  Graph g0 = make_sparse_random(256, 4.0, rng);

  // A little churn stream, generated up front so part two can replay it.
  // The client mirrors the alive set itself — a pushed delete may sit
  // buffered while a plan is in flight, so sampling insert neighbors from
  // the engine's committed state could name a victim that dies before the
  // insert drains. The mirror removes victims the moment their delete is
  // pushed (and adds each insert's future id, which the engine assigns
  // sequentially), keeping every op valid at apply time.
  std::vector<ChurnOp> ops;
  std::vector<NodeId> pool(256);
  std::iota(pool.begin(), pool.end(), NodeId{0});
  NodeId next_id = 256;
  for (int i = 0; i < 300; ++i) {
    if (pool.size() > 32 && rng.next_bool(0.5)) {
      size_t j = static_cast<size_t>(rng.next_below(pool.size()));
      NodeId victim = pool[j];
      pool[j] = pool.back();
      pool.pop_back();
      ops.push_back(ChurnOp::Delete(victim));
    } else {
      NodeId a = rng.pick(pool);
      NodeId b = a;
      while (b == a) b = rng.pick(pool);
      ops.push_back(ChurnOp::Insert({a, b}));
      pool.push_back(next_id++);
    }
  }

  HealerService service(g0, config);
  service.set_alert([](int64_t wave, const std::string& diagnostic) {
    std::cerr << "guardrail rejected wave " << wave << ": " << diagnostic << '\n';
  });
  for (const ChurnOp& op : ops) service.push(op);
  service.flush();  // retire the pipeline, heal the trailing partial wave

  const HealerStats& stats = service.stats();
  std::cout << "ingested " << stats.ops << " ops: " << stats.inserts
            << " inserts, " << stats.deletes << " deletes healed in "
            << stats.waves << " waves\n";
  std::cout << "guardrail: " << stats.certified_waves << " waves certified, "
            << stats.cert_rejections << " rejected\n";
  std::cout << "p50 repair latency " << stats.latency_percentile(50.0)
            << " ms, still connected = " << std::boolalpha
            << is_connected(service.engine().healed()) << '\n';
  const std::string reference = checkpoint(service);

  // ---- Part two: crash mid-stream, resume from the durable snapshot. ----
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "fg_quickstart").string();
  HealerConfig durable = config;
  durable.snapshot_every = 8;  // rotate the base every 8 waves
  durable.snapshot_path = prefix;
  {
    HealerService doomed(g0, durable);
    for (size_t i = 0; i < (2 * ops.size()) / 3; ++i) doomed.push(ops[i]);
    // No flush: destroyed with ops still buffered. Whatever PATH.base +
    // PATH.log hold at this instant is the crash image.
  }

  core::StructuralCore restored;
  SnapshotRestore res =
      restore_snapshot(prefix + ".base", prefix + ".log", &restored);
  if (!res.ok) {
    std::cerr << "restore failed: " << res.error << '\n';
    return 1;
  }
  std::cout << "\nrestored wave " << res.waves << " (cursor " << res.cursor
            << " of " << ops.size() << " ops"
            << (res.truncated ? ", torn tail dropped" : "") << ")";

  // Audit before serving resumes (docs/SNAPSHOTS.md, "restore-audit flow").
  HealerService resumed(std::move(restored), res.waves, res.cursor, durable);
  Stabilizer stabilizer(resumed.engine());
  std::cout << ", audit " << (stabilizer.audit().clean() ? "clean" : "DIRTY")
            << '\n';

  // Catch up: re-push the stream from the restore cursor.
  for (size_t i = res.cursor; i < ops.size(); ++i) resumed.push(ops[i]);
  resumed.flush();
  std::cout << "resumed checkpoint "
            << (checkpoint(resumed) == reference ? "matches" : "DIVERGES FROM")
            << " the uninterrupted run (" << resumed.stats().waves
            << " total waves)\n";
  return checkpoint(resumed) == reference ? 0 : 1;
}
