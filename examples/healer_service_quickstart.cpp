// Healer-service quickstart: sustained churn through the serving loop.
//
// The HealerService wraps the plan/commit pipeline in a long-running loop:
// deletions chop into repair waves, wave N+1's plan overlaps wave N's
// retirement on a planner thread, a stale plan (any mutation between
// snapshot and commit) is caught by the epoch gate and re-planned, and
// every k-th wave emits a certificate that the first-principles checker
// re-validates in-process (docs/DESIGN.md, "Healer service").
//
//   $ ./examples/healer_service_quickstart
#include <iostream>
#include <numeric>

#include "fg/healer_service.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/rng.h"

int main() {
  using namespace fg;

  // A 256-node random substrate, waves of 8 deletions, every 4th wave
  // certified and checked by the sampled guardrail. Both commit fan-outs
  // (break scripts and region merges) run on 2 pool workers — any worker
  // count heals the identical structure (contract C4), so the knobs are
  // pure wall-clock tuning.
  Rng rng(7);
  HealerConfig config;
  config.wave_size = 8;
  config.certify_every = 4;
  config.commit_workers = 2;
  config.break_workers = 2;
  HealerService service(make_sparse_random(256, 4.0, rng), config);
  service.set_alert([](int64_t wave, const std::string& diagnostic) {
    std::cerr << "guardrail rejected wave " << wave << ": " << diagnostic << '\n';
  });

  // A little churn stream. The client mirrors the alive set itself — a
  // pushed delete may sit buffered while a plan is in flight, so sampling
  // insert neighbors from the engine's committed state could name a victim
  // that dies before the insert drains. The mirror removes victims the
  // moment their delete is pushed (and adds each insert's future id, which
  // the engine assigns sequentially), keeping every op valid at apply time.
  std::vector<NodeId> pool(256);
  std::iota(pool.begin(), pool.end(), NodeId{0});
  NodeId next_id = 256;
  for (int i = 0; i < 300; ++i) {
    if (pool.size() > 32 && rng.next_bool(0.5)) {
      size_t j = static_cast<size_t>(rng.next_below(pool.size()));
      NodeId victim = pool[j];
      pool[j] = pool.back();
      pool.pop_back();
      service.push(ChurnOp::Delete(victim));
    } else {
      NodeId a = rng.pick(pool);
      NodeId b = a;
      while (b == a) b = rng.pick(pool);
      service.push(ChurnOp::Insert({a, b}));
      pool.push_back(next_id++);
    }
  }
  service.flush();  // retire the pipeline, heal the trailing partial wave

  const HealerStats& stats = service.stats();
  std::cout << "ingested " << stats.ops << " ops: " << stats.inserts
            << " inserts, " << stats.deletes << " deletes healed in "
            << stats.waves << " waves\n";
  std::cout << "guardrail: " << stats.certified_waves << " waves certified, "
            << stats.cert_rejections << " rejected\n";
  std::cout << "p50 repair latency " << stats.latency_percentile(50.0)
            << " ms, still connected = " << std::boolalpha
            << is_connected(service.engine().healed()) << '\n';
  return 0;
}
