// fgcheck — standalone verifier for Forgiving Graph repair certificates.
//
// Usage:
//   fgcheck FILE...        validate certificate streams (use "-" for stdin)
//   fgcheck --selftest     run the built-in positive/negative fixtures
//
// Exit status 0 iff every input validates; 1 when a well-formed certificate
// fails a checker rule; 2 when an input cannot be parsed at all (or on a
// usage error). Mixed inputs report the most severe class. A rejection
// prints one localized diagnostic to stderr:
// "<file>: wave <w>[ region <r>]: <rule>: <detail>".
//
// This binary links src/cert + src/graph ONLY — no fg:: engine code — so it
// cannot share a defect with the engines whose output it audits (the
// independence argument of docs/CERTIFICATES.md; the CMake link line is
// gated by scripts/check_docs.py).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cert/certificate.h"

namespace {

int check_stream_named(std::istream& is, const std::string& name) {
  fg::cert::StreamResult res = fg::cert::check_stream(is);
  if (!res.ok) {
    std::cerr << name << ": " << res.diagnostic << '\n';
    return res.malformed ? 2 : 1;
  }
  std::cout << name << ": " << res.waves_checked << " wave(s) OK\n";
  return 0;
}

// A hand-written wave: star hub 0 with leaves 1..3 deleted; one region,
// three anchors, the Figure-2 style haft over three leaves. Every checker
// rule has something to bite on (structure, anchors, image edges, degrees,
// a stretch witness riding this wave's RT edges, and a cost claim).
constexpr const char* kGoodCert =
    "fgcert 1\n"
    "wave 0\n"
    "net 4 3\n"
    "degree-constant 4\n"
    "stretch-bound 2\n"
    "victims 1 0\n"
    "assign 0\n"
    "regions 1\n"
    "region 0\n"
    "rvictims 1 0\n"
    "anchors 3\n"
    "a 1 0\n"
    "a 2 0\n"
    "a 3 0\n"
    "rt 5\n"
    "v 0 help 2 0 -1 1 4\n"
    "v 1 help 1 0 0 2 3\n"
    "v 2 leaf 1 0 1 -1 -1\n"
    "v 3 leaf 2 0 1 -1 -1\n"
    "v 4 leaf 3 0 0 -1 -1\n"
    "iedges 2\n"
    "e 1 2\n"
    "e 2 3\n"
    "endregion\n"
    "degrees 3\n"
    "d 1 1 1 1\n"
    "d 2 1 1 2\n"
    "d 3 1 1 1\n"
    "stretch 1\n"
    "s 1 3 2 2 1 2 3\n"
    "facts 2\n"
    "f 1 2 rt 0\n"
    "f 2 3 rt 0\n"
    "end\n";

struct Corruption {
  const char* label;
  const char* from;  ///< Line to replace (must occur in kGoodCert).
  const char* to;
  const char* rule;  ///< Substring the diagnostic must contain.
};

// One corruption per checker rule family; --selftest proves each is caught
// with the right localization.
constexpr Corruption kCorruptions[] = {
    {"bad version", "fgcert 1\n", "fgcert 9\n", "version"},
    {"victim in two regions", "assign 0\n", "assign 1\n", "partition"},
    {"asymmetric parent link", "v 4 leaf 3 0 0 -1 -1\n", "v 4 leaf 3 0 1 -1 -1\n",
     "rt-structure"},
    {"haft order flipped", "v 0 help 2 0 -1 1 4\n", "v 0 help 2 0 -1 4 1\n",
     "haft"},
    {"anchor without leaf", "a 3 0\n", "a 9 0\n", "anchors"},
    {"dropped image edge", "iedges 2\ne 1 2\ne 2 3\n", "iedges 1\ne 1 2\n",
     "image-edges"},
    {"degree past the constant", "d 2 1 1 2\n", "d 2 1 1 9\n", "degree"},
    {"truncated witness path", "s 1 3 2 2 1 2 3\n", "s 1 3 2 2 1 2\n",
     "stretch"},
    {"unsupported witness hop", "facts 2\nf 1 2 rt 0\nf 2 3 rt 0\n",
     "facts 1\nf 1 2 rt 0\n", "no supporting edge fact"},
    {"rt fact outside its region", "facts 2\nf 1 2 rt 0\nf 2 3 rt 0\n",
     "facts 3\nf 1 2 rt 0\nf 1 3 rt 0\nf 2 3 rt 0\n",
     "not an image edge of region"},
    {"inflated round budget", "end\n", "cost 10 20 4000 3\nend\n", "cost"},
    {"truncated certificate", "facts 2\nf 1 2 rt 0\nf 2 3 rt 0\nend\n",
     "facts 2\nf 1 2 rt 0\n", "format"},
};

std::string replace_once(const std::string& text, const std::string& from,
                         const std::string& to) {
  size_t pos = text.find(from);
  if (pos == std::string::npos) return {};
  return text.substr(0, pos) + to + text.substr(pos + from.size());
}

int selftest() {
  int failures = 0;
  {
    std::istringstream is(kGoodCert);
    fg::cert::StreamResult res = fg::cert::check_stream(is);
    if (!res.ok || res.waves_checked != 1) {
      std::cerr << "selftest: good certificate rejected: " << res.diagnostic
                << '\n';
      ++failures;
    }
  }
  for (const Corruption& c : kCorruptions) {
    std::string text = replace_once(kGoodCert, c.from, c.to);
    if (text.empty()) {
      std::cerr << "selftest: corruption \"" << c.label
                << "\" does not apply to the fixture\n";
      ++failures;
      continue;
    }
    std::istringstream is(text);
    fg::cert::StreamResult res = fg::cert::check_stream(is);
    if (res.ok) {
      std::cerr << "selftest: corruption \"" << c.label << "\" not detected\n";
      ++failures;
    } else if (res.diagnostic.find(c.rule) == std::string::npos) {
      std::cerr << "selftest: corruption \"" << c.label
                << "\" misdiagnosed as: " << res.diagnostic << '\n';
      ++failures;
    }
  }
  if (failures == 0) {
    std::cout << "fgcheck selftest: 1 good + "
              << sizeof(kCorruptions) / sizeof(kCorruptions[0])
              << " corrupted fixtures OK\n";
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: fgcheck [--selftest] FILE...\n";
    return 2;
  }
  // Most-severe-wins aggregation (0 < 1 < 2): bitwise-OR would alias a
  // rejection plus a parse failure to 3, outside the documented codes.
  int status = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--selftest") {
      status = std::max(status, selftest());
    } else if (arg == "-") {
      status = std::max(status, check_stream_named(std::cin, "<stdin>"));
    } else {
      std::ifstream f(arg);
      if (!f) {
        std::cerr << arg << ": cannot open\n";
        status = std::max(status, 1);
        continue;
      }
      status = std::max(status, check_stream_named(f, arg));
    }
  }
  return status;
}
