// fgsnap — standalone inspector/verifier for Forgiving Graph snapshots.
//
// Usage:
//   fgsnap info BASE [LOG]      print a snapshot summary
//   fgsnap verify BASE [LOG]    verify base image + delta log consistency
//   fgsnap --selftest           run the built-in fixture + corruption table
//
// Exit status 0 iff every input verifies clean; 1 when a file is corrupt
// (bad magic, CRC mismatch, torn delta tail, wave-sequence gap); 2 when a
// file cannot be read at all (or on a usage error). A torn tail is *crash
// recovery* to the engine's restore path but still a finding here: the
// verifier's job is to report that bytes were dropped, and its exit code
// says so.
//
// This binary links src/snap ONLY — no fg:: engine code, not even the graph
// substrate — so it cannot share a defect with the engine that wrote the
// snapshot (the independence argument of docs/SNAPSHOTS.md, mirroring
// fgcheck; the CMake link line is gated by scripts/check_docs.py).
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "snap/snapshot.h"

namespace {

using fg::snap::BaseImage;
using fg::snap::LogScan;
using fg::snap::WaveDelta;

/// Load + decode a base file. Exit-class via *status (2 unreadable, 1
/// corrupt); true only when the image decoded clean.
bool load_base(const std::string& path, BaseImage* image, int* status) {
  std::vector<uint8_t> bytes;
  std::string error;
  if (!fg::snap::read_file(path, &bytes, &error)) {
    std::cerr << path << ": " << error << '\n';
    *status = std::max(*status, 2);
    return false;
  }
  if (!fg::snap::decode_base(bytes, image, &error)) {
    std::cerr << path << ": " << error << '\n';
    *status = std::max(*status, 1);
    return false;
  }
  return true;
}

bool load_log(const std::string& path, LogScan* scan, int* status) {
  std::vector<uint8_t> bytes;
  std::string error;
  if (!fg::snap::read_file(path, &bytes, &error)) {
    std::cerr << path << ": " << error << '\n';
    *status = std::max(*status, 2);
    return false;
  }
  if (!fg::snap::scan_log(bytes, scan, &error)) {
    std::cerr << path << ": " << error << '\n';
    *status = std::max(*status, 1);
    return false;
  }
  return true;
}

/// The log's wave ids against the base: records at or below the base's wave
/// are pre-rotation remnants (legal); past it they must be consecutive.
/// Returns the wave the snapshot restores to, or reports the gap.
bool check_sequence(const BaseImage& base, const LogScan& scan,
                    const std::string& log_path, uint64_t* restore_wave) {
  uint64_t wave = base.wave;
  for (const WaveDelta& d : scan.deltas) {
    if (d.wave <= base.wave) continue;
    if (d.wave != wave + 1) {
      std::cerr << log_path << ": wave sequence gap: wave " << d.wave
                << " after wave " << wave << '\n';
      return false;
    }
    wave = d.wave;
  }
  *restore_wave = wave;
  return true;
}

int info(const std::string& base_path, const std::string& log_path) {
  int status = 0;
  BaseImage base;
  if (!load_base(base_path, &base, &status)) return status;
  std::cout << base_path << ": base wave " << base.wave << " epoch " << base.epoch
            << " cursor " << base.cursor << '\n'
            << "  capacity " << base.capacity << " (" << base.dead.size()
            << " dead), " << base.gprime_edges.size() << " G' edge(s)\n"
            << "  forest: " << base.rows.size() << " arena row(s), "
            << base.forest_live << " alive\n"
            << "  " << base.slots.size() << " slot(s), " << base.mult.size()
            << " image-edge multiplicit(ies)\n";
  if (log_path.empty()) return status;

  LogScan scan;
  if (!load_log(log_path, &scan, &status)) return status;
  uint64_t restore_wave = base.wave;
  if (!check_sequence(base, scan, log_path, &restore_wave))
    status = std::max(status, 1);
  std::cout << log_path << ": " << scan.deltas.size() << " delta record(s), "
            << scan.valid_bytes << " consistent byte(s)";
  if (!scan.deltas.empty())
    std::cout << ", waves " << scan.deltas.front().wave << ".."
              << scan.deltas.back().wave;
  std::cout << '\n';
  if (scan.truncated) {
    std::cout << log_path << ": torn tail dropped (" << scan.detail << ")\n";
    status = std::max(status, 1);
  }
  std::cout << "restores to wave " << restore_wave << '\n';
  return status;
}

int verify(const std::string& base_path, const std::string& log_path) {
  int status = 0;
  BaseImage base;
  if (!load_base(base_path, &base, &status)) return status;
  uint64_t restore_wave = base.wave;
  size_t records = 0;
  if (!log_path.empty()) {
    LogScan scan;
    if (!load_log(log_path, &scan, &status)) return status;
    if (!check_sequence(base, scan, log_path, &restore_wave))
      status = std::max(status, 1);
    if (scan.truncated) {
      std::cerr << log_path << ": torn tail dropped (" << scan.detail
                << "); recoverable to wave " << restore_wave << '\n';
      status = std::max(status, 1);
    }
    records = scan.deltas.size();
  }
  if (status == 0)
    std::cout << base_path << ": OK (base wave " << base.wave << " + " << records
              << " delta(s) -> wave " << restore_wave << ")\n";
  return status;
}

// --- Selftest: an embedded fixture plus a corruption table. -----------------

/// A small, format-valid snapshot (the selftest never replays it, so it
/// needs no structural meaning — only canonical encodability).
BaseImage fixture_base() {
  BaseImage b;
  b.wave = 3;
  b.epoch = 17;
  b.cursor = 42;
  b.capacity = 5;
  b.dead = {3};
  b.gprime_edges = {{0, 1}, {0, 3}, {1, 2}, {2, 4}};
  b.forest_live = 2;
  b.rows.resize(3);
  b.rows[0] = {0, 3, -1, -1, -1, 0, 0, 1, true, true};
  b.rows[1] = {2, 1, -1, -1, -1, 1, 0, 1, true, false};
  b.rows[2] = {4, 2, -1, -1, -1, 2, 0, 1, true, true};
  b.slots = {{0, 3, 0, -1}, {4, 2, 2, -1}};
  b.mult = {{0, 1, 1}, {1, 2, 2}};
  return b;
}

WaveDelta fixture_delta(uint64_t wave) {
  WaveDelta d;
  d.wave = wave;
  d.epoch_after = 17 + wave;
  d.cursor = 42 + wave * 10;
  d.inserts.push_back({5, {0, 1}});
  d.victims = {static_cast<uint32_t>(wave % 5)};
  d.arena_size_after = 3 + wave;
  d.forest_live_after = 2;
  d.rows.push_back({2, {4, 2, -1, -1, -1, 2, 0, 1, true, true}});
  d.slots.push_back({4, 2, true, 2, -1});
  d.mult.push_back({1, 2, 1});
  return d;
}

int fail(int* failures, const std::string& msg) {
  std::cerr << "selftest: " << msg << '\n';
  return ++*failures;
}

int selftest() {
  int failures = 0;
  const BaseImage base = fixture_base();
  const std::vector<uint8_t> base_bytes = fg::snap::encode_base(base);

  // Base round-trip: decode(encode(x)) reproduces every field.
  {
    BaseImage back;
    std::string error;
    if (!fg::snap::decode_base(base_bytes, &back, &error)) {
      fail(&failures, "good base rejected: " + error);
    } else if (back.wave != base.wave || back.epoch != base.epoch ||
               back.cursor != base.cursor || back.capacity != base.capacity ||
               back.dead != base.dead || back.gprime_edges != base.gprime_edges ||
               back.forest_live != base.forest_live || back.rows != base.rows ||
               back.slots != base.slots || back.mult != base.mult) {
      fail(&failures, "base round-trip mismatch");
    }
  }

  // Log with three records; remember each record's end offset so the
  // corruption table can aim at exact frames.
  std::vector<uint8_t> log_bytes = fg::snap::encode_log_header();
  std::vector<size_t> record_end;
  for (uint64_t w = 4; w <= 6; ++w) {
    fg::snap::append_delta(&log_bytes, fixture_delta(w));
    record_end.push_back(log_bytes.size());
  }

  {
    LogScan scan;
    std::string error;
    if (!fg::snap::scan_log(log_bytes, &scan, &error)) {
      fail(&failures, "good log rejected: " + error);
    } else if (scan.truncated || scan.deltas.size() != 3 ||
               scan.valid_bytes != log_bytes.size()) {
      fail(&failures, "good log mis-scanned");
    } else {
      const WaveDelta want = fixture_delta(5);
      const WaveDelta& got = scan.deltas[1];
      if (got.wave != want.wave || got.epoch_after != want.epoch_after ||
          got.cursor != want.cursor || got.inserts != want.inserts ||
          got.victims != want.victims || got.rows != want.rows ||
          got.slots != want.slots || got.mult != want.mult)
        fail(&failures, "delta round-trip mismatch");
    }
  }

  // Base corruption table: every class of damage must be detected, with
  // the right diagnostic family.
  struct BaseCorruption {
    const char* label;
    size_t flip;       ///< Byte offset to XOR (npos: truncate instead).
    size_t trunc_to;   ///< New size when flip == npos.
    const char* diag;  ///< Substring the error must contain.
  };
  const size_t npos = static_cast<size_t>(-1);
  const size_t header = fg::snap::kMagicLen + 1 + 24 + 4;  // magic 'B' w/e/c nsec
  const BaseCorruption base_table[] = {
      {"bad magic", 0, 0, "magic"},
      {"wrong record kind", fg::snap::kMagicLen, 0, "not a base record"},
      {"section tag damage", header, 0, "expected section"},
      {"payload bit flip", header + 12 + 2, 0, "CRC mismatch"},
      {"truncated section", npos, base_bytes.size() - 5, "truncated"},
      {"truncated header", npos, fg::snap::kMagicLen + 3, "truncated header"},
  };
  for (const BaseCorruption& c : base_table) {
    std::vector<uint8_t> bad = base_bytes;
    if (c.flip == npos)
      bad.resize(c.trunc_to);
    else
      bad[c.flip] ^= 0x40;
    BaseImage out;
    std::string error;
    if (fg::snap::decode_base(bad, &out, &error)) {
      fail(&failures, std::string("base corruption \"") + c.label + "\" not detected");
    } else if (error.find(c.diag) == std::string::npos) {
      fail(&failures, std::string("base corruption \"") + c.label +
                          "\" misdiagnosed as: " + error);
    }
  }

  // Log corruption table: damage at record k must recover records [0, k)
  // exactly — the torn-tail contract restore_snapshot relies on.
  struct LogCorruption {
    const char* label;
    size_t flip;      ///< Byte offset to XOR (npos: truncate to trunc_to).
    size_t trunc_to;
    size_t survivors; ///< Records the scan must still deliver.
  };
  const LogCorruption log_table[] = {
      {"flip in record 0", fg::snap::kMagicLen + 20, 0, 0},
      {"flip in record 2", record_end[1] + 20, 0, 2},
      {"flip in last CRC", record_end[2] - 1, 0, 2},
      {"torn final append", npos, record_end[2] - 3, 2},
      {"torn first record", npos, fg::snap::kMagicLen + 6, 0},
      {"garbage after log", npos, 0, 3},  // trunc_to 0: append a byte instead
  };
  for (const LogCorruption& c : log_table) {
    std::vector<uint8_t> bad = log_bytes;
    if (c.flip != npos)
      bad[c.flip] ^= 0x40;
    else if (c.trunc_to != 0)
      bad.resize(c.trunc_to);
    else
      bad.push_back(0x5A);
    LogScan scan;
    std::string error;
    if (!fg::snap::scan_log(bad, &scan, &error)) {
      fail(&failures,
           std::string("log corruption \"") + c.label + "\" rejected the header");
    } else if (!scan.truncated) {
      fail(&failures, std::string("log corruption \"") + c.label + "\" not detected");
    } else if (scan.deltas.size() != c.survivors) {
      fail(&failures, std::string("log corruption \"") + c.label + "\": " +
                          std::to_string(scan.deltas.size()) + " survivor(s), want " +
                          std::to_string(c.survivors));
    }
  }

  // A damaged log *header* is front corruption, not a torn tail.
  {
    std::vector<uint8_t> bad = log_bytes;
    bad[2] ^= 0x40;
    LogScan scan;
    std::string error;
    if (fg::snap::scan_log(bad, &scan, &error) ||
        error.find("magic") == std::string::npos)
      fail(&failures, "log header corruption not rejected");
  }

  if (failures == 0) {
    std::cout << "fgsnap selftest: base + 3-record log round-trip, 6 base + 6 log"
                 " corruptions OK\n";
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() == 1 && args[0] == "--selftest") return selftest();
  if (args.size() >= 2 && args.size() <= 3 &&
      (args[0] == "info" || args[0] == "verify")) {
    const std::string log_path = args.size() == 3 ? args[2] : std::string();
    return args[0] == "info" ? info(args[1], log_path) : verify(args[1], log_path);
  }
  std::cerr << "usage: fgsnap info|verify BASE [LOG]\n"
               "       fgsnap --selftest\n";
  return 2;
}
