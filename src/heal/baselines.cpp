#include "heal/baselines.h"

#include "util/check.h"

namespace fg {

void LineHealer::heal_after(NodeId, const std::vector<NodeId>& nbrs) {
  if (nbrs.size() < 2) return;
  for (size_t i = 0; i + 1 < nbrs.size(); ++i) g().add_edge(nbrs[i], nbrs[i + 1]);
  if (nbrs.size() > 2) g().add_edge(nbrs.back(), nbrs.front());
}

void StarHealer::heal_after(NodeId, const std::vector<NodeId>& nbrs) {
  if (nbrs.size() < 2) return;
  for (size_t i = 1; i < nbrs.size(); ++i) g().add_edge(nbrs.front(), nbrs[i]);
}

void BinaryTreeHealer::heal_after(NodeId, const std::vector<NodeId>& nbrs) {
  // Heap-indexed complete binary tree over the sorted neighbor list.
  for (size_t i = 1; i < nbrs.size(); ++i) g().add_edge(nbrs[i], nbrs[(i - 1) / 2]);
}

KAryHealer::KAryHealer(const Graph& g0, int k) : BaselineHealer(g0), k_(k) {
  FG_CHECK(k >= 2);
}

std::string KAryHealer::name() const { return "KAry(" + std::to_string(k_) + ")"; }

void KAryHealer::heal_after(NodeId, const std::vector<NodeId>& nbrs) {
  // Heap-indexed complete k-ary tree over the sorted neighbor list.
  for (size_t i = 1; i < nbrs.size(); ++i)
    g().add_edge(nbrs[i], nbrs[(i - 1) / static_cast<size_t>(k_)]);
}

}  // namespace fg
