// Baseline healing strategies the paper's results are contrasted against.
//
// * NoHealer — delete and do nothing; the network may disconnect. This is
//   the "non-responsive" strawman of the introduction.
// * LineHealer — connect the deleted node's neighbors in a cycle. Degree
//   increase is at most +2 per incident deletion, but stretch can grow
//   linearly (the star lower-bound construction of Theorem 2).
// * StarHealer — connect every neighbor to the smallest-id neighbor, in the
//   spirit of the surrogate strategy of "Picking up the pieces" [14]:
//   excellent stretch, unbounded degree blowup.
// * BinaryTreeHealer — replace the deleted node by a balanced binary tree of
//   its current neighbors using *real* edges, structurally what the
//   Forgiving Tree [7] does per deletion but with no RT merging and no
//   virtual-node bookkeeping; repeated overlapping deletions accumulate
//   degree (the ablation A1 shows why merging matters).
// * KAryHealer(k) — balanced k-ary tree of the neighbors; sweeping k traces
//   the degree/stretch tradeoff curve that Theorem 2 lower-bounds.
#pragma once

#include "heal/healer.h"

namespace fg {

class NoHealer final : public BaselineHealer {
 public:
  using BaselineHealer::BaselineHealer;
  std::string name() const override { return "NoHealing"; }

 protected:
  void heal_after(NodeId, const std::vector<NodeId>&) override {}
};

class LineHealer final : public BaselineHealer {
 public:
  using BaselineHealer::BaselineHealer;
  std::string name() const override { return "Line"; }

 protected:
  void heal_after(NodeId deleted, const std::vector<NodeId>& neighbors) override;
};

class StarHealer final : public BaselineHealer {
 public:
  using BaselineHealer::BaselineHealer;
  std::string name() const override { return "Star"; }

 protected:
  void heal_after(NodeId deleted, const std::vector<NodeId>& neighbors) override;
};

class BinaryTreeHealer final : public BaselineHealer {
 public:
  using BaselineHealer::BaselineHealer;
  std::string name() const override { return "BinaryTree"; }

 protected:
  void heal_after(NodeId deleted, const std::vector<NodeId>& neighbors) override;
};

class KAryHealer final : public BaselineHealer {
 public:
  KAryHealer(const Graph& g0, int k);
  std::string name() const override;

 protected:
  void heal_after(NodeId deleted, const std::vector<NodeId>& neighbors) override;

 private:
  int k_;
};

}  // namespace fg
