#include "heal/healer.h"

#include <algorithm>

#include "heal/baselines.h"
#include "heal/forgiving_tree.h"
#include "util/check.h"

namespace fg {

NodeId BaselineHealer::insert(std::span<const NodeId> neighbors) {
  NodeId id = gprime_.add_node();
  NodeId id2 = g_.add_node();
  FG_CHECK(id == id2);
  for (NodeId y : neighbors) {
    FG_CHECK_MSG(g_.is_alive(y), "insertion neighbor must be alive");
    gprime_.add_edge(id, y);
    g_.add_edge(id, y);
  }
  return id;
}

void BaselineHealer::remove(NodeId v) {
  FG_CHECK(g_.is_alive(v));
  // NeighborView is already sorted; copy only because remove_node
  // invalidates views.
  NeighborView view = g_.neighbors(v);
  std::vector<NodeId> neighbors(view.begin(), view.end());
  g_.remove_node(v);
  heal_after(v, neighbors);
}

std::unique_ptr<Healer> make_healer(const std::string& name, const Graph& g0) {
  if (name == "forgiving") return std::make_unique<ForgivingGraphHealer>(g0);
  if (name == "forgiving-tree") return std::make_unique<ForgivingTreeHealer>(g0);
  if (name == "none") return std::make_unique<NoHealer>(g0);
  if (name == "line") return std::make_unique<LineHealer>(g0);
  if (name == "star") return std::make_unique<StarHealer>(g0);
  if (name == "binary-tree") return std::make_unique<BinaryTreeHealer>(g0);
  if (name.rfind("kary:", 0) == 0) {
    int k = std::stoi(name.substr(5));
    return std::make_unique<KAryHealer>(g0, k);
  }
  FG_CHECK_MSG(false, "unknown healer name");
  return nullptr;
}

}  // namespace fg
