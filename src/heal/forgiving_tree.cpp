#include "heal/forgiving_tree.h"

#include <deque>

#include "graph/algorithms.h"
#include "util/check.h"

namespace fg {

Graph bfs_spanning_tree(const Graph& g) {
  auto alive = g.alive_nodes();
  FG_CHECK(!alive.empty());
  FG_CHECK_MSG(is_connected(g), "spanning tree requires a connected graph");
  Graph tree(g.node_capacity());
  for (NodeId v = 0; v < g.node_capacity(); ++v)
    if (!g.is_alive(v)) tree.remove_node(v);

  std::vector<char> seen(static_cast<size_t>(g.node_capacity()), 0);
  std::deque<NodeId> q{alive.front()};
  seen[static_cast<size_t>(alive.front())] = 1;
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop_front();
    for (NodeId w : g.neighbors(v)) {
      if (seen[static_cast<size_t>(w)]) continue;
      seen[static_cast<size_t>(w)] = 1;
      tree.add_edge(v, w);
      q.push_back(w);
    }
  }
  return tree;
}

ForgivingTreeHealer::ForgivingTreeHealer(const Graph& g0)
    : tree_engine_(bfs_spanning_tree(g0)), gprime_full_(g0) {}

NodeId ForgivingTreeHealer::insert(std::span<const NodeId> neighbors) {
  FG_CHECK_MSG(!neighbors.empty(), "the Forgiving Tree must graft onto some neighbor");
  NodeId id = gprime_full_.add_node();
  for (NodeId y : neighbors) {
    // Liveness must be checked against the actual network; G' keeps deleted
    // nodes around as path intermediaries.
    FG_CHECK_MSG(tree_engine_.healed().is_alive(y), "insertion neighbor must be alive");
    gprime_full_.add_edge(id, y);
  }
  // Tree graft: only the first neighbor becomes a tree edge.
  std::vector<NodeId> graft{neighbors.front()};
  NodeId tid = tree_engine_.insert(graft);
  FG_CHECK(tid == id);
  return id;
}

void ForgivingTreeHealer::remove(NodeId v) { tree_engine_.remove(v); }

}  // namespace fg
