// Common interface for self-healing strategies.
//
// A Healer owns two graphs: the actual healed network G, and the
// insertions-only reference graph G' against which the paper's success
// metrics (degree increase, stretch) are defined. The experiment harness
// drives healers through adversarial insert/delete schedules and samples the
// metrics from these two graphs.
//
// Contract every implementation maintains (relied on by harness/ and the
// baseline comparison benches):
//   C1. G' only ever gains nodes and edges; deletions never touch it.
//   C2. The alive sets of G and G' agree: a processor is alive in G iff it
//       has not been removed, and node ids are allocated identically, so
//       per-node metrics can be joined across the two graphs.
//   C3. insert() attaches the new processor to exactly the given neighbors
//       in both graphs; remove() deletes the node from G and then applies
//       the strategy's repair to G alone.
//   C4. Healers are deterministic given the schedule — the trace module can
//       replay any run bit-identically for bisection. The Forgiving Graph's
//       worker counts are explicitly *not* part of the schedule: both
//       sharded-concurrent planning (set_shard_workers) and the
//       reservation-backed parallel commit (set_commit_workers) must replay
//       byte-identical to a single-threaded engine — the schedule-
//       independent commit property (docs/CONCURRENCY.md, pinned by
//       tests/shard_determinism_test.cpp and arena_reservation_test.cpp).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "fg/forgiving_graph.h"
#include "graph/graph.h"

namespace fg {

/// Abstract self-healing network.
class Healer {
 public:
  virtual ~Healer() = default;

  /// Adversarial insertion; returns the new processor id.
  virtual NodeId insert(std::span<const NodeId> neighbors) = 0;

  /// Adversarial deletion followed by this strategy's repair.
  virtual void remove(NodeId v) = 0;

  /// Batched adversarial deletion: all victims (alive, distinct) fail
  /// simultaneously, healed in one repair round. The default falls back to
  /// sequential removals; healers with a native batch path (the Forgiving
  /// Graph's per-region merged plans) override it.
  virtual void remove_batch(std::span<const NodeId> victims) {
    for (NodeId v : victims) remove(v);
  }

  /// The actual healed network G.
  virtual const Graph& healed() const = 0;

  /// The insertions-only graph G'.
  virtual const Graph& gprime() const = 0;

  virtual std::string name() const = 0;

  /// Introspection hook for omniscient adversaries that target the Forgiving
  /// Graph's internal helper assignment; null for baselines.
  virtual const ForgivingGraph* forgiving() const { return nullptr; }
};

/// Wraps the Forgiving Graph engine in the Healer interface.
class ForgivingGraphHealer final : public Healer {
 public:
  explicit ForgivingGraphHealer(const Graph& g0) : engine_(g0) {}

  NodeId insert(std::span<const NodeId> neighbors) override {
    return engine_.insert(neighbors);
  }
  void remove(NodeId v) override { engine_.remove(v); }
  void remove_batch(std::span<const NodeId> victims) override {
    engine_.delete_batch(victims);
  }
  const Graph& healed() const override { return engine_.healed(); }
  const Graph& gprime() const override { return engine_.gprime(); }
  std::string name() const override { return "ForgivingGraph"; }
  const ForgivingGraph* forgiving() const override { return &engine_; }

  ForgivingGraph& engine() { return engine_; }

 private:
  ForgivingGraph engine_;
};

/// Base for edge-rewiring baselines: maintains G and G' and delegates the
/// post-deletion rewiring of the deleted node's neighborhood.
class BaselineHealer : public Healer {
 public:
  explicit BaselineHealer(const Graph& g0) : gprime_(g0), g_(g0) {}

  NodeId insert(std::span<const NodeId> neighbors) override;
  void remove(NodeId v) override;
  const Graph& healed() const override { return g_; }
  const Graph& gprime() const override { return gprime_; }

 protected:
  /// Reconnect `neighbors` (the alive ex-neighbors of the deleted node, in
  /// increasing id order) by adding edges to g().
  virtual void heal_after(NodeId deleted, const std::vector<NodeId>& neighbors) = 0;

  Graph& g() { return g_; }

 private:
  Graph gprime_;
  Graph g_;
};

/// Factory by name: "forgiving", "none", "line", "star", "binary-tree",
/// "kary:<k>".
std::unique_ptr<Healer> make_healer(const std::string& name, const Graph& g0);

}  // namespace fg
