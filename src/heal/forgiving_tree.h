// The Forgiving Tree (Hayes, Rustagi, Saia, Trehan, PODC 2008) — the
// predecessor data structure this paper improves on.
//
// The Forgiving Tree self-heals a *spanning tree* of the network: each
// deleted node is replaced by a balanced binary tree of its tree-children
// (helpers simulated by the children via "wills"), giving an additive +3
// degree bound and an O(log Delta) *diameter* factor — but it is oblivious
// to non-tree edges, cannot bound pairwise stretch, and does not handle
// adversarial insertions (PODC'08 assumed a static node set; we graft
// inserted nodes onto the tree by their first neighbor, the natural
// extension).
//
// Implementation note (docs/DESIGN.md substitution table): structurally, the
// Forgiving Tree is the Forgiving Graph restricted to a spanning tree —
// per-deletion balanced reconstruction with helper reuse. We implement it
// exactly that way: an inner ForgivingGraph engine driven with the spanning
// tree as its G'. This preserves every property the comparison needs
// (tree-only healing => diameter-not-stretch guarantee, +3-ish degree) while
// reusing the verified RT machinery. The *stretch* reported against the full
// G' is the quantity the 2009 paper's first improvement targets.
#pragma once

#include "fg/forgiving_graph.h"
#include "heal/healer.h"

namespace fg {

/// Forgiving-Tree baseline: heals only a spanning tree of the network.
class ForgivingTreeHealer final : public Healer {
 public:
  /// Builds a BFS spanning tree of g0 rooted at the smallest id. g0 must be
  /// connected.
  explicit ForgivingTreeHealer(const Graph& g0);

  /// Grafts the new node onto the tree at its first listed neighbor; the
  /// remaining neighbors are recorded in G' but never used for healing
  /// (the Forgiving Tree has no mechanism for them).
  NodeId insert(std::span<const NodeId> neighbors) override;

  void remove(NodeId v) override;

  /// The healed spanning tree (the network the Forgiving Tree maintains).
  const Graph& healed() const override { return tree_engine_.healed(); }

  /// The full insertions-only graph G' (for metric parity with the other
  /// healers; the Forgiving Tree itself only ever sees the tree edges).
  const Graph& gprime() const override { return gprime_full_; }

  std::string name() const override { return "ForgivingTree"; }

  /// The spanning tree's own insertions-only reference (tree edges only).
  const Graph& tree_gprime() const { return tree_engine_.gprime(); }

 private:
  ForgivingGraph tree_engine_;
  Graph gprime_full_;
};

/// Extract a BFS spanning tree of `g` rooted at the smallest alive id.
/// `g` must be connected.
Graph bfs_spanning_tree(const Graph& g);

}  // namespace fg
