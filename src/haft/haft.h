// Half-full trees (hafts) — Section 4 of the paper.
//
// A haft is a rooted binary tree in which every internal node has exactly two
// children and its left child roots a *complete* (perfect) subtree holding at
// least half of the node's leaf descendants. Lemma 1 shows haft(l) is unique,
// corresponds to the binary representation of l, and has depth ceil(log2 l).
//
// Two things live here:
//
//  1. `HaftForest`, an arena of explicit haft nodes with the paper's
//     operations: Strip (Section 4.1.1, decompose into the perfect subtrees
//     rooted at "primary roots") and Merge (Section 4.1.2, binary addition
//     over perfect trees).
//
//  2. `merge_plan`, the pure ordering logic of Algorithm A.9 (ComputeHaft):
//     given the leaf counts of a set of perfect trees, produce the exact
//     deterministic sequence of pairwise joins that assembles the unique
//     merged haft. Both the centralized Forgiving Graph engine and the
//     distributed protocol execute this same plan, which is what makes the
//     two implementations produce bit-identical topologies.
//
// Invariants of every haft with l leaves (asserted by is_haft / the tests):
//   H1. Each internal node has exactly two children.
//   H2. Each internal node's left child is perfect (leaf_count == 2^height)
//       and holds at least half of the node's leaf descendants.
//   H3. depth == ceil(log2 l), and the multiset of primary-root sizes
//       produced by Strip is exactly the binary representation of l
//       (popcount(l) perfect trees of distinct power-of-two sizes).
//   H4. haft(l) is unique: any join order merge_plan emits reassembles the
//       same shape (Lemma 1), which is what makes merging deterministic.
#pragma once

#include <cstdint>
#include <vector>

namespace fg::haft {

/// Describes one input piece (a perfect tree) for `merge_plan`.
struct PieceInfo {
  int64_t leaf_count = 1;  ///< Number of leaves; must be a power of two.
  uint64_t key = 0;        ///< Deterministic tie-break (paper: NodeID).
};

/// One pairwise join in a merge plan. Pieces are numbered: inputs are
/// 0..k-1 in the order given; each step creates piece `result` (k, k+1, ...).
/// `left` always designates the subtree that becomes the left child. Per
/// Algorithm A.9, the helper node simulating the new parent is provided by
/// the representative of the *left* child and the new root inherits the
/// representative of the *right* child.
struct MergeStep {
  int left = -1;
  int right = -1;
  int result = -1;
};

/// Algorithm A.9 (ComputeHaft): deterministic join order.
///
/// Phase 1 pairs equal-sized trees (binary addition with carries); phase 2
/// chains the remaining, pairwise-distinct sizes in ascending order, always
/// hanging the accumulated smaller haft below the next bigger tree (bigger
/// tree = left child). Requires every leaf_count to be a positive power of
/// two. Returns an empty plan for k <= 1 pieces.
std::vector<MergeStep> merge_plan(std::vector<PieceInfo> pieces);

/// Phase 1 only: binary addition without the final chain. The result is a
/// forest of perfect trees with pairwise-distinct sizes — the intermediate
/// state the paper's BottomupRTMerge carries between BT_v stages, which is
/// what keeps its piece lists (and thus message sizes) at O(log n) entries.
std::vector<MergeStep> carry_plan(std::vector<PieceInfo> pieces);

/// Returns true iff v is a positive power of two.
constexpr bool is_pow2(int64_t v) { return v > 0 && (v & (v - 1)) == 0; }

/// ceil(log2(l)) for l >= 1; this is the depth bound of Lemma 1.3.
int ceil_log2(int64_t l);

/// Arena of haft nodes. Node handles are ints; -1 means "none". Removed
/// nodes are tombstoned and must not be accessed again.
class HaftForest {
 public:
  struct Node {
    int parent = -1;
    int left = -1;
    int right = -1;
    int height = 0;          ///< Longest downward path (leaf = 0).
    int64_t leaf_count = 1;  ///< Leaves in this subtree (leaf = 1).
    uint64_t label = 0;      ///< Caller-supplied identity (leaves only).
    bool is_leaf = true;
    bool alive = true;
  };

  /// Create a fresh leaf with the given label; returns its handle.
  int make_leaf(uint64_t label);

  /// Join two roots under a fresh internal node (left/right as given).
  /// Both must be roots. Returns the new internal node's handle.
  int join(int left, int right);

  /// Build haft(l) bottom-up by merging l fresh leaves labelled
  /// first_label..first_label+l-1 (Lemma 1: the result is the unique haft).
  int build(int64_t l, uint64_t first_label = 0);

  /// Strip (Section 4.1.1): remove the non-primary internal nodes of the
  /// haft rooted at `root`, returning the primary roots in descending size
  /// order. The removed nodes are tombstoned.
  std::vector<int> strip(int root);

  /// Generalized strip for arbitrary *fragments* (Figure 4 "simple variant
  /// for non-hafts"): returns the maximal perfect subtrees under `root`,
  /// tombstoning every non-perfect internal node on the way.
  std::vector<int> strip_fragment(int root);

  /// Merge (Section 4.1.2): strip every input haft and reassemble all
  /// resulting perfect trees into one haft using `merge_plan`. Returns the
  /// new root (or the single surviving root). Inputs must be roots.
  int merge(const std::vector<int>& roots);

  /// Detach `node` from its parent (if any), leaving it a root.
  void detach(int node);

  const Node& node(int h) const;
  bool exists(int h) const;
  int root_of(int h) const;

  /// True iff the subtree at `h` is perfect: leaf_count == 2^height.
  bool is_perfect(int h) const;

  /// True iff `h` is a primary root: perfect, and parent absent or
  /// non-perfect.
  bool is_primary_root(int h) const;

  /// Full structural validation of the haft definition at `root`.
  bool is_haft(int root) const;

  /// Leaf labels in left-to-right order.
  std::vector<uint64_t> leaf_labels(int root) const;

  /// Depth of the subtree (== node(root).height, revalidated structurally).
  int depth(int root) const;

  int live_node_count() const { return live_count_; }

 private:
  void tombstone(int h);
  void collect_perfect(int h, std::vector<int>* out);

  std::vector<Node> nodes_;
  int live_count_ = 0;
};

}  // namespace fg::haft
