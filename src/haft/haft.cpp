#include "haft/haft.h"

#include <algorithm>
#include <bit>
#include <iterator>

#include "util/check.h"

namespace fg::haft {

int ceil_log2(int64_t l) {
  FG_CHECK(l >= 1);
  if (l == 1) return 0;
  return std::bit_width(static_cast<uint64_t>(l - 1));
}

namespace {

struct Item {
  int64_t size;
  uint64_t key;
  int idx;
};

bool item_less(const Item& a, const Item& b) {
  if (a.size != b.size) return a.size < b.size;
  if (a.key != b.key) return a.key < b.key;
  return a.idx < b.idx;
}

}  // namespace

namespace {
std::vector<MergeStep> plan_impl(std::vector<PieceInfo> pieces, bool chain);
}  // namespace

std::vector<MergeStep> merge_plan(std::vector<PieceInfo> pieces) {
  return plan_impl(std::move(pieces), /*chain=*/true);
}

std::vector<MergeStep> carry_plan(std::vector<PieceInfo> pieces) {
  return plan_impl(std::move(pieces), /*chain=*/false);
}

namespace {
// K-way bottom-up planner. Semantically this is still Algorithm A.9 —
// binary addition with carries, then the ascending chain — and it emits a
// step sequence *identical* to the textbook sorted-list formulation (pair
// the two smallest equal-sized trees, re-insert the carry, repeat; pinned
// by the MergePlan.MatchesReferenceImplementation regression test). The
// difference is purely mechanical: instead of erase/insert churn on one
// sorted vector (O(k) per carry, O(k^2) for the star-hub case where all k
// pieces have equal size), it sweeps the size classes bottom-up. A class's
// members are the input pieces of that size merged with the carries of the
// class below; both lists arrive sorted by (key, idx), so the merge is
// linear and the whole plan costs O(k log k) — the sort dominates.
//
// Why the class sweep reproduces the sorted-list order exactly:
//   * the scan of the sorted list only reaches size class s after class
//     s/2 is exhausted, so every carry into s exists before s is paired;
//   * carries are created left-to-right from a key-sorted class, so they
//     arrive in ascending (key, idx) order themselves;
//   * a carry is strictly bigger than every not-yet-paired piece of its
//     originating class, so pairing is always "two smallest first".
std::vector<MergeStep> plan_impl(std::vector<PieceInfo> pieces, bool chain) {
  for (const auto& p : pieces) FG_CHECK_MSG(is_pow2(p.leaf_count), "piece not perfect");
  const int k = static_cast<int>(pieces.size());
  std::vector<MergeStep> plan;
  if (k <= 1) return plan;

  std::vector<Item> items;
  items.reserve(pieces.size());
  for (int i = 0; i < k; ++i) items.push_back({pieces[i].leaf_count, pieces[i].key, i});
  std::sort(items.begin(), items.end(), item_less);
  plan.reserve(items.size());

  int next_idx = k;

  // Phase 1 (Algorithm A.9 lines 5-19): binary addition, one size class at
  // a time. `carry` always holds a single size (the class above the last
  // one processed); at most one piece per class survives unpaired.
  std::vector<Item> survivors;   // distinct sizes, ascending
  std::vector<Item> carry;       // carries awaiting the next class
  std::vector<Item> cls, next_carry;
  size_t i = 0;
  while (i < items.size() || !carry.empty()) {
    int64_t s = carry.empty() ? items[i].size
                              : (i < items.size() ? std::min(items[i].size, carry.front().size)
                                                  : carry.front().size);
    size_t j = i;
    while (j < items.size() && items[j].size == s) ++j;

    cls.clear();
    if (!carry.empty() && carry.front().size == s) {
      std::merge(items.begin() + static_cast<long>(i), items.begin() + static_cast<long>(j),
                 carry.begin(), carry.end(), std::back_inserter(cls), item_less);
      carry.clear();
    } else {
      cls.assign(items.begin() + static_cast<long>(i), items.begin() + static_cast<long>(j));
    }
    i = j;

    next_carry.clear();
    size_t m = 0;
    for (; m + 1 < cls.size(); m += 2) {
      // cls is key-sorted, so cls[m].key is the pair's minimum — the key
      // the carry inherits.
      plan.push_back({cls[m].idx, cls[m + 1].idx, next_idx});
      next_carry.push_back({s * 2, cls[m].key, next_idx++});
    }
    if (m < cls.size()) survivors.push_back(cls[m]);
    carry.swap(next_carry);
  }

  // Phase 2 (lines 20-28): all sizes now distinct; chain ascending, always
  // making the next (strictly bigger) tree the left child. Because the sizes
  // are distinct powers of two, the accumulated haft is always smaller than
  // the next tree, which keeps the haft property.
  if (chain) {
    for (size_t j = 0; j + 1 < survivors.size(); ++j) {
      MergeStep step{survivors[j + 1].idx, survivors[j].idx, next_idx++};
      plan.push_back(step);
      survivors[j + 1] = {survivors[j + 1].size + survivors[j].size,
                          std::min(survivors[j].key, survivors[j + 1].key), step.result};
    }
  }
  return plan;
}
}  // namespace

// ---------------------------------------------------------------------------
// HaftForest

int HaftForest::make_leaf(uint64_t label) {
  Node n;
  n.label = label;
  nodes_.push_back(n);
  ++live_count_;
  return static_cast<int>(nodes_.size() - 1);
}

int HaftForest::join(int left, int right) {
  FG_CHECK(exists(left) && exists(right));
  FG_CHECK_MSG(nodes_[left].parent == -1 && nodes_[right].parent == -1,
               "join operands must be roots");
  Node n;
  n.is_leaf = false;
  n.left = left;
  n.right = right;
  n.height = 1 + std::max(nodes_[left].height, nodes_[right].height);
  n.leaf_count = nodes_[left].leaf_count + nodes_[right].leaf_count;
  nodes_.push_back(n);
  ++live_count_;
  int h = static_cast<int>(nodes_.size() - 1);
  nodes_[left].parent = h;
  nodes_[right].parent = h;
  return h;
}

int HaftForest::build(int64_t l, uint64_t first_label) {
  FG_CHECK(l >= 1);
  std::vector<int> leaves;
  leaves.reserve(static_cast<size_t>(l));
  for (int64_t i = 0; i < l; ++i) leaves.push_back(make_leaf(first_label + static_cast<uint64_t>(i)));
  return merge(leaves);
}

std::vector<int> HaftForest::strip(int root) {
  FG_CHECK(exists(root));
  FG_CHECK(nodes_[root].parent == -1);
  FG_CHECK_MSG(is_haft(root), "strip requires a haft");
  std::vector<int> out;
  int cur = root;
  // Walk the right spine (the "direct path towards the rightmost leaf"),
  // peeling off the complete left subtrees; the peeled nodes are exactly the
  // h-1 square-box nodes of Figure 3(b).
  while (!is_perfect(cur)) {
    int l = nodes_[cur].left;
    int r = nodes_[cur].right;
    FG_CHECK_MSG(is_perfect(l), "left child of a haft node must be complete");
    detach(l);
    detach(r);
    out.push_back(l);
    tombstone(cur);
    cur = r;
  }
  out.push_back(cur);
  return out;
}

std::vector<int> HaftForest::strip_fragment(int root) {
  FG_CHECK(exists(root));
  FG_CHECK(nodes_[root].parent == -1);
  std::vector<int> out;
  collect_perfect(root, &out);
  return out;
}

void HaftForest::collect_perfect(int h, std::vector<int>* out) {
  if (is_perfect(h)) {
    detach(h);
    out->push_back(h);
    return;
  }
  int l = nodes_[h].left;
  int r = nodes_[h].right;
  if (l != -1) collect_perfect(l, out);
  if (r != -1) collect_perfect(r, out);
  tombstone(h);
}

int HaftForest::merge(const std::vector<int>& roots) {
  FG_CHECK(!roots.empty());
  std::vector<int> piece_handles;
  for (int r : roots) {
    auto pieces = strip_fragment(r);
    piece_handles.insert(piece_handles.end(), pieces.begin(), pieces.end());
  }
  if (piece_handles.size() == 1) return piece_handles.front();

  std::vector<PieceInfo> infos;
  infos.reserve(piece_handles.size());
  for (int h : piece_handles) {
    // Deterministic key: the smallest leaf label in the piece.
    auto labels = leaf_labels(h);
    uint64_t key = *std::min_element(labels.begin(), labels.end());
    infos.push_back({nodes_[h].leaf_count, key});
  }
  auto plan = merge_plan(std::move(infos));
  for (const auto& step : plan) {
    int made = join(piece_handles[static_cast<size_t>(step.left)],
                    piece_handles[static_cast<size_t>(step.right)]);
    FG_CHECK(static_cast<int>(piece_handles.size()) == step.result);
    piece_handles.push_back(made);
  }
  int result = piece_handles.back();
  FG_CHECK_MSG(is_haft(result), "merge must produce a haft");
  return result;
}

void HaftForest::detach(int h) {
  FG_CHECK(exists(h));
  int p = nodes_[h].parent;
  if (p == -1) return;
  if (nodes_[p].left == h) nodes_[p].left = -1;
  if (nodes_[p].right == h) nodes_[p].right = -1;
  nodes_[h].parent = -1;
}

const HaftForest::Node& HaftForest::node(int h) const {
  FG_CHECK(exists(h));
  return nodes_[static_cast<size_t>(h)];
}

bool HaftForest::exists(int h) const {
  return h >= 0 && h < static_cast<int>(nodes_.size()) && nodes_[static_cast<size_t>(h)].alive;
}

int HaftForest::root_of(int h) const {
  FG_CHECK(exists(h));
  while (nodes_[static_cast<size_t>(h)].parent != -1) h = nodes_[static_cast<size_t>(h)].parent;
  return h;
}

bool HaftForest::is_perfect(int h) const {
  const Node& n = node(h);
  return n.leaf_count == (int64_t{1} << n.height);
}

bool HaftForest::is_primary_root(int h) const {
  const Node& n = node(h);
  if (!is_perfect(h)) return false;
  return n.parent == -1 || !is_perfect(n.parent);
}

namespace {
// Recompute (leaves, height) and verify the stored fields; returns false on
// any structural inconsistency.
struct Validator {
  const HaftForest& f;
  bool ok = true;

  std::pair<int64_t, int> visit(int h) {
    if (!f.exists(h)) {
      ok = false;
      return {0, 0};
    }
    const auto& n = f.node(h);
    if (n.is_leaf) {
      if (n.left != -1 || n.right != -1 || n.leaf_count != 1 || n.height != 0) ok = false;
      return {1, 0};
    }
    if (n.left == -1 || n.right == -1) {
      ok = false;
      return {0, 0};
    }
    if (f.node(n.left).parent != h || f.node(n.right).parent != h) ok = false;
    auto [ll, lh] = visit(n.left);
    auto [rl, rh] = visit(n.right);
    int64_t leaves = ll + rl;
    int height = 1 + std::max(lh, rh);
    if (leaves != n.leaf_count || height != n.height) ok = false;
    // Haft property: the left child roots a complete subtree holding at
    // least half the leaves.
    if (!(f.node(n.left).leaf_count == (int64_t{1} << f.node(n.left).height))) ok = false;
    if (ll < rl) ok = false;
    return {leaves, height};
  }
};
}  // namespace

bool HaftForest::is_haft(int root) const {
  if (!exists(root)) return false;
  Validator v{*this};
  v.visit(root);
  return v.ok;
}

std::vector<uint64_t> HaftForest::leaf_labels(int root) const {
  std::vector<uint64_t> out;
  std::vector<int> stack{root};
  while (!stack.empty()) {
    int h = stack.back();
    stack.pop_back();
    const Node& n = node(h);
    if (n.is_leaf) {
      out.push_back(n.label);
      continue;
    }
    // Right pushed first so that the left subtree is emitted first.
    if (n.right != -1) stack.push_back(n.right);
    if (n.left != -1) stack.push_back(n.left);
  }
  return out;
}

int HaftForest::depth(int root) const { return node(root).height; }

void HaftForest::tombstone(int h) {
  FG_CHECK(exists(h));
  detach(h);
  nodes_[static_cast<size_t>(h)].alive = false;
  nodes_[static_cast<size_t>(h)].left = -1;
  nodes_[static_cast<size_t>(h)].right = -1;
  --live_count_;
}

}  // namespace fg::haft
