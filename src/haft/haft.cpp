#include "haft/haft.h"

#include <algorithm>
#include <bit>

#include "util/check.h"

namespace fg::haft {

int ceil_log2(int64_t l) {
  FG_CHECK(l >= 1);
  if (l == 1) return 0;
  return std::bit_width(static_cast<uint64_t>(l - 1));
}

namespace {

struct Item {
  int64_t size;
  uint64_t key;
  int idx;
};

bool item_less(const Item& a, const Item& b) {
  if (a.size != b.size) return a.size < b.size;
  if (a.key != b.key) return a.key < b.key;
  return a.idx < b.idx;
}

}  // namespace

namespace {
std::vector<MergeStep> plan_impl(std::vector<PieceInfo> pieces, bool chain);
}  // namespace

std::vector<MergeStep> merge_plan(std::vector<PieceInfo> pieces) {
  return plan_impl(std::move(pieces), /*chain=*/true);
}

std::vector<MergeStep> carry_plan(std::vector<PieceInfo> pieces) {
  return plan_impl(std::move(pieces), /*chain=*/false);
}

namespace {
std::vector<MergeStep> plan_impl(std::vector<PieceInfo> pieces, bool chain) {
  for (const auto& p : pieces) FG_CHECK_MSG(is_pow2(p.leaf_count), "piece not perfect");
  const int k = static_cast<int>(pieces.size());
  std::vector<MergeStep> plan;
  if (k <= 1) return plan;

  std::vector<Item> items;
  items.reserve(pieces.size());
  for (int i = 0; i < k; ++i) items.push_back({pieces[i].leaf_count, pieces[i].key, i});
  std::sort(items.begin(), items.end(), item_less);

  int next_idx = k;

  // Phase 1 (Algorithm A.9 lines 5-19): binary addition with carries — pair
  // adjacent equal-sized trees; the merged tree re-enters the sorted list and
  // scanning resumes just before the insertion point so carries cascade.
  size_t i = 0;
  while (i + 1 < items.size()) {
    if (items[i].size != items[i + 1].size) {
      ++i;
      continue;
    }
    MergeStep step{items[i].idx, items[i + 1].idx, next_idx++};
    plan.push_back(step);
    Item merged{items[i].size * 2, std::min(items[i].key, items[i + 1].key), step.result};
    items.erase(items.begin() + static_cast<long>(i), items.begin() + static_cast<long>(i) + 2);
    auto pos = std::lower_bound(items.begin(), items.end(), merged, item_less);
    FG_CHECK(static_cast<size_t>(pos - items.begin()) >= i);  // list stays sorted
    items.insert(pos, merged);
    // Continue at i: the merged (strictly bigger) piece landed at or after i,
    // so the element now at i is the next still-unpaired piece.
  }

  // Phase 2 (lines 20-28): all sizes now distinct; chain ascending, always
  // making the next (strictly bigger) tree the left child. Because the sizes
  // are distinct powers of two, the accumulated haft is always smaller than
  // the next tree, which keeps the haft property.
  if (chain) {
    for (size_t j = 0; j + 1 < items.size(); ++j) {
      MergeStep step{items[j + 1].idx, items[j].idx, next_idx++};
      plan.push_back(step);
      items[j + 1] = {items[j + 1].size + items[j].size,
                      std::min(items[j].key, items[j + 1].key), step.result};
    }
  }
  return plan;
}
}  // namespace

// ---------------------------------------------------------------------------
// HaftForest

int HaftForest::make_leaf(uint64_t label) {
  Node n;
  n.label = label;
  nodes_.push_back(n);
  ++live_count_;
  return static_cast<int>(nodes_.size() - 1);
}

int HaftForest::join(int left, int right) {
  FG_CHECK(exists(left) && exists(right));
  FG_CHECK_MSG(nodes_[left].parent == -1 && nodes_[right].parent == -1,
               "join operands must be roots");
  Node n;
  n.is_leaf = false;
  n.left = left;
  n.right = right;
  n.height = 1 + std::max(nodes_[left].height, nodes_[right].height);
  n.leaf_count = nodes_[left].leaf_count + nodes_[right].leaf_count;
  nodes_.push_back(n);
  ++live_count_;
  int h = static_cast<int>(nodes_.size() - 1);
  nodes_[left].parent = h;
  nodes_[right].parent = h;
  return h;
}

int HaftForest::build(int64_t l, uint64_t first_label) {
  FG_CHECK(l >= 1);
  std::vector<int> leaves;
  leaves.reserve(static_cast<size_t>(l));
  for (int64_t i = 0; i < l; ++i) leaves.push_back(make_leaf(first_label + static_cast<uint64_t>(i)));
  return merge(leaves);
}

std::vector<int> HaftForest::strip(int root) {
  FG_CHECK(exists(root));
  FG_CHECK(nodes_[root].parent == -1);
  FG_CHECK_MSG(is_haft(root), "strip requires a haft");
  std::vector<int> out;
  int cur = root;
  // Walk the right spine (the "direct path towards the rightmost leaf"),
  // peeling off the complete left subtrees; the peeled nodes are exactly the
  // h-1 square-box nodes of Figure 3(b).
  while (!is_perfect(cur)) {
    int l = nodes_[cur].left;
    int r = nodes_[cur].right;
    FG_CHECK_MSG(is_perfect(l), "left child of a haft node must be complete");
    detach(l);
    detach(r);
    out.push_back(l);
    tombstone(cur);
    cur = r;
  }
  out.push_back(cur);
  return out;
}

std::vector<int> HaftForest::strip_fragment(int root) {
  FG_CHECK(exists(root));
  FG_CHECK(nodes_[root].parent == -1);
  std::vector<int> out;
  collect_perfect(root, &out);
  return out;
}

void HaftForest::collect_perfect(int h, std::vector<int>* out) {
  if (is_perfect(h)) {
    detach(h);
    out->push_back(h);
    return;
  }
  int l = nodes_[h].left;
  int r = nodes_[h].right;
  if (l != -1) collect_perfect(l, out);
  if (r != -1) collect_perfect(r, out);
  tombstone(h);
}

int HaftForest::merge(const std::vector<int>& roots) {
  FG_CHECK(!roots.empty());
  std::vector<int> piece_handles;
  for (int r : roots) {
    auto pieces = strip_fragment(r);
    piece_handles.insert(piece_handles.end(), pieces.begin(), pieces.end());
  }
  if (piece_handles.size() == 1) return piece_handles.front();

  std::vector<PieceInfo> infos;
  infos.reserve(piece_handles.size());
  for (int h : piece_handles) {
    // Deterministic key: the smallest leaf label in the piece.
    auto labels = leaf_labels(h);
    uint64_t key = *std::min_element(labels.begin(), labels.end());
    infos.push_back({nodes_[h].leaf_count, key});
  }
  auto plan = merge_plan(std::move(infos));
  for (const auto& step : plan) {
    int made = join(piece_handles[static_cast<size_t>(step.left)],
                    piece_handles[static_cast<size_t>(step.right)]);
    FG_CHECK(static_cast<int>(piece_handles.size()) == step.result);
    piece_handles.push_back(made);
  }
  int result = piece_handles.back();
  FG_CHECK_MSG(is_haft(result), "merge must produce a haft");
  return result;
}

void HaftForest::detach(int h) {
  FG_CHECK(exists(h));
  int p = nodes_[h].parent;
  if (p == -1) return;
  if (nodes_[p].left == h) nodes_[p].left = -1;
  if (nodes_[p].right == h) nodes_[p].right = -1;
  nodes_[h].parent = -1;
}

const HaftForest::Node& HaftForest::node(int h) const {
  FG_CHECK(exists(h));
  return nodes_[static_cast<size_t>(h)];
}

bool HaftForest::exists(int h) const {
  return h >= 0 && h < static_cast<int>(nodes_.size()) && nodes_[static_cast<size_t>(h)].alive;
}

int HaftForest::root_of(int h) const {
  FG_CHECK(exists(h));
  while (nodes_[static_cast<size_t>(h)].parent != -1) h = nodes_[static_cast<size_t>(h)].parent;
  return h;
}

bool HaftForest::is_perfect(int h) const {
  const Node& n = node(h);
  return n.leaf_count == (int64_t{1} << n.height);
}

bool HaftForest::is_primary_root(int h) const {
  const Node& n = node(h);
  if (!is_perfect(h)) return false;
  return n.parent == -1 || !is_perfect(n.parent);
}

namespace {
// Recompute (leaves, height) and verify the stored fields; returns false on
// any structural inconsistency.
struct Validator {
  const HaftForest& f;
  bool ok = true;

  std::pair<int64_t, int> visit(int h) {
    if (!f.exists(h)) {
      ok = false;
      return {0, 0};
    }
    const auto& n = f.node(h);
    if (n.is_leaf) {
      if (n.left != -1 || n.right != -1 || n.leaf_count != 1 || n.height != 0) ok = false;
      return {1, 0};
    }
    if (n.left == -1 || n.right == -1) {
      ok = false;
      return {0, 0};
    }
    if (f.node(n.left).parent != h || f.node(n.right).parent != h) ok = false;
    auto [ll, lh] = visit(n.left);
    auto [rl, rh] = visit(n.right);
    int64_t leaves = ll + rl;
    int height = 1 + std::max(lh, rh);
    if (leaves != n.leaf_count || height != n.height) ok = false;
    // Haft property: the left child roots a complete subtree holding at
    // least half the leaves.
    if (!(f.node(n.left).leaf_count == (int64_t{1} << f.node(n.left).height))) ok = false;
    if (ll < rl) ok = false;
    return {leaves, height};
  }
};
}  // namespace

bool HaftForest::is_haft(int root) const {
  if (!exists(root)) return false;
  Validator v{*this};
  v.visit(root);
  return v.ok;
}

std::vector<uint64_t> HaftForest::leaf_labels(int root) const {
  std::vector<uint64_t> out;
  std::vector<int> stack{root};
  while (!stack.empty()) {
    int h = stack.back();
    stack.pop_back();
    const Node& n = node(h);
    if (n.is_leaf) {
      out.push_back(n.label);
      continue;
    }
    // Right pushed first so that the left subtree is emitted first.
    if (n.right != -1) stack.push_back(n.right);
    if (n.left != -1) stack.push_back(n.left);
  }
  return out;
}

int HaftForest::depth(int root) const { return node(root).height; }

void HaftForest::tombstone(int h) {
  FG_CHECK(exists(h));
  detach(h);
  nodes_[static_cast<size_t>(h)].alive = false;
  nodes_[static_cast<size_t>(h)].left = -1;
  nodes_[static_cast<size_t>(h)].right = -1;
  --live_count_;
}

}  // namespace fg::haft
