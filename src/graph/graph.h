// Dynamic undirected simple graph over pooled flat adjacency.
//
// This is the shared substrate for the whole repository: the healed network
// G, the insertions-only reference graph G', and every baseline healer
// operate on Graph. Node ids are small dense integers handed out by the
// caller (the experiment harness allocates them consecutively); removal
// leaves a tombstone so ids are never reused, matching the paper's model in
// which a deleted processor never returns.
//
// Storage model (docs/DESIGN.md, "Graph substrate"): each node's neighbor
// list is a *sorted* flat array — up to kInlineCap ids inline in the
// per-node slot, larger lists in a shared spill pool (one contiguous
// buffer with power-of-two size-class free lists, so an edge flip never
// touches the general-purpose allocator once the pool is warm). Reads are
// cache-linear and the iteration order is ascending by construction, which
// makes every traversal — checkpoints, repair plans, trace output —
// canonical and stdlib-independent (contract C4 determinism no longer
// depends on a hash function).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace fg {

/// Processor / vertex identifier. Dense, non-negative, never reused.
using NodeId = int32_t;

constexpr NodeId kInvalidNode = -1;

/// A read-only, always-sorted, duplicate-free range over the alive
/// neighbors of one node. A lightweight pointer pair: copy freely, but any
/// Graph mutation invalidates outstanding views (the spill pool may move).
class NeighborView {
 public:
  using value_type = NodeId;
  using iterator = const NodeId*;
  using const_iterator = const NodeId*;

  NeighborView() = default;
  NeighborView(const NodeId* first, const NodeId* last) : first_(first), last_(last) {}

  const NodeId* begin() const { return first_; }
  const NodeId* end() const { return last_; }
  size_t size() const { return static_cast<size_t>(last_ - first_); }
  bool empty() const { return first_ == last_; }
  NodeId operator[](size_t i) const { return first_[i]; }
  NodeId front() const { return *first_; }
  NodeId back() const { return *(last_ - 1); }

  /// Membership by binary search (the view is sorted).
  bool contains(NodeId w) const;

 private:
  const NodeId* first_ = nullptr;
  const NodeId* last_ = nullptr;
};

/// One edge flip of a batched mutation (see Graph::apply_edge_deltas).
struct EdgeDelta {
  enum class Op : uint8_t { kAdd, kRemove };

  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  Op op = Op::kAdd;
};

/// Undirected simple graph with tombstoned deletion.
class Graph {
 public:
  Graph() = default;

  /// Create `n` initial nodes with ids 0..n-1 and no edges.
  explicit Graph(int n);

  /// Add a new node and return its id (ids are consecutive).
  NodeId add_node();

  /// Ensure ids [0, id] exist (used when mirroring another graph's ids).
  void ensure_node(NodeId id);

  /// Remove a node and all incident edges. The id becomes dead forever.
  void remove_node(NodeId v);

  /// Add an undirected edge. Returns false if it already existed.
  /// Both endpoints must be alive; self loops are rejected.
  bool add_edge(NodeId u, NodeId v);

  /// Remove an undirected edge. Returns false if it did not exist.
  bool remove_edge(NodeId u, NodeId v);

  /// Apply a batch of edge flips with add_edge / remove_edge semantics per
  /// delta (an add of an existing edge or a remove of an absent one is
  /// skipped); returns how many deltas changed the graph. Each undirected
  /// edge may appear at most once per batch (FG_DCHECKed), so the batch is
  /// order-free and every touched node's list is rebuilt in ONE linear
  /// merge sweep — k flips against one node cost O(degree + k log k), not
  /// O(degree * k). This is the entry point the structural core's commit
  /// drives: one call per region's image-edge side effects.
  int apply_edge_deltas(std::span<const EdgeDelta> deltas);

  /// Bulk-load a canonical edge list into a graph that has no edges yet.
  /// `edges` must be strictly ascending lexicographically with u < v, both
  /// endpoints alive and in range (FG_DCHECKed — the caller validates
  /// untrusted input first; uint32 pairs because that is the snapshot
  /// section layout, so the restore path loads with no conversion copy).
  /// One degree-count pass sizes every neighbor list at its final size
  /// class and lays the spill blocks out back-to-back in one pool
  /// allocation, one fill pass appends through a flat cursor array;
  /// because for each node every smaller neighbor arrives (ascending)
  /// before any larger one, the lists are sorted by construction. O(V + E)
  /// total with no per-edge searches or incremental regrowth — this is the
  /// snapshot restore path.
  void add_edges_bulk(std::span<const std::pair<uint32_t, uint32_t>> edges);

  bool has_edge(NodeId u, NodeId v) const;
  bool is_alive(NodeId v) const;

  /// Number of ids ever created (alive + dead).
  int node_capacity() const { return static_cast<int>(adj_.size()); }

  /// Number of alive nodes.
  int alive_count() const { return alive_count_; }

  /// Number of edges (between alive nodes; dead nodes have none).
  int64_t edge_count() const { return edge_count_; }

  int degree(NodeId v) const;

  /// The neighbors of v as a sorted flat view. Invalidated by any mutation.
  NeighborView neighbors(NodeId v) const;

  /// Visit every neighbor of v in ascending id order.
  template <class F>
  void for_each_neighbor(NodeId v, F&& f) const {
    for (NodeId w : neighbors(v)) f(w);
  }

  /// All alive node ids in increasing order.
  std::vector<NodeId> alive_nodes() const;

  /// Deep equality on alive nodes and edges (used by the centralized vs
  /// distributed equivalence tests).
  bool same_topology(const Graph& other) const;

 private:
  /// Neighbor lists up to this long live inline in the per-node slot;
  /// longer lists spill to the pool (capacities double from kSpillMinCap).
  static constexpr int32_t kInlineCap = 4;
  static constexpr int32_t kSpillMinCap = 8;

  struct AdjSlot {
    int32_t degree = 0;
    int32_t cap = kInlineCap;  ///< == kInlineCap means inline storage.
    uint32_t spill = 0;        ///< Pool offset; meaningful iff cap > kInlineCap.
    NodeId inl[kInlineCap] = {kInvalidNode, kInvalidNode, kInvalidNode, kInvalidNode};
  };

  void check_valid(NodeId v) const;
  const NodeId* adj_data(const AdjSlot& s) const;
  NodeId* adj_data(AdjSlot& s);
  /// Insert w into v's sorted list (false if present). May move the list.
  bool insert_neighbor(NodeId v, NodeId w);
  /// Erase w from v's sorted list (false if absent). Never moves the list.
  bool erase_neighbor(NodeId v, NodeId w);
  void grow_slot(AdjSlot& s);
  /// Ensure capacity for `need` entries, DISCARDING current contents
  /// (single allocation at the final size class — for callers about to
  /// overwrite the whole list).
  void reserve_slot_discard(AdjSlot& s, int32_t need);
  /// Return v's spill block (if any) to its size-class free list.
  void release_slot(AdjSlot& s);
  uint32_t pool_alloc(int32_t cap);
  void pool_free(uint32_t offset, int32_t cap);
  static int size_class(int32_t cap);

  /// One endpoint's view of a delta (each delta contributes two), packed
  /// for a plain-integer sort: node << 32 | other << 1 | is_add. Sorting
  /// the packed keys orders touches by (node, other) with the op in the
  /// low bit.
  using Touch = uint64_t;
  static Touch pack_touch(NodeId node, NodeId other, EdgeDelta::Op op) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(node)) << 32) |
           (static_cast<uint64_t>(static_cast<uint32_t>(other)) << 1) |
           (op == EdgeDelta::Op::kAdd ? 1u : 0u);
  }
  static NodeId touch_node(Touch t) { return static_cast<NodeId>(t >> 32); }
  static NodeId touch_other(Touch t) {
    return static_cast<NodeId>((t >> 1) & 0x7FFFFFFFu);
  }
  static bool touch_is_add(Touch t) { return (t & 1) != 0; }
  /// Rebuild `node`'s sorted list by merging in its touches; counts the
  /// applied flips (on the node < other endpoint only) into added/removed.
  void merge_touches(NodeId node, std::span<const Touch> touches, int* added,
                     int* removed);

  std::vector<AdjSlot> adj_;
  /// The spill pool: every spilled neighbor list is a sub-range of this one
  /// buffer. Blocks are recycled through free_lists_ (one stack of offsets
  /// per power-of-two size class); the buffer itself never shrinks.
  std::vector<NodeId> pool_;
  std::vector<std::vector<uint32_t>> free_lists_;
  std::vector<char> alive_;
  /// apply_edge_deltas scratch, pooled across calls.
  std::vector<Touch> touch_scratch_;
  std::vector<NodeId> merge_scratch_;
  int alive_count_ = 0;
  int64_t edge_count_ = 0;
};

}  // namespace fg
