// Dynamic undirected simple graph.
//
// This is the shared substrate for the whole repository: the healed network
// G, the insertions-only reference graph G', and every baseline healer
// operate on Graph. Node ids are small dense integers handed out by the
// caller (the experiment harness allocates them consecutively); removal
// leaves a tombstone so ids are never reused, matching the paper's model in
// which a deleted processor never returns.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace fg {

/// Processor / vertex identifier. Dense, non-negative, never reused.
using NodeId = int32_t;

constexpr NodeId kInvalidNode = -1;

/// Undirected simple graph with tombstoned deletion.
class Graph {
 public:
  Graph() = default;

  /// Create `n` initial nodes with ids 0..n-1 and no edges.
  explicit Graph(int n);

  /// Add a new node and return its id (ids are consecutive).
  NodeId add_node();

  /// Ensure ids [0, id] exist (used when mirroring another graph's ids).
  void ensure_node(NodeId id);

  /// Remove a node and all incident edges. The id becomes dead forever.
  void remove_node(NodeId v);

  /// Add an undirected edge. Returns false if it already existed.
  /// Both endpoints must be alive; self loops are rejected.
  bool add_edge(NodeId u, NodeId v);

  /// Remove an undirected edge. Returns false if it did not exist.
  bool remove_edge(NodeId u, NodeId v);

  bool has_edge(NodeId u, NodeId v) const;
  bool is_alive(NodeId v) const;

  /// Number of ids ever created (alive + dead).
  int node_capacity() const { return static_cast<int>(adj_.size()); }

  /// Number of alive nodes.
  int alive_count() const { return alive_count_; }

  /// Number of edges (between alive nodes; dead nodes have none).
  int64_t edge_count() const { return edge_count_; }

  int degree(NodeId v) const;

  const std::unordered_set<NodeId>& neighbors(NodeId v) const;

  /// All alive node ids in increasing order.
  std::vector<NodeId> alive_nodes() const;

  /// Deep equality on alive nodes and edges (used by the centralized vs
  /// distributed equivalence tests).
  bool same_topology(const Graph& other) const;

 private:
  void check_valid(NodeId v) const;

  std::vector<std::unordered_set<NodeId>> adj_;
  std::vector<char> alive_;
  int alive_count_ = 0;
  int64_t edge_count_ = 0;
};

}  // namespace fg
