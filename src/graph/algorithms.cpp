#include "graph/algorithms.h"

#include <algorithm>
#include <deque>

#include "util/check.h"

namespace fg {

std::vector<int> bfs_distances(const Graph& g, NodeId src) {
  FG_CHECK(g.is_alive(src));
  std::vector<int> dist(static_cast<size_t>(g.node_capacity()), -1);
  std::deque<NodeId> q;
  dist[src] = 0;
  q.push_back(src);
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop_front();
    for (NodeId w : g.neighbors(v)) {
      if (dist[w] == -1) {
        dist[w] = dist[v] + 1;
        q.push_back(w);
      }
    }
  }
  return dist;
}

int connected_components(const Graph& g) {
  std::vector<char> seen(static_cast<size_t>(g.node_capacity()), 0);
  int components = 0;
  for (NodeId v : g.alive_nodes()) {
    if (seen[v]) continue;
    ++components;
    std::deque<NodeId> q{v};
    seen[v] = 1;
    while (!q.empty()) {
      NodeId x = q.front();
      q.pop_front();
      for (NodeId w : g.neighbors(x)) {
        if (!seen[w]) {
          seen[w] = 1;
          q.push_back(w);
        }
      }
    }
  }
  return components;
}

bool is_connected(const Graph& g) { return connected_components(g) <= 1; }

int eccentricity(const Graph& g, NodeId src) {
  auto dist = bfs_distances(g, src);
  int ecc = 0;
  for (int d : dist) ecc = std::max(ecc, d);
  return ecc;
}

int diameter_lower_bound(const Graph& g, NodeId hint) {
  auto alive = g.alive_nodes();
  if (alive.size() <= 1) return 0;
  NodeId start = (hint != kInvalidNode && g.is_alive(hint)) ? hint : alive.front();
  auto d1 = bfs_distances(g, start);
  NodeId far = start;
  for (NodeId v : alive)
    if (d1[v] > d1[far]) far = v;
  return eccentricity(g, far);
}

int exact_diameter(const Graph& g) {
  int diam = 0;
  for (NodeId v : g.alive_nodes()) diam = std::max(diam, eccentricity(g, v));
  return diam;
}

}  // namespace fg
