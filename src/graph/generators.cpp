#include "graph/generators.h"

#include <algorithm>
#include <deque>

#include "graph/algorithms.h"
#include "util/check.h"

namespace fg {

Graph make_star(int n) {
  FG_CHECK(n >= 1);
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph make_path(int n) {
  FG_CHECK(n >= 1);
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph make_cycle(int n) {
  FG_CHECK(n >= 3);
  Graph g = make_path(n);
  g.add_edge(n - 1, 0);
  return g;
}

Graph make_grid(int rows, int cols) {
  FG_CHECK(rows >= 1 && cols >= 1);
  Graph g(rows * cols);
  auto id = [cols](int r, int c) { return static_cast<NodeId>(r * cols + c); };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph make_complete(int n) {
  FG_CHECK(n >= 1);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

Graph make_binary_tree(int n) {
  FG_CHECK(n >= 1);
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(v, (v - 1) / 2);
  return g;
}

Graph make_random_tree(int n, Rng& rng) {
  FG_CHECK(n >= 1);
  Graph g(n);
  for (NodeId v = 1; v < n; ++v)
    g.add_edge(v, static_cast<NodeId>(rng.next_below(static_cast<uint64_t>(v))));
  return g;
}

Graph make_erdos_renyi(int n, double p, Rng& rng) {
  FG_CHECK(n >= 1);
  FG_CHECK(p >= 0.0 && p <= 1.0);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v)
      if (rng.next_bool(p)) g.add_edge(u, v);

  // Patch to connectivity: attach every secondary component to component 0.
  std::vector<int> comp(static_cast<size_t>(n), -1);
  int ncomp = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (comp[v] != -1) continue;
    std::deque<NodeId> q{v};
    comp[v] = ncomp;
    while (!q.empty()) {
      NodeId x = q.front();
      q.pop_front();
      for (NodeId w : g.neighbors(x))
        if (comp[w] == -1) {
          comp[w] = ncomp;
          q.push_back(w);
        }
    }
    ++ncomp;
  }
  if (ncomp > 1) {
    std::vector<NodeId> rep(static_cast<size_t>(ncomp), kInvalidNode);
    for (NodeId v = 0; v < n; ++v)
      if (rep[comp[v]] == kInvalidNode) rep[comp[v]] = v;
    std::vector<NodeId> comp0;
    for (NodeId v = 0; v < n; ++v)
      if (comp[v] == 0) comp0.push_back(v);
    for (int c = 1; c < ncomp; ++c) g.add_edge(rep[c], rng.pick(comp0));
  }
  return g;
}

Graph make_barabasi_albert(int n, int m, Rng& rng) {
  FG_CHECK(m >= 1);
  FG_CHECK(n > m);
  Graph g(n);
  // Seed: complete graph over the first m+1 nodes.
  for (NodeId u = 0; u <= m; ++u)
    for (NodeId v = u + 1; v <= m; ++v) g.add_edge(u, v);

  // Degree-proportional sampling via the repeated-endpoints trick.
  std::vector<NodeId> endpoints;
  for (NodeId u = 0; u <= m; ++u)
    for (int k = 0; k <= m; ++k)
      if (k != u) endpoints.push_back(u);

  for (NodeId v = m + 1; v < n; ++v) {
    std::vector<NodeId> targets;
    while (static_cast<int>(targets.size()) < m) {
      NodeId t = rng.pick(endpoints);
      if (t != v && std::find(targets.begin(), targets.end(), t) == targets.end())
        targets.push_back(t);
    }
    for (NodeId t : targets) {
      g.add_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return g;
}

Graph make_sparse_random(int n, double avg_degree, Rng& rng) {
  FG_CHECK(n >= 1);
  FG_CHECK_MSG(avg_degree >= 2.0, "the spanning tree alone has mean degree ~2");
  // Connectivity by construction: a uniform random attachment tree.
  Graph g = make_random_tree(n, rng);
  if (n < 2) return g;
  // Top up to ~avg_degree mean degree with uniformly sampled extra edges.
  // add_edge rejects duplicates, so the loop counts attempts, not
  // successes: at sparse densities collisions are rare and the expected
  // degree error is far below the generator's own variance.
  int64_t extra =
      static_cast<int64_t>(avg_degree / 2.0 * n) - static_cast<int64_t>(n - 1);
  for (int64_t i = 0; i < extra; ++i) {
    NodeId u = static_cast<NodeId>(rng.next_below(static_cast<uint64_t>(n)));
    NodeId v = static_cast<NodeId>(rng.next_below(static_cast<uint64_t>(n)));
    if (u != v) g.add_edge(u, v);
  }
  return g;
}

}  // namespace fg
