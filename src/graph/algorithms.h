// Graph algorithms used by the metrics pipeline: BFS distances, connectivity,
// components, eccentricity / diameter estimation.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace fg {

/// Distance (hop count) from `src` to every node id; -1 if unreachable or
/// dead. `src` must be alive.
std::vector<int> bfs_distances(const Graph& g, NodeId src);

/// Number of connected components among alive nodes (0 for the empty graph).
int connected_components(const Graph& g);

/// True iff all alive nodes are in one component (vacuously true for <=1).
bool is_connected(const Graph& g);

/// Eccentricity of `src` restricted to its component.
int eccentricity(const Graph& g, NodeId src);

/// Two-sweep BFS lower bound on the diameter (exact on trees). Returns 0 for
/// graphs with <= 1 alive node.
int diameter_lower_bound(const Graph& g, NodeId hint = kInvalidNode);

/// Exact diameter by all-pairs BFS; intended for n up to a few thousand.
int exact_diameter(const Graph& g);

}  // namespace fg
