// Seed-graph generators for the experiment harness.
//
// Every generator returns a *connected* graph over ids 0..n-1: the paper's
// model starts from a connected network, and all of its guarantees are
// stated relative to that starting point.
#pragma once

#include "graph/graph.h"
#include "util/rng.h"

namespace fg {

/// Star: node 0 is the hub, nodes 1..n-1 are leaves. Used in Theorem 2.
Graph make_star(int n);

/// Simple path 0-1-...-n-1.
Graph make_path(int n);

/// Cycle over n >= 3 nodes.
Graph make_cycle(int n);

/// rows x cols grid.
Graph make_grid(int rows, int cols);

/// Complete graph K_n.
Graph make_complete(int n);

/// Complete binary tree over n nodes (heap indexing).
Graph make_binary_tree(int n);

/// Uniform random labelled tree (random attachment).
Graph make_random_tree(int n, Rng& rng);

/// Erdos-Renyi G(n, p), patched to connectivity by linking each non-giant
/// component to a random node of the giant with one extra edge.
Graph make_erdos_renyi(int n, double p, Rng& rng);

/// Barabasi-Albert preferential attachment: each new node attaches `m`
/// edges; degree distribution is a power law, matching the cascading-failure
/// literature the paper's related-work section discusses.
Graph make_barabasi_albert(int n, int m, Rng& rng);

/// Connected sparse random graph with ~avg_degree mean degree, built in
/// O(n * avg_degree): a uniform random spanning tree plus uniformly sampled
/// extra edges (duplicates skipped). The million-node substrate the
/// sustained-churn service driver starts from — make_erdos_renyi flips all
/// O(n^2) coins and is unusable past ~10^4 nodes. Requires avg_degree >= 2
/// (the tree alone contributes mean degree just under 2).
Graph make_sparse_random(int n, double avg_degree, Rng& rng);

}  // namespace fg
