#include "graph/graph.h"

#include <algorithm>

#include "util/check.h"

namespace fg {

Graph::Graph(int n) {
  FG_CHECK(n >= 0);
  adj_.resize(static_cast<size_t>(n));
  alive_.assign(static_cast<size_t>(n), 1);
  alive_count_ = n;
}

NodeId Graph::add_node() {
  adj_.emplace_back();
  alive_.push_back(1);
  ++alive_count_;
  return static_cast<NodeId>(adj_.size() - 1);
}

void Graph::ensure_node(NodeId id) {
  FG_CHECK(id >= 0);
  while (node_capacity() <= id) add_node();
}

void Graph::remove_node(NodeId v) {
  check_valid(v);
  FG_CHECK_MSG(alive_[v], "removing a dead node");
  for (NodeId u : adj_[v]) {
    adj_[u].erase(v);
    --edge_count_;
  }
  adj_[v].clear();
  alive_[v] = 0;
  --alive_count_;
}

bool Graph::add_edge(NodeId u, NodeId v) {
  check_valid(u);
  check_valid(v);
  FG_CHECK_MSG(u != v, "self loop");
  FG_CHECK_MSG(alive_[u] && alive_[v], "edge endpoint is dead");
  if (adj_[u].contains(v)) return false;
  adj_[u].insert(v);
  adj_[v].insert(u);
  ++edge_count_;
  return true;
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  check_valid(u);
  check_valid(v);
  if (!adj_[u].contains(v)) return false;
  adj_[u].erase(v);
  adj_[v].erase(u);
  --edge_count_;
  return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_valid(u);
  check_valid(v);
  return adj_[u].contains(v);
}

bool Graph::is_alive(NodeId v) const {
  if (v < 0 || v >= node_capacity()) return false;
  return alive_[v] != 0;
}

int Graph::degree(NodeId v) const {
  check_valid(v);
  return static_cast<int>(adj_[v].size());
}

const std::unordered_set<NodeId>& Graph::neighbors(NodeId v) const {
  check_valid(v);
  return adj_[v];
}

std::vector<NodeId> Graph::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(static_cast<size_t>(alive_count_));
  for (NodeId v = 0; v < node_capacity(); ++v)
    if (alive_[v]) out.push_back(v);
  return out;
}

bool Graph::same_topology(const Graph& other) const {
  if (alive_count_ != other.alive_count_) return false;
  if (edge_count_ != other.edge_count_) return false;
  int cap = std::min(node_capacity(), other.node_capacity());
  for (NodeId v = 0; v < node_capacity(); ++v)
    if (alive_[v] && (v >= cap || !other.alive_[v])) return false;
  for (NodeId v = 0; v < other.node_capacity(); ++v)
    if (other.alive_[v] && (v >= cap || !alive_[v])) return false;
  for (NodeId v = 0; v < cap; ++v) {
    if (!alive_[v]) continue;
    if (adj_[v] != other.adj_[v]) return false;
  }
  return true;
}

void Graph::check_valid(NodeId v) const {
  FG_CHECK_MSG(v >= 0 && v < node_capacity(), "node id out of range");
}

}  // namespace fg
