#include "graph/graph.h"

#include <algorithm>

#include "util/check.h"

namespace fg {

bool NeighborView::contains(NodeId w) const {
  const NodeId* it = std::lower_bound(first_, last_, w);
  return it != last_ && *it == w;
}

Graph::Graph(int n) {
  FG_CHECK(n >= 0);
  adj_.resize(static_cast<size_t>(n));
  alive_.assign(static_cast<size_t>(n), 1);
  alive_count_ = n;
}

NodeId Graph::add_node() {
  adj_.emplace_back();
  alive_.push_back(1);
  ++alive_count_;
  return static_cast<NodeId>(adj_.size() - 1);
}

void Graph::ensure_node(NodeId id) {
  FG_CHECK(id >= 0);
  while (node_capacity() <= id) add_node();
}

const NodeId* Graph::adj_data(const AdjSlot& s) const {
  return s.cap == kInlineCap ? s.inl : pool_.data() + s.spill;
}

NodeId* Graph::adj_data(AdjSlot& s) {
  return s.cap == kInlineCap ? s.inl : pool_.data() + s.spill;
}

int Graph::size_class(int32_t cap) {
  int cls = 0;
  for (int32_t c = kSpillMinCap; c < cap; c <<= 1) ++cls;
  return cls;
}

uint32_t Graph::pool_alloc(int32_t cap) {
  int cls = size_class(cap);
  if (static_cast<size_t>(cls) < free_lists_.size() && !free_lists_[static_cast<size_t>(cls)].empty()) {
    uint32_t offset = free_lists_[static_cast<size_t>(cls)].back();
    free_lists_[static_cast<size_t>(cls)].pop_back();
    return offset;
  }
  size_t offset = pool_.size();
  pool_.resize(offset + static_cast<size_t>(cap));
  return static_cast<uint32_t>(offset);
}

void Graph::pool_free(uint32_t offset, int32_t cap) {
  size_t cls = static_cast<size_t>(size_class(cap));
  if (free_lists_.size() <= cls) free_lists_.resize(cls + 1);
  free_lists_[cls].push_back(offset);
}

void Graph::grow_slot(AdjSlot& s) {
  int32_t new_cap = s.cap == kInlineCap ? kSpillMinCap : s.cap * 2;
  // Allocate before reading the old block: pool_alloc may move the pool,
  // but offsets are stable, so re-derive pointers afterwards.
  uint32_t new_offset = pool_alloc(new_cap);
  const NodeId* old = s.cap == kInlineCap ? s.inl : pool_.data() + s.spill;
  std::copy(old, old + s.degree, pool_.begin() + new_offset);
  if (s.cap != kInlineCap) pool_free(s.spill, s.cap);
  s.spill = new_offset;
  s.cap = new_cap;
}

void Graph::reserve_slot_discard(AdjSlot& s, int32_t need) {
  if (need <= s.cap) return;
  int32_t new_cap = s.cap == kInlineCap ? kSpillMinCap : s.cap;
  while (new_cap < need) new_cap *= 2;
  uint32_t new_offset = pool_alloc(new_cap);
  if (s.cap != kInlineCap) pool_free(s.spill, s.cap);
  s.spill = new_offset;
  s.cap = new_cap;
}

void Graph::release_slot(AdjSlot& s) {
  if (s.cap != kInlineCap) pool_free(s.spill, s.cap);
  s = AdjSlot{};
}

bool Graph::insert_neighbor(NodeId v, NodeId w) {
  AdjSlot& s = adj_[static_cast<size_t>(v)];
  NodeId* data = adj_data(s);
  NodeId* it = std::lower_bound(data, data + s.degree, w);
  if (it != data + s.degree && *it == w) return false;
  size_t idx = static_cast<size_t>(it - data);
  if (s.degree == s.cap) {
    grow_slot(s);
    data = adj_data(s);
  }
  std::copy_backward(data + idx, data + s.degree, data + s.degree + 1);
  data[idx] = w;
  ++s.degree;
  return true;
}

bool Graph::erase_neighbor(NodeId v, NodeId w) {
  AdjSlot& s = adj_[static_cast<size_t>(v)];
  NodeId* data = adj_data(s);
  NodeId* it = std::lower_bound(data, data + s.degree, w);
  if (it == data + s.degree || *it != w) return false;
  std::copy(it + 1, data + s.degree, it);
  --s.degree;
  return true;
}

void Graph::remove_node(NodeId v) {
  check_valid(v);
  FG_CHECK_MSG(alive_[static_cast<size_t>(v)], "removing a dead node");
  // erase_neighbor never allocates, so v's own list stays put while its
  // neighbors' lists are edited.
  for (NodeId u : neighbors(v)) {
    erase_neighbor(u, v);
    --edge_count_;
  }
  release_slot(adj_[static_cast<size_t>(v)]);
  alive_[static_cast<size_t>(v)] = 0;
  --alive_count_;
}

bool Graph::add_edge(NodeId u, NodeId v) {
  check_valid(u);
  check_valid(v);
  FG_CHECK_MSG(u != v, "self loop");
  FG_CHECK_MSG(alive_[static_cast<size_t>(u)] && alive_[static_cast<size_t>(v)],
               "edge endpoint is dead");
  if (!insert_neighbor(u, v)) return false;
  insert_neighbor(v, u);
  ++edge_count_;
  return true;
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  check_valid(u);
  check_valid(v);
  if (!erase_neighbor(u, v)) return false;
  erase_neighbor(v, u);
  --edge_count_;
  return true;
}

int Graph::apply_edge_deltas(std::span<const EdgeDelta> deltas) {
  if (deltas.empty()) return 0;
  touch_scratch_.clear();
  touch_scratch_.reserve(2 * deltas.size());
  for (const EdgeDelta& d : deltas) {
    check_valid(d.u);
    check_valid(d.v);
    if (d.op == EdgeDelta::Op::kAdd) {
      FG_CHECK_MSG(d.u != d.v, "self loop");
      FG_CHECK_MSG(alive_[static_cast<size_t>(d.u)] && alive_[static_cast<size_t>(d.v)],
                   "edge endpoint is dead");
    }
    touch_scratch_.push_back(pack_touch(d.u, d.v, d.op));
    touch_scratch_.push_back(pack_touch(d.v, d.u, d.op));
  }
  std::sort(touch_scratch_.begin(), touch_scratch_.end());
#ifndef NDEBUG
  for (size_t i = 1; i < touch_scratch_.size(); ++i)
    FG_DCHECK((touch_scratch_[i - 1] >> 1) != (touch_scratch_[i] >> 1));
#endif
  int added = 0;
  int removed = 0;
  for (size_t i = 0; i < touch_scratch_.size();) {
    size_t j = i;
    NodeId node = touch_node(touch_scratch_[i]);
    while (j < touch_scratch_.size() && touch_node(touch_scratch_[j]) == node) ++j;
    if (j - i == 1) {
      // Single flip on this node: a direct sorted insert/erase beats a
      // whole-list rebuild.
      Touch t = touch_scratch_[i];
      NodeId other = touch_other(t);
      bool changed =
          touch_is_add(t) ? insert_neighbor(node, other) : erase_neighbor(node, other);
      if (changed && node < other) ++(touch_is_add(t) ? added : removed);
    } else {
      merge_touches(node, std::span<const Touch>(touch_scratch_.data() + i, j - i),
                    &added, &removed);
    }
    i = j;
  }
  edge_count_ += added - removed;
  return added + removed;
}

void Graph::merge_touches(NodeId node, std::span<const Touch> touches, int* added,
                          int* removed) {
  AdjSlot& s = adj_[static_cast<size_t>(node)];
  const NodeId* data = adj_data(s);
  merge_scratch_.clear();
  size_t t = 0;
  for (int i = 0; i < s.degree || t < touches.size();) {
    if (t == touches.size() || (i < s.degree && data[i] < touch_other(touches[t]))) {
      merge_scratch_.push_back(data[i++]);
      continue;
    }
    Touch touch = touches[t++];
    NodeId other = touch_other(touch);
    bool present = i < s.degree && data[i] == other;
    // Count each edge once, at its node < other endpoint (ids differ, so
    // exactly one of the two touches qualifies).
    bool primary = node < other;
    if (touch_is_add(touch)) {
      merge_scratch_.push_back(other);  // keep (duplicate add: no-op)
      if (present)
        ++i;
      else if (primary)
        ++*added;
    } else if (present) {
      ++i;  // drop it
      if (primary) ++*removed;
    }  // remove of an absent edge: no-op
  }
  int32_t new_degree = static_cast<int32_t>(merge_scratch_.size());
  reserve_slot_discard(s, new_degree);  // old contents live in merge_scratch_
  std::copy(merge_scratch_.begin(), merge_scratch_.end(), adj_data(s));
  s.degree = new_degree;
}

void Graph::add_edges_bulk(std::span<const std::pair<uint32_t, uint32_t>> edges) {
  FG_CHECK_MSG(edge_count_ == 0, "bulk edge load into a graph that has edges");
  if (edges.empty()) return;
  const size_t n = adj_.size();
  // Pass 1: exact degrees.
  std::vector<int32_t> deg(n, 0);
  uint64_t prev_key = 0;
  for (const auto& [u, v] : edges) {
    FG_DCHECK(u < v && v < n);
    FG_DCHECK(alive_[u] && alive_[v]);
    FG_DCHECK((static_cast<uint64_t>(u) << 32 | v) > prev_key);
    prev_key = static_cast<uint64_t>(u) << 32 | v;
    ++deg[u];
    ++deg[v];
  }
  (void)prev_key;
  if (pool_.empty() && free_lists_.empty()) {
    // Fresh graph: lay all spill blocks out back-to-back and allocate the
    // pool once, instead of one pool_alloc (and its resize churn) per node.
    size_t total = 0;
    for (size_t i = 0; i < n; ++i) {
      if (deg[i] <= kInlineCap) continue;
      AdjSlot& s = adj_[i];
      int32_t cap = kSpillMinCap;
      while (cap < deg[i]) cap *= 2;
      s.cap = cap;
      s.spill = static_cast<uint32_t>(total);
      total += static_cast<size_t>(cap);
    }
    pool_.resize(total);
  } else {
    for (size_t i = 0; i < n; ++i) reserve_slot_discard(adj_[i], deg[i]);
  }
  // Pass 2: append through a flat cursor array (slot headers untouched in
  // the hot loop). Every neighbor < x reaches node x (ascending) before
  // any neighbor > x does, so each list ends up sorted without a search.
  std::vector<NodeId*> cur(n);
  for (size_t i = 0; i < n; ++i) cur[i] = adj_data(adj_[i]);
  for (const auto& [u, v] : edges) {
    *cur[u]++ = static_cast<NodeId>(v);
    *cur[v]++ = static_cast<NodeId>(u);
  }
  for (size_t i = 0; i < n; ++i) adj_[i].degree = deg[i];
  edge_count_ = static_cast<int64_t>(edges.size());
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_valid(u);
  check_valid(v);
  // Search the smaller list.
  const AdjSlot& su = adj_[static_cast<size_t>(u)];
  const AdjSlot& sv = adj_[static_cast<size_t>(v)];
  const AdjSlot& s = su.degree <= sv.degree ? su : sv;
  NodeId w = su.degree <= sv.degree ? v : u;
  const NodeId* data = adj_data(s);
  const NodeId* it = std::lower_bound(data, data + s.degree, w);
  return it != data + s.degree && *it == w;
}

bool Graph::is_alive(NodeId v) const {
  if (v < 0 || v >= node_capacity()) return false;
  return alive_[static_cast<size_t>(v)] != 0;
}

int Graph::degree(NodeId v) const {
  check_valid(v);
  return adj_[static_cast<size_t>(v)].degree;
}

NeighborView Graph::neighbors(NodeId v) const {
  check_valid(v);
  const AdjSlot& s = adj_[static_cast<size_t>(v)];
  const NodeId* data = adj_data(s);
  return NeighborView(data, data + s.degree);
}

std::vector<NodeId> Graph::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(static_cast<size_t>(alive_count_));
  for (NodeId v = 0; v < node_capacity(); ++v)
    if (alive_[static_cast<size_t>(v)]) out.push_back(v);
  return out;
}

bool Graph::same_topology(const Graph& other) const {
  if (alive_count_ != other.alive_count_) return false;
  if (edge_count_ != other.edge_count_) return false;
  int cap = std::min(node_capacity(), other.node_capacity());
  for (NodeId v = 0; v < node_capacity(); ++v)
    if (is_alive(v) && (v >= cap || !other.is_alive(v))) return false;
  for (NodeId v = 0; v < other.node_capacity(); ++v)
    if (other.is_alive(v) && (v >= cap || !is_alive(v))) return false;
  for (NodeId v = 0; v < cap; ++v) {
    if (!is_alive(v)) continue;
    NeighborView a = neighbors(v);
    NeighborView b = other.neighbors(v);
    if (a.size() != b.size() || !std::equal(a.begin(), a.end(), b.begin())) return false;
  }
  return true;
}

void Graph::check_valid(NodeId v) const {
  FG_CHECK_MSG(v >= 0 && v < node_capacity(), "node id out of range");
}

}  // namespace fg
