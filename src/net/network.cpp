#include "net/network.h"

#include <algorithm>

#include "util/check.h"

namespace fg::net {

int64_t NetStats::max_node_sent() const {
  int64_t best = 0;
  for (const auto& [node, count] : sent_by) best = std::max(best, count);
  return best;
}

void NetStats::reset() {
  messages = 0;
  words = 0;
  rounds = 0;
  max_message_words = 0;
  sent_by.clear();
  max_node_round_words = 0;
}

void Network::set_policy(const DeliveryPolicy& policy) {
  FG_CHECK(policy.max_extra_delay >= 0);
  FG_CHECK(policy.drop_one_in >= 0);
  FG_CHECK(policy.dup_one_in >= 0);
  policy_ = policy;
  rng_ = Rng(policy.seed);
}

void Network::enqueue(NodeId from, NodeId to, std::any payload, int words) {
  // Fault knobs bite real messages only (words >= 1); uncounted local
  // events always arrive exactly once. The drop decision comes before any
  // delay draw, so enabling delays does not reshuffle which messages an
  // identically-seeded policy drops.
  const bool on_wire = words >= 1;
  if (on_wire && policy_.drop_one_in > 0 &&
      rng_.next_below(static_cast<uint64_t>(policy_.drop_one_in)) == 0)
    return;
  int copies = 1;
  if (on_wire && policy_.dup_one_in > 0 &&
      rng_.next_below(static_cast<uint64_t>(policy_.dup_one_in)) == 0)
    copies = 2;
  for (int c = copies; c > 0; --c) {
    int delay = 1;
    if (policy_.max_extra_delay > 0)
      delay += static_cast<int>(rng_.next_below(
          static_cast<uint64_t>(policy_.max_extra_delay) + 1));
    if (c > 1)
      queue_.push_back(Pending{from, to, payload, words, delay});
    else
      queue_.push_back(Pending{from, to, std::move(payload), words, delay});
  }
}

void Network::send(NodeId from, NodeId to, std::any payload, int words) {
  FG_CHECK(words >= 1);
  ++stats_.messages;
  stats_.words += words;
  stats_.max_message_words = std::max(stats_.max_message_words, words);
  ++stats_.sent_by[from];
  int64_t& round_words = round_words_by_node_[from];
  round_words += words;
  stats_.max_node_round_words = std::max(stats_.max_node_round_words, round_words);
  enqueue(from, to, std::move(payload), words);
}

void Network::send_uncounted(NodeId from, NodeId to, std::any payload) {
  enqueue(from, to, std::move(payload), 0);
}

int Network::run_to_quiescence(int max_rounds) {
  FG_CHECK_MSG(handler_, "network has no handler");
  int rounds = 0;
  while (!queue_.empty()) {
    FG_CHECK_MSG(rounds < max_rounds, "protocol did not quiesce");
    ++rounds;
    // Split the queue into this round's deliveries and the still-delayed
    // remainder; handler sends land in the queue with their own delays.
    std::vector<Pending> batch;
    std::vector<Pending> later;
    batch.reserve(queue_.size());
    for (Pending& p : queue_) {
      if (--p.delay <= 0)
        batch.push_back(std::move(p));
      else
        later.push_back(std::move(p));
    }
    queue_ = std::move(later);
    if (policy_.shuffle) rng_.shuffle(batch);
    round_words_by_node_.clear();  // sends below belong to this round
    for (const Pending& p : batch) handler_(p.to, p.from, p.payload);
  }
  stats_.rounds += rounds;
  round_words_by_node_.clear();
  return rounds;
}

}  // namespace fg::net
