// Synchronous message-passing network simulator — the substrate standing in
// for a real peer-to-peer deployment (docs/DESIGN.md substitution S4).
//
// The paper's model (Figure 1) measures repairs in messages, bits per node,
// and rounds under unit edge latency. This simulator implements exactly that
// accounting: a message sent in round r is delivered in round r+1; a round
// executes all deliveries in deterministic (FIFO) order; quiescence ends the
// phase. Message payloads are protocol-defined (std::any); sizes are counted
// in machine words, each O(log n) bits wide.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace fg::net {

/// Cumulative traffic counters. `reset()` is used to carve out per-repair
/// figures.
struct NetStats {
  int64_t messages = 0;
  int64_t words = 0;              ///< Total payload words sent.
  int rounds = 0;                 ///< Rounds executed by run_to_quiescence.
  int max_message_words = 0;      ///< Largest single message.
  std::unordered_map<NodeId, int64_t> sent_by;  ///< Per-processor sends.
  /// The paper's success metric 3 ("Communication per node: the maximum
  /// number of bits sent by a single node in a single recovery round"),
  /// in words: max over (node, round) of words that node sent that round.
  int64_t max_node_round_words = 0;

  int64_t max_node_sent() const;
  void reset();
};

/// Message delivery policy. The default models the paper's unit-latency
/// synchronous rounds; the knobs introduce (deterministic, seeded)
/// asynchrony: arbitrary per-message extra delay and randomized delivery
/// order within a round. The repair protocol must tolerate both — the
/// paper's model only promises that messages are eventually delivered
/// uncorrupted.
struct DeliveryPolicy {
  uint64_t seed = 0;
  int max_extra_delay = 0;  ///< Each message waits 1 + U[0, this] rounds.
  bool shuffle = false;     ///< Randomize intra-round delivery order.
  /// Fault-injection knobs (tests/network_fault_test.cpp). Both act on
  /// real network messages only — uncounted same-processor events are
  /// local computation, not traffic — and both are deterministic given the
  /// seed. The repair DAG tolerates either: a drop leaves its dependents
  /// undispatched (the wave's structure was already committed through the
  /// shared core), a duplicate re-delivers into an already-satisfied
  /// dependency count. Only `rounds` may change.
  int drop_one_in = 0;  ///< Drop ~1/k of messages before any delay draw (0: off).
  int dup_one_in = 0;   ///< Deliver ~1/k of messages twice, each copy with
                        ///< its own independent delay draw (0: off).
};

/// Round-based network with unit-latency links and optional asynchrony.
class Network {
 public:
  /// Handler invoked at delivery: (to, from, payload).
  using Handler = std::function<void(NodeId, NodeId, const std::any&)>;

  void set_handler(Handler h) { handler_ = std::move(h); }

  void set_policy(const DeliveryPolicy& policy);

  /// Enqueue a message for delivery next round. `words` is the payload size
  /// in O(log n)-bit words and must be >= 1.
  void send(NodeId from, NodeId to, std::any payload, int words = 1);

  /// Enqueue a *local* event: delivered with the same next-round semantics
  /// (so protocol phases stay synchronized) but not counted as traffic —
  /// used for same-processor virtual-edge hops, which the homomorphism
  /// collapses into local computation.
  void send_uncounted(NodeId from, NodeId to, std::any payload);

  /// Deliver rounds until no message is in flight. Returns the number of
  /// rounds executed; aborts if `max_rounds` is exceeded (protocol bug).
  int run_to_quiescence(int max_rounds = 1 << 20);

  bool idle() const { return queue_.empty(); }

  NetStats& stats() { return stats_; }
  const NetStats& stats() const { return stats_; }

 private:
  struct Pending {
    NodeId from;
    NodeId to;
    std::any payload;
    int words;
    int delay;  ///< Rounds remaining before delivery.
  };

  void enqueue(NodeId from, NodeId to, std::any payload, int words);

  std::vector<Pending> queue_;
  Handler handler_;
  NetStats stats_;
  DeliveryPolicy policy_;
  Rng rng_{0};
  /// Words sent per node within the current round (for max_node_round_words).
  std::unordered_map<NodeId, int64_t> round_words_by_node_;
};

}  // namespace fg::net
