#include "util/rng.h"

#include "util/check.h"

namespace fg {
namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not be seeded with all zeros; splitmix64 makes that
  // astronomically unlikely, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Rng::next_below(uint64_t bound) {
  FG_CHECK(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::next_int(int64_t lo, int64_t hi) {
  FG_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(next_u64());  // full 64-bit range
  return lo + static_cast<int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

Rng Rng::split() {
  // Mix a fresh draw with a counter so repeated splits are independent.
  return Rng(next_u64() ^ (0xa0761d6478bd642fULL * ++split_counter_));
}

}  // namespace fg
