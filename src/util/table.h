// Console table and CSV emission used by the benchmark/experiment harness.
//
// Every experiment binary prints an aligned, human-readable table to stdout
// (the "paper table") and can also dump the same rows as CSV for plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fg {

/// A simple column-aligned text table.
///
/// Usage:
///   Table t{"n", "max degree ratio", "bound"};
///   t.add_row("1024", "2.41", "3");
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  Table(std::initializer_list<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: stringify heterogeneous cells.
  template <typename... Cells>
  void add(const Cells&... cells) {
    add_row({cell_to_string(cells)...});
  }

  /// Print the aligned table. If the environment variable FG_CSV is set
  /// (any value), a CSV copy of the same rows follows — so every experiment
  /// binary doubles as a plot-data generator without a flag parser.
  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& row(size_t i) const { return rows_.at(i); }

  static std::string cell_to_string(const std::string& s) { return s; }
  static std::string cell_to_string(const char* s) { return s; }
  static std::string cell_to_string(double v);
  static std::string cell_to_string(int v) { return std::to_string(v); }
  static std::string cell_to_string(long v) { return std::to_string(v); }
  static std::string cell_to_string(long long v) { return std::to_string(v); }
  static std::string cell_to_string(unsigned v) { return std::to_string(v); }
  static std::string cell_to_string(unsigned long v) { return std::to_string(v); }
  static std::string cell_to_string(unsigned long long v) { return std::to_string(v); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (default 2 decimal places).
std::string fmt(double v, int decimals = 2);

}  // namespace fg
