// Open-addressing multiplicity map: uint64 key -> positive int32 count.
//
// The structural core's image-multiplicity table lives here (one entry per
// distinct healed-image edge). Flat storage, linear probing, backward-shift
// deletion — an edge flip is a probe over a contiguous cell array instead
// of an unordered_map hash-node allocation/free, which is what made the
// commit phase allocation-bound (ROADMAP "next perf candidates").
//
// Key 0 is reserved as the empty marker; edge keys are slot_key(u, v) with
// u < v, whose low word is v >= 1, so 0 never occurs as a real key.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/check.h"

namespace fg::util {

class FlatCountMap {
 public:
  /// Bump key's count (inserting at 1) and return the new count.
  int32_t increment(uint64_t key) {
    FG_DCHECK(key != 0);
    if ((size_ + 1) * 8 > cells_.size() * 7) grow();
    size_t i = find_slot(key);
    if (cells_[i].key == 0) {
      cells_[i].key = key;
      ++size_;
    }
    return ++cells_[i].count;
  }

  /// Drop key's count (erasing at 0) and return the new count. The key
  /// must be present — decrementing an absent key is a bookkeeping bug.
  int32_t decrement(uint64_t key) {
    FG_DCHECK(key != 0);
    FG_CHECK_MSG(!cells_.empty(), "decrement on an empty count map");
    size_t i = find_slot(key);
    FG_CHECK_MSG(cells_[i].key == key, "decrement of an absent key");
    int32_t left = --cells_[i].count;
    if (left == 0) erase_at(i);
    return left;
  }

  /// The count stored for key (0 if absent).
  int32_t count(uint64_t key) const {
    if (cells_.empty()) return 0;
    size_t i = find_slot(key);
    return cells_[i].key == key ? cells_[i].count : 0;
  }

  /// Number of distinct keys.
  size_t size() const { return size_; }

  /// Visit every (key, count) entry in unspecified (storage) order. The
  /// snapshot layer collects and sorts these for its canonical MULT section
  /// (src/snap); the map itself stays order-free.
  template <class F>
  void for_each(F&& f) const {
    for (const Cell& c : cells_)
      if (c.key != 0) f(c.key, c.count);
  }

  /// Overwrite key's count outright: count > 0 inserts or replaces,
  /// count == 0 erases (no-op if absent). The snapshot delta replay applies
  /// final-value multiplicity records through this — never the engines,
  /// whose mutations are all increment/decrement.
  void set_count(uint64_t key, int32_t count) {
    FG_DCHECK(key != 0);
    FG_CHECK_MSG(count >= 0, "negative multiplicity");
    if (count == 0) {
      if (cells_.empty()) return;
      size_t i = find_slot(key);
      if (cells_[i].key == key) erase_at(i);
      return;
    }
    if ((size_ + 1) * 8 > cells_.size() * 7) grow();
    size_t i = find_slot(key);
    if (cells_[i].key == 0) {
      cells_[i].key = key;
      ++size_;
    }
    cells_[i].count = count;
  }

  void reserve(size_t n) {
    size_t need = 16;
    while (need * 7 < n * 8) need <<= 1;
    if (need > cells_.size()) rehash(need);
  }

  /// Bulk-load distinct (key, positive count) entries into an empty map:
  /// one exact-size rehash up front, then an insert sweep that prefetches
  /// the home cell a few entries ahead so the random-access misses overlap
  /// instead of serializing. The snapshot restore path fills the table
  /// this way; the caller validates the entries first (FG_DCHECKed here).
  void load(std::span<const std::pair<uint64_t, int32_t>> entries) {
    FG_CHECK_MSG(size_ == 0, "bulk load into a non-empty count map");
    if (entries.empty()) return;
    reserve(entries.size());
    constexpr size_t kAhead = 16;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (i + kAhead < entries.size())
        __builtin_prefetch(&cells_[home_of(entries[i + kAhead].first)], 1, 1);
      const auto& [key, count] = entries[i];
      FG_DCHECK(key != 0 && count > 0);
      size_t slot = find_slot(key);
      FG_DCHECK(cells_[slot].key == 0);
      cells_[slot].key = key;
      cells_[slot].count = count;
    }
    size_ = entries.size();
  }

 private:
  struct Cell {
    uint64_t key = 0;
    int32_t count = 0;
  };

  /// Fibonacci-hashed home slot (capacity is a power of two).
  size_t home_of(uint64_t key) const {
    return static_cast<size_t>((key * 0x9E3779B97F4A7C15ull) >> 32) & mask_;
  }

  /// First slot holding key, or the empty slot where it would insert.
  size_t find_slot(uint64_t key) const {
    size_t i = home_of(key);
    while (cells_[i].key != 0 && cells_[i].key != key) i = (i + 1) & mask_;
    return i;
  }

  /// Backward-shift deletion: pull displaced entries of the probe chain
  /// over the hole so lookups never need tombstones.
  void erase_at(size_t i) {
    size_t hole = i;
    size_t k = i;
    while (true) {
      k = (k + 1) & mask_;
      uint64_t key = cells_[k].key;
      if (key == 0) break;
      size_t home = home_of(key);
      if (((k - home) & mask_) >= ((k - hole) & mask_)) {
        cells_[hole] = cells_[k];
        hole = k;
      }
    }
    cells_[hole] = Cell{};
    --size_;
  }

  void grow() { rehash(cells_.empty() ? 16 : cells_.size() * 2); }

  void rehash(size_t new_cap) {
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(new_cap, Cell{});
    mask_ = new_cap - 1;
    for (const Cell& c : old) {
      if (c.key == 0) continue;
      size_t i = find_slot(c.key);
      cells_[i] = c;
    }
  }

  std::vector<Cell> cells_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace fg::util
