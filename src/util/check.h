// Lightweight runtime-checked invariant macros.
//
// FG_CHECK is always on (also in release builds): the self-healing structures
// in this library maintain nontrivial invariants whose violation would yield
// silently wrong experiment numbers, so we prefer a loud failure.
// FG_DCHECK compiles out in NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace fg::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "FG_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace fg::detail

#define FG_CHECK(expr)                                                 \
  do {                                                                 \
    if (!(expr)) ::fg::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define FG_CHECK_MSG(expr, msg)                                          \
  do {                                                                   \
    if (!(expr)) ::fg::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define FG_DCHECK(expr) \
  do {                  \
  } while (0)
#else
#define FG_DCHECK(expr) FG_CHECK(expr)
#endif
