// Deterministic pseudo-random number generation for experiments.
//
// All experiments in this repository are seeded so that tables and figures
// are exactly reproducible run-to-run. Rng wraps SplitMix64 (for stream
// splitting) over xoshiro256**, which is fast and has no observable bias for
// the graph sizes we use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace fg {

/// Deterministic, splittable random number generator.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t next_below(uint64_t bound);

  /// Uniform int in [lo, hi] inclusive. Requires lo <= hi.
  int64_t next_int(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with success probability p.
  bool next_bool(double p);

  /// Derive an independent child generator (stable under reordering of other
  /// draws from this generator).
  Rng split();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element index of a non-empty container.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[static_cast<size_t>(next_below(v.size()))];
  }

  // UniformRandomBitGenerator interface so Rng works with <algorithm>.
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }
  result_type operator()() { return next_u64(); }

 private:
  uint64_t s_[4];
  uint64_t split_counter_ = 0;
};

}  // namespace fg
