#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "util/check.h"

namespace fg {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  FG_CHECK(!header_.empty());
}

Table::Table(std::initializer_list<std::string> header)
    : Table(std::vector<std::string>(header)) {}

void Table::add_row(std::vector<std::string> row) {
  FG_CHECK_MSG(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::cell_to_string(double v) { return fmt(v); }

void Table::print(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) os << std::string(width[c] - cells[c].size() + 2, ' ');
    }
    os << '\n';
  };

  emit(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);

  if (std::getenv("FG_CSV") != nullptr) {
    os << "\n[csv]\n";
    print_csv(os);
  }
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string fmt(double v, int decimals) {
  if (std::isnan(v)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace fg
