#include "harness/structure_stats.h"

#include <algorithm>

#include "util/check.h"

namespace fg {

StructureStats structure_stats(const ForgivingGraph& fg, int histogram_buckets) {
  FG_CHECK(histogram_buckets >= 1);
  StructureStats out;
  out.helper_histogram.assign(static_cast<size_t>(histogram_buckets), 0);

  auto alive = fg.healed().alive_nodes();
  int64_t helper_total = 0;
  for (NodeId v : alive) {
    int helpers = fg.helper_count(v);
    helper_total += helpers;
    out.max_helpers_per_processor = std::max(out.max_helpers_per_processor, helpers);
    size_t bucket =
        std::min<size_t>(static_cast<size_t>(helpers), out.helper_histogram.size() - 1);
    ++out.helper_histogram[bucket];
  }
  out.total_helpers = helper_total;
  if (!alive.empty())
    out.avg_helpers_per_processor =
        static_cast<double>(helper_total) / static_cast<double>(alive.size());

  const VirtualForest& forest = fg.forest();
  for (VNodeId h = 0; h < forest.arena_size(); ++h) {
    if (!forest.exists(h)) continue;
    const auto& n = forest.node(h);
    if (n.is_leaf) ++out.total_leaves;
    if (n.parent == kNoVNode) {
      ++out.rt_count;
      out.largest_rt_leaves = std::max(out.largest_rt_leaves, n.leaf_count);
      out.max_rt_depth = std::max(out.max_rt_depth, n.height);
    }
  }
  return out;
}

}  // namespace fg
