#include "harness/experiment.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "util/check.h"

namespace fg {
namespace {

Sample take_sample(int step, Healer& healer, const RunConfig& cfg, Rng& rng) {
  Sample s;
  s.step = step;
  s.alive = healer.healed().alive_count();
  s.total_inserted = healer.gprime().node_capacity();
  s.degree = degree_stats(healer.healed(), healer.gprime());
  s.stretch = sample_stretch(healer.healed(), healer.gprime(), cfg.stretch_sources, rng);
  s.components = cfg.track_components ? connected_components(healer.healed()) : -1;
  return s;
}

}  // namespace

RunResult run_experiment(Healer& healer, Adversary& adversary, const RunConfig& cfg,
                         Rng& rng) {
  RunResult out;
  auto absorb = [&](const Sample& s) {
    out.worst_degree_ratio = std::max(out.worst_degree_ratio, s.degree.max_ratio);
    out.worst_stretch = std::max(out.worst_stretch, s.stretch.max_stretch);
    out.broken_pairs_total += s.stretch.broken_pairs;
  };

  int step = 0;
  for (; step < cfg.max_steps; ++step) {
    auto action = adversary.next(healer, rng);
    if (!action) break;
    if (action->kind == Action::Kind::kDelete) {
      healer.remove(action->target);
      ++out.deletions;
    } else if (action->kind == Action::Kind::kBatchDelete) {
      healer.remove_batch(action->targets);
      out.deletions += static_cast<int>(action->targets.size());
    } else {
      healer.insert(action->neighbors);
      ++out.insertions;
    }
    if (cfg.on_step) cfg.on_step(step, *action, healer);
    if (cfg.sample_every > 0 && (step + 1) % cfg.sample_every == 0) {
      out.timeline.push_back(take_sample(step + 1, healer, cfg, rng));
      absorb(out.timeline.back());
    }
  }

  out.final = take_sample(step, healer, cfg, rng);
  absorb(out.final);
  return out;
}

}  // namespace fg
