// Success metrics of the paper's model (Figure 1):
//   1. degree increase  max_v deg(v, G) / deg(v, G')
//   2. network stretch  max_{x,y} dist(x,y,G) / dist(x,y,G')
// plus connectivity accounting for baselines that can break the network.
//
// Stretch over all pairs is quadratic, so it is sampled: BFS from up to
// `max_sources` alive sources in both G and G' and the ratio is taken over
// every alive destination. For source counts >= the alive population this is
// exact.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace fg {

struct StretchStats {
  double max_stretch = 1.0;
  double avg_stretch = 1.0;
  int64_t pairs = 0;
  /// Pairs connected in G' but not in G: nonzero means the healer failed to
  /// preserve connectivity (only baselines do this).
  int64_t broken_pairs = 0;
};

/// Sampled stretch of g relative to gp. Both graphs must contain the same
/// alive ids (g may be missing nodes never inserted — callers pass matching
/// views). Pairs at G'-distance 0 (same node) are skipped.
StretchStats sample_stretch(const Graph& g, const Graph& gp, int max_sources, Rng& rng);

struct DegreeStats {
  double max_ratio = 1.0;
  double avg_ratio = 1.0;
  int max_degree_g = 0;
};

/// Degree-increase statistics of g over gp for alive nodes with G'-degree>0.
DegreeStats degree_stats(const Graph& g, const Graph& gp);

/// Span of the edges a healer *added*: for every edge of G absent from G',
/// the G'-distance between its endpoints. This quantifies the paper's
/// concluding open problem — "what if the only edges we can add are those
/// that span a small distance in the original network?" — by measuring how
/// far the Forgiving Graph actually reaches.
struct EdgeSpanStats {
  int64_t added_edges = 0;
  int max_span = 0;
  double avg_span = 0.0;
  int64_t span_le_2 = 0;  ///< Added edges between G'-distance <= 2 endpoints.
};

EdgeSpanStats edge_span_stats(const Graph& g, const Graph& gp);

}  // namespace fg
