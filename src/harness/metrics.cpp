#include "harness/metrics.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "util/check.h"

namespace fg {

StretchStats sample_stretch(const Graph& g, const Graph& gp, int max_sources, Rng& rng) {
  StretchStats out;
  auto alive = g.alive_nodes();
  if (alive.size() < 2) return out;

  std::vector<NodeId> sources = alive;
  if (static_cast<int>(sources.size()) > max_sources) {
    rng.shuffle(sources);
    sources.resize(static_cast<size_t>(max_sources));
  }

  double sum = 0.0;
  for (NodeId s : sources) {
    FG_CHECK(gp.is_alive(s));
    auto dg = bfs_distances(g, s);
    auto dp = bfs_distances(gp, s);
    for (NodeId t : alive) {
      if (t == s) continue;
      // G' may connect x,y only through deleted intermediaries; dp uses them.
      if (dp[t] <= 0) continue;  // not connected even in G'
      if (dg[t] < 0) {
        ++out.broken_pairs;
        continue;
      }
      double ratio = static_cast<double>(dg[t]) / dp[t];
      out.max_stretch = std::max(out.max_stretch, ratio);
      sum += ratio;
      ++out.pairs;
    }
  }
  if (out.pairs > 0) out.avg_stretch = sum / static_cast<double>(out.pairs);
  return out;
}

EdgeSpanStats edge_span_stats(const Graph& g, const Graph& gp) {
  EdgeSpanStats out;
  int64_t total = 0;
  for (NodeId u : g.alive_nodes()) {
    std::vector<int> dp;  // lazily computed G'-BFS from u
    for (NodeId w : g.neighbors(u)) {
      if (u > w || gp.has_edge(u, w)) continue;  // original edge or seen pair
      if (dp.empty()) dp = bfs_distances(gp, u);
      FG_CHECK_MSG(dp[w] > 0, "healer added an edge across a G' cut");
      ++out.added_edges;
      total += dp[w];
      out.max_span = std::max(out.max_span, dp[w]);
      if (dp[w] <= 2) ++out.span_le_2;
    }
  }
  if (out.added_edges > 0) out.avg_span = static_cast<double>(total) / out.added_edges;
  return out;
}

DegreeStats degree_stats(const Graph& g, const Graph& gp) {
  DegreeStats out;
  double sum = 0.0;
  int counted = 0;
  for (NodeId v : g.alive_nodes()) {
    out.max_degree_g = std::max(out.max_degree_g, g.degree(v));
    int dpv = gp.degree(v);
    if (dpv == 0) continue;
    double r = static_cast<double>(g.degree(v)) / dpv;
    out.max_ratio = std::max(out.max_ratio, r);
    sum += r;
    ++counted;
  }
  if (counted > 0) out.avg_ratio = sum / counted;
  return out;
}

}  // namespace fg
