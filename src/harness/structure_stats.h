// Structural introspection of a Forgiving Graph instance: how many RTs
// exist, how big they are, and how evenly the representative mechanism
// spreads helper duty across processors (the operational content of
// Lemma 3: at most one helper per dead edge slot, each an ancestor of its
// own leaf).
#pragma once

#include <cstdint>
#include <vector>

#include "fg/forgiving_graph.h"

namespace fg {

struct StructureStats {
  int rt_count = 0;                 ///< Live reconstruction trees.
  int64_t total_leaves = 0;         ///< Real nodes across all RTs.
  int64_t total_helpers = 0;        ///< Helper nodes across all RTs.
  int64_t largest_rt_leaves = 0;
  int max_rt_depth = 0;
  int max_helpers_per_processor = 0;
  double avg_helpers_per_processor = 0.0;  ///< Over alive processors.
  /// Histogram of helpers-per-processor: index i counts processors
  /// simulating exactly i helpers (capped at the last bucket).
  std::vector<int64_t> helper_histogram;
};

/// Walk the virtual forest of `fg` and summarize it.
StructureStats structure_stats(const ForgivingGraph& fg, int histogram_buckets = 8);

}  // namespace fg
