// Experiment runner: drives a Healer through an Adversary's schedule and
// samples the paper's success metrics along the way. Every bench binary in
// bench/ is a thin wrapper over this runner plus a Table printer.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "harness/metrics.h"
#include "heal/healer.h"
#include "util/rng.h"

namespace fg {

/// One sampled point of an experiment run.
struct Sample {
  int step = 0;           ///< Adversarial steps executed so far.
  int alive = 0;          ///< Alive processors.
  int total_inserted = 0; ///< Nodes ever seen (the paper's n).
  DegreeStats degree;
  StretchStats stretch;
  int components = 0;
};

struct RunResult {
  std::vector<Sample> timeline;
  Sample final;  ///< Metrics after the last step.
  /// Worst values seen across all sampled points.
  double worst_degree_ratio = 1.0;
  double worst_stretch = 1.0;
  int64_t broken_pairs_total = 0;
  int deletions = 0;
  int insertions = 0;
};

struct RunConfig {
  int max_steps = 1000;
  int sample_every = 50;   ///< Metric sampling cadence (metrics are costly).
  int stretch_sources = 32;
  bool track_components = true;
  /// Optional per-step hook (e.g. repair-cost collection).
  std::function<void(int step, const Action&, Healer&)> on_step;
};

/// Run the adversary against the healer, sampling metrics periodically and
/// at the end. Deterministic for a fixed seed.
RunResult run_experiment(Healer& healer, Adversary& adversary, const RunConfig& cfg,
                         Rng& rng);

}  // namespace fg
