#include "harness/certificate.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <utility>

#include "graph/algorithms.h"
#include "util/check.h"

namespace fg::harness {

void CertificateWriter::on_certificate(const cert::WaveCertificate& c) {
  c.save(*os_, include_cost_);
}

void CertificateBuilder::begin_wave(const core::StructuralCore& core,
                                    const core::RepairPlan& plan) {
  // The affected set: the only processors whose deg_G the commit can change
  // are the anchor owners (they lose the edge to the victim and gain their
  // fresh leaf's tree edges) and the owners of vnodes inside the affected
  // RT subtrees (their virtual edges are torn down and re-merged). Snapshot
  // deg_G for all of them before the commit mutates the image.
  degree_before_.clear();
  const Graph& g = core.image();
  const VirtualForest& forest = core.forest();
  auto note = [&](NodeId v) {
    if (!degree_before_.contains(v)) degree_before_.emplace(v, g.degree(v));
  };
  for (const core::RegionPlan& region : plan.regions) {
    for (const core::RegionPlan::FreshLeaf& fl : region.fresh) note(fl.owner);
    for (VNodeId root : region.roots)
      for (VNodeId h : forest.subtree_of(root)) note(forest.node(h).owner);
  }
  for (NodeId v : plan.victims) note(v);
}

namespace {

/// BFS over the healed image with first-discovery parents. The neighbor
/// views are sorted, so discovery order — and hence the witness path — is a
/// pure function of the topology.
std::vector<NodeId> bfs_parents(const Graph& g, NodeId src) {
  std::vector<NodeId> parent(static_cast<size_t>(g.node_capacity()), kInvalidNode);
  std::vector<char> seen(static_cast<size_t>(g.node_capacity()), 0);
  std::vector<NodeId> frontier{src}, next;
  seen[static_cast<size_t>(src)] = 1;
  while (!frontier.empty()) {
    next.clear();
    for (NodeId u : frontier)
      for (NodeId w : g.neighbors(u)) {
        if (seen[static_cast<size_t>(w)]) continue;
        seen[static_cast<size_t>(w)] = 1;
        parent[static_cast<size_t>(w)] = u;
        next.push_back(w);
      }
    frontier.swap(next);
  }
  return parent;
}

}  // namespace

cert::WaveCertificate CertificateBuilder::end_wave(
    const core::StructuralCore& core, const core::RepairPlan& plan, long wave,
    std::span<const VNodeId> region_roots, const cert::CostClaim* cost) const {
  FG_CHECK(region_roots.size() == plan.regions.size());
  const Graph& g = core.image();
  const Graph& gp = core.gprime();
  const VirtualForest& forest = core.forest();

  cert::WaveCertificate c;
  c.wave = wave;
  c.net_nodes = gp.node_capacity();
  c.alive_after = g.alive_count();
  c.degree_constant = cert::kDegreeConstant;
  c.stretch_bound = std::max(1, cert::ceil_log2(std::max(1, c.net_nodes)));
  c.victims = plan.victims;
  c.assign = plan.victim_region;

  // Region witnesses: each final RT in preorder, handles normalized to
  // local indices — identical across the centralized (reserved) and
  // distributed (on-demand) arenas, because only the tree shape survives.
  std::map<std::pair<NodeId, NodeId>, int> edge_region;
  for (size_t r = 0; r < plan.regions.size(); ++r) {
    const core::RegionPlan& region = plan.regions[r];
    cert::RegionCert rc;
    rc.id = region.id;
    rc.victims = region.victims;
    for (const core::RegionPlan::FreshLeaf& fl : region.fresh)
      rc.anchors.emplace_back(fl.owner, fl.dead);
    if (region_roots[r] != kNoVNode) {
      std::vector<VNodeId> pre = forest.subtree_of(region_roots[r]);
      std::unordered_map<VNodeId, int> local;
      local.reserve(pre.size());
      for (size_t i = 0; i < pre.size(); ++i)
        local.emplace(pre[i], static_cast<int>(i));
      auto idx = [&local](VNodeId h) {
        return h == kNoVNode ? -1 : local.at(h);
      };
      std::set<std::pair<NodeId, NodeId>> image;
      for (VNodeId h : pre) {
        const VirtualForest::VNode& n = forest.node(h);
        cert::RtNode rn;
        rn.owner = n.owner;
        rn.other = n.other;
        rn.is_leaf = n.is_leaf;
        rn.parent = h == region_roots[r] ? -1 : idx(n.parent);
        rn.left = idx(n.left);
        rn.right = idx(n.right);
        rc.nodes.push_back(rn);
        if (h != region_roots[r]) {
          NodeId a = n.owner;
          NodeId b = forest.node(n.parent).owner;
          if (a != b) image.insert({std::min(a, b), std::max(a, b)});
        }
      }
      rc.image_edges.assign(image.begin(), image.end());
      for (const auto& e : image) edge_region.emplace(e, region.id);
    }
    c.regions.push_back(std::move(rc));
  }

  // Degree claims for the surviving affected set, sorted by node id.
  {
    std::vector<std::pair<NodeId, int>> before(degree_before_.begin(),
                                               degree_before_.end());
    std::sort(before.begin(), before.end());
    for (const auto& [v, deg0] : before) {
      if (!g.is_alive(v)) continue;  // victims carry no survivor claim
      c.degrees.push_back(cert::DegreeClaim{v, gp.degree(v), deg0, g.degree(v)});
    }
  }

  // Stretch witnesses: a deterministic stride over the sorted alive nodes
  // picks the sources; each source pairs with its G'-farthest alive node
  // (smallest id on ties) and witnesses the healed-graph BFS path.
  std::map<std::pair<NodeId, NodeId>, cert::EdgeFact> facts;
  std::vector<NodeId> alive = g.alive_nodes();
  if (alive.size() >= 2) {
    size_t stride = std::max<size_t>(1, alive.size() / kStretchSamples);
    for (int s = 0; s < kStretchSamples; ++s) {
      size_t i = static_cast<size_t>(s) * stride;
      if (i >= alive.size()) break;
      NodeId x = alive[i];
      std::vector<int> dp = bfs_distances(gp, x);
      NodeId y = kInvalidNode;
      for (NodeId t : alive)
        if (t != x && dp[static_cast<size_t>(t)] > 0 &&
            (y == kInvalidNode ||
             dp[static_cast<size_t>(t)] > dp[static_cast<size_t>(y)]))
          y = t;
      if (y == kInvalidNode) continue;

      std::vector<NodeId> parent = bfs_parents(g, x);
      if (parent[static_cast<size_t>(y)] == kInvalidNode) continue;
      cert::StretchWitness w;
      w.x = x;
      w.y = y;
      w.dist_gprime = dp[static_cast<size_t>(y)];
      for (NodeId t = y; t != kInvalidNode; t = parent[static_cast<size_t>(t)]) {
        w.path.push_back(t);
        if (t == x) break;
      }
      std::reverse(w.path.begin(), w.path.end());
      FG_CHECK(w.path.front() == x && w.path.back() == y);

      for (size_t h = 0; h + 1 < w.path.size(); ++h) {
        NodeId u = std::min(w.path[h], w.path[h + 1]);
        NodeId v = std::max(w.path[h], w.path[h + 1]);
        if (facts.contains({u, v})) continue;
        cert::EdgeFact f;
        f.u = u;
        f.v = v;
        if (gp.has_edge(u, v)) {
          f.kind = cert::EdgeFact::Kind::kGPrime;
        } else if (auto it = edge_region.find({u, v}); it != edge_region.end()) {
          f.kind = cert::EdgeFact::Kind::kRtWave;
          f.region = it->second;
        } else {
          f.kind = cert::EdgeFact::Kind::kRtPrior;
        }
        facts.emplace(std::make_pair(u, v), f);
      }
      c.stretch.push_back(std::move(w));
    }
  }
  for (const auto& [key, f] : facts) {
    (void)key;
    c.facts.push_back(f);
  }

  if (cost != nullptr && cost->present) c.cost = *cost;
  return c;
}

}  // namespace fg::harness
