#include "harness/trace.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace fg {

void Trace::replay(Healer& healer) const {
  for (const Action& a : actions_) {
    if (a.kind == Action::Kind::kDelete) {
      FG_CHECK_MSG(healer.healed().is_alive(a.target), "trace deletes a dead node");
      healer.remove(a.target);
    } else if (a.kind == Action::Kind::kBatchDelete) {
      for (NodeId v : a.targets)
        FG_CHECK_MSG(healer.healed().is_alive(v), "trace batch-deletes a dead node");
      healer.remove_batch(a.targets);
      // A recorded `r` line pins the wave's dirty-region assignment; a
      // replay that disagrees has diverged structurally *within* the named
      // region — the bisection signal the line exists for.
      if (!a.regions.empty() && healer.forgiving() != nullptr) {
        FG_CHECK_MSG(healer.forgiving()->last_region_assignment() == a.regions,
                     "trace region assignment diverged on replay");
      }
    } else {
      healer.insert(a.neighbors);
    }
  }
}

void Trace::save(std::ostream& os) const {
  os << "# forgiving-graph trace, " << actions_.size() << " actions\n";
  for (const Action& a : actions_) {
    if (a.kind == Action::Kind::kDelete) {
      os << "d " << a.target << '\n';
    } else if (a.kind == Action::Kind::kBatchDelete) {
      os << 'b';
      for (NodeId v : a.targets) os << ' ' << v;
      os << '\n';
      if (!a.regions.empty()) {
        os << 'r';
        for (int r : a.regions) os << ' ' << r;
        os << '\n';
      }
    } else {
      os << 'i';
      for (NodeId y : a.neighbors) os << ' ' << y;
      os << '\n';
    }
  }
}

Trace Trace::load(std::istream& is) {
  Trace t;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    if (kind == 'd') {
      Action a;
      a.kind = Action::Kind::kDelete;
      FG_CHECK_MSG(static_cast<bool>(ls >> a.target), "malformed deletion line");
      t.actions_.push_back(std::move(a));
    } else if (kind == 'b') {
      Action a;
      a.kind = Action::Kind::kBatchDelete;
      NodeId v;
      while (ls >> v) a.targets.push_back(v);
      FG_CHECK_MSG(!a.targets.empty(), "malformed batch deletion line");
      t.actions_.push_back(std::move(a));
    } else if (kind == 'r') {
      FG_CHECK_MSG(!t.actions_.empty() &&
                       t.actions_.back().kind == Action::Kind::kBatchDelete,
                   "r line without a preceding batch deletion");
      Action& b = t.actions_.back();
      FG_CHECK_MSG(b.regions.empty(), "duplicate r line for a batch deletion");
      int r;
      while (ls >> r) b.regions.push_back(r);
      FG_CHECK_MSG(b.regions.size() == b.targets.size(),
                   "r line length differs from its batch deletion");
    } else if (kind == 'i') {
      Action a;
      a.kind = Action::Kind::kInsert;
      NodeId y;
      while (ls >> y) a.neighbors.push_back(y);
      t.actions_.push_back(std::move(a));
    } else {
      FG_CHECK_MSG(false, "malformed trace line");
    }
  }
  return t;
}

Trace Trace::prefix(size_t n) const {
  Trace t;
  t.actions_.assign(actions_.begin(),
                    actions_.begin() + static_cast<long>(std::min(n, actions_.size())));
  return t;
}

Trace record_run(Healer& healer, Adversary& adversary, int max_steps, Rng& rng) {
  Trace t;
  for (int step = 0; step < max_steps; ++step) {
    auto action = adversary.next(healer, rng);
    if (!action) break;
    if (action->kind == Action::Kind::kDelete) {
      healer.remove(action->target);
    } else if (action->kind == Action::Kind::kBatchDelete) {
      healer.remove_batch(action->targets);
      // Stamp the wave with its dirty-region assignment when the healer
      // exposes it (the trace `r` line).
      if (healer.forgiving() != nullptr)
        action->regions = healer.forgiving()->last_region_assignment();
    } else {
      healer.insert(action->neighbors);
    }
    t.record(*action);
  }
  return t;
}

}  // namespace fg
