// Adversarial schedule traces: record, serialize, replay.
//
// A trace is the exact action sequence an adversary played. Traces make
// failures reproducible across engines and sessions: the equivalence and
// regression suites replay a recorded trace against both the centralized
// and the distributed engine, and the text format lets failing schedules be
// committed as fixtures.
//
// Format (one action per line):
//   d <node>                 deletion
//   b <node> <node> ...      batched deletion (one repair round)
//   r <region> <region> ...  region assignment of the preceding b line,
//                            aligned with its victims (optional; written
//                            when the recorded healer exposes sharding).
//                            Replay re-derives the assignment and aborts on
//                            mismatch, localizing a divergence to a region.
//   i <nbr> <nbr> ...        insertion (id is implicit: next unused)
//   # comment / blank lines ignored
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "adversary/adversary.h"

namespace fg {

/// A recorded adversarial schedule.
class Trace {
 public:
  void record(const Action& a) { actions_.push_back(a); }

  const std::vector<Action>& actions() const { return actions_; }
  size_t size() const { return actions_.size(); }
  bool empty() const { return actions_.empty(); }

  /// Apply the whole trace to a healer (asserting that targets are alive).
  void replay(Healer& healer) const;

  /// Serialize to / parse from the text format above. Parsing aborts on
  /// malformed lines (traces are trusted fixtures, not user input).
  void save(std::ostream& os) const;
  static Trace load(std::istream& is);

  /// Keep only the first `n` actions (for bisection of failing schedules).
  Trace prefix(size_t n) const;

 private:
  std::vector<Action> actions_;
};

/// Drive `adversary` against `healer` for up to `max_steps`, recording and
/// applying each action; returns the trace.
Trace record_run(Healer& healer, Adversary& adversary, int max_steps, Rng& rng);

}  // namespace fg
