// Certificate emission: build a cert::WaveCertificate for every committed
// deletion wave (docs/CERTIFICATES.md).
//
// This is the ENGINE side of the certificate subsystem. src/cert holds the
// format, parser, and independent checker and never sees engine state; this
// module reads the structural core around one plan/commit cycle and writes
// down what the repair claims to have done, in the normalized form the
// checker re-validates from first principles:
//
//   * begin_wave runs against the PLAN, before commit_break: it snapshots
//     deg_G of the wave's affected set — the owners of every vnode in an
//     affected RT subtree plus the anchor owners (the only processors whose
//     healed degree a repair can change);
//   * end_wave runs after the commit: it walks each region's final RT in
//     preorder (normalizing vnode handles to local indices, so the witness
//     is identical across the centralized kReserved and distributed
//     kOnDemand arenas), derives the image edges, fills the degree
//     before/after claims, samples stretch pairs with explicit witness
//     paths and per-hop edge provenance, and attaches the distributed
//     engine's Lemma-4 cost claim when one is given.
//
// Everything emitted is a pure function of (core state, plan, committed
// roots): no iteration order depends on scheduling, hash functions, or
// engine internals, so certificates are byte-identical at any shard/commit
// worker count and across the centralized and dist-kGlobalPlan engines —
// contract C4 extended from checkpoints to certificates (pinned by
// tests/certificate_equivalence_test.cpp and certificate_oracle_test.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <unordered_map>
#include <vector>

#include "cert/certificate.h"
#include "fg/core/structural_core.h"
#include "fg/virtual_forest.h"
#include "graph/graph.h"

namespace fg::harness {

/// Receives each committed wave's certificate. Engines call the sink from
/// inside delete_batch, after the repair fully commits; install one with
/// ForgivingGraph::set_certificate_sink / DistForgivingGraph::
/// set_certificate_sink (nullptr disables emission again).
class CertificateSink {
 public:
  virtual ~CertificateSink() = default;
  virtual void on_certificate(const cert::WaveCertificate& c) = 0;
};

/// Sink that serializes every certificate to a text stream in the canonical
/// format (the `--certify` path of examples/simulate; feed the output to
/// tools/fgcheck). With include_cost false the engine-specific cost line is
/// dropped — what the cross-engine equivalence comparisons use.
class CertificateWriter final : public CertificateSink {
 public:
  explicit CertificateWriter(std::ostream& os, bool include_cost = true)
      : os_(&os), include_cost_(include_cost) {}

  void on_certificate(const cert::WaveCertificate& c) override;

 private:
  std::ostream* os_;
  bool include_cost_;
};

/// Sink that keeps every certificate in memory (the test suites' hook).
class CertificateCollector final : public CertificateSink {
 public:
  void on_certificate(const cert::WaveCertificate& c) override {
    certs.push_back(c);
  }

  std::vector<cert::WaveCertificate> certs;
};

/// Builds one wave's certificate around a plan/commit cycle. One instance
/// per wave; begin_wave must run before the commit mutates the core.
class CertificateBuilder {
 public:
  /// Number of stretch pairs sampled per wave (deterministic stride over
  /// the alive nodes; small, since each pair costs two BFS passes).
  static constexpr int kStretchSamples = 4;

  /// Snapshot the pre-commit state the certificate needs: deg_G of the
  /// affected set (anchor owners + owners of vnodes in the affected RT
  /// subtrees of every region of `plan`).
  void begin_wave(const core::StructuralCore& core, const core::RepairPlan& plan);

  /// Assemble the certificate after the plan committed. `region_roots` is
  /// each region's final RT root aligned with plan.regions (kNoVNode for a
  /// region that produced none); `cost` attaches the distributed engine's
  /// Lemma-4 claim (nullptr for the centralized engine).
  cert::WaveCertificate end_wave(const core::StructuralCore& core,
                                 const core::RepairPlan& plan, long wave,
                                 std::span<const VNodeId> region_roots,
                                 const cert::CostClaim* cost) const;

 private:
  /// deg_G before the commit, for every node whose degree the wave can
  /// change (keys are the affected set; victims included, filtered later).
  std::unordered_map<NodeId, int> degree_before_;
};

}  // namespace fg::harness
