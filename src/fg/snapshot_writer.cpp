#include "fg/snapshot_writer.h"

#include <algorithm>
#include <utility>

namespace fg {

namespace {

snap::VRow to_vrow(const VirtualForest::VNode& n) {
  snap::VRow r;
  r.owner = static_cast<int32_t>(n.owner);
  r.other = static_cast<int32_t>(n.other);
  r.parent = static_cast<int32_t>(n.parent);
  r.left = static_cast<int32_t>(n.left);
  r.right = static_cast<int32_t>(n.right);
  r.rep = static_cast<int32_t>(n.rep);
  r.height = static_cast<int32_t>(n.height);
  r.leaf_count = n.leaf_count;
  r.is_leaf = n.is_leaf;
  r.alive = n.alive;
  return r;
}

}  // namespace

// ----------------------------------------------------------- SnapshotRecorder

void SnapshotRecorder::begin(const core::StructuralCore& core, uint64_t waves,
                             uint64_t cursor) {
  waves_ = waves;
  cursor_ = cursor;
  expected_epoch_ = core.mutation_epoch();
  needs_rebase_ = false;
  pending_inserts_.clear();
  touched_mult_.clear();
}

void SnapshotRecorder::rebased(const core::StructuralCore& core) {
  expected_epoch_ = core.mutation_epoch();
  needs_rebase_ = false;
  pending_inserts_.clear();
  touched_mult_.clear();
}

void SnapshotRecorder::on_insert(NodeId id, std::span<const NodeId> neighbors) {
  ++expected_epoch_;
  snap::WaveDelta::Insert ins;
  ins.id = static_cast<uint32_t>(id);
  ins.neighbors.reserve(neighbors.size());
  for (NodeId v : neighbors) ins.neighbors.push_back(static_cast<uint32_t>(v));
  pending_inserts_.push_back(std::move(ins));
}

void SnapshotRecorder::on_image_touch(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  touched_mult_.push_back(slot_key(u, v));
}

void SnapshotRecorder::on_wave_committed(const core::StructuralCore& core,
                                         const core::RepairPlan& plan) {
  // The commit's own epoch bump; recovery waves (rebuild_for_recovery bumps
  // once more before the plan) and out-of-band mutations land past this and
  // force a rebase instead of a delta the core no longer matches.
  ++expected_epoch_;
  if (plan.recovery || core.mutation_epoch() != expected_epoch_) {
    needs_rebase_ = true;
    expected_epoch_ = core.mutation_epoch();
    pending_inserts_.clear();
    touched_mult_.clear();
    return;
  }

  snap::WaveDelta d;
  d.wave = ++waves_;
  d.epoch_after = core.mutation_epoch();
  d.cursor = cursor_;
  d.inserts = std::move(pending_inserts_);
  pending_inserts_.clear();
  d.victims.reserve(plan.victims.size());
  for (NodeId v : plan.victims) d.victims.push_back(static_cast<uint32_t>(v));

  const VirtualForest& forest = core.forest();
  d.arena_size_after = static_cast<uint64_t>(forest.arena_size());
  d.forest_live_after = forest.live_count();

  // Touched rows: every break-script handle plus the wave's whole arena
  // reservation (fresh anchor leaves and helpers). Merge-side parent-link
  // rewrites only ever hit piece roots (script events) and new helpers
  // (reservation), so this set is complete.
  std::vector<VNodeId> handles;
  for (const core::RegionPlan& region : plan.regions) {
    for (const core::RegionPlan::Event& e : region.events) handles.push_back(e.h);
  }
  for (int i = 0; i < plan.arena_total; ++i) handles.push_back(plan.arena_start + i);
  std::sort(handles.begin(), handles.end());
  handles.erase(std::unique(handles.begin(), handles.end()), handles.end());

  const std::vector<VirtualForest::VNode>& rows = forest.dump();
  d.rows.reserve(handles.size());
  std::vector<uint64_t> slot_keys;
  slot_keys.reserve(handles.size());
  for (VNodeId h : handles) {
    const VirtualForest::VNode& row = rows[static_cast<size_t>(h)];
    d.rows.push_back({static_cast<uint32_t>(h), to_vrow(row)});
    // Tombstones keep (owner, other), so torn-down rows still name the slot
    // key whose entry the break cleared.
    if (row.owner != kInvalidNode) slot_keys.push_back(slot_key(row.owner, row.other));
  }

  std::sort(slot_keys.begin(), slot_keys.end());
  slot_keys.erase(std::unique(slot_keys.begin(), slot_keys.end()), slot_keys.end());
  d.slots.reserve(slot_keys.size());
  for (uint64_t key : slot_keys) {
    NodeId owner = static_cast<NodeId>(key >> 32);
    NodeId other = static_cast<NodeId>(static_cast<uint32_t>(key));
    const core::SlotTable::Entry* s = core.slot_table().find(owner, other);
    snap::WaveDelta::SlotOp op;
    op.owner = static_cast<uint32_t>(owner);
    op.other = static_cast<uint32_t>(other);
    op.present = s != nullptr;
    op.leaf = s != nullptr ? static_cast<int32_t>(s->leaf) : -1;
    op.helper = s != nullptr ? static_cast<int32_t>(s->helper) : -1;
    d.slots.push_back(op);
  }

  std::sort(touched_mult_.begin(), touched_mult_.end());
  touched_mult_.erase(std::unique(touched_mult_.begin(), touched_mult_.end()),
                      touched_mult_.end());
  d.mult.reserve(touched_mult_.size());
  for (uint64_t key : touched_mult_) {
    snap::WaveDelta::MultOp op;
    op.u = static_cast<uint32_t>(key >> 32);
    op.v = static_cast<uint32_t>(key);
    op.count = core.image_multiplicity().count(key);
    d.mult.push_back(op);
  }
  touched_mult_.clear();

  if (sink_) sink_(d);
}

// ------------------------------------------------------------- SnapshotWriter

SnapshotWriter::SnapshotWriter(std::string base_path, std::string log_path,
                               int base_every)
    : base_path_(std::move(base_path)),
      log_path_(std::move(log_path)),
      base_every_(base_every) {
  recorder_.set_sink([this](const snap::WaveDelta& delta) {
    std::vector<uint8_t> frame;
    snap::append_delta(&frame, delta);
    std::string err;
    if (!snap::append_file(log_path_, frame, &err)) {
      if (error_.empty()) error_ = "delta append failed: " + err;
      return;
    }
    ++waves_since_base_;
  });
}

bool SnapshotWriter::begin(const core::StructuralCore& core, uint64_t waves,
                           uint64_t cursor, std::string* error) {
  recorder_.begin(core, waves, cursor);
  if (!write_base(core)) {
    if (error != nullptr) *error = error_;
    return false;
  }
  return true;
}

bool SnapshotWriter::maintain(const core::StructuralCore& core) {
  bool due = base_every_ > 0 && waves_since_base_ >= base_every_;
  if (recorder_.needs_rebase() || due) {
    if (!write_base(core)) return false;
    recorder_.rebased(core);
  }
  return error_.empty();
}

std::string SnapshotWriter::take_error() {
  std::string err = std::move(error_);
  error_.clear();
  return err;
}

bool SnapshotWriter::write_base(const core::StructuralCore& core) {
  snap::BaseImage image;
  core.to_base_image(&image);
  image.wave = recorder_.waves();
  image.cursor = recorder_.cursor();
  std::string err;
  if (!snap::write_file_atomic(base_path_, snap::encode_base(image), &err)) {
    if (error_.empty()) error_ = "base write failed: " + err;
    return false;
  }
  // Log reset strictly after the base lands: a crash between the two leaves
  // stale records whose wave ids the new base already covers, and
  // restore_snapshot skips those; resetting first could lose waves.
  if (!snap::write_file_atomic(log_path_, snap::encode_log_header(), &err)) {
    if (error_.empty()) error_ = "log reset failed: " + err;
    return false;
  }
  waves_since_base_ = 0;
  return true;
}

// ----------------------------------------------------------- restore_snapshot

SnapshotRestore restore_snapshot(const std::string& base_path,
                                 const std::string& log_path,
                                 core::StructuralCore* out) {
  SnapshotRestore res;

  std::vector<uint8_t> bytes;
  if (!snap::read_file(base_path, &bytes, &res.error)) return res;
  snap::BaseImage image;
  if (!snap::decode_base(bytes, &image, &res.error)) return res;
  if (!core::StructuralCore::from_base_image(image, out, &res.error)) return res;
  res.waves = image.wave;
  res.cursor = image.cursor;

  // A missing log just means no deltas were appended after the base.
  std::vector<uint8_t> log_bytes;
  std::string log_err;
  if (snap::read_file(log_path, &log_bytes, &log_err)) {
    snap::LogScan scan;
    if (!snap::scan_log(log_bytes, &scan, &res.error)) return res;
    res.truncated = scan.truncated;
    if (scan.truncated) res.error = scan.detail;
    for (const snap::WaveDelta& delta : scan.deltas) {
      // Records at or below the base's wave are a pre-rotation remnant (the
      // crash window between base write and log reset) — already reflected.
      if (delta.wave <= res.waves) continue;
      if (delta.wave != res.waves + 1) {
        res.error = "delta log gap: wave " + std::to_string(delta.wave) +
                    " after wave " + std::to_string(res.waves);
        res.ok = false;
        return res;
      }
      std::string apply_err;
      if (!out->apply_wave_delta(delta, &apply_err)) {
        res.error = "wave " + std::to_string(delta.wave) + ": " + apply_err;
        res.ok = false;
        return res;
      }
      res.waves = delta.wave;
      res.cursor = delta.cursor;
    }
  }

  res.ok = true;
  return res;
}

}  // namespace fg
