#include "fg/stabilizer.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <utility>

#include "fg/core/structural_core.h"
#include "haft/haft.h"
#include "util/check.h"

namespace fg {
namespace {

using core::SlotTable;
using VNode = VirtualForest::VNode;

void note(AuditReport& r, ViolationKind k, VNodeId h, NodeId u, NodeId v,
          const char* detail) {
  ++r.total;
  ++r.counts[static_cast<size_t>(k)];
  if (static_cast<int>(r.violations.size()) < AuditReport::kMaxDetails)
    r.violations.push_back({k, h, u, v, detail});
}

/// Union-find over forest rows with smallest-index representatives — the
/// same discipline as the planner's region DSU, so component numbering is
/// deterministic (component ids ascend with their smallest row).
struct RowDsu {
  std::vector<int> parent;
  explicit RowDsu(int n) : parent(static_cast<size_t>(n)) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent[static_cast<size_t>(b)] = a;
  }
};

/// Everything one audit pass derives: the typed report plus the quarantine
/// partition stabilize() acts on. The report side is what fg::audit
/// returns; the partition side (components, condemnation, the affected
/// dead-processor set) never leaves this translation unit.
struct Analysis {
  AuditReport report;
  std::vector<int> comp;           ///< Component id per row; -1 if tombstoned.
  int n_comps = 0;
  std::vector<uint8_t> condemned;  ///< Per component.
  std::vector<uint8_t> keep;       ///< Per row: alive and in a kept component.
  std::vector<NodeId> affected;    ///< Dead processors to re-anchor, ascending.
  int condemned_rows = 0;
  int kept_comps = 0;
};

Analysis analyze(const core::StructuralCore& core) {
  Analysis out;
  AuditReport& rep = out.report;
  const std::vector<VNode>& rows = core.forest().dump();
  const int n = static_cast<int>(rows.size());
  const Graph& gp = core.gprime();
  const SlotTable& slots = core.slot_table();
  const NodeId cap = gp.node_capacity();

  // Corrupted state may hold any bit pattern; every probe below must be
  // range-guarded before it touches an FG_CHECKing accessor.
  auto proc_ok = [&](NodeId p) { return p >= 0 && p < cap; };
  auto alive = [&](NodeId p) { return proc_ok(p) && core.is_alive(p); };
  auto row_ok = [&](VNodeId x) {
    return x >= 0 && x < n && rows[static_cast<size_t>(x)].alive;
  };
  auto row = [&](VNodeId x) -> const VNode& {
    return rows[static_cast<size_t>(x)];
  };
  // Parent link, followed only when the parent acknowledges the child.
  // Mutual links are exactly what the component DSU unites, so any walk
  // over them stays within one component — the property that lets a
  // verified ancestry (I3/I4) guarantee leaf and helper are quarantined
  // together or kept together, never split.
  auto mutual_parent = [&](VNodeId x) -> VNodeId {
    VNodeId p = row(x).parent;
    if (p == x || !row_ok(p) || row(p).is_leaf) return kNoVNode;
    if (row(p).left != x && row(p).right != x) return kNoVNode;
    return p;
  };
  // Cycle-safe "anc is an ancestor of (or equal to) from": step-capped
  // climb over mutual links only.
  auto reaches_up = [&](VNodeId from, VNodeId anc) {
    VNodeId x = from;
    for (int steps = 0; steps <= n && x != kNoVNode; ++steps) {
      if (x == anc) return true;
      x = mutual_parent(x);
    }
    return false;
  };

  std::vector<uint8_t> row_bad(static_cast<size_t>(n), 0);

  // --- Row sanity: fields, link symmetry, slot backing. -------------------
  for (VNodeId h = 0; h < n; ++h) {
    const VNode& r = row(h);
    if (!r.alive) continue;
    const bool owner_ok = alive(r.owner);
    const bool other_dead = proc_ok(r.other) && !core.is_alive(r.other);
    if (!owner_ok) {
      note(rep, ViolationKind::kRowOwnership, h, r.owner, r.other,
           "vnode owner is not an alive processor");
      row_bad[static_cast<size_t>(h)] = 1;
    }
    if (!other_dead) {
      note(rep, ViolationKind::kRowOwnership, h, r.owner, r.other,
           "vnode far endpoint is not a dead processor");
      row_bad[static_cast<size_t>(h)] = 1;
    } else if (owner_ok && !gp.has_edge(r.owner, r.other)) {
      note(rep, ViolationKind::kRowOwnership, h, r.owner, r.other,
           "vnode slot key is not a G' edge");
      row_bad[static_cast<size_t>(h)] = 1;
    }
    if (r.is_leaf) {
      if (r.left != kNoVNode || r.right != kNoVNode) {
        note(rep, ViolationKind::kRowLink, h, r.owner, r.other,
             "leaf with children");
        row_bad[static_cast<size_t>(h)] = 1;
      }
      if (r.rep != h || r.height != 0 || r.leaf_count != 1) {
        note(rep, ViolationKind::kRowAggregate, h, r.owner, r.other,
             "leaf bookkeeping corrupt (rep/height/leaf_count)");
        row_bad[static_cast<size_t>(h)] = 1;
      }
    } else {
      bool kids_ok = row_ok(r.left) && row_ok(r.right) && r.left != r.right &&
                     r.left != h && r.right != h;
      if (kids_ok)
        kids_ok = row(r.left).parent == h && row(r.right).parent == h;
      if (!kids_ok) {
        note(rep, ViolationKind::kRowLink, h, r.owner, r.other,
             "helper child links broken or disowned");
        row_bad[static_cast<size_t>(h)] = 1;
      }
    }
    if (r.parent != kNoVNode && mutual_parent(h) == kNoVNode) {
      note(rep, ViolationKind::kRowLink, h, r.owner, r.other,
           "parent link dangling or unacknowledged");
      row_bad[static_cast<size_t>(h)] = 1;
    }
    if (owner_ok && other_dead) {
      const SlotTable::Entry* s = slots.find(r.owner, r.other);
      const VNodeId backing =
          s == nullptr ? kNoVNode : (r.is_leaf ? s->leaf : s->helper);
      if (backing != h) {
        note(rep, ViolationKind::kRowSlotBacking, h, r.owner, r.other,
             "vnode not registered in its owner's slot");
        row_bad[static_cast<size_t>(h)] = 1;
      }
    }
  }

  // --- Components over mutual links; seed condemnation from bad rows. -----
  RowDsu dsu(n);
  for (VNodeId h = 0; h < n; ++h) {
    const VNode& r = row(h);
    if (!r.alive || r.is_leaf) continue;
    for (VNodeId c : {r.left, r.right})
      if (row_ok(c) && row(c).parent == h) dsu.unite(h, c);
  }
  out.comp.assign(static_cast<size_t>(n), -1);
  std::vector<int> comp_of_root(static_cast<size_t>(n), -1);
  for (VNodeId h = 0; h < n; ++h) {
    if (!row(h).alive) continue;
    int rt = dsu.find(h);
    if (comp_of_root[static_cast<size_t>(rt)] < 0)
      comp_of_root[static_cast<size_t>(rt)] = out.n_comps++;
    out.comp[static_cast<size_t>(h)] = comp_of_root[static_cast<size_t>(rt)];
  }
  std::vector<std::vector<VNodeId>> members(
      static_cast<size_t>(out.n_comps));
  for (VNodeId h = 0; h < n; ++h)
    if (row(h).alive)
      members[static_cast<size_t>(out.comp[static_cast<size_t>(h)])]
          .push_back(h);
  out.condemned.assign(static_cast<size_t>(out.n_comps), 0);
  auto condemn = [&](int c) {
    if (c >= 0) out.condemned[static_cast<size_t>(c)] = 1;
  };
  auto condemn_row = [&](VNodeId h) {
    if (row_ok(h)) condemn(out.comp[static_cast<size_t>(h)]);
  };
  for (VNodeId h = 0; h < n; ++h)
    if (row_bad[static_cast<size_t>(h)]) condemn_row(h);

  // --- Per-component shape: one root, full reachability, aggregates, haft.
  std::vector<int64_t> lc(static_cast<size_t>(n), 0);
  std::vector<int> ht(static_cast<size_t>(n), 0);
  std::vector<uint8_t> visited(static_cast<size_t>(n), 0);
  struct Frame {
    VNodeId h;
    int stage;
  };
  std::vector<Frame> stack;
  for (int c = 0; c < out.n_comps; ++c) {
    if (out.condemned[static_cast<size_t>(c)]) continue;
    const std::vector<VNodeId>& m = members[static_cast<size_t>(c)];
    VNodeId root = kNoVNode;
    int roots = 0;
    for (VNodeId h : m)
      if (row(h).parent == kNoVNode) {
        ++roots;
        root = h;
      }
    if (roots != 1) {
      // Zero roots: the component's mutual links close a cycle. More than
      // one cannot happen (each row has one parent link), but stay typed
      // and abort-free even against that.
      note(rep, ViolationKind::kRowLink, m.front(), kInvalidNode, kInvalidNode,
           roots == 0 ? "component has no root (mutual-link cycle)"
                      : "component has multiple roots");
      condemn(c);
      continue;
    }
    bool ok = true;
    int seen = 0;
    stack.assign(1, Frame{root, 0});
    while (!stack.empty() && ok) {
      Frame f = stack.back();
      const VNode& r = row(f.h);
      if (f.stage == 0) {
        if (visited[static_cast<size_t>(f.h)]) {
          note(rep, ViolationKind::kRowLink, f.h, r.owner, r.other,
               "row reached twice inside one component");
          ok = false;
          break;
        }
        visited[static_cast<size_t>(f.h)] = 1;
        ++seen;
        stack.back().stage = 1;
        if (!r.is_leaf) stack.push_back(Frame{r.left, 0});
        continue;
      }
      if (f.stage == 1) {
        stack.back().stage = 2;
        if (!r.is_leaf) stack.push_back(Frame{r.right, 0});
        continue;
      }
      if (r.is_leaf) {
        lc[static_cast<size_t>(f.h)] = 1;
        ht[static_cast<size_t>(f.h)] = 0;
      } else {
        const int64_t lcl = lc[static_cast<size_t>(r.left)];
        const int64_t lcr = lc[static_cast<size_t>(r.right)];
        const int htl = ht[static_cast<size_t>(r.left)];
        const int htr = ht[static_cast<size_t>(r.right)];
        lc[static_cast<size_t>(f.h)] = lcl + lcr;
        ht[static_cast<size_t>(f.h)] = std::max(htl, htr) + 1;
        if (lc[static_cast<size_t>(f.h)] != r.leaf_count ||
            ht[static_cast<size_t>(f.h)] != r.height) {
          note(rep, ViolationKind::kRowAggregate, f.h, r.owner, r.other,
               "stored height/leaf_count diverge from recount");
          ok = false;
          break;
        }
        // Haft property (I2): left child perfect and at least as big as
        // the right subtree. Heights are recounted, so the shift below is
        // bounded by the component depth, not by stored bytes — still
        // guard it, a corrupt deep chain can reach ~n before failing.
        const bool left_perfect =
            htl < 62 && lcl == (int64_t{1} << htl);
        if (!left_perfect || lcl < lcr) {
          note(rep, ViolationKind::kRowAggregate, f.h, r.owner, r.other,
               "haft property violated at this join");
          ok = false;
          break;
        }
      }
      stack.pop_back();
    }
    if (ok && seen != static_cast<int>(m.size())) {
      note(rep, ViolationKind::kRowLink, root, kInvalidNode, kInvalidNode,
           "component rows unreachable from its root");
      ok = false;
    }
    if (!ok) condemn(c);
  }

  // --- I3 per clean component: rep == the unique helper-free leaf. --------
  std::vector<VNodeId> walk;
  for (int c = 0; c < out.n_comps; ++c) {
    if (out.condemned[static_cast<size_t>(c)]) continue;
    for (VNodeId x : members[static_cast<size_t>(c)]) {
      if (row(x).is_leaf) continue;
      int free_leaves = 0;
      VNodeId free_leaf = kNoVNode;
      walk.assign(1, x);
      while (!walk.empty()) {
        VNodeId y = walk.back();
        walk.pop_back();
        const VNode& ry = row(y);
        if (!ry.is_leaf) {
          walk.push_back(ry.right);
          walk.push_back(ry.left);
          continue;
        }
        // The leaf's slot exists and backs it (the component is clean);
        // its helper field decides freeness relative to subtree(x).
        const SlotTable::Entry* s = slots.find(ry.owner, ry.other);
        const VNodeId helper = s == nullptr ? kNoVNode : s->helper;
        const bool inside = helper != kNoVNode && row_ok(helper) &&
                            reaches_up(helper, x);
        if (!inside) {
          ++free_leaves;
          free_leaf = y;
        }
      }
      if (free_leaves != 1 || free_leaf != row(x).rep) {
        note(rep, ViolationKind::kRepInvariant, x, row(x).owner, row(x).other,
             "rep is not the unique helper-free leaf of its subtree");
        condemn(c);
        break;
      }
    }
  }

  // --- Slot scan: edge validity, ghosts, I4 ancestry, I1 completeness. ----
  std::vector<uint8_t> affected_flag(static_cast<size_t>(cap), 0);
  std::vector<NodeId> proc_queue;
  auto mark_affected = [&](NodeId w) {
    if (proc_ok(w) && !affected_flag[static_cast<size_t>(w)]) {
      affected_flag[static_cast<size_t>(w)] = 1;
      proc_queue.push_back(w);
    }
  };
  for (NodeId u = 0; u < cap; ++u) {
    if (!core.is_alive(u)) {
      if (slots.count(u) > 0) {
        note(rep, ViolationKind::kSlotEdge, kNoVNode, u, kInvalidNode,
             "dead processor owns slot entries");
        for (const SlotTable::Entry& e : slots.entries(u)) {
          condemn_row(e.leaf);
          condemn_row(e.helper);
        }
      }
      continue;
    }
    for (const SlotTable::Entry& e : slots.entries(u)) {
      const bool edge_ok = proc_ok(e.other) && !core.is_alive(e.other) &&
                           gp.has_edge(u, e.other);
      if (!edge_ok) {
        note(rep, ViolationKind::kSlotEdge, e.leaf, u, e.other,
             "slot key is not a dead G' edge");
        condemn_row(e.leaf);
        condemn_row(e.helper);
      }
      const bool leaf_ok = row_ok(e.leaf) && row(e.leaf).is_leaf &&
                           row(e.leaf).owner == u && row(e.leaf).other == e.other;
      if (!leaf_ok) {
        note(rep, ViolationKind::kSlotGhost, e.leaf, u, e.other,
             "slot leaf missing or pointing at a mismatched row");
        condemn_row(e.leaf);
        // The helper row (if real) would survive into a leafless slot
        // after the rebuild — quarantine it with the anchor.
        condemn_row(e.helper);
        if (edge_ok) mark_affected(e.other);
      }
      if (e.helper != kNoVNode) {
        const bool helper_ok = row_ok(e.helper) && !row(e.helper).is_leaf &&
                               row(e.helper).owner == u &&
                               row(e.helper).other == e.other;
        if (!helper_ok) {
          note(rep, ViolationKind::kSlotGhost, e.helper, u, e.other,
               "slot helper pointing at a missing or mismatched row");
          condemn_row(e.helper);
        } else if (leaf_ok && !reaches_up(e.leaf, e.helper)) {
          note(rep, ViolationKind::kHelperAncestry, e.helper, u, e.other,
               "helper is not an ancestor of its real node");
          condemn_row(e.leaf);
          condemn_row(e.helper);
        }
      }
    }
    for (NodeId w : gp.neighbors(u)) {
      if (core.is_alive(w)) continue;
      if (slots.find(u, w) == nullptr) {
        note(rep, ViolationKind::kMissingAnchor, kNoVNode, u, w,
             "dead G' edge has no anchor slot");
        mark_affected(w);
      }
    }
  }

  // --- Dead-cluster co-location law. --------------------------------------
  // Legal executions keep all anchors of one G'-connected dead cluster in a
  // single RT (whichever endpoint of a dead-dead edge died first left a
  // leaf in the RT that absorbed the second death). A split cluster can
  // disconnect the healed image even when every per-row rule above passes,
  // so it condemns every RT involved and re-anchors the whole cluster.
  std::vector<std::vector<int>> proc_leaf_comps(static_cast<size_t>(cap));
  std::vector<std::vector<NodeId>> comp_dead_procs(
      static_cast<size_t>(out.n_comps));
  for (VNodeId h = 0; h < n; ++h) {
    const VNode& r = row(h);
    if (!r.alive || !r.is_leaf) continue;
    if (!proc_ok(r.other) || core.is_alive(r.other)) continue;
    const int c = out.comp[static_cast<size_t>(h)];
    proc_leaf_comps[static_cast<size_t>(r.other)].push_back(c);
    comp_dead_procs[static_cast<size_t>(c)].push_back(r.other);
  }
  for (auto& v : proc_leaf_comps) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  for (auto& v : comp_dead_procs) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  std::vector<uint8_t> cluster_seen(static_cast<size_t>(cap), 0);
  std::vector<NodeId> cluster;
  std::vector<int> cluster_comps;
  for (NodeId w0 = 0; w0 < cap; ++w0) {
    if (core.is_alive(w0) || cluster_seen[static_cast<size_t>(w0)]) continue;
    cluster.assign(1, w0);
    cluster_seen[static_cast<size_t>(w0)] = 1;
    for (size_t i = 0; i < cluster.size(); ++i)
      for (NodeId x : gp.neighbors(cluster[i]))
        if (!core.is_alive(x) && !cluster_seen[static_cast<size_t>(x)]) {
          cluster_seen[static_cast<size_t>(x)] = 1;
          cluster.push_back(x);
        }
    cluster_comps.clear();
    for (NodeId w : cluster)
      cluster_comps.insert(cluster_comps.end(),
                           proc_leaf_comps[static_cast<size_t>(w)].begin(),
                           proc_leaf_comps[static_cast<size_t>(w)].end());
    std::sort(cluster_comps.begin(), cluster_comps.end());
    cluster_comps.erase(std::unique(cluster_comps.begin(), cluster_comps.end()),
                        cluster_comps.end());
    if (cluster_comps.size() > 1) {
      note(rep, ViolationKind::kSplitDeadCluster, kNoVNode, w0, kInvalidNode,
           "anchors of one dead cluster scattered across RTs");
      for (int c : cluster_comps) condemn(c);
      for (NodeId w : cluster) mark_affected(w);
    }
  }

  // --- Image fidelity (I5) and multiplicity recount. -----------------------
  {
    std::vector<uint64_t> expected;
    for (NodeId u = 0; u < cap; ++u) {
      if (!core.is_alive(u)) continue;
      for (NodeId w : gp.neighbors(u))
        if (u < w && core.is_alive(w)) expected.push_back(slot_key(u, w));
    }
    for (VNodeId h = 0; h < n; ++h) {
      const VNode& r = row(h);
      if (!r.alive || mutual_parent(h) == kNoVNode) continue;
      const NodeId a = r.owner;
      const NodeId b = row(r.parent).owner;
      if (a == b || !alive(a) || !alive(b)) continue;
      expected.push_back(slot_key(std::min(a, b), std::max(a, b)));
    }
    std::sort(expected.begin(), expected.end());
    const util::FlatCountMap& mult = core.image_multiplicity();
    const Graph& g = core.image();
    size_t distinct = 0;
    for (size_t i = 0; i < expected.size();) {
      size_t j = i;
      while (j < expected.size() && expected[j] == expected[i]) ++j;
      ++distinct;
      const NodeId a = static_cast<NodeId>(expected[i] >> 32);
      const NodeId b = static_cast<NodeId>(expected[i] & 0xffffffffu);
      if (mult.count(expected[i]) != static_cast<int32_t>(j - i))
        note(rep, ViolationKind::kMultiplicityDrift, kNoVNode, a, b,
             "image multiplicity diverges from recount");
      if (!g.has_edge(a, b))
        note(rep, ViolationKind::kImageDrift, kNoVNode, a, b,
             "healed image is missing an expected edge");
      i = j;
    }
    if (mult.size() != distinct)
      note(rep, ViolationKind::kMultiplicityDrift, kNoVNode, kInvalidNode,
           kInvalidNode, "multiplicity map carries phantom edges");
    if (g.edge_count() != static_cast<int64_t>(distinct))
      note(rep, ViolationKind::kImageDrift, kNoVNode, kInvalidNode,
           kInvalidNode, "healed image carries unexpected edges");
  }

  // --- Quarantine closure. -------------------------------------------------
  // Fixed point of: a condemned component orphans the anchors of its dead
  // processors (they become affected); an affected processor pulls every
  // component still holding its anchors (partial anchor sets cannot be
  // patched — the whole cluster rebuilds into one fresh RT) and, through
  // the co-location law, its entire dead cluster.
  std::vector<int> comp_queue;
  std::vector<uint8_t> comp_enqueued(static_cast<size_t>(out.n_comps), 0);
  for (int c = 0; c < out.n_comps; ++c)
    if (out.condemned[static_cast<size_t>(c)]) {
      comp_enqueued[static_cast<size_t>(c)] = 1;
      comp_queue.push_back(c);
    }
  while (!comp_queue.empty() || !proc_queue.empty()) {
    if (!comp_queue.empty()) {
      const int c = comp_queue.back();
      comp_queue.pop_back();
      out.condemned[static_cast<size_t>(c)] = 1;
      for (NodeId w : comp_dead_procs[static_cast<size_t>(c)]) mark_affected(w);
      continue;
    }
    const NodeId w = proc_queue.back();
    proc_queue.pop_back();
    for (int c : proc_leaf_comps[static_cast<size_t>(w)])
      if (!comp_enqueued[static_cast<size_t>(c)]) {
        comp_enqueued[static_cast<size_t>(c)] = 1;
        comp_queue.push_back(c);
      }
    for (NodeId x : gp.neighbors(w))
      if (!core.is_alive(x)) mark_affected(x);
  }

  out.keep.assign(static_cast<size_t>(n), 0);
  for (VNodeId h = 0; h < n; ++h) {
    if (!row(h).alive) continue;
    const int c = out.comp[static_cast<size_t>(h)];
    if (!out.condemned[static_cast<size_t>(c)])
      out.keep[static_cast<size_t>(h)] = 1;
    else
      ++out.condemned_rows;
  }
  for (int c = 0; c < out.n_comps; ++c)
    if (!out.condemned[static_cast<size_t>(c)]) ++out.kept_comps;
  for (NodeId w = 0; w < cap; ++w)
    if (affected_flag[static_cast<size_t>(w)]) out.affected.push_back(w);
  return out;
}

/// One recovery wave over the rebuilt core: per G'-connected component of
/// the affected dead processors, one region spawning exactly the anchors
/// the quarantine removed, merged into one fresh RT by the ordinary
/// deterministic pipeline. The plan is stamped against the post-rebuild
/// epoch and arena, so ShardedForest::execute treats it like any wave.
core::RepairPlan build_recovery_plan(const core::StructuralCore& core,
                                     const std::vector<NodeId>& affected) {
  const Graph& gp = core.gprime();
  core::RepairPlan plan;
  plan.recovery = true;
  plan.arena_start = core.forest().arena_size();
  plan.arena_total = 0;
  plan.epoch = core.mutation_epoch();

  std::vector<uint8_t> in_affected(
      static_cast<size_t>(gp.node_capacity()), 0);
  for (NodeId w : affected) in_affected[static_cast<size_t>(w)] = 1;
  std::vector<uint8_t> seen(in_affected.size(), 0);
  for (NodeId w0 : affected) {
    if (seen[static_cast<size_t>(w0)]) continue;
    // Region = the affected slice of one dead cluster, collected in
    // ascending id order (deterministic BFS from the smallest member).
    std::vector<NodeId> region_victims{w0};
    seen[static_cast<size_t>(w0)] = 1;
    for (size_t i = 0; i < region_victims.size(); ++i)
      for (NodeId x : gp.neighbors(region_victims[i]))
        if (in_affected[static_cast<size_t>(x)] && !seen[static_cast<size_t>(x)]) {
          seen[static_cast<size_t>(x)] = 1;
          region_victims.push_back(x);
        }
    std::sort(region_victims.begin(), region_victims.end());

    core::RegionPlan region;
    region.id = static_cast<int>(plan.regions.size());
    region.victims = region_victims;
    for (NodeId w : region_victims) {
      for (NodeId u : gp.neighbors(w)) {
        if (!core.is_alive(u)) continue;
        FG_CHECK_MSG(core.slot_table().find(u, w) == nullptr,
                     "recovery planning a victim that still has anchors");
        region.fresh.push_back({u, w});
        region.pieces.push_back(haft::PieceInfo{1, slot_key(u, w)});
      }
    }
    region.steps = haft::merge_plan(region.pieces);
    region.arena_base = plan.arena_start + plan.arena_total;
    plan.arena_total += static_cast<int>(region.fresh.size()) +
                        static_cast<int>(region.steps.size());
    for (NodeId w : region_victims) {
      plan.victims.push_back(w);
      plan.victim_region.push_back(region.id);
    }
    plan.regions.push_back(std::move(region));
  }
  return plan;
}

}  // namespace

const char* violation_kind_name(ViolationKind k) {
  switch (k) {
    case ViolationKind::kRowLink: return "row-link";
    case ViolationKind::kRowAggregate: return "row-aggregate";
    case ViolationKind::kRowOwnership: return "row-ownership";
    case ViolationKind::kRowSlotBacking: return "row-slot-backing";
    case ViolationKind::kRepInvariant: return "rep-invariant";
    case ViolationKind::kHelperAncestry: return "helper-ancestry";
    case ViolationKind::kSlotGhost: return "slot-ghost";
    case ViolationKind::kSlotEdge: return "slot-edge";
    case ViolationKind::kMissingAnchor: return "missing-anchor";
    case ViolationKind::kSplitDeadCluster: return "split-dead-cluster";
    case ViolationKind::kImageDrift: return "image-drift";
    case ViolationKind::kMultiplicityDrift: return "multiplicity-drift";
  }
  return "unknown";
}

std::string AuditReport::summary() const {
  if (clean()) return "clean";
  std::ostringstream os;
  os << total << (total == 1 ? " violation:" : " violations:");
  for (int k = 0; k < kViolationKinds; ++k)
    if (counts[static_cast<size_t>(k)] > 0)
      os << ' ' << violation_kind_name(static_cast<ViolationKind>(k)) << '='
         << counts[static_cast<size_t>(k)];
  return os.str();
}

AuditReport audit(const core::StructuralCore& core) {
  return analyze(core).report;
}

RecoveryStats Stabilizer::stabilize() {
  Analysis a = analyze(fg_.core());
  RecoveryStats stats;
  stats.report = std::move(a.report);
  if (stats.report.clean()) return stats;

  stats.recovered = true;
  stats.condemned_rows = a.condemned_rows;
  stats.kept_components = a.kept_comps;
  stats.condemned_components = a.n_comps - a.kept_comps;

  // Quarantine the condemned components and rebuild all derived state from
  // ground truth, then re-anchor through the ordinary certified pipeline.
  fg_.core().rebuild_for_recovery(a.keep);
  core::RepairPlan plan = build_recovery_plan(fg_.core(), a.affected);
  stats.regions = static_cast<int>(plan.regions.size());
  stats.victims = static_cast<int>(plan.victims.size());
  for (const core::RegionPlan& r : plan.regions)
    stats.anchors += static_cast<int>(r.fresh.size());
  fg_.commit_delete_batch(plan);
  return stats;
}

}  // namespace fg
