#include "fg/forgiving_graph.h"

#include <algorithm>

#include "util/check.h"

namespace fg {

void ForgivingGraph::delete_batch(std::span<const NodeId> victims) {
  // The core performs the whole structural repair; the centralized engine
  // applies the merge directly as one atomic step (no observer — there is
  // no protocol layer to mirror the mutations into).
  std::vector<VNodeId> pieces = core_.begin_deletion(victims);
  if (!pieces.empty()) core_.merge_pieces(std::move(pieces));
}

ForgivingGraph ForgivingGraph::load(std::istream& is) {
  ForgivingGraph fg;
  fg.core_ = core::StructuralCore::load(is);
  return fg;
}

double ForgivingGraph::degree_ratio(NodeId v) const {
  FG_CHECK(healed().is_alive(v));
  int dp = gprime().degree(v);
  FG_CHECK(dp > 0);
  return static_cast<double>(healed().degree(v)) / dp;
}

double ForgivingGraph::max_degree_ratio() const {
  double worst = 1.0;
  for (NodeId v : healed().alive_nodes())
    if (gprime().degree(v) > 0) worst = std::max(worst, degree_ratio(v));
  return worst;
}

}  // namespace fg
