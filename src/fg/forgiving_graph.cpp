#include "fg/forgiving_graph.h"

#include <algorithm>

#include "harness/certificate.h"
#include "util/check.h"

namespace fg {

void ForgivingGraph::commit_delete_batch(const core::RepairPlan& plan) {
  // The core performs the whole structural repair as one atomic step (no
  // observer — there is no protocol layer to mirror the mutations into).
  // Both commit phases draw every vnode from the plan's arena-id
  // reservation, so the shard layer may fan the break scripts *and* the
  // region merges out over its pool and still land on the byte-identical
  // checkpoint and certificate bytes at any worker count (contract C4,
  // docs/CONCURRENCY.md).
  harness::CertificateBuilder builder;
  if (cert_sink_ != nullptr) builder.begin_wave(core_, plan);
  std::vector<VNodeId> roots = shards_.execute(core_, plan);
  if (cert_sink_ != nullptr)
    cert_sink_->on_certificate(builder.end_wave(core_, plan, certified_waves_++,
                                                roots, /*cost=*/nullptr));
}

ForgivingGraph ForgivingGraph::load(std::istream& is) {
  ForgivingGraph fg;
  fg.core_ = core::StructuralCore::load(is);
  return fg;
}

double ForgivingGraph::degree_ratio(NodeId v) const {
  FG_CHECK(healed().is_alive(v));
  int dp = gprime().degree(v);
  FG_CHECK(dp > 0);
  return static_cast<double>(healed().degree(v)) / dp;
}

double ForgivingGraph::max_degree_ratio() const {
  double worst = 1.0;
  for (NodeId v : healed().alive_nodes())
    if (gprime().degree(v) > 0) worst = std::max(worst, degree_ratio(v));
  return worst;
}

}  // namespace fg
