#include "fg/forgiving_graph.h"

#include <algorithm>

#include "util/check.h"

namespace fg {

void ForgivingGraph::commit_delete_batch(const core::RepairPlan& plan) {
  // The core performs the whole structural repair; the centralized engine
  // applies the break and each region's planned merge directly as one
  // atomic step (no observer — there is no protocol layer to mirror the
  // mutations into). Regions commit in plan order: the shard ordering rule
  // that keeps sharded planning bit-identical to sequential planning.
  std::vector<std::vector<VNodeId>> pieces = core_.commit_break(plan);
  std::vector<VNodeId> region_roots(plan.regions.size(), kNoVNode);
  for (const core::RegionPlan& region : plan.regions)
    region_roots[static_cast<size_t>(region.id)] =
        core_.commit_merge(region, std::move(pieces[static_cast<size_t>(region.id)]));
  shards_.note_commit(plan, region_roots);
}

ForgivingGraph ForgivingGraph::load(std::istream& is) {
  ForgivingGraph fg;
  fg.core_ = core::StructuralCore::load(is);
  return fg;
}

double ForgivingGraph::degree_ratio(NodeId v) const {
  FG_CHECK(healed().is_alive(v));
  int dp = gprime().degree(v);
  FG_CHECK(dp > 0);
  return static_cast<double>(healed().degree(v)) / dp;
}

double ForgivingGraph::max_degree_ratio() const {
  double worst = 1.0;
  for (NodeId v : healed().alive_nodes())
    if (gprime().degree(v) > 0) worst = std::max(worst, degree_ratio(v));
  return worst;
}

}  // namespace fg
