// Centralized reference implementation of the Forgiving Graph (Section 3).
//
// This engine executes exactly the structural algorithm of the paper —
// insertion bookkeeping, and on each deletion the break / strip / merge of
// Reconstruction Trees with the representative mechanism of Algorithm A.9 —
// as one atomic step per adversarial event. It maintains:
//
//   * G'  — the graph of all insertions, with no deletions applied (deleted
//           processors remain as usable path intermediaries, per the paper's
//           success metrics);
//   * G   — the actual healed network: the homomorphic image of G' minus the
//           deleted processors plus the virtual forest.
//
// The distributed protocol (fg/dist) produces bit-identical topologies; the
// equivalence test in tests/dist_equivalence_test.cpp relies on both engines
// sharing haft::merge_plan and the slot_key ordering.
//
// Invariants maintained after every insert/remove (checked by validate()):
//   I1. Slot consistency: processor u has a slot keyed by w iff (u, w) is a
//       G' edge whose far endpoint w is dead; the slot always holds the real
//       (leaf) node of that edge and at most one helper.
//   I2. Every Reconstruction Tree in the virtual forest is a haft over the
//       real nodes of its dead edge slots (Lemma 1 bounds its depth by
//       ceil(log2 leaves)).
//   I3. Representative: every internal RT node's `rep` is the unique leaf of
//       its subtree whose slot simulates no helper inside that subtree —
//       which is why each processor gains at most one helper (≤ 3 virtual
//       degree, ≤ 4 network degree) per G' edge.
//   I4. Each helper is an ancestor of its own slot's leaf (Lemma 3).
//   I5. G is exactly the homomorphic image: G' minus dead processors, plus
//       one edge per virtual tree edge whose endpoints have distinct owners.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <unordered_map>
#include <vector>

#include "fg/virtual_forest.h"
#include "graph/graph.h"

namespace fg {

/// Structural statistics of the most recent deletion repair.
struct RepairStats {
  int affected_rts = 0;     ///< RTs broken by the deletion.
  int pieces = 0;           ///< Perfect trees merged (incl. new leaves).
  int new_leaves = 0;       ///< Fresh real nodes (alive direct neighbors).
  int helpers_created = 0;  ///< Helper nodes instantiated by the merge.
  int helpers_removed = 0;  ///< "Red" helpers discarded by stripping.
  int64_t final_rt_leaves = 0;  ///< Leaves of the resulting RT (0 if none).
  int deleted_degree_gprime = 0;  ///< Degree of the deleted node in G'.
};

/// The Forgiving Graph self-healing data structure (centralized engine).
class ForgivingGraph {
 public:
  /// Start from a connected network G0; ids 0..n-1 become live processors.
  explicit ForgivingGraph(const Graph& g0);

  /// Adversarial insertion: a new processor attached to `neighbors` (all
  /// alive, no duplicates). Returns the new processor id.
  NodeId insert(std::span<const NodeId> neighbors);

  /// Adversarial deletion of `v` followed by the healing repair.
  void remove(NodeId v);

  /// The actual healed network G.
  const Graph& healed() const { return g_; }

  /// The insertions-only graph G' (deleted processors still present).
  const Graph& gprime() const { return gprime_; }

  bool is_alive(NodeId v) const { return g_.is_alive(v); }

  const RepairStats& last_repair() const { return last_repair_; }

  /// Number of helper nodes currently simulated by processor v.
  int helper_count(NodeId v) const;

  /// Degree of v in G divided by its degree in G' (Theorem 1.1 numerator /
  /// denominator). v must be alive and have G'-degree > 0.
  double degree_ratio(NodeId v) const;

  /// Max degree ratio over all alive processors (1.0 for an empty graph).
  double max_degree_ratio() const;

  const VirtualForest& forest() const { return forest_; }

  /// Checkpoint the complete structure (G', liveness, virtual forest) to a
  /// line-oriented text stream; `load` restores an equivalent engine whose
  /// behaviour is indistinguishable from the original (same topology, same
  /// future repairs). The slot table and healed image are derived state and
  /// are rebuilt on load.
  void save(std::ostream& os) const;
  static ForgivingGraph load(std::istream& is);

  /// Full invariant check (expensive; used by tests):
  ///  - slot consistency with G' and liveness,
  ///  - every RT is a haft,
  ///  - representative invariant on every internal node,
  ///  - each helper is an ancestor of its slot's leaf,
  ///  - G equals the homomorphic image rebuilt from scratch.
  void validate() const;

 private:
  ForgivingGraph() = default;  // for load()

  struct Slot {
    VNodeId leaf = kNoVNode;
    VNodeId helper = kNoVNode;
  };
  struct Proc {
    bool alive = true;
    std::unordered_map<NodeId, Slot> slots;  // keyed by the other endpoint
  };

  static uint64_t edge_key(NodeId u, NodeId v);
  void add_image_edge(NodeId u, NodeId v);
  void remove_image_edge(NodeId u, NodeId v);

  /// Drop the virtual edge between h and its parent from the image and
  /// detach h (no-op on roots).
  void detach_vnode(VNodeId h);

  /// Tombstone h (children must be gone), freeing its slot registration and
  /// its parent edge.
  void remove_vnode(VNodeId h);

  /// Break the RT rooted at `root`: remove the vnodes owned by the deleted
  /// processor and all "red" survivors, appending the maximal clean perfect
  /// subtrees ("pieces") to `out`.
  void collect_pieces(VNodeId root, const std::vector<char>& is_dead_vnode,
                      std::vector<VNodeId>* out);

  /// Execute the global merge plan over `pieces`, creating helpers through
  /// the representative mechanism; returns the final root (or the single
  /// piece). `pieces` must be non-empty.
  VNodeId merge_pieces(std::vector<VNodeId> pieces);

  Graph gprime_;
  Graph g_;
  VirtualForest forest_;
  std::vector<Proc> procs_;
  std::unordered_map<uint64_t, int> image_multiplicity_;
  RepairStats last_repair_;
};

}  // namespace fg
