// Centralized reference implementation of the Forgiving Graph (Section 3).
//
// This engine executes exactly the structural algorithm of the paper —
// insertion bookkeeping, and on each deletion the break / strip / merge of
// Reconstruction Trees with the representative mechanism of Algorithm A.9 —
// as one atomic step per adversarial event. All structural state and every
// container mutation live in the shared core::StructuralCore, which the
// distributed protocol (fg/dist) drives too: both engines execute the same
// code path and the same deterministic haft::merge_plan, so the healed
// topologies are bit-identical by construction (docs/DESIGN.md invariant 6;
// pinned by tests/dist_equivalence_test.cpp and exhaustive_small_test.cpp).
//
// Every deletion runs the two-phase plan/commit pipeline: a read-only
// RepairPlan per wave — one RegionPlan per connected dirty region, carrying
// that region's arena-id reservation — then a commit whose break phase runs
// in deterministic region order and whose region merges may fan out over
// the commit pool. Both the plan side (set_shard_workers) and the commit
// side (set_commit_workers) are schedule-independent: any worker count
// replays byte-identical checkpoints (contract C4, docs/CONCURRENCY.md).
//
// The invariants maintained after every insert/remove (I1-I5, checked by
// validate()) are documented on core::StructuralCore.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "fg/core/structural_core.h"
#include "fg/sharded_forest.h"
#include "fg/virtual_forest.h"
#include "graph/graph.h"

namespace fg::harness {
class CertificateSink;
}

namespace fg {

/// Structural statistics of the most recent deletion repair (shared with
/// the distributed engine through the core).
using RepairStats = core::RepairStats;

/// The Forgiving Graph self-healing data structure (centralized engine).
class ForgivingGraph {
 public:
  /// Start from a connected network G0; ids 0..n-1 become live processors.
  explicit ForgivingGraph(const Graph& g0) : core_(g0) {}

  /// Adopt an already-populated core — the binary-snapshot restore path
  /// (fg::restore_snapshot rebuilds the core from a base image plus the
  /// delta tail, then hands it to an engine to resume healing).
  explicit ForgivingGraph(core::StructuralCore&& restored)
      : core_(std::move(restored)) {}

  /// Adversarial insertion: a new processor attached to `neighbors` (all
  /// alive, no duplicates). Returns the new processor id.
  NodeId insert(std::span<const NodeId> neighbors) {
    return core_.insert_node(neighbors);
  }

  /// Adversarial deletion of `v` followed by the healing repair.
  void remove(NodeId v) { delete_batch({&v, 1}); }

  /// Batched adversarial deletion: all of `victims` (alive, distinct) die
  /// simultaneously and one repair round heals the network — one merged
  /// plan and one new RT per connected dirty region (see region_split to
  /// fall back to a single wave-wide RT). Equivalent to sequential
  /// deletions with respect to invariants I1-I5 and the Theorem 1
  /// degree/stretch bounds, at a fraction of the repair cost under heavy
  /// churn.
  void delete_batch(std::span<const NodeId> victims) {
    commit_delete_batch(plan_delete_batch(victims));
  }

  /// Plan phase only: the immutable per-region repair recipe for a wave
  /// (read-only; planned concurrently when shard_workers > 1).
  core::RepairPlan plan_delete_batch(std::span<const NodeId> victims) const {
    return shards_.plan(core_, victims, split_);
  }

  /// Commit phase only: apply a plan produced by plan_delete_batch with no
  /// intervening mutation. Region break scripts fan out over the pool when
  /// break_workers > 1 (deterministic BreakEffects stitch in region id
  /// order), region merges when commit_workers > 1 — every vnode handle
  /// comes from the plan's arena-id reservation, so the result is
  /// schedule-independent (C4).
  void commit_delete_batch(const core::RepairPlan& plan);

  /// Worker threads for the plan phase (1 = plan inline). Any value
  /// produces the identical repair (contract C4).
  void set_shard_workers(int n) { shards_.set_workers(n); }
  int shard_workers() const { return shards_.workers(); }

  /// Worker threads for the commit's merge phase (1 = merge inline; n > 1
  /// keeps a persistent pool of n - 1 background threads). Any value
  /// replays byte-identical checkpoints (contract C4 — the arena-id
  /// reservation fixes every handle at plan time).
  void set_commit_workers(int n) { shards_.set_commit_workers(n); }
  int commit_workers() const { return shards_.commit_workers(); }

  /// Worker threads for the commit's break phase (1 = the core's
  /// sequential break; n > 1 fans region break scripts out over the same
  /// persistent pool). Any value replays byte-identical checkpoints and
  /// certificate bytes (contract C4 — the BreakEffects stitch applies
  /// every shared-state write in region id order).
  void set_break_workers(int n) { shards_.set_break_workers(n); }
  int break_workers() const { return shards_.break_workers(); }

  /// Per-region healing (default) vs the pre-sharding single wave-wide RT.
  void set_region_split(core::RegionSplit split) { split_ = split; }
  core::RegionSplit region_split() const { return split_; }

  /// Shard bookkeeping: region ids of the last wave, region of a root.
  const ShardedForest& shards() const { return shards_; }

  /// The structural core, read-only — the audit surface fg::Stabilizer
  /// scans (slot tables, forest rows, image multiplicities).
  const core::StructuralCore& core() const { return core_; }

  /// Mutable core access for the recovery path (fg::Stabilizer's
  /// quarantine/rebuild) and for fault injection in tests (tests/fuzz).
  /// Engine code never goes through this — every normal mutation uses the
  /// insert/delete pipeline above.
  core::StructuralCore& core() { return core_; }

  /// Install a certificate sink: every subsequent committed deletion wave
  /// emits a per-wave cert::WaveCertificate through it (harness/
  /// certificate.h; docs/CERTIFICATES.md). nullptr disables emission. The
  /// certificate bytes are a pure function of (structure, wave) — identical
  /// at every shard/commit worker count (contract C4).
  void set_certificate_sink(harness::CertificateSink* sink) { cert_sink_ = sink; }
  harness::CertificateSink* certificate_sink() const { return cert_sink_; }

  /// Victim -> region ids of the most recent delete_batch, aligned with
  /// the victim order passed in (recorded by trace `r` lines).
  const std::vector<int>& last_region_assignment() const {
    return shards_.last_assignment();
  }

  /// Roots of the RTs a deletion of `v` would break (sorted, unique).
  /// Disjoint-region adversaries probe this to build disjoint waves.
  std::vector<VNodeId> affected_roots(NodeId v) const {
    return core_.slot_roots(v);
  }

  /// The core's mutation epoch: every plan is stamped with it, and the
  /// service loop's admission gate compares stamps to detect a stale plan
  /// before the core's FG_CHECK would refuse it (fg/healer_service.h;
  /// docs/DESIGN.md, "Healer service").
  uint64_t mutation_epoch() const { return core_.mutation_epoch(); }

  /// The actual healed network G.
  const Graph& healed() const { return core_.image(); }

  /// The insertions-only graph G' (deleted processors still present).
  const Graph& gprime() const { return core_.gprime(); }

  bool is_alive(NodeId v) const { return core_.is_alive(v); }

  const RepairStats& last_repair() const { return core_.last_repair(); }

  /// Number of helper nodes currently simulated by processor v.
  int helper_count(NodeId v) const { return core_.helper_count(v); }

  /// Degree of v in G divided by its degree in G' (Theorem 1.1 numerator /
  /// denominator). v must be alive and have G'-degree > 0.
  double degree_ratio(NodeId v) const;

  /// Max degree ratio over all alive processors (1.0 for an empty graph).
  double max_degree_ratio() const;

  const VirtualForest& forest() const { return core_.forest(); }

  /// Checkpoint the complete structure (G', liveness, virtual forest) to a
  /// line-oriented text stream; `load` restores an equivalent engine whose
  /// behaviour is indistinguishable from the original (same topology, same
  /// future repairs). The slot table and healed image are derived state and
  /// are rebuilt on load.
  void save(std::ostream& os) const { core_.save(os); }
  static ForgivingGraph load(std::istream& is);

  /// Full invariant check I1-I5 (expensive; used by tests).
  void validate() const { core_.validate(); }

 private:
  ForgivingGraph() = default;  // for load()

  core::StructuralCore core_;
  ShardedForest shards_;
  core::RegionSplit split_ = core::RegionSplit::kPerRegion;
  harness::CertificateSink* cert_sink_ = nullptr;
  long certified_waves_ = 0;  ///< Wave index of the next certificate.
};

}  // namespace fg
