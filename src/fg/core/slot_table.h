// Pooled flat per-processor slot tables (Table 1 of the paper).
//
// Every processor keeps, per G' edge to a dead neighbor, one *slot*: the
// real (leaf) virtual node of that edge plus the at-most-one helper node it
// simulates for it. PR 5 proved on the adjacency lists that shedding
// per-element hash nodes is the dominant lever on the wave-commit path;
// this header applies the same treatment to the slot tables — the last
// hash containers that stood on it.
//
// Storage model mirrors Graph's AdjSlot (src/graph/graph.h): each
// processor's slots are a *sorted* flat array of Entry, keyed by the far
// endpoint `other` — up to kInlineCap entries inline in the per-processor
// head, longer tables in a shared spill pool with power-of-two size-class
// free lists, so steady-state slot churn never touches the general-purpose
// allocator. Lookups are a binary search over a contiguous range; iteration
// order is ascending by `other`, which makes every slot walk — helper
// counts, root scans, checkpoint rebuild checks — canonical by
// construction, with no stdlib hash order anywhere near contract C4.
//
// Concurrency contract (docs/CONCURRENCY.md): the table is NOT internally
// synchronized. The parallel commit relies on two structural facts instead:
//   * during the merge fan-out no entry is inserted or erased, so the
//     entry arrays are stable and concurrent in-place writes to *distinct*
//     entries (merge_region installing helpers) are race-free;
//   * during the break fan-out the table is neither read nor written —
//     every slot mutation is recorded into a region-local BreakEffects
//     buffer and applied by the single-threaded stitch in region id order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "fg/virtual_forest.h"
#include "graph/graph.h"
#include "util/check.h"

namespace fg::core {

class SlotTable {
 public:
  struct Entry {
    NodeId other = kInvalidNode;  ///< Far endpoint of the G' edge slot (the key).
    VNodeId leaf = kNoVNode;      ///< The slot's real node.
    VNodeId helper = kNoVNode;    ///< The at-most-one helper simulated for it.
  };

  /// Ensure processors [0, n) have (possibly empty) tables. Grow-only.
  /// The per-processor heads are allocated lazily on the first ensure() —
  /// a table that is never written (snapshot restore of an insert-only
  /// substrate, early warmup) costs nothing but this size_t.
  void resize(size_t n) {
    FG_CHECK(n >= procs_);
    procs_ = n;
    if (!heads_.empty()) heads_.resize(n);
  }

  size_t procs() const { return procs_; }

  /// Processor v's slot for far endpoint `other`, or nullptr. Binary search
  /// over the sorted entry array.
  const Entry* find(NodeId v, NodeId other) const {
    const Head& h = head(v);
    const Entry* first = data(h);
    const Entry* last = first + h.count;
    const Entry* it = std::lower_bound(first, last, other, by_other);
    return (it != last && it->other == other) ? it : nullptr;
  }
  Entry* find(NodeId v, NodeId other) {
    return const_cast<Entry*>(std::as_const(*this).find(v, other));
  }

  /// Processor v's slot for `other`, inserted empty (sorted position) if
  /// absent. May move v's entries (never another processor's).
  Entry& ensure(NodeId v, NodeId other) {
    Head& h = head(v);
    Entry* first = data(h);
    Entry* it = std::lower_bound(first, first + h.count, other, by_other);
    if (it != first + h.count && it->other == other) return *it;
    size_t at = static_cast<size_t>(it - first);
    if (h.count == h.cap) {
      grow(h);
      first = data(h);
    }
    Entry* pos = first + at;
    std::move_backward(pos, first + h.count, first + h.count + 1);
    ++h.count;
    *pos = Entry{other, kNoVNode, kNoVNode};
    return *pos;
  }

  /// Erase processor v's slot for `other` (must exist). Never reallocates.
  void erase(NodeId v, NodeId other) {
    Head& h = head(v);
    Entry* first = data(h);
    Entry* it = std::lower_bound(first, first + h.count, other, by_other);
    FG_CHECK_MSG(it != first + h.count && it->other == other,
                 "erasing an absent slot");
    std::move(it + 1, first + h.count, it);
    --h.count;
  }

  /// Drop every slot of processor v, returning its spill block to the pool.
  void clear(NodeId v) {
    Head& h = head(v);
    if (h.cap > kInlineCap) free_block(h.spill, h.cap);
    h = Head{};
  }

  int count(NodeId v) const { return head(v).count; }

  /// Processor v's slots, sorted ascending by `other`. Invalidated by any
  /// mutation of v's table (the spill pool may move).
  std::span<const Entry> entries(NodeId v) const {
    const Head& h = head(v);
    return {data(h), static_cast<size_t>(h.count)};
  }

 private:
  static constexpr int32_t kInlineCap = 2;
  static constexpr int32_t kSpillMinCap = 4;

  struct Head {
    int32_t count = 0;
    int32_t cap = kInlineCap;  ///< == kInlineCap means inline storage.
    uint32_t spill = 0;        ///< Pool offset; meaningful iff cap > kInlineCap.
    Entry inl[kInlineCap];
  };

  static bool by_other(const Entry& e, NodeId other) { return e.other < other; }

  const Head& head(NodeId v) const {
    FG_CHECK(v >= 0 && static_cast<size_t>(v) < procs_);
    static const Head kEmptyHead{};
    if (heads_.empty()) return kEmptyHead;
    return heads_[static_cast<size_t>(v)];
  }
  Head& head(NodeId v) {
    FG_CHECK(v >= 0 && static_cast<size_t>(v) < procs_);
    if (heads_.size() != procs_) heads_.resize(procs_);
    return heads_[static_cast<size_t>(v)];
  }

  const Entry* data(const Head& h) const {
    return h.cap == kInlineCap ? h.inl : pool_.data() + h.spill;
  }
  Entry* data(Head& h) {
    return h.cap == kInlineCap ? h.inl : pool_.data() + h.spill;
  }

  static int size_class(int32_t cap) {
    int c = 0;
    for (int32_t s = kSpillMinCap; s < cap; s <<= 1) ++c;
    return c;
  }

  uint32_t alloc_block(int32_t cap) {
    int c = size_class(cap);
    if (static_cast<size_t>(c) < free_lists_.size() && !free_lists_[static_cast<size_t>(c)].empty()) {
      uint32_t off = free_lists_[static_cast<size_t>(c)].back();
      free_lists_[static_cast<size_t>(c)].pop_back();
      return off;
    }
    auto off = static_cast<uint32_t>(pool_.size());
    pool_.resize(pool_.size() + static_cast<size_t>(cap));
    return off;
  }

  void free_block(uint32_t off, int32_t cap) {
    int c = size_class(cap);
    if (free_lists_.size() <= static_cast<size_t>(c))
      free_lists_.resize(static_cast<size_t>(c) + 1);
    free_lists_[static_cast<size_t>(c)].push_back(off);
  }

  void grow(Head& h) {
    int32_t new_cap = h.cap == kInlineCap ? kSpillMinCap : h.cap * 2;
    uint32_t off = alloc_block(new_cap);  // may move pool_: copy via indices
    Entry* src = h.cap == kInlineCap ? h.inl : pool_.data() + h.spill;
    std::copy(src, src + h.count, pool_.data() + off);
    if (h.cap > kInlineCap) free_block(h.spill, h.cap);
    h.cap = new_cap;
    h.spill = off;
  }

  /// Materialized lazily (see resize); procs_ is the logical extent.
  std::vector<Head> heads_;
  size_t procs_ = 0;
  /// The spill pool: every spilled table is a sub-range of this one buffer,
  /// recycled through per-size-class free lists; it never shrinks.
  std::vector<Entry> pool_;
  std::vector<std::vector<uint32_t>> free_lists_;
};

}  // namespace fg::core
