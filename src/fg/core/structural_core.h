// The shared structural core of the Forgiving Graph (Sections 3-4).
//
// Both execution engines — the centralized reference implementation
// (fg::ForgivingGraph) and the distributed protocol
// (fg::dist::DistForgivingGraph) — drive this single mutation path. The
// core owns all structural state and performs every container mutation:
//
//   * G'  — the graph of all insertions, with no deletions applied;
//   * G   — the healed network: the homomorphic image of G' minus deleted
//           processors plus the virtual forest (maintained incrementally
//           through an edge-multiplicity map);
//   * the virtual forest of Reconstruction Trees and the per-processor
//     slot table (Table 1 of the paper).
//
// The centralized engine applies mutations directly; the distributed engine
// installs a RepairObserver to mirror each cross-processor structural change
// into its message-dependency DAG. Because there is exactly one code path,
// the piece sequence — and therefore the deterministic haft::merge_plan and
// the healed topology — cannot drift between the engines (docs/DESIGN.md
// invariant 6).
//
// A deletion (or a batch of deletions) runs as a two-phase PLAN / COMMIT
// pipeline (docs/DESIGN.md, "Plan/commit pipeline"):
//
//   1. plan_deletion (const, read-only): partition the wave into its
//      *connected dirty regions* — victims and the RTs their virtual nodes
//      live in, united whenever two victims share an RT or a G' edge — and
//      produce one immutable RegionPlan per region: the exact break-phase
//      event script (pieces and teardowns, the Strip of Section 4.1.1,
//      walked over the dirty region only, so its cost is O(d log^2 n), not
//      O(RT size)), the anchor leaves to spawn, and the deterministic
//      k-way ComputeHaft merge steps. Planning never mutates the core, so
//      disjoint regions can be planned concurrently (fg::ShardedForest);
//      the resulting RepairPlan is a pure function of (core, victims).
//   2. commit_break / commit_merge: apply the plan in deterministic region
//      order — break every region, spawn its anchor leaves, tombstone the
//      victims, then reassemble each region's pieces into one RT per
//      region. Under CommitAlloc::kReserved (the centralized engine's
//      default), the plan also carries a per-region *arena-id reservation*:
//      every vnode handle the commit will allocate is fixed at plan time by
//      region-order arithmetic alone, so disjoint regions may merge
//      concurrently (merge_region) and any worker count replays
//      byte-identical checkpoints — contract C4, strengthened from
//      "single-threaded commit" to "schedule-independent commit"
//      (docs/CONCURRENCY.md). The distributed engine keeps the on-demand
//      path (CommitAlloc::kOnDemand) and applies each join through
//      join_pieces.
//
// Invariants maintained after every insert_node / committed repair
// (checked by validate(); numbering follows docs/DESIGN.md):
//   I1. Slot consistency: processor u has a slot keyed by w iff (u, w) is a
//       G' edge whose far endpoint w is dead; the slot always holds the real
//       (leaf) node of that edge and at most one helper.
//   I2. Every Reconstruction Tree in the virtual forest is a haft over the
//       real nodes of its dead edge slots (Lemma 1 bounds its depth by
//       ceil(log2 leaves)).
//   I3. Representative: every internal RT node's `rep` is the unique leaf of
//       its subtree whose slot simulates no helper inside that subtree.
//   I4. Each helper is an ancestor of its own slot's leaf (Lemma 3).
//   I5. G is exactly the homomorphic image: G' minus dead processors, plus
//       one edge per virtual tree edge whose endpoints have distinct owners.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "fg/core/slot_table.h"
#include "fg/virtual_forest.h"
#include "graph/graph.h"
#include "haft/haft.h"
#include "util/flat_count_map.h"

namespace fg::snap {
struct BaseImage;
struct WaveDelta;
}  // namespace fg::snap

namespace fg::core {

class StructuralCore;

/// How a batched deletion groups its repair. kPerRegion (the default) heals
/// each connected dirty region into its own RT, which is what lets disjoint
/// regions plan concurrently and repair in parallel rounds; kGlobal merges
/// the whole wave into a single RT (the pre-sharding behaviour, kept for
/// A/B measurement — bench/repair_path.cpp).
enum class RegionSplit { kPerRegion, kGlobal };

/// How a commit allocates the repair's new virtual nodes. kReserved draws
/// every handle from the plan's arena-id reservation (fixed at plan time;
/// required for concurrent region merges and what the centralized engine
/// always uses); kOnDemand appends to the arena as joins happen — the
/// distributed engine's path, whose DAG replay interleaves joins across
/// regions and never commits concurrently.
enum class CommitAlloc { kReserved, kOnDemand };

/// Structural statistics of the most recent committed repair (one deletion
/// or one batch). Reset by commit_break; commit_merge / join_pieces /
/// finish_repair update the merge-side counters. Counters sum over the
/// wave's regions.
struct RepairStats {
  int regions = 0;          ///< Connected dirty regions healed (RTs built).
  int affected_rts = 0;     ///< RTs broken by the deletion(s).
  int pieces = 0;           ///< Perfect trees to merge (incl. new leaves).
  int new_leaves = 0;       ///< Fresh real nodes (alive direct neighbors).
  int helpers_created = 0;  ///< Helper nodes instantiated by the merge.
  int helpers_removed = 0;  ///< "Red" helpers discarded by stripping.
  int64_t final_rt_leaves = 0;  ///< Total leaves of the resulting RTs.
  int deleted_degree_gprime = 0;  ///< Total G' degree of the victims.
};

/// The immutable repair recipe for one connected dirty region. Produced by
/// the read-only planner, applied by the commit phase; a pure function of
/// (core state, victim wave), so concurrent planning cannot change it (the
/// Healer contract C4 determinism argument).
struct RegionPlan {
  /// One step of the break-phase script, in the deterministic left-to-right
  /// walk order of the dirty region. A piece event detaches the maximal
  /// clean perfect subtree rooted at `h`; a teardown removes the dead or
  /// red node `h` (children already processed).
  struct Event {
    bool is_piece = false;
    VNodeId h = kNoVNode;
  };
  /// A fresh real node to spawn on alive processor `owner` for its lost G'
  /// edge to the dead processor `dead`.
  struct FreshLeaf {
    NodeId owner = kInvalidNode;
    NodeId dead = kInvalidNode;
  };

  int id = 0;                      ///< Commit order (regions heal in id order).
  /// First arena handle of this region's reservation: the commit allocates
  /// exactly fresh.size() anchor leaves at [arena_base, arena_base +
  /// fresh.size()) and steps.size() helpers right after them, in step
  /// order. Computed from region order alone (finalize_plan), so the arena
  /// layout is identical at every commit worker count. -1 until finalized.
  int arena_base = -1;
  std::vector<NodeId> victims;     ///< Region's victims, in wave order.
  std::vector<VNodeId> roots;      ///< Affected RT roots, ascending.
  std::vector<Event> events;       ///< Break-phase script.
  std::vector<FreshLeaf> fresh;    ///< Anchor leaves, in (victim, neighbor) order.
  /// Merge-plan input, aligned with the region's piece order: the detached
  /// pieces in event order, then the fresh leaves.
  std::vector<haft::PieceInfo> pieces;
  /// Deterministic k-way ComputeHaft steps over `pieces` (piece numbering
  /// as in haft::merge_plan).
  std::vector<haft::MergeStep> steps;
  /// G' edges between two victims of this region, (smaller, larger), in
  /// victim wave order: the break drops their image multiplicity with no
  /// surviving endpoint to spawn an anchor for. Precomputed at plan time so
  /// the break never needs the wave-wide victim set — one region's break
  /// reads nothing but its own plan (the parallel-break locality argument,
  /// docs/CONCURRENCY.md).
  std::vector<std::pair<NodeId, NodeId>> victim_edges;
  int red_teardowns = 0;           ///< Red (helper) nodes the break removes.
  double collect_ms = 0.0;         ///< Planner timings (informational only;
  double merge_ms = 0.0;           ///< never part of the plan's identity).
};

/// The full plan for one deletion wave: the per-region recipes in
/// deterministic commit order, plus wave-level bookkeeping.
struct RepairPlan {
  std::vector<NodeId> victims;     ///< The wave, in the order given.
  std::vector<int> victim_region;  ///< Region id per victim, aligned above.
  std::vector<RegionPlan> regions;
  RegionSplit split = RegionSplit::kPerRegion;
  /// The wave's arena-id reservation: a kReserved commit reserves
  /// arena_total handles starting at arena_start (== the arena size the
  /// plan was computed against) and every region draws from its own
  /// [arena_base, arena_base + fresh + steps) sub-range. See
  /// docs/CONCURRENCY.md.
  int arena_start = -1;
  int arena_total = 0;
  /// The core's mutation epoch the plan was computed against; commit_break
  /// FG_CHECKs it, so *any* intervening mutation — even one that leaves
  /// the arena size unchanged, like a teardown-only repair — makes the
  /// plan refuse to commit instead of replaying a stale script.
  uint64_t epoch = 0;
  /// Recovery plans (fg::Stabilizer) rebuild structure for processors that
  /// are *already dead*: begin_break inverts the per-victim liveness check,
  /// the break spawns anchors without dropping (long-gone) image edges, and
  /// finish_break skips the re-kill. Everything else — regions, arena
  /// reservation, merge steps, contract C4 — is the ordinary pipeline.
  bool recovery = false;
  /// Planner phase timings (milliseconds), for bench/repair_path.cpp:
  /// region partitioning, dirty-region piece collection, merge-step
  /// computation. Informational only — never part of the plan's identity.
  struct Profile {
    double partition_ms = 0.0;
    double collect_ms = 0.0;
    double merge_ms = 0.0;
  } profile;
};

/// The region partition and shared lookup sets a plan is built from.
/// Produced once per wave by analyze_deletion; plan_region then fills each
/// RegionPlan independently (and, if the caller wishes, concurrently — it
/// only ever reads the core and this analysis).
/// Membership is flat, not hashed (PR 5's shedding argument; the `is_*`
/// helpers below are the only lookup API): the small victim set is a
/// sorted vector probed by binary search. The vnode sets — probed once
/// per visited node on the collect walk's hot path — switch
/// representation by density: when the wave's dirty set is a meaningful
/// fraction of the arena, one O(arena) zeroed mark array buys O(1)
/// probes; for a tiny wave in an old arena (where the memset would dwarf
/// the handful of probes it serves) the sorted vectors are binary-searched
/// instead.
struct DeletionAnalysis {
  std::vector<NodeId> victims;              ///< Wave order.
  std::vector<NodeId> victim_sorted;        ///< Victims, ascending.
  std::vector<VNodeId> dead_vnodes;         ///< Victims' leaves and helpers, ascending.
  std::vector<VNodeId> dirty;               ///< Dead vnodes + ancestors, ascending.
  /// Dense marks over [0, arena), or empty when the wave is too sparse to
  /// amortize the zeroing: kClean, kDirtyMark (a dead vnode's strict
  /// ancestor — a red helper), or kDeadMark. dirty ⊇ dead, so one byte
  /// answers both membership probes.
  enum : uint8_t { kClean = 0, kDirtyMark = 1, kDeadMark = 2 };
  std::vector<uint8_t> vnode_marks;
  /// Seed index per victim, aligned with `victims` (finalize_plan derives
  /// RepairPlan::victim_region from it without any lookup table).
  std::vector<int> victim_seed;
  RegionSplit split = RegionSplit::kPerRegion;
  int deleted_degree_gprime = 0;
  /// Per region: victims in wave order, affected roots ascending. Regions
  /// are ordered by their smallest victim id — the deterministic commit
  /// order (docs/DESIGN.md, "shard ordering rule").
  struct Seed {
    std::vector<NodeId> victims;
    std::vector<VNodeId> roots;
  };
  std::vector<Seed> seeds;

  bool is_victim(NodeId v) const {
    return std::binary_search(victim_sorted.begin(), victim_sorted.end(), v);
  }
  bool is_dead_vnode(VNodeId h) const {
    if (!vnode_marks.empty()) return vnode_marks[static_cast<size_t>(h)] == kDeadMark;
    return std::binary_search(dead_vnodes.begin(), dead_vnodes.end(), h);
  }
  bool is_dirty(VNodeId h) const {
    if (!vnode_marks.empty()) return vnode_marks[static_cast<size_t>(h)] != kClean;
    return std::binary_search(dirty.begin(), dirty.end(), h);
  }
};

/// Hooks a protocol layer installs to mirror structural mutations. The
/// distributed engine translates each callback into messages of its repair
/// DAG; the centralized engine passes no observer. Callbacks fire *before*
/// the corresponding mutation, in the deterministic left-to-right order of
/// the repair walk, so the message sequence is itself deterministic.
class RepairObserver {
 public:
  virtual ~RepairObserver() = default;

  /// The commit is about to apply region `region_id` (ids are the plan's
  /// commit order); all following callbacks up to the next on_region_begin
  /// belong to that region's independent repair.
  virtual void on_region_begin(int region_id) { (void)region_id; }

  /// A maximal clean perfect subtree rooted at `root` (owned by `owner`) is
  /// about to detach and become the next piece (pieces are reported in
  /// their final order). `parent_owner` is the owner of its RT parent, or
  /// kInvalidNode for roots and for fresh anchor leaves.
  virtual void on_piece(VNodeId root, NodeId owner, NodeId parent_owner) {
    (void)root, (void)owner, (void)parent_owner;
  }

  /// A dead or red virtual node owned by `owner` is about to be torn down.
  /// `parent_owner` is the owner of its current RT parent (kInvalidNode at
  /// roots); children have already been processed.
  virtual void on_teardown(VNodeId h, NodeId owner, NodeId parent_owner) {
    (void)h, (void)owner, (void)parent_owner;
  }
};

/// Hooks the snapshot layer installs to capture, per committed wave, the
/// exact set of structural changes (docs/SNAPSHOTS.md). Unlike
/// RepairObserver — which mirrors the repair walk event by event — the
/// delta recorder only *accumulates touched keys*; the final values are
/// read from the core when fg::ShardedForest fires on_wave_committed after
/// the commit settles. Every callback runs on the single-threaded parts of
/// the pipeline (insert_node, the region-id-ordered effect stitches), so a
/// recorder needs no synchronization, and the accumulated sets are a pure
/// function of the op stream — snapshot bytes join contract C4.
class DeltaRecorder {
 public:
  virtual ~DeltaRecorder() = default;

  /// insert_node applied: processor `id` attached to `neighbors`. The
  /// image-edge touches of the insertion arrive through on_image_touch.
  virtual void on_insert(NodeId id, std::span<const NodeId> neighbors) {
    (void)id, (void)neighbors;
  }

  /// The image multiplicity of edge (u, v) is about to change (u != v).
  /// Fired by every multiplicity funnel — add/remove_image_edge and the
  /// batched break/merge stitches — so the accumulated key set covers
  /// every healed-image edge the wave (or an insertion) touched.
  virtual void on_image_touch(NodeId u, NodeId v) { (void)u, (void)v; }

  /// A wave's commit fully settled (fired by fg::ShardedForest::execute,
  /// after the merge stitch): read the touched rows'/slots'/multiplicities'
  /// final values and emit the wave's delta record. `plan` names the
  /// victims, the break-script handles, and the arena reservation — the
  /// complete touched-row set of the wave.
  virtual void on_wave_committed(const StructuralCore& core, const RepairPlan& plan) {
    (void)core, (void)plan;
  }
};

/// The single structural mutation path both engines execute.
class StructuralCore {
 public:
  /// Start from a connected network G0; ids 0..n-1 become live processors.
  explicit StructuralCore(const Graph& g0);
  StructuralCore() = default;  // empty core, populated by load()

  /// Adversarial insertion: a new processor attached to `neighbors` (all
  /// alive, no duplicates). Returns the new processor id.
  NodeId insert_node(std::span<const NodeId> neighbors);

  // --- Plan phase (read-only; safe to run concurrently per region). ------

  /// Partition a wave of victims (alive, distinct) into its connected
  /// dirty regions and build the shared lookup sets. With kGlobal the
  /// whole wave becomes one region.
  DeletionAnalysis analyze_deletion(std::span<const NodeId> victims,
                                    RegionSplit split = RegionSplit::kPerRegion) const;

  /// Fill `out` with the complete immutable recipe for region
  /// `analysis.seeds[region]`. Pure read-only: callable from worker
  /// threads on disjoint regions of the same analysis.
  void plan_region(const DeletionAnalysis& analysis, int region, RegionPlan* out) const;

  /// analyze_deletion + plan_region over every region, sequentially. The
  /// returned plan is bit-identical to what any concurrent planner
  /// produces (fg::ShardedForest fans the plan_region calls out).
  RepairPlan plan_deletion(std::span<const NodeId> victims,
                           RegionSplit split = RegionSplit::kPerRegion) const;

  /// Fill the wave-level fields of a plan whose regions are already
  /// populated (victims, victim_region, profile sums), stamp this core's
  /// arena size and mutation epoch (what commit_break validates against),
  /// and assign the arena-id reservation: each region's arena_base
  /// follows by prefix sums over (fresh + steps) counts in region id
  /// order — a pure function of the plan, never of scheduling. Shared by
  /// plan_deletion and concurrent planners (fg::ShardedForest).
  void finalize_plan(const DeletionAnalysis& analysis, RepairPlan* plan) const;

  // --- Commit phase (deterministic region order; see docs/CONCURRENCY.md).

  /// Apply the break phase of the whole plan: per region in id order,
  /// replay the event script (detach pieces, tear down dead and red
  /// vnodes) and spawn the anchor leaves; then tombstone the victims.
  /// Returns the materialized piece handles per region, aligned with
  /// RegionPlan::pieces. Resets last_repair(). The plan must have been
  /// produced by this core with no intervening mutation — FG_CHECKed
  /// against the plan's mutation epoch, so a stale plan refuses to
  /// commit. kReserved spawns each anchor leaf at its reserved handle;
  /// kOnDemand (the dist engine) appends as before.
  ///
  /// Equivalent to begin_break + break_region per region (immediate mode)
  /// + finish_break — the sequential composition of the phase-parallel
  /// primitives below, which fg::ShardedForest fans out instead.
  std::vector<std::vector<VNodeId>> commit_break(const RepairPlan& plan,
                                                 RepairObserver* observer = nullptr,
                                                 CommitAlloc alloc = CommitAlloc::kReserved);

  /// The side effects of one region's break that touch state shared across
  /// regions, recorded by break_region and applied by apply_break_effects
  /// in region id order (the mirror of MergeEffects on the merge side).
  struct BreakEffects {
    /// One deferred slot-table write, in break-script order.
    struct SlotOp {
      NodeId owner = kInvalidNode;  ///< Slot's owning processor.
      NodeId other = kInvalidNode;  ///< Slot key (far endpoint).
      VNodeId h = kNoVNode;         ///< The vnode written into / out of it.
      bool is_leaf = false;         ///< Which field of the slot.
      bool attach = false;          ///< true: install h; false: clear h.
    };
    /// Image-multiplicity decrements in break order: each event teardown's
    /// (owner, parent owner) pair, then each fresh leaf's (dead, owner)
    /// G' edge, then the region's victim-victim edges.
    std::vector<std::pair<NodeId, NodeId>> edge_drops;
    std::vector<SlotOp> slot_ops;
    int teardowns = 0;   ///< Forest removals to credit (dead + red nodes).
    int new_leaves = 0;  ///< Anchor leaves spawned.
    int affected_rts = 0;

    void reset() {
      edge_drops.clear();
      slot_ops.clear();
      teardowns = 0;
      new_leaves = 0;
      affected_rts = 0;
    }
  };

  /// Validate and open the break: epoch + arena staleness checks, the one
  /// arena growth (reserve_range, kReserved only), stats reset, per-victim
  /// alive checks. Must precede any break_region call of the same plan.
  void begin_break(const RepairPlan& plan, CommitAlloc alloc = CommitAlloc::kReserved);

  /// Replay one region's break script. With `effects` non-null (requires a
  /// begin_break'd reserved plan, no observer), mutates only region-local
  /// state — unlinks and tombstones the region's own vnodes
  /// (remove_uncounted) and constructs its anchor leaves at their reserved
  /// handles — while every shared-state write (image multiplicities and
  /// edges, slot-table entries, counters, forest live count) is recorded
  /// into `effects` instead of applied, so disjoint regions may run this
  /// concurrently (fg::ShardedForest's commit pool does). With `effects`
  /// null the side effects apply immediately — the sequential path, which
  /// also takes an observer and either CommitAlloc. Returns the region's
  /// materialized pieces, aligned with RegionPlan::pieces.
  std::vector<VNodeId> break_region(const RegionPlan& region, BreakEffects* effects,
                                    RepairObserver* observer = nullptr,
                                    CommitAlloc alloc = CommitAlloc::kReserved);

  /// Fold one region's recorded break effects into the shared state:
  /// multiplicity decrements (1 -> 0 transitions flip image edges in one
  /// batched Graph::apply_edge_deltas pass), slot writes in script order,
  /// counters, live-count credit. Single-threaded, called in region id
  /// order — the deterministic stitch.
  void apply_break_effects(const RegionPlan& region, const BreakEffects& effects);

  /// Close the break: tombstone the victims (their slot tables are wiped
  /// wholesale; every image edge must already be gone — FG_CHECKed).
  void finish_break(const RepairPlan& plan);

  /// The side effects of one region's merge that touch state shared across
  /// regions, recorded by merge_region and applied by apply_merge_effects
  /// in region id order. Buffers are reused wave to wave (the join_pieces
  /// slot-map/scratch pooling — ROADMAP item).
  struct MergeEffects {
    VNodeId root = kNoVNode;  ///< The region's final RT root (kNoVNode: no pieces).
    /// Image edges each join adds, in join order: (helper owner, left child
    /// owner), then (helper owner, right child owner).
    std::vector<std::pair<NodeId, NodeId>> image_edges;
    int helpers_created = 0;

    void reset() {
      root = kNoVNode;
      image_edges.clear();
      helpers_created = 0;
    }
  };

  /// Replay one region's planned merge steps over its materialized pieces
  /// (from a kReserved commit_break), constructing every helper at its
  /// reserved arena handle. With `effects` non-null, mutates only
  /// region-local state — the region's subtree nodes and its own slot
  /// entries — and records the shared-state side effects (image edges,
  /// counters) into `effects` instead of applying them, so disjoint
  /// regions of one reserved plan may run this concurrently
  /// (fg::ShardedForest's commit pool does). With `effects` null (the
  /// single-threaded path) the side effects apply immediately, skipping
  /// the record/replay pass. Either mode produces the identical structure.
  /// `pieces` is consumed as scratch and must come from commit_break.
  /// Returns the region's final RT root (kNoVNode for no pieces).
  VNodeId merge_region(const RegionPlan& region, std::vector<VNodeId>&& pieces,
                       MergeEffects* effects);

  /// Fold one region's recorded merge effects into the shared state:
  /// image edges in join order, repair counters, final-RT bookkeeping.
  /// Single-threaded, called in region id order — the deterministic
  /// stitch. Returns the region's final RT root.
  VNodeId apply_merge_effects(const MergeEffects& effects);

  /// The sequential merge of one region of a kReserved plan
  /// (merge_region with immediate side effects). Returns the region's
  /// final RT root (kNoVNode for a region with no pieces).
  VNodeId commit_merge(const RegionPlan& region, std::vector<VNodeId> pieces);

  /// FG_CHECK that every handle of the plan's arena reservation was
  /// constructed — an undersized plan or a skipped region fails loudly
  /// instead of leaving silent holes in the arena. Call after the last
  /// region's merge of a kReserved commit.
  void check_reservation_settled(const RepairPlan& plan) const;

  /// One structural join of two piece roots (Algorithm A.9): the left
  /// tree's representative simulates the new helper; the merged root
  /// inherits the right tree's representative. Returns the new root.
  /// On-demand allocation — the distributed merge modes' path; the
  /// centralized reserved commit goes through merge_region instead.
  VNodeId join_pieces(VNodeId left, VNodeId right);

  /// Plan input for a piece root: leaf count plus the deterministic
  /// representative slot key (the paper's NodeID tie-break).
  haft::PieceInfo piece_info(VNodeId root) const;

  /// Record a region's final RT in the stats (no-op structurally);
  /// counters accumulate across the wave's regions.
  void finish_repair(VNodeId final_root);

  const Graph& image() const { return g_; }
  const Graph& gprime() const { return gprime_; }

  // --- Audit surface (fg::Stabilizer; read-only). ------------------------

  /// The per-processor slot tables, read-only — the auditor cross-checks
  /// every slot entry against the forest rows and vice versa.
  const SlotTable& slot_table() const { return slots_; }

  /// The healed image's edge-multiplicity map, read-only — the auditor
  /// recomputes expected multiplicities and compares.
  const util::FlatCountMap& image_multiplicity() const { return image_multiplicity_; }

  // --- Recovery surface (fg::Stabilizer). --------------------------------

  /// Quarantine for self-stabilizing recovery: keep exactly the forest rows
  /// with keep[h] != 0 (each must be alive, and kept rows' links must stay
  /// within the kept set — FG_CHECKed), tombstone and unlink everything
  /// else, then rebuild all derived state from ground truth: the slot table
  /// from the kept rows, and the healed image (edges + multiplicities) from
  /// alive-alive G' edges plus kept parent links. Bumps the mutation epoch;
  /// the caller then plans and commits a recovery wave (RepairPlan::recovery)
  /// to re-anchor every dead edge the quarantine left uncovered.
  void rebuild_for_recovery(const std::vector<uint8_t>& keep);

  // --- Fault-injection seams (tests/fuzz/corruptor; never the engines). ---
  //
  // Each seam overwrites one piece of state the invariants I1-I5 protect,
  // bypassing every FG_CHECK the normal mutation path would trip, and bumps
  // the mutation epoch (corrupted state must stale any outstanding plan).

  /// Overwrite forest row `h` wholesale (links, flags, aggregates, rep).
  void inject_vnode_row(VNodeId h, const VirtualForest::VNode& row);

  /// Create or overwrite the slot entry (owner, other) with the given
  /// leaf/helper handles (kNoVNode clears a field).
  void inject_slot(NodeId owner, NodeId other, VNodeId leaf, VNodeId helper);

  /// Erase the slot entry (owner, other) if present.
  void inject_erase_slot(NodeId owner, NodeId other);

  /// Toggle the healed-image edge (u, v) in G without touching the
  /// multiplicity map (both endpoints must be alive).
  void inject_image_edge_flip(NodeId u, NodeId v);

  /// Bump the image multiplicity of (u, v) by one, desyncing it from G.
  void inject_multiplicity_bump(NodeId u, NodeId v);

  /// Monotone counter bumped by every structural mutation (insert_node,
  /// commit_break). Plans are stamped with it and refuse to commit if it
  /// moved — the staleness guard behind the arena-id reservation.
  uint64_t mutation_epoch() const { return epoch_; }
  const VirtualForest& forest() const { return forest_; }
  bool is_alive(NodeId v) const { return g_.is_alive(v); }
  const RepairStats& last_repair() const { return last_repair_; }

  /// Number of helper nodes currently simulated by processor v.
  int helper_count(NodeId v) const;

  /// Roots of the RTs holding v's slot vnodes — the RTs a deletion of v
  /// would break. Sorted ascending, unique. (Adversaries and the region
  /// tests use this to reason about wave disjointness.)
  std::vector<VNodeId> slot_roots(NodeId v) const;

  /// Checkpoint the complete structure (G', liveness, virtual forest) to a
  /// line-oriented text stream; `load` restores an equivalent core. The
  /// slot table and healed image are derived state, rebuilt on load.
  void save(std::ostream& os) const;

  /// Restore a core from a text checkpoint, or abort on malformed input
  /// (FG_CHECK) — the trusted-input path. Untrusted streams go through
  /// try_load below.
  static StructuralCore load(std::istream& is);

  /// Restore a core from a text checkpoint, returning false with a typed
  /// parse error instead of aborting: truncated streams, garbage tokens,
  /// out-of-range ids, and inconsistent derived state are all reported
  /// through *error (never FG_CHECKed). On failure *out is unspecified.
  static bool try_load(std::istream& is, StructuralCore* out, std::string* error);

  // --- Binary snapshots (src/snap; docs/SNAPSHOTS.md). --------------------

  /// Fill a binary base image with the complete structure, derived state
  /// included (slot tables, image multiplicities), every list in canonical
  /// sorted order — the bytes snap::encode_base produces from it are a
  /// pure function of the structure (contract C4). Leaves the image's
  /// wave/cursor header fields untouched; epoch is stamped from this core.
  void to_base_image(snap::BaseImage* out) const;

  /// Restore a core from a base image. Same error contract as try_load:
  /// malformed images (out-of-range handles, duplicate edges, derived
  /// state inconsistent with the forest) return false + *error, never
  /// abort. The restored core's mutation epoch is the image's.
  static bool from_base_image(const snap::BaseImage& image, StructuralCore* out,
                              std::string* error);

  /// Replay one wave delta (final-value semantics) on top of this core:
  /// insertions in stream order, the touched forest rows / slots /
  /// multiplicities overwritten with their recorded final values, victims
  /// tombstoned, epoch advanced to the delta's. O(changes), not O(n).
  /// Same typed-error contract as from_base_image; on failure the core is
  /// partially mutated and must be discarded.
  bool apply_wave_delta(const snap::WaveDelta& delta, std::string* error);

  /// Install the snapshot layer's per-wave change recorder (nullptr
  /// disables). The core fires the insertion/image-touch callbacks; the
  /// wave-committed callback is fired by fg::ShardedForest::execute once a
  /// commit fully settles. Recording is only meaningful on the reserved
  /// sharded pipeline — the path both engines' batch deletes and the
  /// healer service drive.
  void set_delta_recorder(DeltaRecorder* recorder) { recorder_ = recorder; }
  DeltaRecorder* delta_recorder() const { return recorder_; }

  /// Full invariant check I1-I5 (expensive; used by tests).
  void validate() const;

 private:
  struct Proc {
    bool alive = true;
  };

  static uint64_t edge_key(NodeId u, NodeId v);
  void add_image_edge(NodeId u, NodeId v);
  void remove_image_edge(NodeId u, NodeId v);

  /// Tell the delta recorder (if any) that edge (u, v)'s multiplicity is
  /// about to change. Called from every multiplicity funnel, all of which
  /// are single-threaded (sequential commit, or the region-id-ordered
  /// stitches) — never from the concurrent recorded break/merge phases,
  /// which only buffer.
  void note_image_touch(NodeId u, NodeId v) {
    if (recorder_ != nullptr) recorder_->on_image_touch(u, v);
  }

  /// Drop the virtual edge between h and its parent from the image and
  /// detach h (no-op on roots).
  void detach_vnode(VNodeId h);

  /// Tombstone h (children must be gone), freeing its slot registration and
  /// its parent edge.
  void remove_vnode(VNodeId h);

  /// The read-only twin of the commit walk: append the break-phase event
  /// script of the RT rooted at `root` to `out`. Iterative worklist over
  /// the dirty region only; `dirty` holds the dead vnodes and all their
  /// ancestors, so a node is clean (subtree free of dead vnodes) iff it is
  /// not in `dirty`. The commit replays the recorded events with exactly
  /// the mutations the old single-pass walk performed, in the same order.
  void collect_events(VNodeId root, const DeletionAnalysis& analysis,
                      RegionPlan* out) const;

  Graph gprime_;
  Graph g_;
  VirtualForest forest_;
  std::vector<Proc> procs_;
  /// Per-processor slot tables (Table 1): pooled sorted flat arrays keyed
  /// by the far endpoint — see slot_table.h for the storage model and the
  /// concurrency contract the parallel commit relies on.
  SlotTable slots_;
  /// Multiplicity of every healed-image edge (flat open addressing — an
  /// edge flip probes a contiguous cell array, no hash-node allocation).
  util::FlatCountMap image_multiplicity_;
  /// Reusable buffer for the batched image-edge stitch (apply_merge_effects
  /// collects a region's 0 -> 1 transitions here, then hands the whole span
  /// to Graph::apply_edge_deltas). Pooled wave to wave.
  std::vector<EdgeDelta> delta_scratch_;
  RepairStats last_repair_;
  uint64_t epoch_ = 0;  ///< See mutation_epoch().
  DeltaRecorder* recorder_ = nullptr;  ///< See set_delta_recorder().
};

}  // namespace fg::core
