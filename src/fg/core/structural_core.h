// The shared structural core of the Forgiving Graph (Sections 3-4).
//
// Both execution engines — the centralized reference implementation
// (fg::ForgivingGraph) and the distributed protocol
// (fg::dist::DistForgivingGraph) — drive this single mutation path. The
// core owns all structural state and performs every container mutation:
//
//   * G'  — the graph of all insertions, with no deletions applied;
//   * G   — the healed network: the homomorphic image of G' minus deleted
//           processors plus the virtual forest (maintained incrementally
//           through an edge-multiplicity map);
//   * the virtual forest of Reconstruction Trees and the per-processor
//     slot table (Table 1 of the paper).
//
// The centralized engine applies mutations directly; the distributed engine
// installs a RepairObserver to mirror each cross-processor structural change
// into its message-dependency DAG. Because there is exactly one code path,
// the piece sequence — and therefore the deterministic haft::merge_plan and
// the healed topology — cannot drift between the engines (docs/DESIGN.md
// invariant 6).
//
// A deletion (or a batch of deletions — see begin_deletion) decomposes into
// the paper's phases:
//
//   1. begin_deletion: locate the victims' virtual nodes, break every
//      affected RT into its maximal clean perfect subtrees ("pieces", the
//      Strip of Section 4.1.1), spawn one fresh real node per surviving
//      direct neighbor, and tombstone the victims. Piece collection walks an
//      explicit iterative worklist over the *dirty* region (ancestors of the
//      victims' virtual nodes) only, so its cost is O(d log^2 n), not
//      O(RT size), and no call stack depth depends on the input.
//   2. merge: reassemble the pieces into one RT. The centralized engine
//      calls merge_pieces (the full deterministic ComputeHaft plan); the
//      distributed engine computes its mode's plan itself and applies each
//      join through join_pieces.
//
// Invariants maintained after every insert_node/begin_deletion+merge
// (checked by validate(); numbering follows docs/DESIGN.md):
//   I1. Slot consistency: processor u has a slot keyed by w iff (u, w) is a
//       G' edge whose far endpoint w is dead; the slot always holds the real
//       (leaf) node of that edge and at most one helper.
//   I2. Every Reconstruction Tree in the virtual forest is a haft over the
//       real nodes of its dead edge slots (Lemma 1 bounds its depth by
//       ceil(log2 leaves)).
//   I3. Representative: every internal RT node's `rep` is the unique leaf of
//       its subtree whose slot simulates no helper inside that subtree.
//   I4. Each helper is an ancestor of its own slot's leaf (Lemma 3).
//   I5. G is exactly the homomorphic image: G' minus dead processors, plus
//       one edge per virtual tree edge whose endpoints have distinct owners.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fg/virtual_forest.h"
#include "graph/graph.h"
#include "haft/haft.h"

namespace fg::core {

/// Structural statistics of the most recent repair (one deletion or one
/// batch). Reset by begin_deletion; merge_pieces / join_pieces update the
/// merge-side counters.
struct RepairStats {
  int affected_rts = 0;     ///< RTs broken by the deletion(s).
  int pieces = 0;           ///< Perfect trees to merge (incl. new leaves).
  int new_leaves = 0;       ///< Fresh real nodes (alive direct neighbors).
  int helpers_created = 0;  ///< Helper nodes instantiated by the merge.
  int helpers_removed = 0;  ///< "Red" helpers discarded by stripping.
  int64_t final_rt_leaves = 0;  ///< Leaves of the resulting RT (0 if none).
  int deleted_degree_gprime = 0;  ///< Total G' degree of the victims.
};

/// Hooks a protocol layer installs to mirror structural mutations. The
/// distributed engine translates each callback into messages of its repair
/// DAG; the centralized engine passes no observer. Callbacks fire *before*
/// the corresponding mutation, in the deterministic left-to-right order of
/// the repair walk, so the message sequence is itself deterministic.
class RepairObserver {
 public:
  virtual ~RepairObserver() = default;

  /// A maximal clean perfect subtree rooted at `root` (owned by `owner`) is
  /// about to detach and become the next piece (pieces are reported in
  /// their final order). `parent_owner` is the owner of its RT parent, or
  /// kInvalidNode for roots and for fresh anchor leaves.
  virtual void on_piece(VNodeId root, NodeId owner, NodeId parent_owner) {
    (void)root, (void)owner, (void)parent_owner;
  }

  /// A dead or red virtual node owned by `owner` is about to be torn down.
  /// `parent_owner` is the owner of its current RT parent (kInvalidNode at
  /// roots); children have already been processed.
  virtual void on_teardown(VNodeId h, NodeId owner, NodeId parent_owner) {
    (void)h, (void)owner, (void)parent_owner;
  }
};

/// The single structural mutation path both engines execute.
class StructuralCore {
 public:
  /// Start from a connected network G0; ids 0..n-1 become live processors.
  explicit StructuralCore(const Graph& g0);
  StructuralCore() = default;  // empty core, populated by load()

  /// Adversarial insertion: a new processor attached to `neighbors` (all
  /// alive, no duplicates). Returns the new processor id.
  NodeId insert_node(std::span<const NodeId> neighbors);

  /// Phases 1-5 of a repair for a *batch* of simultaneous deletions (a
  /// single victim is the span of one). Victims must be alive and distinct.
  /// Breaks every affected RT, spawns anchor leaves on the victims'
  /// surviving direct neighbors (edges between two victims spawn none —
  /// both endpoints die), tombstones the victims, and returns the pieces in
  /// deterministic order. The caller must reassemble them into one RT via
  /// merge_pieces or a sequence of join_pieces calls.
  std::vector<VNodeId> begin_deletion(std::span<const NodeId> victims,
                                      RepairObserver* observer = nullptr);

  /// Execute the global ComputeHaft plan over `pieces`, creating helpers
  /// through the representative mechanism; returns the final root (or the
  /// single piece). `pieces` must be non-empty.
  VNodeId merge_pieces(std::vector<VNodeId> pieces);

  /// One structural join of two piece roots (Algorithm A.9): the left
  /// tree's representative simulates the new helper; the merged root
  /// inherits the right tree's representative. Returns the new root.
  VNodeId join_pieces(VNodeId left, VNodeId right);

  /// Plan input for a piece root: leaf count plus the deterministic
  /// representative slot key (the paper's NodeID tie-break).
  haft::PieceInfo piece_info(VNodeId root) const;

  /// Record the final RT of a repair in the stats (no-op structurally).
  void finish_repair(VNodeId final_root);

  const Graph& image() const { return g_; }
  const Graph& gprime() const { return gprime_; }
  const VirtualForest& forest() const { return forest_; }
  bool is_alive(NodeId v) const { return g_.is_alive(v); }
  const RepairStats& last_repair() const { return last_repair_; }

  /// Number of helper nodes currently simulated by processor v.
  int helper_count(NodeId v) const;

  /// Checkpoint the complete structure (G', liveness, virtual forest) to a
  /// line-oriented text stream; `load` restores an equivalent core. The
  /// slot table and healed image are derived state, rebuilt on load.
  void save(std::ostream& os) const;
  static StructuralCore load(std::istream& is);

  /// Full invariant check I1-I5 (expensive; used by tests).
  void validate() const;

 private:
  struct Slot {
    VNodeId leaf = kNoVNode;
    VNodeId helper = kNoVNode;
  };
  struct Proc {
    bool alive = true;
    std::unordered_map<NodeId, Slot> slots;  // keyed by the other endpoint
  };

  static uint64_t edge_key(NodeId u, NodeId v);
  void add_image_edge(NodeId u, NodeId v);
  void remove_image_edge(NodeId u, NodeId v);

  /// Drop the virtual edge between h and its parent from the image and
  /// detach h (no-op on roots).
  void detach_vnode(VNodeId h);

  /// Tombstone h (children must be gone), freeing its slot registration and
  /// its parent edge.
  void remove_vnode(VNodeId h);

  /// Break the RT rooted at `root`: remove the dead virtual nodes and all
  /// "red" survivors, appending the maximal clean perfect subtrees
  /// ("pieces") to `out`. Iterative worklist over the dirty region only;
  /// `dirty` holds the dead vnodes and all their ancestors, so a node is
  /// clean (subtree free of dead vnodes) iff it is not in `dirty`.
  void collect_pieces(VNodeId root,
                      const std::unordered_set<VNodeId>& is_dead_vnode,
                      const std::unordered_set<VNodeId>& dirty,
                      RepairObserver* observer, std::vector<VNodeId>* out);

  Graph gprime_;
  Graph g_;
  VirtualForest forest_;
  std::vector<Proc> procs_;
  std::unordered_map<uint64_t, int> image_multiplicity_;
  RepairStats last_repair_;
};

}  // namespace fg::core
