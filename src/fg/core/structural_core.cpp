#include "fg/core/structural_core.h"

#include <algorithm>
#include <chrono>
#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>
#include <tuple>

#include "snap/snapshot.h"
#include "util/check.h"

namespace fg::core {

StructuralCore::StructuralCore(const Graph& g0) : gprime_(g0), g_(g0) {
  procs_.resize(static_cast<size_t>(g0.node_capacity()));
  slots_.resize(static_cast<size_t>(g0.node_capacity()));
  image_multiplicity_.reserve(static_cast<size_t>(g0.edge_count()));
  for (NodeId v = 0; v < g0.node_capacity(); ++v) {
    FG_CHECK_MSG(g0.is_alive(v), "initial graph must have no tombstones");
    for (NodeId w : g0.neighbors(v))
      if (v < w) image_multiplicity_.increment(edge_key(v, w));
  }
}

uint64_t StructuralCore::edge_key(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return slot_key(u, v);
}

void StructuralCore::add_image_edge(NodeId u, NodeId v) {
  if (u == v) return;  // homomorphism collapses same-processor virtual edges
  note_image_touch(u, v);
  if (image_multiplicity_.increment(edge_key(u, v)) == 1) g_.add_edge(u, v);
}

void StructuralCore::remove_image_edge(NodeId u, NodeId v) {
  if (u == v) return;
  note_image_touch(u, v);
  if (image_multiplicity_.decrement(edge_key(u, v)) == 0) g_.remove_edge(u, v);
}

NodeId StructuralCore::insert_node(std::span<const NodeId> neighbors) {
  ++epoch_;  // any outstanding plan is stale from here on
  NodeId id = gprime_.add_node();
  NodeId id2 = g_.add_node();
  FG_CHECK(id == id2);
  procs_.emplace_back();
  slots_.resize(procs_.size());
  for (NodeId y : neighbors) {
    FG_CHECK_MSG(g_.is_alive(y), "insertion neighbor must be alive");
    // add_edge rejects an edge that already exists, so a duplicate in the
    // span surfaces here — no side lookup table needed.
    FG_CHECK_MSG(gprime_.add_edge(id, y), "duplicate insertion neighbor");
    add_image_edge(id, y);
  }
  if (recorder_ != nullptr) recorder_->on_insert(id, neighbors);
  return id;
}

namespace {

/// Deterministic union-find over the wave's victims (indexed by wave
/// position): the representative is always the smallest index, so the
/// partition is independent of the union order.
struct Dsu {
  std::vector<int> parent;
  explicit Dsu(int n) : parent(static_cast<size_t>(n)) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] = parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent[static_cast<size_t>(b)] = a;
  }
};

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

DeletionAnalysis StructuralCore::analyze_deletion(std::span<const NodeId> victims,
                                                  RegionSplit split) const {
  FG_CHECK_MSG(!victims.empty(), "empty deletion batch");
  DeletionAnalysis a;
  a.split = split;
  a.victims.assign(victims.begin(), victims.end());
  const int k = static_cast<int>(victims.size());

  // Wave membership and positions as sorted flat arrays: one sort up
  // front, then every probe is a binary search over contiguous memory.
  a.victim_sorted = a.victims;
  std::sort(a.victim_sorted.begin(), a.victim_sorted.end());
  FG_CHECK_MSG(std::adjacent_find(a.victim_sorted.begin(), a.victim_sorted.end()) ==
                   a.victim_sorted.end(),
               "duplicate victim in batch");
  std::vector<std::pair<NodeId, int>> wave_index;  // (victim, wave position)
  wave_index.reserve(victims.size());
  for (int i = 0; i < k; ++i) {
    NodeId v = a.victims[static_cast<size_t>(i)];
    FG_CHECK_MSG(g_.is_alive(v), "deleting a dead or unknown processor");
    wave_index.push_back({v, i});
    a.deleted_degree_gprime += gprime_.degree(v);
  }
  std::sort(wave_index.begin(), wave_index.end());

  // 1. The virtual nodes of the deleted processors — one real node per edge
  //    to an already-deleted neighbor, plus every helper they simulate —
  //    and the region partition. Two victims repair together iff they are
  //    connected through shared RTs or a G' edge: a shared RT means their
  //    debris merges, and a G' edge between two victims must be healed by
  //    a structure spanning *both* neighborhoods or the network could
  //    disconnect. (A victim never has a slot keyed by another victim:
  //    slots only exist for neighbors that were already dead.)
  Dsu dsu(k);
  std::vector<std::pair<VNodeId, int>> root_claims;  // (RT root, wave position)
  for (int i = 0; i < k; ++i) {
    NodeId v = a.victims[static_cast<size_t>(i)];
    for (const SlotTable::Entry& slot : slots_.entries(v)) {
      for (VNodeId h : {slot.leaf, slot.helper}) {
        if (h == kNoVNode) continue;
        a.dead_vnodes.push_back(h);
        root_claims.push_back({forest_.root_of(h), i});
      }
    }
    for (NodeId y : gprime_.neighbors(v)) {
      auto it = std::lower_bound(wave_index.begin(), wave_index.end(),
                                 std::pair<NodeId, int>{y, 0});
      if (it != wave_index.end() && it->first == y) dsu.unite(i, it->second);
    }
  }
  // Every vnode belongs to exactly one (owner, other) slot, so the
  // collected handles are already duplicate-free; sort for binary search.
  std::sort(a.dead_vnodes.begin(), a.dead_vnodes.end());
  // Victims sharing an RT repair together: group the claims by root and
  // unite each group (equivalent to the old first-claimant map — the
  // partition is independent of union order).
  std::sort(root_claims.begin(), root_claims.end());
  for (size_t j = 1; j < root_claims.size(); ++j)
    if (root_claims[j].first == root_claims[j - 1].first)
      dsu.unite(root_claims[j - 1].second, root_claims[j].second);
  if (split == RegionSplit::kGlobal)
    for (int i = 1; i < k; ++i) dsu.unite(0, i);

  // The dirty region: the dead vnodes and all their ancestors. A node is
  // clean — its subtree contains no dead vnode — iff it is not dirty.
  // Chains are walked in full (Lemma 1 bounds RT depth by O(log n), so
  // this is O(dead * log n)) and deduplicated by one sort.
  a.dirty.reserve(a.dead_vnodes.size() * 2);
  for (VNodeId h : a.dead_vnodes)
    for (VNodeId x = h; x != kNoVNode; x = forest_.node(x).parent)
      a.dirty.push_back(x);
  std::sort(a.dirty.begin(), a.dirty.end());
  a.dirty.erase(std::unique(a.dirty.begin(), a.dirty.end()), a.dirty.end());
  // Dense marks for the collect walk's O(1) membership probes (dead marks
  // second: dead ⊂ dirty, and kDeadMark must win) — but only when the
  // wave is dense enough to amortize zeroing the whole arena; a sparse
  // wave (e.g. one victim deep into a long-lived arena) keeps the marks
  // empty and binary-searches the sorted vectors instead.
  if (static_cast<int64_t>(forest_.arena_size()) <=
      static_cast<int64_t>(a.dirty.size()) * 64) {
    a.vnode_marks.assign(static_cast<size_t>(forest_.arena_size()),
                         DeletionAnalysis::kClean);
    for (VNodeId x : a.dirty)
      a.vnode_marks[static_cast<size_t>(x)] = DeletionAnalysis::kDirtyMark;
    for (VNodeId h : a.dead_vnodes)
      a.vnode_marks[static_cast<size_t>(h)] = DeletionAnalysis::kDeadMark;
  }

  // 2. Materialize the regions in deterministic commit order: sorted by the
  //    smallest victim id they contain (the shard ordering rule). Victims
  //    keep their wave order within a region; affected roots are sorted
  //    ascending, as the single-RT path always did. Representatives are
  //    wave positions, so dense arrays over [0, k) replace the maps.
  std::vector<int> rep(static_cast<size_t>(k));
  std::vector<NodeId> min_victim(static_cast<size_t>(k), kInvalidNode);  // by rep
  for (int i = 0; i < k; ++i) {
    rep[static_cast<size_t>(i)] = dsu.find(i);
    NodeId v = a.victims[static_cast<size_t>(i)];
    NodeId& mv = min_victim[static_cast<size_t>(rep[static_cast<size_t>(i)])];
    if (mv == kInvalidNode || v < mv) mv = v;
  }
  std::vector<std::pair<NodeId, int>> order;  // (min victim id, rep)
  for (int r = 0; r < k; ++r)
    if (min_victim[static_cast<size_t>(r)] != kInvalidNode)
      order.push_back({min_victim[static_cast<size_t>(r)], r});
  std::sort(order.begin(), order.end());
  std::vector<int> seed_of_rep(static_cast<size_t>(k), -1);
  for (size_t j = 0; j < order.size(); ++j)
    seed_of_rep[static_cast<size_t>(order[j].second)] = static_cast<int>(j);

  a.seeds.resize(order.size());
  a.victim_seed.resize(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    int s = seed_of_rep[static_cast<size_t>(rep[static_cast<size_t>(i)])];
    a.victim_seed[static_cast<size_t>(i)] = s;
    a.seeds[static_cast<size_t>(s)].victims.push_back(a.victims[static_cast<size_t>(i)]);
  }
  // One root entry per group (claims are sorted by root, so groups are
  // contiguous and the per-seed root lists come out ascending).
  for (size_t j = 0; j < root_claims.size(); ++j) {
    if (j > 0 && root_claims[j].first == root_claims[j - 1].first) continue;
    int s = seed_of_rep[static_cast<size_t>(rep[static_cast<size_t>(root_claims[j].second)])];
    a.seeds[static_cast<size_t>(s)].roots.push_back(root_claims[j].first);
  }
  return a;
}

void StructuralCore::plan_region(const DeletionAnalysis& analysis, int region,
                                 RegionPlan* out) const {
  const DeletionAnalysis::Seed& seed = analysis.seeds[static_cast<size_t>(region)];
  out->id = region;
  out->victims = seed.victims;
  out->roots = seed.roots;

  // Break-phase script: the Strip of Section 4.1.1 over each affected RT,
  // recorded instead of applied.
  auto t0 = std::chrono::steady_clock::now();
  for (VNodeId r : seed.roots) collect_events(r, analysis, out);

  // Surviving direct neighbors lose their edge to the victim and contribute
  // a fresh real node (a trivial one-node RT) for the edge slot (y, v). An
  // edge between two victims spawns no real node: both endpoints die, so
  // nobody survives to simulate one (exactly the state sequential deletions
  // converge to).
  for (NodeId v : seed.victims) {
    for (NodeId y : gprime_.neighbors(v)) {
      if (!g_.is_alive(y) || analysis.is_victim(y)) continue;
      out->fresh.push_back({y, v});
    }
  }

  // Victim-victim G' edges, in the exact order the break drops them. Both
  // endpoints always land in the same region (a shared G' edge unites
  // them), so recording the pairs here lets one region's break run with no
  // wave-wide lookup at all.
  for (NodeId v : seed.victims)
    for (NodeId y : gprime_.neighbors(v))
      if (v < y && analysis.is_victim(y)) out->victim_edges.push_back({v, y});

  // Merge-plan input: detached pieces in event order, then fresh leaves —
  // the same deterministic piece order the single-pass walk emitted.
  out->pieces.reserve(out->events.size() + out->fresh.size());
  for (const RegionPlan::Event& e : out->events)
    if (e.is_piece) out->pieces.push_back(piece_info(e.h));
  for (const RegionPlan::FreshLeaf& f : out->fresh)
    out->pieces.push_back({1, slot_key(f.owner, f.dead)});
  auto t1 = std::chrono::steady_clock::now();

  out->steps = haft::merge_plan(out->pieces);
  auto t2 = std::chrono::steady_clock::now();
  out->collect_ms = ms_between(t0, t1);
  out->merge_ms = ms_between(t1, t2);
}

RepairPlan StructuralCore::plan_deletion(std::span<const NodeId> victims,
                                         RegionSplit split) const {
  auto t0 = std::chrono::steady_clock::now();
  DeletionAnalysis analysis = analyze_deletion(victims, split);
  auto t1 = std::chrono::steady_clock::now();

  RepairPlan plan;
  plan.regions.resize(analysis.seeds.size());
  for (int r = 0; r < static_cast<int>(analysis.seeds.size()); ++r)
    plan_region(analysis, r, &plan.regions[static_cast<size_t>(r)]);

  finalize_plan(analysis, &plan);
  plan.profile.partition_ms = ms_between(t0, t1);
  return plan;
}

void StructuralCore::finalize_plan(const DeletionAnalysis& analysis,
                                   RepairPlan* plan) const {
  plan->split = analysis.split;
  plan->victims = analysis.victims;
  plan->epoch = epoch_;
  // The arena-id reservation: region r's commit allocates exactly its
  // anchor leaves plus one helper per merge step, so contiguous handle
  // ranges follow from region order by prefix sums — any commit schedule
  // lands every vnode at the same handle (contract C4).
  const int arena_start = forest_.arena_size();
  int next_handle = arena_start;
  for (RegionPlan& region : plan->regions) {
    plan->profile.collect_ms += region.collect_ms;
    plan->profile.merge_ms += region.merge_ms;
    region.arena_base = next_handle;
    next_handle += static_cast<int>(region.fresh.size() + region.steps.size());
  }
  plan->arena_start = arena_start;
  plan->arena_total = next_handle - arena_start;
  // Region ids are seed indices, so the per-victim region assignment is
  // the analysis' victim_seed verbatim — no lookup table.
  plan->victim_region = analysis.victim_seed;
}

void StructuralCore::collect_events(VNodeId root, const DeletionAnalysis& analysis,
                                    RegionPlan* out) const {
  FG_CHECK_MSG(analysis.is_dirty(root), "collecting from an unbroken RT");

  // Explicit worklist, left child before right child before the node itself
  // — the same order as the natural recursion, so the piece sequence (and
  // any observer's message sequence) is unchanged. Only dirty nodes and the
  // right spines of their clean children are ever visited: a clean perfect
  // subtree becomes a piece at first touch, in O(1), without being entered.
  // The recorded decisions stay valid at commit time because the commit
  // only clears links and tombstones nodes of this very script — the
  // leaf_count/height fields is_perfect reads are never touched.
  struct Frame {
    VNodeId h;
    VNodeId left = kNoVNode;
    VNodeId right = kNoVNode;
    int stage = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({root});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.stage == 0) {
      if (!analysis.is_dirty(f.h) && forest_.is_perfect(f.h)) {
        // Maximal clean perfect subtree: the next piece, detached whole.
        out->events.push_back({true, f.h});
        stack.pop_back();
        continue;
      }
      // Dead, red, or clean-but-imperfect: decompose.
      const auto& n = forest_.node(f.h);
      f.left = n.left;
      f.right = n.right;
      f.stage = 1;
      if (f.left != kNoVNode) stack.push_back({f.left});
    } else if (f.stage == 1) {
      f.stage = 2;
      if (f.right != kNoVNode) stack.push_back({f.right});
    } else {
      out->events.push_back({false, f.h});
      if (!analysis.is_dead_vnode(f.h)) ++out->red_teardowns;  // red helper
      stack.pop_back();
    }
  }
}

std::vector<std::vector<VNodeId>> StructuralCore::commit_break(const RepairPlan& plan,
                                                               RepairObserver* observer,
                                                               CommitAlloc alloc) {
  begin_break(plan, alloc);
  std::vector<std::vector<VNodeId>> pieces(plan.regions.size());
  for (const RegionPlan& region : plan.regions)
    pieces[static_cast<size_t>(region.id)] = break_region(region, nullptr, observer, alloc);
  finish_break(plan);
  return pieces;
}

void StructuralCore::begin_break(const RepairPlan& plan, CommitAlloc alloc) {
  // A stale plan — any mutation since planning, even one that left the
  // arena size unchanged (a teardown-only repair) — would replay a script
  // over state it no longer describes; fail loudly instead.
  FG_CHECK_MSG(plan.epoch == epoch_,
               "committing a stale plan: core mutated since planning");
  ++epoch_;
  if (alloc == CommitAlloc::kReserved) {
    FG_CHECK_MSG(plan.arena_start == forest_.arena_size(),
                 "committing a stale plan: arena moved since planning");
    VNodeId base = forest_.reserve_range(plan.arena_total);
    FG_CHECK(base == plan.arena_start);
  }
  last_repair_ = RepairStats{};
  last_repair_.regions = static_cast<int>(plan.regions.size());
  for (NodeId v : plan.victims) {
    // A recovery wave re-anchors processors that are already dead; a
    // deletion wave kills live ones. Either way, a liveness flip since
    // planning means the plan is stale.
    if (plan.recovery)
      FG_CHECK_MSG(!g_.is_alive(v), "recovery plan names a live processor");
    else
      FG_CHECK_MSG(g_.is_alive(v), "committing a stale plan: victim already dead");
    last_repair_.deleted_degree_gprime += gprime_.degree(v);
  }
}

std::vector<VNodeId> StructuralCore::break_region(const RegionPlan& region,
                                                  BreakEffects* effects,
                                                  RepairObserver* observer,
                                                  CommitAlloc alloc) {
  auto parent_owner_of = [&](VNodeId h) {
    VNodeId p = forest_.node(h).parent;
    return p == kNoVNode ? kInvalidNode : forest_.node(p).owner;
  };
  std::vector<VNodeId> out;
  out.reserve(region.pieces.size());
  if (effects) {
    // Recorded mode: everything mutated below is region-local — this
    // region's own forest nodes (unlinks, uncounted tombstones) and its
    // reserved arena handles. Shared state (multiplicity map, image graph,
    // slot tables, counters, the forest's live count) is only ever
    // *recorded*, which is what makes disjoint regions safe to break
    // concurrently (docs/CONCURRENCY.md, the break-effects argument).
    FG_CHECK_MSG(observer == nullptr && alloc == CommitAlloc::kReserved,
                 "recorded break: reserved allocation only, no observer");
    effects->reset();
    effects->affected_rts = static_cast<int>(region.roots.size());
    effects->edge_drops.reserve(region.events.size() + region.fresh.size() +
                                region.victim_edges.size());
  } else {
    if (observer) observer->on_region_begin(region.id);
    last_repair_.affected_rts += static_cast<int>(region.roots.size());
    delta_scratch_.clear();
  }

  // Replay the break-phase script: detach pieces, tear down dead and red
  // nodes (children always precede their parent in the script).
  for (const RegionPlan::Event& e : region.events) {
    if (e.is_piece) {
      if (effects) {
        const auto& n = forest_.node(e.h);
        if (n.parent != kNoVNode)
          effects->edge_drops.push_back({n.owner, forest_.node(n.parent).owner});
        forest_.unlink_from_parent(e.h);
      } else {
        if (observer)
          observer->on_piece(e.h, forest_.node(e.h).owner, parent_owner_of(e.h));
        detach_vnode(e.h);
      }
      out.push_back(e.h);
    } else {
      if (effects) {
        const auto& n = forest_.node(e.h);
        if (n.parent != kNoVNode)
          effects->edge_drops.push_back({n.owner, forest_.node(n.parent).owner});
        effects->slot_ops.push_back({n.owner, n.other, e.h, n.is_leaf, false});
        forest_.remove_uncounted(e.h);
        ++effects->teardowns;
      } else {
        if (observer)
          observer->on_teardown(e.h, forest_.node(e.h).owner, parent_owner_of(e.h));
        remove_vnode(e.h);
      }
    }
  }
  if (!effects) last_repair_.helpers_removed += region.red_teardowns;

  // Spawn the anchor leaves and drop the victims' surviving image edges.
  // Under kReserved the j-th fresh leaf lands at its plan-time handle
  // arena_base + j; the region's helpers follow in the same range. The
  // edge drops are batched: multiplicities update inline (or at the
  // stitch), but the 1 -> 0 transitions collect into the pooled delta
  // buffer and flip in one apply_edge_deltas sweep per region — nothing
  // below reads or adds image edges, so the deferral is invisible (and a
  // hub teardown costs O(degree), not O(degree^2) sorted-list erases).
  int fresh_at = region.arena_base;
  for (const RegionPlan::FreshLeaf& f : region.fresh) {
    VNodeId leaf;
    // In a deletion wave f.dead is a victim still alive at this point, so
    // its image edge to the surviving owner drops here. In a recovery wave
    // (RepairPlan::recovery) f.dead died long ago and the edge is already
    // gone — the anchor simply re-materializes.
    if (effects) {
      if (g_.is_alive(f.dead)) effects->edge_drops.push_back({f.dead, f.owner});
      leaf = fresh_at++;
      forest_.make_leaf_in(leaf, f.owner, f.dead);
      effects->slot_ops.push_back({f.owner, f.dead, leaf, true, true});
      ++effects->new_leaves;
    } else {
      if (g_.is_alive(f.dead)) {
        note_image_touch(f.dead, f.owner);
        if (image_multiplicity_.decrement(edge_key(f.dead, f.owner)) == 0)
          delta_scratch_.push_back({f.dead, f.owner, EdgeDelta::Op::kRemove});
      }
      if (alloc == CommitAlloc::kReserved) {
        leaf = fresh_at++;
        forest_.make_leaf_in(leaf, f.owner, f.dead);
      } else {
        leaf = forest_.make_leaf(f.owner, f.dead);
      }
      SlotTable::Entry& s = slots_.ensure(f.owner, f.dead);
      FG_CHECK(s.leaf == kNoVNode && s.helper == kNoVNode);
      s.leaf = leaf;
      if (observer) observer->on_piece(leaf, f.owner, kInvalidNode);
      ++last_repair_.new_leaves;
    }
    out.push_back(leaf);
  }

  // Edges between two victims lose their image edge here; both endpoints
  // are in this region (G'-adjacent victims always share one), and the
  // pairs were fixed at plan time (RegionPlan::victim_edges).
  if (effects) {
    for (const auto& [v, y] : region.victim_edges) effects->edge_drops.push_back({v, y});
  } else {
    for (const auto& [v, y] : region.victim_edges) {
      note_image_touch(v, y);
      if (image_multiplicity_.decrement(edge_key(v, y)) == 0)
        delta_scratch_.push_back({v, y, EdgeDelta::Op::kRemove});
    }
    g_.apply_edge_deltas(delta_scratch_);
    last_repair_.pieces += static_cast<int>(out.size());
  }

  FG_CHECK_MSG(out.size() == region.pieces.size(),
               "committed piece set diverged from the plan");
  return out;
}

void StructuralCore::apply_break_effects(const RegionPlan& region,
                                         const BreakEffects& effects) {
  last_repair_.affected_rts += effects.affected_rts;
  last_repair_.helpers_removed += region.red_teardowns;
  last_repair_.new_leaves += effects.new_leaves;
  last_repair_.pieces += static_cast<int>(region.pieces.size());

  // The batched stitch, mirror image of apply_merge_effects: replay every
  // multiplicity decrement in break order, collecting only the 1 -> 0
  // transitions, then flip the image edges in one Graph::apply_edge_deltas
  // pass. Each undirected edge reaches zero at most once per wave (the
  // break only ever decrements), so the batch contract holds.
  delta_scratch_.clear();
  for (const auto& [u, v] : effects.edge_drops) {
    if (u == v) continue;  // homomorphism collapses same-processor edges
    note_image_touch(u, v);
    if (image_multiplicity_.decrement(edge_key(u, v)) == 0)
      delta_scratch_.push_back({u, v, EdgeDelta::Op::kRemove});
  }
  g_.apply_edge_deltas(delta_scratch_);

  // Replay the slot writes in script order — identical semantics (and
  // FG_CHECKs) to what the sequential break applies inline.
  for (const BreakEffects::SlotOp& op : effects.slot_ops) {
    if (op.attach) {
      SlotTable::Entry& s = slots_.ensure(op.owner, op.other);
      FG_CHECK(s.leaf == kNoVNode && s.helper == kNoVNode);
      s.leaf = op.h;  // only anchor leaves attach during a break
    } else {
      SlotTable::Entry* s = slots_.find(op.owner, op.other);
      FG_CHECK(s != nullptr);
      if (op.is_leaf) {
        FG_CHECK(s->leaf == op.h);
        s->leaf = kNoVNode;
      } else {
        FG_CHECK(s->helper == op.h);
        s->helper = kNoVNode;
      }
      if (s->leaf == kNoVNode && s->helper == kNoVNode) slots_.erase(op.owner, op.other);
    }
  }
  forest_.credit_removals(effects.teardowns);
}

void StructuralCore::finish_break(const RepairPlan& plan) {
  // Recovery victims are already dead — there is nothing to kill.
  if (plan.recovery) return;
  // The processors themselves die. All of their image edges must be gone.
  for (NodeId v : plan.victims) {
    procs_[static_cast<size_t>(v)].alive = false;
    slots_.clear(v);
    FG_CHECK_MSG(g_.degree(v) == 0, "image bookkeeping left edges on a deleted node");
    g_.remove_node(v);
  }
}

VNodeId StructuralCore::merge_region(const RegionPlan& region,
                                     std::vector<VNodeId>&& pieces,
                                     MergeEffects* effects) {
  FG_CHECK(pieces.size() == region.pieces.size());
  if (effects) effects->reset();
  if (pieces.empty()) return kNoVNode;
  FG_CHECK_MSG(region.arena_base >= 0, "merge_region requires a reserved plan");
  pieces.reserve(pieces.size() + region.steps.size());
  if (effects) effects->image_edges.reserve(2 * region.steps.size());
  // The region's helpers live right after its fresh leaves in the reserved
  // range; step s constructs handle arena_base + fresh + s. With `effects`
  // set, everything below touches region-local state only — the helper's
  // reserved slot in the pre-grown arena, the children's parent links, and
  // the (existing) slot entry of the representative leaf — which is why
  // disjoint regions can run this concurrently (docs/CONCURRENCY.md, the
  // reservation argument); shared-state writes are recorded, not applied.
  VNodeId next = region.arena_base + static_cast<VNodeId>(region.fresh.size());
  for (const auto& step : region.steps) {
    VNodeId l = pieces[static_cast<size_t>(step.left)];
    VNodeId r = pieces[static_cast<size_t>(step.right)];
    // Representative mechanism (Algorithm A.9): the left tree's
    // representative simulates the new helper; the merged root inherits
    // the right tree's representative.
    const auto& rep = forest_.node(forest_.node(l).rep);
    NodeId rep_owner = rep.owner;
    NodeId rep_other = rep.other;
    NodeId left_owner = forest_.node(l).owner;
    NodeId right_owner = forest_.node(r).owner;
    VNodeId h = forest_.make_helper_in(next++, rep_owner, rep_other, l, r);
    // In-place write to an existing entry: concurrent merges never insert
    // or erase slots, so the flat entry arrays are stable and disjoint
    // regions write disjoint entries (slot_table.h's concurrency contract).
    SlotTable::Entry* slot = slots_.find(rep_owner, rep_other);
    FG_CHECK_MSG(slot != nullptr, "representative leaf has no slot entry");
    FG_CHECK_MSG(slot->helper == kNoVNode,
                 "representative already simulates a helper");
    slot->helper = h;
    if (effects) {
      effects->image_edges.push_back({rep_owner, left_owner});
      effects->image_edges.push_back({rep_owner, right_owner});
      ++effects->helpers_created;
    } else {
      add_image_edge(rep_owner, left_owner);
      add_image_edge(rep_owner, right_owner);
      ++last_repair_.helpers_created;
    }
    FG_CHECK(static_cast<int>(pieces.size()) == step.result);
    pieces.push_back(h);
  }
  if (effects)
    effects->root = pieces.back();
  else
    finish_repair(pieces.back());
  return pieces.back();
}

VNodeId StructuralCore::apply_merge_effects(const MergeEffects& effects) {
  // The batched stitch: bump every multiplicity first, collecting only the
  // 0 -> 1 transitions, then flip the image edges in one
  // Graph::apply_edge_deltas pass over the pooled delta buffer.
  delta_scratch_.clear();
  for (const auto& [u, v] : effects.image_edges) {
    if (u == v) continue;  // homomorphism collapses same-processor edges
    note_image_touch(u, v);
    if (image_multiplicity_.increment(edge_key(u, v)) == 1)
      delta_scratch_.push_back({u, v, EdgeDelta::Op::kAdd});
  }
  g_.apply_edge_deltas(delta_scratch_);
  last_repair_.helpers_created += effects.helpers_created;
  if (effects.root != kNoVNode) finish_repair(effects.root);
  return effects.root;
}

VNodeId StructuralCore::commit_merge(const RegionPlan& region,
                                     std::vector<VNodeId> pieces) {
  return merge_region(region, std::move(pieces), nullptr);
}

void StructuralCore::check_reservation_settled(const RepairPlan& plan) const {
  FG_CHECK_MSG(forest_.unconstructed_in(plan.arena_start,
                                        plan.arena_start + plan.arena_total) == 0,
               "arena reservation not fully constructed after commit");
}

void StructuralCore::detach_vnode(VNodeId h) {
  const auto& n = forest_.node(h);
  if (n.parent == kNoVNode) return;
  remove_image_edge(n.owner, forest_.node(n.parent).owner);
  forest_.unlink_from_parent(h);
}

void StructuralCore::remove_vnode(VNodeId h) {
  const auto& n = forest_.node(h);
  NodeId owner = n.owner;
  NodeId other = n.other;
  bool leaf = n.is_leaf;
  detach_vnode(h);
  forest_.remove(h);
  if (!procs_[static_cast<size_t>(owner)].alive) return;  // a victim's slots are wiped wholesale
  SlotTable::Entry* s = slots_.find(owner, other);
  FG_CHECK(s != nullptr);
  if (leaf) {
    FG_CHECK(s->leaf == h);
    s->leaf = kNoVNode;
  } else {
    FG_CHECK(s->helper == h);
    s->helper = kNoVNode;
  }
  if (s->leaf == kNoVNode && s->helper == kNoVNode) slots_.erase(owner, other);
}

haft::PieceInfo StructuralCore::piece_info(VNodeId root) const {
  const auto& n = forest_.node(root);
  FG_CHECK(forest_.is_perfect(root));
  const auto& rep = forest_.node(n.rep);
  return {n.leaf_count, slot_key(rep.owner, rep.other)};
}

VNodeId StructuralCore::join_pieces(VNodeId left, VNodeId right) {
  // Representative mechanism (Algorithm A.9): the left tree's representative
  // simulates the new helper; the merged root inherits the right tree's
  // representative. (Copy fields before make_helper: it may grow the arena.)
  const auto& rep = forest_.node(forest_.node(left).rep);
  NodeId rep_owner = rep.owner;
  NodeId rep_other = rep.other;
  NodeId left_owner = forest_.node(left).owner;
  NodeId right_owner = forest_.node(right).owner;
  VNodeId h = forest_.make_helper(rep_owner, rep_other, left, right);
  SlotTable::Entry& s = slots_.ensure(rep_owner, rep_other);
  FG_CHECK_MSG(s.helper == kNoVNode, "representative already simulates a helper");
  s.helper = h;
  add_image_edge(rep_owner, left_owner);
  add_image_edge(rep_owner, right_owner);
  ++last_repair_.helpers_created;
  return h;
}

void StructuralCore::finish_repair(VNodeId final_root) {
  last_repair_.final_rt_leaves += forest_.node(final_root).leaf_count;
}

int StructuralCore::helper_count(NodeId v) const {
  FG_CHECK(v >= 0 && static_cast<size_t>(v) < procs_.size());
  int count = 0;
  for (const SlotTable::Entry& slot : slots_.entries(v))
    if (slot.helper != kNoVNode) ++count;
  return count;
}

std::vector<VNodeId> StructuralCore::slot_roots(NodeId v) const {
  FG_CHECK(v >= 0 && static_cast<size_t>(v) < procs_.size());
  std::vector<VNodeId> roots;
  for (const SlotTable::Entry& slot : slots_.entries(v))
    for (VNodeId h : {slot.leaf, slot.helper})
      if (h != kNoVNode) roots.push_back(forest_.root_of(h));
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  return roots;
}

void StructuralCore::save(std::ostream& os) const {
  os << "FGv1\n";
  os << "capacity " << gprime_.node_capacity() << '\n';
  os << "dead";
  for (NodeId v = 0; v < gprime_.node_capacity(); ++v)
    if (!g_.is_alive(v)) os << ' ' << v;
  os << '\n';
  os << "edges " << gprime_.edge_count() << '\n';
  for (NodeId v = 0; v < gprime_.node_capacity(); ++v)
    for (NodeId w : gprime_.neighbors(v))
      if (v < w) os << v << ' ' << w << '\n';
  const auto& arena = forest_.dump();
  os << "vnodes " << arena.size() << '\n';
  for (const auto& n : arena)
    os << n.alive << ' ' << n.is_leaf << ' ' << n.owner << ' ' << n.other << ' '
       << n.parent << ' ' << n.left << ' ' << n.right << ' ' << n.height << ' '
       << n.leaf_count << ' ' << n.rep << '\n';
  os << "end\n";
}

namespace {

/// Structural pre-validation of a deserialized arena against the processor
/// table: every alive row must name an alive owner, an in-range far
/// endpoint, links into alive in-range rows, and sane aggregates. Returns
/// an empty string when clean — the typed loaders run this before handing
/// rows to any Graph/forest call whose FG_CHECKs would abort the process.
template <class IsAlive>
std::string check_arena_rows(const std::vector<VirtualForest::VNode>& rows,
                             NodeId capacity, IsAlive&& is_alive) {
  const auto arena = static_cast<VNodeId>(rows.size());
  for (VNodeId h = 0; h < arena; ++h) {
    const auto& n = rows[static_cast<size_t>(h)];
    if (!n.alive) continue;
    if (n.owner < 0 || n.owner >= capacity || !is_alive(n.owner))
      return "forest row " + std::to_string(h) + ": owner is not an alive processor";
    if (n.other < 0 || n.other >= capacity)
      return "forest row " + std::to_string(h) + ": far endpoint out of range";
    for (VNodeId l : {n.parent, n.left, n.right})
      if (l != kNoVNode && (l < 0 || l >= arena || !rows[static_cast<size_t>(l)].alive))
        return "forest row " + std::to_string(h) + ": link outside the live arena";
    if (n.rep != kNoVNode && (n.rep < 0 || n.rep >= arena))
      return "forest row " + std::to_string(h) + ": representative out of range";
    if (n.leaf_count < 1 || n.height < 0)
      return "forest row " + std::to_string(h) + ": non-positive aggregates";
  }
  return {};
}

}  // namespace

bool StructuralCore::try_load(std::istream& is, StructuralCore* out,
                              std::string* error) {
  auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  auto expect = [&is](const char* token) {
    std::string word;
    return static_cast<bool>(is >> word) && word == token;
  };

  StructuralCore core;
  if (!expect("FGv1")) return fail("missing FGv1 header");
  if (!expect("capacity")) return fail("missing capacity section");
  NodeId capacity = 0;
  if (!(is >> capacity) || capacity < 0) return fail("bad capacity");
  for (NodeId i = 0; i < capacity; ++i) {
    core.gprime_.add_node();
    core.g_.add_node();
  }
  core.procs_.resize(static_cast<size_t>(capacity));
  core.slots_.resize(static_cast<size_t>(capacity));

  if (!expect("dead")) return fail("missing dead section");
  {
    std::string rest;
    std::getline(is, rest);
    std::istringstream ls(rest);
    NodeId v = kInvalidNode;
    while (ls >> v) {
      if (v < 0 || v >= capacity) return fail("dead id out of range");
      if (!core.g_.is_alive(v)) return fail("duplicate dead id");
      core.g_.remove_node(v);
      core.procs_[static_cast<size_t>(v)].alive = false;
    }
    if (!ls.eof()) return fail("garbage in dead section");
  }

  if (!expect("edges")) return fail("missing edges section");
  int64_t edges = 0;
  if (!(is >> edges) || edges < 0) return fail("bad edge count");
  core.image_multiplicity_.reserve(static_cast<size_t>(edges));
  for (int64_t i = 0; i < edges; ++i) {
    NodeId u = kInvalidNode, w = kInvalidNode;
    if (!(is >> u >> w)) return fail("truncated edge list");
    if (u < 0 || u >= capacity || w < 0 || w >= capacity || u == w)
      return fail("edge endpoint out of range");
    if (!core.gprime_.add_edge(u, w)) return fail("duplicate G' edge");
    if (core.g_.is_alive(u) && core.g_.is_alive(w)) {
      core.image_multiplicity_.increment(edge_key(u, w));
      core.g_.add_edge(u, w);
    }
  }

  if (!expect("vnodes")) return fail("missing vnodes section");
  int64_t arena_size = 0;
  if (!(is >> arena_size) || arena_size < 0) return fail("bad vnode count");
  std::vector<VirtualForest::VNode> arena;
  // Row-by-row growth: a truncated stream fails at its first missing row
  // instead of allocating a corrupt count's worth of arena up front.
  for (int64_t i = 0; i < arena_size; ++i) {
    VirtualForest::VNode n;
    if (!(is >> n.alive >> n.is_leaf >> n.owner >> n.other >> n.parent >> n.left >>
          n.right >> n.height >> n.leaf_count >> n.rep))
      return fail("truncated vnode row");
    arena.push_back(n);
  }
  if (!expect("end")) return fail("missing end marker");
  if (std::string why = check_arena_rows(
          arena, capacity, [&](NodeId v) { return core.g_.is_alive(v); });
      !why.empty())
    return fail(std::move(why));
  core.forest_ = VirtualForest::from_dump(std::move(arena));

  // Rebuild the derived state: slot table and the virtual part of the image.
  const auto& nodes = core.forest_.dump();
  for (VNodeId h = 0; h < static_cast<VNodeId>(nodes.size()); ++h) {
    const auto& n = nodes[static_cast<size_t>(h)];
    if (!n.alive) continue;
    SlotTable::Entry& s = core.slots_.ensure(n.owner, n.other);
    if (n.is_leaf) {
      if (s.leaf != kNoVNode) return fail("slot leaf double-booked");
      s.leaf = h;
    } else {
      if (s.helper != kNoVNode) return fail("slot helper double-booked");
      s.helper = h;
    }
    if (n.parent != kNoVNode)
      core.add_image_edge(n.owner, nodes[static_cast<size_t>(n.parent)].owner);
  }
  *out = std::move(core);
  return true;
}

StructuralCore StructuralCore::load(std::istream& is) {
  StructuralCore core;
  std::string err;
  bool ok = try_load(is, &core, &err);
  FG_CHECK_MSG(ok, "malformed checkpoint");
  return core;
}

void StructuralCore::to_base_image(snap::BaseImage* out) const {
  out->epoch = epoch_;
  out->capacity = static_cast<uint32_t>(gprime_.node_capacity());

  out->dead.clear();
  for (NodeId v = 0; v < gprime_.node_capacity(); ++v)
    if (!g_.is_alive(v)) out->dead.push_back(static_cast<uint32_t>(v));

  // Canonical adjacency order, independent of how the edges accumulated.
  out->gprime_edges.clear();
  out->gprime_edges.reserve(static_cast<size_t>(gprime_.edge_count()));
  for (NodeId v = 0; v < gprime_.node_capacity(); ++v)
    for (NodeId w : gprime_.neighbors(v))
      if (v < w)
        out->gprime_edges.push_back(
            {static_cast<uint32_t>(v), static_cast<uint32_t>(w)});
  std::sort(out->gprime_edges.begin(), out->gprime_edges.end());

  out->forest_live = forest_.live_count();
  const auto& arena = forest_.dump();
  out->rows.clear();
  out->rows.reserve(arena.size());
  for (const auto& n : arena)
    out->rows.push_back({n.owner, n.other, n.parent, n.left, n.right, n.rep, n.height,
                         n.leaf_count, n.is_leaf, n.alive});

  out->slots.clear();
  for (NodeId v = 0; v < static_cast<NodeId>(procs_.size()); ++v)
    for (const SlotTable::Entry& s : slots_.entries(v))
      out->slots.push_back({static_cast<uint32_t>(v), s.other, s.leaf, s.helper});

  out->mult.clear();
  out->mult.reserve(image_multiplicity_.size());
  image_multiplicity_.for_each([out](uint64_t key, int32_t count) {
    out->mult.push_back({static_cast<uint32_t>(key >> 32),
                         static_cast<uint32_t>(key & 0xFFFFFFFFu), count});
  });
  std::sort(out->mult.begin(), out->mult.end(),
            [](const snap::BaseImage::MultEntry& a, const snap::BaseImage::MultEntry& b) {
              return std::tie(a.u, a.v) < std::tie(b.u, b.v);
            });
}

bool StructuralCore::from_base_image(const snap::BaseImage& image, StructuralCore* out,
                                     std::string* error) {
  auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };

  StructuralCore core;
  const NodeId capacity = static_cast<NodeId>(image.capacity);
  if (capacity < 0) return fail("capacity overflows NodeId");
  core.gprime_ = Graph(static_cast<int>(capacity));
  core.procs_.resize(static_cast<size_t>(capacity));
  core.slots_.resize(static_cast<size_t>(capacity));

  // Liveness first (the sections below validate against it); the healed
  // image G itself is built last, once the MULT section has been verified.
  for (uint32_t v : image.dead) {
    if (v >= image.capacity) return fail("dead id out of range");
    if (!core.procs_[v].alive) return fail("duplicate dead id");
    core.procs_[v].alive = false;
  }

  // Validate the G' section against the canonical on-disk order (strictly
  // ascending (u, v) with u < v — exactly what to_base_image emits), then
  // hand the whole list to the graph's bulk loader: O(E) appends instead of
  // one sorted insert per edge endpoint.
  {
    uint64_t prev_key = 0;
    for (const auto& [eu, ev] : image.gprime_edges) {
      if (eu >= image.capacity || ev >= image.capacity || eu == ev)
        return fail("G' edge endpoint out of range");
      if (eu > ev) return fail("duplicate or out-of-order G' edge");
      uint64_t key = slot_key(static_cast<NodeId>(eu), static_cast<NodeId>(ev));
      if (key <= prev_key) return fail("duplicate or out-of-order G' edge");
      prev_key = key;
    }
  }
  core.gprime_.add_edges_bulk(image.gprime_edges);

  // The healed image G and the multiplicity table are rebuilt straight from
  // the CRC-protected MULT section (a G edge exists iff its multiplicity is
  // positive). The section is not taken on faith: after the forest walk
  // below it is verified entry-by-entry against ground truth — the
  // alive-alive G' edges plus the forest's cross-processor parent links.
  std::vector<std::pair<uint64_t, int32_t>> mult_entries;
  mult_entries.reserve(image.mult.size());
  {
    uint64_t prev_key = 0;
    for (const snap::BaseImage::MultEntry& m : image.mult) {
      if (m.u >= m.v || m.v >= image.capacity || m.count <= 0)
        return fail("malformed MULT entry");
      if (!core.procs_[m.u].alive || !core.procs_[m.v].alive)
        return fail("MULT section disagrees with the rebuild");
      uint64_t key = slot_key(static_cast<NodeId>(m.u), static_cast<NodeId>(m.v));
      if (key <= prev_key) return fail("duplicate or out-of-order MULT entry");
      prev_key = key;
      mult_entries.emplace_back(key, m.count);
    }
  }
  std::vector<VirtualForest::VNode> arena;
  arena.reserve(image.rows.size());
  for (const snap::VRow& r : image.rows) {
    VirtualForest::VNode n;
    n.owner = r.owner;
    n.other = r.other;
    n.parent = r.parent;
    n.left = r.left;
    n.right = r.right;
    n.rep = r.rep;
    n.height = r.height;
    n.leaf_count = r.leaf_count;
    n.is_leaf = r.is_leaf;
    n.alive = r.alive;
    arena.push_back(n);
  }
  if (std::string why = check_arena_rows(
          arena, capacity,
          [&](NodeId v) { return core.procs_[static_cast<size_t>(v)].alive; });
      !why.empty())
    return fail(std::move(why));
  core.forest_ = VirtualForest::from_dump(std::move(arena));
  if (core.forest_.live_count() != image.forest_live)
    return fail("forest live count disagrees with the rows");

  // Rebuild the slot table from ground truth (same walk as try_load) and
  // collect the forest's cross-processor parent-link keys for the MULT
  // verification merge below.
  std::vector<uint64_t> link_keys;
  const auto& nodes = core.forest_.dump();
  for (VNodeId h = 0; h < static_cast<VNodeId>(nodes.size()); ++h) {
    const auto& n = nodes[static_cast<size_t>(h)];
    if (!n.alive) continue;
    SlotTable::Entry& s = core.slots_.ensure(n.owner, n.other);
    if (n.is_leaf) {
      if (s.leaf != kNoVNode) return fail("slot leaf double-booked");
      s.leaf = h;
    } else {
      if (s.helper != kNoVNode) return fail("slot helper double-booked");
      s.helper = h;
    }
    if (n.parent != kNoVNode) {
      NodeId a = n.owner;
      NodeId b = nodes[static_cast<size_t>(n.parent)].owner;
      if (a != b) link_keys.push_back(edge_key(a, b));
    }
  }
  std::sort(link_keys.begin(), link_keys.end());
  // ...then hold the image's recorded SLOT and MULT sections against it: a
  // base whose derived sections disagree with its own forest was written by
  // a buggy producer or corrupted without tripping a CRC — refuse it.
  size_t slot_at = 0;
  for (NodeId v = 0; v < capacity; ++v) {
    for (const SlotTable::Entry& s : core.slots_.entries(v)) {
      if (slot_at >= image.slots.size()) return fail("SLOT section too short");
      const snap::BaseImage::SlotEntry& rec = image.slots[slot_at++];
      if (rec.owner != static_cast<uint32_t>(v) || rec.other != s.other ||
          rec.leaf != s.leaf || rec.helper != s.helper)
        return fail("SLOT section disagrees with the forest");
    }
  }
  if (slot_at != image.slots.size()) return fail("SLOT section too long");

  // Hold the recorded MULT section against ground truth: every key's count
  // must equal its alive-alive G' edges plus its parent links, with nothing
  // left over on either side. All three streams are in ascending key order
  // (validated or sorted above), so one linear merge replaces the hash
  // probe per entry that used to dominate large restores.
  if (image.dead.empty() && link_keys.empty()) {
    // Fast path (no deletions, no helpers — e.g. the first rotation after
    // an insert-only warmup): ground truth is exactly the G' edge list
    // with multiplicity one, so the verify is a straight comparison.
    if (mult_entries.size() != image.gprime_edges.size())
      return fail("MULT section disagrees with the rebuild");
    for (size_t i = 0; i < mult_entries.size(); ++i) {
      const auto& [eu, ev] = image.gprime_edges[i];
      if (mult_entries[i].first !=
              slot_key(static_cast<NodeId>(eu), static_cast<NodeId>(ev)) ||
          mult_entries[i].second != 1)
        return fail("MULT section disagrees with the rebuild");
    }
  } else {
    const auto& gp = image.gprime_edges;
    size_t ei = 0;
    size_t li = 0;
    auto next_alive_edge_key = [&]() -> uint64_t {
      while (ei < gp.size()) {
        const auto& [eu, ev] = gp[ei];
        if (core.procs_[eu].alive && core.procs_[ev].alive)
          return slot_key(static_cast<NodeId>(eu), static_cast<NodeId>(ev));
        ++ei;
      }
      return 0;  // exhausted; never a real key (low word of a key is v >= 1)
    };
    for (const auto& [key, count] : mult_entries) {
      int64_t derived = 0;
      while (next_alive_edge_key() == key) {
        ++derived;
        ++ei;
      }
      while (li < link_keys.size() && link_keys[li] == key) {
        ++derived;
        ++li;
      }
      if (derived != count) return fail("MULT section disagrees with the rebuild");
    }
    if (next_alive_edge_key() != 0 || li != link_keys.size())
      return fail("MULT section disagrees with the rebuild");
  }

  // Build the healed image G from the now-verified MULT section: an edge
  // exists iff its multiplicity is positive. When nobody is dead the MULT
  // keys equal the G' edge set (just proven above), so G is a straight
  // copy of G' — pool and all — instead of a rebuild.
  if (image.dead.empty() && mult_entries.size() == image.gprime_edges.size()) {
    core.g_ = core.gprime_;
  } else {
    core.g_ = Graph(static_cast<int>(capacity));
    for (uint32_t v : image.dead) core.g_.remove_node(static_cast<NodeId>(v));
    std::vector<std::pair<uint32_t, uint32_t>> image_pairs;
    image_pairs.reserve(mult_entries.size());
    for (const auto& [key, count] : mult_entries)
      image_pairs.emplace_back(static_cast<uint32_t>(key >> 32),
                               static_cast<uint32_t>(key & 0xFFFFFFFFu));
    core.g_.add_edges_bulk(image_pairs);
  }
  core.image_multiplicity_.load(mult_entries);

  core.epoch_ = image.epoch;
  *out = std::move(core);
  return true;
}

bool StructuralCore::apply_wave_delta(const snap::WaveDelta& delta,
                                      std::string* error) {
  auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };

  // 1. Insertions, in stream order: the delta pins each id, so replay must
  //    land on exactly the same consecutive ids the live run allocated.
  for (const snap::WaveDelta::Insert& ins : delta.inserts) {
    if (ins.id != static_cast<uint32_t>(gprime_.node_capacity()))
      return fail("insert id out of sequence");
    std::vector<NodeId> nb;
    nb.reserve(ins.neighbors.size());
    for (uint32_t y : ins.neighbors) {
      if (y >= ins.id) return fail("insert neighbor out of range");
      auto id = static_cast<NodeId>(y);
      if (!g_.is_alive(id)) return fail("insert neighbor is dead");
      nb.push_back(id);
    }
    std::vector<NodeId> dedup = nb;
    std::sort(dedup.begin(), dedup.end());
    if (std::adjacent_find(dedup.begin(), dedup.end()) != dedup.end())
      return fail("duplicate insert neighbor");
    insert_node(nb);
  }

  // 2. Forest: grow to the post-commit arena, overwrite the touched rows
  //    with their final values, settle the live count.
  const NodeId capacity = gprime_.node_capacity();
  if (delta.arena_size_after < static_cast<uint64_t>(forest_.arena_size()) ||
      delta.arena_size_after > static_cast<uint64_t>(INT32_MAX))
    return fail("arena size regressed or overflows");
  const auto arena_after = static_cast<VNodeId>(delta.arena_size_after);
  forest_.restore_grow(arena_after);
  for (const snap::WaveDelta::Row& rec : delta.rows) {
    if (rec.handle >= delta.arena_size_after) return fail("row handle out of range");
    const snap::VRow& r = rec.row;
    VirtualForest::VNode n;
    n.owner = r.owner;
    n.other = r.other;
    n.parent = r.parent;
    n.left = r.left;
    n.right = r.right;
    n.rep = r.rep;
    n.height = r.height;
    n.leaf_count = r.leaf_count;
    n.is_leaf = r.is_leaf;
    n.alive = r.alive;
    if (n.alive) {
      if (n.owner < 0 || n.owner >= capacity)
        return fail("row owner out of range");
      if (n.other < 0 || n.other >= capacity)
        return fail("row far endpoint out of range");
      for (VNodeId l : {n.parent, n.left, n.right})
        if (l != kNoVNode && (l < 0 || l >= arena_after))
          return fail("row link out of range");
      if (n.rep != kNoVNode && (n.rep < 0 || n.rep >= arena_after))
        return fail("row representative out of range");
    }
    forest_.restore_row(static_cast<VNodeId>(rec.handle), n);
  }
  if (delta.forest_live_after < 0 ||
      delta.forest_live_after > static_cast<int64_t>(delta.arena_size_after))
    return fail("forest live count out of range");
  forest_.restore_live_count(static_cast<int>(delta.forest_live_after));

  // 3. Multiplicities (final values), flipping the healed image's edges on
  //    present/absent transitions. Victims are still alive here, exactly as
  //    they were when the live wave dropped their edges to zero.
  for (const snap::WaveDelta::MultOp& m : delta.mult) {
    if (m.u >= m.v || m.v >= static_cast<uint32_t>(capacity) || m.count < 0)
      return fail("malformed multiplicity record");
    auto u = static_cast<NodeId>(m.u);
    auto v = static_cast<NodeId>(m.v);
    const uint64_t key = slot_key(u, v);
    const bool had = image_multiplicity_.count(key) > 0;
    const bool has = m.count > 0;
    image_multiplicity_.set_count(key, m.count);
    if (has && !had) {
      if (!g_.is_alive(u) || !g_.is_alive(v))
        return fail("image edge incident to a dead processor");
      if (!g_.add_edge(u, v)) return fail("image bookkeeping diverged (add)");
    } else if (!has && had) {
      if (!g_.remove_edge(u, v)) return fail("image bookkeeping diverged (remove)");
    }
  }

  // 4. Victims: tombstone, wipe their slot tables wholesale (mirrors
  //    finish_break — their per-slot erases are implicit).
  for (uint32_t vv : delta.victims) {
    if (vv >= static_cast<uint32_t>(capacity)) return fail("victim out of range");
    auto v = static_cast<NodeId>(vv);
    if (!g_.is_alive(v)) return fail("victim already dead");
    if (g_.degree(v) != 0) return fail("victim still has image edges");
    procs_[static_cast<size_t>(v)].alive = false;
    slots_.clear(v);
    g_.remove_node(v);
  }

  // 5. Surviving slots (final values; present == false erases).
  for (const snap::WaveDelta::SlotOp& op : delta.slots) {
    if (op.owner >= static_cast<uint32_t>(capacity) ||
        op.other >= static_cast<uint32_t>(capacity))
      return fail("slot key out of range");
    auto owner = static_cast<NodeId>(op.owner);
    auto other = static_cast<NodeId>(op.other);
    if (!op.present) {
      if (slots_.find(owner, other) != nullptr) slots_.erase(owner, other);
      continue;
    }
    if (!g_.is_alive(owner)) return fail("slot on a dead processor");
    if (op.leaf < 0 || op.leaf >= arena_after ||
        (op.helper != kNoVNode && (op.helper < 0 || op.helper >= arena_after)))
      return fail("slot handle out of range");
    SlotTable::Entry& s = slots_.ensure(owner, other);
    s.leaf = op.leaf;
    s.helper = op.helper;
  }

  epoch_ = delta.epoch_after;
  return true;
}

void StructuralCore::rebuild_for_recovery(const std::vector<uint8_t>& keep) {
  ++epoch_;  // corrupted-state surgery stales any outstanding plan
  const NodeId capacity = gprime_.node_capacity();

  // 1. Forest: tombstone everything outside the kept set. Kept rows must be
  //    alive and closed under links — the stabilizer's condemnation closure
  //    keeps whole components or nothing.
  std::vector<VirtualForest::VNode> rows = forest_.dump();
  FG_CHECK_MSG(keep.size() == rows.size(), "keep mask must cover the arena");
  for (size_t h = 0; h < rows.size(); ++h) {
    if (keep[h]) {
      FG_CHECK_MSG(rows[h].alive, "cannot keep a tombstoned forest row");
      for (VNodeId l : {rows[h].parent, rows[h].left, rows[h].right})
        FG_CHECK_MSG(l == kNoVNode ||
                         (l >= 0 && static_cast<size_t>(l) < rows.size() &&
                          keep[static_cast<size_t>(l)] != 0),
                     "kept forest row links outside the kept set");
      continue;
    }
    rows[h].alive = false;
    rows[h].parent = rows[h].left = rows[h].right = kNoVNode;
  }
  forest_ = VirtualForest::from_dump(std::move(rows));

  // 2. Slot table from scratch: exactly the kept rows' registrations.
  slots_ = SlotTable{};
  slots_.resize(static_cast<size_t>(capacity));

  // 3. Healed image from ground truth: alive-alive G' edges plus the kept
  //    parent links, with multiplicities recounted (same rebuild as load()).
  g_ = Graph{};
  for (NodeId v = 0; v < capacity; ++v) g_.add_node();
  for (NodeId v = 0; v < capacity; ++v)
    if (!procs_[static_cast<size_t>(v)].alive) g_.remove_node(v);
  image_multiplicity_ = util::FlatCountMap{};
  image_multiplicity_.reserve(static_cast<size_t>(gprime_.edge_count()));
  for (NodeId v = 0; v < capacity; ++v) {
    if (!procs_[static_cast<size_t>(v)].alive) continue;
    for (NodeId w : gprime_.neighbors(v))
      if (v < w && procs_[static_cast<size_t>(w)].alive) add_image_edge(v, w);
  }
  const auto& nodes = forest_.dump();
  for (VNodeId h = 0; h < static_cast<VNodeId>(nodes.size()); ++h) {
    const auto& n = nodes[static_cast<size_t>(h)];
    if (!n.alive) continue;
    SlotTable::Entry& s = slots_.ensure(n.owner, n.other);
    if (n.is_leaf) {
      FG_CHECK_MSG(s.leaf == kNoVNode, "kept rows double-book a slot leaf");
      s.leaf = h;
    } else {
      FG_CHECK_MSG(s.helper == kNoVNode, "kept rows double-book a slot helper");
      s.helper = h;
    }
    if (n.parent != kNoVNode)
      add_image_edge(n.owner, nodes[static_cast<size_t>(n.parent)].owner);
  }
}

void StructuralCore::inject_vnode_row(VNodeId h, const VirtualForest::VNode& row) {
  ++epoch_;
  std::vector<VirtualForest::VNode> rows = forest_.dump();
  FG_CHECK(h >= 0 && static_cast<size_t>(h) < rows.size());
  rows[static_cast<size_t>(h)] = row;
  forest_ = VirtualForest::from_dump(std::move(rows));
}

void StructuralCore::inject_slot(NodeId owner, NodeId other, VNodeId leaf,
                                 VNodeId helper) {
  ++epoch_;
  SlotTable::Entry& s = slots_.ensure(owner, other);
  s.leaf = leaf;
  s.helper = helper;
}

void StructuralCore::inject_erase_slot(NodeId owner, NodeId other) {
  ++epoch_;
  if (slots_.find(owner, other) != nullptr) slots_.erase(owner, other);
}

void StructuralCore::inject_image_edge_flip(NodeId u, NodeId v) {
  ++epoch_;
  if (g_.has_edge(u, v))
    g_.remove_edge(u, v);
  else
    g_.add_edge(u, v);
}

void StructuralCore::inject_multiplicity_bump(NodeId u, NodeId v) {
  ++epoch_;
  image_multiplicity_.increment(edge_key(u, v));
}

void StructuralCore::validate() const {
  // --- I1: slot consistency.
  for (NodeId u = 0; u < static_cast<NodeId>(procs_.size()); ++u) {
    const Proc& p = procs_[static_cast<size_t>(u)];
    FG_CHECK(p.alive == g_.is_alive(u));
    if (!p.alive) {
      FG_CHECK(slots_.count(u) == 0);
      continue;
    }
    for (const SlotTable::Entry& slot : slots_.entries(u)) {
      const NodeId other = slot.other;
      FG_CHECK_MSG(gprime_.has_edge(u, other), "slot without a G' edge");
      FG_CHECK_MSG(!g_.is_alive(other), "slot for an alive neighbor");
      FG_CHECK(slot.leaf != kNoVNode);  // helper implies leaf, leaf tracks dead edge
      const auto& leaf = forest_.node(slot.leaf);
      FG_CHECK(leaf.is_leaf && leaf.owner == u && leaf.other == other);
      if (slot.helper != kNoVNode) {
        const auto& h = forest_.node(slot.helper);
        FG_CHECK(!h.is_leaf && h.owner == u && h.other == other);
        // I4 (Lemma 3 corollary): the helper is an ancestor of its leaf.
        FG_CHECK_MSG(forest_.is_ancestor(slot.helper, slot.leaf),
                     "helper is not an ancestor of its real node");
      }
    }
    // Every dead G' neighbor must have a leaf slot.
    for (NodeId w : gprime_.neighbors(u))
      if (!g_.is_alive(w))
        FG_CHECK_MSG(slots_.find(u, w) != nullptr, "missing real node for dead edge");
  }

  // --- I2 + I3: forest structure, haft property, representative invariant.
  std::vector<VNodeId> seen_roots;
  for (NodeId u = 0; u < static_cast<NodeId>(procs_.size()); ++u)
    for (const SlotTable::Entry& slot : slots_.entries(u))
      for (VNodeId h : {slot.leaf, slot.helper})
        if (h != kNoVNode) seen_roots.push_back(forest_.root_of(h));
  std::sort(seen_roots.begin(), seen_roots.end());
  seen_roots.erase(std::unique(seen_roots.begin(), seen_roots.end()), seen_roots.end());
  for (VNodeId r : seen_roots) {
    FG_CHECK_MSG(forest_.valid_haft(r), "RT is not a haft");
    // Representative invariant on every internal node of the RT.
    for (VNodeId x : forest_.subtree_of(r)) {
      const auto& n = forest_.node(x);
      if (n.is_leaf) continue;
      int free_leaves = 0;
      VNodeId free_leaf = kNoVNode;
      for (VNodeId leaf : forest_.leaves_of(x)) {
        const auto& ln = forest_.node(leaf);
        const SlotTable::Entry* slot = slots_.find(ln.owner, ln.other);
        FG_CHECK(slot != nullptr);
        VNodeId helper = slot->helper;
        bool has_helper_inside = helper != kNoVNode && forest_.is_ancestor(x, helper);
        if (!has_helper_inside) {
          ++free_leaves;
          free_leaf = leaf;
        }
      }
      FG_CHECK_MSG(free_leaves == 1, "representative invariant violated (count)");
      FG_CHECK_MSG(free_leaf == n.rep, "representative invariant violated (identity)");
    }
  }

  // --- I5: the image graph equals a from-scratch rebuild.
  Graph rebuilt;
  for (NodeId u = 0; u < g_.node_capacity(); ++u) rebuilt.add_node();
  for (NodeId u = 0; u < g_.node_capacity(); ++u)
    if (!g_.is_alive(u)) rebuilt.remove_node(u);
  for (NodeId u = 0; u < gprime_.node_capacity(); ++u) {
    if (!g_.is_alive(u)) continue;
    for (NodeId w : gprime_.neighbors(u))
      if (u < w && g_.is_alive(w)) rebuilt.add_edge(u, w);
  }
  for (VNodeId r : seen_roots) {
    for (VNodeId x : forest_.subtree_of(r)) {
      const auto& n = forest_.node(x);
      if (n.parent == kNoVNode) continue;
      NodeId a = n.owner;
      NodeId b = forest_.node(n.parent).owner;
      if (a != b && !rebuilt.has_edge(a, b)) rebuilt.add_edge(a, b);
    }
  }
  FG_CHECK_MSG(g_.same_topology(rebuilt), "image graph diverged from rebuild");
}

}  // namespace fg::core
