#include "fg/core/structural_core.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace fg::core {

StructuralCore::StructuralCore(const Graph& g0) : gprime_(g0), g_(g0) {
  procs_.resize(static_cast<size_t>(g0.node_capacity()));
  for (NodeId v = 0; v < g0.node_capacity(); ++v) {
    FG_CHECK_MSG(g0.is_alive(v), "initial graph must have no tombstones");
    for (NodeId w : g0.neighbors(v))
      if (v < w) ++image_multiplicity_[edge_key(v, w)];
  }
}

uint64_t StructuralCore::edge_key(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return slot_key(u, v);
}

void StructuralCore::add_image_edge(NodeId u, NodeId v) {
  if (u == v) return;  // homomorphism collapses same-processor virtual edges
  int& m = image_multiplicity_[edge_key(u, v)];
  if (++m == 1) g_.add_edge(u, v);
}

void StructuralCore::remove_image_edge(NodeId u, NodeId v) {
  if (u == v) return;
  auto it = image_multiplicity_.find(edge_key(u, v));
  FG_CHECK_MSG(it != image_multiplicity_.end() && it->second > 0,
               "removing an image edge that is not present");
  if (--it->second == 0) {
    image_multiplicity_.erase(it);
    g_.remove_edge(u, v);
  }
}

NodeId StructuralCore::insert_node(std::span<const NodeId> neighbors) {
  NodeId id = gprime_.add_node();
  NodeId id2 = g_.add_node();
  FG_CHECK(id == id2);
  procs_.emplace_back();
  std::unordered_set<NodeId> seen;
  for (NodeId y : neighbors) {
    FG_CHECK_MSG(g_.is_alive(y), "insertion neighbor must be alive");
    FG_CHECK_MSG(seen.insert(y).second, "duplicate insertion neighbor");
    gprime_.add_edge(id, y);
    add_image_edge(id, y);
  }
  return id;
}

std::vector<VNodeId> StructuralCore::begin_deletion(
    std::span<const NodeId> victims, RepairObserver* observer) {
  last_repair_ = RepairStats{};
  FG_CHECK_MSG(!victims.empty(), "empty deletion batch");
  std::unordered_set<NodeId> victim_set;
  victim_set.reserve(victims.size());
  for (NodeId v : victims) {
    FG_CHECK_MSG(g_.is_alive(v), "deleting a dead or unknown processor");
    FG_CHECK_MSG(victim_set.insert(v).second, "duplicate victim in batch");
    last_repair_.deleted_degree_gprime += gprime_.degree(v);
  }

  // 1. The virtual nodes of the deleted processors: one real node per edge
  //    to an already-deleted neighbor, plus every helper they simulate.
  //    (A victim never has a slot keyed by another victim: slots only exist
  //    for neighbors that were already dead before this repair.)
  std::vector<VNodeId> dead_vnodes;
  for (NodeId v : victims) {
    for (const auto& [other, slot] : procs_[static_cast<size_t>(v)].slots) {
      if (slot.leaf != kNoVNode) dead_vnodes.push_back(slot.leaf);
      if (slot.helper != kNoVNode) dead_vnodes.push_back(slot.helper);
    }
  }

  // 2. The RTs broken by this repair. Large batches can break thousands of
  // RTs, so dedup must not be linear per vnode.
  std::vector<VNodeId> roots;
  for (VNodeId h : dead_vnodes) roots.push_back(forest_.root_of(h));
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  last_repair_.affected_rts = static_cast<int>(roots.size());

  // Membership is only ever tested on dirty nodes, so a set of the dead
  // vnodes keeps the repair O(dirty region), not O(forest arena).
  std::unordered_set<VNodeId> is_dead(dead_vnodes.begin(), dead_vnodes.end());

  // The dirty region: the dead vnodes and all their ancestors. A node is
  // clean — its subtree contains no dead vnode — iff it is not dirty, so
  // marking the ancestor chains (stopping at the first already-marked node)
  // replaces the full-subtree clean() sweep with O(dead * depth) work.
  std::unordered_set<VNodeId> dirty;
  for (VNodeId h : dead_vnodes) {
    VNodeId x = h;
    while (x != kNoVNode && dirty.insert(x).second) x = forest_.node(x).parent;
  }

  // 3. Break each affected RT into its maximal clean perfect subtrees,
  //    discarding dead and red nodes (the Strip of Section 4.1.1 and its
  //    fragment variant of Figure 4).
  std::vector<VNodeId> pieces;
  for (VNodeId r : roots) collect_pieces(r, is_dead, dirty, observer, &pieces);

  // 4. Surviving direct neighbors lose their edge to the victim and
  //    contribute a fresh real node (a trivial one-node RT) for the edge
  //    slot (y, v). An edge between two victims loses its image edge but
  //    spawns no real node: both endpoints die, so nobody survives to
  //    simulate one (exactly the state sequential deletions converge to).
  for (NodeId v : victims) {
    for (NodeId y : gprime_.neighbors(v)) {
      if (!g_.is_alive(y)) continue;
      if (victim_set.contains(y)) {
        if (v < y) remove_image_edge(v, y);
        continue;
      }
      remove_image_edge(v, y);
      VNodeId leaf = forest_.make_leaf(y, v);
      Slot& s = procs_[static_cast<size_t>(y)].slots[v];
      FG_CHECK(s.leaf == kNoVNode && s.helper == kNoVNode);
      s.leaf = leaf;
      if (observer) observer->on_piece(leaf, y, kInvalidNode);
      pieces.push_back(leaf);
      ++last_repair_.new_leaves;
    }
  }

  // 5. The processors themselves die. All of their image edges must be gone.
  for (NodeId v : victims) {
    procs_[static_cast<size_t>(v)].alive = false;
    procs_[static_cast<size_t>(v)].slots.clear();
    FG_CHECK_MSG(g_.degree(v) == 0, "image bookkeeping left edges on a deleted node");
    g_.remove_node(v);
  }

  // 6. The caller merges everything into the single new RT (Section 4.1.2).
  last_repair_.pieces = static_cast<int>(pieces.size());
  return pieces;
}

void StructuralCore::collect_pieces(VNodeId root,
                                    const std::unordered_set<VNodeId>& is_dead_vnode,
                                    const std::unordered_set<VNodeId>& dirty,
                                    RepairObserver* observer,
                                    std::vector<VNodeId>* out) {
  auto dead = [&](VNodeId h) { return is_dead_vnode.contains(h); };
  auto parent_owner_of = [&](VNodeId h) {
    VNodeId p = forest_.node(h).parent;
    return p == kNoVNode ? kInvalidNode : forest_.node(p).owner;
  };
  FG_CHECK_MSG(dirty.contains(root), "collecting from an unbroken RT");

  // Explicit worklist, left child before right child before the node itself
  // — the same order as the natural recursion, so the piece sequence (and
  // any observer's message sequence) is unchanged. Only dirty nodes and the
  // right spines of their clean children are ever visited: a clean perfect
  // subtree detaches at first touch, in O(1), without being entered.
  struct Frame {
    VNodeId h;
    VNodeId left = kNoVNode;
    VNodeId right = kNoVNode;
    int stage = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({root});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.stage == 0) {
      if (!dirty.contains(f.h) && forest_.is_perfect(f.h)) {
        // Maximal clean perfect subtree: detach it whole as the next piece.
        if (observer)
          observer->on_piece(f.h, forest_.node(f.h).owner, parent_owner_of(f.h));
        detach_vnode(f.h);
        out->push_back(f.h);
        stack.pop_back();
        continue;
      }
      // Dead, red, or clean-but-imperfect: decompose. Capture the child
      // links now — removal below clears them.
      const auto& n = forest_.node(f.h);
      f.left = n.left;
      f.right = n.right;
      f.stage = 1;
      if (f.left != kNoVNode) stack.push_back({f.left});
    } else if (f.stage == 1) {
      f.stage = 2;
      if (f.right != kNoVNode) stack.push_back({f.right});
    } else {
      if (observer)
        observer->on_teardown(f.h, forest_.node(f.h).owner, parent_owner_of(f.h));
      if (!dead(f.h)) ++last_repair_.helpers_removed;  // red helper
      remove_vnode(f.h);
      stack.pop_back();
    }
  }
}

void StructuralCore::detach_vnode(VNodeId h) {
  const auto& n = forest_.node(h);
  if (n.parent == kNoVNode) return;
  remove_image_edge(n.owner, forest_.node(n.parent).owner);
  forest_.unlink_from_parent(h);
}

void StructuralCore::remove_vnode(VNodeId h) {
  const auto& n = forest_.node(h);
  NodeId owner = n.owner;
  NodeId other = n.other;
  bool leaf = n.is_leaf;
  detach_vnode(h);
  forest_.remove(h);
  auto& proc = procs_[static_cast<size_t>(owner)];
  if (!proc.alive) return;  // a victim's slots are wiped wholesale
  auto it = proc.slots.find(other);
  FG_CHECK(it != proc.slots.end());
  if (leaf) {
    FG_CHECK(it->second.leaf == h);
    it->second.leaf = kNoVNode;
  } else {
    FG_CHECK(it->second.helper == h);
    it->second.helper = kNoVNode;
  }
  if (it->second.leaf == kNoVNode && it->second.helper == kNoVNode) proc.slots.erase(it);
}

haft::PieceInfo StructuralCore::piece_info(VNodeId root) const {
  const auto& n = forest_.node(root);
  FG_CHECK(forest_.is_perfect(root));
  const auto& rep = forest_.node(n.rep);
  return {n.leaf_count, slot_key(rep.owner, rep.other)};
}

VNodeId StructuralCore::join_pieces(VNodeId left, VNodeId right) {
  // Representative mechanism (Algorithm A.9): the left tree's representative
  // simulates the new helper; the merged root inherits the right tree's
  // representative. (Copy fields before make_helper: it may grow the arena.)
  const auto& rep = forest_.node(forest_.node(left).rep);
  NodeId rep_owner = rep.owner;
  NodeId rep_other = rep.other;
  NodeId left_owner = forest_.node(left).owner;
  NodeId right_owner = forest_.node(right).owner;
  VNodeId h = forest_.make_helper(rep_owner, rep_other, left, right);
  Slot& s = procs_[static_cast<size_t>(rep_owner)].slots[rep_other];
  FG_CHECK_MSG(s.helper == kNoVNode, "representative already simulates a helper");
  s.helper = h;
  add_image_edge(rep_owner, left_owner);
  add_image_edge(rep_owner, right_owner);
  ++last_repair_.helpers_created;
  return h;
}

void StructuralCore::finish_repair(VNodeId final_root) {
  last_repair_.final_rt_leaves = forest_.node(final_root).leaf_count;
}

VNodeId StructuralCore::merge_pieces(std::vector<VNodeId> pieces) {
  FG_CHECK(!pieces.empty());
  if (pieces.size() == 1) {
    finish_repair(pieces.front());
    return pieces.front();
  }
  std::vector<haft::PieceInfo> infos;
  infos.reserve(pieces.size());
  for (VNodeId h : pieces) infos.push_back(piece_info(h));
  auto plan = haft::merge_plan(std::move(infos));
  for (const auto& step : plan) {
    VNodeId l = pieces[static_cast<size_t>(step.left)];
    VNodeId r = pieces[static_cast<size_t>(step.right)];
    VNodeId h = join_pieces(l, r);
    FG_CHECK(static_cast<int>(pieces.size()) == step.result);
    pieces.push_back(h);
  }
  finish_repair(pieces.back());
  return pieces.back();
}

int StructuralCore::helper_count(NodeId v) const {
  FG_CHECK(v >= 0 && static_cast<size_t>(v) < procs_.size());
  int count = 0;
  for (const auto& [other, slot] : procs_[static_cast<size_t>(v)].slots)
    if (slot.helper != kNoVNode) ++count;
  return count;
}

void StructuralCore::save(std::ostream& os) const {
  os << "FGv1\n";
  os << "capacity " << gprime_.node_capacity() << '\n';
  os << "dead";
  for (NodeId v = 0; v < gprime_.node_capacity(); ++v)
    if (!g_.is_alive(v)) os << ' ' << v;
  os << '\n';
  os << "edges " << gprime_.edge_count() << '\n';
  for (NodeId v = 0; v < gprime_.node_capacity(); ++v)
    for (NodeId w : gprime_.neighbors(v))
      if (v < w) os << v << ' ' << w << '\n';
  const auto& arena = forest_.dump();
  os << "vnodes " << arena.size() << '\n';
  for (const auto& n : arena)
    os << n.alive << ' ' << n.is_leaf << ' ' << n.owner << ' ' << n.other << ' '
       << n.parent << ' ' << n.left << ' ' << n.right << ' ' << n.height << ' '
       << n.leaf_count << ' ' << n.rep << '\n';
  os << "end\n";
}

StructuralCore StructuralCore::load(std::istream& is) {
  auto expect = [&is](const char* token) {
    std::string word;
    FG_CHECK_MSG(static_cast<bool>(is >> word) && word == token, "malformed checkpoint");
  };

  StructuralCore core;
  expect("FGv1");
  expect("capacity");
  int capacity = 0;
  FG_CHECK(static_cast<bool>(is >> capacity) && capacity >= 0);
  for (int i = 0; i < capacity; ++i) {
    core.gprime_.add_node();
    core.g_.add_node();
  }
  core.procs_.resize(static_cast<size_t>(capacity));

  expect("dead");
  {
    std::string rest;
    std::getline(is, rest);
    std::istringstream ls(rest);
    NodeId v;
    while (ls >> v) {
      core.g_.remove_node(v);
      core.procs_[static_cast<size_t>(v)].alive = false;
    }
  }

  expect("edges");
  int64_t edges = 0;
  FG_CHECK(static_cast<bool>(is >> edges) && edges >= 0);
  for (int64_t i = 0; i < edges; ++i) {
    NodeId u = kInvalidNode, w = kInvalidNode;
    FG_CHECK(static_cast<bool>(is >> u >> w));
    core.gprime_.add_edge(u, w);
    if (core.g_.is_alive(u) && core.g_.is_alive(w)) {
      ++core.image_multiplicity_[edge_key(u, w)];
      core.g_.add_edge(u, w);
    }
  }

  expect("vnodes");
  size_t arena_size = 0;
  FG_CHECK(static_cast<bool>(is >> arena_size));
  std::vector<VirtualForest::VNode> arena(arena_size);
  for (auto& n : arena) {
    FG_CHECK(static_cast<bool>(is >> n.alive >> n.is_leaf >> n.owner >> n.other >>
                               n.parent >> n.left >> n.right >> n.height >> n.leaf_count >>
                               n.rep));
  }
  expect("end");
  core.forest_ = VirtualForest::from_dump(std::move(arena));

  // Rebuild the derived state: slot table and the virtual part of the image.
  const auto& nodes = core.forest_.dump();
  for (VNodeId h = 0; h < static_cast<VNodeId>(nodes.size()); ++h) {
    const auto& n = nodes[static_cast<size_t>(h)];
    if (!n.alive) continue;
    Slot& s = core.procs_[static_cast<size_t>(n.owner)].slots[n.other];
    if (n.is_leaf) {
      FG_CHECK(s.leaf == kNoVNode);
      s.leaf = h;
    } else {
      FG_CHECK(s.helper == kNoVNode);
      s.helper = h;
    }
    if (n.parent != kNoVNode) core.add_image_edge(n.owner, nodes[static_cast<size_t>(n.parent)].owner);
  }
  return core;
}

void StructuralCore::validate() const {
  // --- I1: slot consistency.
  for (NodeId u = 0; u < static_cast<NodeId>(procs_.size()); ++u) {
    const Proc& p = procs_[static_cast<size_t>(u)];
    FG_CHECK(p.alive == g_.is_alive(u));
    if (!p.alive) {
      FG_CHECK(p.slots.empty());
      continue;
    }
    for (const auto& [other, slot] : p.slots) {
      FG_CHECK_MSG(gprime_.has_edge(u, other), "slot without a G' edge");
      FG_CHECK_MSG(!g_.is_alive(other), "slot for an alive neighbor");
      FG_CHECK(slot.leaf != kNoVNode);  // helper implies leaf, leaf tracks dead edge
      const auto& leaf = forest_.node(slot.leaf);
      FG_CHECK(leaf.is_leaf && leaf.owner == u && leaf.other == other);
      if (slot.helper != kNoVNode) {
        const auto& h = forest_.node(slot.helper);
        FG_CHECK(!h.is_leaf && h.owner == u && h.other == other);
        // I4 (Lemma 3 corollary): the helper is an ancestor of its leaf.
        FG_CHECK_MSG(forest_.is_ancestor(slot.helper, slot.leaf),
                     "helper is not an ancestor of its real node");
      }
    }
    // Every dead G' neighbor must have a leaf slot.
    for (NodeId w : gprime_.neighbors(u))
      if (!g_.is_alive(w)) FG_CHECK_MSG(p.slots.contains(w), "missing real node for dead edge");
  }

  // --- I2 + I3: forest structure, haft property, representative invariant.
  std::unordered_set<VNodeId> seen_roots;
  for (NodeId u = 0; u < static_cast<NodeId>(procs_.size()); ++u) {
    for (const auto& [other, slot] : procs_[static_cast<size_t>(u)].slots) {
      for (VNodeId h : {slot.leaf, slot.helper}) {
        if (h == kNoVNode) continue;
        VNodeId r = forest_.root_of(h);
        if (!seen_roots.insert(r).second) continue;
        FG_CHECK_MSG(forest_.valid_haft(r), "RT is not a haft");
        // Representative invariant on every internal node of the RT.
        for (VNodeId x : forest_.subtree_of(r)) {
          const auto& n = forest_.node(x);
          if (n.is_leaf) continue;
          int free_leaves = 0;
          VNodeId free_leaf = kNoVNode;
          for (VNodeId leaf : forest_.leaves_of(x)) {
            const auto& ln = forest_.node(leaf);
            auto it = procs_[static_cast<size_t>(ln.owner)].slots.find(ln.other);
            FG_CHECK(it != procs_[static_cast<size_t>(ln.owner)].slots.end());
            VNodeId helper = it->second.helper;
            bool has_helper_inside = helper != kNoVNode && forest_.is_ancestor(x, helper);
            if (!has_helper_inside) {
              ++free_leaves;
              free_leaf = leaf;
            }
          }
          FG_CHECK_MSG(free_leaves == 1, "representative invariant violated (count)");
          FG_CHECK_MSG(free_leaf == n.rep, "representative invariant violated (identity)");
        }
      }
    }
  }

  // --- I5: the image graph equals a from-scratch rebuild.
  Graph rebuilt;
  for (NodeId u = 0; u < g_.node_capacity(); ++u) rebuilt.add_node();
  for (NodeId u = 0; u < g_.node_capacity(); ++u)
    if (!g_.is_alive(u)) rebuilt.remove_node(u);
  for (NodeId u = 0; u < gprime_.node_capacity(); ++u) {
    if (!g_.is_alive(u)) continue;
    for (NodeId w : gprime_.neighbors(u))
      if (u < w && g_.is_alive(w)) rebuilt.add_edge(u, w);
  }
  for (VNodeId r : seen_roots) {
    for (VNodeId x : forest_.subtree_of(r)) {
      const auto& n = forest_.node(x);
      if (n.parent == kNoVNode) continue;
      NodeId a = n.owner;
      NodeId b = forest_.node(n.parent).owner;
      if (a != b && !rebuilt.has_edge(a, b)) rebuilt.add_edge(a, b);
    }
  }
  FG_CHECK_MSG(g_.same_topology(rebuilt), "image graph diverged from rebuild");
}

}  // namespace fg::core
