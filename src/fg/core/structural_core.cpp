#include "fg/core/structural_core.h"

#include <algorithm>
#include <chrono>
#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace fg::core {

StructuralCore::StructuralCore(const Graph& g0) : gprime_(g0), g_(g0) {
  procs_.resize(static_cast<size_t>(g0.node_capacity()));
  image_multiplicity_.reserve(static_cast<size_t>(g0.edge_count()));
  for (NodeId v = 0; v < g0.node_capacity(); ++v) {
    FG_CHECK_MSG(g0.is_alive(v), "initial graph must have no tombstones");
    for (NodeId w : g0.neighbors(v))
      if (v < w) image_multiplicity_.increment(edge_key(v, w));
  }
}

uint64_t StructuralCore::edge_key(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return slot_key(u, v);
}

void StructuralCore::add_image_edge(NodeId u, NodeId v) {
  if (u == v) return;  // homomorphism collapses same-processor virtual edges
  if (image_multiplicity_.increment(edge_key(u, v)) == 1) g_.add_edge(u, v);
}

void StructuralCore::remove_image_edge(NodeId u, NodeId v) {
  if (u == v) return;
  if (image_multiplicity_.decrement(edge_key(u, v)) == 0) g_.remove_edge(u, v);
}

NodeId StructuralCore::insert_node(std::span<const NodeId> neighbors) {
  ++epoch_;  // any outstanding plan is stale from here on
  NodeId id = gprime_.add_node();
  NodeId id2 = g_.add_node();
  FG_CHECK(id == id2);
  procs_.emplace_back();
  for (NodeId y : neighbors) {
    FG_CHECK_MSG(g_.is_alive(y), "insertion neighbor must be alive");
    // add_edge rejects an edge that already exists, so a duplicate in the
    // span surfaces here — no side lookup table needed.
    FG_CHECK_MSG(gprime_.add_edge(id, y), "duplicate insertion neighbor");
    add_image_edge(id, y);
  }
  return id;
}

namespace {

/// Deterministic union-find over the wave's victims (indexed by wave
/// position): the representative is always the smallest index, so the
/// partition is independent of the union order.
struct Dsu {
  std::vector<int> parent;
  explicit Dsu(int n) : parent(static_cast<size_t>(n)) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] = parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent[static_cast<size_t>(b)] = a;
  }
};

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

DeletionAnalysis StructuralCore::analyze_deletion(std::span<const NodeId> victims,
                                                  RegionSplit split) const {
  FG_CHECK_MSG(!victims.empty(), "empty deletion batch");
  DeletionAnalysis a;
  a.split = split;
  a.victims.assign(victims.begin(), victims.end());
  const int k = static_cast<int>(victims.size());

  std::unordered_map<NodeId, int> wave_index;
  wave_index.reserve(victims.size());
  a.victim_set.reserve(victims.size());
  for (int i = 0; i < k; ++i) {
    NodeId v = a.victims[static_cast<size_t>(i)];
    FG_CHECK_MSG(g_.is_alive(v), "deleting a dead or unknown processor");
    FG_CHECK_MSG(a.victim_set.insert(v).second, "duplicate victim in batch");
    wave_index[v] = i;
    a.deleted_degree_gprime += gprime_.degree(v);
  }

  // 1. The virtual nodes of the deleted processors — one real node per edge
  //    to an already-deleted neighbor, plus every helper they simulate —
  //    and the region partition. Two victims repair together iff they are
  //    connected through shared RTs or a G' edge: a shared RT means their
  //    debris merges, and a G' edge between two victims must be healed by
  //    a structure spanning *both* neighborhoods or the network could
  //    disconnect. (A victim never has a slot keyed by another victim:
  //    slots only exist for neighbors that were already dead.)
  Dsu dsu(k);
  std::unordered_map<VNodeId, int> root_claim;  // RT root -> first victim index
  for (int i = 0; i < k; ++i) {
    NodeId v = a.victims[static_cast<size_t>(i)];
    for (const auto& [other, slot] : procs_[static_cast<size_t>(v)].slots) {
      for (VNodeId h : {slot.leaf, slot.helper}) {
        if (h == kNoVNode) continue;
        a.dead_vnodes.insert(h);
        auto [it, fresh] = root_claim.try_emplace(forest_.root_of(h), i);
        if (!fresh) dsu.unite(i, it->second);
      }
    }
    for (NodeId y : gprime_.neighbors(v)) {
      auto it = wave_index.find(y);
      if (it != wave_index.end()) dsu.unite(i, it->second);
    }
  }
  if (split == RegionSplit::kGlobal)
    for (int i = 1; i < k; ++i) dsu.unite(0, i);

  // The dirty region: the dead vnodes and all their ancestors. A node is
  // clean — its subtree contains no dead vnode — iff it is not dirty, so
  // marking the ancestor chains (stopping at the first already-marked node)
  // replaces the full-subtree clean() sweep with O(dead * depth) work.
  for (VNodeId h : a.dead_vnodes) {
    VNodeId x = h;
    while (x != kNoVNode && a.dirty.insert(x).second) x = forest_.node(x).parent;
  }

  // 2. Materialize the regions in deterministic commit order: sorted by the
  //    smallest victim id they contain (the shard ordering rule). Victims
  //    keep their wave order within a region; affected roots are sorted
  //    ascending, as the single-RT path always did.
  std::vector<int> rep(static_cast<size_t>(k));
  std::unordered_map<int, NodeId> min_victim;
  for (int i = 0; i < k; ++i) {
    rep[static_cast<size_t>(i)] = dsu.find(i);
    NodeId v = a.victims[static_cast<size_t>(i)];
    auto [it, fresh] = min_victim.try_emplace(rep[static_cast<size_t>(i)], v);
    if (!fresh && v < it->second) it->second = v;
  }
  std::vector<std::pair<NodeId, int>> order;  // (min victim id, rep)
  order.reserve(min_victim.size());
  for (const auto& [r, mv] : min_victim) order.push_back({mv, r});
  std::sort(order.begin(), order.end());
  std::unordered_map<int, int> seed_of_rep;
  for (size_t j = 0; j < order.size(); ++j) seed_of_rep[order[j].second] = static_cast<int>(j);

  a.seeds.resize(order.size());
  for (int i = 0; i < k; ++i)
    a.seeds[static_cast<size_t>(seed_of_rep.at(rep[static_cast<size_t>(i)]))]
        .victims.push_back(a.victims[static_cast<size_t>(i)]);
  for (const auto& [root, i] : root_claim)
    a.seeds[static_cast<size_t>(seed_of_rep.at(dsu.find(i)))].roots.push_back(root);
  for (auto& seed : a.seeds) std::sort(seed.roots.begin(), seed.roots.end());
  return a;
}

void StructuralCore::plan_region(const DeletionAnalysis& analysis, int region,
                                 RegionPlan* out) const {
  const DeletionAnalysis::Seed& seed = analysis.seeds[static_cast<size_t>(region)];
  out->id = region;
  out->victims = seed.victims;
  out->roots = seed.roots;

  // Break-phase script: the Strip of Section 4.1.1 over each affected RT,
  // recorded instead of applied.
  auto t0 = std::chrono::steady_clock::now();
  for (VNodeId r : seed.roots) collect_events(r, analysis, out);

  // Surviving direct neighbors lose their edge to the victim and contribute
  // a fresh real node (a trivial one-node RT) for the edge slot (y, v). An
  // edge between two victims spawns no real node: both endpoints die, so
  // nobody survives to simulate one (exactly the state sequential deletions
  // converge to).
  for (NodeId v : seed.victims) {
    for (NodeId y : gprime_.neighbors(v)) {
      if (!g_.is_alive(y) || analysis.victim_set.contains(y)) continue;
      out->fresh.push_back({y, v});
    }
  }

  // Merge-plan input: detached pieces in event order, then fresh leaves —
  // the same deterministic piece order the single-pass walk emitted.
  out->pieces.reserve(out->events.size() + out->fresh.size());
  for (const RegionPlan::Event& e : out->events)
    if (e.is_piece) out->pieces.push_back(piece_info(e.h));
  for (const RegionPlan::FreshLeaf& f : out->fresh)
    out->pieces.push_back({1, slot_key(f.owner, f.dead)});
  auto t1 = std::chrono::steady_clock::now();

  out->steps = haft::merge_plan(out->pieces);
  auto t2 = std::chrono::steady_clock::now();
  out->collect_ms = ms_between(t0, t1);
  out->merge_ms = ms_between(t1, t2);
}

RepairPlan StructuralCore::plan_deletion(std::span<const NodeId> victims,
                                         RegionSplit split) const {
  auto t0 = std::chrono::steady_clock::now();
  DeletionAnalysis analysis = analyze_deletion(victims, split);
  auto t1 = std::chrono::steady_clock::now();

  RepairPlan plan;
  plan.regions.resize(analysis.seeds.size());
  for (int r = 0; r < static_cast<int>(analysis.seeds.size()); ++r)
    plan_region(analysis, r, &plan.regions[static_cast<size_t>(r)]);

  finalize_plan(analysis, &plan);
  plan.profile.partition_ms = ms_between(t0, t1);
  return plan;
}

void StructuralCore::finalize_plan(const DeletionAnalysis& analysis,
                                   RepairPlan* plan) const {
  plan->split = analysis.split;
  plan->victims = analysis.victims;
  plan->epoch = epoch_;
  std::unordered_map<NodeId, int> region_of;
  // The arena-id reservation: region r's commit allocates exactly its
  // anchor leaves plus one helper per merge step, so contiguous handle
  // ranges follow from region order by prefix sums — any commit schedule
  // lands every vnode at the same handle (contract C4).
  const int arena_start = forest_.arena_size();
  int next_handle = arena_start;
  for (RegionPlan& region : plan->regions) {
    plan->profile.collect_ms += region.collect_ms;
    plan->profile.merge_ms += region.merge_ms;
    for (NodeId v : region.victims) region_of[v] = region.id;
    region.arena_base = next_handle;
    next_handle += static_cast<int>(region.fresh.size() + region.steps.size());
  }
  plan->arena_start = arena_start;
  plan->arena_total = next_handle - arena_start;
  plan->victim_region.clear();
  plan->victim_region.reserve(plan->victims.size());
  for (NodeId v : plan->victims) plan->victim_region.push_back(region_of.at(v));
}

void StructuralCore::collect_events(VNodeId root, const DeletionAnalysis& analysis,
                                    RegionPlan* out) const {
  FG_CHECK_MSG(analysis.dirty.contains(root), "collecting from an unbroken RT");

  // Explicit worklist, left child before right child before the node itself
  // — the same order as the natural recursion, so the piece sequence (and
  // any observer's message sequence) is unchanged. Only dirty nodes and the
  // right spines of their clean children are ever visited: a clean perfect
  // subtree becomes a piece at first touch, in O(1), without being entered.
  // The recorded decisions stay valid at commit time because the commit
  // only clears links and tombstones nodes of this very script — the
  // leaf_count/height fields is_perfect reads are never touched.
  struct Frame {
    VNodeId h;
    VNodeId left = kNoVNode;
    VNodeId right = kNoVNode;
    int stage = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({root});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.stage == 0) {
      if (!analysis.dirty.contains(f.h) && forest_.is_perfect(f.h)) {
        // Maximal clean perfect subtree: the next piece, detached whole.
        out->events.push_back({true, f.h});
        stack.pop_back();
        continue;
      }
      // Dead, red, or clean-but-imperfect: decompose.
      const auto& n = forest_.node(f.h);
      f.left = n.left;
      f.right = n.right;
      f.stage = 1;
      if (f.left != kNoVNode) stack.push_back({f.left});
    } else if (f.stage == 1) {
      f.stage = 2;
      if (f.right != kNoVNode) stack.push_back({f.right});
    } else {
      out->events.push_back({false, f.h});
      if (!analysis.dead_vnodes.contains(f.h)) ++out->red_teardowns;  // red helper
      stack.pop_back();
    }
  }
}

std::vector<std::vector<VNodeId>> StructuralCore::commit_break(const RepairPlan& plan,
                                                               RepairObserver* observer,
                                                               CommitAlloc alloc) {
  // A stale plan — any mutation since planning, even one that left the
  // arena size unchanged (a teardown-only repair) — would replay a script
  // over state it no longer describes; fail loudly instead.
  FG_CHECK_MSG(plan.epoch == epoch_,
               "committing a stale plan: core mutated since planning");
  ++epoch_;
  if (alloc == CommitAlloc::kReserved) {
    FG_CHECK_MSG(plan.arena_start == forest_.arena_size(),
                 "committing a stale plan: arena moved since planning");
    VNodeId base = forest_.reserve_range(plan.arena_total);
    FG_CHECK(base == plan.arena_start);
  }
  last_repair_ = RepairStats{};
  last_repair_.regions = static_cast<int>(plan.regions.size());
  std::unordered_set<NodeId> victim_set;
  victim_set.reserve(plan.victims.size());
  for (NodeId v : plan.victims) {
    FG_CHECK_MSG(g_.is_alive(v), "committing a stale plan: victim already dead");
    victim_set.insert(v);
    last_repair_.deleted_degree_gprime += gprime_.degree(v);
  }
  auto parent_owner_of = [&](VNodeId h) {
    VNodeId p = forest_.node(h).parent;
    return p == kNoVNode ? kInvalidNode : forest_.node(p).owner;
  };

  std::vector<std::vector<VNodeId>> pieces(plan.regions.size());
  for (const RegionPlan& region : plan.regions) {
    if (observer) observer->on_region_begin(region.id);
    std::vector<VNodeId>& out = pieces[static_cast<size_t>(region.id)];
    out.reserve(region.pieces.size());
    last_repair_.affected_rts += static_cast<int>(region.roots.size());

    // Replay the break-phase script: detach pieces, tear down dead and red
    // nodes (children always precede their parent in the script).
    for (const RegionPlan::Event& e : region.events) {
      if (e.is_piece) {
        if (observer)
          observer->on_piece(e.h, forest_.node(e.h).owner, parent_owner_of(e.h));
        detach_vnode(e.h);
        out.push_back(e.h);
      } else {
        if (observer)
          observer->on_teardown(e.h, forest_.node(e.h).owner, parent_owner_of(e.h));
        remove_vnode(e.h);
      }
    }
    last_repair_.helpers_removed += region.red_teardowns;

    // Spawn the anchor leaves and drop the victims' surviving image edges.
    // Under kReserved the j-th fresh leaf lands at its plan-time handle
    // arena_base + j; the region's helpers follow in the same range. The
    // edge drops are batched: multiplicities update inline, but the 1 -> 0
    // transitions collect into the pooled delta buffer and flip in one
    // apply_edge_deltas sweep per region — nothing below reads or adds
    // image edges, so the deferral is invisible (and a hub teardown costs
    // O(degree), not O(degree^2) sorted-list erases).
    delta_scratch_.clear();
    int fresh_at = region.arena_base;
    for (const RegionPlan::FreshLeaf& f : region.fresh) {
      if (image_multiplicity_.decrement(edge_key(f.dead, f.owner)) == 0)
        delta_scratch_.push_back({f.dead, f.owner, EdgeDelta::Op::kRemove});
      VNodeId leaf;
      if (alloc == CommitAlloc::kReserved) {
        leaf = fresh_at++;
        forest_.make_leaf_in(leaf, f.owner, f.dead);
      } else {
        leaf = forest_.make_leaf(f.owner, f.dead);
      }
      Slot& s = procs_[static_cast<size_t>(f.owner)].slots[f.dead];
      FG_CHECK(s.leaf == kNoVNode && s.helper == kNoVNode);
      s.leaf = leaf;
      if (observer) observer->on_piece(leaf, f.owner, kInvalidNode);
      out.push_back(leaf);
      ++last_repair_.new_leaves;
    }

    // Edges between two victims lose their image edge here; both endpoints
    // are in this region (G'-adjacent victims always share one).
    for (NodeId v : region.victims)
      for (NodeId y : gprime_.neighbors(v))
        if (v < y && victim_set.contains(y) &&
            image_multiplicity_.decrement(edge_key(v, y)) == 0)
          delta_scratch_.push_back({v, y, EdgeDelta::Op::kRemove});
    g_.apply_edge_deltas(delta_scratch_);

    last_repair_.pieces += static_cast<int>(out.size());
    FG_CHECK_MSG(out.size() == region.pieces.size(),
                 "committed piece set diverged from the plan");
  }

  // The processors themselves die. All of their image edges must be gone.
  for (NodeId v : plan.victims) {
    procs_[static_cast<size_t>(v)].alive = false;
    procs_[static_cast<size_t>(v)].slots.clear();
    FG_CHECK_MSG(g_.degree(v) == 0, "image bookkeeping left edges on a deleted node");
    g_.remove_node(v);
  }
  return pieces;
}

VNodeId StructuralCore::merge_region(const RegionPlan& region,
                                     std::vector<VNodeId>&& pieces,
                                     MergeEffects* effects) {
  FG_CHECK(pieces.size() == region.pieces.size());
  if (effects) effects->reset();
  if (pieces.empty()) return kNoVNode;
  FG_CHECK_MSG(region.arena_base >= 0, "merge_region requires a reserved plan");
  pieces.reserve(pieces.size() + region.steps.size());
  if (effects) effects->image_edges.reserve(2 * region.steps.size());
  // The region's helpers live right after its fresh leaves in the reserved
  // range; step s constructs handle arena_base + fresh + s. With `effects`
  // set, everything below touches region-local state only — the helper's
  // reserved slot in the pre-grown arena, the children's parent links, and
  // the (existing) slot entry of the representative leaf — which is why
  // disjoint regions can run this concurrently (docs/CONCURRENCY.md, the
  // reservation argument); shared-state writes are recorded, not applied.
  VNodeId next = region.arena_base + static_cast<VNodeId>(region.fresh.size());
  for (const auto& step : region.steps) {
    VNodeId l = pieces[static_cast<size_t>(step.left)];
    VNodeId r = pieces[static_cast<size_t>(step.right)];
    // Representative mechanism (Algorithm A.9): the left tree's
    // representative simulates the new helper; the merged root inherits
    // the right tree's representative.
    const auto& rep = forest_.node(forest_.node(l).rep);
    NodeId rep_owner = rep.owner;
    NodeId rep_other = rep.other;
    NodeId left_owner = forest_.node(l).owner;
    NodeId right_owner = forest_.node(r).owner;
    VNodeId h = forest_.make_helper_in(next++, rep_owner, rep_other, l, r);
    auto& slots = procs_[static_cast<size_t>(rep_owner)].slots;
    auto it = slots.find(rep_other);
    FG_CHECK_MSG(it != slots.end(), "representative leaf has no slot entry");
    FG_CHECK_MSG(it->second.helper == kNoVNode,
                 "representative already simulates a helper");
    it->second.helper = h;
    if (effects) {
      effects->image_edges.push_back({rep_owner, left_owner});
      effects->image_edges.push_back({rep_owner, right_owner});
      ++effects->helpers_created;
    } else {
      add_image_edge(rep_owner, left_owner);
      add_image_edge(rep_owner, right_owner);
      ++last_repair_.helpers_created;
    }
    FG_CHECK(static_cast<int>(pieces.size()) == step.result);
    pieces.push_back(h);
  }
  if (effects)
    effects->root = pieces.back();
  else
    finish_repair(pieces.back());
  return pieces.back();
}

VNodeId StructuralCore::apply_merge_effects(const MergeEffects& effects) {
  // The batched stitch: bump every multiplicity first, collecting only the
  // 0 -> 1 transitions, then flip the image edges in one
  // Graph::apply_edge_deltas pass over the pooled delta buffer.
  delta_scratch_.clear();
  for (const auto& [u, v] : effects.image_edges) {
    if (u == v) continue;  // homomorphism collapses same-processor edges
    if (image_multiplicity_.increment(edge_key(u, v)) == 1)
      delta_scratch_.push_back({u, v, EdgeDelta::Op::kAdd});
  }
  g_.apply_edge_deltas(delta_scratch_);
  last_repair_.helpers_created += effects.helpers_created;
  if (effects.root != kNoVNode) finish_repair(effects.root);
  return effects.root;
}

VNodeId StructuralCore::commit_merge(const RegionPlan& region,
                                     std::vector<VNodeId> pieces) {
  return merge_region(region, std::move(pieces), nullptr);
}

void StructuralCore::check_reservation_settled(const RepairPlan& plan) const {
  FG_CHECK_MSG(forest_.unconstructed_in(plan.arena_start,
                                        plan.arena_start + plan.arena_total) == 0,
               "arena reservation not fully constructed after commit");
}

void StructuralCore::detach_vnode(VNodeId h) {
  const auto& n = forest_.node(h);
  if (n.parent == kNoVNode) return;
  remove_image_edge(n.owner, forest_.node(n.parent).owner);
  forest_.unlink_from_parent(h);
}

void StructuralCore::remove_vnode(VNodeId h) {
  const auto& n = forest_.node(h);
  NodeId owner = n.owner;
  NodeId other = n.other;
  bool leaf = n.is_leaf;
  detach_vnode(h);
  forest_.remove(h);
  auto& proc = procs_[static_cast<size_t>(owner)];
  if (!proc.alive) return;  // a victim's slots are wiped wholesale
  auto it = proc.slots.find(other);
  FG_CHECK(it != proc.slots.end());
  if (leaf) {
    FG_CHECK(it->second.leaf == h);
    it->second.leaf = kNoVNode;
  } else {
    FG_CHECK(it->second.helper == h);
    it->second.helper = kNoVNode;
  }
  if (it->second.leaf == kNoVNode && it->second.helper == kNoVNode) proc.slots.erase(it);
}

haft::PieceInfo StructuralCore::piece_info(VNodeId root) const {
  const auto& n = forest_.node(root);
  FG_CHECK(forest_.is_perfect(root));
  const auto& rep = forest_.node(n.rep);
  return {n.leaf_count, slot_key(rep.owner, rep.other)};
}

VNodeId StructuralCore::join_pieces(VNodeId left, VNodeId right) {
  // Representative mechanism (Algorithm A.9): the left tree's representative
  // simulates the new helper; the merged root inherits the right tree's
  // representative. (Copy fields before make_helper: it may grow the arena.)
  const auto& rep = forest_.node(forest_.node(left).rep);
  NodeId rep_owner = rep.owner;
  NodeId rep_other = rep.other;
  NodeId left_owner = forest_.node(left).owner;
  NodeId right_owner = forest_.node(right).owner;
  VNodeId h = forest_.make_helper(rep_owner, rep_other, left, right);
  Slot& s = procs_[static_cast<size_t>(rep_owner)].slots[rep_other];
  FG_CHECK_MSG(s.helper == kNoVNode, "representative already simulates a helper");
  s.helper = h;
  add_image_edge(rep_owner, left_owner);
  add_image_edge(rep_owner, right_owner);
  ++last_repair_.helpers_created;
  return h;
}

void StructuralCore::finish_repair(VNodeId final_root) {
  last_repair_.final_rt_leaves += forest_.node(final_root).leaf_count;
}

int StructuralCore::helper_count(NodeId v) const {
  FG_CHECK(v >= 0 && static_cast<size_t>(v) < procs_.size());
  int count = 0;
  for (const auto& [other, slot] : procs_[static_cast<size_t>(v)].slots)
    if (slot.helper != kNoVNode) ++count;
  return count;
}

std::vector<VNodeId> StructuralCore::slot_roots(NodeId v) const {
  FG_CHECK(v >= 0 && static_cast<size_t>(v) < procs_.size());
  std::vector<VNodeId> roots;
  for (const auto& [other, slot] : procs_[static_cast<size_t>(v)].slots)
    for (VNodeId h : {slot.leaf, slot.helper})
      if (h != kNoVNode) roots.push_back(forest_.root_of(h));
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  return roots;
}

void StructuralCore::save(std::ostream& os) const {
  os << "FGv1\n";
  os << "capacity " << gprime_.node_capacity() << '\n';
  os << "dead";
  for (NodeId v = 0; v < gprime_.node_capacity(); ++v)
    if (!g_.is_alive(v)) os << ' ' << v;
  os << '\n';
  os << "edges " << gprime_.edge_count() << '\n';
  for (NodeId v = 0; v < gprime_.node_capacity(); ++v)
    for (NodeId w : gprime_.neighbors(v))
      if (v < w) os << v << ' ' << w << '\n';
  const auto& arena = forest_.dump();
  os << "vnodes " << arena.size() << '\n';
  for (const auto& n : arena)
    os << n.alive << ' ' << n.is_leaf << ' ' << n.owner << ' ' << n.other << ' '
       << n.parent << ' ' << n.left << ' ' << n.right << ' ' << n.height << ' '
       << n.leaf_count << ' ' << n.rep << '\n';
  os << "end\n";
}

StructuralCore StructuralCore::load(std::istream& is) {
  auto expect = [&is](const char* token) {
    std::string word;
    FG_CHECK_MSG(static_cast<bool>(is >> word) && word == token, "malformed checkpoint");
  };

  StructuralCore core;
  expect("FGv1");
  expect("capacity");
  int capacity = 0;
  FG_CHECK(static_cast<bool>(is >> capacity) && capacity >= 0);
  for (int i = 0; i < capacity; ++i) {
    core.gprime_.add_node();
    core.g_.add_node();
  }
  core.procs_.resize(static_cast<size_t>(capacity));

  expect("dead");
  {
    std::string rest;
    std::getline(is, rest);
    std::istringstream ls(rest);
    NodeId v;
    while (ls >> v) {
      core.g_.remove_node(v);
      core.procs_[static_cast<size_t>(v)].alive = false;
    }
  }

  expect("edges");
  int64_t edges = 0;
  FG_CHECK(static_cast<bool>(is >> edges) && edges >= 0);
  core.image_multiplicity_.reserve(static_cast<size_t>(edges));
  for (int64_t i = 0; i < edges; ++i) {
    NodeId u = kInvalidNode, w = kInvalidNode;
    FG_CHECK(static_cast<bool>(is >> u >> w));
    core.gprime_.add_edge(u, w);
    if (core.g_.is_alive(u) && core.g_.is_alive(w)) {
      core.image_multiplicity_.increment(edge_key(u, w));
      core.g_.add_edge(u, w);
    }
  }

  expect("vnodes");
  size_t arena_size = 0;
  FG_CHECK(static_cast<bool>(is >> arena_size));
  std::vector<VirtualForest::VNode> arena(arena_size);
  for (auto& n : arena) {
    FG_CHECK(static_cast<bool>(is >> n.alive >> n.is_leaf >> n.owner >> n.other >>
                               n.parent >> n.left >> n.right >> n.height >> n.leaf_count >>
                               n.rep));
  }
  expect("end");
  core.forest_ = VirtualForest::from_dump(std::move(arena));

  // Rebuild the derived state: slot table and the virtual part of the image.
  const auto& nodes = core.forest_.dump();
  for (VNodeId h = 0; h < static_cast<VNodeId>(nodes.size()); ++h) {
    const auto& n = nodes[static_cast<size_t>(h)];
    if (!n.alive) continue;
    Slot& s = core.procs_[static_cast<size_t>(n.owner)].slots[n.other];
    if (n.is_leaf) {
      FG_CHECK(s.leaf == kNoVNode);
      s.leaf = h;
    } else {
      FG_CHECK(s.helper == kNoVNode);
      s.helper = h;
    }
    if (n.parent != kNoVNode) core.add_image_edge(n.owner, nodes[static_cast<size_t>(n.parent)].owner);
  }
  return core;
}

void StructuralCore::validate() const {
  // --- I1: slot consistency.
  for (NodeId u = 0; u < static_cast<NodeId>(procs_.size()); ++u) {
    const Proc& p = procs_[static_cast<size_t>(u)];
    FG_CHECK(p.alive == g_.is_alive(u));
    if (!p.alive) {
      FG_CHECK(p.slots.empty());
      continue;
    }
    for (const auto& [other, slot] : p.slots) {
      FG_CHECK_MSG(gprime_.has_edge(u, other), "slot without a G' edge");
      FG_CHECK_MSG(!g_.is_alive(other), "slot for an alive neighbor");
      FG_CHECK(slot.leaf != kNoVNode);  // helper implies leaf, leaf tracks dead edge
      const auto& leaf = forest_.node(slot.leaf);
      FG_CHECK(leaf.is_leaf && leaf.owner == u && leaf.other == other);
      if (slot.helper != kNoVNode) {
        const auto& h = forest_.node(slot.helper);
        FG_CHECK(!h.is_leaf && h.owner == u && h.other == other);
        // I4 (Lemma 3 corollary): the helper is an ancestor of its leaf.
        FG_CHECK_MSG(forest_.is_ancestor(slot.helper, slot.leaf),
                     "helper is not an ancestor of its real node");
      }
    }
    // Every dead G' neighbor must have a leaf slot.
    for (NodeId w : gprime_.neighbors(u))
      if (!g_.is_alive(w)) FG_CHECK_MSG(p.slots.contains(w), "missing real node for dead edge");
  }

  // --- I2 + I3: forest structure, haft property, representative invariant.
  std::unordered_set<VNodeId> seen_roots;
  for (NodeId u = 0; u < static_cast<NodeId>(procs_.size()); ++u) {
    for (const auto& [other, slot] : procs_[static_cast<size_t>(u)].slots) {
      for (VNodeId h : {slot.leaf, slot.helper}) {
        if (h == kNoVNode) continue;
        VNodeId r = forest_.root_of(h);
        if (!seen_roots.insert(r).second) continue;
        FG_CHECK_MSG(forest_.valid_haft(r), "RT is not a haft");
        // Representative invariant on every internal node of the RT.
        for (VNodeId x : forest_.subtree_of(r)) {
          const auto& n = forest_.node(x);
          if (n.is_leaf) continue;
          int free_leaves = 0;
          VNodeId free_leaf = kNoVNode;
          for (VNodeId leaf : forest_.leaves_of(x)) {
            const auto& ln = forest_.node(leaf);
            auto it = procs_[static_cast<size_t>(ln.owner)].slots.find(ln.other);
            FG_CHECK(it != procs_[static_cast<size_t>(ln.owner)].slots.end());
            VNodeId helper = it->second.helper;
            bool has_helper_inside = helper != kNoVNode && forest_.is_ancestor(x, helper);
            if (!has_helper_inside) {
              ++free_leaves;
              free_leaf = leaf;
            }
          }
          FG_CHECK_MSG(free_leaves == 1, "representative invariant violated (count)");
          FG_CHECK_MSG(free_leaf == n.rep, "representative invariant violated (identity)");
        }
      }
    }
  }

  // --- I5: the image graph equals a from-scratch rebuild.
  Graph rebuilt;
  for (NodeId u = 0; u < g_.node_capacity(); ++u) rebuilt.add_node();
  for (NodeId u = 0; u < g_.node_capacity(); ++u)
    if (!g_.is_alive(u)) rebuilt.remove_node(u);
  for (NodeId u = 0; u < gprime_.node_capacity(); ++u) {
    if (!g_.is_alive(u)) continue;
    for (NodeId w : gprime_.neighbors(u))
      if (u < w && g_.is_alive(w)) rebuilt.add_edge(u, w);
  }
  for (VNodeId r : seen_roots) {
    for (VNodeId x : forest_.subtree_of(r)) {
      const auto& n = forest_.node(x);
      if (n.parent == kNoVNode) continue;
      NodeId a = n.owner;
      NodeId b = forest_.node(n.parent).owner;
      if (a != b && !rebuilt.has_edge(a, b)) rebuilt.add_edge(a, b);
    }
  }
  FG_CHECK_MSG(g_.same_topology(rebuilt), "image graph diverged from rebuild");
}

}  // namespace fg::core
