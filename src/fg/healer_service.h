// Sustained-churn healer service: the long-lived serving loop over the
// sharded plan/commit pipeline (docs/DESIGN.md, "Healer service").
//
// Every layer below this one heals a single deletion wave at a time. The
// paper's model, though, is *continuous* churn: an adversary inserting and
// deleting processors indefinitely while the structure self-heals. The
// HealerService turns the single-wave machinery into that serving loop:
//
//   * It ingests a continuous insert/delete stream (push / run) and chops
//     it into repair waves of `wave_size` deletions. Inserts apply in
//     stream order; deletions accumulate into the next wave.
//   * Planning is SNAPSHOT-BASED: a wave's RepairPlan is computed against
//     the epoch-stamped logical snapshot the plan records
//     (core::RepairPlan::epoch). With overlap enabled, a persistent
//     planner thread computes the plan of wave N+1 while the service
//     retires wave N — certificate checking, stream ingestion, and
//     bookkeeping all overlap the (read-only) planning. The service never
//     mutates the engine while a plan is in flight: ops that arrive
//     meanwhile are buffered and drained, in stream order, after the
//     in-flight wave commits.
//   * Admission is EPOCH-GATED: before committing, the service compares
//     the plan's epoch stamp against the engine's current mutation epoch.
//     A stale plan — any mutation landed between snapshot and admission —
//     is detected and re-planned, never committed (the core would refuse
//     it with a loud FG_CHECK death; the service turns that hard wall
//     into a re-plan + counter). Pipelined and serial execution are
//     byte-identical: checkpoints and certificate bytes are a pure
//     function of the op stream, never of overlap or worker counts
//     (contract C4 extended to the service loop —
//     tests/healer_service_test.cpp).
//   * Certificates are a SAMPLED PRODUCTION GUARDRAIL: every k-th wave
//     (certify_every) emits a per-wave certificate (src/cert,
//     docs/CERTIFICATES.md), which the service re-validates in-process
//     with the first-principles checker — overlapped with the next wave's
//     planning — and surfaces rejections through a service-level alert
//     callback. The sampled stream can also be teed to an ostream for an
//     offline tools/fgcheck audit.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "cert/certificate.h"
#include "fg/forgiving_graph.h"
#include "fg/snapshot_writer.h"
#include "graph/graph.h"
#include "harness/certificate.h"

namespace fg {

/// One operation of a churn stream.
struct ChurnOp {
  enum class Kind { kInsert, kDelete };

  Kind kind = Kind::kDelete;
  NodeId victim = kInvalidNode;    ///< kDelete: the processor to delete.
  std::vector<NodeId> neighbors;   ///< kInsert: attachment points (alive, distinct).

  static ChurnOp Insert(std::vector<NodeId> neighbors) {
    ChurnOp op;
    op.kind = Kind::kInsert;
    op.neighbors = std::move(neighbors);
    return op;
  }
  static ChurnOp Delete(NodeId victim) {
    ChurnOp op;
    op.kind = Kind::kDelete;
    op.victim = victim;
    return op;
  }
};

/// Pull-based op source for HealerService::run. next() fills `*op` and
/// returns true, or returns false when the stream is drained.
class ChurnStream {
 public:
  virtual ~ChurnStream() = default;
  virtual bool next(ChurnOp* op) = 0;
};

/// Replayable vector-backed stream (what the seeded tests use: the same
/// vector fed to the pipelined service and the serial reference must
/// produce byte-identical results).
class VectorChurnStream final : public ChurnStream {
 public:
  explicit VectorChurnStream(std::vector<ChurnOp> ops) : ops_(std::move(ops)) {}

  bool next(ChurnOp* op) override {
    if (pos_ >= ops_.size()) return false;
    *op = ops_[pos_++];
    return true;
  }

 private:
  std::vector<ChurnOp> ops_;
  size_t pos_ = 0;
};

/// Service policy knobs. Every combination of overlap / worker counts is
/// behaviour-identical (C4); the knobs trade wall clock only.
struct HealerConfig {
  /// Deletions per repair wave. The service heals a wave as soon as this
  /// many distinct, still-alive victims accumulated (flush() heals a
  /// partial trailing wave).
  int wave_size = 64;
  /// Certificate guardrail sampling period: every k-th wave (wave indices
  /// 0, k, 2k, ...) is certified and re-checked in-process. 0 disables the
  /// guardrail entirely (no emission cost).
  int certify_every = 0;
  /// Overlap planning of wave N+1 with the retirement of wave N on a
  /// persistent planner thread. Off: plan inline (the serial reference).
  bool overlap = true;
  /// Forwarded to ForgivingGraph::set_shard_workers / set_commit_workers /
  /// set_break_workers.
  int plan_workers = 1;
  int commit_workers = 1;
  int break_workers = 1;
  /// Self-stabilization guardrail sampling period: every k-th wave (wave
  /// indices 0, k, 2k, ...) the service audits the engine against I1-I5
  /// after the commit (fg::Stabilizer). A dirty audit raises the alert
  /// callback with the report summary, then stabilizes in place — the
  /// recovery wave is certified and checked through the same guardrail
  /// path as a sampled deletion wave. 0 disables (no audit cost).
  int audit_every = 0;
  /// Durable snapshots (src/snap; docs/SNAPSHOTS.md): with snapshot_every
  /// > 0 and a non-empty snapshot_path, the service keeps
  /// `<snapshot_path>.base` (the latest base image, replaced atomically
  /// every snapshot_every waves) and `<snapshot_path>.log` (one CRC-framed
  /// delta record per committed wave) crash-consistent on disk.
  /// fg::restore_snapshot + the restoring constructor below resume from
  /// them in O(changes). 0 disables (no recording cost).
  int snapshot_every = 0;
  std::string snapshot_path;
};

/// Service counters and per-wave latency record.
struct HealerStats {
  int64_t ops = 0;              ///< Ops ingested (inserts + deletes, dropped included).
  int64_t inserts = 0;          ///< Insertions applied.
  int64_t deletes = 0;          ///< Deletions healed (committed in some wave).
  int64_t dropped_deletes = 0;  ///< Deletes of already-dead or already-pending victims.
  int64_t waves = 0;            ///< Repair waves committed.
  int64_t stale_replans = 0;    ///< Plans the epoch gate rejected and re-planned.
  int64_t certified_waves = 0;  ///< Waves the guardrail sampled.
  int64_t cert_rejections = 0;  ///< Sampled certificates the checker rejected.
  int64_t audits = 0;           ///< Audit-guardrail passes run (audit_every).
  int64_t audit_violations = 0; ///< Total violations those audits reported.
  int64_t recoveries = 0;       ///< Stabilize passes that rebuilt state.

  /// Per-wave repair latency (milliseconds) as the service loop saw it:
  /// planner stall + admission (re-plan included) + commit. With overlap,
  /// the planning that finished before retirement costs nothing here.
  std::vector<double> wave_ms;
  /// Per-wave planning wall clock (milliseconds), measured where the plan
  /// ran (planner thread or inline).
  std::vector<double> plan_ms;

  /// Percentile over wave_ms (p in [0, 100]; 0 for an empty record).
  double latency_percentile(double p) const;
};

/// The long-running healer loop: continuous churn in, repaired waves out,
/// sampled certificates checked on the side.
class HealerService {
 public:
  /// Alert callback: fired on the service thread when a sampled
  /// certificate fails the in-process check, with the wave index and the
  /// checker's diagnostic.
  using AlertFn = std::function<void(int64_t wave, const std::string& diagnostic)>;
  /// Test seam: fired at admission time, after the plan is available but
  /// before the epoch gate. Runs on the service thread with no plan in
  /// flight, so the hook may mutate the engine — which is exactly how the
  /// stale-plan tests drive a mutation between snapshot and commit.
  using AdmissionHook = std::function<void(int64_t wave)>;

  explicit HealerService(const Graph& g0, HealerConfig config = {});

  /// Resume from a snapshot-restored core (fg::restore_snapshot):
  /// `waves_done` / `ops_done` are the restore's wave count and cursor, so
  /// wave indexing (certify/audit/snapshot sampling) and the resume cursor
  /// continue exactly where the interrupted service stopped — re-pushing
  /// the op stream from `ops_done` reproduces the uninterrupted run
  /// byte for byte (tests/snapshot_test.cpp). With snapshotting configured,
  /// a fresh base is written immediately (the restored log is consumed, not
  /// extended).
  HealerService(core::StructuralCore&& restored, uint64_t waves_done,
                uint64_t ops_done, HealerConfig config = {});

  ~HealerService();

  HealerService(const HealerService&) = delete;
  HealerService& operator=(const HealerService&) = delete;

  /// The engine the service drives. Mutating it while a plan is in flight
  /// is the caller's race to lose — do it only from the admission hook or
  /// when the service is drained (after flush()). The service owns the
  /// engine's certificate sink; don't install your own.
  ForgivingGraph& engine() { return fg_; }
  const ForgivingGraph& engine() const { return fg_; }

  const HealerConfig& config() const { return config_; }
  const HealerStats& stats() const { return stats_; }

  void set_alert(AlertFn alert) { alert_ = std::move(alert); }
  void set_admission_hook(AdmissionHook hook) { admission_hook_ = std::move(hook); }

  /// Tee every sampled certificate to `os` in the canonical text format —
  /// a stream tools/fgcheck re-validates offline (the CI service-loop
  /// audit). nullptr disables.
  void set_certificate_stream(std::ostream* os) { cert_stream_ = os; }

  /// Ingest one op. Inserts apply in stream order; deletes accumulate into
  /// the forming wave (duplicates and dead victims are dropped, counted in
  /// stats().dropped_deletes). A full wave dispatches automatically; with
  /// overlap on, ops pushed while a plan is in flight are buffered and
  /// drained after that wave commits.
  void push(const ChurnOp& op);

  /// Drain the pipeline: retire any in-flight wave, heal the partial
  /// trailing wave, and finish the deferred certificate check. The service
  /// is idle afterwards (and may keep ingesting).
  void flush();

  /// push() every op of `stream`, then flush(). Returns ops ingested.
  int64_t run(ChurnStream& stream);

 private:
  /// One-slot planner pipe: the persistent planner thread computes one
  /// read-only RepairPlan at a time against the (quiescent) engine.
  struct Planner {
    std::thread thread;
    std::mutex mutex;
    std::condition_variable cv;
    enum class State { kIdle, kRequested, kDone, kStop } state = State::kIdle;
    std::vector<NodeId> victims;
    core::RepairPlan plan;
    double plan_ms = 0.0;
  };

  void init();
  void ingest(const ChurnOp& op);
  void dispatch_wave();
  void retire_inflight();
  /// The shared admission path of both modes: test hook, epoch gate (stale
  /// -> re-validate victims, re-plan), sampled certificate emission, commit,
  /// per-wave bookkeeping. `t0` is when the service started waiting on this
  /// wave (what wave_ms measures from).
  void admit_and_commit(std::vector<NodeId> victims, core::RepairPlan plan,
                        int64_t wave, std::chrono::steady_clock::time_point t0);
  void drain_pending();
  void check_pending_certificate();
  void planner_loop();

  ForgivingGraph fg_;
  HealerConfig config_;
  HealerStats stats_;
  AlertFn alert_;
  AdmissionHook admission_hook_;
  std::ostream* cert_stream_ = nullptr;

  /// The wave being formed (victims validated against the live engine).
  std::vector<NodeId> forming_;
  std::unordered_set<NodeId> forming_set_;
  /// Ops buffered while a plan is in flight, in stream order.
  std::vector<ChurnOp> pending_;
  int64_t pending_deletes_ = 0;

  /// In-flight wave (overlap mode): victims handed to the planner.
  bool inflight_ = false;
  std::vector<NodeId> inflight_victims_;
  Planner planner_;

  /// Sampled certificate awaiting its deferred in-process check (runs
  /// overlapped with the next wave's planning).
  std::optional<cert::WaveCertificate> pending_cert_;
  int64_t pending_cert_wave_ = 0;
  harness::CertificateCollector collector_;

  /// Durable-snapshot writer (HealerConfig::snapshot_every), installed as
  /// the core's delta recorder. ingested_ops_ counts ops that fully passed
  /// ingest() — the resume cursor stamped into each wave's delta at
  /// dispatch time (ops buffered behind an in-flight plan are pushed but
  /// not yet ingested, so stats_.ops would over-count).
  std::unique_ptr<SnapshotWriter> snapshot_;
  int64_t ingested_ops_ = 0;
};

}  // namespace fg
