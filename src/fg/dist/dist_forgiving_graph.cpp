#include "fg/dist/dist_forgiving_graph.h"

#include <algorithm>
#include <any>

#include "harness/certificate.h"
#include "util/check.h"

namespace fg::dist {

namespace {

/// Sorted-flat map probe for RegionDag::know (nullptr when absent).
const int* know_find(const std::vector<std::pair<NodeId, int>>& know, NodeId u) {
  auto it = std::lower_bound(
      know.begin(), know.end(), u,
      [](const std::pair<NodeId, int>& e, NodeId v) { return e.first < v; });
  return (it != know.end() && it->first == u) ? &it->second : nullptr;
}

/// Sorted insert-or-update for RegionDag::know.
void know_set(std::vector<std::pair<NodeId, int>>& know, NodeId u, int msg) {
  auto it = std::lower_bound(
      know.begin(), know.end(), u,
      [](const std::pair<NodeId, int>& e, NodeId v) { return e.first < v; });
  if (it != know.end() && it->first == u)
    it->second = msg;
  else
    know.insert(it, {u, msg});
}

}  // namespace

// Every structural mutation below happens inside core::StructuralCore — the
// same code path the centralized engine executes, so in kGlobalPlan mode the
// region partition, the piece order, the ComputeHaft plan, and therefore the
// healed topology are bit-identical to fg::ForgivingGraph by construction
// (the invariant the dist_equivalence and exhaustive_small suites pin down).
// What this file adds is the protocol layer: a DagRecorder observer mirrors
// each repair's structural work into a dependency DAG of messages — one
// independent branch per dirty region — which is replayed through the
// net::Network simulator, where all cost figures come from.

// Mirrors core repair callbacks into teardown/detach messages, bucketed per
// region. The core reports every cross-RT structural change before applying
// it, in deterministic order, so the message sequence is deterministic too.
class DistForgivingGraph::DagRecorder final : public core::RepairObserver {
 public:
  explicit DagRecorder(DistForgivingGraph* d) : d_(d) {}

  /// detach_msg per piece of one region, aligned with the core's per-region
  /// piece order.
  const std::vector<int>& detach_msgs(int region) const {
    return detach_msgs_.at(static_cast<size_t>(region));
  }

  void on_region_begin(int region_id) override {
    FG_CHECK(region_id == static_cast<int>(detach_msgs_.size()));
    detach_msgs_.emplace_back();
  }

  void on_piece(VNodeId /*root*/, NodeId owner, NodeId parent_owner) override {
    int msg = -1;
    if (parent_owner != kInvalidNode && parent_owner != owner &&
        !d_->is_deleting(parent_owner) && !d_->is_deleting(owner))
      msg = d_->add_msg(parent_owner, owner, 2, {});  // "you are detached"
    FG_CHECK_MSG(!detach_msgs_.empty(), "piece reported outside a region");
    detach_msgs_.back().push_back(msg);
  }

  void on_teardown(VNodeId /*h*/, NodeId owner, NodeId parent_owner) override {
    if (parent_owner != kInvalidNode && parent_owner != owner &&
        !d_->is_deleting(owner) && !d_->is_deleting(parent_owner))
      d_->add_msg(owner, parent_owner, 2, {});  // teardown notice to parent
  }

 private:
  DistForgivingGraph* d_;
  std::vector<std::vector<int>> detach_msgs_;
};

DistForgivingGraph::DistForgivingGraph(const Graph& g0, MergeMode mode)
    : mode_(mode), core_(g0) {
  net_.set_handler([this](NodeId /*to*/, NodeId /*from*/, const std::any& payload) {
    on_delivered(std::any_cast<int>(payload));
  });
}

// ---------------------------------------------------------------------------
// Message DAG plumbing.

int DistForgivingGraph::add_msg(NodeId from, NodeId to, int words,
                                std::vector<int> deps) {
  msgs_.push_back(DagMsg{from, to, words, std::move(deps)});
  return static_cast<int>(msgs_.size() - 1);
}

bool DistForgivingGraph::is_deleting(NodeId v) const {
  return std::binary_search(deleting_.begin(), deleting_.end(), v);
}

std::vector<int> DistForgivingGraph::know_deps(const RegionDag& dag, NodeId u) const {
  if (u == dag.coordinator) return dag.report_msgs;
  const int* msg = know_find(dag.know, u);
  FG_CHECK_MSG(msg != nullptr, "processor acts before learning the plan");
  return {*msg};
}

void DistForgivingGraph::dispatch_msg(int i) {
  const DagMsg& m = msgs_[static_cast<size_t>(i)];
  if (m.from == m.to) {
    on_delivered(i);  // local computation: free and instantaneous
  } else {
    net_.send(m.from, m.to, i, m.words);
  }
}

void DistForgivingGraph::on_delivered(int i) {
  for (int j : dependents_[static_cast<size_t>(i)])
    if (--unmet_[static_cast<size_t>(j)] == 0) dispatch_msg(j);
}

void DistForgivingGraph::run_dag() {
  unmet_.assign(msgs_.size(), 0);
  dependents_.assign(msgs_.size(), {});
  for (size_t i = 0; i < msgs_.size(); ++i)
    for (int d : msgs_[i].deps) {
      ++unmet_[i];
      dependents_[static_cast<size_t>(d)].push_back(static_cast<int>(i));
    }
  for (size_t i = 0; i < msgs_.size(); ++i)
    if (unmet_[i] == 0) dispatch_msg(static_cast<int>(i));
  if (!net_.idle()) net_.run_to_quiescence();
}

// ---------------------------------------------------------------------------
// Insertions.

NodeId DistForgivingGraph::insert(std::span<const NodeId> neighbors) {
  msgs_.clear();
  net_.stats().reset();

  NodeId id = core_.insert_node(neighbors);
  for (NodeId y : neighbors) add_msg(id, y, 2, {});  // "I am your new neighbor"
  run_dag();
  const auto& s = net_.stats();
  lifetime_.messages += s.messages;
  lifetime_.words += s.words;
  lifetime_.rounds += s.rounds;
  return id;
}

// ---------------------------------------------------------------------------
// Deletions.

void DistForgivingGraph::delete_batch(std::span<const NodeId> victims) {
  msgs_.clear();
  deleting_.assign(victims.begin(), victims.end());
  std::sort(deleting_.begin(), deleting_.end());
  net_.stats().reset();
  last_cost_ = RepairCost{};

  // Plan (read-only, shared core), then commit the break phase; the
  // recorder turns each structural change into the teardown/detach
  // messages of the repair DAG, bucketed per region.
  core::RepairPlan plan = core_.plan_deletion(victims, split_);
  harness::CertificateBuilder cert_builder;
  if (cert_sink_ != nullptr) cert_builder.begin_wave(core_, plan);
  DagRecorder recorder(this);
  // On-demand allocation: the distributed merge modes apply joins as the
  // DAG replays, interleaving regions (and, in kStageWise, choosing a
  // different association), so the plan's arena-id reservation does not
  // describe this engine's allocation order. Commits here are never
  // concurrent — determinism across delivery policies comes from the DAG,
  // not from handle arithmetic.
  std::vector<std::vector<VNodeId>> region_pieces =
      core_.commit_break(plan, &recorder, core::CommitAlloc::kOnDemand);
  const core::RepairStats& rs = core_.last_repair();
  last_cost_.deleted_degree = rs.deleted_degree_gprime;
  last_cost_.anchors = rs.new_leaves;
  last_cost_.pieces = rs.pieces;
  last_cost_.regions = static_cast<int>(plan.regions.size());

  // Each region merges through its own independent DAG branch: its own
  // coordinator, report wave, and plan knowledge. Branches share no
  // dependencies, so when the wave's regions are disjoint the simulator
  // counts their repairs in parallel rounds.
  for (const core::RegionPlan& region : plan.regions) {
    const std::vector<VNodeId>& roots = region_pieces[static_cast<size_t>(region.id)];
    const std::vector<int>& detach = recorder.detach_msgs(region.id);
    FG_CHECK(detach.size() == roots.size());
    std::vector<PieceCtx> pieces;
    pieces.reserve(roots.size());
    for (size_t i = 0; i < roots.size(); ++i)
      pieces.push_back(PieceCtx{roots[i], detach[i]});

    std::vector<NodeId> participants;
    for (const PieceCtx& p : pieces) participants.push_back(piece_owner(p));
    std::sort(participants.begin(), participants.end());
    participants.erase(std::unique(participants.begin(), participants.end()),
                       participants.end());
    last_cost_.bt_edges +=
        participants.empty() ? 0 : static_cast<int>(participants.size()) - 1;

    if (pieces.empty()) continue;
    RegionDag dag;
    if (mode_ == MergeMode::kGlobalPlan)
      merge_global(dag, region, std::move(pieces), participants);
    else
      merge_stage_wise(dag, std::move(pieces), participants);
  }

  run_dag();
  const auto& s = net_.stats();
  last_cost_.messages = s.messages;
  last_cost_.words = s.words;
  last_cost_.rounds = s.rounds;
  last_cost_.max_message_words = s.max_message_words;
  last_cost_.max_node_messages = s.max_node_sent();
  last_cost_.max_node_round_words = s.max_node_round_words;
  lifetime_.messages += s.messages;
  lifetime_.words += s.words;
  lifetime_.rounds += s.rounds;
  deleting_.clear();

  if (cert_sink_ != nullptr) {
    // Each region's final RT root: whatever its first committed piece now
    // roots at (the merges only ever join pieces within a region).
    std::vector<VNodeId> roots(plan.regions.size(), kNoVNode);
    for (size_t r = 0; r < plan.regions.size(); ++r)
      if (!region_pieces[r].empty())
        roots[r] = core_.forest().root_of(region_pieces[r][0]);
    cert::CostClaim claim;
    claim.present = true;
    claim.messages = last_cost_.messages;
    claim.words = last_cost_.words;
    claim.rounds = last_cost_.rounds;
    claim.deleted_degree = last_cost_.deleted_degree;
    cert_sink_->on_certificate(cert_builder.end_wave(
        core_, plan, certified_waves_++, roots, &claim));
  }
}

// ---------------------------------------------------------------------------
// kGlobalPlan: report -> plan broadcast -> parallel execution (per region).

void DistForgivingGraph::merge_global(RegionDag& dag, const core::RegionPlan& region,
                                      std::vector<PieceCtx> pieces,
                                      const std::vector<NodeId>& participants) {
  FG_CHECK(!pieces.empty());
  dag.coordinator = participants.front();

  // Reports: every participant sends its piece list straight to the
  // coordinator (8 words per piece + header). The coordinator's own pieces
  // only gate its sends. Owners bucket into dense per-participant vectors
  // via binary search — `participants` is sorted-unique by construction and
  // every piece owner appears in it.
  auto part_idx = [&](NodeId o) {
    auto it = std::lower_bound(participants.begin(), participants.end(), o);
    FG_CHECK(it != participants.end() && *it == o);
    return static_cast<size_t>(it - participants.begin());
  };
  std::vector<std::vector<int>> detach_by_owner(participants.size());
  std::vector<int> count_by_owner(participants.size(), 0);
  for (const PieceCtx& p : pieces) {
    size_t o = part_idx(piece_owner(p));
    ++count_by_owner[o];
    if (p.detach_msg >= 0) detach_by_owner[o].push_back(p.detach_msg);
  }
  for (size_t mi = 0; mi < participants.size(); ++mi) {
    NodeId m = participants[mi];
    if (m == dag.coordinator) {
      for (int d : detach_by_owner[mi]) dag.report_msgs.push_back(d);
      continue;
    }
    int rep = add_msg(m, dag.coordinator, 8 * count_by_owner[mi] + 1,
                      detach_by_owner[mi]);
    dag.report_msgs.push_back(rep);
  }

  if (pieces.size() == 1) {
    core_.finish_repair(pieces.front().root);
    return;  // single piece: nothing to merge
  }

  // Plan broadcast down the region's participant binary tree (heap
  // layout). The plan names every piece, so the message is O(pieces) words
  // — the price kGlobalPlan pays for O(log d + log n) rounds.
  int bcast_words = 8 * static_cast<int>(pieces.size()) + 1;
  std::vector<int> bcast(participants.size(), -1);
  for (size_t i = 0; i < participants.size(); ++i) {
    for (size_t c : {2 * i + 1, 2 * i + 2}) {
      if (c >= participants.size()) continue;
      std::vector<int> deps = i == 0 ? dag.report_msgs : std::vector<int>{bcast[i]};
      bcast[c] = add_msg(participants[i], participants[c], bcast_words,
                         std::move(deps));
      know_set(dag.know, participants[c], bcast[c]);
    }
  }

  // The deterministic ComputeHaft steps straight from the region's plan —
  // literally the object the centralized engine's commit_merge replays,
  // hence the identical topology (and no second planning pass). Execution
  // is fully parallel: every helper owner knows the whole plan and links
  // its join's children without waiting.
  for (const auto& step : region.steps) {
    const PieceCtx& l = pieces[static_cast<size_t>(step.left)];
    const PieceCtx& r = pieces[static_cast<size_t>(step.right)];
    NodeId lo = piece_owner(l);
    NodeId ro = piece_owner(r);
    NodeId u = core_.forest().node(core_.forest().node(l.root).rep).owner;
    if (u != dag.coordinator && know_find(dag.know, u) == nullptr) {
      // The left root's owner forwards the relevant plan excerpt to the
      // representative that must act (it is a leaf owner, not necessarily a
      // participant).
      know_set(dag.know, u, add_msg(lo, u, 4, know_deps(dag, lo)));
    }
    std::vector<int> kd = know_deps(dag, u);
    if (u != lo) add_msg(u, lo, 2, kd);
    if (u != ro) add_msg(u, ro, 2, kd);
    PieceCtx res = join_pieces(l, r);
    FG_CHECK(static_cast<int>(pieces.size()) == step.result);
    pieces.push_back(res);
  }
  core_.finish_repair(pieces.back().root);
}

// ---------------------------------------------------------------------------
// kStageWise: BottomupRTMerge — carry-merge at every aggregation stage,
// per region.

void DistForgivingGraph::merge_stage_wise(RegionDag& dag, std::vector<PieceCtx> pieces,
                                          const std::vector<NodeId>& participants) {
  FG_CHECK(!pieces.empty());
  dag.coordinator = participants.front();
  if (pieces.size() == 1) {
    core_.finish_repair(pieces.front().root);
    return;
  }

  // `participants` is sorted-unique and contains every piece owner, so a
  // binary search replaces the old member-index hash map.
  auto member_idx = [&](NodeId o) {
    auto it = std::lower_bound(participants.begin(), participants.end(), o);
    FG_CHECK(it != participants.end() && *it == o);
    return static_cast<size_t>(it - participants.begin());
  };

  std::vector<std::vector<PieceCtx>> lists(participants.size());
  std::vector<std::vector<int>> ready(participants.size());
  for (const PieceCtx& p : pieces) {
    size_t i = member_idx(piece_owner(p));
    lists[i].push_back(p);
    if (p.detach_msg >= 0) ready[i].push_back(p.detach_msg);
  }

  // Execute the carry plan for stage `i`; `chain` additionally runs the
  // final ascending chain (coordinator only). Orders go out to each helper
  // owner as soon as the stage's inputs are ready; the surviving roots stay
  // in `list`.
  auto run_stage = [&](size_t i, bool chain) {
    std::vector<PieceCtx>& list = lists[i];
    std::vector<haft::PieceInfo> infos;
    infos.reserve(list.size());
    for (const PieceCtx& p : list) infos.push_back(core_.piece_info(p.root));
    auto plan = chain ? haft::merge_plan(std::move(infos))
                      : haft::carry_plan(std::move(infos));
    std::vector<char> consumed(list.size() + plan.size(), 0);
    for (const auto& step : plan) {
      const PieceCtx& l = list[static_cast<size_t>(step.left)];
      const PieceCtx& r = list[static_cast<size_t>(step.right)];
      NodeId lo = piece_owner(l);
      NodeId ro = piece_owner(r);
      NodeId u = core_.forest().node(core_.forest().node(l.root).rep).owner;
      std::vector<int> deps = ready[i];
      if (u != participants[i])
        deps = {add_msg(participants[i], u, 4, ready[i])};  // join order
      if (u != lo) add_msg(u, lo, 2, deps);
      if (u != ro) add_msg(u, ro, 2, deps);
      consumed[static_cast<size_t>(step.left)] = 1;
      consumed[static_cast<size_t>(step.right)] = 1;
      PieceCtx res = join_pieces(l, r);
      FG_CHECK(static_cast<int>(list.size()) == step.result);
      list.push_back(res);
    }
    std::vector<PieceCtx> survivors;
    for (size_t j = 0; j < list.size(); ++j)
      if (!consumed[j]) survivors.push_back(list[j]);
    list = std::move(survivors);
  };

  // Bottom-up over the heap-shaped participant tree: children have larger
  // indices, so a descending loop visits them first.
  for (size_t ii = participants.size(); ii-- > 0;) {
    for (size_t c : {2 * ii + 1, 2 * ii + 2}) {
      if (c >= participants.size()) continue;
      // The child's carried list arrives as one O(log n)-piece message.
      int up = add_msg(participants[c], participants[ii],
                       8 * static_cast<int>(lists[c].size()) + 1, ready[c]);
      ready[ii].push_back(up);
      for (const PieceCtx& p : lists[c]) lists[ii].push_back(p);
      lists[c].clear();
    }
    // Carries keep every in-flight list at pairwise-distinct sizes; the
    // coordinator finishes with the ascending chain (Algorithm A.9 phase 2).
    run_stage(ii, /*chain=*/ii == 0);
  }
  FG_CHECK(lists[0].size() == 1);
  core_.finish_repair(lists[0].front().root);
}

}  // namespace fg::dist
