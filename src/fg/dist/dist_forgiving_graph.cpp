#include "fg/dist/dist_forgiving_graph.h"

#include <algorithm>
#include <any>
#include <unordered_set>

#include "util/check.h"

namespace fg::dist {

// The structural core below is a faithful fork of fg::ForgivingGraph: it
// performs the same container mutations in the same order, so in kGlobalPlan
// mode the piece order, the ComputeHaft plan, and therefore the healed
// topology are bit-identical to the centralized engine (the invariant the
// dist_equivalence and exhaustive_small suites pin down). What this file
// adds is the protocol layer: every repair builds a dependency DAG of
// messages mirroring the structural work and replays it through the
// net::Network simulator, which is where all cost figures come from.

DistForgivingGraph::DistForgivingGraph(const Graph& g0, MergeMode mode)
    : mode_(mode), gprime_(g0), g_(g0) {
  procs_.resize(static_cast<size_t>(g0.node_capacity()));
  for (NodeId v = 0; v < g0.node_capacity(); ++v) {
    FG_CHECK_MSG(g0.is_alive(v), "initial graph must have no tombstones");
    for (NodeId w : g0.neighbors(v))
      if (v < w) ++image_multiplicity_[edge_key(v, w)];
  }
  net_.set_handler([this](NodeId /*to*/, NodeId /*from*/, const std::any& payload) {
    on_delivered(std::any_cast<int>(payload));
  });
}

uint64_t DistForgivingGraph::edge_key(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return slot_key(u, v);
}

void DistForgivingGraph::add_image_edge(NodeId u, NodeId v) {
  if (u == v) return;  // homomorphism collapses same-processor virtual edges
  int& m = image_multiplicity_[edge_key(u, v)];
  if (++m == 1) g_.add_edge(u, v);
}

void DistForgivingGraph::remove_image_edge(NodeId u, NodeId v) {
  if (u == v) return;
  auto it = image_multiplicity_.find(edge_key(u, v));
  FG_CHECK_MSG(it != image_multiplicity_.end() && it->second > 0,
               "removing an image edge that is not present");
  if (--it->second == 0) {
    image_multiplicity_.erase(it);
    g_.remove_edge(u, v);
  }
}

// ---------------------------------------------------------------------------
// Message DAG plumbing.

int DistForgivingGraph::add_msg(NodeId from, NodeId to, int words,
                                std::vector<int> deps) {
  msgs_.push_back(DagMsg{from, to, words, std::move(deps)});
  return static_cast<int>(msgs_.size() - 1);
}

std::vector<int> DistForgivingGraph::know_deps(NodeId u) const {
  if (u == coordinator_) return report_msgs_;
  auto it = know_.find(u);
  FG_CHECK_MSG(it != know_.end(), "processor acts before learning the plan");
  return {it->second};
}

void DistForgivingGraph::dispatch_msg(int i) {
  const DagMsg& m = msgs_[static_cast<size_t>(i)];
  if (m.from == m.to) {
    on_delivered(i);  // local computation: free and instantaneous
  } else {
    net_.send(m.from, m.to, i, m.words);
  }
}

void DistForgivingGraph::on_delivered(int i) {
  for (int j : dependents_[static_cast<size_t>(i)])
    if (--unmet_[static_cast<size_t>(j)] == 0) dispatch_msg(j);
}

void DistForgivingGraph::run_dag() {
  unmet_.assign(msgs_.size(), 0);
  dependents_.assign(msgs_.size(), {});
  for (size_t i = 0; i < msgs_.size(); ++i)
    for (int d : msgs_[i].deps) {
      ++unmet_[i];
      dependents_[static_cast<size_t>(d)].push_back(static_cast<int>(i));
    }
  for (size_t i = 0; i < msgs_.size(); ++i)
    if (unmet_[i] == 0) dispatch_msg(static_cast<int>(i));
  if (!net_.idle()) net_.run_to_quiescence();
}

// ---------------------------------------------------------------------------
// Insertions.

NodeId DistForgivingGraph::insert(std::span<const NodeId> neighbors) {
  msgs_.clear();
  net_.stats().reset();

  NodeId id = gprime_.add_node();
  NodeId id2 = g_.add_node();
  FG_CHECK(id == id2);
  procs_.emplace_back();
  std::unordered_set<NodeId> seen;
  for (NodeId y : neighbors) {
    FG_CHECK_MSG(g_.is_alive(y), "insertion neighbor must be alive");
    FG_CHECK_MSG(seen.insert(y).second, "duplicate insertion neighbor");
    gprime_.add_edge(id, y);
    add_image_edge(id, y);
    add_msg(id, y, 2, {});  // "I am your new neighbor"
  }
  run_dag();
  const auto& s = net_.stats();
  lifetime_.messages += s.messages;
  lifetime_.words += s.words;
  lifetime_.rounds += s.rounds;
  return id;
}

// ---------------------------------------------------------------------------
// Deletions.

void DistForgivingGraph::remove(NodeId v) {
  FG_CHECK_MSG(g_.is_alive(v), "deleting a dead or unknown processor");
  msgs_.clear();
  report_msgs_.clear();
  know_.clear();
  coordinator_ = kInvalidNode;
  deleting_ = v;
  net_.stats().reset();
  last_cost_ = RepairCost{};
  last_cost_.deleted_degree = gprime_.degree(v);

  // 1. The virtual nodes of the deleted processor.
  std::vector<VNodeId> dead_vnodes;
  for (const auto& [other, slot] : procs_[static_cast<size_t>(v)].slots) {
    if (slot.leaf != kNoVNode) dead_vnodes.push_back(slot.leaf);
    if (slot.helper != kNoVNode) dead_vnodes.push_back(slot.helper);
  }

  // 2. The RTs broken by this deletion.
  std::vector<VNodeId> roots;
  for (VNodeId h : dead_vnodes) {
    VNodeId r = forest_.root_of(h);
    if (std::find(roots.begin(), roots.end(), r) == roots.end()) roots.push_back(r);
  }
  std::sort(roots.begin(), roots.end());

  std::vector<char> is_dead(dead_vnodes.empty()
                                ? size_t{0}
                                : static_cast<size_t>(
                                      *std::max_element(dead_vnodes.begin(),
                                                        dead_vnodes.end()) +
                                      1),
                            0);
  for (VNodeId h : dead_vnodes) is_dead[static_cast<size_t>(h)] = 1;

  // 3. Break each affected RT into its maximal clean perfect subtrees.
  //    Teardown and detach notifications enter the DAG here.
  std::vector<PieceCtx> pieces;
  for (VNodeId r : roots) collect_pieces(r, is_dead, &pieces);

  // 4. Alive direct neighbors (the anchors) lose their edge to v and
  //    contribute a fresh real node each.
  for (NodeId y : gprime_.neighbors(v)) {
    if (!g_.is_alive(y)) continue;
    remove_image_edge(v, y);
    VNodeId leaf = forest_.make_leaf(y, v);
    Slot& s = procs_[static_cast<size_t>(y)].slots[v];
    FG_CHECK(s.leaf == kNoVNode && s.helper == kNoVNode);
    s.leaf = leaf;
    pieces.push_back(PieceCtx{leaf, -1});
    ++last_cost_.anchors;
  }

  // 5. The processor itself dies.
  procs_[static_cast<size_t>(v)].alive = false;
  procs_[static_cast<size_t>(v)].slots.clear();
  FG_CHECK_MSG(g_.degree(v) == 0, "image bookkeeping left edges on a deleted node");
  g_.remove_node(v);

  // 6. Merge everything into the single new RT.
  last_cost_.pieces = static_cast<int>(pieces.size());
  std::vector<NodeId> participants;
  for (const PieceCtx& p : pieces) participants.push_back(piece_owner(p));
  std::sort(participants.begin(), participants.end());
  participants.erase(std::unique(participants.begin(), participants.end()),
                     participants.end());
  last_cost_.bt_edges =
      participants.empty() ? 0 : static_cast<int>(participants.size()) - 1;

  if (!pieces.empty()) {
    if (mode_ == MergeMode::kGlobalPlan)
      merge_global(std::move(pieces), participants);
    else
      merge_stage_wise(std::move(pieces), participants);
  }

  run_dag();
  const auto& s = net_.stats();
  last_cost_.messages = s.messages;
  last_cost_.words = s.words;
  last_cost_.rounds = s.rounds;
  last_cost_.max_message_words = s.max_message_words;
  last_cost_.max_node_messages = s.max_node_sent();
  last_cost_.max_node_round_words = s.max_node_round_words;
  lifetime_.messages += s.messages;
  lifetime_.words += s.words;
  lifetime_.rounds += s.rounds;
  deleting_ = kInvalidNode;
}

void DistForgivingGraph::collect_pieces(VNodeId root,
                                        const std::vector<char>& is_dead_vnode,
                                        std::vector<PieceCtx>* out) {
  auto dead = [&](VNodeId h) {
    return h >= 0 && static_cast<size_t>(h) < is_dead_vnode.size() &&
           is_dead_vnode[static_cast<size_t>(h)];
  };

  // Pass 1: clean(h) = subtree has no vnode of the deleted processor.
  std::unordered_map<VNodeId, bool> clean;
  auto mark_clean = [&](auto&& self, VNodeId h) -> bool {
    const auto& n = forest_.node(h);
    bool c = !dead(h);
    if (!n.is_leaf) {
      bool cl = self(self, n.left);
      bool cr = self(self, n.right);
      c = c && cl && cr;
    }
    clean[h] = c;
    return c;
  };
  mark_clean(mark_clean, root);

  // Pass 2: detach the maximal clean perfect subtrees; everything else is
  // removed. Each cross-processor structural change is one O(1)-word
  // notification; all are independent (detection-round state replication),
  // so the teardown costs O(removed) messages in O(1) rounds.
  auto collect = [&](auto&& self, VNodeId h) -> void {
    if (clean[h] && forest_.is_perfect(h)) {
      int detach = -1;
      const auto& n = forest_.node(h);
      if (n.parent != kNoVNode) {
        NodeId po = forest_.node(n.parent).owner;
        if (po != n.owner && po != deleting_ && n.owner != deleting_)
          detach = add_msg(po, n.owner, 2, {});
      }
      detach_vnode(h);
      out->push_back(PieceCtx{h, detach});
      return;
    }
    const auto& n = forest_.node(h);
    VNodeId l = n.left;
    VNodeId r = n.right;
    if (l != kNoVNode) self(self, l);
    if (r != kNoVNode) self(self, r);
    {
      const auto& m = forest_.node(h);
      if (m.parent != kNoVNode) {
        NodeId po = forest_.node(m.parent).owner;
        if (po != m.owner && m.owner != deleting_ && po != deleting_)
          add_msg(m.owner, po, 2, {});  // teardown notice to the parent
      }
    }
    remove_vnode(h);
  };
  collect(collect, root);
}

void DistForgivingGraph::detach_vnode(VNodeId h) {
  const auto& n = forest_.node(h);
  if (n.parent == kNoVNode) return;
  remove_image_edge(n.owner, forest_.node(n.parent).owner);
  forest_.unlink_from_parent(h);
}

void DistForgivingGraph::remove_vnode(VNodeId h) {
  const auto& n = forest_.node(h);
  NodeId owner = n.owner;
  NodeId other = n.other;
  bool leaf = n.is_leaf;
  detach_vnode(h);
  forest_.remove(h);
  auto& proc = procs_[static_cast<size_t>(owner)];
  if (!proc.alive) return;  // the deleted processor's slots are wiped wholesale
  auto it = proc.slots.find(other);
  FG_CHECK(it != proc.slots.end());
  if (leaf) {
    FG_CHECK(it->second.leaf == h);
    it->second.leaf = kNoVNode;
  } else {
    FG_CHECK(it->second.helper == h);
    it->second.helper = kNoVNode;
  }
  if (it->second.leaf == kNoVNode && it->second.helper == kNoVNode) proc.slots.erase(it);
}

haft::PieceInfo DistForgivingGraph::piece_info(const PieceCtx& p) const {
  const auto& n = forest_.node(p.root);
  FG_CHECK(forest_.is_perfect(p.root));
  const auto& rep = forest_.node(n.rep);
  return {n.leaf_count, slot_key(rep.owner, rep.other)};
}

DistForgivingGraph::PieceCtx DistForgivingGraph::join_pieces(const PieceCtx& l,
                                                             const PieceCtx& r) {
  // Representative mechanism, exactly as in the centralized engine: the left
  // tree's representative simulates the new helper; the merged root inherits
  // the right tree's representative. (Copy fields before make_helper: it may
  // grow the node arena.)
  const auto& rep = forest_.node(forest_.node(l.root).rep);
  NodeId rep_owner = rep.owner;
  NodeId rep_other = rep.other;
  NodeId left_owner = forest_.node(l.root).owner;
  NodeId right_owner = forest_.node(r.root).owner;
  VNodeId h = forest_.make_helper(rep_owner, rep_other, l.root, r.root);
  Slot& s = procs_[static_cast<size_t>(rep_owner)].slots[rep_other];
  FG_CHECK_MSG(s.helper == kNoVNode, "representative already simulates a helper");
  s.helper = h;
  add_image_edge(rep_owner, left_owner);
  add_image_edge(rep_owner, right_owner);
  return PieceCtx{h, -1};
}

// ---------------------------------------------------------------------------
// kGlobalPlan: report -> plan broadcast -> parallel execution.

void DistForgivingGraph::merge_global(std::vector<PieceCtx> pieces,
                                      const std::vector<NodeId>& participants) {
  FG_CHECK(!pieces.empty());
  coordinator_ = participants.front();

  // Reports: every participant sends its piece list straight to the
  // coordinator (8 words per piece + header). The coordinator's own pieces
  // only gate its sends.
  std::unordered_map<NodeId, std::vector<int>> detach_by_owner;
  std::unordered_map<NodeId, int> count_by_owner;
  for (const PieceCtx& p : pieces) {
    NodeId o = piece_owner(p);
    ++count_by_owner[o];
    if (p.detach_msg >= 0) detach_by_owner[o].push_back(p.detach_msg);
  }
  for (NodeId m : participants) {
    if (m == coordinator_) {
      for (int d : detach_by_owner[m]) report_msgs_.push_back(d);
      continue;
    }
    int rep = add_msg(m, coordinator_, 8 * count_by_owner[m] + 1,
                      detach_by_owner[m]);
    report_msgs_.push_back(rep);
  }

  if (pieces.size() == 1) return;  // single piece: nothing to merge

  // Plan broadcast down the participant binary tree (heap layout). The plan
  // names every piece, so the message is O(pieces) words — the price
  // kGlobalPlan pays for O(log d + log n) rounds.
  int bcast_words = 8 * static_cast<int>(pieces.size()) + 1;
  std::vector<int> bcast(participants.size(), -1);
  for (size_t i = 0; i < participants.size(); ++i) {
    for (size_t c : {2 * i + 1, 2 * i + 2}) {
      if (c >= participants.size()) continue;
      std::vector<int> deps = i == 0 ? report_msgs_ : std::vector<int>{bcast[i]};
      bcast[c] = add_msg(participants[i], participants[c], bcast_words,
                         std::move(deps));
      know_[participants[c]] = bcast[c];
    }
  }

  // The deterministic ComputeHaft plan over the deterministic piece order —
  // the same plan the centralized engine executes, hence the identical
  // topology. Execution is fully parallel: every helper owner knows the
  // whole plan and links its join's children without waiting for others.
  std::vector<haft::PieceInfo> infos;
  infos.reserve(pieces.size());
  for (const PieceCtx& p : pieces) infos.push_back(piece_info(p));
  auto plan = haft::merge_plan(std::move(infos));
  for (const auto& step : plan) {
    const PieceCtx& l = pieces[static_cast<size_t>(step.left)];
    const PieceCtx& r = pieces[static_cast<size_t>(step.right)];
    NodeId lo = piece_owner(l);
    NodeId ro = piece_owner(r);
    NodeId u = forest_.node(forest_.node(l.root).rep).owner;
    if (u != coordinator_ && !know_.contains(u)) {
      // The left root's owner forwards the relevant plan excerpt to the
      // representative that must act (it is a leaf owner, not necessarily a
      // participant).
      know_[u] = add_msg(lo, u, 4, know_deps(lo));
    }
    std::vector<int> kd = know_deps(u);
    if (u != lo) add_msg(u, lo, 2, kd);
    if (u != ro) add_msg(u, ro, 2, kd);
    PieceCtx res = join_pieces(l, r);
    FG_CHECK(static_cast<int>(pieces.size()) == step.result);
    pieces.push_back(res);
  }
}

// ---------------------------------------------------------------------------
// kStageWise: BottomupRTMerge — carry-merge at every aggregation stage.

void DistForgivingGraph::merge_stage_wise(std::vector<PieceCtx> pieces,
                                          const std::vector<NodeId>& participants) {
  FG_CHECK(!pieces.empty());
  coordinator_ = participants.front();
  if (pieces.size() == 1) return;

  std::unordered_map<NodeId, size_t> member_idx;
  for (size_t i = 0; i < participants.size(); ++i) member_idx[participants[i]] = i;

  std::vector<std::vector<PieceCtx>> lists(participants.size());
  std::vector<std::vector<int>> ready(participants.size());
  for (const PieceCtx& p : pieces) {
    size_t i = member_idx.at(piece_owner(p));
    lists[i].push_back(p);
    if (p.detach_msg >= 0) ready[i].push_back(p.detach_msg);
  }

  // Execute the carry plan for stage `i`; `chain` additionally runs the
  // final ascending chain (coordinator only). Orders go out to each helper
  // owner as soon as the stage's inputs are ready; the surviving roots stay
  // in `list`.
  auto run_stage = [&](size_t i, bool chain) {
    std::vector<PieceCtx>& list = lists[i];
    std::vector<haft::PieceInfo> infos;
    infos.reserve(list.size());
    for (const PieceCtx& p : list) infos.push_back(piece_info(p));
    auto plan = chain ? haft::merge_plan(std::move(infos))
                      : haft::carry_plan(std::move(infos));
    std::vector<char> consumed(list.size() + plan.size(), 0);
    for (const auto& step : plan) {
      const PieceCtx& l = list[static_cast<size_t>(step.left)];
      const PieceCtx& r = list[static_cast<size_t>(step.right)];
      NodeId lo = piece_owner(l);
      NodeId ro = piece_owner(r);
      NodeId u = forest_.node(forest_.node(l.root).rep).owner;
      std::vector<int> deps = ready[i];
      if (u != participants[i])
        deps = {add_msg(participants[i], u, 4, ready[i])};  // join order
      if (u != lo) add_msg(u, lo, 2, deps);
      if (u != ro) add_msg(u, ro, 2, deps);
      consumed[static_cast<size_t>(step.left)] = 1;
      consumed[static_cast<size_t>(step.right)] = 1;
      PieceCtx res = join_pieces(l, r);
      FG_CHECK(static_cast<int>(list.size()) == step.result);
      list.push_back(res);
    }
    std::vector<PieceCtx> survivors;
    for (size_t j = 0; j < list.size(); ++j)
      if (!consumed[j]) survivors.push_back(list[j]);
    list = std::move(survivors);
  };

  // Bottom-up over the heap-shaped participant tree: children have larger
  // indices, so a descending loop visits them first.
  for (size_t ii = participants.size(); ii-- > 0;) {
    for (size_t c : {2 * ii + 1, 2 * ii + 2}) {
      if (c >= participants.size()) continue;
      // The child's carried list arrives as one O(log n)-piece message.
      int up = add_msg(participants[c], participants[ii],
                       8 * static_cast<int>(lists[c].size()) + 1, ready[c]);
      ready[ii].push_back(up);
      for (const PieceCtx& p : lists[c]) lists[ii].push_back(p);
      lists[c].clear();
    }
    // Carries keep every in-flight list at pairwise-distinct sizes; the
    // coordinator finishes with the ascending chain (Algorithm A.9 phase 2).
    run_stage(ii, /*chain=*/ii == 0);
  }
  FG_CHECK(lists[0].size() == 1);
}

// ---------------------------------------------------------------------------
// Validation (same invariant set as the centralized engine).

void DistForgivingGraph::validate() const {
  // --- Slot consistency.
  for (NodeId u = 0; u < static_cast<NodeId>(procs_.size()); ++u) {
    const Proc& p = procs_[static_cast<size_t>(u)];
    FG_CHECK(p.alive == g_.is_alive(u));
    if (!p.alive) {
      FG_CHECK(p.slots.empty());
      continue;
    }
    for (const auto& [other, slot] : p.slots) {
      FG_CHECK_MSG(gprime_.has_edge(u, other), "slot without a G' edge");
      FG_CHECK_MSG(!g_.is_alive(other), "slot for an alive neighbor");
      FG_CHECK(slot.leaf != kNoVNode);
      const auto& leaf = forest_.node(slot.leaf);
      FG_CHECK(leaf.is_leaf && leaf.owner == u && leaf.other == other);
      if (slot.helper != kNoVNode) {
        const auto& h = forest_.node(slot.helper);
        FG_CHECK(!h.is_leaf && h.owner == u && h.other == other);
        FG_CHECK_MSG(forest_.is_ancestor(slot.helper, slot.leaf),
                     "helper is not an ancestor of its real node");
      }
    }
    for (NodeId w : gprime_.neighbors(u))
      if (!g_.is_alive(w)) FG_CHECK_MSG(p.slots.contains(w), "missing real node for dead edge");
  }

  // --- Forest structure, haft property, representative invariant.
  std::unordered_set<VNodeId> seen_roots;
  for (NodeId u = 0; u < static_cast<NodeId>(procs_.size()); ++u) {
    for (const auto& [other, slot] : procs_[static_cast<size_t>(u)].slots) {
      for (VNodeId h : {slot.leaf, slot.helper}) {
        if (h == kNoVNode) continue;
        VNodeId r = forest_.root_of(h);
        if (!seen_roots.insert(r).second) continue;
        FG_CHECK_MSG(forest_.valid_haft(r), "RT is not a haft");
        for (VNodeId x : forest_.subtree_of(r)) {
          const auto& n = forest_.node(x);
          if (n.is_leaf) continue;
          int free_leaves = 0;
          VNodeId free_leaf = kNoVNode;
          for (VNodeId leaf : forest_.leaves_of(x)) {
            const auto& ln = forest_.node(leaf);
            auto it = procs_[static_cast<size_t>(ln.owner)].slots.find(ln.other);
            FG_CHECK(it != procs_[static_cast<size_t>(ln.owner)].slots.end());
            VNodeId helper = it->second.helper;
            bool has_helper_inside = helper != kNoVNode && forest_.is_ancestor(x, helper);
            if (!has_helper_inside) {
              ++free_leaves;
              free_leaf = leaf;
            }
          }
          FG_CHECK_MSG(free_leaves == 1, "representative invariant violated (count)");
          FG_CHECK_MSG(free_leaf == n.rep, "representative invariant violated (identity)");
        }
      }
    }
  }

  // --- The image graph equals a from-scratch rebuild.
  Graph rebuilt;
  for (NodeId u = 0; u < g_.node_capacity(); ++u) rebuilt.add_node();
  for (NodeId u = 0; u < g_.node_capacity(); ++u)
    if (!g_.is_alive(u)) rebuilt.remove_node(u);
  for (NodeId u = 0; u < gprime_.node_capacity(); ++u) {
    if (!g_.is_alive(u)) continue;
    for (NodeId w : gprime_.neighbors(u))
      if (u < w && g_.is_alive(w)) rebuilt.add_edge(u, w);
  }
  for (VNodeId r : seen_roots) {
    for (VNodeId x : forest_.subtree_of(r)) {
      const auto& n = forest_.node(x);
      if (n.parent == kNoVNode) continue;
      NodeId a = n.owner;
      NodeId b = forest_.node(n.parent).owner;
      if (a != b && !rebuilt.has_edge(a, b)) rebuilt.add_edge(a, b);
    }
  }
  FG_CHECK_MSG(g_.same_topology(rebuilt), "image graph diverged from rebuild");
}

}  // namespace fg::dist
