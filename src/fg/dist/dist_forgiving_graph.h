// Distributed Forgiving Graph protocol (Sections 3-5, Lemma 4).
//
// The same self-healing algorithm as fg::ForgivingGraph — literally: both
// engines drive the single structural mutation path in
// core::StructuralCore. This class adds the protocol layer on top: every
// repair installs a RepairObserver on the core, translates each structural
// mutation into a message of a dependency DAG, and replays that DAG over
// the round-synchronous simulator in net::Network with the paper's cost
// metrics measured per repair: messages, words, rounds, largest message,
// and per-node traffic.
//
// Model assumptions (the paper's, Figure 1):
//   * When processor v is deleted, every processor owning a virtual node in
//     an RT touched by the deletion learns of it in the detection round
//     (processors replicate, per incident edge slot, the Table-1 metadata of
//     the far endpoint — a node's "will" in the self-healing literature).
//     A batched deletion (delete_batch) models simultaneous failures: one
//     detection round covers all victims.
//   * Messages are delivered reliably but, under a non-default
//     net::DeliveryPolicy, with arbitrary per-message delay and order. The
//     protocol must tolerate this; only `rounds` may change.
//
// A batched deletion splits into its connected dirty regions (the plan
// phase of the shared core); each region repairs through an *independent
// branch* of the message DAG — its own coordinator, report wave, merge —
// so the measured `rounds` is the maximum over regions, not their sum:
// Lemma-4 round counting reflects the true parallelism of disjoint waves.
// Per region, the repair pipeline for deleted degree d is:
//   1. Teardown   — owners of dead and red virtual nodes notify their tree
//                   neighbors; maximal clean perfect subtrees ("pieces")
//                   detach. O(d log n) messages of O(1) words.
//   2. Report     — every participant (anchor or piece owner) reports its
//                   piece list to the region coordinator (least-id
//                   participant).
//   3. Merge      — mode-dependent, see MergeMode below.
//   4. Execute    — each helper's owner (the representative of the join's
//                   left subtree, Algorithm A.9) links the join's children.
//
// Two merge modes:
//   * kGlobalPlan: the region coordinator computes the full deterministic
//     ComputeHaft plan (haft::merge_plan) and broadcasts it down a binary
//     tree over the region's participants. Every helper owner then acts in
//     parallel, giving O(log d + log n) rounds — within the paper's
//     O(log d log n) budget — at the price of O(pieces)-word plan messages.
//     Because the plan is exactly the one the centralized engine executes —
//     over the piece sequence the shared core emits, region by region — the
//     healed topology is bit-identical to fg::ForgivingGraph under every
//     adversarial schedule and every delivery policy.
//   * kStageWise: the paper-faithful BottomupRTMerge. Piece lists climb the
//     region's participant tree; at each stage equal-sized trees are joined
//     immediately (haft::carry_plan), so every list in flight has pairwise
//     distinct sizes and every message stays at O(log n) words. The final
//     association may differ from the centralized engine's, but the result
//     is the same leaf set in a valid haft, so all Theorem-1 bounds hold.
//
// validate() checks invariants I1-I5 through the shared core.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "fg/core/structural_core.h"
#include "fg/virtual_forest.h"
#include "graph/graph.h"
#include "haft/haft.h"
#include "net/network.h"

namespace fg::harness {
class CertificateSink;
}

namespace fg::dist {

/// How the pieces of broken RTs are reassembled after a deletion.
enum class MergeMode {
  kGlobalPlan,  ///< Coordinator broadcasts the full ComputeHaft plan.
  kStageWise,   ///< BottomupRTMerge: carry-merge at every aggregation stage.
};

/// Cost sheet of the most recent repair (the quantities Lemma 4 bounds).
/// For a batched repair, `deleted_degree` sums over the victims and
/// `rounds` is the max over the regions' independent DAG branches.
struct RepairCost {
  int deleted_degree = 0;  ///< G' degree of the victim(s).
  int anchors = 0;         ///< Alive direct G'-neighbors of the victim(s).
  int pieces = 0;          ///< Perfect trees merged (incl. fresh leaves).
  int regions = 0;         ///< Independent DAG branches (dirty regions).
  int bt_edges = 0;        ///< Edges of the participant aggregation trees.
  int64_t messages = 0;    ///< Messages sent during the repair.
  int64_t words = 0;       ///< Total payload words sent.
  int rounds = 0;          ///< Rounds to quiescence.
  int max_message_words = 0;        ///< Largest single message.
  int64_t max_node_messages = 0;    ///< Most messages sent by one processor.
  int64_t max_node_round_words = 0; ///< Paper metric 3: words/node/round.
};

/// Traffic accumulated over the object's lifetime (all inserts + repairs).
struct LifetimeStats {
  int64_t messages = 0;
  int64_t words = 0;
  int64_t rounds = 0;
};

/// The Forgiving Graph as a distributed protocol over net::Network.
class DistForgivingGraph {
 public:
  /// Start from a connected network G0; ids 0..n-1 become live processors.
  explicit DistForgivingGraph(const Graph& g0,
                              MergeMode mode = MergeMode::kGlobalPlan);

  /// Adversarial insertion: the new processor introduces itself to each
  /// neighbor (one message per new edge). Returns the new processor id.
  NodeId insert(std::span<const NodeId> neighbors);

  /// Adversarial deletion of `v` followed by the distributed repair.
  void remove(NodeId v) { delete_batch({&v, 1}); }

  /// Batched adversarial deletion: all of `victims` fail simultaneously;
  /// one detection round, one repair DAG with an independent branch per
  /// connected dirty region. Structural semantics match
  /// ForgivingGraph::delete_batch bit-for-bit in kGlobalPlan mode.
  void delete_batch(std::span<const NodeId> victims);

  /// The healed network G (homomorphic image of G' + virtual forest).
  const Graph& image() const { return core_.image(); }

  /// The insertions-only graph G' (deleted processors still present).
  const Graph& gprime() const { return core_.gprime(); }

  bool is_alive(NodeId v) const { return core_.is_alive(v); }

  const RepairCost& last_repair_cost() const { return last_cost_; }
  const LifetimeStats& lifetime_stats() const { return lifetime_; }

  /// The underlying simulator (stats access; resettable between phases).
  net::Network& network() { return net_; }

  /// Install a delivery policy (asynchrony knobs). Structure is unaffected;
  /// only `rounds` may change.
  void set_delivery_policy(const net::DeliveryPolicy& policy) {
    net_.set_policy(policy);
  }

  /// Per-region healing (default) vs the pre-sharding single wave-wide RT;
  /// mirrors ForgivingGraph::set_region_split so the engines stay
  /// comparable in either mode.
  void set_region_split(core::RegionSplit split) { split_ = split; }
  core::RegionSplit region_split() const { return split_; }

  const VirtualForest& forest() const { return core_.forest(); }
  MergeMode mode() const { return mode_; }

  /// Install a certificate sink: every subsequent delete_batch emits a
  /// per-wave cert::WaveCertificate carrying this engine's Lemma-4 cost
  /// claim (harness/certificate.h; docs/CERTIFICATES.md). nullptr disables.
  /// In kGlobalPlan mode the structural bytes match the centralized
  /// engine's certificates exactly (contract C4 extension).
  void set_certificate_sink(harness::CertificateSink* sink) { cert_sink_ = sink; }
  harness::CertificateSink* certificate_sink() const { return cert_sink_; }

  /// Full invariant check I1-I5 through the shared core (expensive).
  void validate() const { core_.validate(); }

  /// The structural core, read-only — the fg::Stabilizer audit surface and
  /// the checkpoint seam (core().save()) the fault tests hand to the
  /// centralized engine for recovery experiments.
  const core::StructuralCore& core() const { return core_; }

 private:
  /// One protocol message in the repair's dependency DAG. A message is sent
  /// once every message it depends on has been delivered; messages with
  /// from == to are local computation and bypass the network (uncounted,
  /// instantaneous), exactly like the homomorphism collapses same-processor
  /// virtual edges.
  struct DagMsg {
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    int words = 1;
    std::vector<int> deps;
  };

  /// A piece (perfect subtree) awaiting merge, with the DAG event that
  /// detached it (-1 if it was never attached, e.g. a fresh anchor leaf).
  struct PieceCtx {
    VNodeId root = kNoVNode;
    int detach_msg = -1;
  };

  /// The DAG branch of one region's merge: its coordinator, the report
  /// messages the coordinator waits on, and the plan-knowledge event per
  /// participating processor. A processor appearing in several regions
  /// holds independent knowledge per region — the branches never share
  /// dependencies, which is what makes the measured rounds the max, not
  /// the sum, over regions.
  struct RegionDag {
    NodeId coordinator = kInvalidNode;
    std::vector<int> report_msgs;
    /// Plan-knowledge event per participating processor: sorted flat pairs
    /// keyed by processor id, binary-searched — no hash container anywhere
    /// on the repair path (PR 5 idiom).
    std::vector<std::pair<NodeId, int>> know;
  };

  /// The core observer that mirrors the repair's structural mutations into
  /// teardown/detach messages of the DAG, bucketed per region.
  class DagRecorder;

  NodeId piece_owner(const PieceCtx& p) const {
    return core_.forest().node(p.root).owner;
  }

  /// Structural join through the shared core, tracked as a PieceCtx.
  PieceCtx join_pieces(const PieceCtx& l, const PieceCtx& r) {
    return PieceCtx{core_.join_pieces(l.root, r.root), -1};
  }

  // --- DAG construction helpers (see dist_forgiving_graph.cpp).
  int add_msg(NodeId from, NodeId to, int words, std::vector<int> deps);
  bool is_deleting(NodeId v) const;
  std::vector<int> know_deps(const RegionDag& dag, NodeId u) const;
  void merge_global(RegionDag& dag, const core::RegionPlan& region,
                    std::vector<PieceCtx> pieces,
                    const std::vector<NodeId>& participants);
  void merge_stage_wise(RegionDag& dag, std::vector<PieceCtx> pieces,
                        const std::vector<NodeId>& participants);
  void run_dag();
  void dispatch_msg(int i);
  void on_delivered(int i);

  MergeMode mode_ = MergeMode::kGlobalPlan;
  core::RegionSplit split_ = core::RegionSplit::kPerRegion;
  core::StructuralCore core_;

  net::Network net_;
  RepairCost last_cost_;
  LifetimeStats lifetime_;
  harness::CertificateSink* cert_sink_ = nullptr;
  long certified_waves_ = 0;  ///< Wave index of the next certificate.

  // Per-repair DAG state.
  std::vector<DagMsg> msgs_;
  std::vector<int> unmet_;
  std::vector<std::vector<int>> dependents_;
  /// Victims of the repair in flight: sorted per batch, binary-searched.
  std::vector<NodeId> deleting_;
};

}  // namespace fg::dist
