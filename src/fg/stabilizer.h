// Self-stabilizing recovery mode (docs/SELF_STABILIZATION.md).
//
// The paper's Forgiving Graph tolerates exactly its stated fault model:
// adversarial insertions and deletions, applied through the engine. This
// subsystem extends the fault model in the self-stabilization tradition
// (Devismes-Masuzawa-Tixeuil, PAPERS.md): starting from an *arbitrarily
// corrupted* structural state — flipped slot entries, severed or cyclic RT
// rows, desynced image edges — recover a configuration satisfying the
// legal-state invariants I1-I5 (core::StructuralCore) again.
//
// Ground truth vs derived state. G' (the insertions-only graph) and the
// liveness bits are ground truth: the adversary corrupts *state the healing
// layer derives* — the virtual forest, the slot tables, the healed image and
// its multiplicity map. Recovery therefore never guesses: it audits every
// derived structure against G' + liveness, quarantines whatever is
// inconsistent, keeps every RT component that still checks out whole, and
// rebuilds the rest through the ordinary plan/commit pipeline
// (ShardedForest::execute), so recovery is parallel, deterministic
// (contract C4: byte-identical checkpoints and certificate bytes at any
// worker count), and certifiable like any other wave.
//
// The audit checks, per rule (the docs table mirrors this list):
//   * row sanity      — owner alive, slot key a dead G' edge, link symmetry,
//                       exact height/leaf_count aggregates, haft property;
//   * slot soundness  — every slot backed by matching forest rows and vice
//                       versa, helpers ancestors of their real nodes (I4),
//                       representatives the unique helper-free leaf (I3);
//   * completeness    — every dead G' edge of an alive processor has an
//                       anchor slot (I1), and all anchors of one
//                       G'-connected dead cluster live in a single RT (the
//                       co-location law — legal executions maintain it, and
//                       losing it can disconnect G even when I1-I5 pass);
//   * image fidelity  — healed image and multiplicity map equal the rebuild
//                       from alive-alive G' edges plus RT parent links (I5).
//
// Every traversal is cycle-safe and step-capped: arbitrary corruption yields
// a typed AuditReport, never an FG_CHECK abort.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fg/forgiving_graph.h"
#include "graph/graph.h"

namespace fg {

/// Classification of one audit finding. The first group condemns the forest
/// component it implicates; the completeness group marks dead processors
/// whose anchors must be rebuilt; the image group triggers the derived-state
/// rebuild only.
enum class ViolationKind {
  kRowLink = 0,        ///< Asymmetric/dangling/cyclic links, wrong arity.
  kRowAggregate,       ///< height/leaf_count/rep bookkeeping or haft property.
  kRowOwnership,       ///< Owner dead, or slot key not a dead G' edge.
  kRowSlotBacking,     ///< Row not registered in its owner's slot table.
  kRepInvariant,       ///< I3: rep is not the unique helper-free leaf.
  kHelperAncestry,     ///< I4: helper is not an ancestor of its real node.
  kSlotGhost,          ///< Slot field pointing at a missing/mismatched row.
  kSlotEdge,           ///< Slot keyed by a live edge, or owned by the dead.
  kMissingAnchor,      ///< I1: dead G' edge with no anchor slot.
  kSplitDeadCluster,   ///< Co-location law: one dead cluster, several RTs.
  kImageDrift,         ///< I5: healed image diverges from the rebuild.
  kMultiplicityDrift,  ///< Multiplicity map diverges from the recount.
};
inline constexpr int kViolationKinds = 12;

/// Short stable name for a kind ("row-link", "slot-ghost", ...).
const char* violation_kind_name(ViolationKind k);

/// One audit finding: the kind, the implicated forest row and/or processor
/// pair (kNoVNode / kInvalidNode when not applicable), and a fixed
/// description string.
struct AuditViolation {
  ViolationKind kind = ViolationKind::kRowLink;
  VNodeId h = kNoVNode;
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  std::string detail;
};

/// The audit's typed result: per-kind counts plus the first kMaxDetails
/// findings in deterministic scan order.
struct AuditReport {
  static constexpr int kMaxDetails = 256;
  std::vector<AuditViolation> violations;
  int64_t counts[kViolationKinds] = {};
  int64_t total = 0;

  bool clean() const { return total == 0; }
  int64_t count(ViolationKind k) const {
    return counts[static_cast<size_t>(k)];
  }
  /// "clean" or "<total> violations: row-link=2 slot-ghost=1 ...".
  std::string summary() const;
};

/// Counters describing one stabilize() pass.
struct RecoveryStats {
  bool recovered = false;  ///< False: the audit was clean, nothing ran.
  int condemned_components = 0;  ///< Forest components quarantined.
  int condemned_rows = 0;        ///< Live rows tombstoned by the quarantine.
  int kept_components = 0;       ///< Intact components carried over whole.
  int regions = 0;               ///< Recovery regions (one RT each).
  int victims = 0;               ///< Dead processors whose anchors rebuilt.
  int anchors = 0;               ///< Fresh anchor leaves spawned.
  AuditReport report;            ///< The audit that triggered the pass.
};

/// Audit `core` against I1-I5 plus the co-location law, returning a typed
/// report. Read-only, abort-free on arbitrarily corrupted derived state.
AuditReport audit(const core::StructuralCore& core);

/// The recovery mode over a centralized engine. stabilize() audits; on any
/// violation it quarantines every inconsistent forest component (closing
/// over dead-cluster adjacency so no cluster is ever rebuilt piecemeal),
/// rebuilds the derived image state from ground truth, then plans one
/// recovery wave — per dead-adjacency region, exactly the missing anchors —
/// and commits it through the ordinary pipeline, emitting a certificate
/// through the engine's sink like any deletion wave. Audit-after-stabilize
/// is a fixed point: the second pass reports clean.
class Stabilizer {
 public:
  explicit Stabilizer(ForgivingGraph& fg) : fg_(fg) {}

  /// Audit only (read-only).
  AuditReport audit() const { return fg::audit(fg_.core()); }

  /// Audit, and on violations quarantine + rebuild + commit one recovery
  /// wave. Returns what happened; recovered == false means the audit was
  /// clean and the engine was not touched.
  RecoveryStats stabilize();

 private:
  ForgivingGraph& fg_;
};

}  // namespace fg
