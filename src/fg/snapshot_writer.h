// Engine-side producer and consumer of the durable snapshot subsystem
// (src/snap; docs/SNAPSHOTS.md).
//
// The format library (snap/snapshot.h) knows bytes; this layer knows the
// structure. It has three pieces:
//
//   * SnapshotRecorder — a core::DeltaRecorder that accumulates, per
//     committed wave, exactly the touched state: insertions in stream
//     order, image-multiplicity keys as they are touched, and — when
//     fg::ShardedForest fires on_wave_committed — the touched forest rows
//     and slot keys derived from the plan (break-script handles plus the
//     wave's whole arena reservation). Every list is emitted sorted with
//     *final* post-commit values, so the delta bytes are a pure function
//     of the op stream — snapshot bytes join contract C4.
//   * SnapshotWriter — a SnapshotRecorder bound to a base file and a delta
//     log on disk, with the crash-consistency discipline: bases go through
//     write-then-rename (never observed half-written), deltas are CRC-framed
//     appends (a torn append is detected and dropped by restore). An
//     *epoch rebase* guardrail makes out-of-band mutations safe: the
//     recorder tracks the mutation epoch it expects (+1 per insert, +1 per
//     commit); any divergence — a Stabilizer recovery rebuild, a fault
//     injection, an external engine() mutation — means the delta stream no
//     longer describes the core, so the writer discards the wave's delta
//     and writes a fresh base instead of appending garbage.
//   * restore_snapshot — load base + replay the delta tail, O(changes)
//     rather than O(n), recovering across a torn tail to the last
//     consistent wave. The caller then re-pushes the op stream from the
//     returned cursor to catch up — byte-identical to the uninterrupted
//     run (tests/snapshot_test.cpp pins this end to end).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fg/core/structural_core.h"
#include "snap/snapshot.h"

namespace fg {

/// Accumulates one wave's structural changes and emits a canonical
/// snap::WaveDelta through a sink callback. Disk-free — benches and the
/// round-trip tests capture deltas in memory; SnapshotWriter adds the file
/// discipline on top.
class SnapshotRecorder : public core::DeltaRecorder {
 public:
  using DeltaSink = std::function<void(const snap::WaveDelta&)>;

  /// Sync to `core` as the recording baseline: wave count and cursor seed
  /// the next delta's header; the expected mutation epoch resets. Call
  /// once before installing via StructuralCore::set_delta_recorder.
  void begin(const core::StructuralCore& core, uint64_t waves, uint64_t cursor);

  /// The sink receiving each wave's finished delta record.
  void set_sink(DeltaSink sink) { sink_ = std::move(sink); }

  /// Stream ops fully reflected once the *next* wave commits (the service
  /// stamps this at dispatch time — docs/SNAPSHOTS.md, "resume cursor").
  void set_cursor(uint64_t ops) { cursor_ = ops; }
  uint64_t cursor() const { return cursor_; }

  /// Waves recorded (recovery commits and rebased waves excluded).
  uint64_t waves() const { return waves_; }

  /// True when the mutation epoch diverged from the op stream (recovery
  /// rebuild, fault injection, out-of-band mutation): the pending delta
  /// was discarded and the owner must write a fresh base. Cleared by
  /// rebased().
  bool needs_rebase() const { return needs_rebase_; }

  /// Acknowledge a rebase: re-sync the expected epoch to `core` and clear
  /// the flag (the owner just captured a fresh base image of it).
  void rebased(const core::StructuralCore& core);

  // core::DeltaRecorder:
  void on_insert(NodeId id, std::span<const NodeId> neighbors) override;
  void on_image_touch(NodeId u, NodeId v) override;
  void on_wave_committed(const core::StructuralCore& core,
                         const core::RepairPlan& plan) override;

 private:
  DeltaSink sink_;
  uint64_t waves_ = 0;
  uint64_t cursor_ = 0;
  uint64_t expected_epoch_ = 0;
  bool needs_rebase_ = false;
  std::vector<snap::WaveDelta::Insert> pending_inserts_;
  std::vector<uint64_t> touched_mult_;  ///< slot_key(u, v) with u < v.
};

/// A SnapshotRecorder bound to on-disk files: `base_path` (the latest base
/// image, replaced atomically) and `log_path` (the append-only delta log).
class SnapshotWriter : public core::DeltaRecorder {
 public:
  /// `base_every` > 0 rotates: after that many recorded waves, the next
  /// maintain() writes a fresh base and resets the log. 0 never rotates
  /// (the log grows until an epoch rebase forces a base).
  SnapshotWriter(std::string base_path, std::string log_path, int base_every);

  /// Capture `core` as a fresh base (wave/cursor stamped from the
  /// arguments), reset the log, and make this recorder track the core.
  /// Returns false + *error on I/O failure.
  bool begin(const core::StructuralCore& core, uint64_t waves, uint64_t cursor,
             std::string* error);

  void set_cursor(uint64_t ops) { recorder_.set_cursor(ops); }
  uint64_t waves() const { return recorder_.waves(); }

  /// Post-wave upkeep (call with no plan in flight): writes a fresh base
  /// if the recorder flagged an epoch rebase or the rotation period is
  /// due. Returns false when a disk write failed (take_error explains).
  bool maintain(const core::StructuralCore& core);

  /// The sticky I/O error, cleared by taking it (empty string when clean).
  std::string take_error();

  // core::DeltaRecorder (forwarded to the inner recorder):
  void on_insert(NodeId id, std::span<const NodeId> neighbors) override {
    recorder_.on_insert(id, neighbors);
  }
  void on_image_touch(NodeId u, NodeId v) override { recorder_.on_image_touch(u, v); }
  void on_wave_committed(const core::StructuralCore& core,
                         const core::RepairPlan& plan) override {
    recorder_.on_wave_committed(core, plan);
  }

 private:
  /// Base first, then the log reset: a crash between the two leaves old
  /// records whose wave ids the base already covers — restore_snapshot
  /// skips them. The reverse order could lose committed waves.
  bool write_base(const core::StructuralCore& core);

  SnapshotRecorder recorder_;
  std::string base_path_;
  std::string log_path_;
  int base_every_ = 0;
  int waves_since_base_ = 0;
  std::string error_;
};

/// Outcome of restore_snapshot.
struct SnapshotRestore {
  bool ok = false;         ///< Core restored to a consistent wave.
  bool truncated = false;  ///< A torn/corrupt delta tail was dropped.
  uint64_t waves = 0;      ///< Waves reflected in the restored core.
  uint64_t cursor = 0;     ///< Stream ops reflected (resume point).
  std::string error;       ///< Failure reason, or the dropped tail's detail.
};

/// Restore a core from `base_path` + the consistent prefix of `log_path`:
/// decode the base, then apply_wave_delta over every log record after the
/// base's wave — O(changes), not O(n). A missing log means "no deltas yet";
/// a torn tail is dropped (truncated = true) and the core recovers to the
/// last consistent wave. The caller should audit the result (fg::Stabilizer)
/// and re-push its op stream from `cursor`.
SnapshotRestore restore_snapshot(const std::string& base_path,
                                 const std::string& log_path,
                                 core::StructuralCore* out);

}  // namespace fg
