#include "fg/virtual_forest.h"

#include <algorithm>

#include "util/check.h"

namespace fg {

namespace {

/// A reserved-but-unconstructed placeholder: dead with no owner. Tombstones
/// keep their (real, >= 0) owner, so the two dead states never collide.
bool is_placeholder(const VirtualForest::VNode& n) {
  return !n.alive && n.owner == kInvalidNode;
}

}  // namespace

VNodeId VirtualForest::make_leaf(NodeId owner, NodeId other) {
  VNode n;
  n.owner = owner;
  n.other = other;
  n.is_leaf = true;
  nodes_.push_back(n);
  ++live_count_;
  auto id = static_cast<VNodeId>(nodes_.size() - 1);
  nodes_.back().rep = id;  // a real node is its own representative
  return id;
}

VNodeId VirtualForest::make_helper(NodeId owner, NodeId other, VNodeId left,
                                   VNodeId right) {
  FG_CHECK(exists(left) && exists(right));
  FG_CHECK_MSG(is_root(left) && is_root(right), "helper children must be roots");
  VNode n;
  n.owner = owner;
  n.other = other;
  n.is_leaf = false;
  n.left = left;
  n.right = right;
  n.height = 1 + std::max(nodes_[left].height, nodes_[right].height);
  n.leaf_count = nodes_[left].leaf_count + nodes_[right].leaf_count;
  n.rep = nodes_[right].rep;  // Algorithm A.9: inherit the other tree's rep
  nodes_.push_back(n);
  ++live_count_;
  auto id = static_cast<VNodeId>(nodes_.size() - 1);
  nodes_[left].parent = id;
  nodes_[right].parent = id;
  return id;
}

VNodeId VirtualForest::reserve_range(int count) {
  FG_CHECK_MSG(count >= 0, "negative reservation");
  auto base = static_cast<VNodeId>(nodes_.size());
  VNode placeholder;
  placeholder.alive = false;  // owner stays kInvalidNode: see is_placeholder
  nodes_.resize(nodes_.size() + static_cast<size_t>(count), placeholder);
  // Credit the live count up front: construction may run concurrently and
  // must not touch shared scalars, and every reserved handle is constructed
  // before the commit settles (FG_CHECKed via unconstructed_in).
  live_count_ += count;
  return base;
}

void VirtualForest::make_leaf_in(VNodeId h, NodeId owner, NodeId other) {
  FG_CHECK_MSG(h >= 0 && h < static_cast<VNodeId>(nodes_.size()),
               "constructing outside the arena: reservation exhausted");
  VNode& n = nodes_[static_cast<size_t>(h)];
  FG_CHECK_MSG(is_placeholder(n), "handle is not an unconstructed reservation");
  n.owner = owner;
  n.other = other;
  n.is_leaf = true;
  n.rep = h;  // a real node is its own representative
  n.alive = true;
}

VNodeId VirtualForest::make_helper_in(VNodeId h, NodeId owner, NodeId other,
                                      VNodeId left, VNodeId right) {
  FG_CHECK_MSG(h >= 0 && h < static_cast<VNodeId>(nodes_.size()),
               "constructing outside the arena: reservation exhausted");
  FG_CHECK(exists(left) && exists(right));
  FG_CHECK_MSG(is_root(left) && is_root(right), "helper children must be roots");
  VNode& n = nodes_[static_cast<size_t>(h)];
  FG_CHECK_MSG(is_placeholder(n), "handle is not an unconstructed reservation");
  n.owner = owner;
  n.other = other;
  n.is_leaf = false;
  n.left = left;
  n.right = right;
  n.height = 1 + std::max(nodes_[left].height, nodes_[right].height);
  n.leaf_count = nodes_[left].leaf_count + nodes_[right].leaf_count;
  n.rep = nodes_[right].rep;  // Algorithm A.9: inherit the other tree's rep
  n.alive = true;
  nodes_[static_cast<size_t>(left)].parent = h;
  nodes_[static_cast<size_t>(right)].parent = h;
  return h;
}

int VirtualForest::unconstructed_in(VNodeId begin, VNodeId end) const {
  FG_CHECK(begin >= 0 && begin <= end && end <= static_cast<VNodeId>(nodes_.size()));
  int count = 0;
  for (VNodeId h = begin; h < end; ++h)
    if (is_placeholder(nodes_[static_cast<size_t>(h)])) ++count;
  return count;
}

void VirtualForest::unlink_from_parent(VNodeId child) {
  FG_CHECK(exists(child));
  VNodeId p = nodes_[child].parent;
  if (p == kNoVNode) return;
  if (nodes_[p].left == child) nodes_[p].left = kNoVNode;
  if (nodes_[p].right == child) nodes_[p].right = kNoVNode;
  nodes_[child].parent = kNoVNode;
}

void VirtualForest::remove(VNodeId h) {
  remove_uncounted(h);
  --live_count_;
}

void VirtualForest::remove_uncounted(VNodeId h) {
  FG_CHECK(exists(h));
  FG_CHECK_MSG(nodes_[h].left == kNoVNode && nodes_[h].right == kNoVNode,
               "remove requires children already detached");
  unlink_from_parent(h);
  nodes_[h].alive = false;
}

void VirtualForest::credit_removals(int count) {
  FG_CHECK_MSG(count >= 0 && count <= live_count_, "over-credited removals");
  live_count_ -= count;
}

const VirtualForest::VNode& VirtualForest::node(VNodeId h) const {
  FG_CHECK(exists(h));
  return nodes_[static_cast<size_t>(h)];
}

bool VirtualForest::exists(VNodeId h) const {
  return h >= 0 && h < static_cast<VNodeId>(nodes_.size()) &&
         nodes_[static_cast<size_t>(h)].alive;
}

VNodeId VirtualForest::root_of(VNodeId h) const {
  FG_CHECK(exists(h));
  while (nodes_[static_cast<size_t>(h)].parent != kNoVNode)
    h = nodes_[static_cast<size_t>(h)].parent;
  return h;
}

bool VirtualForest::is_perfect(VNodeId h) const {
  const VNode& n = node(h);
  return n.leaf_count == (int64_t{1} << n.height);
}

std::pair<int64_t, int> VirtualForest::validate_rec(VNodeId h, bool* ok) const {
  if (!exists(h)) {
    *ok = false;
    return {0, 0};
  }
  const VNode& n = nodes_[static_cast<size_t>(h)];
  if (n.is_leaf) {
    if (n.left != kNoVNode || n.right != kNoVNode || n.leaf_count != 1 || n.height != 0 ||
        n.rep != h)
      *ok = false;
    return {1, 0};
  }
  if (n.left == kNoVNode || n.right == kNoVNode) {
    *ok = false;
    return {0, 0};
  }
  if (node(n.left).parent != h || node(n.right).parent != h) *ok = false;
  auto [ll, lh] = validate_rec(n.left, ok);
  auto [rl, rh] = validate_rec(n.right, ok);
  if (ll + rl != n.leaf_count || 1 + std::max(lh, rh) != n.height) *ok = false;
  // Haft property at this node.
  if (!is_perfect(n.left) || ll < rl) *ok = false;
  return {ll + rl, 1 + std::max(lh, rh)};
}

bool VirtualForest::valid_haft(VNodeId root) const {
  bool ok = exists(root);
  if (ok) validate_rec(root, &ok);
  return ok;
}

std::vector<VNodeId> VirtualForest::leaves_of(VNodeId root) const {
  std::vector<VNodeId> out;
  std::vector<VNodeId> stack{root};
  while (!stack.empty()) {
    VNodeId h = stack.back();
    stack.pop_back();
    const VNode& n = node(h);
    if (n.is_leaf) {
      out.push_back(h);
      continue;
    }
    if (n.right != kNoVNode) stack.push_back(n.right);
    if (n.left != kNoVNode) stack.push_back(n.left);
  }
  return out;
}

std::vector<VNodeId> VirtualForest::subtree_of(VNodeId root) const {
  std::vector<VNodeId> out;
  std::vector<VNodeId> stack{root};
  while (!stack.empty()) {
    VNodeId h = stack.back();
    stack.pop_back();
    out.push_back(h);
    const VNode& n = node(h);
    if (n.right != kNoVNode) stack.push_back(n.right);
    if (n.left != kNoVNode) stack.push_back(n.left);
  }
  return out;
}

void VirtualForest::restore_grow(int arena_size) {
  FG_CHECK_MSG(arena_size >= static_cast<int>(nodes_.size()),
               "restore cannot shrink the arena");
  VNode placeholder;
  placeholder.alive = false;
  nodes_.resize(static_cast<size_t>(arena_size), placeholder);
}

void VirtualForest::restore_row(VNodeId h, const VNode& row) {
  FG_CHECK(h >= 0 && h < static_cast<VNodeId>(nodes_.size()));
  nodes_[static_cast<size_t>(h)] = row;
}

void VirtualForest::restore_live_count(int n) {
  FG_CHECK(n >= 0 && n <= static_cast<int>(nodes_.size()));
  live_count_ = n;
}

VirtualForest VirtualForest::from_dump(std::vector<VNode> nodes) {
  VirtualForest f;
  f.nodes_ = std::move(nodes);
  f.live_count_ = 0;
  for (const VNode& n : f.nodes_)
    if (n.alive) ++f.live_count_;
  return f;
}

std::string VirtualForest::to_dot(VNodeId root) const {
  std::string out = "digraph RT {\n  rankdir=TB;\n";
  for (VNodeId h : subtree_of(root)) {
    const VNode& n = node(h);
    out += "  n" + std::to_string(h) + " [label=\"(" + std::to_string(n.owner) + "," +
           std::to_string(n.other) + ")\", shape=" + (n.is_leaf ? "box" : "ellipse") +
           "];\n";
    if (n.left != kNoVNode)
      out += "  n" + std::to_string(h) + " -> n" + std::to_string(n.left) + ";\n";
    if (n.right != kNoVNode)
      out += "  n" + std::to_string(h) + " -> n" + std::to_string(n.right) + ";\n";
  }
  out += "}\n";
  return out;
}

bool VirtualForest::is_ancestor(VNodeId anc, VNodeId h) const {
  FG_CHECK(exists(anc) && exists(h));
  for (VNodeId cur = h; cur != kNoVNode; cur = nodes_[static_cast<size_t>(cur)].parent)
    if (cur == anc) return true;
  return false;
}

}  // namespace fg
