// The virtual forest underlying the Forgiving Graph (Sections 3 and 4.2).
//
// Every deleted processor is replaced by a Reconstruction Tree (RT): a haft
// whose leaves are "real nodes" — one per surviving endpoint of an edge of
// G' incident to a deleted processor — and whose internal nodes are "helper"
// nodes, each simulated by the processor chosen through the representative
// mechanism. The actual network G is the homomorphic image of this forest:
// a virtual tree edge (a, b) becomes a network edge between owner(a) and
// owner(b); edges between two virtual nodes of the same processor vanish.
//
// Identity of a virtual node follows Table 1 of the paper: it is determined
// by an edge (owner, other) of G' plus a kind bit — the *real* (leaf) node of
// that edge, or the at-most-one *helper* node the owner simulates for it.
//
// Invariants maintained on every live node (asserted by valid_haft and the
// virtual_forest tests):
//   V1. Parent/child links are symmetric, and height/leaf_count are exact
//       aggregates of the subtree.
//   V2. Every subtree satisfies the haft property: the left child of an
//       internal node is perfect and at least as leafy as the right child.
//   V3. `rep` of an internal node is a leaf of its subtree; make_helper
//       installs the left child's rep as the new helper's simulator and
//       propagates the right child's rep upward (Algorithm A.9), keeping
//       each (owner, other) slot to at most one helper forest-wide.
//   V4. Tombstoned nodes are never resurrected; handles stay stable across
//       dump()/from_dump() so engine checkpoints can round-trip.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace fg {

/// Handle into the virtual node arena; -1 is "none".
using VNodeId = int;
constexpr VNodeId kNoVNode = -1;

/// Key identifying the G' edge slot (owner, other); used as the
/// deterministic merge tie-break (the paper's "NodeID" ordering).
constexpr uint64_t slot_key(NodeId owner, NodeId other) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(owner)) << 32) |
         static_cast<uint32_t>(other);
}

/// Arena of virtual nodes (RT leaves and helpers).
class VirtualForest {
 public:
  struct VNode {
    NodeId owner = kInvalidNode;  ///< Processor simulating this node.
    NodeId other = kInvalidNode;  ///< Other endpoint of the G' edge slot.
    bool is_leaf = true;          ///< Real node (leaf) vs helper (internal).
    VNodeId parent = kNoVNode;
    VNodeId left = kNoVNode;
    VNodeId right = kNoVNode;
    int height = 0;
    int64_t leaf_count = 1;
    /// Representative: the unique leaf of this subtree whose slot simulates
    /// no helper inside this subtree (leaf nodes are their own
    /// representative). Maintained incrementally per Algorithm A.9.
    VNodeId rep = kNoVNode;
    bool alive = true;
  };

  /// Create the real (leaf) node of edge slot (owner, other).
  VNodeId make_leaf(NodeId owner, NodeId other);

  /// Create a helper in slot (owner, other) joining two roots; left becomes
  /// the left child. Representative is inherited from the right child
  /// (Algorithm A.9). Returns the new node.
  VNodeId make_helper(NodeId owner, NodeId other, VNodeId left, VNodeId right);

  // --- Reservation-aware allocation (docs/CONCURRENCY.md). ----------------
  //
  // A reserved commit pre-computes, at plan time, exactly how many vnodes a
  // repair will allocate and fixes every handle by region-order arithmetic
  // alone. reserve_range appends that many *unconstructed* placeholder
  // handles in one arena growth (single-threaded); make_leaf_in /
  // make_helper_in then construct into a specific reserved handle. Because
  // the arena never grows while reserved handles are being constructed, and
  // two disjoint regions only ever touch their own handles, constructions
  // may run concurrently — the layout, and hence the checkpoint bytes, are
  // a pure function of the plan, never of scheduling (contract C4:
  // schedule-independent commit).

  /// Append `count` unconstructed reserved handles in one growth; returns
  /// the first handle of the range (== the pre-call arena_size()).
  /// Single-threaded; live_count() is credited here, so it assumes every
  /// reserved handle will be constructed (checked by unconstructed_in).
  VNodeId reserve_range(int count);

  /// Construct the real (leaf) node of slot (owner, other) into the
  /// reserved handle `h`. Fails loudly (FG_CHECK) if `h` was never
  /// reserved, is out of range, or is already constructed — a reservation
  /// can never silently grow or overwrite the arena.
  void make_leaf_in(VNodeId h, NodeId owner, NodeId other);

  /// Construct a helper into the reserved handle `h` (same semantics as
  /// make_helper otherwise). Safe to call concurrently with other
  /// make_*_in calls on *disjoint* handles/subtrees: it writes only the
  /// reserved node and its two children's parent links, and the arena
  /// storage is pre-grown by reserve_range.
  VNodeId make_helper_in(VNodeId h, NodeId owner, NodeId other, VNodeId left,
                         VNodeId right);

  /// Unconstructed reserved handles left in [begin, end): 0 after a fully
  /// settled commit (the commit path FG_CHECKs exactly that).
  int unconstructed_in(VNodeId begin, VNodeId end) const;

  /// Detach `child` from its parent (both links cleared).
  void unlink_from_parent(VNodeId child);

  /// Tombstone a node. It must have no child links left; it is unlinked
  /// from its parent first.
  void remove(VNodeId h);

  /// remove() without touching live_count(). A concurrent break region
  /// tombstones its own red-teardown helpers with this and reports the
  /// count through its BreakEffects buffer; the single-threaded stitch
  /// settles the shared scalar via credit_removals — the same discipline
  /// reserve_range uses on the allocation side (contract C4).
  void remove_uncounted(VNodeId h);

  /// Debit live_count() by `count` deferred remove_uncounted() calls.
  void credit_removals(int count);

  const VNode& node(VNodeId h) const;
  bool exists(VNodeId h) const;
  VNodeId root_of(VNodeId h) const;
  bool is_root(VNodeId h) const { return node(h).parent == kNoVNode; }

  /// Perfect (the paper's "complete"): leaf_count == 2^height.
  bool is_perfect(VNodeId h) const;

  int live_count() const { return live_count_; }

  /// Total handles ever allocated (live + tombstoned); handles are
  /// 0..arena_size()-1 and `exists` filters the live ones.
  int arena_size() const { return static_cast<int>(nodes_.size()); }

  /// Structural validation of the subtree at `root`: parent/child link
  /// symmetry, height/leaf_count bookkeeping, haft property (left child
  /// perfect and at least as leafy as the right).
  bool valid_haft(VNodeId root) const;

  /// All leaves of the subtree, left-to-right.
  std::vector<VNodeId> leaves_of(VNodeId root) const;

  /// All nodes of the subtree (preorder).
  std::vector<VNodeId> subtree_of(VNodeId root) const;

  /// True iff `anc` is an ancestor of `h` (or equal).
  bool is_ancestor(VNodeId anc, VNodeId h) const;

  /// Graphviz rendering of the RT at `root`: leaves as boxes labelled
  /// "(owner,other)", helpers as ellipses. Handy for docs and debugging.
  std::string to_dot(VNodeId root) const;

  /// Snapshot / restore of the whole arena (including tombstones, so node
  /// handles survive a round-trip). Used by ForgivingGraph::save/load.
  const std::vector<VNode>& dump() const { return nodes_; }
  static VirtualForest from_dump(std::vector<VNode> nodes);

  // --- Snapshot-restore seam (core::StructuralCore::apply_wave_delta). ----
  //
  // A wave delta carries the *final* value of every arena row the commit
  // touched (src/snap); replaying it is a raw overwrite of those rows, not
  // a re-execution of the commit. These three bypass every construction
  // check — they are for restoring a state a real commit already produced
  // (and that a Stabilizer audit re-verifies), never for engine mutations.

  /// Grow the arena to `arena_size` tombstoned placeholder rows (grow-only;
  /// live_count is untouched — restore_live_count settles it).
  void restore_grow(int arena_size);

  /// Overwrite row `h` wholesale.
  void restore_row(VNodeId h, const VNode& row);

  /// Set the live-row count (the delta records the post-commit value).
  void restore_live_count(int n);

 private:
  std::pair<int64_t, int> validate_rec(VNodeId h, bool* ok) const;

  std::vector<VNode> nodes_;
  int live_count_ = 0;
};

}  // namespace fg
