#include "fg/healer_service.h"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <utility>

#include "fg/stabilizer.h"
#include "util/check.h"

namespace fg {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

double HealerStats::latency_percentile(double p) const {
  if (wave_ms.empty()) return 0.0;
  std::vector<double> sorted = wave_ms;
  std::sort(sorted.begin(), sorted.end());
  // Linear interpolation between closest ranks (the numpy default).
  double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

HealerService::HealerService(const Graph& g0, HealerConfig config)
    : fg_(g0), config_(config) {
  init();
}

HealerService::HealerService(core::StructuralCore&& restored, uint64_t waves_done,
                             uint64_t ops_done, HealerConfig config)
    : fg_(std::move(restored)), config_(config) {
  // Wave indexing and the resume cursor continue from the restore point, so
  // every sampled guardrail (certify_every, audit_every) and every future
  // delta's cursor line up with the uninterrupted run.
  stats_.waves = static_cast<int64_t>(waves_done);
  stats_.ops = static_cast<int64_t>(ops_done);
  ingested_ops_ = static_cast<int64_t>(ops_done);
  init();
}

void HealerService::init() {
  FG_CHECK_MSG(config_.wave_size >= 1, "wave_size must be at least 1");
  FG_CHECK_MSG(config_.certify_every >= 0, "certify_every must be non-negative");
  FG_CHECK_MSG(config_.audit_every >= 0, "audit_every must be non-negative");
  FG_CHECK_MSG(config_.snapshot_every >= 0, "snapshot_every must be non-negative");
  FG_CHECK_MSG(config_.snapshot_every == 0 || !config_.snapshot_path.empty(),
               "snapshot_every needs a snapshot_path");
  fg_.set_shard_workers(config_.plan_workers);
  fg_.set_commit_workers(config_.commit_workers);
  fg_.set_break_workers(config_.break_workers);
  if (config_.snapshot_every > 0) {
    snapshot_ = std::make_unique<SnapshotWriter>(config_.snapshot_path + ".base",
                                                 config_.snapshot_path + ".log",
                                                 config_.snapshot_every);
    std::string err;
    bool wrote = snapshot_->begin(fg_.core(), static_cast<uint64_t>(stats_.waves),
                                  static_cast<uint64_t>(ingested_ops_), &err);
    FG_CHECK_MSG(wrote, "snapshot: initial base write failed");
    fg_.core().set_delta_recorder(snapshot_.get());
  }
  if (config_.overlap) planner_.thread = std::thread([this] { planner_loop(); });
}

HealerService::~HealerService() {
  if (snapshot_) fg_.core().set_delta_recorder(nullptr);
  if (planner_.thread.joinable()) {
    {
      std::lock_guard<std::mutex> lock(planner_.mutex);
      planner_.state = Planner::State::kStop;
    }
    planner_.cv.notify_all();
    planner_.thread.join();
  }
}

void HealerService::push(const ChurnOp& op) {
  ++stats_.ops;
  if (inflight_) {
    // A plan is in flight: the engine must stay quiescent (the planner is
    // reading it), so the op buffers in stream order. Once a whole next
    // chunk is here, wave N has had its full overlap window — retire it
    // and let the buffered ops through.
    pending_.push_back(op);
    if (op.kind == ChurnOp::Kind::kDelete) ++pending_deletes_;
    if (pending_deletes_ >= config_.wave_size) {
      retire_inflight();
      drain_pending();
    }
    return;
  }
  ingest(op);
}

void HealerService::flush() {
  for (;;) {
    if (inflight_) {
      retire_inflight();
      drain_pending();
      continue;
    }
    if (!pending_.empty()) {
      drain_pending();
      continue;
    }
    if (!forming_.empty()) {
      dispatch_wave();
      continue;
    }
    break;
  }
  check_pending_certificate();
}

int64_t HealerService::run(ChurnStream& stream) {
  int64_t before = stats_.ops;
  ChurnOp op;
  while (stream.next(&op)) push(op);
  flush();
  return stats_.ops - before;
}

void HealerService::ingest(const ChurnOp& op) {
  FG_CHECK(!inflight_);
  ++ingested_ops_;
  if (op.kind == ChurnOp::Kind::kInsert) {
    fg_.insert(op.neighbors);
    ++stats_.inserts;
    return;
  }
  // Deletes are validated against the live engine at ingest time — which,
  // by the quiescence rule above, is always after every earlier wave
  // committed, so serial and pipelined execution agree on every drop.
  if (!fg_.is_alive(op.victim) || forming_set_.contains(op.victim)) {
    ++stats_.dropped_deletes;
    return;
  }
  forming_.push_back(op.victim);
  forming_set_.insert(op.victim);
  if (static_cast<int>(forming_.size()) >= config_.wave_size) dispatch_wave();
}

void HealerService::dispatch_wave() {
  FG_CHECK(!inflight_ && !forming_.empty());
  std::vector<NodeId> victims = std::move(forming_);
  forming_.clear();
  forming_set_.clear();

  // The wave's resume cursor: every op ingested so far is either applied
  // (inserts), dropped, committed in an earlier wave, or in THIS wave — so
  // once this wave commits, the state reflects exactly ops [0, cursor). No
  // further ingest runs before the commit (in-flight ops buffer), so
  // stamping here covers both modes.
  if (snapshot_) snapshot_->set_cursor(static_cast<uint64_t>(ingested_ops_));

  if (!config_.overlap) {
    // Serial reference: plan inline, then run the identical admission path
    // the pipelined loop runs — same hook, same gate, same commit — so the
    // two modes share every line that decides *what* commits.
    const int64_t wave = stats_.waves;
    Clock::time_point t0 = Clock::now();
    core::RepairPlan plan = fg_.plan_delete_batch(victims);
    stats_.plan_ms.push_back(ms_since(t0));
    admit_and_commit(std::move(victims), std::move(plan), wave, t0);
    check_pending_certificate();
    return;
  }

  inflight_victims_ = std::move(victims);
  {
    std::lock_guard<std::mutex> lock(planner_.mutex);
    FG_CHECK(planner_.state == Planner::State::kIdle);
    planner_.victims = inflight_victims_;
    planner_.state = Planner::State::kRequested;
  }
  planner_.cv.notify_all();
  inflight_ = true;
}

void HealerService::retire_inflight() {
  FG_CHECK(inflight_);
  // The deferred guardrail check of the previously sampled wave runs here,
  // while the in-flight plan may still be computing — certificate checking
  // never touches the engine, so it overlaps the read-only planning.
  check_pending_certificate();

  Clock::time_point t0 = Clock::now();
  core::RepairPlan plan;
  {
    std::unique_lock<std::mutex> lock(planner_.mutex);
    planner_.cv.wait(lock, [&] { return planner_.state == Planner::State::kDone; });
    plan = std::move(planner_.plan);
    stats_.plan_ms.push_back(planner_.plan_ms);
    planner_.state = Planner::State::kIdle;
  }
  inflight_ = false;
  admit_and_commit(std::move(inflight_victims_), std::move(plan), stats_.waves, t0);
}

void HealerService::admit_and_commit(std::vector<NodeId> victims,
                                     core::RepairPlan plan, int64_t wave,
                                     Clock::time_point t0) {
  if (admission_hook_) admission_hook_(wave);

  // The epoch gate: the plan was computed against an epoch-stamped logical
  // snapshot; if any mutation landed since — an op the pipeline sequenced
  // here, or an external engine() call — the plan is stale, and committing
  // it would die on the core's FG_CHECK. Detect, re-plan, never commit.
  if (plan.epoch != fg_.mutation_epoch()) {
    ++stats_.stale_replans;
    // The intervening mutation may even have killed victims (an external
    // delete through engine()); re-validate before re-planning.
    std::vector<NodeId> alive;
    alive.reserve(victims.size());
    for (NodeId v : victims)
      if (fg_.is_alive(v)) alive.push_back(v);
    stats_.dropped_deletes += static_cast<int64_t>(victims.size() - alive.size());
    victims = std::move(alive);
    if (victims.empty()) {
      ++stats_.waves;
      stats_.wave_ms.push_back(ms_since(t0));
      return;
    }
    plan = fg_.plan_delete_batch(victims);
  }

  const bool sampled =
      config_.certify_every > 0 && wave % config_.certify_every == 0;
  if (sampled) {
    collector_.certs.clear();
    fg_.set_certificate_sink(&collector_);
  }
  fg_.commit_delete_batch(plan);
  if (sampled) {
    fg_.set_certificate_sink(nullptr);
    FG_CHECK(collector_.certs.size() == 1);
    pending_cert_ = std::move(collector_.certs.front());
    pending_cert_wave_ = wave;
    collector_.certs.clear();
    ++stats_.certified_waves;
  }

  // Self-stabilization guardrail (config_.audit_every): a sampled
  // post-commit audit against I1-I5. On any violation, alert with the
  // report summary and stabilize immediately — the recovery wave's
  // certificate goes through the same save/check path as a sampled
  // deletion wave, but inline: recovery is an emergency, not a steady
  // state, so its check never defers. Runs with no plan in flight, which
  // is what lets stabilize() mutate the engine (same rule as the
  // admission hook above).
  if (config_.audit_every > 0 && wave % config_.audit_every == 0) {
    ++stats_.audits;
    Stabilizer stabilizer(fg_);
    AuditReport report = stabilizer.audit();
    if (!report.clean()) {
      stats_.audit_violations += report.total;
      if (alert_) alert_(wave, "audit: " + report.summary());
      collector_.certs.clear();
      fg_.set_certificate_sink(&collector_);
      RecoveryStats recovery = stabilizer.stabilize();
      fg_.set_certificate_sink(nullptr);
      FG_CHECK(recovery.recovered && collector_.certs.size() == 1);
      ++stats_.recoveries;
      if (cert_stream_ != nullptr) collector_.certs.front().save(*cert_stream_);
      cert::CheckResult res = cert::check(collector_.certs.front());
      collector_.certs.clear();
      if (!res.ok) {
        ++stats_.cert_rejections;
        if (alert_) alert_(wave, res.diagnostic);
      }
    }
  }
  stats_.deletes += static_cast<int64_t>(victims.size());
  ++stats_.waves;
  stats_.wave_ms.push_back(ms_since(t0));

  // Snapshot upkeep, with no plan in flight: the wave's delta was appended
  // when the commit fired on_wave_committed; rotate to a fresh base when
  // due, or rebase after anything that diverged the mutation epoch from
  // the op stream (the stabilize() recovery above, an admission-hook
  // mutation). Disk failures degrade to an alert, never to a crash — the
  // service keeps healing, the snapshot goes stale.
  if (snapshot_) {
    snapshot_->maintain(fg_.core());
    std::string err = snapshot_->take_error();
    if (!err.empty() && alert_) alert_(wave, "snapshot: " + err);
  }
}

void HealerService::drain_pending() {
  // Ops buffered during the retired wave's tenure, in stream order.
  // Ingesting them may fill and dispatch the next wave mid-drain; the rest
  // re-buffers behind it, and if a whole further chunk is already waiting,
  // that wave retires too — a large burst pipelines through wave by wave.
  for (;;) {
    std::vector<ChurnOp> batch;
    batch.swap(pending_);
    pending_deletes_ = 0;
    for (ChurnOp& op : batch) {
      if (inflight_) {
        if (op.kind == ChurnOp::Kind::kDelete) ++pending_deletes_;
        pending_.push_back(std::move(op));
      } else {
        ingest(op);
      }
    }
    if (inflight_ && pending_deletes_ >= config_.wave_size) {
      retire_inflight();
      continue;
    }
    break;
  }
}

void HealerService::check_pending_certificate() {
  if (!pending_cert_) return;
  if (cert_stream_ != nullptr) pending_cert_->save(*cert_stream_);
  cert::CheckResult res = cert::check(*pending_cert_);
  if (!res.ok) {
    ++stats_.cert_rejections;
    if (alert_) alert_(pending_cert_wave_, res.diagnostic);
  }
  pending_cert_.reset();
}

void HealerService::planner_loop() {
  std::unique_lock<std::mutex> lock(planner_.mutex);
  for (;;) {
    planner_.cv.wait(lock, [&] {
      return planner_.state == Planner::State::kRequested ||
             planner_.state == Planner::State::kStop;
    });
    if (planner_.state == Planner::State::kStop) return;
    std::vector<NodeId> victims = std::move(planner_.victims);
    lock.unlock();
    // Read-only against the quiescent engine: the service buffers every
    // mutation while this runs (the snapshot the plan's epoch stamps).
    Clock::time_point t0 = Clock::now();
    core::RepairPlan plan = fg_.plan_delete_batch(victims);
    double plan_ms = ms_since(t0);
    lock.lock();
    if (planner_.state == Planner::State::kStop) return;
    planner_.plan = std::move(plan);
    planner_.plan_ms = plan_ms;
    planner_.state = Planner::State::kDone;
    planner_.cv.notify_all();
  }
}

}  // namespace fg
