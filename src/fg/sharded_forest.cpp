#include "fg/sharded_forest.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "util/check.h"

namespace fg {

// ---------------------------------------------------------------------------
// CommitPool.

CommitPool::CommitPool(int background) {
  FG_CHECK_MSG(background >= 0, "negative pool size");
  threads_.reserve(static_cast<size_t>(background));
  for (int i = 0; i < background; ++i) threads_.emplace_back([this] { worker(); });
  // Startup barrier: don't return until every worker is parked on the
  // condition variable. Without it the threads' first-ever scheduling
  // lands inside whatever the caller times next — on a single-core box
  // that bills thread startup to the first commit.
  std::unique_lock<std::mutex> lock(mutex_);
  parked_cv_.wait(lock, [&] { return parked_ == background; });
}

CommitPool::~CommitPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void CommitPool::dispatch(std::function<void()> job) {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = std::move(job);
    ++generation_;
  }
  wake_.notify_all();
}

void CommitPool::worker() {
  uint64_t seen = 0;
  bool first = true;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (first) {
        first = false;
        ++parked_;
        parked_cv_.notify_one();
      }
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      // A worker that slept through several generations runs only the
      // newest job: every earlier dispatch already met its completion
      // condition before the next one was issued, so skipped jobs have no
      // work left by construction.
      seen = generation_;
      job = job_;
    }
    job();
  }
}

// ---------------------------------------------------------------------------
// ShardedForest.

void ShardedForest::set_workers(int n) {
  FG_CHECK_MSG(n >= 1, "worker count must be at least 1");
  workers_ = n;
}

void ShardedForest::set_commit_workers(int n) {
  FG_CHECK_MSG(n >= 1, "worker count must be at least 1");
  commit_workers_ = n;
  rebuild_pool();
}

void ShardedForest::set_break_workers(int n) {
  FG_CHECK_MSG(n >= 1, "worker count must be at least 1");
  break_workers_ = n;
  rebuild_pool();
}

void ShardedForest::rebuild_pool() {
  // One pool serves both the break and the merge fan-out; size it for the
  // larger knob. Don't build a pool the dispatch gates below can never
  // use: on a box with a single hardware thread, merely having extra
  // threads switches the allocator out of its single-threaded fast path
  // and slows the (alloc-heavy) inline commit — with zero chance of a
  // fan-out win. Contract C4 makes the structure identical either way.
  static const unsigned hw_threads = std::thread::hardware_concurrency();
  const int n = std::max(commit_workers_, break_workers_);
  const int background = (n > 1 && hw_threads != 1) ? n - 1 : 0;
  if (background == pool_background_ && (commit_pool_ != nullptr) == (background > 0))
    return;
  pool_background_ = background;
  commit_pool_ = background > 0 ? std::make_unique<CommitPool>(background) : nullptr;
}

core::RepairPlan ShardedForest::plan(const core::StructuralCore& core,
                                     std::span<const NodeId> victims,
                                     core::RegionSplit split) const {
  auto t0 = std::chrono::steady_clock::now();
  core::DeletionAnalysis analysis = core.analyze_deletion(victims, split);
  auto t1 = std::chrono::steady_clock::now();

  core::RepairPlan plan;
  plan.regions.resize(analysis.seeds.size());
  const int regions = static_cast<int>(analysis.seeds.size());
  const int fanout = std::min(workers_, regions);
  if (fanout <= 1) {
    for (int r = 0; r < regions; ++r) core.plan_region(analysis, r, &plan.regions[static_cast<size_t>(r)]);
  } else {
    // Every worker pulls the next unplanned region off a shared counter and
    // writes into its own pre-sized slot: no two threads ever touch the
    // same RegionPlan, and plan_region only reads the core, so the result
    // is the sequential plan regardless of scheduling.
    std::atomic<int> next{0};
    auto work = [&] {
      for (int r = next.fetch_add(1); r < regions; r = next.fetch_add(1))
        core.plan_region(analysis, r, &plan.regions[static_cast<size_t>(r)]);
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(fanout));
    for (int t = 0; t < fanout; ++t) pool.emplace_back(work);
    for (std::thread& t : pool) t.join();
  }

  core.finalize_plan(analysis, &plan);
  plan.profile.partition_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return plan;
}

std::vector<VNodeId> ShardedForest::execute(core::StructuralCore& core,
                                            const core::RepairPlan& plan) {
  const int regions = static_cast<int>(plan.regions.size());
  std::vector<std::vector<VNodeId>> pieces;
  // Fanning break out is, like the merge fan-out below, a pure scheduling
  // choice: break_region in recorded mode mutates only region-local forest
  // state, and the BreakEffects stitch replays every shared-state write in
  // region id order — the exact sequence the sequential path applies
  // (contract C4; docs/CONCURRENCY.md, the break-effects argument).
  if (!commit_pool_ || break_workers_ <= 1 || regions <= 1) {
    pieces = core.commit_break(plan);
  } else {
    core.begin_break(plan);
    pieces.resize(static_cast<size_t>(regions));
    // Grow-only scratch, same pooling discipline as the merge side.
    std::vector<core::StructuralCore::BreakEffects>& effects = break_effects_scratch_;
    if (effects.size() < static_cast<size_t>(regions))
      effects.resize(static_cast<size_t>(regions));
    // Drain-a-counter fan-out over the shared pool (see commit below for
    // the ownership and memory-ordering story — identical here: `broken`
    // release/acquire pairs the workers' region-local writes with the
    // stitch).
    struct Ctx {
      std::atomic<int> next{0};
      std::atomic<int> broken{0};
    };
    auto ctx = std::make_shared<Ctx>();
    core::StructuralCore* core_p = &core;
    const core::RepairPlan* plan_p = &plan;
    auto* pieces_p = &pieces;
    auto* effects_p = &effects;
    auto work = [ctx, core_p, plan_p, pieces_p, effects_p, regions] {
      for (int r = ctx->next.fetch_add(1); r < regions; r = ctx->next.fetch_add(1)) {
        (*pieces_p)[static_cast<size_t>(r)] = core_p->break_region(
            plan_p->regions[static_cast<size_t>(r)], &(*effects_p)[static_cast<size_t>(r)]);
        ctx->broken.fetch_add(1, std::memory_order_release);
      }
    };
    commit_pool_->dispatch(work);
    work();  // the caller participates too
    while (ctx->broken.load(std::memory_order_acquire) < regions)
      std::this_thread::yield();

    // The deterministic stitch, then the victims die exactly as in the
    // sequential break.
    for (int r = 0; r < regions; ++r)
      core.apply_break_effects(plan.regions[static_cast<size_t>(r)],
                               effects[static_cast<size_t>(r)]);
    core.finish_break(plan);
  }
  std::vector<VNodeId> roots = commit(core, plan, std::move(pieces));
  // The wave is fully settled (reservation checked, stitch applied): let
  // the snapshot layer read the touched state's final values and emit the
  // wave's delta record (core::DeltaRecorder contract).
  if (core::DeltaRecorder* rec = core.delta_recorder()) rec->on_wave_committed(core, plan);
  return roots;
}

std::vector<VNodeId> ShardedForest::commit(core::StructuralCore& core,
                                           const core::RepairPlan& plan,
                                           std::vector<std::vector<VNodeId>>&& pieces) {
  FG_CHECK(pieces.size() == plan.regions.size());
  const int regions = static_cast<int>(plan.regions.size());
  std::vector<VNodeId> region_roots(static_cast<size_t>(regions), kNoVNode);

  // Fanning out is a pure scheduling choice — the arena-id reservation
  // makes the result identical either way (contract C4) — so take it only
  // when it can pay: more than one region and a pool to run it on (none
  // exists on single-hardware-thread boxes, see set_commit_workers).
  // tests/arena_reservation_test.cpp drives CommitPool + merge_region
  // directly, so the concurrent path stays TSan-covered even on machines
  // where this gate keeps the engine inline.
  if (!commit_pool_ || regions <= 1) {
    // Inline: merge with immediate side effects — no record/replay pass.
    for (int r = 0; r < regions; ++r)
      region_roots[static_cast<size_t>(r)] =
          core.merge_region(plan.regions[static_cast<size_t>(r)],
                            std::move(pieces[static_cast<size_t>(r)]), nullptr);
  } else {
    // Reused wave to wave, grow-only: a smaller wave must not destroy the
    // trailing slots' image_edges capacity, so a steady-state commit
    // allocates no per-region bookkeeping (merge_region resets its slot).
    std::vector<core::StructuralCore::MergeEffects>& effects = effects_scratch_;
    if (effects.size() < static_cast<size_t>(regions))
      effects.resize(static_cast<size_t>(regions));
    // Same drain-a-counter shape as the plan side: every participant pulls
    // the next unmerged region and builds its RT inside the region's
    // reserved arena range. merge_region touches region-local state only
    // and records the shared-state side effects into the region's own
    // pre-sized MergeEffects slot, so no two participants ever write the
    // same memory — the schedule decides *who* merges a region, never
    // *what* the merge produces (contract C4).
    //
    // The counters live in a shared_ptr context owned by the job closure:
    // a worker that wakes after this wave completed finds `next` exhausted
    // and touches nothing else, so the caller never has to wait for
    // threads to park — only for `merged` to reach the region count
    // (release/acquire pairs with the stitch below reading the workers'
    // region-local writes).
    struct Ctx {
      std::atomic<int> next{0};
      std::atomic<int> merged{0};
    };
    auto ctx = std::make_shared<Ctx>();
    core::StructuralCore* core_p = &core;
    const core::RepairPlan* plan_p = &plan;
    auto* pieces_p = &pieces;
    auto* effects_p = &effects;
    auto work = [ctx, core_p, plan_p, pieces_p, effects_p, regions] {
      for (int r = ctx->next.fetch_add(1); r < regions; r = ctx->next.fetch_add(1)) {
        core_p->merge_region(plan_p->regions[static_cast<size_t>(r)],
                             std::move((*pieces_p)[static_cast<size_t>(r)]),
                             &(*effects_p)[static_cast<size_t>(r)]);
        ctx->merged.fetch_add(1, std::memory_order_release);
      }
    };
    commit_pool_->dispatch(work);
    work();  // the caller participates too
    while (ctx->merged.load(std::memory_order_acquire) < regions)
      std::this_thread::yield();

    // The deterministic stitch: fold every region's recorded side effects
    // (image edges, counters, final-RT bookkeeping) into the shared state
    // in region id order — exactly the sequence the inline path applies.
    for (int r = 0; r < regions; ++r)
      region_roots[static_cast<size_t>(r)] =
          core.apply_merge_effects(effects[static_cast<size_t>(r)]);
  }

  core.check_reservation_settled(plan);
  note_commit(plan, region_roots);
  return region_roots;
}

void ShardedForest::note_commit(const core::RepairPlan& plan,
                                std::span<const VNodeId> region_roots) {
  FG_CHECK(region_roots.size() == plan.regions.size());
  auto lookup = [this](VNodeId root) {
    return std::lower_bound(
        region_of_root_.begin(), region_of_root_.end(), root,
        [](const std::pair<VNodeId, int>& e, VNodeId r) { return e.first < r; });
  };
  // RTs the wave broke up no longer exist; drop their stale assignments so
  // region_of_root never reports a region for a destroyed root.
  for (const core::RegionPlan& region : plan.regions)
    for (VNodeId r : region.roots) {
      auto it = lookup(r);
      if (it != region_of_root_.end() && it->first == r) region_of_root_.erase(it);
    }
  for (size_t i = 0; i < region_roots.size(); ++i) {
    if (region_roots[i] == kNoVNode) continue;
    auto it = lookup(region_roots[i]);
    if (it != region_of_root_.end() && it->first == region_roots[i])
      it->second = plan.regions[i].id;
    else
      region_of_root_.insert(it, {region_roots[i], plan.regions[i].id});
  }
  last_assignment_ = plan.victim_region;
  last_region_roots_.assign(region_roots.begin(), region_roots.end());
}

int ShardedForest::region_of_root(VNodeId root) const {
  auto it = std::lower_bound(
      region_of_root_.begin(), region_of_root_.end(), root,
      [](const std::pair<VNodeId, int>& e, VNodeId r) { return e.first < r; });
  return (it == region_of_root_.end() || it->first != root) ? -1 : it->second;
}

}  // namespace fg
