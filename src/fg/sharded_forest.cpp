#include "fg/sharded_forest.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "util/check.h"

namespace fg {

void ShardedForest::set_workers(int n) {
  FG_CHECK_MSG(n >= 1, "worker count must be at least 1");
  workers_ = n;
}

core::RepairPlan ShardedForest::plan(const core::StructuralCore& core,
                                     std::span<const NodeId> victims,
                                     core::RegionSplit split) const {
  auto t0 = std::chrono::steady_clock::now();
  core::DeletionAnalysis analysis = core.analyze_deletion(victims, split);
  auto t1 = std::chrono::steady_clock::now();

  core::RepairPlan plan;
  plan.regions.resize(analysis.seeds.size());
  const int regions = static_cast<int>(analysis.seeds.size());
  const int fanout = std::min(workers_, regions);
  if (fanout <= 1) {
    for (int r = 0; r < regions; ++r) core.plan_region(analysis, r, &plan.regions[static_cast<size_t>(r)]);
  } else {
    // Every worker pulls the next unplanned region off a shared counter and
    // writes into its own pre-sized slot: no two threads ever touch the
    // same RegionPlan, and plan_region only reads the core, so the result
    // is the sequential plan regardless of scheduling.
    std::atomic<int> next{0};
    auto work = [&] {
      for (int r = next.fetch_add(1); r < regions; r = next.fetch_add(1))
        core.plan_region(analysis, r, &plan.regions[static_cast<size_t>(r)]);
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(fanout));
    for (int t = 0; t < fanout; ++t) pool.emplace_back(work);
    for (std::thread& t : pool) t.join();
  }

  core::StructuralCore::finalize_plan(analysis, &plan);
  plan.profile.partition_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return plan;
}

void ShardedForest::note_commit(const core::RepairPlan& plan,
                                std::span<const VNodeId> region_roots) {
  FG_CHECK(region_roots.size() == plan.regions.size());
  // RTs the wave broke up no longer exist; drop their stale assignments so
  // region_of_root never reports a region for a destroyed root.
  for (const core::RegionPlan& region : plan.regions)
    for (VNodeId r : region.roots) region_of_root_.erase(r);
  for (size_t i = 0; i < region_roots.size(); ++i)
    if (region_roots[i] != kNoVNode)
      region_of_root_[region_roots[i]] = plan.regions[i].id;
  last_assignment_ = plan.victim_region;
}

int ShardedForest::region_of_root(VNodeId root) const {
  auto it = region_of_root_.find(root);
  return it == region_of_root_.end() ? -1 : it->second;
}

}  // namespace fg
