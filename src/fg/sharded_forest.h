// Sharding layer over the virtual forest (docs/DESIGN.md, "Plan/commit
// pipeline and the sharded forest").
//
// A deletion wave decomposes into *connected dirty regions*: victims and
// the RTs their virtual nodes live in, united whenever two victims share an
// RT or a G' edge. The paper's repair is inherently local — every broken
// RT is rebuilt from its own neighborhood — so disjoint regions heal
// independently: their plans read disjoint parts of the structure and
// their commits build disjoint RTs.
//
// ShardedForest exploits that locality on the *plan* side: it partitions a
// wave (core::StructuralCore::analyze_deletion), then fans the read-only
// per-region planning out over a small worker pool. The *commit* side
// stays single-threaded and in deterministic region order (ascending
// smallest-victim id — the shard ordering rule), which is what keeps the
// Healer contract C4: a sharded-concurrent repair replays bit-identically
// to a single-threaded one, because each RegionPlan is a pure function of
// (core, victims) and the workers only decide *who* computes it, never
// *what* it contains (pinned by tests/shard_determinism_test.cpp).
//
// It also remembers, per committed wave, which region every victim and
// every newly built RT belonged to — the assignment trace `r` lines record
// so a replay divergence can be localized to one region.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "fg/core/structural_core.h"
#include "fg/virtual_forest.h"

namespace fg {

/// Region partitioning + concurrent planning + shard bookkeeping.
class ShardedForest {
 public:
  explicit ShardedForest(int workers = 1) { set_workers(workers); }

  /// Worker threads used to plan disjoint regions concurrently: 1 plans
  /// inline on the calling thread; n > 1 spawns up to min(n, regions)
  /// workers per wave. Any value yields the identical plan.
  void set_workers(int n);
  int workers() const { return workers_; }

  /// Plan a deletion wave against `core`: bit-identical to
  /// core.plan_deletion(victims, split) at every worker count.
  core::RepairPlan plan(const core::StructuralCore& core,
                        std::span<const NodeId> victims,
                        core::RegionSplit split = core::RegionSplit::kPerRegion) const;

  /// Record a committed plan: the wave's victim -> region assignment and
  /// each final RT root's region id. `region_roots` is aligned with
  /// plan.regions (kNoVNode for a region that produced no RT).
  void note_commit(const core::RepairPlan& plan,
                   std::span<const VNodeId> region_roots);

  /// Region id the wave that created `root` assigned to it, or -1 if this
  /// root was not a final RT of a committed wave (or has since been broken
  /// up by a later repair).
  int region_of_root(VNodeId root) const;

  /// Victim -> region ids of the most recently committed wave, aligned
  /// with that wave's victim order (the payload of trace `r` lines).
  const std::vector<int>& last_assignment() const { return last_assignment_; }

 private:
  int workers_ = 1;
  std::unordered_map<VNodeId, int> region_of_root_;
  std::vector<int> last_assignment_;
};

}  // namespace fg
