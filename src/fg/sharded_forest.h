// Sharding layer over the virtual forest (docs/DESIGN.md, "Plan/commit
// pipeline and the sharded forest"; docs/CONCURRENCY.md for the full
// concurrency model).
//
// A deletion wave decomposes into *connected dirty regions*: victims and
// the RTs their virtual nodes live in, united whenever two victims share an
// RT or a G' edge. The paper's repair is inherently local — every broken
// RT is rebuilt from its own neighborhood — so disjoint regions heal
// independently: their plans read disjoint parts of the structure and
// their commits build disjoint RTs.
//
// ShardedForest exploits that locality across the whole pipeline:
//
//   * Plan: it partitions a wave (core::StructuralCore::analyze_deletion),
//     then fans the read-only per-region planning out over per-wave worker
//     threads (set_workers).
//   * Break: it fans the per-region break scripts out over the persistent
//     pool (set_break_workers, execute). Each region's break mutates only
//     its own forest nodes and reserved arena handles; every shared-state
//     write — image-edge drops, slot-table entries, counters, the forest
//     live count — is recorded into a region-local
//     core::StructuralCore::BreakEffects buffer and applied by a
//     single-threaded stitch in region id order.
//   * Commit: it fans the per-region merges out over the same pool
//     (set_commit_workers). This is safe because the plan carries an
//     *arena-id reservation*: every vnode handle the commit allocates is
//     fixed at plan time by region order alone, so concurrent merges write
//     disjoint, pre-grown parts of the arena, and the shared-state side
//     effects (image edges, counters) are recorded per region and applied
//     by a final single-threaded stitch in deterministic region order.
//
// All three fan-outs preserve the Healer contract C4, strengthened from
// "single-threaded commit" to "schedule-independent commit": the healed
// structure — checkpoint bytes included — is a pure function of the input
// partition, never of scheduling; the workers only decide *who* computes a
// region's plan or applies its merge, never *what* it contains (pinned by
// tests/shard_determinism_test.cpp and tests/arena_reservation_test.cpp,
// in Release/Debug and under the TSan preset).
//
// It also remembers, per committed wave, which region every victim and
// every newly built RT belonged to — the assignment trace `r` lines record
// so a replay divergence can be localized to one region.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "fg/core/structural_core.h"
#include "fg/virtual_forest.h"

namespace fg {

/// A persistent pool of `workers - 1` background threads for drain-style
/// jobs: every participant (the caller included) pulls work items off a
/// shared atomic counter inside the job closure, so participation is
/// symmetric and completion is a property of the *work*, not the threads.
/// Spawned once per set_commit_workers call, not per wave — a commit pays
/// one notify, not thread creation.
///
/// dispatch() is fire-and-forget: it hands the pool a copy of the job and
/// wakes the threads, but never blocks on them. The caller runs the job
/// itself and then waits only until the job's own completion condition
/// holds (e.g. a merged-regions counter with release/acquire ordering —
/// ShardedForest::commit below). A worker that wakes late finds the work
/// counter exhausted and returns without touching anything but the job's
/// shared_ptr-owned context, so a stale job is a no-op, never a dangling
/// reference — and the caller's critical path never waits for a thread to
/// park, which is what keeps w > 1 commits close to w = 1 even on a
/// single-core box.
class CommitPool {
 public:
  explicit CommitPool(int background);
  ~CommitPool();

  CommitPool(const CommitPool&) = delete;
  CommitPool& operator=(const CommitPool&) = delete;

  /// Hand `job` to every background thread and return immediately. The
  /// job must be drain-style: safe to run concurrently on all threads, a
  /// no-op once its work counter is exhausted, and owning (via shared_ptr
  /// capture) any state a late waker could still touch.
  void dispatch(std::function<void()> job);

 private:
  void worker();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable parked_cv_;
  std::function<void()> job_;
  uint64_t generation_ = 0;
  int parked_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Region partitioning + concurrent planning + parallel deterministic
/// commit + shard bookkeeping.
class ShardedForest {
 public:
  explicit ShardedForest(int workers = 1) { set_workers(workers); }

  /// Worker threads used to plan disjoint regions concurrently: 1 plans
  /// inline on the calling thread; n > 1 spawns up to min(n, regions)
  /// workers per wave. Any value yields the identical plan.
  void set_workers(int n);
  int workers() const { return workers_; }

  /// Worker threads used to merge disjoint regions concurrently during
  /// commit: 1 merges inline; n > 1 keeps a persistent pool of n - 1
  /// background threads. Any value replays byte-identical checkpoints —
  /// the arena-id reservation makes the commit schedule-independent
  /// (contract C4, docs/CONCURRENCY.md).
  void set_commit_workers(int n);
  int commit_workers() const { return commit_workers_; }

  /// Worker threads used to break disjoint regions concurrently during
  /// commit (execute): 1 breaks inline via the core's sequential path;
  /// n > 1 fans break_region out over the persistent pool and stitches
  /// the recorded BreakEffects in region id order. Any value replays
  /// byte-identical checkpoints and certificate bytes (contract C4).
  void set_break_workers(int n);
  int break_workers() const { return break_workers_; }

  /// Execute a reserved plan end to end against `core`: the break phase
  /// (fanned out over the pool when break workers > 1, sequential
  /// otherwise), then the merge phase via commit(). Returns each region's
  /// final RT root, aligned with plan.regions.
  std::vector<VNodeId> execute(core::StructuralCore& core,
                               const core::RepairPlan& plan);

  /// Plan a deletion wave against `core`: bit-identical to
  /// core.plan_deletion(victims, split) at every worker count.
  core::RepairPlan plan(const core::StructuralCore& core,
                        std::span<const NodeId> victims,
                        core::RegionSplit split = core::RegionSplit::kPerRegion) const;

  /// Commit the merge phase of a reserved plan whose break phase already
  /// ran (core.commit_break, kReserved): merge disjoint regions on the
  /// commit pool, then stitch their recorded side effects single-threaded
  /// in region id order, verify the reservation settled, and record the
  /// shard bookkeeping. Returns each region's final RT root, aligned with
  /// plan.regions.
  std::vector<VNodeId> commit(core::StructuralCore& core,
                              const core::RepairPlan& plan,
                              std::vector<std::vector<VNodeId>>&& pieces);

  /// Record a committed plan: the wave's victim -> region assignment and
  /// each final RT root's region id. `region_roots` is aligned with
  /// plan.regions (kNoVNode for a region that produced no RT).
  void note_commit(const core::RepairPlan& plan,
                   std::span<const VNodeId> region_roots);

  /// Region id the wave that created `root` assigned to it, or -1 if this
  /// root was not a final RT of a committed wave (or has since been broken
  /// up by a later repair).
  int region_of_root(VNodeId root) const;

  /// Victim -> region ids of the most recently committed wave, aligned
  /// with that wave's victim order (the payload of trace `r` lines).
  const std::vector<int>& last_assignment() const { return last_assignment_; }

  /// Final RT root per region of the most recently committed wave, aligned
  /// with that wave's plan.regions (kNoVNode for a region that produced no
  /// RT). What the certificate layer normalizes into per-region witnesses
  /// (harness/certificate.h) — identical at every worker count, like the
  /// rest of the commit (contract C4).
  const std::vector<VNodeId>& last_region_roots() const {
    return last_region_roots_;
  }

 private:
  /// (Re)build the shared pool for max(commit, break) workers; both
  /// setters funnel through here so one pool serves both fan-outs.
  void rebuild_pool();

  int workers_ = 1;
  int commit_workers_ = 1;
  int break_workers_ = 1;
  int pool_background_ = 0;
  std::unique_ptr<CommitPool> commit_pool_;
  /// Per-region side-effect buffers, reused across waves (scratch pooling).
  std::vector<core::StructuralCore::MergeEffects> effects_scratch_;
  std::vector<core::StructuralCore::BreakEffects> break_effects_scratch_;
  /// Root -> region id of the wave that built it: sorted flat pairs,
  /// binary-searched (no hash container on the commit path).
  std::vector<std::pair<VNodeId, int>> region_of_root_;
  std::vector<int> last_assignment_;
  std::vector<VNodeId> last_region_roots_;
};

}  // namespace fg
