// Per-wave repair certificates: format model, parser, and the independent
// checker (docs/CERTIFICATES.md has the full grammar and the proof each
// section carries).
//
// Every committed deletion wave can emit a WaveCertificate: a line-oriented,
// versioned text artifact ("fgcert 1") stating what the repair claims to
// have done — the victim wave and its region partition, the Reconstruction
// Tree built per region (normalized parent/child pointers, a witness the
// checker re-validates as a haft of Lemma-1 depth), the healed-image edges
// each RT contributes, per-node degree before/after against the paper's
// accounting constant, sampled stretch pairs with explicit witness paths,
// and (from the distributed engine) the message/round counts of the repair
// against the Lemma-4 budget.
//
// The point of this module is ACCOUNTABILITY: check() validates every claim
// from first principles, using only the certificate's own data — it never
// touches engine state, and this translation unit must never include an
// `fg/`, `harness/`, `heal/`, or `net/` header (scripts/check_docs.py pins
// that), so the standalone tools/fgcheck binary that links it cannot share
// a bug with the engines it audits. A certificate that passes proves, wave
// by wave:
//
//   * partition     — the victims are distinct and the region assignment is
//                     a well-formed partition of the wave;
//   * rt-structure  — each region's witness is a single rooted binary tree
//                     with symmetric links (helpers: two children, leaves:
//                     none) and no unreachable or duplicated nodes;
//   * haft          — every internal node's left subtree is perfect and at
//                     least as leafy as its right (Section 4, H1-H2),
//                     recomputed bottom-up, never trusted;
//   * depth         — RT height <= ceil(log2(leaves)) (Lemma 1.3);
//   * anchors       — every lost G' edge slot (owner, dead victim) the wave
//                     claims to re-anchor appears as a leaf of its region's
//                     RT, and anchor owners are accounted in the degree
//                     section;
//   * image-edges   — the healed-network edges a region claims equal the
//                     homomorphic image of its RT witness (tree edges with
//                     distinct owners), re-derived by the checker;
//   * rt-connectivity — the owners of each RT form a connected subgraph of
//                     the healed network under exactly those image edges
//                     (checked through fg::Graph + is_connected — the one
//                     src/graph dependency);
//   * degree        — for every touched surviving node, deg_G(after) stays
//                     within kDegreeConstant * deg_G' (Theorem 1.1's
//                     per-slot accounting bound) and within
//                     deg_G(before) + the wave's new incident image edges;
//   * stretch       — each sampled pair's witness path is continuous, every
//                     hop is justified by an edge fact (G' edge, this
//                     wave's RT image, or a prior wave's RT image), and its
//                     length is within stretch-bound * dist_G' (Theorem
//                     1.2 with the ceil(log2 n) bound the tests pin);
//   * cost          — when present, messages/rounds fit the Lemma-4 budget
//                     (kMessageBudgetFactor * d * log n messages,
//                     kRoundBudgetFactor * log d + log n rounds — the
//                     envelope tests/dist_property_test.cpp enforces).
//
// Certificates are a pure function of (engine state, wave): byte-identical
// at every shard/commit worker count and across the centralized and
// dist-kGlobalPlan engines (contract C4 extended from checkpoints to
// certificates; the optional `cost` line is engine-specific and excluded
// from the structural bytes via save(os, /*include_cost=*/false)).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace fg::cert {

/// The format magic + version line every certificate starts with. Bump the
/// version when the grammar changes; the checker rejects anything else.
inline constexpr const char* kFormatVersionLine = "fgcert 1";

/// Theorem 1.1 accounting constant: deg_G(v) <= 4 * deg_G'(v) (the per-slot
/// bound of docs/EXPERIMENTS.md T1/A2; the observed constant is 3).
inline constexpr int kDegreeConstant = 4;

/// Lemma-4 budget factors (the envelope tests/dist_property_test.cpp pins):
/// messages <= kMessageBudgetFactor * max(1, d) * max(1, ceil_log2(n)),
/// rounds   <= kRoundBudgetFactor * ceil_log2(max(2, d)) + ceil_log2(n).
inline constexpr int kMessageBudgetFactor = 60;
inline constexpr int kRoundBudgetFactor = 10;

/// ceil(log2(l)) for l >= 1 (local twin of haft::ceil_log2 — this library
/// must not link engine code).
int ceil_log2(int64_t l);

/// One virtual node of an RT witness, in the certificate's normalized
/// numbering: nodes are listed in preorder and referenced by their position
/// (0-based), so the witness is independent of engine arena handles.
struct RtNode {
  NodeId owner = kInvalidNode;
  NodeId other = kInvalidNode;
  bool is_leaf = true;
  int parent = -1;
  int left = -1;
  int right = -1;
};

/// One region's repair claims: its victims, the lost edge slots it
/// re-anchored, the RT it built, and that RT's healed-image edges.
struct RegionCert {
  int id = 0;
  std::vector<NodeId> victims;                      ///< Wave order.
  std::vector<std::pair<NodeId, NodeId>> anchors;   ///< (owner, dead victim).
  std::vector<RtNode> nodes;                        ///< Preorder; empty: no RT.
  /// Image edges of the RT as normalized (min, max) owner pairs, sorted
  /// ascending, duplicate-free.
  std::vector<std::pair<NodeId, NodeId>> image_edges;
};

/// Degree claim for one surviving touched node.
struct DegreeClaim {
  NodeId node = kInvalidNode;
  int gprime = 0;    ///< deg_G'(node) — untouched by deletions.
  int g_before = 0;  ///< deg_G before the wave committed.
  int g_after = 0;   ///< deg_G after.
};

/// One sampled stretch pair with its explicit witness path in G.
struct StretchWitness {
  NodeId x = kInvalidNode;
  NodeId y = kInvalidNode;
  int dist_gprime = 0;          ///< BFS distance in G'.
  std::vector<NodeId> path;     ///< x ... y in G; length = path.size() - 1.
};

/// Provenance of one healed-image edge referenced by a witness path.
struct EdgeFact {
  enum class Kind {
    kGPrime,   ///< An edge of G' between two alive processors.
    kRtWave,   ///< Image edge of this wave's region `region`.
    kRtPrior,  ///< Image edge of an RT built by an earlier wave.
  };
  NodeId u = kInvalidNode;  ///< Normalized: u < v.
  NodeId v = kInvalidNode;
  Kind kind = Kind::kGPrime;
  int region = -1;  ///< Only for kRtWave.
};

/// The distributed engine's Lemma-4 cost claim (absent on centralized
/// certificates — the engine-specific part of the format).
struct CostClaim {
  bool present = false;
  int64_t messages = 0;
  int64_t words = 0;
  int rounds = 0;
  int deleted_degree = 0;  ///< Total G' degree of the wave's victims.
};

/// A complete per-wave certificate.
struct WaveCertificate {
  long wave = 0;          ///< 0-based index of the deletion wave.
  int net_nodes = 0;      ///< Processor ids ever seen (|V(G')|).
  int alive_after = 0;    ///< Alive processors after the wave.
  int degree_constant = kDegreeConstant;
  int stretch_bound = 1;  ///< max(1, ceil_log2(net_nodes)).
  std::vector<NodeId> victims;  ///< The wave, in schedule order.
  std::vector<int> assign;      ///< Region id per victim, aligned.
  std::vector<RegionCert> regions;
  std::vector<DegreeClaim> degrees;        ///< Sorted by node id.
  std::vector<StretchWitness> stretch;
  std::vector<EdgeFact> facts;             ///< Sorted by (u, v).
  CostClaim cost;

  /// Serialize in the canonical text format. With include_cost false the
  /// engine-specific `cost` line is dropped — the structural bytes the
  /// cross-engine equivalence contract compares.
  void save(std::ostream& os, bool include_cost = true) const;

  /// The structural bytes (save without the cost line).
  std::string structural_text() const;
};

/// Outcome of parsing or checking; `ok == false` comes with a localized
/// diagnostic: "wave <w>[ region <r>]: <rule>: <detail>".
struct CheckResult {
  bool ok = true;
  std::string diagnostic;
};

/// Parse one certificate from `is` (which may hold a stream of several).
/// Returns ok=false with a diagnostic on malformed input; sets `*eof` when
/// the stream held no further certificate.
CheckResult parse(std::istream& is, WaveCertificate* out, bool* eof);

/// Validate every claim of one certificate from first principles.
CheckResult check(const WaveCertificate& c);

/// Parse + check a whole stream of certificates; stops at the first
/// violation. `waves_checked` counts the certificates that passed.
/// `malformed` discriminates the two failure classes: true when the stream
/// itself could not be parsed (tools/fgcheck exits 2), false when a
/// well-formed certificate failed a checker rule (fgcheck exits 1).
struct StreamResult {
  bool ok = true;
  int waves_checked = 0;
  std::string diagnostic;
  bool malformed = false;
};
StreamResult check_stream(std::istream& is);

}  // namespace fg::cert
