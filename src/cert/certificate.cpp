#include "cert/certificate.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>

#include "graph/algorithms.h"

namespace fg::cert {

int ceil_log2(int64_t l) {
  int bits = 0;
  while ((int64_t{1} << bits) < l) ++bits;
  return bits;
}

// ---------------------------------------------------------------------------
// Serialization. One claim per line; every count is explicit so a truncated
// certificate is a parse error, never a silently weaker statement.

void WaveCertificate::save(std::ostream& os, bool include_cost) const {
  os << kFormatVersionLine << '\n';
  os << "wave " << wave << '\n';
  os << "net " << net_nodes << ' ' << alive_after << '\n';
  os << "degree-constant " << degree_constant << '\n';
  os << "stretch-bound " << stretch_bound << '\n';
  os << "victims " << victims.size();
  for (NodeId v : victims) os << ' ' << v;
  os << '\n';
  os << "assign";
  for (int r : assign) os << ' ' << r;
  os << '\n';
  os << "regions " << regions.size() << '\n';
  for (const RegionCert& rc : regions) {
    os << "region " << rc.id << '\n';
    os << "rvictims " << rc.victims.size();
    for (NodeId v : rc.victims) os << ' ' << v;
    os << '\n';
    os << "anchors " << rc.anchors.size() << '\n';
    for (const auto& [owner, dead] : rc.anchors)
      os << "a " << owner << ' ' << dead << '\n';
    os << "rt " << rc.nodes.size() << '\n';
    for (size_t i = 0; i < rc.nodes.size(); ++i) {
      const RtNode& n = rc.nodes[i];
      os << "v " << i << ' ' << (n.is_leaf ? "leaf" : "help") << ' ' << n.owner
         << ' ' << n.other << ' ' << n.parent << ' ' << n.left << ' ' << n.right
         << '\n';
    }
    os << "iedges " << rc.image_edges.size() << '\n';
    for (const auto& [u, v] : rc.image_edges) os << "e " << u << ' ' << v << '\n';
    os << "endregion\n";
  }
  os << "degrees " << degrees.size() << '\n';
  for (const DegreeClaim& d : degrees)
    os << "d " << d.node << ' ' << d.gprime << ' ' << d.g_before << ' '
       << d.g_after << '\n';
  os << "stretch " << stretch.size() << '\n';
  for (const StretchWitness& s : stretch) {
    os << "s " << s.x << ' ' << s.y << ' ' << s.dist_gprime << ' '
       << (s.path.empty() ? 0 : s.path.size() - 1);
    for (NodeId n : s.path) os << ' ' << n;
    os << '\n';
  }
  os << "facts " << facts.size() << '\n';
  for (const EdgeFact& f : facts) {
    os << "f " << f.u << ' ' << f.v << ' ';
    switch (f.kind) {
      case EdgeFact::Kind::kGPrime: os << "gp"; break;
      case EdgeFact::Kind::kRtWave: os << "rt " << f.region; break;
      case EdgeFact::Kind::kRtPrior: os << "rtp"; break;
    }
    os << '\n';
  }
  if (include_cost && cost.present)
    os << "cost " << cost.messages << ' ' << cost.words << ' ' << cost.rounds
       << ' ' << cost.deleted_degree << '\n';
  os << "end\n";
}

std::string WaveCertificate::structural_text() const {
  std::ostringstream os;
  save(os, /*include_cost=*/false);
  return os.str();
}

// ---------------------------------------------------------------------------
// Parsing. Line-oriented and defensive: fgcheck consumes untrusted input, so
// every malformation is a diagnostic, never an abort. Blank lines between
// certificates are tolerated; everything else is exact.

namespace {

class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  /// Next non-empty line, or false at end of stream.
  bool next(std::string* out) {
    while (std::getline(is_, *out)) {
      ++lineno_;
      if (!out->empty()) return true;
    }
    return false;
  }

  int lineno() const { return lineno_; }

 private:
  std::istream& is_;
  int lineno_ = 0;
};

/// Tokenized view of one line with typed, checked extraction.
class Fields {
 public:
  explicit Fields(const std::string& line) : ss_(line) {}

  bool word(std::string* out) { return static_cast<bool>(ss_ >> *out); }

  template <class T>
  bool num(T* out) {
    return static_cast<bool>(ss_ >> *out);
  }

  bool done() {
    std::string rest;
    return !(ss_ >> rest);
  }

 private:
  std::istringstream ss_;
};

struct Parser {
  LineReader reader;
  long wave = -1;  // for diagnostics once the wave line is read
  CheckResult error;

  explicit Parser(std::istream& is) : reader(is) {}

  CheckResult fail(const std::string& rule, const std::string& detail) {
    std::ostringstream os;
    if (wave >= 0)
      os << "wave " << wave << ": ";
    os << rule << ": line " << reader.lineno() << ": " << detail;
    return CheckResult{false, os.str()};
  }
};

bool expect_key(Fields& f, const char* key) {
  std::string w;
  return f.word(&w) && w == key;
}

}  // namespace

CheckResult parse(std::istream& is, WaveCertificate* out, bool* eof) {
  *out = WaveCertificate{};
  *eof = false;
  Parser p(is);
  std::string line;

  if (!p.reader.next(&line)) {
    *eof = true;
    return CheckResult{};
  }
  if (line != kFormatVersionLine)
    return p.fail("version", "expected \"" + std::string(kFormatVersionLine) +
                                 "\", got \"" + line + "\"");

  auto read_kv = [&](const char* key, auto*... vals) -> bool {
    if (!p.reader.next(&line)) return false;
    Fields f(line);
    if (!expect_key(f, key)) return false;
    return (f.num(vals) && ...) && f.done();
  };

  if (!read_kv("wave", &out->wave) || out->wave < 0)
    return p.fail("format", "malformed wave line");
  p.wave = out->wave;
  if (!read_kv("net", &out->net_nodes, &out->alive_after) || out->net_nodes < 1 ||
      out->alive_after < 0)
    return p.fail("format", "malformed net line");
  if (!read_kv("degree-constant", &out->degree_constant))
    return p.fail("format", "malformed degree-constant line");
  if (!read_kv("stretch-bound", &out->stretch_bound))
    return p.fail("format", "malformed stretch-bound line");

  // victims <k> <ids...>
  {
    if (!p.reader.next(&line)) return p.fail("format", "missing victims line");
    Fields f(line);
    size_t k = 0;
    if (!expect_key(f, "victims") || !f.num(&k) || k > size_t{1} << 24)
      return p.fail("format", "malformed victims line");
    out->victims.resize(k);
    for (size_t i = 0; i < k; ++i)
      if (!f.num(&out->victims[i]))
        return p.fail("format", "victims line shorter than its count");
    if (!f.done()) return p.fail("format", "victims line longer than its count");
  }
  // assign — one region id per victim.
  {
    if (!p.reader.next(&line)) return p.fail("format", "missing assign line");
    Fields f(line);
    if (!expect_key(f, "assign")) return p.fail("format", "malformed assign line");
    out->assign.resize(out->victims.size());
    for (size_t i = 0; i < out->assign.size(); ++i)
      if (!f.num(&out->assign[i]))
        return p.fail("partition", "assign line shorter than the victim count");
    if (!f.done())
      return p.fail("partition", "assign line longer than the victim count");
  }

  size_t region_count = 0;
  if (!read_kv("regions", &region_count) || region_count > size_t{1} << 24)
    return p.fail("format", "malformed regions line");
  out->regions.resize(region_count);
  for (size_t r = 0; r < region_count; ++r) {
    RegionCert& rc = out->regions[r];
    if (!read_kv("region", &rc.id))
      return p.fail("format", "malformed region header");
    {
      if (!p.reader.next(&line)) return p.fail("format", "missing rvictims line");
      Fields f(line);
      size_t k = 0;
      if (!expect_key(f, "rvictims") || !f.num(&k) || k > size_t{1} << 24)
        return p.fail("format", "malformed rvictims line");
      rc.victims.resize(k);
      for (size_t i = 0; i < k; ++i)
        if (!f.num(&rc.victims[i]))
          return p.fail("format", "rvictims line shorter than its count");
      if (!f.done())
        return p.fail("format", "rvictims line longer than its count");
    }
    size_t anchor_count = 0;
    if (!read_kv("anchors", &anchor_count) || anchor_count > size_t{1} << 24)
      return p.fail("format", "malformed anchors line");
    rc.anchors.resize(anchor_count);
    for (auto& [owner, dead] : rc.anchors) {
      if (!p.reader.next(&line)) return p.fail("format", "missing anchor line");
      Fields f(line);
      if (!expect_key(f, "a") || !f.num(&owner) || !f.num(&dead) || !f.done())
        return p.fail("anchors", "malformed anchor line");
    }
    size_t node_count = 0;
    if (!read_kv("rt", &node_count) || node_count > size_t{1} << 26)
      return p.fail("format", "malformed rt line");
    rc.nodes.resize(node_count);
    for (size_t i = 0; i < node_count; ++i) {
      if (!p.reader.next(&line)) return p.fail("format", "missing vnode line");
      Fields f(line);
      size_t idx = 0;
      std::string kind;
      RtNode& n = rc.nodes[i];
      if (!expect_key(f, "v") || !f.num(&idx) || !f.word(&kind) ||
          !f.num(&n.owner) || !f.num(&n.other) || !f.num(&n.parent) ||
          !f.num(&n.left) || !f.num(&n.right) || !f.done())
        return p.fail("rt-structure", "malformed vnode line");
      if (idx != i)
        return p.fail("rt-structure", "vnode index out of order in region " +
                                          std::to_string(rc.id));
      if (kind == "leaf")
        n.is_leaf = true;
      else if (kind == "help")
        n.is_leaf = false;
      else
        return p.fail("rt-structure", "unknown vnode kind \"" + kind + "\"");
    }
    size_t edge_count = 0;
    if (!read_kv("iedges", &edge_count) || edge_count > size_t{1} << 26)
      return p.fail("format", "malformed iedges line");
    rc.image_edges.resize(edge_count);
    for (auto& [u, v] : rc.image_edges) {
      if (!p.reader.next(&line)) return p.fail("format", "missing iedge line");
      Fields f(line);
      if (!expect_key(f, "e") || !f.num(&u) || !f.num(&v) || !f.done())
        return p.fail("image-edges", "malformed iedge line");
    }
    if (!p.reader.next(&line) || line != "endregion")
      return p.fail("format", "missing endregion");
  }

  size_t degree_count = 0;
  if (!read_kv("degrees", &degree_count) || degree_count > size_t{1} << 26)
    return p.fail("format", "malformed degrees line");
  out->degrees.resize(degree_count);
  for (DegreeClaim& d : out->degrees) {
    if (!p.reader.next(&line)) return p.fail("format", "missing degree line");
    Fields f(line);
    if (!expect_key(f, "d") || !f.num(&d.node) || !f.num(&d.gprime) ||
        !f.num(&d.g_before) || !f.num(&d.g_after) || !f.done())
      return p.fail("degree", "malformed degree line");
  }

  size_t stretch_count = 0;
  if (!read_kv("stretch", &stretch_count) || stretch_count > size_t{1} << 20)
    return p.fail("format", "malformed stretch line");
  out->stretch.resize(stretch_count);
  for (StretchWitness& s : out->stretch) {
    if (!p.reader.next(&line)) return p.fail("format", "missing stretch line");
    Fields f(line);
    size_t len = 0;
    if (!expect_key(f, "s") || !f.num(&s.x) || !f.num(&s.y) ||
        !f.num(&s.dist_gprime) || !f.num(&len) || len > size_t{1} << 24)
      return p.fail("stretch", "malformed stretch witness line");
    s.path.resize(len + 1);
    for (NodeId& n : s.path)
      if (!f.num(&n))
        return p.fail("stretch", "witness path shorter than its length claim");
    if (!f.done())
      return p.fail("stretch", "witness path longer than its length claim");
  }

  size_t fact_count = 0;
  if (!read_kv("facts", &fact_count) || fact_count > size_t{1} << 24)
    return p.fail("format", "malformed facts line");
  out->facts.resize(fact_count);
  for (EdgeFact& fact : out->facts) {
    if (!p.reader.next(&line)) return p.fail("format", "missing fact line");
    Fields f(line);
    std::string kind;
    if (!expect_key(f, "f") || !f.num(&fact.u) || !f.num(&fact.v) ||
        !f.word(&kind))
      return p.fail("stretch", "malformed edge fact line");
    if (kind == "gp") {
      fact.kind = EdgeFact::Kind::kGPrime;
    } else if (kind == "rtp") {
      fact.kind = EdgeFact::Kind::kRtPrior;
    } else if (kind == "rt") {
      fact.kind = EdgeFact::Kind::kRtWave;
      if (!f.num(&fact.region))
        return p.fail("stretch", "rt edge fact missing its region");
    } else {
      return p.fail("stretch", "unknown edge fact kind \"" + kind + "\"");
    }
    if (!f.done()) return p.fail("stretch", "malformed edge fact line");
  }

  if (!p.reader.next(&line)) return p.fail("format", "missing end line");
  if (line.rfind("cost ", 0) == 0) {
    Fields f(line);
    out->cost.present = true;
    if (!expect_key(f, "cost") || !f.num(&out->cost.messages) ||
        !f.num(&out->cost.words) || !f.num(&out->cost.rounds) ||
        !f.num(&out->cost.deleted_degree) || !f.done())
      return p.fail("cost", "malformed cost line");
    if (!p.reader.next(&line)) return p.fail("format", "missing end line");
  }
  if (line != "end") return p.fail("format", "expected end line");
  return CheckResult{};
}

// ---------------------------------------------------------------------------
// Checking. Every rule recomputes its claim from the certificate's own data;
// nothing the emitter wrote is trusted beyond being the statement to verify.

namespace {

struct Checker {
  const WaveCertificate& c;
  int region = -1;  // current region for diagnostics, -1 = wave level

  CheckResult fail(const std::string& rule, const std::string& detail) const {
    std::ostringstream os;
    os << "wave " << c.wave;
    if (region >= 0) os << " region " << region;
    os << ": " << rule << ": " << detail;
    return CheckResult{false, os.str()};
  }
};

/// Recompute (leaf_count, height) of `idx`'s subtree iteratively (postorder
/// over the parent-pointer tree), verifying the haft property at every
/// internal node. Returns ok or the violated rule.
CheckResult check_subtree(Checker& ck, const std::vector<RtNode>& nodes, int root,
                          std::vector<int64_t>* leaves, std::vector<int>* height) {
  std::vector<int> stack{root};
  std::vector<int> order;
  order.reserve(nodes.size());
  while (!stack.empty()) {
    int i = stack.back();
    stack.pop_back();
    order.push_back(i);
    const RtNode& n = nodes[static_cast<size_t>(i)];
    for (int child : {n.left, n.right}) {
      if (child < 0) continue;
      if (order.size() + stack.size() > nodes.size() * 2)
        return ck.fail("rt-structure", "cycle among child pointers");
      stack.push_back(child);
    }
  }
  for (size_t k = order.size(); k-- > 0;) {
    int i = order[k];
    const RtNode& n = nodes[static_cast<size_t>(i)];
    if (n.is_leaf) {
      (*leaves)[static_cast<size_t>(i)] = 1;
      (*height)[static_cast<size_t>(i)] = 0;
      continue;
    }
    int64_t ll = (*leaves)[static_cast<size_t>(n.left)];
    int64_t rl = (*leaves)[static_cast<size_t>(n.right)];
    int lh = (*height)[static_cast<size_t>(n.left)];
    int rh = (*height)[static_cast<size_t>(n.right)];
    // H2: the left child roots a perfect subtree at least as leafy as the
    // right child.
    if (ll != (int64_t{1} << lh))
      return ck.fail("haft", "left child of vnode " + std::to_string(i) +
                                 " is not perfect");
    if (ll < rl)
      return ck.fail("haft", "left child of vnode " + std::to_string(i) +
                                 " holds fewer leaves than the right");
    (*leaves)[static_cast<size_t>(i)] = ll + rl;
    (*height)[static_cast<size_t>(i)] = 1 + std::max(lh, rh);
  }
  return CheckResult{};
}

CheckResult check_region(Checker& ck, const RegionCert& rc,
                         const std::vector<NodeId>& wave_victims) {
  const std::vector<RtNode>& nodes = rc.nodes;
  const size_t n = nodes.size();

  // rt-structure: link symmetry, one root, arity by kind.
  int root = -1;
  for (size_t i = 0; i < n; ++i) {
    const RtNode& nd = nodes[i];
    for (int link : {nd.parent, nd.left, nd.right})
      if (link < -1 || link >= static_cast<int>(n))
        return ck.fail("rt-structure",
                       "vnode " + std::to_string(i) + " links outside the witness");
    if (nd.parent == -1) {
      if (root != -1)
        return ck.fail("rt-structure", "more than one root (vnodes " +
                                           std::to_string(root) + " and " +
                                           std::to_string(i) + ")");
      root = static_cast<int>(i);
    } else {
      const RtNode& parent = nodes[static_cast<size_t>(nd.parent)];
      if (parent.left != static_cast<int>(i) && parent.right != static_cast<int>(i))
        return ck.fail("rt-structure",
                       "vnode " + std::to_string(i) +
                           " names a parent that does not link back");
    }
    if (nd.is_leaf) {
      if (nd.left != -1 || nd.right != -1)
        return ck.fail("rt-structure",
                       "leaf vnode " + std::to_string(i) + " has children");
    } else {
      if (nd.left == -1 || nd.right == -1)
        return ck.fail("rt-structure",
                       "helper vnode " + std::to_string(i) + " lacks a child");
      if (nd.left == nd.right)
        return ck.fail("rt-structure", "helper vnode " + std::to_string(i) +
                                           " links the same child twice");
      for (int child : {nd.left, nd.right})
        if (nodes[static_cast<size_t>(child)].parent != static_cast<int>(i))
          return ck.fail("rt-structure",
                         "child link of vnode " + std::to_string(i) +
                             " is not mirrored by its parent pointer");
    }
  }
  if (n > 0 && root == -1) return ck.fail("rt-structure", "no root vnode");

  if (n > 0) {
    // haft + depth (H1-H2, Lemma 1.3), recomputed bottom-up. The walk also
    // proves every node is reachable from the root (counts must match).
    std::vector<int64_t> leaves(n, 0);
    std::vector<int> height(n, 0);
    CheckResult sub = check_subtree(ck, nodes, root, &leaves, &height);
    if (!sub.ok) return sub;
    // Reachability from the root: with the link-symmetry checks above the
    // child pointers form a forest, so anything the walk missed is a
    // detached component smuggled into the witness.
    std::vector<char> reach(n, 0);
    std::vector<int> stack{root};
    while (!stack.empty()) {
      int i = stack.back();
      stack.pop_back();
      if (reach[static_cast<size_t>(i)]) continue;
      reach[static_cast<size_t>(i)] = 1;
      const RtNode& nd = nodes[static_cast<size_t>(i)];
      for (int child : {nd.left, nd.right})
        if (child >= 0) stack.push_back(child);
    }
    for (size_t i = 0; i < n; ++i)
      if (!reach[i])
        return ck.fail("rt-structure",
                       "vnode " + std::to_string(i) + " unreachable from the root");
    if (height[static_cast<size_t>(root)] >
        ceil_log2(std::max<int64_t>(1, leaves[static_cast<size_t>(root)])))
      return ck.fail("depth", "RT height " +
                                  std::to_string(height[static_cast<size_t>(root)]) +
                                  " exceeds ceil(log2 " +
                                  std::to_string(leaves[static_cast<size_t>(root)]) +
                                  ") (Lemma 1)");
  }

  // anchors: each claimed re-anchored slot (owner, dead) is a leaf of the
  // witness and its dead endpoint is one of the region's victims.
  if (!rc.anchors.empty() && n == 0)
    return ck.fail("anchors", "anchors claimed but no RT witness");
  std::set<std::pair<NodeId, NodeId>> leaf_slots;
  for (const RtNode& nd : nodes)
    if (nd.is_leaf) leaf_slots.insert({nd.owner, nd.other});
  for (const auto& [owner, dead] : rc.anchors) {
    if (std::find(rc.victims.begin(), rc.victims.end(), dead) == rc.victims.end())
      return ck.fail("anchors", "anchor (" + std::to_string(owner) + ", " +
                                    std::to_string(dead) +
                                    ") names a dead endpoint outside the region");
    if (!leaf_slots.contains({owner, dead}))
      return ck.fail("anchors", "anchor (" + std::to_string(owner) + ", " +
                                    std::to_string(dead) +
                                    ") has no matching RT leaf");
  }
  for (NodeId v : rc.victims)
    if (std::find(wave_victims.begin(), wave_victims.end(), v) ==
        wave_victims.end())
      return ck.fail("partition",
                     "region victim " + std::to_string(v) + " not in the wave");

  // image-edges: the claimed healed-network edges equal the homomorphic
  // image of the witness — tree edges whose endpoints have distinct owners.
  std::set<std::pair<NodeId, NodeId>> derived;
  for (size_t i = 0; i < n; ++i) {
    const RtNode& nd = nodes[i];
    if (nd.parent < 0) continue;
    NodeId a = nd.owner;
    NodeId b = nodes[static_cast<size_t>(nd.parent)].owner;
    if (a != b) derived.insert({std::min(a, b), std::max(a, b)});
  }
  std::set<std::pair<NodeId, NodeId>> claimed(rc.image_edges.begin(),
                                              rc.image_edges.end());
  if (claimed.size() != rc.image_edges.size())
    return ck.fail("image-edges", "duplicate claimed image edge");
  if (claimed != derived) {
    std::pair<NodeId, NodeId> witness{kInvalidNode, kInvalidNode};
    for (const auto& e : claimed)
      if (!derived.contains(e)) witness = e;
    for (const auto& e : derived)
      if (!claimed.contains(e)) witness = e;
    return ck.fail("image-edges",
                   "claimed edges differ from the RT witness image at (" +
                       std::to_string(witness.first) + ", " +
                       std::to_string(witness.second) + ")");
  }

  // rt-connectivity: the region's owners form one connected component under
  // exactly the claimed image edges — the spanning check, run through the
  // real graph substrate (the checker's one src/graph dependency).
  if (n > 0) {
    std::vector<NodeId> owners;
    for (const RtNode& nd : nodes) owners.push_back(nd.owner);
    std::sort(owners.begin(), owners.end());
    owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
    Graph og(static_cast<int>(owners.size()));
    auto local = [&owners](NodeId v) {
      return static_cast<NodeId>(
          std::lower_bound(owners.begin(), owners.end(), v) - owners.begin());
    };
    for (const auto& [u, v] : rc.image_edges) og.add_edge(local(u), local(v));
    if (!is_connected(og))
      return ck.fail("rt-connectivity",
                     "the RT's image does not connect all its owners");
  }
  return CheckResult{};
}

}  // namespace

CheckResult check(const WaveCertificate& c) {
  Checker ck{c, -1};

  if (c.degree_constant != kDegreeConstant)
    return ck.fail("degree", "degree-constant " +
                                 std::to_string(c.degree_constant) +
                                 " is not the paper's accounting bound " +
                                 std::to_string(kDegreeConstant));
  if (c.stretch_bound !=
      std::max(1, ceil_log2(std::max<int64_t>(1, c.net_nodes))))
    return ck.fail("stretch", "stretch-bound " + std::to_string(c.stretch_bound) +
                                  " does not match ceil(log2 " +
                                  std::to_string(c.net_nodes) + ")");

  // partition: victims distinct, every victim assigned to a declared region,
  // region victim lists consistent with the assignment (wave order).
  {
    std::set<NodeId> seen;
    for (NodeId v : c.victims)
      if (!seen.insert(v).second)
        return ck.fail("partition", "victim " + std::to_string(v) + " repeated");
    const int r_count = static_cast<int>(c.regions.size());
    for (size_t i = 0; i < c.assign.size(); ++i)
      if (c.assign[i] < 0 || c.assign[i] >= r_count)
        return ck.fail("partition", "victim " + std::to_string(c.victims[i]) +
                                        " assigned to unknown region " +
                                        std::to_string(c.assign[i]));
    for (int r = 0; r < r_count; ++r) {
      if (c.regions[static_cast<size_t>(r)].id != r)
        return ck.fail("partition", "region ids out of order at " +
                                        std::to_string(r));
      std::vector<NodeId> expect;
      for (size_t i = 0; i < c.victims.size(); ++i)
        if (c.assign[i] == r) expect.push_back(c.victims[i]);
      if (expect != c.regions[static_cast<size_t>(r)].victims)
        return ck.fail("partition",
                       "region " + std::to_string(r) +
                           " victim list disagrees with the assignment");
    }
  }

  for (const RegionCert& rc : c.regions) {
    ck.region = rc.id;
    CheckResult res = check_region(ck, rc, c.victims);
    if (!res.ok) return res;
  }
  ck.region = -1;

  // The wave's deduplicated image edges, for the degree-delta bound.
  std::set<std::pair<NodeId, NodeId>> wave_edges;
  for (const RegionCert& rc : c.regions)
    wave_edges.insert(rc.image_edges.begin(), rc.image_edges.end());
  // Incident counts up front: after sustained churn a wave's affected set
  // (and so both the edge list and the degree section) can run to tens of
  // thousands of entries, and a per-claim scan of wave_edges turns the
  // in-process guardrail check quadratic — seconds per certificate, which
  // the healer service's sampling budget cannot absorb.
  std::unordered_map<NodeId, int> incident_count;
  incident_count.reserve(2 * wave_edges.size());
  for (const auto& [u, v] : wave_edges) {
    ++incident_count[u];
    ++incident_count[v];
  }

  // degree: no victim may be claimed as a survivor; every claim respects the
  // accounting constant and the wave's own new incident edges.
  {
    std::set<NodeId> victims(c.victims.begin(), c.victims.end());
    std::set<NodeId> listed;
    for (const DegreeClaim& d : c.degrees) {
      if (victims.contains(d.node))
        return ck.fail("degree", "victim " + std::to_string(d.node) +
                                     " listed as a surviving node");
      if (!listed.insert(d.node).second)
        return ck.fail("degree",
                       "node " + std::to_string(d.node) + " listed twice");
      if (d.gprime < 0 || d.g_before < 0 || d.g_after < 0)
        return ck.fail("degree",
                       "negative degree at node " + std::to_string(d.node));
      if (d.gprime > 0 && d.g_after > c.degree_constant * d.gprime)
        return ck.fail("degree",
                       "node " + std::to_string(d.node) + " has degree " +
                           std::to_string(d.g_after) + " > " +
                           std::to_string(c.degree_constant) + " * " +
                           std::to_string(d.gprime) + " (Theorem 1.1)");
      auto it = incident_count.find(d.node);
      const int incident = it == incident_count.end() ? 0 : it->second;
      if (d.g_after > d.g_before + incident)
        return ck.fail("degree", "node " + std::to_string(d.node) + " gained " +
                                     std::to_string(d.g_after - d.g_before) +
                                     " edges but the wave only adds " +
                                     std::to_string(incident) + " incident");
    }
    // Every anchor owner survives the wave and must be accounted for.
    for (const RegionCert& rc : c.regions)
      for (const auto& [owner, dead] : rc.anchors) {
        (void)dead;
        if (!listed.contains(owner)) {
          ck.region = rc.id;
          return ck.fail("degree", "anchor owner " + std::to_string(owner) +
                                       " missing from the degree section");
        }
      }
    ck.region = -1;
  }

  // stretch: witness paths continuous, every hop justified by an edge fact,
  // length within stretch-bound * dist_G'.
  {
    std::set<std::pair<NodeId, NodeId>> fact_set;
    for (const EdgeFact& f : c.facts) {
      if (f.u >= f.v)
        return ck.fail("stretch", "edge fact (" + std::to_string(f.u) + ", " +
                                      std::to_string(f.v) +
                                      ") not normalized (u < v)");
      if (!fact_set.insert({f.u, f.v}).second)
        return ck.fail("stretch", "edge fact (" + std::to_string(f.u) + ", " +
                                      std::to_string(f.v) + ") repeated");
      if (f.kind == EdgeFact::Kind::kRtWave) {
        if (f.region < 0 || f.region >= static_cast<int>(c.regions.size()))
          return ck.fail("stretch", "edge fact names unknown region " +
                                        std::to_string(f.region));
        const RegionCert& rc = c.regions[static_cast<size_t>(f.region)];
        if (!std::count(rc.image_edges.begin(), rc.image_edges.end(),
                        std::make_pair(f.u, f.v)))
          return ck.fail("stretch",
                         "edge fact (" + std::to_string(f.u) + ", " +
                             std::to_string(f.v) + ") is not an image edge of region " +
                             std::to_string(f.region));
      }
    }
    for (const StretchWitness& s : c.stretch) {
      if (s.path.size() < 2 || s.path.front() != s.x || s.path.back() != s.y)
        return ck.fail("stretch", "witness path endpoints do not match pair (" +
                                      std::to_string(s.x) + ", " +
                                      std::to_string(s.y) + ")");
      if (s.dist_gprime < 1)
        return ck.fail("stretch", "pair (" + std::to_string(s.x) + ", " +
                                      std::to_string(s.y) +
                                      ") claims G' distance < 1");
      for (size_t i = 0; i + 1 < s.path.size(); ++i) {
        NodeId u = std::min(s.path[i], s.path[i + 1]);
        NodeId v = std::max(s.path[i], s.path[i + 1]);
        if (u == v)
          return ck.fail("stretch", "witness path repeats node " +
                                        std::to_string(u));
        if (!fact_set.contains({u, v}))
          return ck.fail("stretch", "witness hop (" + std::to_string(u) + ", " +
                                        std::to_string(v) +
                                        ") has no supporting edge fact");
      }
      int64_t len = static_cast<int64_t>(s.path.size()) - 1;
      if (len > static_cast<int64_t>(c.stretch_bound) * s.dist_gprime)
        return ck.fail("stretch",
                       "pair (" + std::to_string(s.x) + ", " +
                           std::to_string(s.y) + ") stretches " +
                           std::to_string(len) + " / " +
                           std::to_string(s.dist_gprime) + " beyond the bound " +
                           std::to_string(c.stretch_bound) + " (Theorem 1.2)");
    }
  }

  // cost: the Lemma-4 envelope (only the distributed engine writes one).
  if (c.cost.present) {
    const int logn = std::max(1, ceil_log2(std::max<int64_t>(2, c.net_nodes)));
    const int d = std::max(1, c.cost.deleted_degree);
    const int64_t msg_budget =
        int64_t{kMessageBudgetFactor} * d * logn;
    const int round_budget = kRoundBudgetFactor * ceil_log2(std::max(2, d)) + logn;
    if (c.cost.messages < 0 || c.cost.words < 0 || c.cost.rounds < 0 ||
        c.cost.deleted_degree < 0)
      return ck.fail("cost", "negative cost claim");
    if (c.cost.words < c.cost.messages)
      return ck.fail("cost", "fewer words than messages");
    if (c.cost.messages > msg_budget)
      return ck.fail("cost", std::to_string(c.cost.messages) +
                                 " messages exceed the Lemma-4 budget " +
                                 std::to_string(msg_budget));
    if (c.cost.rounds > round_budget)
      return ck.fail("cost", std::to_string(c.cost.rounds) +
                                 " rounds exceed the Lemma-4 budget " +
                                 std::to_string(round_budget));
    int anchors = 0;
    for (const RegionCert& rc : c.regions)
      anchors += static_cast<int>(rc.anchors.size());
    if (c.cost.deleted_degree < anchors)
      return ck.fail("cost", "deleted degree " +
                                 std::to_string(c.cost.deleted_degree) +
                                 " below the wave's anchor count " +
                                 std::to_string(anchors));
  }

  return CheckResult{};
}

StreamResult check_stream(std::istream& is) {
  StreamResult out;
  for (;;) {
    WaveCertificate c;
    bool eof = false;
    CheckResult parsed = parse(is, &c, &eof);
    if (eof) break;
    if (!parsed.ok)
      return StreamResult{false, out.waves_checked, parsed.diagnostic,
                          /*malformed=*/true};
    CheckResult checked = check(c);
    if (!checked.ok)
      return StreamResult{false, out.waves_checked, checked.diagnostic,
                          /*malformed=*/false};
    ++out.waves_checked;
  }
  return out;
}

}  // namespace fg::cert
