#include "adversary/adversary.h"

#include <algorithm>
#include <unordered_set>

#include "graph/algorithms.h"
#include "util/check.h"

namespace fg {
namespace {

/// Uniformly random alive node.
NodeId random_alive(const Graph& g, Rng& rng) {
  auto alive = g.alive_nodes();
  FG_CHECK(!alive.empty());
  return rng.pick(alive);
}

/// Smallest-id node among those maximizing `score`.
template <typename Score>
NodeId argmax_alive(const Graph& g, Score&& score) {
  NodeId best = kInvalidNode;
  long best_score = -1;
  for (NodeId v : g.alive_nodes()) {
    long s = score(v);
    if (s > best_score) {
      best_score = s;
      best = v;
    }
  }
  FG_CHECK(best != kInvalidNode);
  return best;
}

}  // namespace

std::optional<Action> RandomDeleteAdversary::next(const Healer& h, Rng& rng) {
  if (h.healed().alive_count() <= floor_) return std::nullopt;
  return Action{Action::Kind::kDelete, random_alive(h.healed(), rng), {}, {}, {}};
}

std::optional<Action> MaxDegreeDeleteAdversary::next(const Healer& h, Rng&) {
  if (h.healed().alive_count() <= floor_) return std::nullopt;
  NodeId v = argmax_alive(h.healed(), [&](NodeId x) { return h.healed().degree(x); });
  return Action{Action::Kind::kDelete, v, {}, {}, {}};
}

std::optional<Action> HelperLoadAdversary::next(const Healer& h, Rng&) {
  if (h.healed().alive_count() <= floor_) return std::nullopt;
  const ForgivingGraph* engine = h.forgiving();
  NodeId v;
  if (engine != nullptr) {
    // Prefer the most helper-burdened processor; break ties by degree so the
    // attack stays aggressive before any helper exists.
    v = argmax_alive(h.healed(), [&](NodeId x) {
      return static_cast<long>(engine->helper_count(x)) * 100000 + h.healed().degree(x);
    });
  } else {
    v = argmax_alive(h.healed(), [&](NodeId x) { return h.healed().degree(x); });
  }
  return Action{Action::Kind::kDelete, v, {}, {}, {}};
}

std::optional<Action> ChurnAdversary::next(const Healer& h, Rng& rng) {
  bool del = h.healed().alive_count() > floor_ && rng.next_bool(p_delete_);
  if (del) return Action{Action::Kind::kDelete, random_alive(h.healed(), rng), {}, {}, {}};
  auto alive = h.healed().alive_nodes();
  int want = std::min<int>(degree_, static_cast<int>(alive.size()));
  rng.shuffle(alive);
  alive.resize(static_cast<size_t>(std::max(want, 1)));
  return Action{Action::Kind::kInsert, kInvalidNode, std::move(alive), {}, {}};
}

std::optional<Action> BatchDeleteAdversary::next(const Healer& h, Rng& rng) {
  if (h.healed().alive_count() <= floor_ + batch_) return std::nullopt;
  auto alive = h.healed().alive_nodes();
  rng.shuffle(alive);
  alive.resize(static_cast<size_t>(batch_));
  Action a;
  a.kind = Action::Kind::kBatchDelete;
  a.targets = std::move(alive);
  return a;
}

std::optional<Action> DisjointRegionsAdversary::next(const Healer& h, Rng& rng) {
  if (h.healed().alive_count() <= floor_ + k_) return std::nullopt;
  auto candidates = h.healed().alive_nodes();
  rng.shuffle(candidates);

  const ForgivingGraph* engine = h.forgiving();
  std::vector<NodeId> wave;
  std::unordered_set<VNodeId> used_roots;  // RTs claimed by accepted victims

  auto healed_far_apart = [&](NodeId u, NodeId v) {
    // Baseline fallback: closed neighborhoods in the healed graph must be
    // disjoint — no edge and no common neighbor (distance > 2).
    if (h.healed().has_edge(u, v)) return false;
    for (NodeId y : h.healed().neighbors(u))
      if (h.healed().has_edge(y, v)) return false;
    return true;
  };

  for (NodeId v : candidates) {
    if (static_cast<int>(wave.size()) == k_) break;
    bool ok = true;
    for (NodeId u : wave) {
      // A G' edge between two victims forces them into one repair region.
      if (h.gprime().has_edge(u, v) || (engine == nullptr && !healed_far_apart(u, v))) {
        ok = false;
        break;
      }
    }
    std::vector<VNodeId> roots;
    if (ok && engine != nullptr) {
      // So does a shared Reconstruction Tree.
      roots = engine->affected_roots(v);
      for (VNodeId r : roots) {
        if (used_roots.contains(r)) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) continue;
    used_roots.insert(roots.begin(), roots.end());
    wave.push_back(v);
  }
  if (wave.empty()) return std::nullopt;
  Action a;
  a.kind = Action::Kind::kBatchDelete;
  a.targets = std::move(wave);
  return a;
}

std::optional<Action> CutVertexAdversary::next(const Healer& h, Rng&) {
  if (h.healed().alive_count() <= floor_) return std::nullopt;
  const Graph& g = h.healed();
  int base_components = connected_components(g);
  // Omniscient search: smallest-id articulation point (brute force is fine
  // at experiment scales; deletions dominate the cost anyway).
  for (NodeId v : g.alive_nodes()) {
    if (g.degree(v) < 2) continue;
    Graph probe = g;
    probe.remove_node(v);
    if (connected_components(probe) > base_components)
      return Action{Action::Kind::kDelete, v, {}, {}, {}};
  }
  NodeId fallback = argmax_alive(g, [&](NodeId x) { return g.degree(x); });
  return Action{Action::Kind::kDelete, fallback, {}, {}, {}};
}

std::optional<Action> StarAttackAdversary::next(const Healer& h, Rng&) {
  if (done_ || !h.healed().is_alive(0)) return std::nullopt;
  done_ = true;
  return Action{Action::Kind::kDelete, 0, {}, {}, {}};
}

std::optional<Action> BuildAndBurnAdversary::next(const Healer& h, Rng& rng) {
  if (pending_ == kInvalidNode) {
    auto alive = h.healed().alive_nodes();
    int want = std::min<int>(fanout_, static_cast<int>(alive.size()));
    rng.shuffle(alive);
    alive.resize(static_cast<size_t>(std::max(want, 1)));
    // Remember which id the insertion will get: ids are consecutive.
    pending_ = static_cast<NodeId>(h.healed().node_capacity());
    return Action{Action::Kind::kInsert, kInvalidNode, std::move(alive), {}, {}};
  }
  Action a{Action::Kind::kDelete, pending_, {}, {}, {}};
  pending_ = kInvalidNode;
  return a;
}

std::unique_ptr<Adversary> make_adversary(const std::string& name) {
  if (name == "random-delete") return std::make_unique<RandomDeleteAdversary>();
  if (name == "cut-vertex") return std::make_unique<CutVertexAdversary>();
  if (name == "maxdeg-delete") return std::make_unique<MaxDegreeDeleteAdversary>();
  if (name == "helper-load") return std::make_unique<HelperLoadAdversary>();
  if (name == "star-attack") return std::make_unique<StarAttackAdversary>();
  if (name.rfind("churn:", 0) == 0)
    return std::make_unique<ChurnAdversary>(std::stod(name.substr(6)), 3);
  if (name.rfind("build-and-burn:", 0) == 0)
    return std::make_unique<BuildAndBurnAdversary>(std::stoi(name.substr(15)));
  if (name.rfind("batch:", 0) == 0)
    return std::make_unique<BatchDeleteAdversary>(std::stoi(name.substr(6)));
  if (name.rfind("regions:", 0) == 0)
    return std::make_unique<DisjointRegionsAdversary>(std::stoi(name.substr(8)));
  FG_CHECK_MSG(false, "unknown adversary name");
  return nullptr;
}

}  // namespace fg
