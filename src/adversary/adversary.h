// Adversary strategies (Section 2 model).
//
// The adversary is omniscient: it sees the healed topology G, the reference
// graph G', and — for the Forgiving Graph — the internal helper assignment.
// In each step it either deletes an arbitrary alive node or inserts a new
// node with arbitrary connections to alive nodes.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "heal/healer.h"
#include "util/rng.h"

namespace fg {

/// One adversarial step.
struct Action {
  enum class Kind { kInsert, kDelete, kBatchDelete };
  Kind kind = Kind::kDelete;
  NodeId target = kInvalidNode;    ///< For single deletions.
  std::vector<NodeId> neighbors;   ///< For insertions.
  std::vector<NodeId> targets;     ///< For batched deletions (distinct, alive).
  /// Optional region assignment of a batched deletion, aligned with
  /// `targets`: the dirty-region id the sharded repair gave each victim.
  /// Recorded by record_run against a Forgiving Graph healer (trace `r`
  /// lines); replay re-derives the assignment and checks it matches, so a
  /// divergence bisects to one region instead of a whole wave.
  std::vector<int> regions;
};

/// Strategy interface: decide the next attack given full knowledge.
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Next action, or nullopt when the attack schedule is over.
  virtual std::optional<Action> next(const Healer& h, Rng& rng) = 0;

  virtual std::string name() const = 0;
};

/// Deletes a uniformly random alive node while more than `floor` remain.
class RandomDeleteAdversary final : public Adversary {
 public:
  explicit RandomDeleteAdversary(int floor = 2) : floor_(floor) {}
  std::optional<Action> next(const Healer& h, Rng& rng) override;
  std::string name() const override { return "random-delete"; }

 private:
  int floor_;
};

/// Always deletes an alive node of maximum degree in G (hub attack).
class MaxDegreeDeleteAdversary final : public Adversary {
 public:
  explicit MaxDegreeDeleteAdversary(int floor = 2) : floor_(floor) {}
  std::optional<Action> next(const Healer& h, Rng& rng) override;
  std::string name() const override { return "maxdeg-delete"; }

 private:
  int floor_;
};

/// Deletes the processor currently simulating the most helper nodes —
/// exercising omniscience against the Forgiving Graph's internal state.
/// Falls back to max degree for healers without helper introspection.
class HelperLoadAdversary final : public Adversary {
 public:
  explicit HelperLoadAdversary(int floor = 2) : floor_(floor) {}
  std::optional<Action> next(const Healer& h, Rng& rng) override;
  std::string name() const override { return "helper-load"; }

 private:
  int floor_;
};

/// Mixed churn: with probability p_delete delete a random node, otherwise
/// insert a node wired to `degree` random alive nodes.
class ChurnAdversary final : public Adversary {
 public:
  ChurnAdversary(double p_delete, int degree, int floor = 4)
      : p_delete_(p_delete), degree_(degree), floor_(floor) {}
  std::optional<Action> next(const Healer& h, Rng& rng) override;
  std::string name() const override { return "churn"; }

 private:
  double p_delete_;
  int degree_;
  int floor_;
};

/// Deletes a wave of `batch` uniformly random alive nodes per step, all
/// simultaneously — the correlated-failure model (rack loss, partition)
/// batched repairs exist for. Stops when ≤ floor + batch nodes remain.
class BatchDeleteAdversary final : public Adversary {
 public:
  explicit BatchDeleteAdversary(int batch, int floor = 2)
      : batch_(batch), floor_(floor) {}
  std::optional<Action> next(const Healer& h, Rng& rng) override;
  std::string name() const override { return "batch-delete"; }

 private:
  int batch_;
  int floor_;
};

/// Deletes waves of up to `k` victims whose repairs are pairwise disjoint:
/// no two victims share a G' edge or an affected Reconstruction Tree, so
/// the wave decomposes into k independent dirty regions — the workload the
/// sharded plan/commit pipeline heals concurrently. Falls back to healed-
/// graph distance (> 2 hops) for healers without forest introspection.
/// Stops when ≤ floor + k nodes remain; waves may be shorter than k when
/// fewer disjoint victims exist.
class DisjointRegionsAdversary final : public Adversary {
 public:
  explicit DisjointRegionsAdversary(int k, int floor = 2)
      : k_(k), floor_(floor) {}
  std::optional<Action> next(const Healer& h, Rng& rng) override;
  std::string name() const override { return "regions"; }

 private:
  int k_;
  int floor_;
};

/// Deletes a cut vertex of the healed network whenever one exists (the
/// deletion that would disconnect a non-self-healing network), falling back
/// to max degree: the omniscient adversary hunting for weak points.
class CutVertexAdversary final : public Adversary {
 public:
  explicit CutVertexAdversary(int floor = 2) : floor_(floor) {}
  std::optional<Action> next(const Healer& h, Rng& rng) override;
  std::string name() const override { return "cut-vertex"; }

 private:
  int floor_;
};

/// Theorem 2 construction: delete the hub (node 0) of a star, then stop.
class StarAttackAdversary final : public Adversary {
 public:
  std::optional<Action> next(const Healer& h, Rng& rng) override;
  std::string name() const override { return "star-attack"; }

 private:
  bool done_ = false;
};

/// Repeatedly inserts a hub wired to `fanout` random nodes, then deletes it:
/// a worst case for healers that cannot merge reconstruction structures.
class BuildAndBurnAdversary final : public Adversary {
 public:
  explicit BuildAndBurnAdversary(int fanout) : fanout_(fanout) {}
  std::optional<Action> next(const Healer& h, Rng& rng) override;
  std::string name() const override { return "build-and-burn"; }

 private:
  int fanout_;
  NodeId pending_ = kInvalidNode;
};

/// Factory: "random-delete", "maxdeg-delete", "helper-load", "churn:<p>",
/// "star-attack", "build-and-burn:<fanout>", "batch:<k>", "regions:<k>".
std::unique_ptr<Adversary> make_adversary(const std::string& name);

}  // namespace fg
